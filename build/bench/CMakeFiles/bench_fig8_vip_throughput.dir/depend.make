# Empty dependencies file for bench_fig8_vip_throughput.
# This may be replaced when dependencies are built.
