file(REMOVE_RECURSE
  "CMakeFiles/bench_mitigation.dir/bench_mitigation.cpp.o"
  "CMakeFiles/bench_mitigation.dir/bench_mitigation.cpp.o.d"
  "bench_mitigation"
  "bench_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
