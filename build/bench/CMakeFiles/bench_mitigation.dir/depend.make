# Empty dependencies file for bench_mitigation.
# This may be replaced when dependencies are built.
