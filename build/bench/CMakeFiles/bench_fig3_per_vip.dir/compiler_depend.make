# Empty compiler generated dependencies file for bench_fig3_per_vip.
# This may be replaced when dependencies are built.
