file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_per_vip.dir/bench_fig3_per_vip.cpp.o"
  "CMakeFiles/bench_fig3_per_vip.dir/bench_fig3_per_vip.cpp.o.d"
  "bench_fig3_per_vip"
  "bench_fig3_per_vip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_per_vip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
