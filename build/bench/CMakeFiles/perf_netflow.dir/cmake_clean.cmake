file(REMOVE_RECURSE
  "CMakeFiles/perf_netflow.dir/perf_netflow.cpp.o"
  "CMakeFiles/perf_netflow.dir/perf_netflow.cpp.o.d"
  "perf_netflow"
  "perf_netflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_netflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
