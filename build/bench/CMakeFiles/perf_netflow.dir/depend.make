# Empty dependencies file for perf_netflow.
# This may be replaced when dependencies are built.
