file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_validation.dir/bench_table2_validation.cpp.o"
  "CMakeFiles/bench_table2_validation.dir/bench_table2_validation.cpp.o.d"
  "bench_table2_validation"
  "bench_table2_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
