# Empty dependencies file for bench_table2_validation.
# This may be replaced when dependencies are built.
