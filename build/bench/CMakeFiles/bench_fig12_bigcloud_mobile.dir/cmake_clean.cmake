file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_bigcloud_mobile.dir/bench_fig12_bigcloud_mobile.cpp.o"
  "CMakeFiles/bench_fig12_bigcloud_mobile.dir/bench_fig12_bigcloud_mobile.cpp.o.d"
  "bench_fig12_bigcloud_mobile"
  "bench_fig12_bigcloud_mobile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_bigcloud_mobile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
