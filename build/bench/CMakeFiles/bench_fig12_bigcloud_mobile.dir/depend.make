# Empty dependencies file for bench_fig12_bigcloud_mobile.
# This may be replaced when dependencies are built.
