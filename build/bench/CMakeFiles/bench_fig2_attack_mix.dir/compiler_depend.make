# Empty compiler generated dependencies file for bench_fig2_attack_mix.
# This may be replaced when dependencies are built.
