file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_attack_mix.dir/bench_fig2_attack_mix.cpp.o"
  "CMakeFiles/bench_fig2_attack_mix.dir/bench_fig2_attack_mix.cpp.o.d"
  "bench_fig2_attack_mix"
  "bench_fig2_attack_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_attack_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
