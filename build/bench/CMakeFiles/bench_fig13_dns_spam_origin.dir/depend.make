# Empty dependencies file for bench_fig13_dns_spam_origin.
# This may be replaced when dependencies are built.
