file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_dns_spam_origin.dir/bench_fig13_dns_spam_origin.cpp.o"
  "CMakeFiles/bench_fig13_dns_spam_origin.dir/bench_fig13_dns_spam_origin.cpp.o.d"
  "bench_fig13_dns_spam_origin"
  "bench_fig13_dns_spam_origin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_dns_spam_origin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
