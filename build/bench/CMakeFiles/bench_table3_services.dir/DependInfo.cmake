
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table3_services.cpp" "bench/CMakeFiles/bench_table3_services.dir/bench_table3_services.cpp.o" "gcc" "bench/CMakeFiles/bench_table3_services.dir/bench_table3_services.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mitigate/CMakeFiles/dm_mitigate.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/dm_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/dm_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/netflow/CMakeFiles/dm_netflow.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
