# Empty dependencies file for bench_table3_services.
# This may be replaced when dependencies are built.
