file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_services.dir/bench_table3_services.cpp.o"
  "CMakeFiles/bench_table3_services.dir/bench_table3_services.cpp.o.d"
  "bench_table3_services"
  "bench_table3_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
