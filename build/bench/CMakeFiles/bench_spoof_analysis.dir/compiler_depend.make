# Empty compiler generated dependencies file for bench_spoof_analysis.
# This may be replaced when dependencies are built.
