file(REMOVE_RECURSE
  "CMakeFiles/bench_spoof_analysis.dir/bench_spoof_analysis.cpp.o"
  "CMakeFiles/bench_spoof_analysis.dir/bench_spoof_analysis.cpp.o.d"
  "bench_spoof_analysis"
  "bench_spoof_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spoof_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
