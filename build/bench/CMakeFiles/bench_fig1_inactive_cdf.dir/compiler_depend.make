# Empty compiler generated dependencies file for bench_fig1_inactive_cdf.
# This may be replaced when dependencies are built.
