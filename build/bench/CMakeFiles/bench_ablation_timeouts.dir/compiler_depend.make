# Empty compiler generated dependencies file for bench_ablation_timeouts.
# This may be replaced when dependencies are built.
