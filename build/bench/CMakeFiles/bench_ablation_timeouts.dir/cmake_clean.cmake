file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_timeouts.dir/bench_ablation_timeouts.cpp.o"
  "CMakeFiles/bench_ablation_timeouts.dir/bench_ablation_timeouts.cpp.o.d"
  "bench_ablation_timeouts"
  "bench_ablation_timeouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_timeouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
