# Empty compiler generated dependencies file for bench_fig15_outbound_as.
# This may be replaced when dependencies are built.
