file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_multi_vip.dir/bench_fig6_multi_vip.cpp.o"
  "CMakeFiles/bench_fig6_multi_vip.dir/bench_fig6_multi_vip.cpp.o.d"
  "bench_fig6_multi_vip"
  "bench_fig6_multi_vip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_multi_vip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
