# Empty compiler generated dependencies file for bench_fig6_multi_vip.
# This may be replaced when dependencies are built.
