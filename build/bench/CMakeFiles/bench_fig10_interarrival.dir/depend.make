# Empty dependencies file for bench_fig10_interarrival.
# This may be replaced when dependencies are built.
