# Empty compiler generated dependencies file for bench_fig14_geo.
# This may be replaced when dependencies are built.
