file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_geo.dir/bench_fig14_geo.cpp.o"
  "CMakeFiles/bench_fig14_geo.dir/bench_fig14_geo.cpp.o.d"
  "bench_fig14_geo"
  "bench_fig14_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
