# Empty compiler generated dependencies file for perf_detectors.
# This may be replaced when dependencies are built.
