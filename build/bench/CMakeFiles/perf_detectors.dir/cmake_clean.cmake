file(REMOVE_RECURSE
  "CMakeFiles/perf_detectors.dir/perf_detectors.cpp.o"
  "CMakeFiles/perf_detectors.dir/perf_detectors.cpp.o.d"
  "perf_detectors"
  "perf_detectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
