# Empty dependencies file for bench_fig11_inbound_as.
# This may be replaced when dependencies are built.
