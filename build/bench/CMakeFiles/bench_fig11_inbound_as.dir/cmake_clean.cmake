file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_inbound_as.dir/bench_fig11_inbound_as.cpp.o"
  "CMakeFiles/bench_fig11_inbound_as.dir/bench_fig11_inbound_as.cpp.o.d"
  "bench_fig11_inbound_as"
  "bench_fig11_inbound_as.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_inbound_as.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
