file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_compromise.dir/bench_fig5_compromise.cpp.o"
  "CMakeFiles/bench_fig5_compromise.dir/bench_fig5_compromise.cpp.o.d"
  "bench_fig5_compromise"
  "bench_fig5_compromise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_compromise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
