file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_duration.dir/bench_fig9_duration.cpp.o"
  "CMakeFiles/bench_fig9_duration.dir/bench_fig9_duration.cpp.o.d"
  "bench_fig9_duration"
  "bench_fig9_duration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_duration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
