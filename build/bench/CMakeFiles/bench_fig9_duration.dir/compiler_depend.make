# Empty compiler generated dependencies file for bench_fig9_duration.
# This may be replaced when dependencies are built.
