file(REMOVE_RECURSE
  "CMakeFiles/bench_seasonality.dir/bench_seasonality.cpp.o"
  "CMakeFiles/bench_seasonality.dir/bench_seasonality.cpp.o.d"
  "bench_seasonality"
  "bench_seasonality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seasonality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
