# Empty compiler generated dependencies file for bench_seasonality.
# This may be replaced when dependencies are built.
