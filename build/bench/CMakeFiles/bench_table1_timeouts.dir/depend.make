# Empty dependencies file for bench_table1_timeouts.
# This may be replaced when dependencies are built.
