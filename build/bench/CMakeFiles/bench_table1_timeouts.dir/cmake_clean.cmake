file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_timeouts.dir/bench_table1_timeouts.cpp.o"
  "CMakeFiles/bench_table1_timeouts.dir/bench_table1_timeouts.cpp.o.d"
  "bench_table1_timeouts"
  "bench_table1_timeouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_timeouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
