# Empty compiler generated dependencies file for dm_sim.
# This may be replaced when dependencies are built.
