file(REMOVE_RECURSE
  "libdm_sim.a"
)
