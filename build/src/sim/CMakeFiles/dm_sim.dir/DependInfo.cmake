
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/attack_traffic.cpp" "src/sim/CMakeFiles/dm_sim.dir/attack_traffic.cpp.o" "gcc" "src/sim/CMakeFiles/dm_sim.dir/attack_traffic.cpp.o.d"
  "/root/repo/src/sim/benign_model.cpp" "src/sim/CMakeFiles/dm_sim.dir/benign_model.cpp.o" "gcc" "src/sim/CMakeFiles/dm_sim.dir/benign_model.cpp.o.d"
  "/root/repo/src/sim/scenario.cpp" "src/sim/CMakeFiles/dm_sim.dir/scenario.cpp.o" "gcc" "src/sim/CMakeFiles/dm_sim.dir/scenario.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/sim/CMakeFiles/dm_sim.dir/scheduler.cpp.o" "gcc" "src/sim/CMakeFiles/dm_sim.dir/scheduler.cpp.o.d"
  "/root/repo/src/sim/trace_generator.cpp" "src/sim/CMakeFiles/dm_sim.dir/trace_generator.cpp.o" "gcc" "src/sim/CMakeFiles/dm_sim.dir/trace_generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cloud/CMakeFiles/dm_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/netflow/CMakeFiles/dm_netflow.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
