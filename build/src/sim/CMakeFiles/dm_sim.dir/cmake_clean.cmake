file(REMOVE_RECURSE
  "CMakeFiles/dm_sim.dir/attack_traffic.cpp.o"
  "CMakeFiles/dm_sim.dir/attack_traffic.cpp.o.d"
  "CMakeFiles/dm_sim.dir/benign_model.cpp.o"
  "CMakeFiles/dm_sim.dir/benign_model.cpp.o.d"
  "CMakeFiles/dm_sim.dir/scenario.cpp.o"
  "CMakeFiles/dm_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/dm_sim.dir/scheduler.cpp.o"
  "CMakeFiles/dm_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/dm_sim.dir/trace_generator.cpp.o"
  "CMakeFiles/dm_sim.dir/trace_generator.cpp.o.d"
  "libdm_sim.a"
  "libdm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
