# Empty dependencies file for dm_core.
# This may be replaced when dependencies are built.
