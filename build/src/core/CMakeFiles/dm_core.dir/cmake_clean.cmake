file(REMOVE_RECURSE
  "CMakeFiles/dm_core.dir/report.cpp.o"
  "CMakeFiles/dm_core.dir/report.cpp.o.d"
  "CMakeFiles/dm_core.dir/study.cpp.o"
  "CMakeFiles/dm_core.dir/study.cpp.o.d"
  "libdm_core.a"
  "libdm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
