file(REMOVE_RECURSE
  "libdm_core.a"
)
