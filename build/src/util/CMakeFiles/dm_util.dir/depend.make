# Empty dependencies file for dm_util.
# This may be replaced when dependencies are built.
