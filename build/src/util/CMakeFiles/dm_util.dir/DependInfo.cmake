
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/anderson_darling.cpp" "src/util/CMakeFiles/dm_util.dir/anderson_darling.cpp.o" "gcc" "src/util/CMakeFiles/dm_util.dir/anderson_darling.cpp.o.d"
  "/root/repo/src/util/cdf.cpp" "src/util/CMakeFiles/dm_util.dir/cdf.cpp.o" "gcc" "src/util/CMakeFiles/dm_util.dir/cdf.cpp.o.d"
  "/root/repo/src/util/ewma.cpp" "src/util/CMakeFiles/dm_util.dir/ewma.cpp.o" "gcc" "src/util/CMakeFiles/dm_util.dir/ewma.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "src/util/CMakeFiles/dm_util.dir/histogram.cpp.o" "gcc" "src/util/CMakeFiles/dm_util.dir/histogram.cpp.o.d"
  "/root/repo/src/util/regression.cpp" "src/util/CMakeFiles/dm_util.dir/regression.cpp.o" "gcc" "src/util/CMakeFiles/dm_util.dir/regression.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/util/CMakeFiles/dm_util.dir/rng.cpp.o" "gcc" "src/util/CMakeFiles/dm_util.dir/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/util/CMakeFiles/dm_util.dir/stats.cpp.o" "gcc" "src/util/CMakeFiles/dm_util.dir/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/util/CMakeFiles/dm_util.dir/table.cpp.o" "gcc" "src/util/CMakeFiles/dm_util.dir/table.cpp.o.d"
  "/root/repo/src/util/time.cpp" "src/util/CMakeFiles/dm_util.dir/time.cpp.o" "gcc" "src/util/CMakeFiles/dm_util.dir/time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
