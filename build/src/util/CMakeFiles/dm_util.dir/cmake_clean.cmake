file(REMOVE_RECURSE
  "CMakeFiles/dm_util.dir/anderson_darling.cpp.o"
  "CMakeFiles/dm_util.dir/anderson_darling.cpp.o.d"
  "CMakeFiles/dm_util.dir/cdf.cpp.o"
  "CMakeFiles/dm_util.dir/cdf.cpp.o.d"
  "CMakeFiles/dm_util.dir/ewma.cpp.o"
  "CMakeFiles/dm_util.dir/ewma.cpp.o.d"
  "CMakeFiles/dm_util.dir/histogram.cpp.o"
  "CMakeFiles/dm_util.dir/histogram.cpp.o.d"
  "CMakeFiles/dm_util.dir/regression.cpp.o"
  "CMakeFiles/dm_util.dir/regression.cpp.o.d"
  "CMakeFiles/dm_util.dir/rng.cpp.o"
  "CMakeFiles/dm_util.dir/rng.cpp.o.d"
  "CMakeFiles/dm_util.dir/stats.cpp.o"
  "CMakeFiles/dm_util.dir/stats.cpp.o.d"
  "CMakeFiles/dm_util.dir/table.cpp.o"
  "CMakeFiles/dm_util.dir/table.cpp.o.d"
  "CMakeFiles/dm_util.dir/time.cpp.o"
  "CMakeFiles/dm_util.dir/time.cpp.o.d"
  "libdm_util.a"
  "libdm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
