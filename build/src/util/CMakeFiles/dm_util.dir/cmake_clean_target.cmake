file(REMOVE_RECURSE
  "libdm_util.a"
)
