file(REMOVE_RECURSE
  "libdm_cloud.a"
)
