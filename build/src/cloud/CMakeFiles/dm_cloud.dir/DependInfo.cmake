
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/as_registry.cpp" "src/cloud/CMakeFiles/dm_cloud.dir/as_registry.cpp.o" "gcc" "src/cloud/CMakeFiles/dm_cloud.dir/as_registry.cpp.o.d"
  "/root/repo/src/cloud/service.cpp" "src/cloud/CMakeFiles/dm_cloud.dir/service.cpp.o" "gcc" "src/cloud/CMakeFiles/dm_cloud.dir/service.cpp.o.d"
  "/root/repo/src/cloud/tds_blacklist.cpp" "src/cloud/CMakeFiles/dm_cloud.dir/tds_blacklist.cpp.o" "gcc" "src/cloud/CMakeFiles/dm_cloud.dir/tds_blacklist.cpp.o.d"
  "/root/repo/src/cloud/vip_registry.cpp" "src/cloud/CMakeFiles/dm_cloud.dir/vip_registry.cpp.o" "gcc" "src/cloud/CMakeFiles/dm_cloud.dir/vip_registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netflow/CMakeFiles/dm_netflow.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
