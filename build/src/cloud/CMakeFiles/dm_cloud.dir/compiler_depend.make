# Empty compiler generated dependencies file for dm_cloud.
# This may be replaced when dependencies are built.
