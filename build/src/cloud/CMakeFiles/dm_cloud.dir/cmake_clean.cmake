file(REMOVE_RECURSE
  "CMakeFiles/dm_cloud.dir/as_registry.cpp.o"
  "CMakeFiles/dm_cloud.dir/as_registry.cpp.o.d"
  "CMakeFiles/dm_cloud.dir/service.cpp.o"
  "CMakeFiles/dm_cloud.dir/service.cpp.o.d"
  "CMakeFiles/dm_cloud.dir/tds_blacklist.cpp.o"
  "CMakeFiles/dm_cloud.dir/tds_blacklist.cpp.o.d"
  "CMakeFiles/dm_cloud.dir/vip_registry.cpp.o"
  "CMakeFiles/dm_cloud.dir/vip_registry.cpp.o.d"
  "libdm_cloud.a"
  "libdm_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
