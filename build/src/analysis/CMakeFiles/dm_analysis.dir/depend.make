# Empty dependencies file for dm_analysis.
# This may be replaced when dependencies are built.
