
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/active_time.cpp" "src/analysis/CMakeFiles/dm_analysis.dir/active_time.cpp.o" "gcc" "src/analysis/CMakeFiles/dm_analysis.dir/active_time.cpp.o.d"
  "/root/repo/src/analysis/as_analysis.cpp" "src/analysis/CMakeFiles/dm_analysis.dir/as_analysis.cpp.o" "gcc" "src/analysis/CMakeFiles/dm_analysis.dir/as_analysis.cpp.o.d"
  "/root/repo/src/analysis/attribution.cpp" "src/analysis/CMakeFiles/dm_analysis.dir/attribution.cpp.o" "gcc" "src/analysis/CMakeFiles/dm_analysis.dir/attribution.cpp.o.d"
  "/root/repo/src/analysis/overview.cpp" "src/analysis/CMakeFiles/dm_analysis.dir/overview.cpp.o" "gcc" "src/analysis/CMakeFiles/dm_analysis.dir/overview.cpp.o.d"
  "/root/repo/src/analysis/service_mix.cpp" "src/analysis/CMakeFiles/dm_analysis.dir/service_mix.cpp.o" "gcc" "src/analysis/CMakeFiles/dm_analysis.dir/service_mix.cpp.o.d"
  "/root/repo/src/analysis/signature.cpp" "src/analysis/CMakeFiles/dm_analysis.dir/signature.cpp.o" "gcc" "src/analysis/CMakeFiles/dm_analysis.dir/signature.cpp.o.d"
  "/root/repo/src/analysis/spoof_analysis.cpp" "src/analysis/CMakeFiles/dm_analysis.dir/spoof_analysis.cpp.o" "gcc" "src/analysis/CMakeFiles/dm_analysis.dir/spoof_analysis.cpp.o.d"
  "/root/repo/src/analysis/throughput.cpp" "src/analysis/CMakeFiles/dm_analysis.dir/throughput.cpp.o" "gcc" "src/analysis/CMakeFiles/dm_analysis.dir/throughput.cpp.o.d"
  "/root/repo/src/analysis/timing.cpp" "src/analysis/CMakeFiles/dm_analysis.dir/timing.cpp.o" "gcc" "src/analysis/CMakeFiles/dm_analysis.dir/timing.cpp.o.d"
  "/root/repo/src/analysis/validation.cpp" "src/analysis/CMakeFiles/dm_analysis.dir/validation.cpp.o" "gcc" "src/analysis/CMakeFiles/dm_analysis.dir/validation.cpp.o.d"
  "/root/repo/src/analysis/vip_frequency.cpp" "src/analysis/CMakeFiles/dm_analysis.dir/vip_frequency.cpp.o" "gcc" "src/analysis/CMakeFiles/dm_analysis.dir/vip_frequency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/detect/CMakeFiles/dm_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/dm_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/netflow/CMakeFiles/dm_netflow.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
