file(REMOVE_RECURSE
  "libdm_analysis.a"
)
