file(REMOVE_RECURSE
  "CMakeFiles/dm_analysis.dir/active_time.cpp.o"
  "CMakeFiles/dm_analysis.dir/active_time.cpp.o.d"
  "CMakeFiles/dm_analysis.dir/as_analysis.cpp.o"
  "CMakeFiles/dm_analysis.dir/as_analysis.cpp.o.d"
  "CMakeFiles/dm_analysis.dir/attribution.cpp.o"
  "CMakeFiles/dm_analysis.dir/attribution.cpp.o.d"
  "CMakeFiles/dm_analysis.dir/overview.cpp.o"
  "CMakeFiles/dm_analysis.dir/overview.cpp.o.d"
  "CMakeFiles/dm_analysis.dir/service_mix.cpp.o"
  "CMakeFiles/dm_analysis.dir/service_mix.cpp.o.d"
  "CMakeFiles/dm_analysis.dir/signature.cpp.o"
  "CMakeFiles/dm_analysis.dir/signature.cpp.o.d"
  "CMakeFiles/dm_analysis.dir/spoof_analysis.cpp.o"
  "CMakeFiles/dm_analysis.dir/spoof_analysis.cpp.o.d"
  "CMakeFiles/dm_analysis.dir/throughput.cpp.o"
  "CMakeFiles/dm_analysis.dir/throughput.cpp.o.d"
  "CMakeFiles/dm_analysis.dir/timing.cpp.o"
  "CMakeFiles/dm_analysis.dir/timing.cpp.o.d"
  "CMakeFiles/dm_analysis.dir/validation.cpp.o"
  "CMakeFiles/dm_analysis.dir/validation.cpp.o.d"
  "CMakeFiles/dm_analysis.dir/vip_frequency.cpp.o"
  "CMakeFiles/dm_analysis.dir/vip_frequency.cpp.o.d"
  "libdm_analysis.a"
  "libdm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
