# Empty compiler generated dependencies file for dm_netflow.
# This may be replaced when dependencies are built.
