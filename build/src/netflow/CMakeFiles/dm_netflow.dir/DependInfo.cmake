
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netflow/csv.cpp" "src/netflow/CMakeFiles/dm_netflow.dir/csv.cpp.o" "gcc" "src/netflow/CMakeFiles/dm_netflow.dir/csv.cpp.o.d"
  "/root/repo/src/netflow/flow_record.cpp" "src/netflow/CMakeFiles/dm_netflow.dir/flow_record.cpp.o" "gcc" "src/netflow/CMakeFiles/dm_netflow.dir/flow_record.cpp.o.d"
  "/root/repo/src/netflow/ipv4.cpp" "src/netflow/CMakeFiles/dm_netflow.dir/ipv4.cpp.o" "gcc" "src/netflow/CMakeFiles/dm_netflow.dir/ipv4.cpp.o.d"
  "/root/repo/src/netflow/sampler.cpp" "src/netflow/CMakeFiles/dm_netflow.dir/sampler.cpp.o" "gcc" "src/netflow/CMakeFiles/dm_netflow.dir/sampler.cpp.o.d"
  "/root/repo/src/netflow/tcp_flags.cpp" "src/netflow/CMakeFiles/dm_netflow.dir/tcp_flags.cpp.o" "gcc" "src/netflow/CMakeFiles/dm_netflow.dir/tcp_flags.cpp.o.d"
  "/root/repo/src/netflow/trace_io.cpp" "src/netflow/CMakeFiles/dm_netflow.dir/trace_io.cpp.o" "gcc" "src/netflow/CMakeFiles/dm_netflow.dir/trace_io.cpp.o.d"
  "/root/repo/src/netflow/window_aggregator.cpp" "src/netflow/CMakeFiles/dm_netflow.dir/window_aggregator.cpp.o" "gcc" "src/netflow/CMakeFiles/dm_netflow.dir/window_aggregator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
