file(REMOVE_RECURSE
  "CMakeFiles/dm_netflow.dir/csv.cpp.o"
  "CMakeFiles/dm_netflow.dir/csv.cpp.o.d"
  "CMakeFiles/dm_netflow.dir/flow_record.cpp.o"
  "CMakeFiles/dm_netflow.dir/flow_record.cpp.o.d"
  "CMakeFiles/dm_netflow.dir/ipv4.cpp.o"
  "CMakeFiles/dm_netflow.dir/ipv4.cpp.o.d"
  "CMakeFiles/dm_netflow.dir/sampler.cpp.o"
  "CMakeFiles/dm_netflow.dir/sampler.cpp.o.d"
  "CMakeFiles/dm_netflow.dir/tcp_flags.cpp.o"
  "CMakeFiles/dm_netflow.dir/tcp_flags.cpp.o.d"
  "CMakeFiles/dm_netflow.dir/trace_io.cpp.o"
  "CMakeFiles/dm_netflow.dir/trace_io.cpp.o.d"
  "CMakeFiles/dm_netflow.dir/window_aggregator.cpp.o"
  "CMakeFiles/dm_netflow.dir/window_aggregator.cpp.o.d"
  "libdm_netflow.a"
  "libdm_netflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_netflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
