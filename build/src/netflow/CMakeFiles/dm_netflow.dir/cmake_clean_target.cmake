file(REMOVE_RECURSE
  "libdm_netflow.a"
)
