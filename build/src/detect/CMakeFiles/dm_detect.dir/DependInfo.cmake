
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/correlator.cpp" "src/detect/CMakeFiles/dm_detect.dir/correlator.cpp.o" "gcc" "src/detect/CMakeFiles/dm_detect.dir/correlator.cpp.o.d"
  "/root/repo/src/detect/detectors.cpp" "src/detect/CMakeFiles/dm_detect.dir/detectors.cpp.o" "gcc" "src/detect/CMakeFiles/dm_detect.dir/detectors.cpp.o.d"
  "/root/repo/src/detect/incident.cpp" "src/detect/CMakeFiles/dm_detect.dir/incident.cpp.o" "gcc" "src/detect/CMakeFiles/dm_detect.dir/incident.cpp.o.d"
  "/root/repo/src/detect/pipeline.cpp" "src/detect/CMakeFiles/dm_detect.dir/pipeline.cpp.o" "gcc" "src/detect/CMakeFiles/dm_detect.dir/pipeline.cpp.o.d"
  "/root/repo/src/detect/stream.cpp" "src/detect/CMakeFiles/dm_detect.dir/stream.cpp.o" "gcc" "src/detect/CMakeFiles/dm_detect.dir/stream.cpp.o.d"
  "/root/repo/src/detect/timeout_selector.cpp" "src/detect/CMakeFiles/dm_detect.dir/timeout_selector.cpp.o" "gcc" "src/detect/CMakeFiles/dm_detect.dir/timeout_selector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netflow/CMakeFiles/dm_netflow.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/dm_cloud.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
