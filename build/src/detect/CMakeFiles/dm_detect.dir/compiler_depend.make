# Empty compiler generated dependencies file for dm_detect.
# This may be replaced when dependencies are built.
