file(REMOVE_RECURSE
  "libdm_detect.a"
)
