file(REMOVE_RECURSE
  "CMakeFiles/dm_detect.dir/correlator.cpp.o"
  "CMakeFiles/dm_detect.dir/correlator.cpp.o.d"
  "CMakeFiles/dm_detect.dir/detectors.cpp.o"
  "CMakeFiles/dm_detect.dir/detectors.cpp.o.d"
  "CMakeFiles/dm_detect.dir/incident.cpp.o"
  "CMakeFiles/dm_detect.dir/incident.cpp.o.d"
  "CMakeFiles/dm_detect.dir/pipeline.cpp.o"
  "CMakeFiles/dm_detect.dir/pipeline.cpp.o.d"
  "CMakeFiles/dm_detect.dir/stream.cpp.o"
  "CMakeFiles/dm_detect.dir/stream.cpp.o.d"
  "CMakeFiles/dm_detect.dir/timeout_selector.cpp.o"
  "CMakeFiles/dm_detect.dir/timeout_selector.cpp.o.d"
  "libdm_detect.a"
  "libdm_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
