file(REMOVE_RECURSE
  "libdm_mitigate.a"
)
