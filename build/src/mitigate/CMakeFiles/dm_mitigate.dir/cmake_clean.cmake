file(REMOVE_RECURSE
  "CMakeFiles/dm_mitigate.dir/engine.cpp.o"
  "CMakeFiles/dm_mitigate.dir/engine.cpp.o.d"
  "CMakeFiles/dm_mitigate.dir/provisioning.cpp.o"
  "CMakeFiles/dm_mitigate.dir/provisioning.cpp.o.d"
  "libdm_mitigate.a"
  "libdm_mitigate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dm_mitigate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
