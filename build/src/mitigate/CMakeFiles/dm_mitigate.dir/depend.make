# Empty dependencies file for dm_mitigate.
# This may be replaced when dependencies are built.
