file(REMOVE_RECURSE
  "CMakeFiles/dmnf.dir/dmnf.cpp.o"
  "CMakeFiles/dmnf.dir/dmnf.cpp.o.d"
  "dmnf"
  "dmnf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmnf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
