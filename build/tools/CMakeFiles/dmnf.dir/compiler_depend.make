# Empty compiler generated dependencies file for dmnf.
# This may be replaced when dependencies are built.
