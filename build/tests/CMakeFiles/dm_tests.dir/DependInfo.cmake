
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/active_time_test.cpp" "tests/CMakeFiles/dm_tests.dir/analysis/active_time_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/analysis/active_time_test.cpp.o.d"
  "/root/repo/tests/analysis/analysis_integration_test.cpp" "tests/CMakeFiles/dm_tests.dir/analysis/analysis_integration_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/analysis/analysis_integration_test.cpp.o.d"
  "/root/repo/tests/analysis/attribution_test.cpp" "tests/CMakeFiles/dm_tests.dir/analysis/attribution_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/analysis/attribution_test.cpp.o.d"
  "/root/repo/tests/analysis/overview_test.cpp" "tests/CMakeFiles/dm_tests.dir/analysis/overview_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/analysis/overview_test.cpp.o.d"
  "/root/repo/tests/analysis/signature_test.cpp" "tests/CMakeFiles/dm_tests.dir/analysis/signature_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/analysis/signature_test.cpp.o.d"
  "/root/repo/tests/analysis/throughput_timing_test.cpp" "tests/CMakeFiles/dm_tests.dir/analysis/throughput_timing_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/analysis/throughput_timing_test.cpp.o.d"
  "/root/repo/tests/analysis/validation_test.cpp" "tests/CMakeFiles/dm_tests.dir/analysis/validation_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/analysis/validation_test.cpp.o.d"
  "/root/repo/tests/analysis/vip_frequency_test.cpp" "tests/CMakeFiles/dm_tests.dir/analysis/vip_frequency_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/analysis/vip_frequency_test.cpp.o.d"
  "/root/repo/tests/cloud/as_registry_test.cpp" "tests/CMakeFiles/dm_tests.dir/cloud/as_registry_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/cloud/as_registry_test.cpp.o.d"
  "/root/repo/tests/cloud/service_test.cpp" "tests/CMakeFiles/dm_tests.dir/cloud/service_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/cloud/service_test.cpp.o.d"
  "/root/repo/tests/cloud/tds_blacklist_test.cpp" "tests/CMakeFiles/dm_tests.dir/cloud/tds_blacklist_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/cloud/tds_blacklist_test.cpp.o.d"
  "/root/repo/tests/cloud/vip_registry_test.cpp" "tests/CMakeFiles/dm_tests.dir/cloud/vip_registry_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/cloud/vip_registry_test.cpp.o.d"
  "/root/repo/tests/core/report_test.cpp" "tests/CMakeFiles/dm_tests.dir/core/report_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/core/report_test.cpp.o.d"
  "/root/repo/tests/detect/correlator_test.cpp" "tests/CMakeFiles/dm_tests.dir/detect/correlator_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/detect/correlator_test.cpp.o.d"
  "/root/repo/tests/detect/detectors_test.cpp" "tests/CMakeFiles/dm_tests.dir/detect/detectors_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/detect/detectors_test.cpp.o.d"
  "/root/repo/tests/detect/incident_test.cpp" "tests/CMakeFiles/dm_tests.dir/detect/incident_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/detect/incident_test.cpp.o.d"
  "/root/repo/tests/detect/pipeline_test.cpp" "tests/CMakeFiles/dm_tests.dir/detect/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/detect/pipeline_test.cpp.o.d"
  "/root/repo/tests/detect/stream_test.cpp" "tests/CMakeFiles/dm_tests.dir/detect/stream_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/detect/stream_test.cpp.o.d"
  "/root/repo/tests/detect/timeout_selector_test.cpp" "tests/CMakeFiles/dm_tests.dir/detect/timeout_selector_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/detect/timeout_selector_test.cpp.o.d"
  "/root/repo/tests/integration/per_type_coverage_test.cpp" "tests/CMakeFiles/dm_tests.dir/integration/per_type_coverage_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/integration/per_type_coverage_test.cpp.o.d"
  "/root/repo/tests/integration/sampling_invariance_test.cpp" "tests/CMakeFiles/dm_tests.dir/integration/sampling_invariance_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/integration/sampling_invariance_test.cpp.o.d"
  "/root/repo/tests/integration/study_config_test.cpp" "tests/CMakeFiles/dm_tests.dir/integration/study_config_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/integration/study_config_test.cpp.o.d"
  "/root/repo/tests/integration/study_smoke_test.cpp" "tests/CMakeFiles/dm_tests.dir/integration/study_smoke_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/integration/study_smoke_test.cpp.o.d"
  "/root/repo/tests/mitigate/engine_test.cpp" "tests/CMakeFiles/dm_tests.dir/mitigate/engine_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/mitigate/engine_test.cpp.o.d"
  "/root/repo/tests/mitigate/mitigation_integration_test.cpp" "tests/CMakeFiles/dm_tests.dir/mitigate/mitigation_integration_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/mitigate/mitigation_integration_test.cpp.o.d"
  "/root/repo/tests/mitigate/provisioning_test.cpp" "tests/CMakeFiles/dm_tests.dir/mitigate/provisioning_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/mitigate/provisioning_test.cpp.o.d"
  "/root/repo/tests/netflow/csv_test.cpp" "tests/CMakeFiles/dm_tests.dir/netflow/csv_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/netflow/csv_test.cpp.o.d"
  "/root/repo/tests/netflow/flow_record_test.cpp" "tests/CMakeFiles/dm_tests.dir/netflow/flow_record_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/netflow/flow_record_test.cpp.o.d"
  "/root/repo/tests/netflow/ipv4_test.cpp" "tests/CMakeFiles/dm_tests.dir/netflow/ipv4_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/netflow/ipv4_test.cpp.o.d"
  "/root/repo/tests/netflow/robustness_test.cpp" "tests/CMakeFiles/dm_tests.dir/netflow/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/netflow/robustness_test.cpp.o.d"
  "/root/repo/tests/netflow/sampler_test.cpp" "tests/CMakeFiles/dm_tests.dir/netflow/sampler_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/netflow/sampler_test.cpp.o.d"
  "/root/repo/tests/netflow/tcp_flags_test.cpp" "tests/CMakeFiles/dm_tests.dir/netflow/tcp_flags_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/netflow/tcp_flags_test.cpp.o.d"
  "/root/repo/tests/netflow/trace_io_test.cpp" "tests/CMakeFiles/dm_tests.dir/netflow/trace_io_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/netflow/trace_io_test.cpp.o.d"
  "/root/repo/tests/netflow/window_aggregator_test.cpp" "tests/CMakeFiles/dm_tests.dir/netflow/window_aggregator_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/netflow/window_aggregator_test.cpp.o.d"
  "/root/repo/tests/sim/attack_traffic_test.cpp" "tests/CMakeFiles/dm_tests.dir/sim/attack_traffic_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/sim/attack_traffic_test.cpp.o.d"
  "/root/repo/tests/sim/benign_model_test.cpp" "tests/CMakeFiles/dm_tests.dir/sim/benign_model_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/sim/benign_model_test.cpp.o.d"
  "/root/repo/tests/sim/episode_test.cpp" "tests/CMakeFiles/dm_tests.dir/sim/episode_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/sim/episode_test.cpp.o.d"
  "/root/repo/tests/sim/scheduler_test.cpp" "tests/CMakeFiles/dm_tests.dir/sim/scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/sim/scheduler_test.cpp.o.d"
  "/root/repo/tests/sim/seasonality_test.cpp" "tests/CMakeFiles/dm_tests.dir/sim/seasonality_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/sim/seasonality_test.cpp.o.d"
  "/root/repo/tests/sim/trace_generator_test.cpp" "tests/CMakeFiles/dm_tests.dir/sim/trace_generator_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/sim/trace_generator_test.cpp.o.d"
  "/root/repo/tests/util/anderson_darling_test.cpp" "tests/CMakeFiles/dm_tests.dir/util/anderson_darling_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/util/anderson_darling_test.cpp.o.d"
  "/root/repo/tests/util/cdf_test.cpp" "tests/CMakeFiles/dm_tests.dir/util/cdf_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/util/cdf_test.cpp.o.d"
  "/root/repo/tests/util/ewma_test.cpp" "tests/CMakeFiles/dm_tests.dir/util/ewma_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/util/ewma_test.cpp.o.d"
  "/root/repo/tests/util/histogram_test.cpp" "tests/CMakeFiles/dm_tests.dir/util/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/util/histogram_test.cpp.o.d"
  "/root/repo/tests/util/regression_test.cpp" "tests/CMakeFiles/dm_tests.dir/util/regression_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/util/regression_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/dm_tests.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/dm_tests.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/dm_tests.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/util/table_test.cpp.o.d"
  "/root/repo/tests/util/time_test.cpp" "tests/CMakeFiles/dm_tests.dir/util/time_test.cpp.o" "gcc" "tests/CMakeFiles/dm_tests.dir/util/time_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mitigate/CMakeFiles/dm_mitigate.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/dm_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/dm_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/netflow/CMakeFiles/dm_netflow.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
