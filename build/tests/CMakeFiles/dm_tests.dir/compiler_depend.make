# Empty compiler generated dependencies file for dm_tests.
# This may be replaced when dependencies are built.
