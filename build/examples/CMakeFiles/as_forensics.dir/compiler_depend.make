# Empty compiler generated dependencies file for as_forensics.
# This may be replaced when dependencies are built.
