file(REMOVE_RECURSE
  "CMakeFiles/as_forensics.dir/as_forensics.cpp.o"
  "CMakeFiles/as_forensics.dir/as_forensics.cpp.o.d"
  "as_forensics"
  "as_forensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/as_forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
