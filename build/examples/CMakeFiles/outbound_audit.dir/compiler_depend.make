# Empty compiler generated dependencies file for outbound_audit.
# This may be replaced when dependencies are built.
