file(REMOVE_RECURSE
  "CMakeFiles/outbound_audit.dir/outbound_audit.cpp.o"
  "CMakeFiles/outbound_audit.dir/outbound_audit.cpp.o.d"
  "outbound_audit"
  "outbound_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outbound_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
