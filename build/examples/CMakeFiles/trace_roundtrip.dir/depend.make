# Empty dependencies file for trace_roundtrip.
# This may be replaced when dependencies are built.
