file(REMOVE_RECURSE
  "CMakeFiles/trace_roundtrip.dir/trace_roundtrip.cpp.o"
  "CMakeFiles/trace_roundtrip.dir/trace_roundtrip.cpp.o.d"
  "trace_roundtrip"
  "trace_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
