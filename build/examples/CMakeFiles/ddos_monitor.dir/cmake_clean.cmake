file(REMOVE_RECURSE
  "CMakeFiles/ddos_monitor.dir/ddos_monitor.cpp.o"
  "CMakeFiles/ddos_monitor.dir/ddos_monitor.cpp.o.d"
  "ddos_monitor"
  "ddos_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddos_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
