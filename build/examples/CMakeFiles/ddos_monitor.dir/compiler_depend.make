# Empty compiler generated dependencies file for ddos_monitor.
# This may be replaced when dependencies are built.
