// Figure 2: percentage of total inbound and outbound attacks per type.
#include "analysis/overview.h"
#include "exhibit.h"

int main() {
  using namespace dm;
  bench::banner("Figure 2", "Percentage of total attacks by type and direction");

  const auto& study = bench::shared_study();
  const auto mix = analysis::compute_attack_mix(study.detection().incidents);

  util::TextTable table;
  table.set_header({"Attack", "Inbound %", "Outbound %"});
  for (sim::AttackType t : sim::kAllAttackTypes) {
    table.row(std::string(sim::to_string(t)),
              util::format_percent(mix.share(t, netflow::Direction::kInbound)),
              util::format_percent(mix.share(t, netflow::Direction::kOutbound)));
  }
  table.row("TOTAL", util::format_percent(mix.inbound_share()),
            util::format_percent(1.0 - mix.inbound_share()));
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nincidents: inbound=%llu outbound=%llu\n",
              static_cast<unsigned long long>(mix.inbound_total),
              static_cast<unsigned long long>(mix.outbound_total));
  bench::paper_note(
      "35.1% inbound vs 64.9% outbound; outbound/inbound ratios: SYN ~5x, "
      "UDP ~2x, brute-force ~4x, SQL ~5x; port scans mostly inbound.");
  return 0;
}
