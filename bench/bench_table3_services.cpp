// Table 3: percentage of victim VIPs hosting each service that experienced
// each inbound attack type (services inferred from legitimate traffic by the
// 10%-of-traffic destination-port rule).
#include "analysis/service_mix.h"
#include "exhibit.h"

int main() {
  using namespace dm;
  bench::banner("Table 3", "Victim VIPs by hosted service x inbound attack");

  const auto& study = bench::shared_study();
  const auto table3 = analysis::compute_service_attack_table(
      study.trace(), study.detection().minutes, study.detection().incidents);

  util::TextTable table;
  std::vector<std::string> header{"Service", "Total %"};
  for (sim::AttackType t : sim::kAllAttackTypes) {
    header.emplace_back(sim::to_string(t));
  }
  table.set_header(std::move(header));
  for (std::size_t s = 0; s < analysis::kReportedServiceCount; ++s) {
    std::vector<std::string> row{
        std::string(cloud::to_string(analysis::kReportedServices[s])),
        util::format_double(table3.hosting_share[s], 2)};
    for (std::size_t t = 0; t < sim::kAttackTypeCount; ++t) {
      row.push_back(util::format_double(table3.cell[s][t], 2));
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nvictim VIPs: %llu\n",
              static_cast<unsigned long long>(table3.victim_vips));
  bench::paper_note(
      "Paper totals: RDP 35.06, HTTP 33.20, HTTPS 13.27, SSH 8.69, IP-Encap "
      "6.55, SQL 3.11, SMTP 2.75 (% of victim VIPs). RDP VIPs take almost "
      "all their attacks as brute-force (33.88); web VIPs take SYN floods, "
      "port scans, and TDS.");
  return 0;
}
