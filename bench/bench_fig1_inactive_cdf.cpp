// Figure 1: CDF of the inactive time between two consecutive attack minutes
// of the same (VIP, type), for inbound and outbound attacks.
#include <algorithm>

#include "detect/incident.h"
#include "exhibit.h"
#include "util/cdf.h"
#include "util/stats.h"

int main() {
  using namespace dm;
  bench::banner("Figure 1",
                "Inactive-time distribution between consecutive attack "
                "minutes (log-scale x in the paper)");

  const auto& study = bench::shared_study();
  for (netflow::Direction dir :
       {netflow::Direction::kInbound, netflow::Direction::kOutbound}) {
    std::printf("--- %s ---\n", std::string(netflow::to_string(dir)).c_str());
    util::TextTable table;
    table.set_header({"Attack", "gaps", "p50 (min)", "p90", "p99", "max"});
    for (sim::AttackType t : sim::kAllAttackTypes) {
      auto gaps = detect::inactive_gaps(study.detection().minutes, t, dir);
      if (gaps.empty()) {
        table.row(std::string(sim::to_string(t)), 0, "-", "-", "-", "-");
        continue;
      }
      std::sort(gaps.begin(), gaps.end());
      table.row(std::string(sim::to_string(t)), gaps.size(),
                util::format_double(util::quantile_sorted(gaps, 0.5), 1),
                util::format_double(util::quantile_sorted(gaps, 0.9), 1),
                util::format_double(util::quantile_sorted(gaps, 0.99), 1),
                util::format_double(gaps.back(), 0));
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n");
  }
  bench::paper_note(
      "Fig 1 drives the Table 1 timeout choice: most gap mass sits below "
      "each type's inactive timeout; flood gaps are short (SYN/UDP T=1), "
      "ICMP/TDS tails reach hours (T=120).");
  return 0;
}
