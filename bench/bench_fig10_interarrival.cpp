// Figure 10: median inter-arrival time between consecutive attacks on the
// same VIP, plus the §5.2 extras: ramp-up times and the UDP-flood
// bimodality decomposition.
#include "analysis/timing.h"
#include "exhibit.h"

int main() {
  using namespace dm;
  bench::banner("Figure 10", "Attack inter-arrival time by type");

  const auto& study = bench::shared_study();
  const auto in = analysis::compute_timing(study.detection().incidents,
                                           netflow::Direction::kInbound);
  const auto out = analysis::compute_timing(study.detection().incidents,
                                            netflow::Direction::kOutbound);

  util::TextTable table;
  table.set_header({"Attack", "in median (min)", "out median (min)",
                    "in ramp-up", "out ramp-up"});
  for (sim::AttackType t : sim::kAllAttackTypes) {
    const auto& i = in.interarrival[sim::index_of(t)];
    const auto& o = out.interarrival[sim::index_of(t)];
    const auto& ri = in.ramp_up[sim::index_of(t)];
    const auto& ro = out.ramp_up[sim::index_of(t)];
    table.row(std::string(sim::to_string(t)),
              i.samples ? util::format_double(i.median, 0) : "-",
              o.samples ? util::format_double(o.median, 0) : "-",
              ri.samples ? util::format_double(ri.median, 1) + " min" : "-",
              ro.samples ? util::format_double(ro.median, 1) + " min" : "-");
  }
  std::fputs(table.render().c_str(), stdout);

  // §5.2: UDP flood bimodality.
  for (netflow::Direction dir :
       {netflow::Direction::kInbound, netflow::Direction::kOutbound}) {
    const auto bimodal = analysis::decompose_bimodal(
        study.detection().incidents, sim::AttackType::kUdpFlood, dir,
        study.sampling());
    std::printf("\nUDP flood (%s): %s small attacks (median %s, gap %.0f min) "
                "vs %s large (median %s, gap %.0f min)\n",
                std::string(netflow::to_string(dir)).c_str(),
                util::format_percent(bimodal.small_fraction).c_str(),
                util::format_pps(bimodal.small_median_peak_pps).c_str(),
                bimodal.small_median_interarrival,
                util::format_percent(bimodal.large_fraction).c_str(),
                util::format_pps(bimodal.large_median_peak_pps).c_str(),
                bimodal.large_median_interarrival);
  }
  bench::paper_note(
      "Paper: most types repeat every few hundred minutes; outbound SYN/UDP "
      "repeat every ~25 min vs ~100 inbound. Ramp-up medians: 2-3 min "
      "inbound, 1 min outbound. UDP floods split 81%/19% into small-rare "
      "(8 Kpps @226 min) and large-frequent (457 Kpps @95 min).");
  return 0;
}
