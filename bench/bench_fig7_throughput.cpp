// Figure 7: median and peak aggregate attack throughput (whole cloud) per
// attack type and overall, in estimated packets/second.
#include "analysis/throughput.h"
#include "exhibit.h"

int main() {
  using namespace dm;
  bench::banner("Figure 7", "Aggregate attack throughput by type");

  const auto& study = bench::shared_study();
  util::TextTable table;
  table.set_header({"Attack", "in median", "in peak", "out median", "out peak"});
  const auto in = analysis::compute_aggregate_throughput(
      study.detection().minutes, netflow::Direction::kInbound, study.sampling());
  const auto out = analysis::compute_aggregate_throughput(
      study.detection().minutes, netflow::Direction::kOutbound, study.sampling());
  for (sim::AttackType t : sim::kAllAttackTypes) {
    const auto& i = in.by_type[sim::index_of(t)];
    const auto& o = out.by_type[sim::index_of(t)];
    table.row(std::string(sim::to_string(t)),
              i.samples ? util::format_pps(i.median_pps) : "-",
              i.samples ? util::format_pps(i.peak_pps) : "-",
              o.samples ? util::format_pps(o.median_pps) : "-",
              o.samples ? util::format_pps(o.peak_pps) : "-");
  }
  table.row("Overall", util::format_pps(in.overall.median_pps),
            util::format_pps(in.overall.peak_pps),
            util::format_pps(out.overall.median_pps),
            util::format_pps(out.overall.peak_pps));
  std::fputs(table.render().c_str(), stdout);
  bench::paper_note(
      "Paper: overall inbound median 595 Kpps / peak 9.4 Mpps; outbound "
      "median 662 Kpps / peak 2.25 Mpps. Inbound UDP peaks at 9.2 Mpps, SYN "
      "at 1.7 Mpps; volume-attack inbound peaks are 13-238x outbound. Note "
      "the scaled-down trace: shapes and ratios transfer, absolute "
      "aggregates scale with VIP count x days (EXPERIMENTS.md).");
  return 0;
}
