// google-benchmark microbenchmarks of the hot primitives: the change-point
// detector, longest-prefix matching, packet sampling, and the
// Anderson-Darling test.
#include <benchmark/benchmark.h>

#include "cloud/as_registry.h"
#include "detect/detectors.h"
#include "netflow/sampler.h"
#include "util/anderson_darling.h"
#include "util/rng.h"

namespace {

using namespace dm;

void BM_ChangePointDetector(benchmark::State& state) {
  detect::ChangePointDetector detector(10, 100.0);
  util::Rng rng(1);
  std::vector<double> values(4096);
  for (auto& v : values) v = rng.uniform(0.0, 40.0);
  util::Minute minute = 0;
  for (auto _ : state) {
    bool alarm = false;
    for (double v : values) {
      alarm ^= detector.observe(minute++, v);
    }
    benchmark::DoNotOptimize(alarm);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(values.size()));
  }
}
BENCHMARK(BM_ChangePointDetector);

void BM_PrefixSetMatch(benchmark::State& state) {
  cloud::AsRegistry registry({}, 42);
  util::Rng rng(7);
  std::vector<netflow::IPv4> probes(4096);
  for (auto& p : probes) p = netflow::IPv4(static_cast<std::uint32_t>(rng()));
  for (auto _ : state) {
    std::size_t hits = 0;
    for (auto p : probes) hits += registry.lookup(p) != nullptr;
    benchmark::DoNotOptimize(hits);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(probes.size()));
  }
}
BENCHMARK(BM_PrefixSetMatch);

void BM_PacketSampler(benchmark::State& state) {
  const netflow::PacketSampler sampler(4096);
  util::Rng rng(3);
  for (auto _ : state) {
    std::uint64_t total = 0;
    for (int i = 0; i < 1024; ++i) {
      total += sampler.sample_packets(500'000, rng);
    }
    benchmark::DoNotOptimize(total);
    state.SetItemsProcessed(state.items_processed() + 1024);
  }
}
BENCHMARK(BM_PacketSampler);

void BM_AndersonDarling(benchmark::State& state) {
  util::Rng rng(11);
  std::vector<double> samples(static_cast<std::size_t>(state.range(0)));
  for (auto& s : samples) s = rng.uniform01();
  for (auto _ : state) {
    const auto result = util::anderson_darling_uniform(samples);
    benchmark::DoNotOptimize(result.statistic);
  }
}
BENCHMARK(BM_AndersonDarling)->Arg(64)->Arg(1024)->Arg(16384);

}  // namespace

BENCHMARK_MAIN();
