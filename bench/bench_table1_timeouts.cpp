// Table 1 (inactive-timeout column): derive per-type inactive timeouts from
// the detected attack minutes with the paper's R² >= 85% regression rule and
// compare with the published values.
#include "detect/timeout_selector.h"
#include "exhibit.h"

int main() {
  using namespace dm;
  bench::banner("Table 1 (timeouts)",
                "Inactive timeouts selected from inactive-gap CDFs (R^2 >= 85%)");

  const auto& study = bench::shared_study();
  const auto choices = detect::select_timeouts(study.detection().minutes);

  util::TextTable table;
  table.set_header({"Attack", "selected T (min)", "paper T (min)", "avg R^2",
                    "in gaps", "out gaps"});
  for (const auto& c : choices) {
    table.row(std::string(sim::to_string(c.type)),
              static_cast<std::uint64_t>(c.timeout),
              static_cast<std::uint64_t>(sim::inactive_timeout(c.type)),
              util::format_double(c.avg_r_squared, 3), c.inbound_gaps,
              c.outbound_gaps);
  }
  std::fputs(table.render().c_str(), stdout);
  bench::paper_note(
      "Table 1 timeouts: SYN 1, UDP 1, ICMP 120, DNS 60, SPAM 60, "
      "Brute-force 60, SQL 30, PortScan 60, TDS 120 minutes.");
  return 0;
}
