// Figure 13: origins of inbound DNS reflection and spam by AS class —
// (a) share of attacks involving the class, (b) average share per AS.
#include "analysis/as_analysis.h"
#include "exhibit.h"

int main() {
  using namespace dm;
  bench::banner("Figure 13", "AS classes behind inbound DNS and spam");

  const auto& study = bench::shared_study();
  const auto spoof = analysis::analyze_spoofing(
      study.trace(), study.detection().incidents, &study.blacklist());
  const auto result = analysis::analyze_as(
      study.trace(), study.detection().incidents, study.scenario().ases(),
      netflow::Direction::kInbound, &spoof, &study.blacklist());

  const std::size_t dns = sim::index_of(sim::AttackType::kDnsReflection);
  const std::size_t spam = sim::index_of(sim::AttackType::kSpam);

  // Per-AS averages need the class sizes; recompute them from the registry.
  std::array<double, analysis::kAsClassCount> class_sizes{};
  for (const auto& as : study.scenario().ases().all()) {
    class_sizes[static_cast<std::size_t>(as.cls)] += 1.0;
  }

  util::TextTable table;
  table.set_header({"AS class", "DNS % of attacks", "SPAM % of attacks",
                    "DNS avg %/AS", "SPAM avg %/AS"});
  for (std::size_t c = 0; c < analysis::kAsClassCount; ++c) {
    const double dns_share = result.type_class_share[dns][c];
    const double spam_share = result.type_class_share[spam][c];
    table.row(std::string(cloud::to_string(cloud::kAllAsClasses[c])),
              util::format_percent(dns_share),
              util::format_percent(spam_share),
              util::format_percent(class_sizes[c] > 0 ? dns_share / class_sizes[c] : 0, 3),
              util::format_percent(class_sizes[c] > 0 ? spam_share / class_sizes[c] : 0, 3));
  }
  std::fputs(table.render().c_str(), stdout);
  bench::paper_note(
      "Paper: DNS reflection arrives roughly evenly from all AS classes "
      "(IXPs stand out per AS, each attack touches a median of 17 "
      "resolvers); spam comes from big clouds (81% of packets from one "
      "Singapore cloud AS), small ISPs, and customer networks; NICs almost "
      "never appear.");
  return 0;
}
