// Ablation: volume change threshold and EWMA window vs detection outcome.
//
// The paper fixes the change threshold at 100 sampled pkts/min (~7 Kpps) and
// the baseline at the EWMA of the past 10 windows. This sweep shows the
// trade-off those choices sit on: lower thresholds catch more ground-truth
// floods but start flagging benign variation; shorter EWMA windows adapt
// faster but absorb slow-ramping attacks.
#include <cstdio>

#include "core/study.h"
#include "exhibit.h"

namespace {

dm::sim::ScenarioConfig ablation_config() {
  auto config = dm::sim::ScenarioConfig::smoke();
  config.vips.vip_count = 300;
  config.days = 3;
  config.seed = 1234;
  return config;
}

/// Ground-truth floods with at least one overlapping detected incident.
std::pair<std::size_t, std::size_t> flood_recall(const dm::core::Study& study) {
  std::size_t total = 0;
  std::size_t hit = 0;
  for (const auto& e : study.truth().episodes) {
    if (!dm::sim::is_volume_based(e.type)) continue;
    ++total;
    for (const auto& inc : study.detection().incidents) {
      if (inc.type == e.type && inc.direction == e.direction &&
          inc.vip == e.vip && inc.start < e.end + 2 && e.start < inc.end + 2) {
        ++hit;
        break;
      }
    }
  }
  return {hit, total};
}

/// Detected volume incidents with no overlapping ground-truth episode of the
/// same type (benign variation flagged as attack).
std::size_t flood_false_alarms(const dm::core::Study& study) {
  std::size_t fp = 0;
  for (const auto& inc : study.detection().incidents) {
    if (!dm::sim::is_volume_based(inc.type)) continue;
    bool matched = false;
    for (const auto& e : study.truth().episodes) {
      if (inc.type == e.type && inc.direction == e.direction &&
          inc.vip == e.vip && inc.start < e.end + 2 && e.start < inc.end + 2) {
        matched = true;
        break;
      }
    }
    if (!matched) ++fp;
  }
  return fp;
}

}  // namespace

int main() {
  using namespace dm;
  bench::banner("Ablation: detection thresholds",
                "Volume change threshold and EWMA window sweep");

  util::TextTable table;
  table.set_header({"threshold (pkts/min)", "ewma window", "flood recall",
                    "false alarms", "total incidents"});
  for (double threshold : {25.0, 50.0, 100.0, 200.0, 400.0}) {
    detect::DetectionConfig dc;
    dc.volume_change_threshold = threshold;
    const core::Study study(ablation_config(), dc);
    const auto [hit, total] = flood_recall(study);
    table.row(util::format_double(threshold, 0), dc.ewma_window,
              std::to_string(hit) + "/" + std::to_string(total),
              flood_false_alarms(study), study.detection().incidents.size());
  }
  for (std::size_t window : {3u, 10u, 30u}) {
    detect::DetectionConfig dc;
    dc.ewma_window = window;
    const core::Study study(ablation_config(), dc);
    const auto [hit, total] = flood_recall(study);
    table.row("100", window, std::to_string(hit) + "/" + std::to_string(total),
              flood_false_alarms(study), study.detection().incidents.size());
  }
  std::fputs(table.render().c_str(), stdout);
  bench::paper_note(
      "The paper's 100 pkts/min (~7 Kpps) sits where recall flattens and "
      "false alarms stay near zero — the 'conservative' operating point "
      "§2.2 describes.");
  return 0;
}
