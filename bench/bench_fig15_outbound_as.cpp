// Figure 15: AS classes targeted by outbound attacks — share of attacks and
// average share per AS — plus the §6.2 clustering statistics.
#include "analysis/as_analysis.h"
#include "exhibit.h"

int main() {
  using namespace dm;
  bench::banner("Figure 15", "AS classes targeted by outbound attacks");

  const auto& study = bench::shared_study();
  const auto result = analysis::analyze_as(
      study.trace(), study.detection().incidents, study.scenario().ases(),
      netflow::Direction::kOutbound, nullptr, &study.blacklist());

  util::TextTable table;
  table.set_header({"AS class", "15a: % of attacks", "15b: avg % per AS",
                    "packet share"});
  for (std::size_t c = 0; c < analysis::kAsClassCount; ++c) {
    table.row(std::string(cloud::to_string(cloud::kAllAsClasses[c])),
              util::format_percent(result.class_share[c]),
              util::format_percent(result.per_as_share[c], 3),
              util::format_percent(result.packet_share[c]));
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nattacks confined to a single AS: %s  (paper: 80%%)\n",
              util::format_percent(result.single_as_fraction).c_str());
  std::printf("top-10 AS coverage: %s (paper 8.9%%); top-100: %s (paper 16.3%%)\n",
              util::format_percent(result.top10_share).c_str(),
              util::format_percent(result.top100_share).c_str());
  bench::paper_note(
      "Paper: 42% of outbound attacks hit big clouds (mostly SQL and TDS); "
      "small ISPs 25%, customer networks 13%; only 1.4% of brute-force hits "
      "mobile networks (NAT); 40% of outbound packets went to one Romanian "
      "hosting AS, 23.6% of outbound DNS reflection to one French ISP.");
  return 0;
}
