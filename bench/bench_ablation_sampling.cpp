// Ablation: NetFlow sampling rate vs what the study can see.
//
// The paper inherits 1:4096 sampling and argues (§3.2, citing [12,22,34])
// that sampling preserves flood detection but undercounts flows/spread.
// This sweep regenerates the same scenario at different sampling rates and
// measures both effects.
#include <cstdio>

#include "core/study.h"
#include "exhibit.h"
#include "util/stats.h"

int main() {
  using namespace dm;
  bench::banner("Ablation: sampling rate",
                "Detection and spread estimation vs packet sampling");

  util::TextTable table;
  table.set_header({"sampling", "records", "incidents", "flood recall",
                    "median BF remotes seen"});
  for (std::uint32_t sampling : {1024u, 4096u, 16384u}) {
    auto config = sim::ScenarioConfig::smoke();
    config.vips.vip_count = 300;
    config.days = 3;
    config.seed = 5150;
    config.sampling = sampling;
    const core::Study study(config);

    std::size_t floods = 0;
    std::size_t hit = 0;
    for (const auto& e : study.truth().episodes) {
      if (!sim::is_volume_based(e.type)) continue;
      if (e.peak_true_pps < 10'000.0) continue;  // comparable loud set
      ++floods;
      for (const auto& inc : study.detection().incidents) {
        if (inc.type == e.type && inc.direction == e.direction &&
            inc.vip == e.vip && inc.start < e.end + 2 && e.start < inc.end + 2) {
          ++hit;
          break;
        }
      }
    }

    std::vector<double> bf_remotes;
    for (const auto& inc : study.detection().incidents) {
      if (inc.type == sim::AttackType::kBruteForce) {
        bf_remotes.push_back(static_cast<double>(inc.peak_unique_remotes));
      }
    }

    table.row("1:" + std::to_string(sampling), study.record_count(),
              study.detection().incidents.size(),
              std::to_string(hit) + "/" + std::to_string(floods),
              util::format_double(util::median(bf_remotes), 0));
  }
  std::fputs(table.render().c_str(), stdout);
  bench::paper_note(
      "Loud floods survive coarser sampling almost unchanged; spread-based "
      "features (distinct brute-force sources seen) shrink with the "
      "sampling rate — the paper's 'numbers of flows are a lower bound' "
      "caveat (§3.2).");
  return 0;
}
