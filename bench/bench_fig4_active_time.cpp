// Figure 4: CDF of the fraction of a VIP's active time spent under attack.
#include "analysis/active_time.h"
#include "exhibit.h"

int main() {
  using namespace dm;
  bench::banner("Figure 4", "Share of VIP active time in attack");

  const auto& study = bench::shared_study();
  for (netflow::Direction dir :
       {netflow::Direction::kInbound, netflow::Direction::kOutbound}) {
    const auto result = analysis::compute_active_time(
        study.trace(), study.detection().minutes, dir);
    std::printf("--- %s ---  attacked VIPs: %zu\n",
                std::string(netflow::to_string(dir)).c_str(),
                result.vips.size());
    std::printf("attack-time fraction:");
    for (double q : {0.25, 0.5, 0.75, 0.9, 0.97}) {
      std::printf("  p%.0f=%s", q * 100,
                  util::format_percent(result.fraction_cdf.quantile(q), 2).c_str());
    }
    std::printf("\nVIPs in attack >50%% of active time: %s\n\n",
                util::format_percent(result.majority_attacked_fraction).c_str());
  }
  bench::paper_note(
      "50% of VIPs see inbound attacks for 0.2% of their active time "
      "(outbound: 1.2%); 3% of inbound / 8% of outbound attack VIPs spend "
      ">50% of their active time in attack.");
  return 0;
}
