// §5.1's provisioning argument, quantified: per-VIP peak provisioning vs a
// shared cloud-peak pool vs an elastic p99 pool, in SLB cores (300 Kpps per
// core, [42]).
#include "exhibit.h"
#include "mitigate/provisioning.h"

int main() {
  using namespace dm;
  bench::banner("Ablation: defense provisioning (§5.1)",
                "SLB cores required under three provisioning strategies");

  const auto& study = bench::shared_study();
  util::TextTable table;
  table.set_header({"direction", "attacked VIPs", "per-VIP peak cores",
                    "cloud peak cores", "elastic p99 cores",
                    "overprovision factor"});
  for (netflow::Direction dir :
       {netflow::Direction::kInbound, netflow::Direction::kOutbound}) {
    const auto plan = mitigate::plan_provisioning(
        study.detection().minutes, dir, study.sampling());
    table.row(std::string(netflow::to_string(dir)), plan.attacked_vips,
              util::format_double(plan.per_vip_peak_cores, 1),
              util::format_double(plan.cloud_peak_cores, 1),
              util::format_double(plan.elastic_cores, 1),
              util::format_double(plan.overprovision_factor(), 1) + "x");
  }
  std::fputs(table.render().c_str(), stdout);
  bench::paper_note(
      "Paper: a 9.2 Mpps UDP flood costs ~31 SLB cores; peak/median spreads "
      "of 20x-1000x make static per-VIP provisioning wasteful — elastic, "
      "multiplexed resources are the cost-effective design.");
  return 0;
}
