// Figure 8: median and maximum per-VIP (per-incident) peak attack throughput
// by type, plus the peak/median spread that motivates multiplexed defenses.
#include "analysis/throughput.h"
#include "exhibit.h"

int main() {
  using namespace dm;
  bench::banner("Figure 8", "Per-VIP peak attack throughput by type");

  const auto& study = bench::shared_study();
  util::TextTable table;
  table.set_header({"Attack", "dir", "median peak", "max peak", "max/median"});
  for (netflow::Direction dir :
       {netflow::Direction::kInbound, netflow::Direction::kOutbound}) {
    const auto result = analysis::compute_per_vip_throughput(
        study.detection().incidents, dir, study.sampling());
    for (sim::AttackType t : sim::kAllAttackTypes) {
      const auto& s = result.by_type[sim::index_of(t)];
      if (s.samples == 0) continue;
      table.row(std::string(sim::to_string(t)),
                std::string(netflow::to_string(dir)),
                util::format_pps(s.median_pps), util::format_pps(s.peak_pps),
                util::format_double(result.spread(t), 1) + "x");
    }
  }
  std::fputs(table.render().c_str(), stdout);
  bench::paper_note(
      "Paper: single VIPs absorb up to 8.7 Mpps (UDP) and 1.7 Mpps (SYN); "
      "port-scan peak/median spread reaches ~1000x, inbound brute-force "
      "361x, outbound brute-force 75x — over-provisioning per VIP is "
      "wasteful, multiplexing wins.");
  return 0;
}
