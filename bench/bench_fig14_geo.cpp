// Figure 14: geolocation of inbound attack sources and outbound attack
// targets (the paper's world maps, rendered as per-region shares).
#include "analysis/as_analysis.h"
#include "exhibit.h"

int main() {
  using namespace dm;
  bench::banner("Figure 14", "Attack geolocation distribution");

  const auto& study = bench::shared_study();
  const auto spoof = analysis::analyze_spoofing(
      study.trace(), study.detection().incidents, &study.blacklist());

  util::TextTable table;
  table.set_header({"Region", "inbound sources %", "outbound targets %"});
  const auto in = analysis::analyze_geo(
      study.trace(), study.detection().incidents, study.scenario().ases(),
      netflow::Direction::kInbound, &spoof, &study.blacklist());
  const auto out = analysis::analyze_geo(
      study.trace(), study.detection().incidents, study.scenario().ases(),
      netflow::Direction::kOutbound, &spoof, &study.blacklist());
  for (std::size_t r = 0; r < std::size(cloud::kAllGeoRegions); ++r) {
    table.row(std::string(cloud::to_string(cloud::kAllGeoRegions[r])),
              util::format_percent(in.region_share[r]),
              util::format_percent(out.region_share[r]));
  }
  std::fputs(table.render().c_str(), stdout);
  bench::paper_note(
      "Paper: inbound sources concentrate in Europe, Eastern Asia and North "
      "America, with one Spanish AS above 35%; outbound targets concentrate "
      "in Europe and North America, with fewer targets in Eastern Asia and "
      "the same Spanish AS again above 35%.");
  return 0;
}
