// Figure 5: the compromise case study — a dormant partner VIP receives a
// week of inbound RDP brute-force, then erupts with outbound UDP floods.
// Prints the daily time series for the case VIP plus the detected
// inbound-to-outbound chains.
#include <algorithm>
#include <map>

#include "detect/correlator.h"
#include "exhibit.h"

int main() {
  using namespace dm;
  bench::banner("Figure 5",
                "Inbound brute-force followed by outbound UDP flood on the "
                "same VIP");

  const auto& study = bench::shared_study();

  // Locate the scripted case-study VIP: the inbound brute-force episode with
  // the longest duration on a VIP that also originates outbound UDP floods.
  const sim::AttackEpisode* bf = nullptr;
  for (const auto& e : study.truth().episodes) {
    if (e.type == sim::AttackType::kBruteForce &&
        e.direction == netflow::Direction::kInbound &&
        (bf == nullptr || e.duration() > bf->duration())) {
      bf = &e;
    }
  }
  if (bf == nullptr) {
    std::printf("no brute-force episode found\n");
    return 1;
  }

  std::printf("case VIP: %s (inbound RDP brute-force %s..%s from %zu hosts)\n\n",
              bf->vip.to_string().c_str(), util::format_minute(bf->start).c_str(),
              util::format_minute(bf->end).c_str(), bf->remote_hosts.size());

  // Half-day buckets: estimated RDP connections and outbound UDP rate.
  std::map<std::int64_t, std::pair<std::uint64_t, std::uint64_t>> buckets;
  const auto sampling = study.sampling();
  for (const auto& w : study.trace().series(bf->vip, netflow::Direction::kInbound)) {
    buckets[w.minute / 720].first += w.remote_admin_flows;
  }
  for (const auto& w : study.trace().series(bf->vip, netflow::Direction::kOutbound)) {
    buckets[w.minute / 720].second += w.udp_packets;
  }
  util::TextTable table;
  table.set_header({"half-day", "est. RDP connections (K)", "est. UDP out (Kpps avg)"});
  for (const auto& [bucket, counts] : buckets) {
    table.row("d" + util::format_double(static_cast<double>(bucket) / 2.0, 1),
              util::format_double(static_cast<double>(counts.first) * sampling / 1000.0, 1),
              util::format_double(static_cast<double>(counts.second) * sampling /
                                      (720.0 * 60.0) / 1000.0, 2));
  }
  std::fputs(table.render().c_str(), stdout);

  const auto chains =
      detect::find_compromise_chains(study.detection().incidents);
  std::printf("\ndetected inbound->outbound compromise chains: %zu\n",
              chains.size());
  for (std::size_t i = 0; i < chains.size() && i < 5; ++i) {
    const auto& c = chains[i];
    const auto& in = study.detection().incidents[c.inbound_incident];
    const auto& out = study.detection().incidents[c.outbound_incident];
    std::printf("  vip=%s  %s in at %s -> %s out at %s (gap %s)\n",
                c.vip.to_string().c_str(),
                std::string(sim::to_string(in.type)).c_str(),
                util::format_minute(in.start).c_str(),
                std::string(sim::to_string(out.type)).c_str(),
                util::format_minute(out.start).c_str(),
                util::format_minutes(static_cast<double>(c.gap_minutes)).c_str());
  }
  bench::paper_note(
      "Paper case: ~70K RDP connections/min at peak for >1 week (70.3% of "
      "packets from 3 addresses in one Asian AS), then outbound UDP floods "
      "against 491 sites peaking at 23 Kpps for >2 days.");
  return 0;
}
