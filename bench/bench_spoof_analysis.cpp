// §6.1: Anderson-Darling spoofed-source inference — fraction of inbound
// attacks per type whose source addresses are uniform over the IPv4 space.
#include "analysis/spoof_analysis.h"
#include "exhibit.h"

int main() {
  using namespace dm;
  bench::banner("Spoofing (§6.1)",
                "Anderson-Darling uniformity test over attack sources");

  const auto& study = bench::shared_study();
  const auto spoof = analysis::analyze_spoofing(
      study.trace(), study.detection().incidents, &study.blacklist());

  util::TextTable table;
  table.set_header({"Attack", "tested incidents", "% spoofed"});
  for (sim::AttackType t : sim::kAllAttackTypes) {
    const std::size_t i = sim::index_of(t);
    if (spoof.tested[i] == 0) continue;
    table.row(std::string(sim::to_string(t)), spoof.tested[i],
              util::format_percent(spoof.spoofed_fraction[i]));
  }
  std::fputs(table.render().c_str(), stdout);
  bench::paper_note(
      "Paper: 67.1% of inbound TCP SYN floods carry spoofed (uniformly "
      "distributed) sources — unlike the 2006 Internet study, where most "
      "floods were unspoofed.");
  return 0;
}
