// §7 made executable: replay the detected attacks against the cloud's
// mitigation practices and report what each mechanism absorbs — plus the
// §5.2 point that 5-minute reaction loops are too slow for 1-3 minute ramps.
#include <map>

#include "analysis/spoof_analysis.h"
#include "exhibit.h"
#include "mitigate/engine.h"

int main() {
  using namespace dm;
  bench::banner("Mitigation (§7)",
                "Replaying detected attacks against existing security "
                "practices");

  const auto& study = bench::shared_study();
  const auto spoof = analysis::analyze_spoofing(
      study.trace(), study.detection().incidents, &study.blacklist());

  const mitigate::MitigationEngine engine{mitigate::MitigationPolicy{}};
  const auto report =
      engine.evaluate(study.trace(), study.detection().incidents,
                      study.sampling(), &study.blacklist(), &spoof);

  util::TextTable table;
  table.set_header({"Attack", "incidents", "absorbed"});
  for (sim::AttackType t : sim::kAllAttackTypes) {
    const std::size_t i = sim::index_of(t);
    if (report.incidents_by_type[i] == 0) continue;
    table.row(std::string(sim::to_string(t)), report.incidents_by_type[i],
              util::format_percent(report.absorption_by_type[i]));
  }
  std::fputs(table.render().c_str(), stdout);

  std::map<mitigate::ActionKind, std::size_t> per_kind;
  for (const auto& a : report.actions) per_kind[a.kind] += 1;
  std::printf("\nactions taken:\n");
  for (const auto& [kind, n] : per_kind) {
    std::printf("  %-18s %zu\n", std::string(mitigate::to_string(kind)).c_str(),
                n);
  }
  std::printf("\noverall absorption: %s; VIPs shut down: %llu; median time "
              "to mitigate: %.1f min\n",
              util::format_percent(report.total_absorption).c_str(),
              static_cast<unsigned long long>(report.shutdown_vips),
              report.median_time_to_mitigate);

  // Reaction-latency sweep: the §5.2 argument that 5-minute detection loops
  // miss the ramp.
  std::printf("\nreaction latency sweep (volume attacks ramp in 1-3 min):\n");
  for (util::Minute latency : {0, 1, 2, 5, 10}) {
    mitigate::MitigationPolicy policy;
    policy.inline_latency = latency;
    const auto swept = mitigate::MitigationEngine{policy}.evaluate(
        study.trace(), study.detection().incidents, study.sampling(),
        &study.blacklist(), &spoof);
    std::printf("  latency %2lld min -> absorption %s\n",
                static_cast<long long>(latency),
                util::format_percent(swept.total_absorption).c_str());
  }
  bench::paper_note(
      "§7: SYN cookies, rate limits, blacklists, outbound caps, SMTP "
      "limits, and aggressive VM shutdown; §5.2: ~5-minute detection is not "
      "fast enough to beat 1-3 minute ramp-ups; §6.1: blacklists cannot "
      "touch the 67% of SYN floods that spoof their sources.");
  return 0;
}
