// Figure 12: share of each inbound attack type originating from big-cloud
// and mobile ASes.
#include "analysis/as_analysis.h"
#include "exhibit.h"

int main() {
  using namespace dm;
  bench::banner("Figure 12",
                "Inbound attacks from big clouds and mobile networks");

  const auto& study = bench::shared_study();
  const auto spoof = analysis::analyze_spoofing(
      study.trace(), study.detection().incidents, &study.blacklist());
  const auto result = analysis::analyze_as(
      study.trace(), study.detection().incidents, study.scenario().ases(),
      netflow::Direction::kInbound, &spoof, &study.blacklist());

  const auto big = static_cast<std::size_t>(cloud::AsClass::kBigCloud);
  const auto mobile = static_cast<std::size_t>(cloud::AsClass::kMobile);
  util::TextTable table;
  table.set_header({"Attack", "% from BigCloud", "% from Mobile"});
  for (sim::AttackType t : sim::kAllAttackTypes) {
    if (t == sim::AttackType::kSynFlood) continue;  // as in the paper's figure
    table.row(std::string(sim::to_string(t)),
              util::format_percent(result.type_class_share[sim::index_of(t)][big]),
              util::format_percent(result.type_class_share[sim::index_of(t)][mobile]));
  }
  std::fputs(table.render().c_str(), stdout);
  bench::paper_note(
      "Paper: big clouds contribute mostly UDP floods, SQL injection and "
      "TDS (35% of TDS attacks with 0.21% of TDS IPs); mobile networks "
      "contribute UDP floods, DNS reflection, and brute-force (2.1% of "
      "inbound attack traffic).");
  return 0;
}
