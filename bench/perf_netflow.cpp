// google-benchmark microbenchmarks of the NetFlow substrate: binary trace
// serialization round-trips.
#include <benchmark/benchmark.h>

#include <sstream>

#include "netflow/trace_io.h"
#include "util/rng.h"

namespace {

using namespace dm;

std::vector<netflow::FlowRecord> synth_records(std::size_t n) {
  util::Rng rng(123);
  std::vector<netflow::FlowRecord> records(n);
  util::Minute minute = 0;
  for (auto& r : records) {
    if (rng.chance(0.01)) ++minute;
    r.minute = minute;
    r.src_ip = netflow::IPv4(static_cast<std::uint32_t>(rng()));
    r.dst_ip = netflow::IPv4(static_cast<std::uint32_t>(rng()));
    r.src_port = static_cast<std::uint16_t>(rng.below(65536));
    r.dst_port = static_cast<std::uint16_t>(rng.below(65536));
    r.protocol = rng.chance(0.7) ? netflow::Protocol::kTcp : netflow::Protocol::kUdp;
    r.tcp_flags = static_cast<netflow::TcpFlags>(rng.below(64));
    r.packets = static_cast<std::uint32_t>(1 + rng.below(100));
    r.bytes = r.packets * (40 + rng.below(1400));
  }
  return records;
}

void BM_TraceWrite(benchmark::State& state) {
  const auto records = synth_records(100'000);
  for (auto _ : state) {
    std::ostringstream out;
    netflow::TraceWriter writer(out, 4096);
    writer.write_all(records);
    writer.finish();
    benchmark::DoNotOptimize(out.str().size());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(records.size()));
  }
}
BENCHMARK(BM_TraceWrite)->Unit(benchmark::kMillisecond);

void BM_TraceRead(benchmark::State& state) {
  const auto records = synth_records(100'000);
  std::ostringstream out;
  netflow::TraceWriter writer(out, 4096);
  writer.write_all(records);
  writer.finish();
  const std::string payload = out.str();
  for (auto _ : state) {
    std::istringstream in(payload);
    netflow::TraceReader reader(in);
    const auto loaded = reader.read_all();
    benchmark::DoNotOptimize(loaded.data());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(loaded.size()));
  }
}
BENCHMARK(BM_TraceRead)->Unit(benchmark::kMillisecond);

void BM_Crc32(benchmark::State& state) {
  std::vector<std::uint8_t> data(1 << 20);
  util::Rng rng(5);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(netflow::crc32(data));
    state.SetBytesProcessed(state.bytes_processed() +
                            static_cast<std::int64_t>(data.size()));
  }
}
BENCHMARK(BM_Crc32);

}  // namespace

BENCHMARK_MAIN();
