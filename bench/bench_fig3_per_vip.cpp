// Figure 3: (a) CDF of attacks per (VIP, day); (b)/(c) attack mix for VIPs
// with occasional (<=10/day) vs frequent (>10/day) attacks.
#include "analysis/vip_frequency.h"
#include "exhibit.h"

int main() {
  using namespace dm;
  bench::banner("Figure 3", "Attack frequency per VIP");

  const auto& study = bench::shared_study();
  for (netflow::Direction dir :
       {netflow::Direction::kInbound, netflow::Direction::kOutbound}) {
    const auto freq =
        analysis::compute_vip_frequency(study.detection().incidents, dir);
    std::printf("--- %s ---\n", std::string(netflow::to_string(dir)).c_str());
    std::printf("(VIP, day) pairs: %zu; single-attack pairs: %s; "
                ">10 attacks/day: %s; max attacks/day: %u\n",
                freq.pairs.size(),
                util::format_percent(freq.single_attack_fraction).c_str(),
                util::format_percent(freq.frequent_fraction).c_str(),
                freq.max_attacks_per_day);

    std::printf("Fig 3a CDF of attacks/day:");
    for (double q : {0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
      std::printf("  p%.0f=%.0f", q * 100, freq.attacks_per_day.quantile(q));
    }
    std::printf("\n");

    util::TextTable table;
    table.set_header({"Attack", "occasional VIPs %", "frequent VIPs %"});
    for (sim::AttackType t : sim::kAllAttackTypes) {
      table.row(std::string(sim::to_string(t)),
                util::format_percent(freq.occasional_mix[sim::index_of(t)]),
                util::format_percent(freq.frequent_mix[sim::index_of(t)]));
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n");
  }
  bench::paper_note(
      "53% of inbound and 44% of outbound (VIP, day) pairs see exactly one "
      "attack; tails reach 39 inbound and >144 outbound attacks per day. "
      "Occasional VIPs skew to TDS/port-scan/brute-force; frequent VIPs to "
      "floods.");
  return 0;
}
