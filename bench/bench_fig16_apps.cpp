// Figure 16: Internet applications targeted by outbound attacks (#VIPs per
// application port).
#include "analysis/service_mix.h"
#include "exhibit.h"

int main() {
  using namespace dm;
  bench::banner("Figure 16", "Internet applications under outbound attack");

  const auto& study = bench::shared_study();
  const auto targets = analysis::compute_outbound_app_targets(
      study.trace(), study.detection().incidents);

  util::TextTable table;
  table.set_header({"Application", "#attacking VIPs"});
  for (std::size_t s = 0; s < analysis::kReportedServiceCount; ++s) {
    table.row(std::string(cloud::to_string(analysis::kReportedServices[s])),
              targets.vips_per_service[s]);
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nattacking VIPs: %llu; web (HTTP/HTTPS) share: %s\n",
              static_cast<unsigned long long>(targets.attacking_vips),
              util::format_percent(targets.web_share).c_str());
  bench::paper_note(
      "Paper: HTTP+HTTPS account for 64.5% of attack VIPs (69% of outbound "
      "UDP floods target port 80); SQL, SMTP and SSH follow.");
  return 0;
}
