// Ablation: per-type inactive timeouts (Table 1) vs one global timeout.
//
// Grouping attack minutes with a single global T either shreds long
// low-duty-cycle attacks into fragments (T too small) or fuses distinct
// attacks into one (T too large); the per-type table keeps incident counts
// close to the ground-truth episode count.
#include <cstdio>

#include "core/study.h"
#include "exhibit.h"

int main() {
  using namespace dm;
  bench::banner("Ablation: inactive timeouts",
                "Per-type Table 1 timeouts vs fixed global timeouts");

  auto config = sim::ScenarioConfig::smoke();
  config.vips.vip_count = 300;
  config.days = 3;
  config.seed = 99;

  util::TextTable table;
  table.set_header({"timeout policy", "incidents", "episodes (truth)",
                    "incidents/episode"});

  const auto run = [&](const std::string& label, detect::TimeoutTable timeouts) {
    const core::Study study(config, detect::DetectionConfig{}, timeouts);
    const double ratio = static_cast<double>(study.detection().incidents.size()) /
                         static_cast<double>(study.truth().episodes.size());
    table.row(label, study.detection().incidents.size(),
              study.truth().episodes.size(), util::format_double(ratio, 2));
  };

  run("per-type (Table 1)", detect::TimeoutTable::paper());
  for (util::Minute global : {1, 10, 60, 240}) {
    detect::TimeoutTable t{};
    for (auto& v : t.timeout) v = global;
    run("global T=" + std::to_string(global) + " min", t);
  }
  std::fputs(table.render().c_str(), stdout);
  bench::paper_note(
      "§2.2/Fig 1: a single T cannot serve SYN floods (gaps < 1 min) and "
      "ICMP/TDS activity (gaps of hours) simultaneously; the per-type "
      "choice keeps the incident/episode ratio nearest 1.");
  return 0;
}
