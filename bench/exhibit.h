// Shared scaffolding for the experiment binaries (one per paper exhibit).
//
// Each binary regenerates one table or figure of the paper from a common
// paper-scale study. Scale is configurable through environment variables so
// CI can run a reduced configuration:
//   DM_DAYS, DM_VIPS, DM_SEED — override ScenarioConfig::paper_scale().
//   DM_THREADS — pipeline thread count (0/unset = all hardware threads,
//   1 = serial); the study output is byte-identical for every value.
#pragma once

#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/study.h"
#include "util/table.h"

namespace dm::bench {

/// Peak resident set size (high-water mark) of the process in MiB.
/// getrusage-based, so it is monotone over the process lifetime: a row's
/// value is the largest footprint of anything run so far, which is why the
/// perf suites run memory-sensitive benchmarks in separate processes (see
/// tools/bench_json.sh).
inline double peak_rss_mib() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  // Linux reports ru_maxrss in KiB.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/// Resident footprint of the columnar record store, normalized per kept
/// record — the compression headline next to the 41 bytes/record the old
/// array-of-structs storage (FlowRecord + Direction) cost.
inline double encoded_bytes_per_record(const netflow::WindowedTrace& trace) {
  const std::size_t n = trace.record_count();
  if (n == 0) return 0.0;
  return static_cast<double>(trace.store().encoded_bytes()) /
         static_cast<double>(n);
}

inline sim::ScenarioConfig scaled_config() {
  sim::ScenarioConfig config = sim::ScenarioConfig::paper_scale();
  if (const char* days = std::getenv("DM_DAYS")) config.days = std::atoi(days);
  if (const char* vips = std::getenv("DM_VIPS")) {
    config.vips.vip_count = static_cast<std::uint32_t>(std::atoi(vips));
  }
  if (const char* seed = std::getenv("DM_SEED")) {
    config.seed = static_cast<std::uint64_t>(std::atoll(seed));
  }
  if (const char* threads = std::getenv("DM_THREADS")) {
    const int t = std::atoi(threads);
    config.thread_count = t > 0 ? static_cast<unsigned>(t) : 0;
  }
  return config;
}

/// The shared study: built once per process.
inline const core::Study& shared_study() {
  static const core::Study study{scaled_config()};
  return study;
}

inline void banner(const std::string& exhibit, const std::string& caption) {
  std::printf("=== %s ===\n%s\n\n", exhibit.c_str(), caption.c_str());
}

inline void paper_note(const std::string& note) {
  std::printf("\n[paper] %s\n", note.c_str());
}

}  // namespace dm::bench
