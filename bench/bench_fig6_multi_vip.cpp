// Figure 6: the 99th percentile and peak number of VIPs simultaneously
// involved in the same type of attack (start times within five minutes).
#include <algorithm>
#include <vector>

#include "detect/correlator.h"
#include "exhibit.h"
#include "util/stats.h"

int main() {
  using namespace dm;
  bench::banner("Figure 6",
                "VIPs simultaneously involved in same-type attacks");

  const auto& study = bench::shared_study();
  const auto events = detect::find_multi_vip(study.detection().incidents);

  util::TextTable table;
  table.set_header({"Attack", "dir", "events", "p99 #VIPs", "peak #VIPs"});
  for (sim::AttackType t : sim::kAllAttackTypes) {
    for (netflow::Direction dir :
         {netflow::Direction::kInbound, netflow::Direction::kOutbound}) {
      std::vector<double> sizes;
      for (const auto& e : events) {
        if (e.type == t && e.direction == dir) {
          sizes.push_back(static_cast<double>(e.vip_count));
        }
      }
      if (sizes.empty()) continue;
      std::sort(sizes.begin(), sizes.end());
      table.row(std::string(sim::to_string(t)),
                std::string(netflow::to_string(dir)), sizes.size(),
                util::format_double(util::quantile_sorted(sizes, 0.99), 0),
                util::format_double(sizes.back(), 0));
    }
  }
  std::fputs(table.render().c_str(), stdout);

  // Multi-vector summary (§4.2) shares this correlation machinery.
  const auto mv = detect::find_multi_vector(study.detection().incidents);
  std::size_t mv_in = 0, mv_out = 0, bf_syn_icmp = 0;
  for (const auto& e : mv) {
    (e.direction == netflow::Direction::kInbound ? mv_in : mv_out) += 1;
    if (e.direction == netflow::Direction::kOutbound &&
        e.has(sim::AttackType::kBruteForce) &&
        (e.has(sim::AttackType::kSynFlood) || e.has(sim::AttackType::kIcmpFlood))) {
      ++bf_syn_icmp;
    }
  }
  std::printf("\nmulti-vector events: inbound=%zu outbound=%zu "
              "(outbound brute-force+flood bundles: %zu)\n",
              mv_in, mv_out, bf_syn_icmp);
  bench::paper_note(
      "Inbound brute-force campaigns peak at 66 VIPs (53 at p99); outbound "
      "UDP/spam/brute-force/SQL involve ~20 VIPs at p99, >40 at peak. 106 "
      "VIPs saw inbound multi-vector attacks, 74 outbound; 35 VIPs paired "
      "brute-force with SYN/ICMP floods.");
  return 0;
}
