// §3.1's seasonal observation: inbound flood attacks increase significantly
// during the holiday shopping season (the paper's Nov/Dec months vs May).
// Compares a May-like study against a holiday-season one.
#include "analysis/overview.h"
#include "core/study.h"
#include "exhibit.h"

namespace {

dm::sim::ScenarioConfig scaled(dm::sim::ScenarioConfig config) {
  // Respect the DM_* environment overrides of the shared configuration.
  const auto base = dm::bench::scaled_config();
  config.days = base.days;
  config.vips.vip_count = base.vips.vip_count;
  return config;
}

}  // namespace

int main() {
  using namespace dm;
  bench::banner("Seasonality (§3.1)",
                "Inbound flood volume: ordinary month vs holiday season");

  const core::Study may{scaled(sim::ScenarioConfig::paper_scale())};
  const core::Study december{scaled(sim::ScenarioConfig::holiday_season())};

  const auto count_floods = [](const core::Study& study,
                               netflow::Direction dir) {
    std::size_t floods = 0;
    for (const auto& inc : study.detection().incidents) {
      if (inc.direction == dir && sim::is_flood(inc.type)) ++floods;
    }
    return floods;
  };

  util::TextTable table;
  table.set_header({"month", "inbound floods", "outbound floods",
                    "all incidents"});
  table.row("May (baseline)",
            count_floods(may, netflow::Direction::kInbound),
            count_floods(may, netflow::Direction::kOutbound),
            may.detection().incidents.size());
  table.row("Nov/Dec (holiday)",
            count_floods(december, netflow::Direction::kInbound),
            count_floods(december, netflow::Direction::kOutbound),
            december.detection().incidents.size());
  std::fputs(table.render().c_str(), stdout);

  const double ratio =
      static_cast<double>(count_floods(december, netflow::Direction::kInbound)) /
      static_cast<double>(
          std::max<std::size_t>(1, count_floods(may, netflow::Direction::kInbound)));
  std::printf("\ninbound flood increase: %.1fx\n", ratio);
  bench::paper_note(
      "§3.1: \"a significant increase of inbound flood attacks during Nov "
      "and Dec compared to May, possibly to disrupt the e-commerce sites "
      "hosted in the cloud during the busy holiday shopping season\".");
  return 0;
}
