// Table 2: detected attacks vs (simulated) DDoS-appliance alerts for inbound
// and operator incident reports for outbound.
#include "analysis/validation.h"
#include "exhibit.h"

int main() {
  using namespace dm;
  bench::banner("Table 2",
                "Coverage of appliance alerts (inbound) and incident reports "
                "(outbound) by our NetFlow-based detections");

  const auto& study = bench::shared_study();
  analysis::ValidationConfig config;
  util::Rng rng(study.scenario().config().seed ^ 0x7a11da7eULL);
  const auto alerts =
      analysis::simulate_appliance_alerts(study.truth(), config, rng);
  const auto reports =
      analysis::simulate_incident_reports(study.truth(), config, rng);
  const auto result = analysis::validate(study.detection().incidents, alerts,
                                         reports, config);

  util::TextTable table;
  table.set_header({"Attack", "Inbound det/alerts", "Outbound det/reports"});
  for (sim::AttackType t : sim::kAllAttackTypes) {
    const auto& in = result.inbound[sim::index_of(t)];
    const auto& out = result.outbound[sim::index_of(t)];
    auto cell = [](const analysis::ValidationRow& row) {
      return row.total == 0 ? std::string("-")
                            : std::to_string(row.matched) + "/" +
                                  std::to_string(row.total);
    };
    table.row(std::string(sim::to_string(t)), cell(in), cell(out));
  }
  table.row("Others (malware/phishing)", "-",
            "0/" + std::to_string(result.outbound_other.total));
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nTotal inbound coverage:  %s   (paper: 504/642 = 78.5%%)\n",
              util::format_percent(result.inbound_coverage).c_str());
  std::printf("Total outbound coverage: %s   (paper: 108/129 = 83.7%%)\n",
              util::format_percent(result.outbound_coverage).c_str());
  bench::paper_note(
      "Misses stem from NetFlow sampling, appliance false positives, and "
      "attacks without network signatures (phishing, malware hosting, FTP "
      "brute-force).");
  return 0;
}
