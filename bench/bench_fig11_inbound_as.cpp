// Figure 11: AS classes generating inbound attacks — (a) share of attacks
// involving each class, (b) average share per individual AS of the class.
#include "analysis/as_analysis.h"
#include "exhibit.h"

int main() {
  using namespace dm;
  bench::banner("Figure 11", "AS classes behind inbound attacks");

  const auto& study = bench::shared_study();
  const auto spoof = analysis::analyze_spoofing(
      study.trace(), study.detection().incidents, &study.blacklist());
  const auto result = analysis::analyze_as(
      study.trace(), study.detection().incidents, study.scenario().ases(),
      netflow::Direction::kInbound, &spoof, &study.blacklist());

  util::TextTable table;
  table.set_header({"AS class", "11a: % of attacks", "11b: avg % per AS",
                    "packet share"});
  for (std::size_t c = 0; c < analysis::kAsClassCount; ++c) {
    table.row(std::string(cloud::to_string(cloud::kAllAsClasses[c])),
              util::format_percent(result.class_share[c]),
              util::format_percent(result.per_as_share[c], 3),
              util::format_percent(result.packet_share[c]));
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nmapped incidents: %llu / %llu; top AS involvement: %s (ASN %u)\n",
              static_cast<unsigned long long>(result.incidents_mapped),
              static_cast<unsigned long long>(result.incidents_total),
              util::format_percent(result.top_as_share).c_str(), result.top_asn);
  bench::paper_note(
      "Paper: small ISPs 25.4% and customer networks 15.9% of inbound "
      "attacks; per-AS averages highest for big clouds and IXPs; one AS in "
      "Spain is involved in >35% of attacks.");
  return 0;
}
