// Figure 9: median and 99th-percentile attack duration by type.
#include "analysis/timing.h"
#include "exhibit.h"

int main() {
  using namespace dm;
  bench::banner("Figure 9", "Attack duration by type");

  const auto& study = bench::shared_study();
  util::TextTable table;
  table.set_header({"Attack", "in median", "in p99", "out median", "out p99"});
  const auto in = analysis::compute_timing(study.detection().incidents,
                                           netflow::Direction::kInbound);
  const auto out = analysis::compute_timing(study.detection().incidents,
                                            netflow::Direction::kOutbound);
  for (sim::AttackType t : sim::kAllAttackTypes) {
    const auto& i = in.duration[sim::index_of(t)];
    const auto& o = out.duration[sim::index_of(t)];
    table.row(std::string(sim::to_string(t)),
              i.samples ? util::format_minutes(i.median) : "-",
              i.samples ? util::format_minutes(i.p99) : "-",
              o.samples ? util::format_minutes(o.median) : "-",
              o.samples ? util::format_minutes(o.p99) : "-");
  }
  std::fputs(table.render().c_str(), stdout);
  bench::paper_note(
      "Paper: median durations within 10 minutes everywhere; port scans "
      "finish within a minute (p99 ~100 min); SYN floods p99 85 min; DNS "
      "reflection lasts longest (days at p99). Fast detection is mandatory.");
  return 0;
}
