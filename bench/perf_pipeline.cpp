// google-benchmark microbenchmarks of the end-to-end pipeline stages:
// trace generation, window aggregation, and detection.
#include <benchmark/benchmark.h>

#include "core/study.h"
#include "detect/pipeline.h"
#include "netflow/window_aggregator.h"
#include "sim/trace_generator.h"

namespace {

using namespace dm;

sim::ScenarioConfig perf_config() {
  auto config = sim::ScenarioConfig::smoke();
  config.vips.vip_count = 200;
  config.days = 1;
  config.seed = 77;
  return config;
}

const sim::Scenario& perf_scenario() {
  static const sim::Scenario scenario{perf_config()};
  return scenario;
}

const sim::TraceResult& perf_trace() {
  static const sim::TraceResult trace = sim::generate_trace(perf_scenario());
  return trace;
}

const netflow::WindowedTrace& perf_windows() {
  static const netflow::WindowedTrace windows = [] {
    auto records = perf_trace().records;
    return netflow::aggregate_windows(
        std::move(records), perf_scenario().vips().cloud_space(),
        &perf_scenario().tds().as_prefix_set());
  }();
  return windows;
}

void BM_GenerateTrace(benchmark::State& state) {
  for (auto _ : state) {
    const auto result = sim::generate_trace(perf_scenario());
    benchmark::DoNotOptimize(result.records.data());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(result.records.size()));
  }
}
BENCHMARK(BM_GenerateTrace)->Unit(benchmark::kMillisecond);

void BM_AggregateWindows(benchmark::State& state) {
  for (auto _ : state) {
    auto records = perf_trace().records;  // the copy is part of the workload
    const auto windows = netflow::aggregate_windows(
        std::move(records), perf_scenario().vips().cloud_space(),
        &perf_scenario().tds().as_prefix_set());
    benchmark::DoNotOptimize(windows.windows().data());
    state.SetItemsProcessed(
        state.items_processed() +
        static_cast<std::int64_t>(perf_trace().records.size()));
  }
}
BENCHMARK(BM_AggregateWindows)->Unit(benchmark::kMillisecond);

void BM_DetectMinutes(benchmark::State& state) {
  const detect::DetectionPipeline pipeline;
  for (auto _ : state) {
    const auto minutes = pipeline.detect_minutes(perf_windows());
    benchmark::DoNotOptimize(minutes.data());
    state.SetItemsProcessed(
        state.items_processed() +
        static_cast<std::int64_t>(perf_windows().windows().size()));
  }
}
BENCHMARK(BM_DetectMinutes)->Unit(benchmark::kMillisecond);

void BM_FullDetection(benchmark::State& state) {
  const detect::DetectionPipeline pipeline;
  for (auto _ : state) {
    const auto result = pipeline.run(perf_windows());
    benchmark::DoNotOptimize(result.incidents.data());
  }
}
BENCHMARK(BM_FullDetection)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
