// google-benchmark microbenchmarks of the end-to-end pipeline stages:
// trace generation, window aggregation, and detection — each parameterized
// by thread count, so a run prints a threads-vs-throughput scaling table
// per stage plus end-to-end (the BM_*/N rows; items/s is the throughput
// column). Output is byte-identical across thread counts by construction,
// so the rows measure the same work.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "core/study.h"
#include "detect/pipeline.h"
#include "exec/thread_pool.h"
#include "exhibit.h"
#include "netflow/varint.h"
#include "netflow/window_aggregator.h"
#include "serve/supervisor.h"
#include "serve/writer.h"
#include "sim/trace_generator.h"

namespace {

using namespace dm;

sim::ScenarioConfig perf_config() {
  auto config = sim::ScenarioConfig::smoke();
  config.vips.vip_count = 200;
  config.days = 1;
  config.seed = 77;
  return config;
}

const sim::Scenario& perf_scenario() {
  static const sim::Scenario scenario{perf_config()};
  return scenario;
}

const sim::TraceResult& perf_trace() {
  static const sim::TraceResult trace = sim::generate_trace(perf_scenario());
  return trace;
}

const netflow::WindowedTrace& perf_windows() {
  static const netflow::WindowedTrace windows = [] {
    auto records = perf_trace().records;
    return netflow::aggregate_windows(
        std::move(records), perf_scenario().vips().cloud_space(),
        &perf_scenario().tds().as_prefix_set());
  }();
  return windows;
}

// Kernel-level decode throughput, visible separately from end-to-end noise.
// swar:0 is the scalar byte-loop decoder, swar:1 the 8-byte-word SWAR
// kernel; both walk the same deterministic stream of mixed-width varints
// (encoded lengths cycling 1..8 bytes, the columnar payload's range).
void BM_VarintDecode(benchmark::State& state) {
  const bool swar = state.range(0) != 0;
  constexpr std::size_t kCount = 1 << 20;
  std::vector<std::uint8_t> buf;
  buf.reserve(kCount * 5);
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (std::size_t i = 0; i < kCount; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const unsigned bits = 1 + static_cast<unsigned>((i * 7) % 56);
    netflow::put_varint(buf, x & (~std::uint64_t{0} >> (64 - bits)));
  }
  // Tail pad so the SWAR kernel's 8-byte word loads stay in bounds on the
  // final varints (kSwarRecordSlack is the per-record budget real decoders
  // use; a flat pad serves the same purpose here).
  buf.insert(buf.end(), netflow::kSwarRecordSlack, 0);

  for (auto _ : state) {
    const std::uint8_t* p = buf.data();
    std::uint64_t acc = 0;
    if (swar) {
      for (std::size_t i = 0; i < kCount; ++i) {
        acc += netflow::get_varint_swar(p);
      }
    } else {
      for (std::size_t i = 0; i < kCount; ++i) {
        acc += netflow::get_varint(p);
      }
    }
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(kCount));
  }
}
BENCHMARK(BM_VarintDecode)
    ->ArgName("swar")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Full-store decode: the scalar Cursor (block:0) vs the SoA BlockCursor
// (block:1) over the same aggregated canonical store — the codec-level view
// of the tentpole win, on real run-length/delta-encoded data.
void BM_BlockDecode(benchmark::State& state) {
  const bool block_mode = state.range(0) != 0;
  const netflow::RecordStore& store = perf_windows().store();
  const std::size_t n = store.size();

  for (auto _ : state) {
    std::uint64_t acc = 0;
    if (block_mode) {
      netflow::RecordStore::BlockCursor cursor = store.block_cursor_at(0);
      netflow::DecodedBlock block;
      while (cursor.next(block)) {
        for (std::size_t i = 0; i < block.count; ++i) {
          acc += block.bytes[i] + block.remote[i] + block.packets[i];
        }
      }
    } else {
      netflow::RecordStore::Cursor cursor = store.cursor_at(0);
      while (cursor.next()) {
        const netflow::FlowRecord& r = cursor.record();
        const netflow::OrientedFlow f{&r, cursor.direction()};
        acc += r.bytes + f.remote_ip().value() + r.packets;
      }
    }
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(n));
  }
}
BENCHMARK(BM_BlockDecode)
    ->ArgName("block")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_GenerateTrace(benchmark::State& state) {
  exec::ThreadPool pool(
      exec::workers_for(static_cast<unsigned>(state.range(0))));
  for (auto _ : state) {
    const auto result = sim::generate_trace(perf_scenario(), &pool);
    benchmark::DoNotOptimize(result.records.data());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(result.records.size()));
  }
}
BENCHMARK(BM_GenerateTrace)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_AggregateWindows(benchmark::State& state) {
  exec::ThreadPool pool(
      exec::workers_for(static_cast<unsigned>(state.range(0))));
  for (auto _ : state) {
    // The input deep copy is setup, not aggregation — keep it out of the
    // timed region so the row measures the aggregation stage only.
    state.PauseTiming();
    auto records = perf_trace().records;
    state.ResumeTiming();
    const auto windows = netflow::aggregate_windows(
        std::move(records), perf_scenario().vips().cloud_space(),
        &perf_scenario().tds().as_prefix_set(), &pool);
    benchmark::DoNotOptimize(windows.windows().data());
    state.SetItemsProcessed(
        state.items_processed() +
        static_cast<std::int64_t>(perf_trace().records.size()));
  }
}
BENCHMARK(BM_AggregateWindows)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The fused generate→aggregate path: per-shard generation, packed-key
/// radix sort, and window build with no global unsorted record vector.
/// Compare against BM_GenerateTrace + BM_AggregateWindows at the same
/// thread count for the fusion win.
void BM_FusedGenerateWindows(benchmark::State& state) {
  exec::ThreadPool pool(
      exec::workers_for(static_cast<unsigned>(state.range(0))));
  double bytes_per_record = 0.0;
  for (auto _ : state) {
    const auto fused = sim::generate_windows(perf_scenario(), &pool);
    benchmark::DoNotOptimize(fused.windowed.windows().data());
    state.SetItemsProcessed(
        state.items_processed() +
        static_cast<std::int64_t>(fused.generated_records));
    bytes_per_record = bench::encoded_bytes_per_record(fused.windowed);
  }
  state.counters["peak_rss_mib"] = bench::peak_rss_mib();
  state.counters["encoded_bytes_per_record"] = bytes_per_record;
}
BENCHMARK(BM_FusedGenerateWindows)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_DetectMinutes(benchmark::State& state) {
  exec::ThreadPool pool(
      exec::workers_for(static_cast<unsigned>(state.range(0))));
  const detect::DetectionPipeline pipeline;
  for (auto _ : state) {
    const auto minutes = pipeline.detect_minutes(perf_windows(), &pool);
    benchmark::DoNotOptimize(minutes.data());
    state.SetItemsProcessed(
        state.items_processed() +
        static_cast<std::int64_t>(perf_windows().windows().size()));
  }
}
BENCHMARK(BM_DetectMinutes)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_FullDetection(benchmark::State& state) {
  const detect::DetectionPipeline pipeline;
  for (auto _ : state) {
    const auto result = pipeline.run(perf_windows());
    benchmark::DoNotOptimize(result.incidents.data());
  }
}
BENCHMARK(BM_FullDetection)->Unit(benchmark::kMillisecond);

/// The serve fleet under sustained overload: a two-tenant supervisor fed
/// the bench trace in feed-minute order, with rate and memory budgets set
/// low enough that both shed paths fire every minute, checkpoint rotation
/// live (the pool parallelizes generation serialization — the threads
/// axis), and events flowing through the buffered writer into a flaky sink
/// so the retry/backoff and drop ledgers do real work. The counters are
/// the degradation cost BENCH_pipeline.json tracks per PR: shed_records
/// (admission control), writer_retries / writer_dropped (sink backoff).
void BM_ServeOverload(benchmark::State& state) {
  exec::ThreadPool pool(
      exec::workers_for(static_cast<unsigned>(state.range(0))));
  static const std::vector<netflow::FlowRecord> feed = [] {
    // Traces are canonical per-VIP order; the service consumes feed time.
    auto records = perf_trace().records;
    std::stable_sort(records.begin(), records.end(),
                     [](const netflow::FlowRecord& a,
                        const netflow::FlowRecord& b) {
                       return a.minute < b.minute;
                     });
    return records;
  }();

  const std::string state_dir =
      (std::filesystem::temp_directory_path() / "dm_bench_serve").string();
  double shed_records = 0.0;
  double writer_retries = 0.0;
  double writer_dropped = 0.0;
  for (auto _ : state) {
    std::filesystem::remove_all(state_dir);
    serve::NullSink null;
    serve::FlakySink flaky(null, 7, 0.3, 4);
    serve::WriterConfig wconfig;
    wconfig.threaded = false;  // inline: the counters are feed-deterministic
    wconfig.max_attempts = 3;
    serve::BufferedWriter writer(flaky, wconfig);

    std::vector<serve::TenantSpec> tenants;
    tenants.push_back({"alpha", 2, 40, 0, 4});  // rate budget trips per minute
    tenants.push_back({"beta", 2, 0, 1, 8});    // memory budget always tripped
    serve::ServeConfig config;
    config.seed = 33;
    config.rotation_interval = 120;
    config.state_dir = state_dir;
    serve::Supervisor sup(perf_scenario().vips().cloud_space(), nullptr,
                          std::move(tenants), config, &writer, &pool);
    for (const auto& r : feed) sup.ingest_routed(r);
    sup.finish();
    writer.close();

    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(feed.size()));
    shed_records = static_cast<double>(sup.book(0).shed + sup.book(1).shed);
    const serve::WriterStats stats = writer.stats();
    writer_retries = static_cast<double>(stats.retries);
    writer_dropped = static_cast<double>(stats.dropped);
  }
  std::filesystem::remove_all(state_dir);
  state.counters["shed_records"] = shed_records;
  state.counters["writer_retries"] = writer_retries;
  state.counters["writer_dropped"] = writer_dropped;
}
BENCHMARK(BM_ServeOverload)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// End-to-end Study (generate + aggregate + detect) at bench scale; the
/// threads-vs-wall-time rows are the headline scaling table.
void BM_StudyEndToEnd(benchmark::State& state) {
  auto config = perf_config();
  config.thread_count = static_cast<unsigned>(state.range(0));
  double bytes_per_record = 0.0;
  for (auto _ : state) {
    const core::Study study(config);
    benchmark::DoNotOptimize(study.detection().incidents.data());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(study.record_count()));
    bytes_per_record = bench::encoded_bytes_per_record(study.trace());
  }
  state.counters["peak_rss_mib"] = bench::peak_rss_mib();
  state.counters["encoded_bytes_per_record"] = bytes_per_record;
}
BENCHMARK(BM_StudyEndToEnd)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The unfused pipeline (fuse_pipeline = false), for direct comparison
/// with BM_StudyEndToEnd. Peak RSS is a process high-water mark, so run
/// this in its own process (tools/bench_json.sh does) when comparing
/// memory.
void BM_StudyEndToEndUnfused(benchmark::State& state) {
  auto config = perf_config();
  config.thread_count = static_cast<unsigned>(state.range(0));
  config.fuse_pipeline = false;
  for (auto _ : state) {
    const core::Study study(config);
    benchmark::DoNotOptimize(study.detection().incidents.data());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(study.record_count()));
  }
  state.counters["peak_rss_mib"] = bench::peak_rss_mib();
}
BENCHMARK(BM_StudyEndToEndUnfused)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Same scaling table at the paper-scale scenario (1.5k VIPs, 7 days) —
/// slow; run explicitly with --benchmark_filter=PaperScale. The fused:0
/// row is the unfused pipeline at 8 threads: its peak-RSS gap against
/// fused:1 is the memory the global unsorted record vector and global sort
/// scratch used to cost (run the two rows in separate processes — peak RSS
/// is a process high-water mark).
void BM_StudyPaperScale(benchmark::State& state) {
  auto config = sim::ScenarioConfig::paper_scale();
  config.thread_count = static_cast<unsigned>(state.range(0));
  config.fuse_pipeline = state.range(1) != 0;
  double bytes_per_record = 0.0;
  for (auto _ : state) {
    const core::Study study(config);
    benchmark::DoNotOptimize(study.detection().incidents.data());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(study.record_count()));
    bytes_per_record = bench::encoded_bytes_per_record(study.trace());
  }
  state.counters["peak_rss_mib"] = bench::peak_rss_mib();
  state.counters["encoded_bytes_per_record"] = bytes_per_record;
}
BENCHMARK(BM_StudyPaperScale)
    ->ArgNames({"threads", "fused"})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({8, 0})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

/// Simulated longitudinal study (1.6k VIPs × 28 days ≈ 64.5M VIP-minutes,
/// ~4.3× the paper-scale table, at production-density benign traffic) — the
/// workload the out-of-core spill tier exists for. spill:0 keeps the whole
/// columnar trace resident; spill:1 bounds resident trace memory with a
/// segment spill directory, and its peak_rss_mib against spill:0's is the
/// headline of DESIGN.md §5f. Output is byte-identical across the two rows
/// by construction (the SpillEquivalence suite holds the pipeline to that).
///
/// Slow (minutes per row) — run explicitly with
/// --benchmark_filter=Longitudinal, one row per process (peak RSS is a
/// process high-water mark; DM_BENCH_LONG=1 in tools/bench_json.sh does
/// this). DM_LONG_VIPS / DM_LONG_DAYS override the scale for quick probes.
void BM_StudyLongitudinal(benchmark::State& state) {
  auto config = sim::ScenarioConfig::paper_scale();
  config.vips.vip_count = 1600;
  config.days = 28;
  config.seed = 4242;
  config.thread_count = 1;
  // Longitudinal runs model production-density benign traffic — the 0.12
  // bench default exists because the trace had to fit in RAM, which is the
  // constraint the spill tier removes.
  config.benign_scale = 8.0;
  if (const char* v = std::getenv("DM_LONG_VIPS")) {
    config.vips.vip_count = static_cast<std::uint32_t>(std::atoi(v));
  }
  if (const char* d = std::getenv("DM_LONG_DAYS")) config.days = std::atoi(d);
  if (const char* b = std::getenv("DM_LONG_BENIGN")) {
    config.benign_scale = std::atof(b);
  }

  const bool spill = state.range(0) != 0;
  std::string spill_dir;
  if (spill) {
    spill_dir =
        (std::filesystem::temp_directory_path() / "dm_bench_longitudinal")
            .string();
    std::filesystem::remove_all(spill_dir);
    config.spill.directory = spill_dir;
    config.spill.segment_bytes = 64ull << 20;
    config.spill.ram_budget_bytes = 256ull << 20;
  }

  double bytes_per_record = 0.0;
  double segments = 0.0;
  double store_mib = 0.0;
  double windows_mib = 0.0;
  for (auto _ : state) {
    const core::Study study(config);
    benchmark::DoNotOptimize(study.detection().incidents.data());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(study.record_count()));
    bytes_per_record = bench::encoded_bytes_per_record(study.trace());
    segments = static_cast<double>(
        study.trace().store().segments().segment_count());
    constexpr double kMiB = 1024.0 * 1024.0;
    store_mib = static_cast<double>(study.trace().store().encoded_bytes()) /
                kMiB;  // on disk when spilled, in RAM when resident
    windows_mib = static_cast<double>(study.trace().windows().size() *
                                      sizeof(netflow::VipMinuteStats)) /
                  kMiB;
  }
  state.counters["peak_rss_mib"] = bench::peak_rss_mib();
  state.counters["store_mib"] = store_mib;
  state.counters["windows_mib"] = windows_mib;
  state.counters["encoded_bytes_per_record"] = bytes_per_record;
  state.counters["vip_minutes"] = static_cast<double>(config.vips.vip_count) *
                                  static_cast<double>(config.total_minutes());
  state.counters["segments"] = segments;
  if (!spill_dir.empty()) std::filesystem::remove_all(spill_dir);
}
BENCHMARK(BM_StudyLongitudinal)
    ->ArgName("spill")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
