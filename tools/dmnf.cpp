// dmnf — command-line tool for darkmenace NetFlow traces.
//
//   dmnf gen    --out trace.dmnf [--vips N] [--days D] [--seed S]
//   dmnf info   trace.dmnf
//   dmnf detect trace.dmnf [--cloud CIDR]... [--stream] [--reorder-lag N]
//               [--spill-dir DIR] [--ram-budget BYTES]
//   dmnf top    trace.dmnf [--count N] [--cloud CIDR]...
//   dmnf verify trace.dmnf | segment-dir
//   dmnf export trace.dmnf out.csv
//   dmnf import in.csv out.dmnf [--sampling N]
//
// The default cloud address space is 100.64.0.0/12 (the simulator's).
// `detect --spill-dir` aggregates out-of-core: encoded record chunks spill
// into CRC-framed segment files under DIR and the detectors stream from the
// mmap'd segments (see DESIGN.md §5f). `verify` on a directory runs the
// segment salvage scanner and prints the per-file damage ledger.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "detect/pipeline.h"
#include "detect/stream.h"
#include "serve/supervisor.h"
#include "util/error.h"
#include "netflow/csv.h"
#include "netflow/segment_store.h"
#include "netflow/trace_io.h"
#include "netflow/window_aggregator.h"
#include "sim/trace_generator.h"
#include "util/table.h"

namespace {

using namespace dm;

int usage() {
  std::fputs(
      "usage:\n"
      "  dmnf gen    --out trace.dmnf [--vips N] [--days D] [--seed S]\n"
      "  dmnf info   trace.dmnf\n"
      "  dmnf detect trace.dmnf [--cloud CIDR]... [--stream] [--reorder-lag N]\n"
      "              [--spill-dir DIR] [--ram-budget BYTES]\n"
      "  dmnf top    trace.dmnf [--count N] [--cloud CIDR]...\n"
      "  dmnf verify trace.dmnf | segment-dir\n"
      "  dmnf export trace.dmnf out.csv\n"
      "  dmnf import in.csv out.dmnf [--sampling N]\n"
      "  dmnf serve  trace.dmnf [--state-dir DIR] [--tenants N] [--shards N]\n"
      "              [--rate-budget N] [--memory-budget BYTES] [--shed-k K]\n"
      "              [--rotate-minutes N] [--keep-gens N] [--reorder-lag N]\n"
      "              [--sink human|json|binary|null] [--sink-out PATH]\n"
      "              [--cloud CIDR]... [--seed S]\n",
      stderr);
  return 2;
}

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      if (arg == "--stream") {  // boolean flag: takes no value
        args.options[arg] = "1";
        continue;
      }
      const std::string value = i + 1 < argc ? argv[i + 1] : "";
      if (arg == "--cloud") {
        // Repeatable: accumulate with ; separator.
        auto& slot = args.options["--cloud"];
        slot += (slot.empty() ? "" : ";") + value;
      } else {
        args.options[arg] = value;
      }
      ++i;
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

netflow::PrefixSet cloud_space_from(const Args& args) {
  netflow::PrefixSet space;
  const auto it = args.options.find("--cloud");
  if (it == args.options.end()) {
    space.add(netflow::Prefix(netflow::IPv4::from_octets(100, 64, 0, 0), 12));
    return space;
  }
  std::string rest = it->second;
  while (!rest.empty()) {
    const auto semi = rest.find(';');
    const std::string cidr = rest.substr(0, semi);
    rest = semi == std::string::npos ? "" : rest.substr(semi + 1);
    const auto prefix = netflow::Prefix::parse(cidr);
    if (!prefix) throw dm::ConfigError("bad --cloud prefix: " + cidr);
    space.add(*prefix);
  }
  return space;
}

long long option_number(const Args& args, const std::string& name,
                        long long fallback) {
  const auto it = args.options.find(name);
  return it == args.options.end() ? fallback : std::atoll(it->second.c_str());
}

int cmd_gen(const Args& args) {
  const auto out = args.options.find("--out");
  if (out == args.options.end()) return usage();
  sim::ScenarioConfig config = sim::ScenarioConfig::smoke();
  config.vips.vip_count =
      static_cast<std::uint32_t>(option_number(args, "--vips", 200));
  config.days = static_cast<int>(option_number(args, "--days", 2));
  config.seed = static_cast<std::uint64_t>(option_number(args, "--seed", 42));
  const sim::Scenario scenario(config);
  const auto result = sim::generate_trace(scenario);
  netflow::write_trace_file(out->second, result.records, config.sampling);
  std::printf("wrote %zu records (%zu ground-truth episodes) to %s\n",
              result.records.size(), result.truth.episodes.size(),
              out->second.c_str());
  return 0;
}

int cmd_info(const Args& args) {
  if (args.positional.empty()) return usage();
  std::uint32_t sampling = 0;
  const auto records = netflow::read_trace_file(args.positional[0], &sampling);
  util::Minute lo = 0;
  util::Minute hi = 0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  if (!records.empty()) {
    lo = hi = records[0].minute;
    for (const auto& r : records) {
      lo = std::min(lo, r.minute);
      hi = std::max(hi, r.minute);
      packets += r.packets;
      bytes += r.bytes;
    }
  }
  std::printf("records:   %zu\n", records.size());
  std::printf("sampling:  1:%u\n", sampling);
  std::printf("window:    %s .. %s\n", util::format_minute(lo).c_str(),
              util::format_minute(hi).c_str());
  std::printf("sampled:   %llu packets, %llu bytes\n",
              static_cast<unsigned long long>(packets),
              static_cast<unsigned long long>(bytes));
  std::printf("estimated: %.3g packets, %.3g bytes (x%u)\n",
              static_cast<double>(packets) * sampling,
              static_cast<double>(bytes) * sampling, sampling);
  return 0;
}

void print_incidents(std::vector<detect::AttackIncident> incidents,
                     std::uint32_t sampling) {
  util::TextTable table;
  table.set_header({"type", "dir", "vip", "start", "duration", "peak"});
  std::sort(incidents.begin(), incidents.end(), [](const auto& a, const auto& b) {
    return std::make_tuple(a.start, a.vip, a.direction, a.type) <
           std::make_tuple(b.start, b.vip, b.direction, b.type);
  });
  for (const auto& inc : incidents) {
    table.row(std::string(sim::to_string(inc.type)),
              std::string(netflow::to_string(inc.direction)),
              inc.vip.to_string(), util::format_minute(inc.start),
              util::format_minutes(static_cast<double>(inc.duration())),
              util::format_pps(inc.estimated_peak_pps(sampling)));
  }
  std::fputs(table.render().c_str(), stdout);
}

int cmd_detect(const Args& args) {
  if (args.positional.empty()) return usage();
  std::uint32_t sampling = 0;
  auto records = netflow::read_trace_file(args.positional[0], &sampling);
  const auto space = cloud_space_from(args);

  if (args.options.count("--stream") != 0) {
    // Online path: replay the trace as a collector feed (time order — the
    // stored order is the canonical per-VIP one) through the hardened
    // monitor.
    // dmlint: total-order(stable_sort keeps the canonical stored order for records within one minute)
    std::stable_sort(records.begin(), records.end(),
                     [](const netflow::FlowRecord& a,
                        const netflow::FlowRecord& b) {
                       return a.minute < b.minute;
                     });
    detect::StreamConfig stream;
    stream.reorder_lag =
        static_cast<util::Minute>(option_number(args, "--reorder-lag", 0));
    // Identical records in a stored trace are distinct sampled flows, not
    // collector re-emits — suppression stays off so the streaming and
    // offline paths see the same traffic.
    stream.suppress_duplicates = false;
    std::vector<detect::AttackIncident> incidents;
    detect::StreamMonitor monitor(
        space, nullptr, {}, detect::TimeoutTable::paper(), nullptr,
        [&incidents](const detect::AttackIncident& inc) {
          incidents.push_back(inc);
        },
        stream);
    for (const auto& r : records) monitor.ingest(r);
    monitor.finish();
    print_incidents(std::move(incidents), sampling);
    std::printf(
        "%llu incidents from %llu windows (%llu ingested: %llu late, "
        "%llu unclassifiable, %llu duplicate, %llu quarantined)\n",
        static_cast<unsigned long long>(monitor.incidents()),
        static_cast<unsigned long long>(monitor.windows_closed()),
        static_cast<unsigned long long>(monitor.records_ingested()),
        static_cast<unsigned long long>(monitor.records_late()),
        static_cast<unsigned long long>(monitor.records_unclassifiable()),
        static_cast<unsigned long long>(monitor.records_duplicate()),
        static_cast<unsigned long long>(monitor.records_quarantined()));
    return 0;
  }

  netflow::SpillConfig spill;
  if (const auto it = args.options.find("--spill-dir");
      it != args.options.end()) {
    spill.directory = it->second;
  }
  spill.ram_budget_bytes = static_cast<std::uint64_t>(option_number(
      args, "--ram-budget",
      static_cast<long long>(spill.ram_budget_bytes)));
  const auto trace = netflow::aggregate_windows(std::move(records), space,
                                                nullptr, nullptr, &spill);
  const auto result = detect::DetectionPipeline{}.run(trace);
  print_incidents(result.incidents, sampling);
  std::printf("%zu incidents from %zu windows (%llu unattributable records)\n",
              result.incidents.size(), trace.windows().size(),
              static_cast<unsigned long long>(trace.unclassified_records()));
  return 0;
}

const char* segment_status_name(netflow::SegmentFileStatus status) {
  switch (status) {
    case netflow::SegmentFileStatus::kOk: return "ok";
    case netflow::SegmentFileStatus::kBadHeader: return "BAD HEADER";
    case netflow::SegmentFileStatus::kTruncated: return "TRUNCATED";
    case netflow::SegmentFileStatus::kBodyCorrupt: return "BODY CORRUPT";
  }
  return "?";
}

int cmd_verify_segments(const std::string& directory) {
  const auto [store, report] = netflow::SegmentStore::salvage(directory);
  util::TextTable table;
  table.set_header({"segment", "status", "bytes", "records", "detail"});
  for (const auto& entry : report.entries) {
    table.row(std::filesystem::path(entry.path).filename().string(),
              std::string(segment_status_name(entry.status)), entry.file_bytes,
              entry.records, entry.detail);
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("segments:  %llu recovered, %llu damaged\n",
              static_cast<unsigned long long>(report.segments_recovered),
              static_cast<unsigned long long>(report.segments_damaged));
  std::printf("records:   %llu recovered, %llu lost\n",
              static_cast<unsigned long long>(report.records_recovered),
              static_cast<unsigned long long>(report.records_lost));
  if (report.clean()) {
    std::printf("verdict:   clean\n");
    return 0;
  }
  std::printf("verdict:   DAMAGED\n");
  return 1;
}

int cmd_verify(const Args& args) {
  if (args.positional.empty()) return usage();
  if (std::filesystem::is_directory(args.positional[0])) {
    return cmd_verify_segments(args.positional[0]);
  }
  const auto result = netflow::salvage_trace_file(args.positional[0]);
  const netflow::IngestReport& report = result.report;

  std::printf("header:    %s\n", report.header_valid ? "valid" : "INVALID");
  std::printf("end mark:  %s\n", report.end_marker_seen ? "present" : "MISSING");
  std::printf("scanned:   %llu bytes\n",
              static_cast<unsigned long long>(report.bytes_scanned));
  std::printf("blocks:    %llu decoded, %llu damaged regions\n",
              static_cast<unsigned long long>(report.blocks_decoded),
              static_cast<unsigned long long>(report.blocks_skipped));
  std::printf("records:   %llu recovered (sampling 1:%u)\n",
              static_cast<unsigned long long>(report.records_recovered),
              result.sampling);
  std::printf("errors:    %llu CRC, %llu truncation, %llu varint, %llu decode\n",
              static_cast<unsigned long long>(report.crc_mismatches),
              static_cast<unsigned long long>(report.truncations),
              static_cast<unsigned long long>(report.varint_errors),
              static_cast<unsigned long long>(report.decode_errors));
  for (const auto& range : report.lost_ranges) {
    std::printf("lost:      %llu bytes at offset %llu\n",
                static_cast<unsigned long long>(range.bytes),
                static_cast<unsigned long long>(range.offset));
  }
  if (report.clean()) {
    std::printf("verdict:   clean\n");
    return 0;
  }
  std::printf("verdict:   DAMAGED (%llu bytes lost)\n",
              static_cast<unsigned long long>(report.bytes_lost()));
  return 1;
}

int cmd_top(const Args& args) {
  if (args.positional.empty()) return usage();
  std::uint32_t sampling = 0;
  auto records = netflow::read_trace_file(args.positional[0], &sampling);
  const auto space = cloud_space_from(args);
  const auto count = static_cast<std::size_t>(option_number(args, "--count", 10));

  std::map<std::uint32_t, std::uint64_t> vip_packets;
  for (const auto& r : records) {
    const auto dir = netflow::classify(r, space);
    if (!dir) continue;
    const netflow::OrientedFlow flow{&r, *dir};
    vip_packets[flow.vip().value()] += r.packets;
  }
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ranked;
  for (const auto& [vip, pkts] : vip_packets) ranked.push_back({pkts, vip});
  std::sort(ranked.begin(), ranked.end(), std::greater<>());

  util::TextTable table;
  table.set_header({"vip", "sampled packets", "estimated packets"});
  for (std::size_t i = 0; i < ranked.size() && i < count; ++i) {
    table.row(netflow::IPv4(ranked[i].second).to_string(), ranked[i].first,
              static_cast<std::uint64_t>(ranked[i].first) * sampling);
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

int cmd_export(const Args& args) {
  if (args.positional.size() < 2) return usage();
  const auto records = netflow::read_trace_file(args.positional[0]);
  std::ofstream out(args.positional[1]);
  if (!out) throw dm::FormatError("cannot open " + args.positional[1]);
  netflow::write_csv(out, records);
  std::printf("exported %zu records to %s\n", records.size(),
              args.positional[1].c_str());
  return 0;
}

int cmd_import(const Args& args) {
  if (args.positional.size() < 2) return usage();
  std::ifstream in(args.positional[0]);
  if (!in) throw dm::FormatError("cannot open " + args.positional[0]);
  const auto records = netflow::read_csv(in);
  const auto sampling =
      static_cast<std::uint32_t>(option_number(args, "--sampling", 4096));
  netflow::write_trace_file(args.positional[1], records, sampling);
  std::printf("imported %zu records to %s (1:%u)\n", records.size(),
              args.positional[1].c_str(), sampling);
  return 0;
}

// dmnf serve: the supervised multi-tenant monitor service over a recorded
// feed. Records route to synthetic tenants by VIP hash, pass through
// admission control, and flow into per-tenant VIP-sharded StreamMonitors;
// checkpoints rotate crash-safely under --state-dir every --rotate-minutes
// feed minutes. On startup the supervisor always recovers from the newest
// intact generation (reporting any damage it had to discard) and replays
// the feed from the recovered resume index — so re-running the same command
// after a crash converges on the same final state.
int cmd_serve(const Args& args) {
  if (args.positional.empty()) return usage();
  const auto space = cloud_space_from(args);

  const auto tenants =
      static_cast<std::size_t>(std::max(1ll, option_number(args, "--tenants", 2)));
  serve::TenantSpec spec;
  spec.shards = static_cast<std::uint32_t>(
      std::max(1ll, option_number(args, "--shards", 2)));
  spec.max_records_per_minute =
      static_cast<std::uint64_t>(option_number(args, "--rate-budget", 0));
  spec.max_state_bytes =
      static_cast<std::uint64_t>(option_number(args, "--memory-budget", 0));
  spec.shed_factor =
      static_cast<std::uint64_t>(std::max(2ll, option_number(args, "--shed-k", 8)));
  std::vector<serve::TenantSpec> specs;
  for (std::size_t t = 0; t < tenants; ++t) {
    serve::TenantSpec s = spec;
    s.name = "tenant-" + std::to_string(t);
    specs.push_back(std::move(s));
  }

  serve::ServeConfig config;
  config.seed = static_cast<std::uint64_t>(option_number(args, "--seed", 42));
  config.rotation_interval =
      static_cast<util::Minute>(option_number(args, "--rotate-minutes", 60));
  config.keep_generations = static_cast<std::size_t>(
      std::max(1ll, option_number(args, "--keep-gens", 2)));
  config.stream.reorder_lag =
      static_cast<util::Minute>(option_number(args, "--reorder-lag", 0));
  const auto dir = args.options.find("--state-dir");
  if (dir != args.options.end()) config.state_dir = dir->second;

  // Sink selection: events go to --sink-out (or stdout) in the chosen
  // rendering; the buffered writer adds bounded retry with backoff.
  const auto sink_kind = args.options.count("--sink")
                             ? args.options.at("--sink")
                             : std::string("human");
  std::ofstream sink_file;
  std::ostream* sink_stream = &std::cout;
  if (args.options.count("--sink-out")) {
    sink_file.open(args.options.at("--sink-out"),
                   std::ios::binary | std::ios::trunc);
    if (!sink_file) {
      throw dm::ConfigError("cannot open " + args.options.at("--sink-out"));
    }
    sink_stream = &sink_file;
  }
  std::unique_ptr<serve::Sink> sink;
  if (sink_kind == "human") sink = std::make_unique<serve::HumanSink>(*sink_stream);
  else if (sink_kind == "json") sink = std::make_unique<serve::JsonLinesSink>(*sink_stream);
  else if (sink_kind == "binary") sink = std::make_unique<serve::BinarySink>(*sink_stream);
  else if (sink_kind == "null") sink = std::make_unique<serve::NullSink>();
  else throw dm::ConfigError("unknown --sink kind: " + sink_kind);

  serve::WriterConfig writer_config;
  writer_config.seed = config.seed;
  serve::BufferedWriter writer(*sink, writer_config);
  serve::Supervisor supervisor(space, nullptr, std::move(specs), config,
                               &writer);

  std::uint64_t resume_index = 0;
  if (!config.state_dir.empty()) {
    const serve::RecoveryReport report = supervisor.recover();
    for (const serve::DamageEntry& d : report.ledger) {
      std::fprintf(stderr, "dmnf serve: discarded %s (%s: %s)\n",
                   d.file.c_str(), serve::damage_kind_name(d.kind),
                   d.detail.c_str());
    }
    if (report.generation >= 0) {
      std::fprintf(stderr,
                   "dmnf serve: recovered generation %lld, resuming at "
                   "record %llu\n",
                   static_cast<long long>(report.generation),
                   static_cast<unsigned long long>(report.resume_index));
      resume_index = report.resume_index;
    }
  }

  // The stored trace is in canonical per-VIP order; the service replays it
  // as a collector feed, i.e. in time order. The stable sort is a pure
  // function of the file, so a recovered resume index addresses the same
  // record on every run.
  auto records = netflow::read_trace_file(args.positional[0]);
  // dmlint: total-order(stable_sort keeps the canonical stored order for records within one minute)
  std::stable_sort(records.begin(), records.end(),
                   [](const netflow::FlowRecord& a,
                      const netflow::FlowRecord& b) {
                     return a.minute < b.minute;
                   });
  for (std::size_t i = resume_index; i < records.size(); ++i) {
    supervisor.ingest_routed(records[i]);
  }
  supervisor.finish();
  if (!config.state_dir.empty()) supervisor.rotate_now();
  writer.close();

  std::fputs(supervisor.status_report().c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args = parse_args(argc, argv);
  try {
    if (command == "gen") return cmd_gen(args);
    if (command == "info") return cmd_info(args);
    if (command == "detect") return cmd_detect(args);
    if (command == "top") return cmd_top(args);
    if (command == "verify") return cmd_verify(args);
    if (command == "export") return cmd_export(args);
    if (command == "import") return cmd_import(args);
    if (command == "serve") return cmd_serve(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dmnf: %s\n", e.what());
    return 1;
  }
  return usage();
}
