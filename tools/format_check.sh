#!/usr/bin/env bash
# Diff-only formatting check: reports files under src/, tools/, tests/,
# bench/, and examples/ whose formatting differs from .clang-format, without
# rewriting anything (no mass reformat — fix only what you touch).
#
# Exits 0 when everything is clean or clang-format is unavailable, 1 when
# any file needs formatting.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

if ! command -v clang-format >/dev/null 2>&1; then
  echo "format_check.sh: clang-format not found; skipping" >&2
  exit 0
fi

dirty=0
while IFS= read -r -d '' file; do
  if ! diff -q <(clang-format --style=file "$file") "$file" >/dev/null; then
    echo "needs formatting: ${file#"$ROOT"/}"
    dirty=1
  fi
done < <(find "$ROOT/src" "$ROOT/tools" "$ROOT/tests" "$ROOT/bench" \
           "$ROOT/examples" \( -name '*.h' -o -name '*.cpp' \) -print0 \
           2>/dev/null)

if [[ "$dirty" != "0" ]]; then
  echo "format_check.sh: run clang-format on the files above" >&2
  exit 1
fi
echo "format_check.sh: all files clean"
