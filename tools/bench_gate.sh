#!/usr/bin/env bash
# Per-stage items/s regression gate against the committed BENCH_pipeline.json
# snapshot: re-measures a fast subset of the perf suite (the decode kernels
# plus the serial fused-aggregation and detection rows) and fails loudly if
# any stage falls below tolerance x its committed baseline — so a future
# decode regression trips CI instead of silently rotting the snapshot.
#
# The tolerance absorbs host noise (CI boxes are shared; the default 0.70
# tolerates a 30% dip before failing). Rows whose stage/key is absent from
# the snapshot are reported and skipped, so the gate works before and after
# a re-baseline. Comparisons only ever run against rows the snapshot
# recorded on a comparable host — thread-scaling rows are judged on the
# snapshot's own num_cpus stamp, not this machine's.
#
# Usage: tools/bench_gate.sh [tolerance]
#   BENCH_BUILD_DIR   Release build dir (default: build-bench, shared with
#                     bench_json.sh)
#   DM_BENCH_GATE_FILTER  override the benchmark filter regex
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BENCH_BUILD_DIR:-$ROOT/build-bench}"
SNAPSHOT="$ROOT/BENCH_pipeline.json"
TOLERANCE="${1:-${DM_BENCH_TOLERANCE:-0.70}}"
FILTER="${DM_BENCH_GATE_FILTER:-BM_VarintDecode|BM_BlockDecode|BM_FusedGenerateWindows/threads:1$|BM_DetectMinutes/threads:1$}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

if [[ ! -f "$SNAPSHOT" ]]; then
  echo "bench_gate.sh: no $SNAPSHOT baseline — run tools/bench_json.sh first" >&2
  exit 1
fi

cmake -B "$BUILD" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=Release \
  -DDM_BUILD_TESTS=OFF \
  -DDM_BUILD_EXAMPLES=OFF
cmake --build "$BUILD" -j"$(nproc)" --target perf_pipeline

echo "== bench_gate: filter=$FILTER tolerance=$TOLERANCE"
"$BUILD/bench/perf_pipeline" \
  --benchmark_filter="$FILTER" \
  --benchmark_out="$TMP/gate.json" \
  --benchmark_out_format=json > /dev/null

python3 - "$TMP/gate.json" "$SNAPSHOT" "$TOLERANCE" <<'PY'
import json
import re
import sys

measured_path, snapshot_path, tol_s = sys.argv[1:4]
tolerance = float(tol_s)
with open(measured_path) as f:
    measured = json.load(f)
with open(snapshot_path) as f:
    snapshot = json.load(f)
stages = snapshot.get("stages", {})

failures, checked, skipped = [], 0, []
for b in measured.get("benchmarks", []):
    if b.get("run_type") == "aggregate" or "items_per_second" not in b:
        continue
    name = b["name"]
    stage = re.match(r"(?:BM_)?([^/]+)", name).group(1)
    params = [p for p in name.split("/")[1:]
              if p not in ("real_time", "process_time")
              and not p.startswith("iterations:")]
    key = "/".join(params) if params else "threads:1"
    base_row = stages.get(stage, {}).get(key)
    if base_row is None or "items_per_second" not in base_row:
        skipped.append(f"{stage}/{key}")
        continue
    base = base_row["items_per_second"]
    got = b["items_per_second"]
    checked += 1
    verdict = "ok" if got >= tolerance * base else "FAIL"
    print(f"  {verdict:4} {stage}/{key}: {got:,.0f} items/s "
          f"(baseline {base:,.0f}, floor {tolerance * base:,.0f})")
    if verdict == "FAIL":
        failures.append(f"{stage}/{key}")

for row in skipped:
    print(f"  skip {row}: not in snapshot (re-run tools/bench_json.sh)")
if checked == 0:
    sys.exit("bench_gate.sh: no gated row matched the snapshot — "
             "stale baseline or filter drift")
if failures:
    sys.exit("bench_gate.sh: throughput regression in: " + ", ".join(failures))
print(f"bench_gate: {checked} stage(s) within tolerance")
PY
