// dmlint — determinism & invariant linter CLI.
//
// Scans src/ and tools/ (or --root <dir>) with the dm::lint rules engine,
// subtracts the committed baseline, and exits nonzero on any new finding.
//
//   dmlint [--root DIR] [--baseline FILE] [--write-baseline FILE]
//          [--format human|json] [--rules r1,r2,...] [--verbose]
//
// --rules narrows the run to the named rule families; the two meta rules
// (directive, suppression-reason) stay on regardless, because a malformed
// annotation invalidates whatever rule it belongs to.
//
// Exit codes: 0 clean, 1 new findings, 2 usage/IO error, 3 when any new
// finding is a directive/suppression parse error (the scan itself is
// untrustworthy until annotations parse).
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

struct Options {
  std::string root = ".";
  std::string baseline_path;
  std::string write_baseline_path;
  std::string format = "human";
  std::vector<std::string> rules;  ///< empty = all rules
  bool verbose = false;
};

void usage(std::ostream& out) {
  out << "usage: dmlint [--root DIR] [--baseline FILE]\n"
         "              [--write-baseline FILE] [--format human|json]\n"
         "              [--rules r1,r2,...] [--verbose]\n"
         "\n"
         "Scans DIR/src and DIR/tools for determinism-invariant violations.\n"
         "--rules keeps only the named rule families (meta rules stay on).\n"
         "Exits 0 when clean, 1 on new findings, 2 on usage or IO errors,\n"
         "3 when annotations themselves fail to parse.\n";
}

/// Splits a comma-separated --rules value and validates every name against
/// the engine's rule list. Returns false (after printing the offender and
/// the valid names) on an unknown rule.
[[nodiscard]] bool parse_rules(const std::string& value,
                               std::vector<std::string>* out) {
  std::istringstream in(value);
  std::string name;
  while (std::getline(in, name, ',')) {
    if (name.empty()) continue;
    const std::vector<std::string>& known = dm::lint::rule_names();
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      std::cerr << "dmlint: --rules names unknown rule '" << name
                << "'; valid rules:";
      for (const std::string& r : known) std::cerr << ' ' << r;
      std::cerr << '\n';
      return false;
    }
    out->push_back(name);
  }
  if (out->empty()) {
    std::cerr << "dmlint: --rules needs at least one rule name\n";
    return false;
  }
  return true;
}

/// True when `rule` survives the --rules filter: meta rules always do,
/// everything else only when named (or when no filter is active).
[[nodiscard]] bool rule_selected(const Options& opt, const std::string& rule) {
  if (opt.rules.empty()) return true;
  if (rule == dm::lint::kRuleDirective ||
      rule == dm::lint::kRuleSuppressionReason) {
    return true;
  }
  return std::find(opt.rules.begin(), opt.rules.end(), rule) !=
         opt.rules.end();
}

/// Baseline file format, one entry per line:
///   <fingerprint> <rule> <path>
/// Blank lines and lines starting with '#' are ignored. Only the
/// fingerprint participates in matching; rule and path are for humans.
[[nodiscard]] std::set<std::string> load_baseline(const std::string& path,
                                                  bool* ok) {
  std::set<std::string> entries;
  *ok = true;
  if (path.empty()) return entries;
  std::ifstream in(path);
  if (!in) {
    *ok = false;
    return entries;
  }
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream row(line);
    std::string fp;
    row >> fp;
    if (fp.empty() || fp.front() == '#') continue;
    entries.insert(fp);
  }
  return entries;
}

[[nodiscard]] std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct Annotated {
  const dm::lint::Finding* finding;
  std::string fingerprint;
  bool baselined = false;
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int a = 1; a < argc; ++a) {
    const std::string_view arg = argv[a];
    const auto value = [&]() -> const char* {
      if (a + 1 >= argc) {
        std::cerr << "dmlint: " << arg << " needs a value\n";
        return nullptr;
      }
      return argv[++a];
    };
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (arg == "--root") {
      const char* v = value();
      if (v == nullptr) return 2;
      opt.root = v;
    } else if (arg == "--baseline") {
      const char* v = value();
      if (v == nullptr) return 2;
      opt.baseline_path = v;
    } else if (arg == "--write-baseline") {
      const char* v = value();
      if (v == nullptr) return 2;
      opt.write_baseline_path = v;
    } else if (arg == "--format") {
      const char* v = value();
      if (v == nullptr) return 2;
      opt.format = v;
      if (opt.format != "human" && opt.format != "json") {
        std::cerr << "dmlint: unknown format '" << opt.format << "'\n";
        return 2;
      }
    } else if (arg == "--rules") {
      const char* v = value();
      if (v == nullptr) return 2;
      if (!parse_rules(v, &opt.rules)) return 2;
    } else if (arg.rfind("--rules=", 0) == 0) {
      if (!parse_rules(std::string(arg.substr(8)), &opt.rules)) return 2;
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else {
      std::cerr << "dmlint: unknown argument '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    }
  }

  const std::vector<dm::lint::SourceFile> files =
      dm::lint::load_tree(opt.root, {"src", "tools"});
  if (files.empty()) {
    std::cerr << "dmlint: no sources found under '" << opt.root
              << "' (expected src/ and tools/)\n";
    return 2;
  }

  bool baseline_ok = true;
  const std::set<std::string> baseline =
      load_baseline(opt.baseline_path, &baseline_ok);
  if (!baseline_ok) {
    std::cerr << "dmlint: cannot read baseline '" << opt.baseline_path
              << "'\n";
    return 2;
  }

  const dm::lint::LintReport report = dm::lint::run_lint(files);

  // Fingerprint with ordinals so identical (rule, path, message) triples
  // stay distinct. Ordinals are computed BEFORE the --rules filter so a
  // narrowed run agrees with the full run on every fingerprint.
  std::vector<Annotated> rows;
  rows.reserve(report.findings.size());
  std::map<std::string, int> ordinals;
  for (const dm::lint::Finding& f : report.findings) {
    const std::string key = f.rule + '\0' + f.file + '\0' + f.message;
    const int ordinal = ordinals[key]++;
    if (!rule_selected(opt, f.rule)) continue;
    Annotated row;
    row.finding = &f;
    row.fingerprint = dm::lint::fingerprint(f, ordinal);
    row.baselined = baseline.count(row.fingerprint) > 0;
    rows.push_back(std::move(row));
  }

  if (!opt.write_baseline_path.empty()) {
    std::ofstream out(opt.write_baseline_path);
    if (!out) {
      std::cerr << "dmlint: cannot write baseline '"
                << opt.write_baseline_path << "'\n";
      return 2;
    }
    out << "# dmlint baseline — grandfathered findings. Target: empty.\n"
           "# <fingerprint> <rule> <path>\n";
    for (const Annotated& row : rows) {
      out << row.fingerprint << ' ' << row.finding->rule << ' '
          << row.finding->file << '\n';
    }
  }

  std::size_t fresh = 0;
  bool parse_error = false;
  for (const Annotated& row : rows) {
    if (row.baselined) continue;
    ++fresh;
    if (row.finding->rule == dm::lint::kRuleDirective ||
        row.finding->rule == dm::lint::kRuleSuppressionReason) {
      parse_error = true;
    }
  }

  if (opt.format == "json") {
    std::cout << "{\"findings\":[";
    bool first = true;
    for (const Annotated& row : rows) {
      if (!first) std::cout << ',';
      first = false;
      const dm::lint::Finding& f = *row.finding;
      std::cout << "{\"file\":\"" << json_escape(f.file) << "\",\"line\":"
                << f.line << ",\"rule\":\"" << json_escape(f.rule)
                << "\",\"message\":\"" << json_escape(f.message)
                << "\",\"fingerprint\":\"" << row.fingerprint
                << "\",\"baselined\":" << (row.baselined ? "true" : "false")
                << '}';
    }
    std::cout << "],\"suppressed\":" << report.suppressed.size()
              << ",\"new\":" << fresh << "}\n";
  } else {
    for (const Annotated& row : rows) {
      const dm::lint::Finding& f = *row.finding;
      std::cout << f.file << ':' << f.line << ": [" << f.rule << "] "
                << f.message;
      if (row.baselined) std::cout << " (baselined)";
      std::cout << '\n';
    }
    if (opt.verbose) {
      for (const dm::lint::Finding& f : report.suppressed) {
        std::cout << f.file << ':' << f.line << ": [" << f.rule
                  << "] suppressed: " << f.message << '\n';
      }
    }
    std::cout << "dmlint: " << files.size() << " files, " << fresh
              << " new finding(s), " << (rows.size() - fresh)
              << " baselined, " << report.suppressed.size()
              << " suppressed\n";
  }

  if (fresh == 0) return 0;
  return parse_error ? 3 : 1;
}
