#!/usr/bin/env bash
# CI gate for the parallel pipeline: build the test suite under
# ThreadSanitizer and run the concurrency-sensitive tests — the exec pool
# unit tests, the sharded-aggregation property tests, and the
# serial-equivalence integration tests — then build under ASan+UBSan and
# run the memory-sensitive codec tests (the columnar record store does raw
# varint pointer walks; ASan catches overreads TSan never would).
#
# Stages (all builds use -Werror via DM_WERROR=ON):
#   1. dmlint self-scan against the committed baseline (skip: DM_LINT=0)
#   2. clang-tidy over src/exec, src/netflow, src/detect (runs only when a
#      clang-tidy binary is available)
#   3. TSan build + concurrency suites
#   4. ASan+UBSan build + codec suites
#   5. DM_SPILL=1: spill-tier differential + crash-recovery suites (ASan)
#   6. DM_SERVE=1: serve fleet suites — checkpoint-rotation crash matrix,
#      supervisor admission/shed, sink + buffered-writer retry/backoff,
#      restore validation — plus a randomized crash/corruption soak
#      (DM_SOAK_SECONDS), all under the same ASan+UBSan build
#   7. DM_BENCH_JSON=1: refresh BENCH_pipeline.json (Release)
#   8. DM_BENCH_GATE=1: per-stage items/s regression gate vs the committed
#      BENCH_pipeline.json (tools/bench_gate.sh)
#
# Usage: tools/check.sh [extra ctest -R regex]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build-tsan}"
ASAN_BUILD="${ASAN_BUILD_DIR:-$ROOT/build-asan}"
FILTER="${1:-ThreadPool|ParallelExec|ParallelEquivalence|WindowShardMerge|FusedPipeline|RadixSort}"
ASAN_FILTER="${2:-ColumnarRecords|ColumnarEquivalence|TraceIo|Aggregate|WindowShardMerge|SegmentStore}"

# Determinism & invariant lint gate. Exits nonzero on any finding not in
# the committed baseline (which is kept empty). The scan itself (not the
# build) must finish inside DM_LINT_BUDGET seconds — the two-pass dmflow
# analyzer re-tokenizes the whole tree, and this tripwire keeps it from
# quietly growing into the slowest stage of the gate.
if [[ "${DM_LINT:-1}" != "0" ]]; then
  LINT_BUILD="${LINT_BUILD_DIR:-$ROOT/build-lint}"
  cmake -B "$LINT_BUILD" -S "$ROOT" \
    -DDM_WERROR=ON \
    -DDM_BUILD_TESTS=OFF \
    -DDM_BUILD_BENCH=OFF \
    -DDM_BUILD_EXAMPLES=OFF \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$LINT_BUILD" -j"$(nproc)" --target dmlint
  LINT_BUDGET="${DM_LINT_BUDGET:-60}"
  LINT_START=$SECONDS
  "$LINT_BUILD/tools/dmlint" --root "$ROOT" --baseline "$ROOT/.dmlint-baseline"
  LINT_ELAPSED=$((SECONDS - LINT_START))
  echo "check.sh: dmlint scan took ${LINT_ELAPSED}s (budget ${LINT_BUDGET}s)"
  if [[ "$LINT_ELAPSED" -gt "$LINT_BUDGET" ]]; then
    echo "check.sh: dmlint exceeded its ${LINT_BUDGET}s budget" >&2
    exit 1
  fi
fi

# clang-tidy over the determinism-critical subsystems, when available.
# Uses the lint build's compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS
# is always on).
if command -v clang-tidy >/dev/null 2>&1; then
  TIDY_BUILD="${LINT_BUILD_DIR:-$ROOT/build-lint}"
  if [[ ! -f "$TIDY_BUILD/compile_commands.json" ]]; then
    cmake -B "$TIDY_BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=RelWithDebInfo
  fi
  find "$ROOT/src/exec" "$ROOT/src/netflow" "$ROOT/src/detect" \
    -name '*.cpp' -print0 |
    xargs -0 clang-tidy -p "$TIDY_BUILD" --quiet
else
  echo "check.sh: clang-tidy not found; skipping tidy stage" >&2
fi

cmake -B "$BUILD" -S "$ROOT" \
  -DDM_SANITIZE=thread \
  -DDM_WERROR=ON \
  -DDM_BUILD_BENCH=OFF \
  -DDM_BUILD_EXAMPLES=OFF \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j"$(nproc)" --target dm_tests

# Fail on any TSan report even if the test itself would pass.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
ctest --test-dir "$BUILD" --output-on-failure -R "$FILTER"

# ASan+UBSan pass over the codec-heavy suites.
cmake -B "$ASAN_BUILD" -S "$ROOT" \
  -DDM_SANITIZE=address,undefined \
  -DDM_WERROR=ON \
  -DDM_BUILD_BENCH=OFF \
  -DDM_BUILD_EXAMPLES=OFF \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$ASAN_BUILD" -j"$(nproc)" --target dm_tests

export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1 detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}"
ctest --test-dir "$ASAN_BUILD" --output-on-failure -R "$ASAN_FILTER"

# Optional degraded-feed fault matrix: the fault-injection, salvage,
# checkpoint/restore, and end-to-end fault-matrix suites re-run under the
# same ASan+UBSan build (crash-freedom under corruption is the point), then
# a 30-second randomized-seed corruption soak hammers the salvage scanner
# with arbitrary damage. The soak test prints its seed via SCOPED_TRACE on
# failure, so a red run is reproducible. Enable with DM_FAULT_MATRIX=1.
if [[ "${DM_FAULT_MATRIX:-0}" != "0" ]]; then
  ctest --test-dir "$ASAN_BUILD" --output-on-failure \
    -R "FaultInjector|TraceSalvage|StreamCheckpoint|FaultMatrix|StreamMonitor|Csv"
  DM_SOAK_SECONDS="${DM_SOAK_SECONDS:-30}" \
    ctest --test-dir "$ASAN_BUILD" --output-on-failure -R "SalvageSoak"
fi

# Optional out-of-core stage: the spill tier's differential equivalence
# suite (full Study byte-identity, spill vs resident, across thread counts
# and RAM budgets), the segment round-trip/property suite, and the
# segment crash-recovery suite run under the same ASan+UBSan build — the
# spill path does mmap'd varint pointer walks over CRC-framed files, which
# is exactly the code ASan should watch. Enable with DM_SPILL=1.
if [[ "${DM_SPILL:-0}" != "0" ]]; then
  ctest --test-dir "$ASAN_BUILD" --output-on-failure \
    -R "SegmentStore|SpillEquivalence|SegmentSalvage"
fi

# Optional serve-fleet stage: the checkpoint-rotation crash matrix (every
# kill-point x {clean, corrupted gen-N} x 1/2/8 rotation threads, asserting
# byte-identical resume with exact damage ledgers), the supervisor
# admission/shed suites, the sink + buffered-writer retry/backoff suites,
# the malformed-checkpoint restore regression, and the rotation-coverage
# tripwire — all under the ASan+UBSan build, because recovery walks
# attacker-controlled (torn/corrupt) bytes. A randomized crash-cell soak
# (DM_SOAK_SECONDS, seed printed via SCOPED_TRACE on failure) then hammers
# arbitrary kill-point/corruption combinations. Enable with DM_SERVE=1.
if [[ "${DM_SERVE:-0}" != "0" ]]; then
  ctest --test-dir "$ASAN_BUILD" --output-on-failure \
    -R "RotationCrashMatrix|CheckpointRotator|RotationCoverage|Supervisor|BufferedWriter|Sink|CorruptCheckpoint|KillSwitch|StreamRestoreError"
  DM_SOAK_SECONDS="${DM_SOAK_SECONDS:-30}" \
    ctest --test-dir "$ASAN_BUILD" --output-on-failure -R "RotationCrashSoak"
fi

# Optional Release-mode perf snapshot: refreshes BENCH_pipeline.json at the
# repo root (stage -> threads -> items/s + peak RSS). Off by default to keep
# the gate fast; enable with DM_BENCH_JSON=1.
if [[ "${DM_BENCH_JSON:-0}" != "0" ]]; then
  "$ROOT/tools/bench_json.sh"
fi

# Optional throughput regression gate: re-measures the decode kernels and
# the serial fused-aggregation/detection rows and fails if any falls below
# tolerance x its committed BENCH_pipeline.json baseline. Enable with
# DM_BENCH_GATE=1 (runs after DM_BENCH_JSON so a freshly regenerated
# baseline is compared against itself — a cheap sanity check — while a
# stale baseline catches real regressions).
if [[ "${DM_BENCH_GATE:-0}" != "0" ]]; then
  "$ROOT/tools/bench_gate.sh"
fi
