#!/usr/bin/env bash
# Perf-trajectory snapshot: builds the perf suites in Release mode, runs
# them with --benchmark_format=json, and writes a normalized
# BENCH_pipeline.json (stage -> threads -> items/s, real time, peak RSS)
# at the repo root so the throughput/memory trajectory is tracked per PR.
#
# Memory-sensitive rows (the fused/unfused Study comparison) run in
# separate processes: peak RSS is a process-wide high-water mark, so
# sharing a process would let the first benchmark's footprint mask the
# second's.
#
# Usage: tools/bench_json.sh [build-dir]
#   DM_BENCH_PAPER=1   also run the (slow) paper-scale scaling table.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-${BENCH_BUILD_DIR:-$ROOT/build-bench}}"
OUT="$ROOT/BENCH_pipeline.json"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

cmake -B "$BUILD" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=Release \
  -DDM_BUILD_TESTS=OFF \
  -DDM_BUILD_EXAMPLES=OFF
cmake --build "$BUILD" -j"$(nproc)" --target perf_pipeline perf_detectors perf_netflow

run() { # run <output.json> <binary> [filter]
  local out="$1" bin="$2" filter="${3:-}"
  local args=(--benchmark_out="$TMP/$out" --benchmark_out_format=json)
  [[ -n "$filter" ]] && args+=("--benchmark_filter=$filter")
  echo "== $bin ${filter:+(filter: $filter)}"
  "$BUILD/bench/$bin" "${args[@]}" > /dev/null
}

run pipeline_stages.json perf_pipeline \
  'BM_GenerateTrace|BM_AggregateWindows|BM_FusedGenerateWindows|BM_DetectMinutes|BM_FullDetection'
run study_fused.json perf_pipeline 'BM_StudyEndToEnd/'
run study_unfused.json perf_pipeline 'BM_StudyEndToEndUnfused'
if [[ "${DM_BENCH_PAPER:-0}" != "0" ]]; then
  # One process per row: each row's peak_rss_mib must be its own high-water
  # mark, not the max over every row run before it.
  paper_row=0
  for row in 'threads:1/fused:1' 'threads:2/fused:1' 'threads:4/fused:1' \
             'threads:8/fused:1' 'threads:8/fused:0'; do
    run "study_paper_$((paper_row++)).json" perf_pipeline \
      "BM_StudyPaperScale/${row}"
  done
fi
run detectors.json perf_detectors
run netflow.json perf_netflow

python3 - "$TMP" "$OUT" <<'PY'
import datetime
import glob
import json
import os
import re
import sys

tmp, out = sys.argv[1], sys.argv[2]
to_ms = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}
stages = {}
context = {}
for path in sorted(glob.glob(os.path.join(tmp, "*.json"))):
    with open(path) as f:
        data = json.load(f)
    context = data.get("context", context)
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b["name"]
        stage = re.match(r"(?:BM_)?([^/]+)", name).group(1)
        # Inner key: the parameter segment ("threads:8" or
        # "threads:8/fused:0"); plain benchmarks key as "threads:1".
        params = [p for p in name.split("/")[1:]
                  if p not in ("real_time", "process_time")
                  and not p.startswith("iterations:")]
        threads = "/".join(params) if params else "threads:1"
        scale = to_ms.get(b.get("time_unit", "ns"), 1.0)
        row = {"real_time_ms": round(b["real_time"] * scale, 3)}
        if "items_per_second" in b:
            row["items_per_second"] = round(b["items_per_second"], 1)
        if "peak_rss_mib" in b:
            row["peak_rss_mib"] = round(b["peak_rss_mib"], 1)
        if "encoded_bytes_per_record" in b:
            row["encoded_bytes_per_record"] = round(
                b["encoded_bytes_per_record"], 2)
        stages.setdefault(stage, {})[threads] = row

snapshot = {
    "schema": "dm-bench-v1",
    "generated": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
    "host": {"num_cpus": context.get("num_cpus")},
    "stages": stages,
}
with open(out, "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=True)
    f.write("\n")
PY

echo "wrote $OUT"
