#!/usr/bin/env bash
# Perf-trajectory snapshot: builds the perf suites in Release mode, runs
# them with --benchmark_format=json, and writes a normalized
# BENCH_pipeline.json (stage -> threads -> items/s, real time, peak RSS)
# at the repo root so the throughput/memory trajectory is tracked per PR.
#
# Memory-sensitive rows (the fused/unfused Study comparison and the
# longitudinal spill-vs-resident pair) run in separate processes: peak RSS
# is a process-wide high-water mark, so sharing a process would let the
# first benchmark's footprint mask the second's.
#
# Single-CPU hosts cannot produce an honest threads-vs-throughput scaling
# table (every "parallel" row is the same serial machine plus scheduler
# noise). On num_cpus==1 this script therefore runs only the threads:1
# rows and stamps the snapshot scaling_tables:"suppressed (num_cpus=1)";
# the normalizer FAILS LOUDLY if multi-thread rows reach it from a 1-CPU
# context anyway (e.g. a hand-run benchmark JSON), instead of committing a
# bogus scaling table.
#
# Usage: tools/bench_json.sh [build-dir]
#   DM_BENCH_PAPER=1   also run the (slow) paper-scale scaling table.
#   DM_BENCH_LONG=1    also run the (slow, ~minutes/row) longitudinal
#                      spill-vs-resident pair (BM_StudyLongitudinal).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-${BENCH_BUILD_DIR:-$ROOT/build-bench}}"
OUT="$ROOT/BENCH_pipeline.json"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

NCPU="$(nproc)"
# Scaling tables need real cores; on one CPU keep only the serial rows.
THREAD1=""
if [[ "$NCPU" == "1" ]]; then
  echo "bench_json.sh: num_cpus=1 — suppressing multi-thread scaling rows" >&2
  THREAD1="threads:1"
fi

cmake -B "$BUILD" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=Release \
  -DDM_BUILD_TESTS=OFF \
  -DDM_BUILD_EXAMPLES=OFF
cmake --build "$BUILD" -j"$NCPU" --target perf_pipeline perf_detectors perf_netflow

run() { # run <output.json> <binary> [filter]
  local out="$1" bin="$2" filter="${3:-}"
  local args=(--benchmark_out="$TMP/$out" --benchmark_out_format=json)
  [[ -n "$filter" ]] && args+=("--benchmark_filter=$filter")
  echo "== $bin ${filter:+(filter: $filter)}"
  "$BUILD/bench/$bin" "${args[@]}" > /dev/null
}

run decode_kernels.json perf_pipeline 'BM_VarintDecode|BM_BlockDecode'
run pipeline_stages.json perf_pipeline \
  "(BM_GenerateTrace|BM_AggregateWindows|BM_FusedGenerateWindows|BM_DetectMinutes)/${THREAD1}|BM_FullDetection"
run study_fused.json perf_pipeline "BM_StudyEndToEnd/${THREAD1}"
run serve_overload.json perf_pipeline "BM_ServeOverload/${THREAD1}"
if [[ "$NCPU" == "1" ]]; then
  run study_unfused.json perf_pipeline 'BM_StudyEndToEndUnfused/threads:1'
else
  run study_unfused.json perf_pipeline 'BM_StudyEndToEndUnfused'
fi
if [[ "${DM_BENCH_PAPER:-0}" != "0" ]]; then
  # One process per row: each row's peak_rss_mib must be its own high-water
  # mark, not the max over every row run before it.
  paper_rows=('threads:1/fused:1')
  if [[ "$NCPU" != "1" ]]; then
    paper_rows+=('threads:2/fused:1' 'threads:4/fused:1'
                 'threads:8/fused:1' 'threads:8/fused:0')
  fi
  paper_row=0
  for row in "${paper_rows[@]}"; do
    run "study_paper_$((paper_row++)).json" perf_pipeline \
      "BM_StudyPaperScale/${row}"
  done
fi
if [[ "${DM_BENCH_LONG:-0}" != "0" ]]; then
  # Spill-vs-resident at longitudinal scale, one process per row (the whole
  # point is comparing the two peak-RSS high-water marks).
  run study_long_resident.json perf_pipeline 'BM_StudyLongitudinal/spill:0'
  run study_long_spill.json perf_pipeline 'BM_StudyLongitudinal/spill:1'
fi
run detectors.json perf_detectors
run netflow.json perf_netflow

python3 - "$TMP" "$OUT" <<'PY'
import datetime
import glob
import json
import os
import re
import sys

tmp, out = sys.argv[1], sys.argv[2]
to_ms = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}
stages = {}
context = {}
for path in sorted(glob.glob(os.path.join(tmp, "*.json"))):
    with open(path) as f:
        data = json.load(f)
    context = data.get("context", context)
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b["name"]
        stage = re.match(r"(?:BM_)?([^/]+)", name).group(1)
        # Inner key: the parameter segment ("threads:8" or
        # "threads:8/fused:0"); plain benchmarks key as "threads:1".
        params = [p for p in name.split("/")[1:]
                  if p not in ("real_time", "process_time")
                  and not p.startswith("iterations:")]
        threads = "/".join(params) if params else "threads:1"
        scale = to_ms.get(b.get("time_unit", "ns"), 1.0)
        row = {"real_time_ms": round(b["real_time"] * scale, 3)}
        if "items_per_second" in b:
            row["items_per_second"] = round(b["items_per_second"], 1)
        for counter in ("peak_rss_mib", "encoded_bytes_per_record",
                        "vip_minutes", "segments", "shed_records",
                        "writer_retries", "writer_dropped"):
            if counter in b:
                row[counter] = round(b[counter], 2)
        stages.setdefault(stage, {})[threads] = row

num_cpus = context.get("num_cpus")
if num_cpus == 1:
    # A 1-CPU host cannot measure thread scaling. Refuse to write a snapshot
    # that pretends otherwise — this catches benchmark JSONs produced outside
    # the thread:1 filters above.
    tainted = sorted(
        f"{stage}/{key}"
        for stage, rows in stages.items()
        for key in rows
        if re.search(r"threads:(?!1(?:/|$))", key))
    if tainted:
        sys.exit(
            "bench_json.sh: num_cpus=1 but multi-thread scaling rows were "
            "measured — a 1-CPU scaling table is noise, not data. Tainted "
            "rows: " + ", ".join(tainted) +
            ". Re-run on a multicore host.")

snapshot = {
    "schema": "dm-bench-v1",
    "generated": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
    "host": {"num_cpus": num_cpus},
    "stages": stages,
}
if num_cpus == 1:
    snapshot["host"]["scaling_tables"] = "suppressed (num_cpus=1)"
with open(out, "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=True)
    f.write("\n")
PY

echo "wrote $OUT"
