#include "util/regression.h"

#include <cmath>

namespace dm::util {

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) noexcept {
  LinearFit fit;
  const std::size_t n = xs.size() < ys.size() ? xs.size() : ys.size();
  fit.n = n;
  if (n == 0) return fit;

  double sum_x = 0.0;
  double sum_y = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum_x += xs[i];
    sum_y += ys[i];
  }
  const double mean_x = sum_x / static_cast<double>(n);
  const double mean_y = sum_y / static_cast<double>(n);

  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mean_x;
    const double dy = ys[i] - mean_y;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }

  if (sxx <= 0.0) {
    fit.intercept = mean_y;
    fit.r_squared = syy <= 0.0 ? 1.0 : 0.0;
    return fit;
  }

  fit.slope = sxy / sxx;
  fit.intercept = mean_y - fit.slope * mean_x;
  if (syy <= 0.0) {
    fit.r_squared = 1.0;  // all ys identical; a horizontal fit is exact
  } else {
    fit.r_squared = (sxy * sxy) / (sxx * syy);
  }
  return fit;
}

}  // namespace dm::util
