#include "util/cdf.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/stats.h"

namespace dm::util {

EmpiricalCdf::EmpiricalCdf(std::span<const double> samples)
    : samples_(samples.begin(), samples.end()), sorted_(false) {}

void EmpiricalCdf::add(double sample) {
  samples_.push_back(sample);
  sorted_ = false;
}

void EmpiricalCdf::add_all(std::span<const double> samples) {
  samples_.insert(samples_.end(), samples.begin(), samples.end());
  sorted_ = false;
}

void EmpiricalCdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double EmpiricalCdf::quantile(double q) const {
  ensure_sorted();
  return quantile_sorted(samples_, q);
}

std::span<const double> EmpiricalCdf::sorted() const {
  ensure_sorted();
  return samples_;
}

std::vector<CdfPoint> EmpiricalCdf::render(std::size_t points) const {
  std::vector<CdfPoint> out;
  if (samples_.empty() || points == 0) return out;
  ensure_sorted();
  const std::size_t n = samples_.size();
  const std::size_t step = n <= points ? 1 : n / points;
  out.reserve(n / step + 1);
  for (std::size_t i = step - 1; i < n; i += step) {
    out.push_back({samples_[i], static_cast<double>(i + 1) / static_cast<double>(n)});
  }
  if (out.empty() || out.back().fraction < 1.0) {
    out.push_back({samples_[n - 1], 1.0});
  }
  return out;
}

std::vector<CdfPoint> EmpiricalCdf::render_log_x(std::size_t points) const {
  std::vector<CdfPoint> out;
  if (samples_.empty() || points == 0) return out;
  ensure_sorted();
  const double lo = std::max(samples_.front(), 1e-9);
  const double hi = std::max(samples_.back(), lo * (1.0 + 1e-12));
  const double log_lo = std::log(lo);
  const double log_hi = std::log(hi);
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double t = points == 1 ? 1.0
                                 : static_cast<double>(i) /
                                       static_cast<double>(points - 1);
    const double x = std::exp(log_lo + t * (log_hi - log_lo));
    out.push_back({x, at(x)});
  }
  return out;
}

std::string to_text(std::span<const CdfPoint> points) {
  std::ostringstream os;
  for (const auto& p : points) os << p.x << ' ' << p.fraction << '\n';
  return os.str();
}

}  // namespace dm::util
