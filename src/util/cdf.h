// Empirical cumulative distribution functions.
//
// Figures 1, 3a and 4 of the paper are CDFs; EmpiricalCdf collects samples
// and can be queried for quantiles, evaluated at a point, or rendered as a
// series of (x, F(x)) points for plotting/printing.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace dm::util {

/// A point on a rendered CDF curve.
struct CdfPoint {
  double x = 0.0;
  double fraction = 0.0;  ///< F(x) in [0, 1]
};

/// Collects double-valued samples and answers distribution queries.
/// Samples are sorted lazily on first query after an insert.
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  explicit EmpiricalCdf(std::span<const double> samples);

  void add(double sample);
  void add_all(std::span<const double> samples);

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// Fraction of samples <= x; 0 when empty.
  [[nodiscard]] double at(double x) const;

  /// Linear-interpolated quantile; see util::quantile_sorted.
  [[nodiscard]] double quantile(double q) const;

  /// Renders the curve at `points` positions spaced evenly in *rank* space —
  /// each rendered x is an order statistic, so tails are represented even
  /// for heavy-tailed data. Returns at most `points` entries.
  [[nodiscard]] std::vector<CdfPoint> render(std::size_t points = 64) const;

  /// Renders the curve at log-spaced x positions between min and max sample;
  /// matches the paper's log-x CDF plots (Fig 1, 3a).
  [[nodiscard]] std::vector<CdfPoint> render_log_x(std::size_t points = 64) const;

  /// Read-only access to the sorted samples.
  [[nodiscard]] std::span<const double> sorted() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Formats a CDF as a two-column gnuplot-style text block ("x fraction\n").
[[nodiscard]] std::string to_text(std::span<const CdfPoint> points);

}  // namespace dm::util
