// Histograms for distribution summaries in benches and analyses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dm::util {

/// One rendered histogram bucket.
struct Bucket {
  double lo = 0.0;      ///< inclusive lower bound
  double hi = 0.0;      ///< exclusive upper bound
  std::uint64_t count = 0;
};

/// Fixed-width histogram over [lo, hi) with out-of-range samples clamped
/// into the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x, std::uint64_t weight = 1) noexcept;

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::vector<Bucket> buckets() const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Log-spaced histogram over [lo, hi); bucket edges grow geometrically.
/// Matches the paper's log-x axes (durations, inter-arrival, throughput).
class LogHistogram {
 public:
  /// Requires 0 < lo < hi.
  LogHistogram(double lo, double hi, std::size_t buckets);

  void add(double x, std::uint64_t weight = 1) noexcept;

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::vector<Bucket> buckets() const;

 private:
  double log_lo_;
  double log_step_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Renders buckets as an ASCII bar chart (for bench/example output).
[[nodiscard]] std::string render_ascii(const std::vector<Bucket>& buckets,
                                       std::size_t max_bar_width = 50);

}  // namespace dm::util
