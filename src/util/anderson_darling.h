// Anderson-Darling goodness-of-fit test against Uniform(0, 1).
//
// The paper (§6.1, following Moore et al. and RFC 2330) uses the A² test to
// decide whether the source addresses of an inbound flood are uniformly
// distributed over the address space — the signature of spoofing ("an attack
// has spoofed IPs if A2 value is above 0.05", i.e. the uniformity hypothesis
// is *not rejected* at the 5% level).
#pragma once

#include <cstddef>
#include <span>

namespace dm::util {

/// Outcome of an Anderson-Darling uniformity test.
struct AndersonDarlingResult {
  std::size_t n = 0;
  double statistic = 0.0;  ///< A² (adjusted for sample size)
  double p_value = 0.0;    ///< approximate p-value for H0: Uniform(0,1)

  /// True when the uniformity hypothesis survives at significance `alpha` —
  /// for attack sources this means "consistent with spoofed addresses".
  [[nodiscard]] bool uniform_at(double alpha = 0.05) const noexcept {
    return n >= 2 && p_value > alpha;
  }
};

/// Runs the test on samples already scaled to [0, 1]. Values are clamped
/// slightly inside (0, 1) to keep the statistic finite. Fewer than 2 samples
/// yield p_value = 0 (cannot support uniformity).
[[nodiscard]] AndersonDarlingResult anderson_darling_uniform(
    std::span<const double> samples01);

}  // namespace dm::util
