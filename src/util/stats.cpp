#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace dm::util {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double mu = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - mu) * (x - mu);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double quantile_sorted(std::span<const double> sorted, double q) noexcept {
  if (sorted.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= sorted.size()) return sorted[sorted.size() - 1];
  return sorted[idx] + frac * (sorted[idx + 1] - sorted[idx]);
}

double quantile(std::span<const double> xs, double q) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, q);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  s.p50 = quantile_sorted(sorted, 0.5);
  s.p99 = quantile_sorted(sorted, 0.99);
  s.mean = mean(xs);
  return s;
}

}  // namespace dm::util
