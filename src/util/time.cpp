#include "util/time.h"

#include <cstdio>

namespace dm::util {

std::string format_minute(Minute m) {
  const std::int64_t day = day_of(m);
  const Minute mod = minute_of_day(m);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "d%lld %02lld:%02lld",
                static_cast<long long>(day),
                static_cast<long long>(mod / kMinutesPerHour),
                static_cast<long long>(mod % kMinutesPerHour));
  return buf;
}

}  // namespace dm::util
