#include "util/anderson_darling.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace dm::util {
namespace {

/// Marsaglia & Marsaglia (2004) approximation to the asymptotic A²
/// distribution: returns P(A² < z), i.e. the CDF; p-value is 1 - CDF.
double ad_cdf(double z) noexcept {
  if (z <= 0.0) return 0.0;
  if (z < 2.0) {
    return std::exp(-1.2337141 / z) / std::sqrt(z) *
           (2.00012 +
            (0.247105 -
             (0.0649821 - (0.0347962 - (0.011672 - 0.00168691 * z) * z) * z) * z) *
                z);
  }
  return std::exp(
      -std::exp(1.0776 -
                (2.30695 - (0.43424 - (0.082433 - (0.008056 - 0.0003146 * z) * z) * z) * z) *
                    z));
}

}  // namespace

AndersonDarlingResult anderson_darling_uniform(std::span<const double> samples01) {
  AndersonDarlingResult result;
  result.n = samples01.size();
  if (result.n < 2) return result;

  std::vector<double> xs(samples01.begin(), samples01.end());
  std::sort(xs.begin(), xs.end());
  constexpr double kEps = 1e-12;
  for (double& x : xs) x = std::clamp(x, kEps, 1.0 - kEps);

  const auto n = static_cast<double>(xs.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double weight = 2.0 * static_cast<double>(i) + 1.0;
    acc += weight * (std::log(xs[i]) + std::log1p(-xs[xs.size() - 1 - i]));
  }
  const double a2 = -n - acc / n;
  // Small-sample adjustment (D'Agostino & Stephens, case 0).
  const double a2_adjusted = a2 * (1.0 + 0.75 / n + 2.25 / (n * n));

  result.statistic = a2_adjusted;
  result.p_value = 1.0 - ad_cdf(a2_adjusted);
  return result;
}

}  // namespace dm::util
