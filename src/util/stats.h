// Descriptive statistics over in-memory samples.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dm::util {

/// Arithmetic mean; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// Quantile with linear interpolation between order statistics
/// (the "type 7" estimator used by R and NumPy). q is clamped to [0,1].
/// Returns 0 for an empty span. The input need not be sorted.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Quantile over data the caller has already sorted ascending; avoids the
/// copy that quantile() makes.
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q) noexcept;

/// Convenience median.
[[nodiscard]] double median(std::span<const double> xs);

/// Five-point summary of a sample, plus mean; all zero when empty.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

/// Computes a Summary in one pass over a copy of the data.
[[nodiscard]] Summary summarize(std::span<const double> xs);

}  // namespace dm::util
