// Deterministic pseudo-random number generation for simulation.
//
// All stochastic behaviour in the simulator flows through dm::util::Rng so a
// scenario is fully reproducible from a single 64-bit seed. The generator is
// xoshiro256++ (public domain, Blackman & Vigna), seeded via splitmix64.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace dm::util {

/// xoshiro256++ engine. Satisfies std::uniform_random_bit_generator, so it
/// can also drive <random> distributions when convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from `seed` via splitmix64 so that nearby
  /// seeds yield decorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit draw.
  result_type operator()() noexcept;

  /// Forks an independent child stream; used to give each simulated entity
  /// (VIP, attack episode) its own stream so entities stay decorrelated when
  /// the scenario configuration changes.
  [[nodiscard]] Rng fork() noexcept;

  /// Counter-based stream split: derives the child stream for shard
  /// `stream` as a pure function of the current state and the index,
  /// WITHOUT advancing this generator. split(i) therefore yields the same
  /// stream no matter how many shards exist, which shard asks first, or on
  /// which thread — the property the parallel pipeline leans on to stay
  /// byte-identical across thread counts.
  [[nodiscard]] Rng split(std::uint64_t stream) const noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's rejection
  /// method to avoid modulo bias.
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p) noexcept;

  /// Poisson draw with the given mean. Uses Knuth for small means and a
  /// normal approximation above 64 (adequate for traffic synthesis).
  [[nodiscard]] std::uint64_t poisson(double mean) noexcept;

  /// The Knuth small-mean Poisson draw, parameterized by exp(-mean)
  /// directly. poisson() computes the exponential on every call; hot
  /// callers whose means repeat (the benign model's day-periodic rates)
  /// memoize exp(-mean) and feed it here — the drawn uniforms, and hence
  /// the stream position, are identical to poisson(mean) for mean < 64.
  [[nodiscard]] std::uint64_t poisson_knuth(double exp_neg_mean) noexcept;

  /// Binomial(n, p) draw. Exact inversion for small n*p, normal
  /// approximation for large — matches how NetFlow sampling thins packets.
  [[nodiscard]] std::uint64_t binomial(std::uint64_t n, double p) noexcept;

  /// Exponential with the given mean (mean > 0).
  [[nodiscard]] double exponential(double mean) noexcept;

  /// Standard normal via Box-Muller (one value per call; no caching so the
  /// stream position is deterministic).
  [[nodiscard]] double normal() noexcept;

  /// Normal with mean/stddev.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Log-normal parameterized by the *median* and the multiplicative spread
  /// sigma (of the underlying normal). Heavy-tailed attack intensities and
  /// durations use this.
  [[nodiscard]] double lognormal_median(double median, double sigma) noexcept;

  /// Bounded Pareto with shape alpha on [lo, hi]. Used for tail-heavy fan-in
  /// and campaign sizes.
  [[nodiscard]] double pareto(double alpha, double lo, double hi) noexcept;

  /// Picks a uniformly random element of a non-empty span.
  template <typename T>
  [[nodiscard]] const T& pick(std::span<const T> items) noexcept {
    return items[static_cast<std::size_t>(below(items.size()))];
  }

  /// Samples an index from an unnormalized weight vector. Returns
  /// weights.size()-1 on accumulated rounding error. Requires a positive sum.
  [[nodiscard]] std::size_t weighted_index(std::span<const double> weights) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[static_cast<std::size_t>(below(i))]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace dm::util
