#include "util/rng.h"

#include <cmath>

namespace dm::util {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::fork() noexcept { return Rng((*this)()); }

Rng Rng::split(std::uint64_t stream) const noexcept {
  // Fold the parent state into one word, offset it by the stream index
  // scaled with the golden gamma (splitmix64's increment, so consecutive
  // indices land on well-separated seeds), and scramble twice.
  std::uint64_t sm = s_[0] ^ rotl(s_[1], 17) ^ rotl(s_[2], 31) ^ rotl(s_[3], 47);
  sm += (stream + 1) * 0x9e3779b97f4a7c15ULL;
  const std::uint64_t a = splitmix64(sm);
  const std::uint64_t b = splitmix64(sm);
  return Rng(a ^ rotl(b, 27));
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless bounded draw.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept {
  if (lo >= hi) return lo;
  const std::uint64_t span = hi - lo;
  if (span == std::numeric_limits<std::uint64_t>::max()) return (*this)();
  return lo + below(span + 1);
}

double Rng::uniform01() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 64.0) return poisson_knuth(std::exp(-mean));
  // Normal approximation with continuity correction.
  const double draw = normal(mean, std::sqrt(mean)) + 0.5;
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw);
}

std::uint64_t Rng::poisson_knuth(double exp_neg_mean) noexcept {
  // Knuth: multiply uniforms until the product drops below exp(-mean).
  double product = 1.0;
  std::uint64_t k = 0;
  do {
    ++k;
    product *= uniform01();
  } while (product > exp_neg_mean);
  return k - 1;
}

std::uint64_t Rng::binomial(std::uint64_t n, double p) noexcept {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  const double np = static_cast<double>(n) * p;
  if (np < 32.0 && n < 10'000'000ULL) {
    // Inversion via geometric skips: expected O(np) work.
    const double log_q = std::log1p(-p);
    std::uint64_t hits = 0;
    double position = 0.0;
    for (;;) {
      position += std::floor(std::log(1.0 - uniform01()) / log_q) + 1.0;
      if (position > static_cast<double>(n)) return hits;
      ++hits;
    }
  }
  const double variance = np * (1.0 - p);
  const double draw = normal(np, std::sqrt(variance)) + 0.5;
  if (draw <= 0.0) return 0;
  const auto clamped = static_cast<std::uint64_t>(draw);
  return clamped > n ? n : clamped;
}

double Rng::exponential(double mean) noexcept {
  return -mean * std::log(1.0 - uniform01());
}

double Rng::normal() noexcept {
  // Box-Muller; draw until the radius is usable.
  double u1 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();
  const double u2 = uniform01();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647692 * u2);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal_median(double median, double sigma) noexcept {
  return median * std::exp(sigma * normal());
}

double Rng::pareto(double alpha, double lo, double hi) noexcept {
  if (lo >= hi) return lo;
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  const double u = uniform01();
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

std::size_t Rng::weighted_index(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w > 0.0 ? w : 0.0;
  double target = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

}  // namespace dm::util
