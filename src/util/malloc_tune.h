// glibc malloc keeps a per-thread arena and adapts its mmap threshold
// upward (to 32 MiB) whenever an mmap'd block is freed. For a sharded
// streaming pass that is the worst case: every worker churns through
// multi-MiB per-shard scratch arrays, the adapted threshold routes them to
// the arena heap, and each arena permanently retains its high-water mark —
// peak RSS then grows with the worker count even though the live set does
// not. Pinning the threshold low makes every big scratch allocation an
// mmap, returned to the OS the moment the shard frees it; the cost is a
// soft page fault per fresh page, noise next to generating and sorting the
// records that fill it.
#pragma once

#if defined(__GLIBC__)
#include <malloc.h>
#endif

namespace dm::util {

/// Pin the malloc mmap threshold to 1 MiB (glibc only; no-op elsewhere).
/// Called by the sharded pipeline stages before fan-out; idempotent and
/// safe to call from any thread.
inline void tune_malloc_for_streaming() noexcept {
#if defined(__GLIBC__)
  static const bool tuned = [] {
    mallopt(M_MMAP_THRESHOLD, 1 << 20);
    // Two arenas instead of one per thread: shard outputs (live until the
    // merge) interleave with freed scratch inside an arena, so every arena
    // fragments up to its own high-water mark. Allocation here is chunky
    // (vector growth doublings), so the lock contention this adds is
    // negligible next to 8x fewer fragmented heaps.
    mallopt(M_ARENA_MAX, 2);
    return true;
  }();
  (void)tuned;
#endif
}

/// Return freed heap pages to the OS (glibc only; no-op elsewhere).
/// Worker arenas retain their high-water mark after shard outputs are
/// freed; a long serial merge that frees hundreds of shard slices while
/// growing the final buffers should trim periodically so the freed pages
/// do not stack on top of the merged copy in the peak-RSS accounting.
inline void release_free_heap() noexcept {
#if defined(__GLIBC__)
  malloc_trim(0);
#endif
}

}  // namespace dm::util
