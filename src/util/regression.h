// Ordinary least-squares linear regression.
//
// The paper selects per-attack-type inactive timeouts (Table 1) by fitting a
// regression line over points of each inactive-time CDF and requiring the
// average R-squared across inbound/outbound curves to stay above 85%
// (§2.2 / Fig 1). detect::TimeoutSelector uses this fit.
#pragma once

#include <cstddef>
#include <span>

namespace dm::util {

/// Result of a simple y = slope*x + intercept fit.
struct LinearFit {
  std::size_t n = 0;
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  ///< coefficient of determination; 1 for a perfect fit

  /// Predicted y at x.
  [[nodiscard]] double at(double x) const noexcept { return slope * x + intercept; }
};

/// Fits y over x by ordinary least squares. Requires xs.size() == ys.size().
/// With fewer than 2 points (or zero x-variance) returns a flat fit with
/// r_squared = 1 when all ys are equal, else 0.
[[nodiscard]] LinearFit fit_linear(std::span<const double> xs,
                                   std::span<const double> ys) noexcept;

}  // namespace dm::util
