// Plain-text table rendering for bench/example output.
#pragma once

#include <cstddef>
#include <string>
#include <type_traits>
#include <vector>

namespace dm::util {

/// Accumulates rows of string cells and renders them with aligned columns.
/// Used by every bench binary to print paper-style tables.
class TextTable {
 public:
  /// Sets the header row; resets nothing else.
  void set_header(std::vector<std::string> cells);

  /// Appends a data row. Rows may have differing cell counts; short rows are
  /// padded on render.
  void add_row(std::vector<std::string> cells);

  /// Convenience: appends a row of already-formatted cells.
  template <typename... Cells>
  void row(Cells&&... cells) {
    add_row(std::vector<std::string>{to_cell(std::forward<Cells>(cells))...});
  }

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with a separator under the header and two spaces between
  /// columns. Numeric-looking cells are right-aligned.
  [[nodiscard]] std::string render() const;

 private:
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(double v);
  template <typename T>
    requires std::is_integral_v<T>
  static std::string to_cell(T v) {
    return std::to_string(v);
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimals, trimming a trailing ".0…".
[[nodiscard]] std::string format_double(double v, int digits = 2);

/// Formats a rate in packets/second with a K/M suffix (e.g. "9.4 Mpps").
[[nodiscard]] std::string format_pps(double pps);

/// Formats a duration given in minutes using the paper's axis units
/// (min / hour / day / week / month).
[[nodiscard]] std::string format_minutes(double minutes);

/// Formats a fraction as a percentage string with one decimal ("35.1%").
[[nodiscard]] std::string format_percent(double fraction, int digits = 1);

}  // namespace dm::util
