// Exponentially weighted moving average used by the sequential change-point
// detector (paper §2.2: "comparing the traffic volume at the current time
// window with the EWMA of the past 10 time windows").
#pragma once

#include <cstddef>

namespace dm::util {

/// Streaming EWMA. `alpha` is the weight of the newest observation; the
/// paper's "past 10 windows" baseline corresponds to Ewma::for_window(10)
/// (alpha = 2/(N+1), the span convention).
class Ewma {
 public:
  explicit Ewma(double alpha) noexcept;

  /// EWMA whose effective averaging window is `windows` observations.
  [[nodiscard]] static Ewma for_window(std::size_t windows) noexcept;

  /// Incorporates an observation and returns the updated average. The first
  /// observation initializes the average directly.
  double update(double observation) noexcept;

  /// Absorbs `steps` zero-valued observations in closed form — how the
  /// change-point detector accounts for the silent minutes between two
  /// sampled windows of a sparse series.
  void decay(std::size_t steps) noexcept;

  /// Current average (0 before any observation).
  [[nodiscard]] double value() const noexcept { return value_; }

  /// Number of observations absorbed so far.
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

  /// True once at least one observation has been absorbed.
  [[nodiscard]] bool primed() const noexcept { return count_ > 0; }

  void reset() noexcept;

  /// Restores a previously observed (value, count) pair — the
  /// checkpoint/restore path of streaming consumers. alpha comes from
  /// construction, so restore into an Ewma built with the same config.
  void set_state(double value, std::size_t count) noexcept {
    value_ = value;
    count_ = count;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace dm::util
