// Simulation time: everything in the study is indexed by one-minute windows,
// matching the paper's NetFlow aggregation granularity.
#pragma once

#include <cstdint>
#include <string>

namespace dm::util {

/// Index of a one-minute window since simulation start (t = 0).
using Minute = std::int64_t;

inline constexpr Minute kMinutesPerHour = 60;
inline constexpr Minute kMinutesPerDay = 24 * kMinutesPerHour;

/// Day index (0-based) containing a minute.
[[nodiscard]] constexpr std::int64_t day_of(Minute m) noexcept {
  return m >= 0 ? m / kMinutesPerDay : (m - kMinutesPerDay + 1) / kMinutesPerDay;
}

/// Minute-of-day in [0, 1440).
[[nodiscard]] constexpr Minute minute_of_day(Minute m) noexcept {
  const Minute r = m % kMinutesPerDay;
  return r < 0 ? r + kMinutesPerDay : r;
}

/// Hour-of-day in [0, 24).
[[nodiscard]] constexpr int hour_of_day(Minute m) noexcept {
  return static_cast<int>(minute_of_day(m) / kMinutesPerHour);
}

/// Formats a minute index as "dD hh:mm" for logs and case-study output.
[[nodiscard]] std::string format_minute(Minute m);

}  // namespace dm::util
