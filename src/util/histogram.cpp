#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.h"

namespace dm::util {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo),
      width_((hi - lo) / static_cast<double>(buckets == 0 ? 1 : buckets)),
      counts_(buckets == 0 ? 1 : buckets, 0) {
  if (hi <= lo) throw ConfigError("Histogram: hi must exceed lo");
}

void Histogram::add(double x, std::uint64_t weight) noexcept {
  auto idx = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width_));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

std::vector<Bucket> Histogram::buckets() const {
  std::vector<Bucket> out;
  out.reserve(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double lo = lo_ + width_ * static_cast<double>(i);
    out.push_back({lo, lo + width_, counts_[i]});
  }
  return out;
}

LogHistogram::LogHistogram(double lo, double hi, std::size_t buckets)
    : log_lo_(std::log(lo)),
      log_step_((std::log(hi) - std::log(lo)) /
                static_cast<double>(buckets == 0 ? 1 : buckets)),
      counts_(buckets == 0 ? 1 : buckets, 0) {
  if (!(lo > 0.0) || hi <= lo) {
    throw ConfigError("LogHistogram: requires 0 < lo < hi");
  }
}

void LogHistogram::add(double x, std::uint64_t weight) noexcept {
  const double lx = std::log(std::max(x, 1e-300));
  auto idx = static_cast<std::ptrdiff_t>(std::floor((lx - log_lo_) / log_step_));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

std::vector<Bucket> LogHistogram::buckets() const {
  std::vector<Bucket> out;
  out.reserve(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double lo = std::exp(log_lo_ + log_step_ * static_cast<double>(i));
    const double hi = std::exp(log_lo_ + log_step_ * static_cast<double>(i + 1));
    out.push_back({lo, hi, counts_[i]});
  }
  return out;
}

std::string render_ascii(const std::vector<Bucket>& buckets,
                         std::size_t max_bar_width) {
  std::uint64_t peak = 0;
  for (const auto& b : buckets) peak = std::max(peak, b.count);
  std::ostringstream os;
  for (const auto& b : buckets) {
    const std::size_t bar =
        peak == 0 ? 0
                  : static_cast<std::size_t>(
                        (static_cast<double>(b.count) / static_cast<double>(peak)) *
                        static_cast<double>(max_bar_width));
    os << '[' << b.lo << ", " << b.hi << ") " << std::string(bar, '#') << ' '
       << b.count << '\n';
  }
  return os.str();
}

}  // namespace dm::util
