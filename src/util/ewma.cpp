#include "util/ewma.h"

#include <algorithm>

namespace dm::util {

Ewma::Ewma(double alpha) noexcept : alpha_(std::clamp(alpha, 1e-9, 1.0)) {}

Ewma Ewma::for_window(std::size_t windows) noexcept {
  const double n = windows == 0 ? 1.0 : static_cast<double>(windows);
  return Ewma(2.0 / (n + 1.0));
}

double Ewma::update(double observation) noexcept {
  if (count_ == 0) {
    value_ = observation;
  } else {
    value_ += alpha_ * (observation - value_);
  }
  ++count_;
  return value_;
}

void Ewma::decay(std::size_t steps) noexcept {
  if (steps == 0) return;
  // (1 - alpha)^steps without pow() drift for the common small counts.
  double factor = 1.0;
  double base = 1.0 - alpha_;
  std::size_t n = steps;
  while (n > 0) {
    if (n & 1) factor *= base;
    base *= base;
    n >>= 1;
  }
  value_ *= factor;
  count_ += steps;
}

void Ewma::reset() noexcept {
  value_ = 0.0;
  count_ = 0;
}

}  // namespace dm::util
