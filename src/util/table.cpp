#include "util/table.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>

namespace dm::util {
namespace {

bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  bool digit_seen = false;
  for (char c : cell) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != '-' && c != '+' && c != '%' && c != ' ' &&
               c != 'K' && c != 'M' && c != 'G' && c != 'x' && c != '/') {
      return false;
    }
  }
  return digit_seen;
}

}  // namespace

void TextTable::set_header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_cell(double v) { return format_double(v); }

std::string TextTable::render() const {
  std::size_t columns = header_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());
  if (columns == 0) return {};

  std::vector<std::size_t> widths(columns, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < columns; ++i) {
      const std::string cell = i < row.size() ? row[i] : std::string{};
      const bool right = looks_numeric(cell);
      if (right) {
        os << std::string(widths[i] - cell.size(), ' ') << cell;
      } else {
        os << cell << std::string(widths[i] - cell.size(), ' ');
      }
      if (i + 1 < columns) os << "  ";
    }
    os << '\n';
  };

  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w;
    os << std::string(total + 2 * (columns - 1), '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string format_double(double v, int digits) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << v;
  std::string s = os.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s.empty() ? "0" : s;
}

std::string format_pps(double pps) {
  if (pps >= 1e6) return format_double(pps / 1e6, 2) + " Mpps";
  if (pps >= 1e3) return format_double(pps / 1e3, 1) + " Kpps";
  return format_double(pps, 0) + " pps";
}

std::string format_minutes(double minutes) {
  if (minutes < 60.0) return format_double(minutes, 1) + " min";
  if (minutes < 1440.0) return format_double(minutes / 60.0, 1) + " hour";
  if (minutes < 10080.0) return format_double(minutes / 1440.0, 1) + " day";
  if (minutes < 43200.0) return format_double(minutes / 10080.0, 1) + " week";
  return format_double(minutes / 43200.0, 1) + " month";
}

std::string format_percent(double fraction, int digits) {
  return format_double(fraction * 100.0, digits) + "%";
}

}  // namespace dm::util
