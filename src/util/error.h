// Error types shared across the darkmenace libraries.
#pragma once

#include <stdexcept>
#include <string>

namespace dm {

/// Base class for all errors thrown by the darkmenace libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when serialized trace data is malformed or truncated.
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what) : Error(what) {}
};

/// Thrown when a configuration value is out of its documented domain.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

}  // namespace dm
