// The top-level study orchestrator: the public entry point a downstream
// user calls to reproduce the paper end-to-end.
//
//   dm::core::Study study(dm::sim::ScenarioConfig::paper_scale());
//   const auto& incidents = study.detection().incidents;
//
// A Study owns the simulated world, the generated trace, the windowed
// aggregation, and the detection result; the analysis functions in
// dm::analysis consume its parts to regenerate each paper exhibit.
#pragma once

#include <memory>

#include "detect/pipeline.h"
#include "netflow/window_aggregator.h"
#include "sim/trace_generator.h"

namespace dm::core {

class Study {
 public:
  /// Builds the world, generates the trace, aggregates it, and runs the
  /// detection pipeline. Deterministic for a given config.
  explicit Study(sim::ScenarioConfig config,
                 detect::DetectionConfig detection = {},
                 detect::TimeoutTable timeouts = detect::TimeoutTable::paper());

  [[nodiscard]] const sim::Scenario& scenario() const noexcept { return scenario_; }
  [[nodiscard]] const sim::GroundTruth& truth() const noexcept { return truth_; }
  [[nodiscard]] const netflow::WindowedTrace& trace() const noexcept {
    return windowed_;
  }
  [[nodiscard]] const detect::DetectionResult& detection() const noexcept {
    return detection_;
  }
  [[nodiscard]] std::uint32_t sampling() const noexcept {
    return scenario_.config().sampling;
  }
  /// TDS blacklist as a prefix set (needed by attribution helpers).
  [[nodiscard]] const netflow::PrefixSet& blacklist() const noexcept {
    return scenario_.tds().as_prefix_set();
  }
  /// Total sampled records the trace contained before aggregation.
  [[nodiscard]] std::uint64_t record_count() const noexcept {
    return record_count_;
  }

 private:
  sim::Scenario scenario_;
  sim::GroundTruth truth_;
  netflow::WindowedTrace windowed_;
  detect::DetectionResult detection_;
  std::uint64_t record_count_ = 0;
};

}  // namespace dm::core
