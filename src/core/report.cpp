#include "core/report.h"

#include <sstream>

#include "util/table.h"

namespace dm::core {

using netflow::Direction;

StudyReport build_report(const Study& study) {
  StudyReport report;
  const auto& incidents = study.detection().incidents;
  const auto& minutes = study.detection().minutes;
  const auto& trace = study.trace();
  const auto& ases = study.scenario().ases();
  const auto* blacklist = &study.blacklist();
  const std::uint32_t sampling = study.sampling();

  report.mix = analysis::compute_attack_mix(incidents);
  report.inbound_frequency =
      analysis::compute_vip_frequency(incidents, Direction::kInbound);
  report.outbound_frequency =
      analysis::compute_vip_frequency(incidents, Direction::kOutbound);
  report.inbound_active_time =
      analysis::compute_active_time(trace, minutes, Direction::kInbound);
  report.outbound_active_time =
      analysis::compute_active_time(trace, minutes, Direction::kOutbound);

  report.multi_vector = detect::find_multi_vector(incidents);
  report.multi_vip = detect::find_multi_vip(incidents);
  report.chains = detect::find_compromise_chains(incidents);

  report.services =
      analysis::compute_service_attack_table(trace, minutes, incidents);
  report.outbound_apps = analysis::compute_outbound_app_targets(trace, incidents);

  report.inbound_throughput = analysis::compute_aggregate_throughput(
      minutes, Direction::kInbound, sampling);
  report.outbound_throughput = analysis::compute_aggregate_throughput(
      minutes, Direction::kOutbound, sampling);
  report.inbound_vip_throughput = analysis::compute_per_vip_throughput(
      incidents, Direction::kInbound, sampling);
  report.outbound_vip_throughput = analysis::compute_per_vip_throughput(
      incidents, Direction::kOutbound, sampling);
  report.inbound_timing = analysis::compute_timing(incidents, Direction::kInbound);
  report.outbound_timing =
      analysis::compute_timing(incidents, Direction::kOutbound);

  report.spoofing = analysis::analyze_spoofing(trace, incidents, blacklist);
  report.inbound_as = analysis::analyze_as(trace, incidents, ases,
                                           Direction::kInbound,
                                           &report.spoofing, blacklist);
  report.outbound_as = analysis::analyze_as(trace, incidents, ases,
                                            Direction::kOutbound, nullptr,
                                            blacklist);
  report.inbound_geo = analysis::analyze_geo(trace, incidents, ases,
                                             Direction::kInbound,
                                             &report.spoofing, blacklist);
  report.outbound_geo = analysis::analyze_geo(trace, incidents, ases,
                                              Direction::kOutbound, nullptr,
                                              blacklist);
  return report;
}

namespace {

void render_mix(const StudyReport& r, std::ostringstream& os) {
  os << "== attack mix (Fig 2) ==\n";
  util::TextTable table;
  table.set_header({"type", "inbound %", "outbound %"});
  for (sim::AttackType t : sim::kAllAttackTypes) {
    table.row(std::string(sim::to_string(t)),
              util::format_percent(r.mix.share(t, Direction::kInbound)),
              util::format_percent(r.mix.share(t, Direction::kOutbound)));
  }
  os << table.render();
  os << "direction split: " << util::format_percent(r.mix.inbound_share())
     << " inbound / " << util::format_percent(1.0 - r.mix.inbound_share())
     << " outbound (" << r.mix.total() << " incidents)\n\n";
}

void render_frequency(const StudyReport& r, std::ostringstream& os) {
  os << "== per-VIP frequency (Fig 3/4) ==\n";
  const auto line = [&](const char* label, const analysis::VipFrequency& f,
                        const analysis::ActiveTimeResult& active) {
    os << label << ": " << f.pairs.size() << " (VIP, day) pairs, "
       << util::format_percent(f.single_attack_fraction)
       << " single-attack, max " << f.max_attacks_per_day
       << " attacks/day; median active-time share in attack "
       << util::format_percent(active.fraction_cdf.quantile(0.5), 2) << ", "
       << util::format_percent(active.majority_attacked_fraction)
       << " of VIPs in attack >50% of their life\n";
  };
  line("inbound ", r.inbound_frequency, r.inbound_active_time);
  line("outbound", r.outbound_frequency, r.outbound_active_time);
  os << '\n';
}

void render_correlation(const StudyReport& r, std::ostringstream& os) {
  os << "== correlated attacks (Fig 5/6) ==\n";
  std::uint32_t peak_vips = 0;
  for (const auto& e : r.multi_vip) peak_vips = std::max(peak_vips, e.vip_count);
  os << "multi-vector events: " << r.multi_vector.size()
     << "; multi-VIP events: " << r.multi_vip.size() << " (peak "
     << peak_vips << " VIPs); inbound->outbound compromise chains: "
     << r.chains.size() << "\n\n";
}

void render_throughput(const StudyReport& r, std::ostringstream& os) {
  os << "== throughput (Fig 7/8) ==\n";
  const auto line = [&](const char* label,
                        const analysis::AggregateThroughput& agg) {
    os << label << " aggregate: median " << util::format_pps(agg.overall.median_pps)
       << ", peak " << util::format_pps(agg.overall.peak_pps) << '\n';
  };
  line("inbound ", r.inbound_throughput);
  line("outbound", r.outbound_throughput);
  os << '\n';
}

void render_timing(const StudyReport& r, std::ostringstream& os) {
  os << "== timing (Fig 9/10) ==\n";
  util::TextTable table;
  table.set_header({"type", "in dur p50", "out dur p50", "in gap p50",
                    "out gap p50"});
  for (sim::AttackType t : sim::kAllAttackTypes) {
    const std::size_t i = sim::index_of(t);
    const auto cell = [](const analysis::TimingStat& s) {
      return s.samples == 0 ? std::string("-") : util::format_minutes(s.median);
    };
    table.row(std::string(sim::to_string(t)), cell(r.inbound_timing.duration[i]),
              cell(r.outbound_timing.duration[i]),
              cell(r.inbound_timing.interarrival[i]),
              cell(r.outbound_timing.interarrival[i]));
  }
  os << table.render() << '\n';
}

void render_origins(const StudyReport& r, std::ostringstream& os) {
  os << "== origins and targets (Fig 11-15, §6.1) ==\n";
  const std::size_t syn = sim::index_of(sim::AttackType::kSynFlood);
  if (r.spoofing.tested[syn] > 0) {
    os << "SYN floods spoofed: "
       << util::format_percent(r.spoofing.spoofed_fraction[syn]) << " of "
       << r.spoofing.tested[syn] << " tested\n";
  }
  util::TextTable table;
  table.set_header({"AS class", "inbound involvement", "outbound involvement"});
  for (std::size_t c = 0; c < analysis::kAsClassCount; ++c) {
    table.row(std::string(cloud::to_string(cloud::kAllAsClasses[c])),
              util::format_percent(r.inbound_as.class_share[c]),
              util::format_percent(r.outbound_as.class_share[c]));
  }
  os << table.render();
  os << "outbound attacks confined to one AS: "
     << util::format_percent(r.outbound_as.single_as_fraction) << "\n\n";
}

void render_services(const StudyReport& r, std::ostringstream& os) {
  os << "== services under attack (Table 3, Fig 16) ==\n";
  os << "victim VIPs: " << r.services.victim_vips
     << "; outbound attacking VIPs: " << r.outbound_apps.attacking_vips
     << " (web share of targets "
     << util::format_percent(r.outbound_apps.web_share) << ")\n\n";
}

}  // namespace

std::string render_report(const StudyReport& report, const Study& study) {
  std::ostringstream os;
  os << "=== darkmenace study report ===\n";
  os << "VIPs: " << study.scenario().vips().size() << ", days: "
     << study.scenario().config().days << ", sampling: 1:" << study.sampling()
     << ", records: " << study.record_count() << ", incidents: "
     << study.detection().incidents.size() << "\n\n";
  render_mix(report, os);
  render_frequency(report, os);
  render_correlation(report, os);
  render_throughput(report, os);
  render_timing(report, os);
  render_origins(report, os);
  render_services(report, os);
  return os.str();
}

}  // namespace dm::core
