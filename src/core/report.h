// One-call study report: every exhibit of the paper computed and rendered
// as text. This is the "give me the whole §3-§7 characterization" entry
// point a downstream operator would run over their own trace.
#pragma once

#include <string>
#include <vector>

#include "analysis/active_time.h"
#include "analysis/as_analysis.h"
#include "analysis/overview.h"
#include "analysis/service_mix.h"
#include "analysis/spoof_analysis.h"
#include "analysis/throughput.h"
#include "analysis/timing.h"
#include "analysis/vip_frequency.h"
#include "core/study.h"
#include "detect/correlator.h"

namespace dm::core {

/// All computed exhibits for one study.
struct StudyReport {
  // §3.1 / Fig 2
  analysis::AttackMix mix;
  // §4.1 / Fig 3, 4
  analysis::VipFrequency inbound_frequency;
  analysis::VipFrequency outbound_frequency;
  analysis::ActiveTimeResult inbound_active_time;
  analysis::ActiveTimeResult outbound_active_time;
  // §4.2, §4.3 / Fig 5, 6
  std::vector<detect::MultiVectorEvent> multi_vector;
  std::vector<detect::MultiVipEvent> multi_vip;
  std::vector<detect::CompromiseChain> chains;
  // §4.4 / Table 3, Fig 16
  analysis::ServiceAttackTable services;
  analysis::OutboundAppTargets outbound_apps;
  // §5 / Fig 7-10
  analysis::AggregateThroughput inbound_throughput;
  analysis::AggregateThroughput outbound_throughput;
  analysis::PerVipThroughput inbound_vip_throughput;
  analysis::PerVipThroughput outbound_vip_throughput;
  analysis::TimingResult inbound_timing;
  analysis::TimingResult outbound_timing;
  // §6 / Fig 11-15
  analysis::SpoofResult spoofing;
  analysis::AsAnalysisResult inbound_as;
  analysis::AsAnalysisResult outbound_as;
  analysis::GeoResult inbound_geo;
  analysis::GeoResult outbound_geo;
};

/// Computes every exhibit. Walks the incident set several times; for a
/// paper-scale study this completes in seconds.
[[nodiscard]] StudyReport build_report(const Study& study);

/// Renders the report as a plain-text document (one section per exhibit).
[[nodiscard]] std::string render_report(const StudyReport& report,
                                        const Study& study);

}  // namespace dm::core
