#include "core/study.h"

#include "exec/thread_pool.h"

namespace dm::core {

Study::Study(sim::ScenarioConfig config, detect::DetectionConfig detection,
             detect::TimeoutTable timeouts)
    : scenario_(std::move(config)) {
  // One pool for all three sharded stages; every stage merges its shards in
  // shard-index order, so the study is byte-identical for any thread_count.
  exec::ThreadPool pool(exec::workers_for(scenario_.config().thread_count));
  if (scenario_.config().fuse_pipeline) {
    // Fused streaming path: generation and aggregation run per VIP-range
    // shard, so the unsorted global record vector never exists.
    sim::FusedTrace fused = sim::generate_windows(scenario_, &pool);
    truth_ = std::move(fused.truth);
    record_count_ = fused.generated_records;
    windowed_ = std::move(fused.windowed);
  } else {
    sim::TraceResult result = sim::generate_trace(scenario_, &pool);
    truth_ = std::move(result.truth);
    record_count_ = result.records.size();
    windowed_ = netflow::aggregate_windows(std::move(result.records),
                                           scenario_.vips().cloud_space(),
                                           &scenario_.tds().as_prefix_set(), &pool,
                                           &scenario_.config().spill);
  }
  const detect::DetectionPipeline pipeline(detection, timeouts);
  detection_ = pipeline.run(windowed_, &pool);
}

}  // namespace dm::core
