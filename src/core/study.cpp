#include "core/study.h"

namespace dm::core {

Study::Study(sim::ScenarioConfig config, detect::DetectionConfig detection,
             detect::TimeoutTable timeouts)
    : scenario_(std::move(config)) {
  sim::TraceResult result = sim::generate_trace(scenario_);
  truth_ = std::move(result.truth);
  record_count_ = result.records.size();
  windowed_ = netflow::aggregate_windows(std::move(result.records),
                                         scenario_.vips().cloud_space(),
                                         &scenario_.tds().as_prefix_set());
  const detect::DetectionPipeline pipeline(detection, timeouts);
  detection_ = pipeline.run(windowed_);
}

}  // namespace dm::core
