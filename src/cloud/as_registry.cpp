#include "cloud/as_registry.h"

#include <algorithm>

#include "util/error.h"

namespace dm::cloud {

using netflow::IPv4;
using netflow::Prefix;

std::string_view to_string(AsClass c) noexcept {
  switch (c) {
    case AsClass::kBigCloud: return "BigCloud";
    case AsClass::kSmallCloud: return "SmallCloud";
    case AsClass::kMobile: return "Mobile";
    case AsClass::kLargeIsp: return "LargeISP";
    case AsClass::kSmallIsp: return "SmallISP";
    case AsClass::kCustomer: return "Customer";
    case AsClass::kEdu: return "EDU";
    case AsClass::kIxp: return "IXP";
    case AsClass::kNic: return "NIC";
  }
  return "?";
}

std::string_view to_string(GeoRegion r) noexcept {
  switch (r) {
    case GeoRegion::kNorthAmericaWest: return "NA-West";
    case GeoRegion::kNorthAmericaEast: return "NA-East";
    case GeoRegion::kWesternEurope: return "W-Europe";
    case GeoRegion::kSpain: return "Spain";
    case GeoRegion::kFrance: return "France";
    case GeoRegion::kEasternEurope: return "E-Europe";
    case GeoRegion::kRomania: return "Romania";
    case GeoRegion::kEastAsia: return "E-Asia";
    case GeoRegion::kSoutheastAsia: return "SE-Asia";
    case GeoRegion::kOceania: return "Oceania";
    case GeoRegion::kLatinAmerica: return "LatAm";
    case GeoRegion::kAfrica: return "Africa";
  }
  return "?";
}

namespace {

/// Prefix length allocated to each AS class (address-block size).
int prefix_length_for(AsClass c) noexcept {
  switch (c) {
    case AsClass::kBigCloud: return 12;
    case AsClass::kLargeIsp: return 13;
    case AsClass::kMobile: return 14;
    case AsClass::kSmallIsp: return 17;
    case AsClass::kSmallCloud: return 18;
    case AsClass::kCustomer: return 19;
    case AsClass::kEdu: return 17;
    case AsClass::kIxp: return 22;
    case AsClass::kNic: return 22;
  }
  return 20;
}

/// Plausible geography mix per class; indexed by kAllGeoRegions order.
std::span<const double> region_weights_for(AsClass c) noexcept {
  // {NA-W, NA-E, W-Eu, Spain, France, E-Eu, Romania, E-Asia, SE-Asia, Oce, LatAm, Africa}
  static constexpr double kCloud[] = {3, 3, 2, 0.3, 0.5, 0.4, 0.3, 1.5, 1, 0.5, 0.3, 0.1};
  static constexpr double kMobile[] = {2, 2, 2, 0.5, 0.7, 1, 0.3, 3, 2, 0.5, 1, 0.8};
  static constexpr double kIsp[] = {2, 2.5, 2, 0.8, 0.8, 1.5, 0.6, 2.5, 1.5, 0.5, 1, 0.7};
  static constexpr double kEdu[] = {2.5, 3, 2, 0.4, 0.5, 0.8, 0.2, 2, 0.8, 0.5, 0.5, 0.3};
  switch (c) {
    case AsClass::kBigCloud:
    case AsClass::kSmallCloud: return kCloud;
    case AsClass::kMobile: return kMobile;
    case AsClass::kEdu: return kEdu;
    default: return kIsp;
  }
}

}  // namespace

AsRegistry::AsRegistry(const AsRegistryConfig& config, std::uint64_t seed)
    : class_members_(std::size(kAllAsClasses)) {
  util::Rng rng(seed ^ 0xa5a5'5a5a'1234'5678ULL);

  // Sequential carving from 4.0.0.0; 100.64.0.0/12 is reserved for the cloud
  // (VipRegistry) and skipped here.
  std::uint64_t cursor = IPv4::from_octets(4, 0, 0, 0).value();
  const Prefix cloud_reserved(IPv4::from_octets(100, 64, 0, 0), 12);

  const std::pair<AsClass, std::uint32_t> plan[] = {
      {AsClass::kBigCloud, config.big_cloud},
      {AsClass::kLargeIsp, config.large_isp},
      {AsClass::kMobile, config.mobile},
      {AsClass::kSmallCloud, config.small_cloud},
      {AsClass::kSmallIsp, config.small_isp},
      {AsClass::kCustomer, config.customer},
      {AsClass::kEdu, config.edu},
      {AsClass::kIxp, config.ixp},
      {AsClass::kNic, config.nic},
  };

  std::uint32_t next_asn = 100;
  for (const auto& [cls, count] : plan) {
    const int bits = prefix_length_for(cls);
    const std::uint64_t block = std::uint64_t{1} << (32 - bits);
    for (std::uint32_t i = 0; i < count; ++i) {
      // Align the cursor to the block size, skipping the cloud reservation.
      cursor = (cursor + block - 1) & ~(block - 1);
      Prefix prefix(IPv4(static_cast<std::uint32_t>(cursor)), bits);
      while (cloud_reserved.contains(prefix.network()) ||
             prefix.contains(cloud_reserved.network())) {
        cursor += block;
        prefix = Prefix(IPv4(static_cast<std::uint32_t>(cursor)), bits);
      }
      if (cursor + block > 0xE0000000ULL) {
        throw ConfigError("AsRegistry: address space exhausted; reduce AS counts");
      }
      cursor += block;

      AsInfo as;
      as.asn = next_asn++;
      as.cls = cls;
      as.prefix = prefix;
      as.region = kAllGeoRegions[rng.weighted_index(region_weights_for(cls))];
      as.name = std::string(to_string(cls)) + "-AS" + std::to_string(as.asn);
      class_members_[static_cast<std::size_t>(cls)].push_back(
          static_cast<std::uint32_t>(ases_.size()));
      ases_.push_back(std::move(as));
    }
  }

  // Pin the special ASes the paper's anecdotes require.
  auto pick_of_class = [&](AsClass c, std::size_t ordinal) -> std::size_t {
    const auto& members = class_members_[static_cast<std::size_t>(c)];
    if (members.empty()) throw ConfigError("AsRegistry: class has no members");
    return members[ordinal % members.size()];
  };
  spain_idx_ = pick_of_class(AsClass::kSmallIsp, 7);
  ases_[spain_idx_].region = GeoRegion::kSpain;
  ases_[spain_idx_].attack_hub = true;
  ases_[spain_idx_].name += "-SpainHub";

  spam_idx_ = pick_of_class(AsClass::kBigCloud, 2);
  ases_[spam_idx_].region = GeoRegion::kSoutheastAsia;
  ases_[spam_idx_].spam_hub = true;
  ases_[spam_idx_].name += "-SingaporeSpam";

  france_idx_ = pick_of_class(AsClass::kLargeIsp, 3);
  ases_[france_idx_].region = GeoRegion::kFrance;
  ases_[france_idx_].dns_target_hub = true;
  ases_[france_idx_].name += "-FranceDns";

  romania_idx_ = pick_of_class(AsClass::kSmallCloud, 5);
  ases_[romania_idx_].region = GeoRegion::kRomania;
  ases_[romania_idx_].victim_hub = true;
  ases_[romania_idx_].name += "-RomaniaHosting";

  // Build the lookup index.
  for (std::uint32_t i = 0; i < ases_.size(); ++i) {
    index_.add(ases_[i].prefix);
    net_to_as_.emplace_back(ases_[i].prefix.network().value(), i);
  }
  std::sort(net_to_as_.begin(), net_to_as_.end());
}

std::vector<const AsInfo*> AsRegistry::by_class(AsClass c) const {
  std::vector<const AsInfo*> out;
  for (std::uint32_t idx : class_members_[static_cast<std::size_t>(c)]) {
    out.push_back(&ases_[idx]);
  }
  return out;
}

const AsInfo* AsRegistry::lookup(IPv4 ip) const noexcept {
  const auto match = index_.match(ip);
  if (!match) return nullptr;
  const std::uint32_t net = match->network().value();
  const auto it = std::lower_bound(
      net_to_as_.begin(), net_to_as_.end(), std::make_pair(net, std::uint32_t{0}));
  if (it == net_to_as_.end() || it->first != net) return nullptr;
  return &ases_[it->second];
}

IPv4 AsRegistry::host_in(const AsInfo& as, util::Rng& rng) const noexcept {
  // Skip the network/broadcast edges for realism.
  const std::uint64_t size = as.prefix.size();
  const std::uint64_t offset = size <= 2 ? 0 : 1 + rng.below(size - 2);
  return as.prefix.at(offset);
}

IPv4 AsRegistry::host_in_class(AsClass c, util::Rng& rng,
                               const AsInfo** chosen) const {
  const auto& members = class_members_[static_cast<std::size_t>(c)];
  if (members.empty()) throw ConfigError("AsRegistry: empty AS class");
  const AsInfo& as = ases_[members[rng.below(members.size())]];
  if (chosen != nullptr) *chosen = &as;
  return host_in(as, rng);
}

IPv4 AsRegistry::spoofed_address(util::Rng& rng) noexcept {
  return IPv4(static_cast<std::uint32_t>(rng()));
}

}  // namespace dm::cloud
