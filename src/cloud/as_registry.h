// Synthetic Internet model: autonomous systems with classes, prefixes, and
// geographic regions.
//
// Substitutes for the paper's Quova geolocation + CAIDA AS-taxonomy data
// (§6). AS classes match Figure 11/15's x-axis; regions cover the places the
// paper's Fig 14 maps call out (including the singular "AS in Spain" that
// concentrates >35% of attack volume, the Romanian small cloud, the French
// ISP, and a Singaporean big-cloud region).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "netflow/ipv4.h"
#include "util/rng.h"

namespace dm::cloud {

/// AS taxonomy classes (paper Fig 11; [27] plus the big/small-cloud and
/// mobile splits the authors add).
enum class AsClass : std::uint8_t {
  kBigCloud,    ///< Google/Microsoft/Amazon-scale platforms
  kSmallCloud,  ///< web-hosting providers
  kMobile,      ///< mobile/wireless carriers (mostly NATed)
  kLargeIsp,
  kSmallIsp,
  kCustomer,    ///< enterprise/customer networks
  kEdu,
  kIxp,
  kNic,
};

inline constexpr AsClass kAllAsClasses[] = {
    AsClass::kBigCloud, AsClass::kSmallCloud, AsClass::kMobile,
    AsClass::kLargeIsp, AsClass::kSmallIsp,   AsClass::kCustomer,
    AsClass::kEdu,      AsClass::kIxp,        AsClass::kNic,
};

[[nodiscard]] std::string_view to_string(AsClass c) noexcept;

/// Coarse geographic regions for Fig 14-style rollups.
enum class GeoRegion : std::uint8_t {
  kNorthAmericaWest,
  kNorthAmericaEast,
  kWesternEurope,
  kSpain,          ///< called out in §6.1/§6.2 (one AS with >35% of attacks)
  kFrance,         ///< target of 23.6% of outbound DNS reflection (§6.2)
  kEasternEurope,
  kRomania,        ///< small-cloud AS receiving 40% of outbound packets (§6.2)
  kEastAsia,
  kSoutheastAsia,  ///< Singapore AWS region originating 81% of spam (§6.1)
  kOceania,
  kLatinAmerica,
  kAfrica,
};

inline constexpr GeoRegion kAllGeoRegions[] = {
    GeoRegion::kNorthAmericaWest, GeoRegion::kNorthAmericaEast,
    GeoRegion::kWesternEurope,    GeoRegion::kSpain,
    GeoRegion::kFrance,           GeoRegion::kEasternEurope,
    GeoRegion::kRomania,          GeoRegion::kEastAsia,
    GeoRegion::kSoutheastAsia,    GeoRegion::kOceania,
    GeoRegion::kLatinAmerica,     GeoRegion::kAfrica,
};

[[nodiscard]] std::string_view to_string(GeoRegion r) noexcept;

/// One autonomous system in the synthetic Internet.
struct AsInfo {
  std::uint32_t asn = 0;
  AsClass cls = AsClass::kCustomer;
  GeoRegion region = GeoRegion::kNorthAmericaEast;
  netflow::Prefix prefix;  ///< the AS's address block
  std::string name;
  /// Roles the generator pins to specific ASes so the paper's concentration
  /// anecdotes reproduce (e.g. the Spain AS, the Romanian small cloud).
  bool attack_hub = false;       ///< disproportionate attack origin/target
  bool spam_hub = false;         ///< the Singapore big-cloud spam source
  bool dns_target_hub = false;   ///< the French reflection target
  bool victim_hub = false;       ///< the Romanian outbound-flood victim
};

/// Parameters for building the synthetic Internet.
struct AsRegistryConfig {
  std::uint32_t big_cloud = 3;
  std::uint32_t small_cloud = 40;
  std::uint32_t mobile = 25;
  std::uint32_t large_isp = 30;
  std::uint32_t small_isp = 300;
  std::uint32_t customer = 500;
  std::uint32_t edu = 60;
  std::uint32_t ixp = 15;
  std::uint32_t nic = 10;
};

/// The synthetic Internet: AS table plus address-space index.
///
/// Address plan: Internet ASes are carved from 4.0.0.0 upward; the cloud
/// itself owns 100.64.0.0/12 (see VipRegistry), disjoint by construction.
class AsRegistry {
 public:
  /// Deterministically builds the registry from a seed.
  AsRegistry(const AsRegistryConfig& config, std::uint64_t seed);

  [[nodiscard]] std::span<const AsInfo> all() const noexcept { return ases_; }
  [[nodiscard]] std::size_t size() const noexcept { return ases_.size(); }

  /// ASes of one class.
  [[nodiscard]] std::vector<const AsInfo*> by_class(AsClass c) const;

  /// Longest-prefix lookup of the AS owning an address; nullptr for
  /// addresses outside the synthetic Internet (e.g. spoofed or cloud).
  [[nodiscard]] const AsInfo* lookup(netflow::IPv4 ip) const noexcept;

  /// Uniform host inside an AS.
  [[nodiscard]] netflow::IPv4 host_in(const AsInfo& as, util::Rng& rng) const noexcept;

  /// Uniform host inside a uniformly drawn AS of a class. Returns the AS via
  /// `chosen` when non-null. Requires the class to be non-empty.
  [[nodiscard]] netflow::IPv4 host_in_class(AsClass c, util::Rng& rng,
                                            const AsInfo** chosen = nullptr) const;

  /// Uniformly random address over the whole IPv4 space — a spoofed source.
  /// Lands outside the synthetic Internet with high probability, which is
  /// exactly how spoofed traffic looks to AS attribution.
  [[nodiscard]] static netflow::IPv4 spoofed_address(util::Rng& rng) noexcept;

  // Pinned special ASes (always present).
  [[nodiscard]] const AsInfo& spain_hub() const noexcept { return ases_[spain_idx_]; }
  [[nodiscard]] const AsInfo& singapore_spam_cloud() const noexcept {
    return ases_[spam_idx_];
  }
  [[nodiscard]] const AsInfo& france_dns_target() const noexcept {
    return ases_[france_idx_];
  }
  [[nodiscard]] const AsInfo& romania_victim_cloud() const noexcept {
    return ases_[romania_idx_];
  }

 private:
  std::vector<AsInfo> ases_;
  netflow::PrefixSet index_;
  std::vector<std::vector<std::uint32_t>> class_members_;  // index by AsClass
  // PrefixSet::match returns the prefix, not the AS; map network -> AS index.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> net_to_as_;  // sorted
  std::size_t spain_idx_ = 0;
  std::size_t spam_idx_ = 0;
  std::size_t france_idx_ = 0;
  std::size_t romania_idx_ = 0;
};

}  // namespace dm::cloud
