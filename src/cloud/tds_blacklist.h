// Traffic Distribution System (TDS) blacklist.
//
// Substitutes for the dedicated-malicious-host list of Li et al. [37] that
// the paper's communication-pattern detector consumes (§2.2): a synthetic
// set of Internet hosts that deliver malicious web content. Per §3.1, TDS
// hosts "often use source ports uniformly distributed between 1024 and
// 5000", and big clouds contribute 35% of TDS attacks with only 0.21% of
// TDS IPs — the generator reproduces both.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cloud/as_registry.h"
#include "netflow/ipv4.h"
#include "util/rng.h"

namespace dm::cloud {

/// Parameters for synthesizing the blacklist.
struct TdsBlacklistConfig {
  std::uint32_t host_count = 3000;
  /// Fraction of TDS hosts living in big-cloud address space (§6.1: 0.21%).
  double big_cloud_fraction = 0.0021;
  /// Remaining hosts are spread over these classes with the given weights.
  double small_cloud_weight = 0.45;
  double customer_weight = 0.30;
  double small_isp_weight = 0.25;
};

/// An immutable set of TDS host addresses with fast membership and
/// uniform sampling.
class TdsBlacklist {
 public:
  /// Synthesizes `config.host_count` hosts from the registry's address space.
  TdsBlacklist(const TdsBlacklistConfig& config, const AsRegistry& registry,
               std::uint64_t seed);

  [[nodiscard]] bool contains(netflow::IPv4 ip) const noexcept {
    return set_.contains(ip);
  }

  [[nodiscard]] std::span<const netflow::IPv4> hosts() const noexcept {
    return hosts_;
  }

  /// Uniformly random TDS host.
  [[nodiscard]] netflow::IPv4 random_host(util::Rng& rng) const noexcept {
    return hosts_[static_cast<std::size_t>(rng.below(hosts_.size()))];
  }

  /// Random TDS host hosted in big-cloud space (used to reproduce the
  /// "35% of TDS attacks from big clouds" concentration). Falls back to any
  /// host when none exists.
  [[nodiscard]] netflow::IPv4 random_big_cloud_host(util::Rng& rng) const noexcept;

  /// Prefix-set view (each host as a /32) for the window aggregator.
  [[nodiscard]] const netflow::PrefixSet& as_prefix_set() const noexcept {
    return set_;
  }

  /// The TDS source-port range the paper reports (1024-5000).
  [[nodiscard]] static std::uint16_t random_tds_port(util::Rng& rng) noexcept {
    return static_cast<std::uint16_t>(1024 + rng.below(5000 - 1024 + 1));
  }

 private:
  std::vector<netflow::IPv4> hosts_;
  std::vector<netflow::IPv4> big_cloud_hosts_;
  netflow::PrefixSet set_;
};

}  // namespace dm::cloud
