#include "cloud/tds_blacklist.h"

#include <algorithm>

namespace dm::cloud {

using netflow::IPv4;
using netflow::Prefix;

TdsBlacklist::TdsBlacklist(const TdsBlacklistConfig& config,
                           const AsRegistry& registry, std::uint64_t seed) {
  util::Rng rng(seed ^ 0x7d5'7d5'7d5ULL);
  hosts_.reserve(config.host_count);

  const double weights[] = {config.small_cloud_weight, config.customer_weight,
                            config.small_isp_weight};
  const AsClass classes[] = {AsClass::kSmallCloud, AsClass::kCustomer,
                             AsClass::kSmallIsp};

  std::vector<IPv4> seen;  // dedup via sorted insert at the end
  for (std::uint32_t i = 0; i < config.host_count; ++i) {
    IPv4 host;
    if (rng.chance(config.big_cloud_fraction)) {
      host = registry.host_in_class(AsClass::kBigCloud, rng);
      big_cloud_hosts_.push_back(host);
    } else {
      const AsClass cls = classes[rng.weighted_index(weights)];
      host = registry.host_in_class(cls, rng);
    }
    hosts_.push_back(host);
  }

  std::sort(hosts_.begin(), hosts_.end());
  hosts_.erase(std::unique(hosts_.begin(), hosts_.end()), hosts_.end());
  for (IPv4 host : hosts_) set_.add(Prefix(host, 32));

  // Guarantee at least one big-cloud host so the Fig 12 concentration is
  // always reproducible.
  if (big_cloud_hosts_.empty()) {
    const IPv4 host = registry.host_in_class(AsClass::kBigCloud, rng);
    big_cloud_hosts_.push_back(host);
    if (!set_.contains(host)) {
      hosts_.push_back(host);
      set_.add(Prefix(host, 32));
    }
  }
}

IPv4 TdsBlacklist::random_big_cloud_host(util::Rng& rng) const noexcept {
  if (big_cloud_hosts_.empty()) return random_host(rng);
  return big_cloud_hosts_[static_cast<std::size_t>(
      rng.below(big_cloud_hosts_.size()))];
}

}  // namespace dm::cloud
