#include "cloud/service.h"

namespace dm::cloud {

using netflow::Protocol;
namespace ports = netflow::ports;

std::string_view to_string(ServiceType s) noexcept {
  switch (s) {
    case ServiceType::kHttp: return "HTTP";
    case ServiceType::kHttps: return "HTTPS";
    case ServiceType::kRdp: return "RDP";
    case ServiceType::kSsh: return "SSH";
    case ServiceType::kVnc: return "VNC";
    case ServiceType::kSql: return "SQL";
    case ServiceType::kSmtp: return "SMTP";
    case ServiceType::kMedia: return "Media";
    case ServiceType::kDns: return "DNS";
    case ServiceType::kIpEncap: return "IPEncap";
  }
  return "?";
}

const ServiceProfile& profile_of(ServiceType s) noexcept {
  // Rates are true (unsampled) per-minute volumes at unit popularity. Web
  // dominates by orders of magnitude ("99% of the total traffic", §4.4);
  // admin services see a handful of clients ("a single VIP typically
  // connects to only a few Internet hosts", §2.2).
  static const ServiceProfile kProfiles[] = {
      {ServiceType::kHttp, Protocol::kTcp, {ports::kHttp, ports::kHttpAlt}, 2,
       60'000.0, 220.0, 700.0, 2.2},
      {ServiceType::kHttps, Protocol::kTcp, {ports::kHttps, 0}, 1,
       35'000.0, 140.0, 750.0, 2.4},
      {ServiceType::kRdp, Protocol::kTcp, {ports::kRdp, 0}, 1,
       1'400.0, 1.6, 420.0, 0.9},
      {ServiceType::kSsh, Protocol::kTcp, {ports::kSsh, 0}, 1,
       700.0, 1.3, 180.0, 0.8},
      {ServiceType::kVnc, Protocol::kTcp, {ports::kVnc, 0}, 1,
       600.0, 1.2, 400.0, 0.9},
      {ServiceType::kSql, Protocol::kTcp, {ports::kSqlServer, ports::kMySql}, 2,
       2'200.0, 2.4, 350.0, 1.4},
      {ServiceType::kSmtp, Protocol::kTcp, {ports::kSmtp, 0}, 1,
       1'800.0, 7.0, 600.0, 0.5},
      {ServiceType::kMedia, Protocol::kUdp, {1935, 554}, 2,
       180'000.0, 90.0, 1200.0, 0.04},
      {ServiceType::kDns, Protocol::kUdp, {ports::kDns, 0}, 1,
       9'000.0, 60.0, 120.0, 1.0},
      {ServiceType::kIpEncap, Protocol::kIpEncap, {0, 0}, 1,
       8'000.0, 3.0, 900.0, 1.0},
  };
  return kProfiles[static_cast<std::size_t>(s)];
}

ServiceType service_for_port(Protocol protocol, std::uint16_t port,
                             bool* known) noexcept {
  if (known != nullptr) *known = true;
  if (protocol == Protocol::kIpEncap) return ServiceType::kIpEncap;
  if (protocol == Protocol::kUdp) {
    if (port == ports::kDns) return ServiceType::kDns;
    if (port == 1935 || port == 554) return ServiceType::kMedia;
    if (port == ports::kHttp || port == ports::kHttpAlt) return ServiceType::kHttp;
    if (known != nullptr) *known = false;
    return ServiceType::kMedia;
  }
  switch (port) {
    case ports::kHttp:
    case ports::kHttpAlt: return ServiceType::kHttp;
    case ports::kHttps: return ServiceType::kHttps;
    case ports::kRdp: return ServiceType::kRdp;
    case ports::kSsh: return ServiceType::kSsh;
    case ports::kVnc: return ServiceType::kVnc;
    case ports::kSqlServer:
    case ports::kMySql: return ServiceType::kSql;
    case ports::kSmtp: return ServiceType::kSmtp;
    case ports::kDns: return ServiceType::kDns;
    default:
      if (known != nullptr) *known = false;
      return ServiceType::kHttp;
  }
}

}  // namespace dm::cloud
