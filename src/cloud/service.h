// Cloud service types hosted on VIPs, with their ports and benign traffic
// profiles. The set matches the rows of the paper's Table 3 plus the media
// and DNS services the text discusses.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "netflow/protocol.h"

namespace dm::cloud {

/// Application service classes hosted on VIPs.
enum class ServiceType : std::uint8_t {
  kHttp,     ///< web, ports 80/8080 — 99% of cloud traffic per the paper
  kHttps,    ///< web TLS, port 443
  kRdp,      ///< remote desktop, port 3389
  kSsh,      ///< remote shell, port 22
  kVnc,      ///< remote desktop, port 5900
  kSql,      ///< database, ports 1433/3306
  kSmtp,     ///< mail, port 25
  kMedia,    ///< UDP streaming (the paper's "media services")
  kDns,      ///< authoritative DNS hosted on a VIP (rare; §3.1)
  kIpEncap,  ///< encapsulated traffic, protocol 0 (Table 3 "IP Encap")
};

inline constexpr ServiceType kAllServiceTypes[] = {
    ServiceType::kHttp, ServiceType::kHttps, ServiceType::kRdp,
    ServiceType::kSsh,  ServiceType::kVnc,   ServiceType::kSql,
    ServiceType::kSmtp, ServiceType::kMedia, ServiceType::kDns,
    ServiceType::kIpEncap,
};

[[nodiscard]] std::string_view to_string(ServiceType s) noexcept;

/// Static description of how one service behaves on the wire.
struct ServiceProfile {
  ServiceType type = ServiceType::kHttp;
  netflow::Protocol protocol = netflow::Protocol::kTcp;
  /// Ports the service listens on (1 or 2 entries).
  std::uint16_t ports[2] = {0, 0};
  std::uint8_t port_count = 1;
  /// Typical true (unsampled) inbound packet rate per minute for a VIP of
  /// unit popularity; scaled by the VIP's popularity weight.
  double base_packets_per_minute = 0.0;
  /// Typical distinct clients per minute at unit popularity.
  double base_clients_per_minute = 0.0;
  /// Mean packet size in bytes.
  double mean_packet_bytes = 0.0;
  /// Fraction of inbound volume echoed back outbound (responses).
  double response_ratio = 0.0;

  /// A listening port (the first, or a uniformly drawn one of two).
  [[nodiscard]] std::uint16_t primary_port() const noexcept { return ports[0]; }
};

/// The canonical profile for a service type.
[[nodiscard]] const ServiceProfile& profile_of(ServiceType s) noexcept;

/// Maps a (protocol, destination port) pair back to the service it
/// addresses, if any — the paper's Table 3 inference rule ("use the
/// destination port of inbound traffic to infer what type of applications").
[[nodiscard]] ServiceType service_for_port(netflow::Protocol protocol,
                                           std::uint16_t port,
                                           bool* known = nullptr) noexcept;

}  // namespace dm::cloud
