// The cloud side of the model: data centers, tenants and their public
// virtual IPs (VIPs).
//
// Mirrors §2.1 of the paper: 10+ geo-distributed data centers, >10,000
// hosted services, each assigned a public VIP whose traffic the edge-router
// NetFlow captures. The simulated cloud owns 100.64.0.0/12, carved into one
// /16 per data center.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "cloud/as_registry.h"
#include "cloud/service.h"
#include "netflow/ipv4.h"
#include "util/rng.h"
#include "util/time.h"

namespace dm::cloud {

/// Subscription classes; drives outbound-abuse propensity (§4.1: spam VIPs
/// were "free trial accounts", the Fig 5 case study is a partner VIP).
enum class TenantClass : std::uint8_t {
  kEnterprise,
  kSmallBusiness,
  kFreeTrial,
  kPartner,
};

[[nodiscard]] std::string_view to_string(TenantClass t) noexcept;

/// One data center with its address block.
struct DataCenter {
  std::uint32_t id = 0;
  std::string name;
  GeoRegion region = GeoRegion::kNorthAmericaEast;
  netflow::Prefix prefix;
};

/// One hosted service endpoint (a VIP) and its static traits.
struct VipInfo {
  netflow::IPv4 vip;
  std::uint32_t data_center = 0;
  TenantClass tenant = TenantClass::kEnterprise;
  std::vector<ServiceType> services;  ///< at least one entry
  /// Popularity multiplier on the services' base traffic rates; heavy-tailed
  /// so a few VIPs carry most traffic (the paper's media/web heavy hitters).
  double popularity = 1.0;
  /// Minute the VIP becomes active / goes dormant; models churn and the
  /// long-idle partner VIP of the Fig 5 case study.
  util::Minute active_from = 0;
  util::Minute active_until = 0;  ///< exclusive; 0 means "end of trace"
  /// Weak credentials: eligible for brute-force compromise (§4.1 note).
  bool weak_credentials = false;

  [[nodiscard]] bool hosts(ServiceType s) const noexcept;
  [[nodiscard]] bool active_at(util::Minute m, util::Minute trace_end) const noexcept;
};

/// Parameters for synthesizing the VIP population.
struct VipRegistryConfig {
  std::uint32_t vip_count = 2000;
  std::uint32_t data_center_count = 10;
  double free_trial_fraction = 0.10;
  double partner_fraction = 0.05;
  double small_business_fraction = 0.25;
  double weak_credentials_fraction = 0.06;
  /// Popularity tail exponent (bounded Pareto in [0.05, popularity_cap]).
  double popularity_alpha = 1.2;
  double popularity_cap = 400.0;
  /// Trace length in minutes. When > 0, ~20% of VIPs get partial activity
  /// windows (tenant churn), and at least one partner VIP is left fully
  /// dormant — the raw material of the Fig 5 compromise case study.
  util::Minute trace_minutes = 0;
};

/// The VIP population and cloud address space.
class VipRegistry {
 public:
  VipRegistry(const VipRegistryConfig& config, std::uint64_t seed);

  [[nodiscard]] std::span<const VipInfo> all() const noexcept { return vips_; }
  [[nodiscard]] std::size_t size() const noexcept { return vips_.size(); }
  [[nodiscard]] std::span<const DataCenter> data_centers() const noexcept {
    return data_centers_;
  }

  /// The cloud's address space (for traffic orientation).
  [[nodiscard]] const netflow::PrefixSet& cloud_space() const noexcept {
    return cloud_space_;
  }

  [[nodiscard]] const VipInfo* lookup(netflow::IPv4 ip) const noexcept;

  /// Uniformly random VIP.
  [[nodiscard]] const VipInfo& random_vip(util::Rng& rng) const noexcept {
    return vips_[static_cast<std::size_t>(rng.below(vips_.size()))];
  }

  /// Indices of VIPs hosting a service.
  [[nodiscard]] std::vector<std::uint32_t> with_service(ServiceType s) const;

  /// Indices of VIPs of a tenant class.
  [[nodiscard]] std::vector<std::uint32_t> with_tenant(TenantClass t) const;

 private:
  std::vector<VipInfo> vips_;
  std::vector<DataCenter> data_centers_;
  netflow::PrefixSet cloud_space_;
  /// Sorted by IP for binary-search lookup; built once at construction.
  std::vector<std::pair<netflow::IPv4, std::uint32_t>> by_ip_;
};

}  // namespace dm::cloud
