#include "cloud/vip_registry.h"

#include <algorithm>

#include "util/error.h"

namespace dm::cloud {

using netflow::IPv4;
using netflow::Prefix;

std::string_view to_string(TenantClass t) noexcept {
  switch (t) {
    case TenantClass::kEnterprise: return "enterprise";
    case TenantClass::kSmallBusiness: return "small-business";
    case TenantClass::kFreeTrial: return "free-trial";
    case TenantClass::kPartner: return "partner";
  }
  return "?";
}

bool VipInfo::hosts(ServiceType s) const noexcept {
  return std::find(services.begin(), services.end(), s) != services.end();
}

bool VipInfo::active_at(util::Minute m, util::Minute trace_end) const noexcept {
  const util::Minute until = active_until == 0 ? trace_end : active_until;
  return m >= active_from && m < until;
}

namespace {

/// Probability a VIP hosts each service; tuned so the victim-population mix
/// approaches Table 3's "Total" column (multi-label: a VIP often hosts
/// several services). DNS is assigned explicitly to a single VIP (§3.1).
struct ServiceAssignProb {
  ServiceType type;
  double probability;
};
constexpr ServiceAssignProb kServiceProbs[] = {
    {ServiceType::kHttp, 0.36},   {ServiceType::kRdp, 0.33},
    {ServiceType::kHttps, 0.15},  {ServiceType::kSsh, 0.10},
    {ServiceType::kIpEncap, 0.07}, {ServiceType::kSql, 0.04},
    {ServiceType::kSmtp, 0.033},  {ServiceType::kMedia, 0.02},
    {ServiceType::kVnc, 0.015},
};

GeoRegion dc_region(std::uint32_t dc_index) noexcept {
  // "10+ geographically distributed data centers across America, Europe,
  // Asia, and Oceania" (§2.1).
  constexpr GeoRegion kRegions[] = {
      GeoRegion::kNorthAmericaWest, GeoRegion::kNorthAmericaEast,
      GeoRegion::kNorthAmericaEast, GeoRegion::kWesternEurope,
      GeoRegion::kWesternEurope,    GeoRegion::kEasternEurope,
      GeoRegion::kEastAsia,         GeoRegion::kEastAsia,
      GeoRegion::kSoutheastAsia,    GeoRegion::kOceania,
  };
  return kRegions[dc_index % std::size(kRegions)];
}

}  // namespace

VipRegistry::VipRegistry(const VipRegistryConfig& config, std::uint64_t seed) {
  if (config.vip_count == 0) throw ConfigError("VipRegistry: vip_count must be > 0");
  if (config.data_center_count == 0 || config.data_center_count > 16) {
    throw ConfigError("VipRegistry: data_center_count must be in [1, 16]");
  }
  util::Rng rng(seed ^ 0xc10d'c10d'c10dULL);

  // The cloud owns 100.64.0.0/12; one /16 per data center.
  const IPv4 cloud_base = IPv4::from_octets(100, 64, 0, 0);
  for (std::uint32_t dc = 0; dc < config.data_center_count; ++dc) {
    DataCenter d;
    d.id = dc;
    d.name = "dc-" + std::to_string(dc);
    d.region = dc_region(dc);
    d.prefix = Prefix(IPv4(cloud_base.value() + (dc << 16)), 16);
    cloud_space_.add(d.prefix);
    data_centers_.push_back(std::move(d));
  }

  vips_.reserve(config.vip_count);
  std::vector<std::uint64_t> next_host(config.data_center_count, 1);
  for (std::uint32_t i = 0; i < config.vip_count; ++i) {
    VipInfo v;
    v.data_center =
        static_cast<std::uint32_t>(rng.below(config.data_center_count));
    const auto& dc_prefix = data_centers_[v.data_center].prefix;
    // Sequential VIP allocation within the data center /16 keeps addresses
    // unique and dense; attackers scanning "the entire IP subnet" (§4.3)
    // then hit real VIPs.
    std::uint64_t& counter = next_host[v.data_center];
    if (counter >= dc_prefix.size() - 1) {
      throw ConfigError("VipRegistry: data center address block exhausted");
    }
    v.vip = dc_prefix.at(counter++);

    const double tenant_roll = rng.uniform01();
    if (tenant_roll < config.free_trial_fraction) {
      v.tenant = TenantClass::kFreeTrial;
    } else if (tenant_roll < config.free_trial_fraction + config.partner_fraction) {
      v.tenant = TenantClass::kPartner;
    } else if (tenant_roll < config.free_trial_fraction + config.partner_fraction +
                                 config.small_business_fraction) {
      v.tenant = TenantClass::kSmallBusiness;
    } else {
      v.tenant = TenantClass::kEnterprise;
    }

    for (const auto& [type, probability] : kServiceProbs) {
      if (rng.chance(probability)) v.services.push_back(type);
    }
    if (v.services.empty()) {
      v.services.push_back(rng.chance(0.5) ? ServiceType::kHttp
                                           : ServiceType::kRdp);
    }

    v.popularity = rng.pareto(config.popularity_alpha, 0.05, config.popularity_cap);
    v.weak_credentials = rng.chance(config.weak_credentials_fraction);
    vips_.push_back(std::move(v));
  }

  // Exactly one VIP hosts the cloud's public DNS (§3.1: outbound DNS
  // responses were observed "from a single VIP hosting a DNS server").
  auto& dns_vip = vips_[rng.below(vips_.size())];
  if (!dns_vip.hosts(ServiceType::kDns)) {
    dns_vip.services.push_back(ServiceType::kDns);
  }

  // Tenant churn and the dormant partner VIP (Fig 5 case study material).
  if (config.trace_minutes > 0) {
    const auto t_end = config.trace_minutes;
    bool dormant_partner = false;
    for (auto& v : vips_) {
      const double roll = rng.uniform01();
      if (roll < 0.10) {
        v.active_from = static_cast<util::Minute>(
            rng.below(static_cast<std::uint64_t>(t_end * 7 / 10)));
      } else if (roll < 0.20) {
        v.active_until = t_end * 3 / 10 +
                         static_cast<util::Minute>(rng.below(
                             static_cast<std::uint64_t>(t_end * 7 / 10)));
      }
      if (v.tenant == TenantClass::kPartner && !dormant_partner &&
          rng.chance(0.25)) {
        v.active_from = t_end;  // never generates benign traffic
        v.weak_credentials = true;
        dormant_partner = true;
      }
    }
    if (!dormant_partner) {
      for (auto& v : vips_) {
        if (v.tenant == TenantClass::kPartner) {
          v.active_from = t_end;
          v.weak_credentials = true;
          dormant_partner = true;
          break;
        }
      }
    }
    if (!dormant_partner && !vips_.empty()) {
      vips_.front().tenant = TenantClass::kPartner;
      vips_.front().active_from = t_end;
      vips_.front().weak_credentials = true;
    }
  }

  by_ip_.reserve(vips_.size());
  for (std::uint32_t i = 0; i < vips_.size(); ++i) {
    by_ip_.emplace_back(vips_[i].vip, i);
  }
  std::sort(by_ip_.begin(), by_ip_.end());
  const auto dup = std::adjacent_find(
      by_ip_.begin(), by_ip_.end(),
      [](const auto& a, const auto& b) { return a.first == b.first; });
  if (dup != by_ip_.end()) {
    throw ConfigError("VipRegistry: duplicate VIP allocation");
  }
}

const VipInfo* VipRegistry::lookup(IPv4 ip) const noexcept {
  const auto it = std::lower_bound(
      by_ip_.begin(), by_ip_.end(), ip,
      [](const auto& entry, IPv4 key) { return entry.first < key; });
  if (it == by_ip_.end() || it->first != ip) return nullptr;
  return &vips_[it->second];
}

std::vector<std::uint32_t> VipRegistry::with_service(ServiceType s) const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < vips_.size(); ++i) {
    if (vips_[i].hosts(s)) out.push_back(i);
  }
  return out;
}

std::vector<std::uint32_t> VipRegistry::with_tenant(TenantClass t) const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < vips_.size(); ++i) {
    if (vips_[i].tenant == t) out.push_back(i);
  }
  return out;
}

}  // namespace dm::cloud
