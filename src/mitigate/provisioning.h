// Defense resource provisioning (paper §5.1).
//
// The paper argues from its throughput measurements that static
// overprovisioning of defense capacity is wasteful: "a software load
// balancer (SLB) can handle 300 Kpps per core ... in the worst case
// handling inbound UDP floods may waste 31 extra cores", and peak/median
// ratios of 20x-1000x mean per-VIP peak provisioning is hopeless. This
// model turns detected incidents into core budgets under three strategies:
//
//  - per-VIP peak:   every attacked VIP gets its own peak-sized appliance;
//  - cloud peak:     one shared pool sized for the cloud-wide attack peak;
//  - elastic:        a shared pool sized for the p99 minute, scaling beyond
//                    it on demand (the paper's recommended direction).
#pragma once

#include <cstdint>
#include <span>

#include "detect/incident.h"

namespace dm::mitigate {

struct ProvisioningConfig {
  /// SLB processing capacity in true packets/second per core [42].
  double pps_per_core = 300'000.0;
  /// Quantile the elastic pool is pre-provisioned for.
  double elastic_quantile = 0.99;
};

struct ProvisioningPlan {
  double per_vip_peak_cores = 0.0;  ///< sum of every attacked VIP's peak need
  double cloud_peak_cores = 0.0;    ///< cloud-wide simultaneous attack peak
  double elastic_cores = 0.0;       ///< p99 minute of cloud-wide attack load
  /// Fraction of minutes the elastic pool must burst beyond its base size.
  double elastic_burst_fraction = 0.0;
  std::uint64_t attacked_vips = 0;

  [[nodiscard]] double overprovision_factor() const noexcept {
    return elastic_cores > 0.0 ? per_vip_peak_cores / elastic_cores : 0.0;
  }
};

/// Computes the plan from detected attack minutes (one direction).
[[nodiscard]] ProvisioningPlan plan_provisioning(
    std::span<const detect::MinuteDetection> detections,
    netflow::Direction direction, std::uint32_t sampling,
    const ProvisioningConfig& config = {});

}  // namespace dm::mitigate
