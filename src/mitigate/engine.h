// Replaying detected incidents against the §7 mitigation practices.
//
// For every incident the engine decides which mechanisms apply, when they
// become effective, and what fraction of the incident's sampled attack
// packets each would have absorbed. The output quantifies the paper's
// closing argument: fast, programmable, multiplexed defenses beat static
// overprovisioning.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "analysis/attribution.h"
#include "analysis/spoof_analysis.h"
#include "detect/incident.h"
#include "mitigate/policy.h"

namespace dm::mitigate {

/// One mechanism applied to one incident.
struct MitigationAction {
  std::uint32_t incident_index = 0;
  ActionKind kind = ActionKind::kRateLimit;
  util::Minute effective_from = 0;  ///< first minute the mechanism bites
  /// Fraction of the incident's post-activation traffic this mechanism
  /// absorbs, in [0, 1].
  double absorption = 0.0;
};

/// Per-incident outcome.
struct IncidentOutcome {
  std::uint32_t incident_index = 0;
  std::uint64_t attack_packets = 0;    ///< total sampled attack packets
  std::uint64_t absorbed_packets = 0;  ///< removed by mitigations
  util::Minute time_to_mitigate = -1;  ///< first effective minute - start; -1 = never

  [[nodiscard]] double residual_fraction() const noexcept {
    return attack_packets == 0
               ? 0.0
               : 1.0 - static_cast<double>(absorbed_packets) /
                           static_cast<double>(attack_packets);
  }
};

/// Aggregate effectiveness report.
struct MitigationReport {
  std::vector<MitigationAction> actions;
  std::vector<IncidentOutcome> outcomes;
  /// Absorbed / total sampled attack packets, per attack type.
  std::array<double, sim::kAttackTypeCount> absorption_by_type{};
  std::array<std::uint64_t, sim::kAttackTypeCount> incidents_by_type{};
  double total_absorption = 0.0;
  double median_time_to_mitigate = 0.0;
  std::uint64_t shutdown_vips = 0;
};

/// The engine. Stateless apart from the policy; evaluation needs the trace
/// (to weigh per-minute traffic and source concentration).
class MitigationEngine {
 public:
  explicit MitigationEngine(MitigationPolicy policy = {}) : policy_(policy) {}

  [[nodiscard]] const MitigationPolicy& policy() const noexcept { return policy_; }

  /// Evaluates all incidents. `blacklist` is the TDS set (for attribution of
  /// TDS incidents); `spoof` (optional) marks incidents whose sources are
  /// spoofed — source blacklists cannot absorb those (§6.1).
  [[nodiscard]] MitigationReport evaluate(
      const netflow::WindowedTrace& trace,
      std::span<const detect::AttackIncident> incidents,
      std::uint32_t sampling = 4096,
      const netflow::PrefixSet* blacklist = nullptr,
      const analysis::SpoofResult* spoof = nullptr) const;

 private:
  MitigationPolicy policy_;
};

}  // namespace dm::mitigate
