// Mitigation policies (paper §7, "Existing security practices").
//
// The paper closes by describing how the measured attacks are actually
// handled: SYN cookies and rate limiting at the load-balancing
// infrastructure, source blacklisting, port filters (the juno-tool fixed
// source ports of §4.4), outbound bandwidth caps, SMTP limits, and
// aggressive shutdown of misbehaving VMs. This module makes those practices
// executable: a policy configures them, the engine replays detected
// incidents against them and reports what each practice would have absorbed.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/time.h"

namespace dm::mitigate {

/// The §7 mechanism families.
enum class ActionKind : std::uint8_t {
  kSynCookies,        ///< infrastructure SYN-cookie activation
  kRateLimit,         ///< per-VIP packet rate limiting
  kSourceBlacklist,   ///< blocking the attack's top source addresses
  kPortFilter,        ///< filtering signature ports (e.g. juno 1024/3072)
  kOutboundCap,       ///< per-VM outbound bandwidth cap
  kSmtpLimit,         ///< outbound e-mail rate limiting / open-relay block
  kVipShutdown,       ///< shutting the misbehaving VIP down
};

[[nodiscard]] constexpr std::string_view to_string(ActionKind k) noexcept {
  switch (k) {
    case ActionKind::kSynCookies: return "syn-cookies";
    case ActionKind::kRateLimit: return "rate-limit";
    case ActionKind::kSourceBlacklist: return "source-blacklist";
    case ActionKind::kPortFilter: return "port-filter";
    case ActionKind::kOutboundCap: return "outbound-cap";
    case ActionKind::kSmtpLimit: return "smtp-limit";
    case ActionKind::kVipShutdown: return "vip-shutdown";
  }
  return "?";
}

/// Tunable mitigation behaviour. Latencies are minutes from an incident's
/// first detected minute to the mechanism being effective; §5.2 notes
/// today's flood defenses take ~5 minutes — too slow for 1-3 minute ramps.
struct MitigationPolicy {
  bool enable_syn_cookies = true;
  bool enable_rate_limit = true;
  bool enable_source_blacklist = true;
  bool enable_port_filter = true;
  bool enable_outbound_cap = true;
  bool enable_smtp_limit = true;
  bool enable_vip_shutdown = true;

  /// Activation latency of in-network mechanisms (minutes after detection).
  util::Minute inline_latency = 2;
  /// Latency of operator-driven shutdown of an abusive VIP.
  util::Minute shutdown_latency = 30;
  /// Outbound incidents on one VIP before the shutdown policy fires
  /// ("aggressively shuts down any misbehaving tenant VMs", §7).
  std::uint32_t shutdown_after_incidents = 3;

  /// Rate limit allowance as a multiple of the VIP's benign baseline.
  double rate_limit_headroom = 4.0;
  /// Blacklist capacity: how many top source addresses can be blocked per
  /// incident (TCAM/ACL budget).
  std::uint32_t blacklist_entries = 64;
  /// Per-VM outbound cap in true packets/second.
  double outbound_cap_pps = 50'000.0;
  /// Outbound SMTP allowance in true packets/second.
  double smtp_cap_pps = 200.0;
};

}  // namespace dm::mitigate
