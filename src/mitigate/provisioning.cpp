#include "mitigate/provisioning.h"

#include <algorithm>
#include <map>
#include <vector>

#include "util/stats.h"

namespace dm::mitigate {

using detect::MinuteDetection;

ProvisioningPlan plan_provisioning(std::span<const MinuteDetection> detections,
                                   netflow::Direction direction,
                                   std::uint32_t sampling,
                                   const ProvisioningConfig& config) {
  ProvisioningPlan plan;
  const double pps_per_sampled_ppm = static_cast<double>(sampling) / 60.0;

  // Per-VIP peak sampled load and the cloud-wide per-minute load.
  std::map<std::uint32_t, std::uint64_t> vip_minute_load;  // current minute
  std::map<std::uint32_t, std::uint64_t> vip_peak;
  std::map<util::Minute, std::uint64_t> cloud_minute;
  std::map<std::pair<std::uint32_t, util::Minute>, std::uint64_t> vip_at_minute;

  for (const MinuteDetection& d : detections) {
    if (d.direction != direction) continue;
    vip_at_minute[{d.vip.value(), d.minute}] += d.sampled_packets;
    cloud_minute[d.minute] += d.sampled_packets;
  }
  for (const auto& [key, load] : vip_at_minute) {
    auto& peak = vip_peak[key.first];
    peak = std::max(peak, load);
  }

  for (const auto& [vip, peak] : vip_peak) {
    plan.per_vip_peak_cores +=
        static_cast<double>(peak) * pps_per_sampled_ppm / config.pps_per_core;
  }
  plan.attacked_vips = vip_peak.size();

  std::vector<double> minute_loads;
  minute_loads.reserve(cloud_minute.size());
  std::uint64_t cloud_peak = 0;
  for (const auto& [minute, load] : cloud_minute) {
    minute_loads.push_back(static_cast<double>(load));
    cloud_peak = std::max(cloud_peak, load);
  }
  plan.cloud_peak_cores =
      static_cast<double>(cloud_peak) * pps_per_sampled_ppm / config.pps_per_core;

  if (!minute_loads.empty()) {
    std::sort(minute_loads.begin(), minute_loads.end());
    const double p99 =
        util::quantile_sorted(minute_loads, config.elastic_quantile);
    plan.elastic_cores = p99 * pps_per_sampled_ppm / config.pps_per_core;
    std::size_t bursts = 0;
    for (double load : minute_loads) {
      if (load > p99) ++bursts;
    }
    plan.elastic_burst_fraction =
        static_cast<double>(bursts) / static_cast<double>(minute_loads.size());
  }
  return plan;
}

}  // namespace dm::mitigate
