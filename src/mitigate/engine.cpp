#include "mitigate/engine.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/stats.h"

namespace dm::mitigate {

using detect::AttackIncident;
using netflow::Direction;
using netflow::VipMinuteStats;
using sim::AttackType;

namespace {

/// The sampled packets a window carries for an attack class — the same
/// per-class counters the detectors alarm on.
std::uint64_t class_packets(const VipMinuteStats& w, AttackType type) noexcept {
  switch (type) {
    case AttackType::kSynFlood: return w.syn_packets;
    case AttackType::kUdpFlood:
      return w.udp_packets >= w.dns_response_packets
                 ? w.udp_packets - w.dns_response_packets
                 : 0;
    case AttackType::kIcmpFlood: return w.icmp_packets;
    case AttackType::kDnsReflection: return w.dns_response_packets;
    case AttackType::kSpam: return w.smtp_packets;
    case AttackType::kBruteForce: return w.admin_packets;
    case AttackType::kSqlInjection: return w.sql_packets;
    case AttackType::kPortScan:
      return w.null_scan_packets + w.xmas_scan_packets + w.bare_rst_packets;
    case AttackType::kTds: return w.blacklist_packets;
  }
  return 0;
}

/// Share of an inbound SYN incident's packets using the juno tool's fixed
/// source ports (§4.4) — the traffic a port filter removes.
double juno_share(const netflow::WindowedTrace& trace,
                  const AttackIncident& inc) {
  std::uint64_t total = 0;
  std::uint64_t fixed = 0;
  for (const auto& w : trace.series(inc.vip, inc.direction)) {
    if (w.minute < inc.start) continue;
    if (w.minute >= inc.end) break;
    for (const auto& r : trace.records_of(w)) {
      if (r.protocol != netflow::Protocol::kTcp ||
          !netflow::is_pure_syn(r.tcp_flags)) {
        continue;
      }
      total += r.packets;
      if (r.src_port == 1024 || r.src_port == 3072) fixed += r.packets;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(fixed) / static_cast<double>(total);
}

/// Packet share of the incident's top-N remote addresses — what a source
/// blacklist with N entries can block.
double top_source_share(const netflow::WindowedTrace& trace,
                        const AttackIncident& inc,
                        const netflow::PrefixSet* blacklist,
                        std::uint32_t entries) {
  const auto remotes = analysis::incident_remotes(trace, inc, blacklist);
  if (remotes.empty()) return 0.0;
  std::uint64_t total = 0;
  std::uint64_t covered = 0;
  for (std::size_t i = 0; i < remotes.size(); ++i) {
    total += remotes[i].packets;
    if (i < entries) covered += remotes[i].packets;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(covered) / static_cast<double>(total);
}

}  // namespace

MitigationReport MitigationEngine::evaluate(
    const netflow::WindowedTrace& trace,
    std::span<const AttackIncident> incidents, std::uint32_t sampling,
    const netflow::PrefixSet* blacklist,
    const analysis::SpoofResult* spoof) const {
  MitigationReport report;

  // Spoofed incidents (source blacklisting is useless against them, §6.1).
  std::set<std::uint32_t> spoofed;
  if (spoof != nullptr) {
    for (const auto& v : spoof->verdicts) {
      if (v.spoofed) spoofed.insert(v.incident_index);
    }
  }

  // Shutdown bookkeeping: for each VIP, the minute the shutdown policy
  // fires (after the N-th outbound incident's detection plus latency).
  std::map<std::uint32_t, util::Minute> shutdown_at;
  if (policy_.enable_vip_shutdown) {
    std::map<std::uint32_t, std::vector<util::Minute>> outbound_starts;
    for (const auto& inc : incidents) {
      if (inc.direction == Direction::kOutbound) {
        outbound_starts[inc.vip.value()].push_back(inc.start);
      }
    }
    for (auto& [vip, starts] : outbound_starts) {
      if (starts.size() < policy_.shutdown_after_incidents) continue;
      std::sort(starts.begin(), starts.end());
      shutdown_at[vip] = starts[policy_.shutdown_after_incidents - 1] +
                         policy_.shutdown_latency;
    }
    report.shutdown_vips = shutdown_at.size();
  }

  std::array<std::uint64_t, sim::kAttackTypeCount> type_total{};
  std::array<std::uint64_t, sim::kAttackTypeCount> type_absorbed{};
  std::uint64_t grand_total = 0;
  std::uint64_t grand_absorbed = 0;
  std::vector<double> times;

  for (std::uint32_t i = 0; i < incidents.size(); ++i) {
    const AttackIncident& inc = incidents[i];
    const double peak_pps = inc.estimated_peak_pps(sampling);

    // --- Which mechanisms apply, and how hard they bite.
    std::vector<MitigationAction> actions;
    const util::Minute inline_from = inc.start + policy_.inline_latency;
    auto add = [&](ActionKind kind, util::Minute from, double absorption) {
      if (absorption <= 0.0) return;
      actions.push_back(
          {i, kind, from, std::clamp(absorption, 0.0, 1.0)});
    };

    if (inc.direction == Direction::kInbound) {
      if (policy_.enable_syn_cookies && inc.type == AttackType::kSynFlood) {
        // Cookies neutralize half-open state exhaustion entirely.
        add(ActionKind::kSynCookies, inline_from, 1.0);
      }
      if (policy_.enable_rate_limit && sim::is_volume_based(inc.type)) {
        // Allowance proxied by the detection threshold (the paper's ~7 Kpps
        // change corresponds to 100 sampled pkts/min).
        const double allowance_ppm = policy_.rate_limit_headroom * 100.0;
        const double peak_ppm = static_cast<double>(inc.peak_sampled_ppm);
        if (peak_ppm > allowance_ppm) {
          add(ActionKind::kRateLimit, inline_from,
              1.0 - allowance_ppm / peak_ppm);
        }
      }
      if (policy_.enable_source_blacklist && !spoofed.contains(i)) {
        add(ActionKind::kSourceBlacklist, inline_from,
            top_source_share(trace, inc, blacklist, policy_.blacklist_entries));
      }
      if (policy_.enable_port_filter && inc.type == AttackType::kSynFlood) {
        add(ActionKind::kPortFilter, inline_from, juno_share(trace, inc));
      }
    } else {
      if (policy_.enable_outbound_cap && sim::is_volume_based(inc.type) &&
          peak_pps > policy_.outbound_cap_pps) {
        add(ActionKind::kOutboundCap, inline_from,
            1.0 - policy_.outbound_cap_pps / peak_pps);
      }
      if (policy_.enable_smtp_limit && inc.type == AttackType::kSpam &&
          peak_pps > policy_.smtp_cap_pps) {
        add(ActionKind::kSmtpLimit, inline_from,
            1.0 - policy_.smtp_cap_pps / peak_pps);
      }
      const auto shutdown = shutdown_at.find(inc.vip.value());
      if (shutdown != shutdown_at.end() && shutdown->second < inc.end) {
        add(ActionKind::kVipShutdown, std::max(shutdown->second, inc.start),
            1.0);
      }
    }

    // --- Replay the incident's minutes against the active mechanisms.
    IncidentOutcome outcome;
    outcome.incident_index = i;
    for (const auto& w : trace.series(inc.vip, inc.direction)) {
      if (w.minute < inc.start) continue;
      if (w.minute >= inc.end) break;
      const std::uint64_t pkts = class_packets(w, inc.type);
      outcome.attack_packets += pkts;
      double pass = 1.0;
      for (const auto& action : actions) {
        if (w.minute >= action.effective_from) pass *= 1.0 - action.absorption;
      }
      outcome.absorbed_packets += static_cast<std::uint64_t>(
          static_cast<double>(pkts) * (1.0 - pass) + 0.5);
    }
    if (!actions.empty()) {
      util::Minute first = actions.front().effective_from;
      for (const auto& a : actions) first = std::min(first, a.effective_from);
      outcome.time_to_mitigate = first - inc.start;
      times.push_back(static_cast<double>(outcome.time_to_mitigate));
    }

    const std::size_t t = sim::index_of(inc.type);
    type_total[t] += outcome.attack_packets;
    type_absorbed[t] += outcome.absorbed_packets;
    grand_total += outcome.attack_packets;
    grand_absorbed += outcome.absorbed_packets;
    report.incidents_by_type[t] += 1;
    report.actions.insert(report.actions.end(), actions.begin(), actions.end());
    report.outcomes.push_back(outcome);
  }

  for (std::size_t t = 0; t < sim::kAttackTypeCount; ++t) {
    if (type_total[t] > 0) {
      report.absorption_by_type[t] = static_cast<double>(type_absorbed[t]) /
                                     static_cast<double>(type_total[t]);
    }
  }
  if (grand_total > 0) {
    report.total_absorption =
        static_cast<double>(grand_absorbed) / static_cast<double>(grand_total);
  }
  report.median_time_to_mitigate = util::median(times);
  return report;
}

}  // namespace dm::mitigate
