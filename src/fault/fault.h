// Deterministic fault injection for degraded-feed testing.
//
// The paper's methodology runs over collector feeds that in production are
// lossy, reordered, duplicated, and occasionally corrupt (§3 leans on
// NetFlow's 1:4096 sampling being tolerable under imperfect capture). This
// library makes every such failure mode a first-class, reproducible input:
// a FaultInjector seeded with one 64-bit value applies a declarative plan
// to serialized trace bytes (bit flips, targeted block corruption,
// mid-block truncation) or to a live record feed (duplication, bounded
// reordering, whole-minute loss bursts, stuck-clock timestamps), and
// reports exactly what damage it did. All randomness derives from the seed
// via counter-based util::Rng::split, so a plan replays identically across
// runs, platforms, and thread counts — usable in tests, benches, and the
// CLI alike.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "netflow/flow_record.h"
#include "util/rng.h"
#include "util/time.h"

namespace dm::fault {

/// Byte-level corruption plan for a serialized .dmnf trace.
struct BytePlan {
  /// Random single-bit flips anywhere in the file (header included).
  std::size_t bit_flips = 0;
  /// Flip one payload bit in each of this many distinct blocks — the
  /// CRC-detectable "one flipped bit abandons the trace" case.
  std::size_t corrupt_blocks = 0;
  /// Delete a byte span from inside each of this many distinct blocks
  /// (distinct from corrupt_blocks targets), shifting the rest of the file
  /// up — the mid-file truncation a dying collector produces.
  std::size_t truncate_blocks = 0;
  /// Chop the file at a random point inside the final block, losing the
  /// tail and the end marker.
  bool truncate_tail = false;
};

/// Ground truth of the byte damage a plan produced.
struct ByteDamage {
  // dmlint: must-use
  std::vector<std::uint64_t> flipped_offsets;   ///< post-edit file offsets
  std::vector<std::uint32_t> corrupted_blocks;  ///< indices into the clean layout
  std::vector<std::uint32_t> truncated_blocks;  ///< indices into the clean layout
  std::uint64_t bytes_removed = 0;
  bool tail_truncated = false;
};

/// Corruption plan for one spill-tier segment file (.dmseg). Segments are
/// CRC-framed whole-file units (no block structure to parse), so the plan
/// is byte-oriented: body bit flips exercise the body-CRC path, a header
/// flip the header-CRC path, and tail truncation the size check.
struct SegmentPlan {
  std::size_t bit_flips = 0;    ///< random single-bit flips in the body
  bool corrupt_header = false;  ///< flip one bit inside the 56-byte header
  bool truncate_tail = false;   ///< chop the file at a random body offset
};

/// Ground truth of the segment damage a plan produced.
struct SegmentDamage {
  // dmlint: must-use
  std::vector<std::uint64_t> flipped_offsets;  ///< absolute file offsets
  std::uint64_t bytes_removed = 0;
  bool header_corrupted = false;
  [[nodiscard]] bool any() const noexcept {
    return header_corrupted || bytes_removed > 0 || !flipped_offsets.empty();
  }
};

/// Corruption plan for one DMCK-framed StreamMonitor checkpoint file. The
/// frame is a 6-byte header (magic + version) followed by a varint-sized
/// CRC-protected payload, so the interesting failure surfaces are: payload
/// damage (CRC path), header damage (magic/version path), tail loss (size
/// path), and the torn-write prefix a crash mid-`write(2)` leaves when the
/// file was not written through the temp + fsync + rename protocol.
struct CheckpointPlan {
  std::size_t bit_flips = 0;    ///< random single-bit flips past the header
  bool corrupt_header = false;  ///< flip one bit inside the 6-byte header
  bool truncate_tail = false;   ///< chop the file at a random payload offset
  /// Replace the file with a short random prefix (shorter than the header),
  /// simulating the visible result of a torn non-atomic write.
  bool torn_prefix = false;
};

/// Ground truth of the checkpoint damage a plan produced.
struct CheckpointDamage {
  // dmlint: must-use
  std::vector<std::uint64_t> flipped_offsets;  ///< absolute file offsets
  std::uint64_t bytes_removed = 0;
  bool header_corrupted = false;
  bool torn = false;
  [[nodiscard]] bool any() const noexcept {
    return torn || header_corrupted || bytes_removed > 0 ||
           !flipped_offsets.empty();
  }
};

/// Record-level degradation plan for a live feed.
struct RecordPlan {
  /// Probability a record is emitted twice (the copy lands immediately
  /// after the original's final position).
  double duplicate_prob = 0.0;
  /// Bounded reordering: each record may be displaced by at most this many
  /// positions from its input order (0 = in order).
  std::size_t reorder_window = 0;
  /// Number of whole-minute loss bursts (collector outages) to cut.
  std::size_t loss_bursts = 0;
  /// Length of each loss burst in minutes.
  util::Minute loss_burst_minutes = 1;
  /// Probability a record repeats the previous record's timestamp instead
  /// of its own (a collector whose clock stopped advancing).
  double stuck_clock_prob = 0.0;
};

/// Ground truth of the feed degradation a plan produced.
struct RecordDamage {
  // dmlint: must-use
  std::uint64_t duplicated = 0;
  std::uint64_t displaced = 0;  ///< records whose output position changed
  std::uint64_t dropped = 0;
  std::uint64_t stuck = 0;
  /// Minute intervals [from, to) removed by loss bursts, in burst order
  /// (intervals may overlap when bursts collide).
  std::vector<std::pair<util::Minute, util::Minute>> lost_ranges;
};

/// Seed-deterministic injector. Each fault family draws from its own
/// Rng::split stream of the seed, so enabling one family never perturbs
/// another's draws and any single failure mode is reproducible in
/// isolation.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed) noexcept : base_(seed) {}

  /// Applies `plan` to serialized trace bytes in place. The buffer must be
  /// a well-formed trace (block targeting parses the clean layout first).
  [[nodiscard]] ByteDamage corrupt(std::vector<std::uint8_t>& bytes,
                     const BytePlan& plan) const;

  /// Applies `plan` to one segment file's bytes in place. `file_index`
  /// salts every random stream, so each file of a segment set takes
  /// distinct damage that is still individually reproducible from
  /// (seed, plan, index) — corrupting file 3 never changes what file 7
  /// would have suffered.
  [[nodiscard]] SegmentDamage corrupt_segment(std::vector<std::uint8_t>& bytes,
                                const SegmentPlan& plan,
                                std::uint64_t file_index) const;

  /// Applies `plan` to one DMCK checkpoint file's bytes in place, with the
  /// same (seed, plan, file_index) reproducibility contract as
  /// corrupt_segment: each file of a checkpoint generation takes distinct,
  /// individually replayable damage. Files shorter than the 6-byte DMCK
  /// header are returned untouched (already torn).
  [[nodiscard]] CheckpointDamage corrupt_checkpoint(std::vector<std::uint8_t>& bytes,
                                      const CheckpointPlan& plan,
                                      std::uint64_t file_index) const;

  /// Returns a degraded copy of `feed`; `damage` (optional) receives the
  /// ground truth. Stages apply in order: loss bursts, stuck clocks,
  /// bounded reorder, duplication.
  [[nodiscard]] std::vector<netflow::FlowRecord> degrade(
      std::span<const netflow::FlowRecord> feed, const RecordPlan& plan,
      RecordDamage* damage = nullptr) const;

 private:
  util::Rng base_;
};

/// Thrown by KillSwitch::poll at the armed kill-point. A crash-injection
/// harness catches it at the same boundary where a real process death would
/// end execution: everything already flushed to disk stays, everything in
/// memory is lost (the harness abandons the crashed object).
class InjectedCrash : public std::runtime_error {
 public:
  explicit InjectedCrash(const std::string& what)
      : std::runtime_error(what) {}
};

/// Deterministic kill-point: arm it with a (step, occurrence) pair and pass
/// it to crash-safe multi-step protocols (the serve checkpoint rotator polls
/// it after every rotation step). poll(step) counts how many times each step
/// completed and throws InjectedCrash when the armed step reaches the armed
/// occurrence — so "crash right after the 3rd shard file rename" is a
/// reproducible test input, not a race. Fires at most once.
class KillSwitch {
 public:
  /// `occurrence` is 1-based: occurrence 1 kills at the first poll of
  /// `step`. occurrence 0 never fires (a disarmed switch).
  KillSwitch(std::uint64_t step, std::uint64_t occurrence) noexcept
      : step_(step), occurrence_(occurrence) {}

  /// Records one completion of `step`; throws InjectedCrash when this is
  /// the armed occurrence of the armed step.
  void poll(std::uint64_t step);

  [[nodiscard]] bool fired() const noexcept { return fired_; }
  /// Completions of `step` seen so far (including the fatal one).
  [[nodiscard]] std::uint64_t count(std::uint64_t step) const noexcept;

 private:
  std::uint64_t step_ = 0;
  std::uint64_t occurrence_ = 0;
  bool fired_ = false;
  std::map<std::uint64_t, std::uint64_t> counts_;
};

}  // namespace dm::fault
