// Deterministic fault injection for degraded-feed testing.
//
// The paper's methodology runs over collector feeds that in production are
// lossy, reordered, duplicated, and occasionally corrupt (§3 leans on
// NetFlow's 1:4096 sampling being tolerable under imperfect capture). This
// library makes every such failure mode a first-class, reproducible input:
// a FaultInjector seeded with one 64-bit value applies a declarative plan
// to serialized trace bytes (bit flips, targeted block corruption,
// mid-block truncation) or to a live record feed (duplication, bounded
// reordering, whole-minute loss bursts, stuck-clock timestamps), and
// reports exactly what damage it did. All randomness derives from the seed
// via counter-based util::Rng::split, so a plan replays identically across
// runs, platforms, and thread counts — usable in tests, benches, and the
// CLI alike.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "netflow/flow_record.h"
#include "util/rng.h"
#include "util/time.h"

namespace dm::fault {

/// Byte-level corruption plan for a serialized .dmnf trace.
struct BytePlan {
  /// Random single-bit flips anywhere in the file (header included).
  std::size_t bit_flips = 0;
  /// Flip one payload bit in each of this many distinct blocks — the
  /// CRC-detectable "one flipped bit abandons the trace" case.
  std::size_t corrupt_blocks = 0;
  /// Delete a byte span from inside each of this many distinct blocks
  /// (distinct from corrupt_blocks targets), shifting the rest of the file
  /// up — the mid-file truncation a dying collector produces.
  std::size_t truncate_blocks = 0;
  /// Chop the file at a random point inside the final block, losing the
  /// tail and the end marker.
  bool truncate_tail = false;
};

/// Ground truth of the byte damage a plan produced.
struct ByteDamage {
  std::vector<std::uint64_t> flipped_offsets;   ///< post-edit file offsets
  std::vector<std::uint32_t> corrupted_blocks;  ///< indices into the clean layout
  std::vector<std::uint32_t> truncated_blocks;  ///< indices into the clean layout
  std::uint64_t bytes_removed = 0;
  bool tail_truncated = false;
};

/// Corruption plan for one spill-tier segment file (.dmseg). Segments are
/// CRC-framed whole-file units (no block structure to parse), so the plan
/// is byte-oriented: body bit flips exercise the body-CRC path, a header
/// flip the header-CRC path, and tail truncation the size check.
struct SegmentPlan {
  std::size_t bit_flips = 0;    ///< random single-bit flips in the body
  bool corrupt_header = false;  ///< flip one bit inside the 56-byte header
  bool truncate_tail = false;   ///< chop the file at a random body offset
};

/// Ground truth of the segment damage a plan produced.
struct SegmentDamage {
  std::vector<std::uint64_t> flipped_offsets;  ///< absolute file offsets
  std::uint64_t bytes_removed = 0;
  bool header_corrupted = false;
  [[nodiscard]] bool any() const noexcept {
    return header_corrupted || bytes_removed > 0 || !flipped_offsets.empty();
  }
};

/// Record-level degradation plan for a live feed.
struct RecordPlan {
  /// Probability a record is emitted twice (the copy lands immediately
  /// after the original's final position).
  double duplicate_prob = 0.0;
  /// Bounded reordering: each record may be displaced by at most this many
  /// positions from its input order (0 = in order).
  std::size_t reorder_window = 0;
  /// Number of whole-minute loss bursts (collector outages) to cut.
  std::size_t loss_bursts = 0;
  /// Length of each loss burst in minutes.
  util::Minute loss_burst_minutes = 1;
  /// Probability a record repeats the previous record's timestamp instead
  /// of its own (a collector whose clock stopped advancing).
  double stuck_clock_prob = 0.0;
};

/// Ground truth of the feed degradation a plan produced.
struct RecordDamage {
  std::uint64_t duplicated = 0;
  std::uint64_t displaced = 0;  ///< records whose output position changed
  std::uint64_t dropped = 0;
  std::uint64_t stuck = 0;
  /// Minute intervals [from, to) removed by loss bursts, in burst order
  /// (intervals may overlap when bursts collide).
  std::vector<std::pair<util::Minute, util::Minute>> lost_ranges;
};

/// Seed-deterministic injector. Each fault family draws from its own
/// Rng::split stream of the seed, so enabling one family never perturbs
/// another's draws and any single failure mode is reproducible in
/// isolation.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed) noexcept : base_(seed) {}

  /// Applies `plan` to serialized trace bytes in place. The buffer must be
  /// a well-formed trace (block targeting parses the clean layout first).
  ByteDamage corrupt(std::vector<std::uint8_t>& bytes,
                     const BytePlan& plan) const;

  /// Applies `plan` to one segment file's bytes in place. `file_index`
  /// salts every random stream, so each file of a segment set takes
  /// distinct damage that is still individually reproducible from
  /// (seed, plan, index) — corrupting file 3 never changes what file 7
  /// would have suffered.
  SegmentDamage corrupt_segment(std::vector<std::uint8_t>& bytes,
                                const SegmentPlan& plan,
                                std::uint64_t file_index) const;

  /// Returns a degraded copy of `feed`; `damage` (optional) receives the
  /// ground truth. Stages apply in order: loss bursts, stuck clocks,
  /// bounded reorder, duplication.
  [[nodiscard]] std::vector<netflow::FlowRecord> degrade(
      std::span<const netflow::FlowRecord> feed, const RecordPlan& plan,
      RecordDamage* damage = nullptr) const;

 private:
  util::Rng base_;
};

}  // namespace dm::fault
