#include "fault/fault.h"

#include <algorithm>
#include <numeric>
#include <tuple>

#include "netflow/trace_io.h"

namespace dm::fault {

using netflow::FlowRecord;

namespace {

// Rng::split stream indices, one per fault family. Fixed constants keep a
// family's draws identical whether or not other families are enabled.
constexpr std::uint64_t kPickStream = 0;      // block target selection
constexpr std::uint64_t kCorruptStream = 1;   // in-block bit flips
constexpr std::uint64_t kTruncateStream = 2;  // in-block byte removal
constexpr std::uint64_t kFlipStream = 3;      // free bit flips
constexpr std::uint64_t kLossStream = 16;     // minute loss bursts
constexpr std::uint64_t kStuckStream = 17;    // stuck-clock timestamps
constexpr std::uint64_t kReorderStream = 18;  // bounded reordering
constexpr std::uint64_t kDupStream = 19;      // record duplication
constexpr std::uint64_t kSegFlipStream = 32;      // segment body bit flips
constexpr std::uint64_t kSegHeaderStream = 33;    // segment header flip
constexpr std::uint64_t kSegTruncateStream = 34;  // segment tail chop
constexpr std::uint64_t kCkptFlipStream = 48;      // checkpoint payload flips
constexpr std::uint64_t kCkptHeaderStream = 49;    // checkpoint header flip
constexpr std::uint64_t kCkptTruncateStream = 50;  // checkpoint tail chop
constexpr std::uint64_t kCkptTornStream = 51;      // torn-write prefix

/// Segment header size (netflow/segment_store.h format) — the boundary
/// between header-CRC and body-CRC territory.
constexpr std::size_t kSegmentHeaderBytes = 56;

/// DMCK checkpoint header size (detect/stream.cpp framing): 4-byte magic +
/// 2-byte version; everything after it is the varint-sized CRC'd payload.
constexpr std::size_t kCheckpointHeaderBytes = 6;

}  // namespace

ByteDamage FaultInjector::corrupt(std::vector<std::uint8_t>& bytes,
                                  const BytePlan& plan) const {
  ByteDamage damage;
  const auto layout = netflow::trace_layout(bytes);

  // Choose distinct targets for corruption and truncation from one
  // shuffled index list so the two families never hit the same block. The
  // final block is reserved for tail truncation when that is requested.
  std::vector<std::uint32_t> candidates(layout.size());
  std::iota(candidates.begin(), candidates.end(), 0u);
  if (plan.truncate_tail && !candidates.empty()) candidates.pop_back();
  util::Rng pick_rng = base_.split(kPickStream);
  pick_rng.shuffle(candidates);

  const auto corrupt_count = static_cast<std::ptrdiff_t>(
      std::min(plan.corrupt_blocks, candidates.size()));
  const auto truncate_count = static_cast<std::ptrdiff_t>(std::min(
      plan.truncate_blocks,
      candidates.size() - static_cast<std::size_t>(corrupt_count)));
  damage.corrupted_blocks.assign(candidates.begin(),
                                 candidates.begin() + corrupt_count);
  damage.truncated_blocks.assign(
      candidates.begin() + corrupt_count,
      candidates.begin() + corrupt_count + truncate_count);
  std::sort(damage.corrupted_blocks.begin(), damage.corrupted_blocks.end());
  std::sort(damage.truncated_blocks.begin(), damage.truncated_blocks.end());

  // In-block bit flips happen while the clean layout's offsets are still
  // valid (nothing has shifted yet).
  util::Rng corrupt_rng = base_.split(kCorruptStream);
  for (const std::uint32_t index : damage.corrupted_blocks) {
    const netflow::BlockSpan& block = layout[index];
    const std::uint64_t offset =
        block.payload_offset + corrupt_rng.below(block.payload_size);
    bytes[offset] ^= static_cast<std::uint8_t>(1u << corrupt_rng.below(8));
  }

  // Tail truncation resizes only — no offsets shift.
  if (plan.truncate_tail && !layout.empty()) {
    const netflow::BlockSpan& last = layout.back();
    util::Rng tail_rng = base_.split(kTruncateStream).split(~0ull);
    const std::uint64_t cut =
        last.offset + 1 + tail_rng.below(last.size - 1);
    damage.bytes_removed += bytes.size() - cut;
    damage.tail_truncated = true;
    bytes.resize(cut);
  }

  // Mid-file truncation: draw each cut against the clean layout, then
  // apply highest-offset first so earlier cuts stay valid.
  util::Rng truncate_rng = base_.split(kTruncateStream);
  struct Cut {
    std::uint64_t start = 0;
    std::uint64_t length = 0;
  };
  std::vector<Cut> cuts;
  cuts.reserve(damage.truncated_blocks.size());
  for (const std::uint32_t index : damage.truncated_blocks) {
    const netflow::BlockSpan& block = layout[index];
    const std::uint64_t rel = truncate_rng.below(block.payload_size);
    const std::uint64_t length =
        1 + truncate_rng.below(block.payload_size - rel);
    cuts.push_back({block.payload_offset + rel, length});
  }
  std::sort(cuts.begin(), cuts.end(), [](const Cut& a, const Cut& b) {
    return std::tie(a.start, a.length) > std::tie(b.start, b.length);
  });
  for (const Cut& cut : cuts) {
    bytes.erase(bytes.begin() + static_cast<std::ptrdiff_t>(cut.start),
                bytes.begin() + static_cast<std::ptrdiff_t>(cut.start + cut.length));
    damage.bytes_removed += cut.length;
  }

  // Free-roaming bit flips act on the final buffer; offsets are post-edit.
  util::Rng flip_rng = base_.split(kFlipStream);
  for (std::size_t i = 0; i < plan.bit_flips && !bytes.empty(); ++i) {
    const std::uint64_t offset = flip_rng.below(bytes.size());
    bytes[offset] ^= static_cast<std::uint8_t>(1u << flip_rng.below(8));
    damage.flipped_offsets.push_back(offset);
  }
  return damage;
}

SegmentDamage FaultInjector::corrupt_segment(std::vector<std::uint8_t>& bytes,
                                             const SegmentPlan& plan,
                                             std::uint64_t file_index) const {
  SegmentDamage damage;
  if (bytes.size() <= kSegmentHeaderBytes) return damage;

  // Tail truncation first: flips then act on the surviving prefix, so the
  // ledger's flipped offsets always point at bytes that exist on disk.
  if (plan.truncate_tail) {
    util::Rng rng = base_.split(kSegTruncateStream).split(file_index);
    const std::uint64_t body = bytes.size() - kSegmentHeaderBytes;
    const std::size_t cut =
        kSegmentHeaderBytes + static_cast<std::size_t>(rng.below(body));
    damage.bytes_removed = bytes.size() - cut;
    bytes.resize(cut);
  }

  // Body bit flips: offsets land past the header, so the header CRC stays
  // intact and the damage is attributable to the body CRC alone.
  if (bytes.size() > kSegmentHeaderBytes) {
    util::Rng rng = base_.split(kSegFlipStream).split(file_index);
    const std::uint64_t body = bytes.size() - kSegmentHeaderBytes;
    for (std::size_t i = 0; i < plan.bit_flips; ++i) {
      const std::uint64_t offset = kSegmentHeaderBytes + rng.below(body);
      bytes[offset] ^= static_cast<std::uint8_t>(1u << rng.below(8));
      damage.flipped_offsets.push_back(offset);
    }
  }

  // Header flip last: independent of body damage by construction.
  if (plan.corrupt_header) {
    util::Rng rng = base_.split(kSegHeaderStream).split(file_index);
    const std::uint64_t offset = rng.below(kSegmentHeaderBytes);
    bytes[offset] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    damage.header_corrupted = true;
  }
  return damage;
}

CheckpointDamage FaultInjector::corrupt_checkpoint(
    std::vector<std::uint8_t>& bytes, const CheckpointPlan& plan,
    std::uint64_t file_index) const {
  CheckpointDamage damage;
  if (bytes.size() <= kCheckpointHeaderBytes) return damage;

  // Torn prefix replaces the whole file: no other family can act after it
  // (a torn write leaves nothing else to damage), so it goes first and
  // returns early.
  if (plan.torn_prefix) {
    util::Rng rng = base_.split(kCkptTornStream).split(file_index);
    const std::size_t keep =
        static_cast<std::size_t>(rng.below(kCheckpointHeaderBytes));
    damage.bytes_removed = bytes.size() - keep;
    damage.torn = true;
    bytes.resize(keep);
    return damage;
  }

  // Tail truncation before flips, mirroring corrupt_segment: flip offsets
  // in the ledger always point at bytes that survive on disk.
  if (plan.truncate_tail) {
    util::Rng rng = base_.split(kCkptTruncateStream).split(file_index);
    const std::uint64_t payload = bytes.size() - kCheckpointHeaderBytes;
    const std::size_t cut =
        kCheckpointHeaderBytes + static_cast<std::size_t>(rng.below(payload));
    damage.bytes_removed = bytes.size() - cut;
    bytes.resize(cut);
  }

  // Payload bit flips: offsets land past the header so the damage is
  // attributable to the payload CRC alone.
  if (bytes.size() > kCheckpointHeaderBytes && plan.bit_flips > 0) {
    util::Rng rng = base_.split(kCkptFlipStream).split(file_index);
    const std::uint64_t payload = bytes.size() - kCheckpointHeaderBytes;
    for (std::size_t i = 0; i < plan.bit_flips; ++i) {
      const std::uint64_t offset = kCheckpointHeaderBytes + rng.below(payload);
      bytes[offset] ^= static_cast<std::uint8_t>(1u << rng.below(8));
      damage.flipped_offsets.push_back(offset);
    }
  }

  // Header flip last: independent of payload damage by construction.
  if (plan.corrupt_header) {
    util::Rng rng = base_.split(kCkptHeaderStream).split(file_index);
    const std::uint64_t offset = rng.below(kCheckpointHeaderBytes);
    bytes[offset] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    damage.header_corrupted = true;
  }
  return damage;
}

void KillSwitch::poll(std::uint64_t step) {
  const std::uint64_t seen = ++counts_[step];
  if (!fired_ && occurrence_ != 0 && step == step_ && seen == occurrence_) {
    fired_ = true;
    throw InjectedCrash("injected crash at step " + std::to_string(step) +
                        " occurrence " + std::to_string(seen));
  }
}

std::uint64_t KillSwitch::count(std::uint64_t step) const noexcept {
  const auto it = counts_.find(step);
  return it == counts_.end() ? 0 : it->second;
}

std::vector<FlowRecord> FaultInjector::degrade(
    std::span<const FlowRecord> feed, const RecordPlan& plan,
    RecordDamage* damage) const {
  RecordDamage local;
  RecordDamage& dmg = damage != nullptr ? *damage : local;
  dmg = RecordDamage{};
  std::vector<FlowRecord> work(feed.begin(), feed.end());

  // 1. Loss bursts: whole-minute collector outages.
  if (plan.loss_bursts > 0 && !work.empty()) {
    util::Rng rng = base_.split(kLossStream);
    util::Minute lo = work.front().minute;
    util::Minute hi = lo;
    for (const FlowRecord& r : work) {
      lo = std::min(lo, r.minute);
      hi = std::max(hi, r.minute);
    }
    const util::Minute burst_len = std::max<util::Minute>(1, plan.loss_burst_minutes);
    for (std::size_t b = 0; b < plan.loss_bursts; ++b) {
      const util::Minute start =
          lo + static_cast<util::Minute>(
                   rng.below(static_cast<std::uint64_t>(hi - lo + 1)));
      dmg.lost_ranges.emplace_back(start, start + burst_len);
    }
    const auto lost = [&](const FlowRecord& r) {
      for (const auto& [from, to] : dmg.lost_ranges) {
        if (r.minute >= from && r.minute < to) return true;
      }
      return false;
    };
    const std::size_t before = work.size();
    std::erase_if(work, lost);
    dmg.dropped = before - work.size();
  }

  // 2. Stuck clocks: a record repeats its predecessor's (possibly already
  // stuck) timestamp, so consecutive draws freeze the clock at one minute.
  if (plan.stuck_clock_prob > 0.0 && work.size() > 1) {
    util::Rng rng = base_.split(kStuckStream);
    for (std::size_t i = 1; i < work.size(); ++i) {
      if (!rng.chance(plan.stuck_clock_prob)) continue;
      if (work[i].minute != work[i - 1].minute) {
        work[i].minute = work[i - 1].minute;
        ++dmg.stuck;
      }
    }
  }

  // 3. Bounded reorder: sort by (input index + delay) with delays in
  // [0, window]; the classic construction bounds displacement by the
  // window in both directions.
  if (plan.reorder_window > 0 && work.size() > 1) {
    util::Rng rng = base_.split(kReorderStream);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> keys(work.size());
    for (std::size_t i = 0; i < work.size(); ++i) {
      keys[i] = {i + rng.below(plan.reorder_window + 1), i};
    }
    std::sort(keys.begin(), keys.end());  // ties break on input index
    std::vector<FlowRecord> shuffled;
    shuffled.reserve(work.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (keys[i].second != i) ++dmg.displaced;
      shuffled.push_back(work[keys[i].second]);
    }
    work = std::move(shuffled);
  }

  // 4. Duplication: the copy lands immediately after the original.
  if (plan.duplicate_prob > 0.0) {
    util::Rng rng = base_.split(kDupStream);
    std::vector<FlowRecord> out;
    out.reserve(work.size() + work.size() / 8);
    for (const FlowRecord& r : work) {
      out.push_back(r);
      if (rng.chance(plan.duplicate_prob)) {
        out.push_back(r);
        ++dmg.duplicated;
      }
    }
    work = std::move(out);
  }
  return work;
}

}  // namespace dm::fault
