#include "serve/supervisor.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "exec/parallel.h"
#include "netflow/trace_io.h"
#include "netflow/varint.h"
#include "sim/attack_type.h"
#include "util/table.h"

namespace dm::serve {

namespace {

// Supervisor book framing: same magic+version+varint+CRC shape as the DMCK
// monitor checkpoint, under its own magic so a book is never mistaken for a
// monitor state (or vice versa) inside a generation directory.
constexpr std::uint32_t kBookMagic = 0x56534d44;  // "DMSV" little-endian
constexpr std::uint16_t kBookVersion = 1;
constexpr std::uint64_t kMaxBookPayload = 1ull << 30;

constexpr const char* kBookFile = "supervisor.dmsv";

/// Shed-phase stream index (fault families use 0..51, the writer 64).
constexpr std::uint64_t kShedStream = 80;

/// splitmix64 finalizer: the VIP -> shard mixer. A plain modulo would put
/// adjacent VIPs (one customer's contiguous allocation) on the same shard.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

[[nodiscard]] std::int64_t floor_div(std::int64_t a, std::int64_t b) noexcept {
  std::int64_t q = a / b;
  if (a % b != 0 && ((a < 0) != (b < 0))) --q;
  return q;
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  netflow::put_varint(out, v);
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  netflow::put_varint(out, netflow::zigzag64(v));
}

[[nodiscard]] std::string shard_file_name(std::size_t tenant,
                                          std::uint32_t shard) {
  return "t" + std::to_string(tenant) + "-s" + std::to_string(shard) +
         ".dmck";
}

}  // namespace

Supervisor::Supervisor(netflow::PrefixSet cloud_space,
                       const netflow::PrefixSet* blacklist,
                       std::vector<TenantSpec> tenants, ServeConfig config,
                       BufferedWriter* writer, exec::ThreadPool* pool)
    : cloud_space_(std::move(cloud_space)),
      blacklist_(blacklist),
      specs_(std::move(tenants)),
      config_(std::move(config)),
      writer_(writer),
      pool_(pool),
      shed_base_(util::Rng(config_.seed).split(kShedStream)) {
  if (specs_.empty()) throw ConfigError("serve: at least one tenant required");
  books_.resize(specs_.size());
  monitors_.resize(specs_.size());
  for (std::size_t t = 0; t < specs_.size(); ++t) {
    TenantSpec& spec = specs_[t];
    spec.shards = std::max<std::uint32_t>(1, spec.shards);
    spec.shed_factor = std::max<std::uint64_t>(2, spec.shed_factor);
    books_[t].shards.resize(spec.shards);
    monitors_[t].reserve(spec.shards);
    for (std::uint32_t s = 0; s < spec.shards; ++s) {
      monitors_[t].push_back(make_monitor(t));
    }
  }
  if (!config_.state_dir.empty()) {
    rotator_ = std::make_unique<CheckpointRotator>(config_.state_dir,
                                                   config_.keep_generations);
  }
}

std::unique_ptr<detect::StreamMonitor> Supervisor::make_monitor(
    std::size_t tenant) {
  return std::make_unique<detect::StreamMonitor>(
      cloud_space_, blacklist_, config_.detection, config_.timeouts,
      [this, tenant](const detect::MinuteDetection& d) {
        emit_alert(tenant, d);
      },
      [this, tenant](const detect::AttackIncident& inc) {
        emit_incident(tenant, inc);
      },
      config_.stream);
}

std::uint32_t Supervisor::shard_of(std::uint32_t vip,
                                   std::uint32_t shards) noexcept {
  if (shards <= 1) return 0;
  return static_cast<std::uint32_t>(mix64(vip) % shards);
}

std::size_t Supervisor::route(const netflow::FlowRecord& record) const {
  const std::uint32_t vip = cloud_space_.contains(record.dst_ip)
                                ? record.dst_ip.value()
                            : cloud_space_.contains(record.src_ip)
                                ? record.src_ip.value()
                                : record.dst_ip.value();
  return static_cast<std::size_t>(mix64(vip) >> 32) % specs_.size();
}

void Supervisor::emit_alert(std::size_t tenant,
                            const detect::MinuteDetection& d) {
  TenantBook& book = books_[tenant];
  Event e;
  e.kind = Event::Kind::kAlert;
  e.tenant = specs_[tenant].name;
  e.seq = book.event_seq++;
  e.vip = d.vip.value();
  e.direction = static_cast<std::uint8_t>(d.direction);
  e.type = static_cast<std::uint8_t>(d.type);
  e.start = d.minute;
  e.end = d.minute + 1;
  e.packets = d.sampled_packets;
  e.remotes = d.unique_remotes;
  if (writer_ != nullptr) writer_->push(std::move(e));
}

void Supervisor::emit_incident(std::size_t tenant,
                               const detect::AttackIncident& inc) {
  TenantBook& book = books_[tenant];
  Event e;
  e.kind = Event::Kind::kIncident;
  e.tenant = specs_[tenant].name;
  e.seq = book.event_seq++;
  e.vip = inc.vip.value();
  e.direction = static_cast<std::uint8_t>(inc.direction);
  e.type = static_cast<std::uint8_t>(inc.type);
  e.start = inc.start;
  e.end = inc.end;
  e.packets = inc.total_sampled_packets;
  e.remotes = inc.peak_unique_remotes;
  if (writer_ != nullptr) writer_->push(std::move(e));
}

void Supervisor::close_buckets(std::size_t tenant, util::Minute before) {
  TenantBook& book = books_[tenant];
  while (!book.open_buckets.empty() &&
         book.open_buckets.begin()->first < before) {
    const auto it = book.open_buckets.begin();
    const util::Minute minute = it->first;
    const BucketBook& bb = it->second;
    // Shed minutes are declared outages to the shards that shed in them:
    // a 1:k-sampled minute must not teach the volume detectors that the
    // tenant's baseline collapsed.
    for (std::uint32_t s = 0; s < bb.shard_shed.size(); ++s) {
      if (bb.shard_shed[s] > 0) {
        monitors_[tenant][s]->note_outage(minute, minute + 1);
      }
    }
    if (bb.shed > 0) {
      book.ledger.push_back({minute, bb.offered, bb.admitted, bb.shed});
      if (book.ledger.size() > config_.ledger_capacity) {
        const ShedLedgerEntry& oldest = book.ledger.front();
        book.folded_offered += oldest.offered;
        book.folded_admitted += oldest.admitted;
        book.folded_shed += oldest.shed;
        book.ledger.erase(book.ledger.begin());
      }
    }
    book.open_buckets.erase(it);
  }
}

void Supervisor::ingest(std::size_t tenant, const netflow::FlowRecord& record) {
  // Rotation boundary first: the committed state is exactly "everything
  // before feed index records_routed_", which is what recover() reports.
  if (rotator_ != nullptr && config_.rotation_interval > 0) {
    const std::int64_t bucket =
        floor_div(record.minute, config_.rotation_interval);
    if (rotation_mark_ == INT64_MIN) {
      rotation_mark_ = bucket;
    } else if (bucket > rotation_mark_) {
      rotation_mark_ = bucket;
      rotate_now(auto_kill_);
    }
  }
  ++records_routed_;

  TenantSpec& spec = specs_[tenant];
  TenantBook& book = books_[tenant];
  if (record.minute > book.high_water || book.high_water == kNoMinute) {
    close_buckets(tenant, record.minute - config_.stream.reorder_lag);
    book.high_water = record.minute;
  }

  const std::uint32_t vip = cloud_space_.contains(record.dst_ip)
                                ? record.dst_ip.value()
                            : cloud_space_.contains(record.src_ip)
                                ? record.src_ip.value()
                                : record.dst_ip.value();
  const std::uint32_t s = shard_of(vip, spec.shards);
  ShardBook& sb = book.shards[s];
  BucketBook& bb = book.open_buckets[record.minute];
  if (bb.shard_shed.size() != spec.shards) bb.shard_shed.resize(spec.shards);

  ++book.offered;
  ++bb.offered;
  const std::uint64_t position = sb.offered++;

  const bool over_rate = spec.max_records_per_minute > 0 &&
                         bb.offered > spec.max_records_per_minute;
  const bool over_memory =
      spec.max_state_bytes > 0 && sb.state_gauge > spec.max_state_bytes;
  if (over_rate || over_memory) {
    // 1:k systematic sampling: admit the records whose per-shard arrival
    // position lands on the seeded phase. The position counter serializes
    // with the book, so a resumed run sheds the identical records.
    const std::uint64_t k = spec.shed_factor;
    util::Rng phase_draw = shed_base_.split(tenant).split(s).split(
        static_cast<std::uint64_t>(record.minute));
    if (position % k != phase_draw.below(k)) {
      ++book.shed;
      ++bb.shed;
      ++sb.shed;
      ++bb.shard_shed[s];
      return;
    }
  }

  ++book.admitted;
  ++bb.admitted;
  ++sb.admitted;
  monitors_[tenant][s]->ingest(record);
  if (config_.gauge_refresh > 0 && sb.admitted % config_.gauge_refresh == 0) {
    sb.state_gauge = monitors_[tenant][s]->approx_state_bytes();
  }
}

void Supervisor::ingest_routed(const netflow::FlowRecord& record) {
  ingest(route(record), record);
}

void Supervisor::note_outage(std::size_t tenant, util::Minute from,
                             util::Minute to) {
  for (auto& monitor : monitors_[tenant]) monitor->note_outage(from, to);
}

void Supervisor::advance_to(util::Minute minute) {
  for (std::size_t t = 0; t < specs_.size(); ++t) {
    close_buckets(t, minute);
    if (books_[t].high_water == kNoMinute || books_[t].high_water < minute) {
      books_[t].high_water = minute;
    }
    for (auto& monitor : monitors_[t]) monitor->advance_to(minute);
  }
}

void Supervisor::finish() {
  for (std::size_t t = 0; t < specs_.size(); ++t) {
    close_buckets(t, INT64_MAX);
    for (auto& monitor : monitors_[t]) monitor->finish();
  }
  if (writer_ != nullptr) writer_->drain();
}

std::vector<std::uint8_t> Supervisor::encode_books() const {
  std::vector<std::uint8_t> payload;
  put_u64(payload, records_routed_);
  put_i64(payload, rotation_mark_);
  put_u64(payload, books_.size());
  for (const TenantBook& b : books_) {
    // dmlint: covers(b, TenantBook)
    put_u64(payload, b.offered);
    put_u64(payload, b.admitted);
    put_u64(payload, b.shed);
    put_u64(payload, b.event_seq);
    put_u64(payload, b.folded_offered);
    put_u64(payload, b.folded_admitted);
    put_u64(payload, b.folded_shed);
    put_i64(payload, b.high_water);
    put_u64(payload, b.open_buckets.size());
    for (const auto& [minute, bb] : b.open_buckets) {
      // dmlint: covers(bb, BucketBook)
      put_i64(payload, minute);
      put_u64(payload, bb.offered);
      put_u64(payload, bb.admitted);
      put_u64(payload, bb.shed);
      put_u64(payload, bb.shard_shed.size());
      for (const std::uint64_t shed : bb.shard_shed) put_u64(payload, shed);
      // dmlint: covers-end(bb)
    }
    put_u64(payload, b.ledger.size());
    for (const ShedLedgerEntry& e : b.ledger) {
      // dmlint: covers(e, ShedLedgerEntry)
      put_i64(payload, e.minute);
      put_u64(payload, e.offered);
      put_u64(payload, e.admitted);
      put_u64(payload, e.shed);
      // dmlint: covers-end(e)
    }
    put_u64(payload, b.shards.size());
    for (const ShardBook& sb : b.shards) {
      // dmlint: covers(sb, ShardBook)
      put_u64(payload, sb.offered);
      put_u64(payload, sb.admitted);
      put_u64(payload, sb.shed);
      put_u64(payload, sb.state_gauge);
      // dmlint: covers-end(sb)
    }
    // dmlint: covers-end(b)
  }

  std::vector<std::uint8_t> out;
  out.reserve(payload.size() + 16);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(kBookMagic >> (8 * i)));
  }
  out.push_back(static_cast<std::uint8_t>(kBookVersion & 0xff));
  out.push_back(static_cast<std::uint8_t>(kBookVersion >> 8));
  put_u64(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint32_t crc = netflow::crc32({payload.data(), payload.size()});
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  return out;
}

void Supervisor::decode_books(const std::vector<std::uint8_t>& bytes,
                              std::vector<TenantBook>& tenants_out,
                              std::uint64_t& routed_out,
                              std::int64_t& rotation_mark_out) const {
  if (bytes.size() < 6) throw FormatError("book: truncated header");
  std::uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) {
    magic |= static_cast<std::uint32_t>(bytes[static_cast<std::size_t>(i)])
             << (8 * i);
  }
  if (magic != kBookMagic) throw FormatError("book: bad magic");
  const std::uint16_t version =
      static_cast<std::uint16_t>(bytes[4] | (bytes[5] << 8));
  if (version != kBookVersion) throw FormatError("book: unsupported version");

  netflow::CheckedCursor head({bytes.data() + 6, bytes.size() - 6}, "book");
  const std::uint64_t payload_size = head.varint();
  if (payload_size > kMaxBookPayload) {
    throw FormatError("book: implausible payload size");
  }
  const std::size_t payload_off = 6 + head.position();
  if (payload_off + payload_size + 4 > bytes.size()) {
    throw FormatError("book: truncated payload");
  }
  const std::uint8_t* payload = bytes.data() + payload_off;
  std::uint32_t expected = 0;
  for (int i = 0; i < 4; ++i) {
    expected |= static_cast<std::uint32_t>(
                    payload[payload_size + static_cast<std::uint64_t>(i)])
                << (8 * i);
  }
  const std::uint32_t actual = netflow::crc32({payload, payload_size});
  if (expected != actual) throw FormatError("book: crc mismatch");

  netflow::CheckedCursor cur({payload, payload_size}, "book");
  const auto get_u64 = [&cur] { return cur.varint(); };
  const auto get_i64 = [&cur] { return netflow::unzigzag64(cur.varint()); };

  routed_out = get_u64();
  rotation_mark_out = get_i64();
  const std::uint64_t tenant_count = get_u64();
  if (tenant_count != specs_.size()) {
    throw FormatError("book: tenant count does not match configuration");
  }
  tenants_out.assign(specs_.size(), TenantBook{});
  for (std::size_t t = 0; t < tenants_out.size(); ++t) {
    TenantBook& b = tenants_out[t];
    // dmlint: covers(b, TenantBook)
    b.offered = get_u64();
    b.admitted = get_u64();
    b.shed = get_u64();
    b.event_seq = get_u64();
    b.folded_offered = get_u64();
    b.folded_admitted = get_u64();
    b.folded_shed = get_u64();
    b.high_water = get_i64();
    const std::uint64_t buckets = get_u64();
    for (std::uint64_t i = 0; i < buckets; ++i) {
      const util::Minute minute = get_i64();
      BucketBook& bb = b.open_buckets[minute];
      // dmlint: covers(bb, BucketBook)
      bb.offered = get_u64();
      bb.admitted = get_u64();
      bb.shed = get_u64();
      const std::uint64_t shard_count = get_u64();
      if (shard_count != specs_[t].shards) {
        throw FormatError("book: bucket shard count mismatch");
      }
      bb.shard_shed.resize(shard_count);
      for (std::uint64_t s = 0; s < shard_count; ++s) {
        bb.shard_shed[s] = get_u64();
      }
      // dmlint: covers-end(bb)
    }
    const std::uint64_t ledger_count = get_u64();
    b.ledger.resize(ledger_count);
    for (ShedLedgerEntry& e : b.ledger) {
      // dmlint: covers(e, ShedLedgerEntry)
      e.minute = get_i64();
      e.offered = get_u64();
      e.admitted = get_u64();
      e.shed = get_u64();
      // dmlint: covers-end(e)
    }
    const std::uint64_t shard_count = get_u64();
    if (shard_count != specs_[t].shards) {
      throw FormatError("book: shard count does not match configuration");
    }
    b.shards.resize(shard_count);
    for (ShardBook& sb : b.shards) {
      // dmlint: covers(sb, ShardBook)
      sb.offered = get_u64();
      sb.admitted = get_u64();
      sb.shed = get_u64();
      sb.state_gauge = get_u64();
      // dmlint: covers-end(sb)
    }
    // dmlint: covers-end(b)
  }
  if (!cur.exhausted()) throw FormatError("book: trailing bytes");
}

std::vector<ShardFile> Supervisor::snapshot_files() const {
  // Flat (tenant, shard) list; each monitor serializes independently, so
  // the pool can checkpoint shards concurrently with identical bytes.
  std::vector<std::pair<std::size_t, std::uint32_t>> flat;
  for (std::size_t t = 0; t < specs_.size(); ++t) {
    for (std::uint32_t s = 0; s < specs_[t].shards; ++s) flat.push_back({t, s});
  }
  std::vector<std::vector<std::uint8_t>> blobs =
      exec::parallel_map<std::vector<std::uint8_t>>(
          pool_, flat.size(), [&](std::size_t i) {
            std::ostringstream out(std::ios::binary);
            monitors_[flat[i].first][flat[i].second]->checkpoint(out);
            const std::string s = out.str();
            return std::vector<std::uint8_t>(s.begin(), s.end());
          });
  std::vector<ShardFile> files;
  files.reserve(flat.size() + 1);
  files.push_back({kBookFile, encode_books()});
  for (std::size_t i = 0; i < flat.size(); ++i) {
    files.push_back(
        {shard_file_name(flat[i].first, flat[i].second), std::move(blobs[i])});
  }
  return files;
}

std::int64_t Supervisor::rotate_now(fault::KillSwitch* kill) {
  if (rotator_ == nullptr) return -1;
  last_generation_ = rotator_->rotate(snapshot_files(), kill);
  return last_generation_;
}

RecoveryReport Supervisor::recover() {
  RecoveryReport report;
  if (rotator_ == nullptr) return report;

  std::vector<TenantBook> books;
  std::uint64_t routed = 0;
  std::int64_t mark = INT64_MIN;
  std::vector<std::vector<std::unique_ptr<detect::StreamMonitor>>> monitors;

  const auto decode_ok = [&](const LoadedGeneration& gen,
                             std::string& why) -> bool {
    books.clear();
    monitors.clear();
    const ShardFile* book_file = nullptr;
    std::size_t shard_files = 0;
    for (const ShardFile& f : gen.files) {
      if (f.name == kBookFile) book_file = &f;
      else ++shard_files;
    }
    std::size_t expected_shards = 0;
    for (const TenantSpec& spec : specs_) expected_shards += spec.shards;
    if (book_file == nullptr || shard_files != expected_shards) {
      why = "generation does not match the tenant configuration";
      return false;
    }
    try {
      decode_books(book_file->bytes, books, routed, mark);
      monitors.resize(specs_.size());
      for (std::size_t t = 0; t < specs_.size(); ++t) {
        for (std::uint32_t s = 0; s < specs_[t].shards; ++s) {
          const std::string name = shard_file_name(t, s);
          const ShardFile* file = nullptr;
          for (const ShardFile& f : gen.files) {
            if (f.name == name) {
              file = &f;
              break;
            }
          }
          if (file == nullptr) {
            why = "missing shard checkpoint " + name;
            return false;
          }
          auto monitor = make_monitor(t);
          std::istringstream in(
              std::string(file->bytes.begin(), file->bytes.end()),
              std::ios::binary);
          monitor->restore(in);
          monitors[t].push_back(std::move(monitor));
        }
      }
    } catch (const FormatError& e) {
      why = e.what();
      return false;
    }
    return true;
  };

  const LoadedGeneration loaded = rotator_->recover(report.ledger, decode_ok);
  if (loaded.generation >= 0) {
    books_ = std::move(books);
    monitors_ = std::move(monitors);
    records_routed_ = routed;
    rotation_mark_ = mark;
    last_generation_ = loaded.generation;
    report.generation = loaded.generation;
    report.resume_index = routed;
  }
  return report;
}

std::string Supervisor::status_report() const {
  util::TextTable table;
  table.set_header({"tenant", "shards", "offered", "admitted", "shed", "late",
                    "quarantined", "alerts", "incidents"});
  for (std::size_t t = 0; t < specs_.size(); ++t) {
    const TenantBook& b = books_[t];
    std::uint64_t late = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t alerts = 0;
    std::uint64_t incidents = 0;
    for (const auto& monitor : monitors_[t]) {
      late += monitor->records_late();
      quarantined += monitor->records_quarantined();
      alerts += monitor->alerts();
      incidents += monitor->incidents();
    }
    table.row(specs_[t].name, std::to_string(specs_[t].shards),
              std::to_string(b.offered), std::to_string(b.admitted),
              std::to_string(b.shed), std::to_string(late),
              std::to_string(quarantined), std::to_string(alerts),
              std::to_string(incidents));
  }
  std::ostringstream out;
  out << table.render();
  out << "\nrecords routed: " << records_routed_ << "\n";
  if (rotator_ != nullptr) {
    out << "checkpoint generation: " << last_generation_ << " (dir "
        << rotator_->root() << ")\n";
  }
  if (writer_ != nullptr) {
    const WriterStats ws = writer_->stats();
    out << "sink: enqueued " << ws.enqueued << ", delivered " << ws.delivered
        << ", retries " << ws.retries << ", dropped " << ws.dropped
        << ", spilled " << ws.spilled << "\n";
  }
  return out.str();
}

}  // namespace dm::serve
