#include "serve/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <charconv>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string_view>

#include "netflow/trace_io.h"
#include "util/error.h"

namespace dm::serve {

namespace fs = std::filesystem;

namespace {

constexpr const char* kManifestName = "MANIFEST";
constexpr const char* kGenPrefix = "gen-";
constexpr const char* kStagingSuffix = ".tmp";

void throw_io(const std::string& what, const fs::path& path) {
  throw Error(what + ": " + path.string());
}

/// fsync one file by path (content durability before rename).
void fsync_path(const fs::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw_io("checkpoint: cannot open for fsync", path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw_io("checkpoint: fsync failed", path);
}

/// fsync a directory (rename durability).
void fsync_dir(const fs::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) throw_io("checkpoint: cannot open dir for fsync", path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw_io("checkpoint: dir fsync failed", path);
}

void write_file(const fs::path& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw_io("checkpoint: cannot create", path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.close();
  if (!out) throw_io("checkpoint: write failed", path);
}

[[nodiscard]] std::vector<std::uint8_t> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw_io("checkpoint: cannot read", path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return bytes;
}

/// Parses "gen-<number>" (committed) or returns nullopt.
[[nodiscard]] std::optional<std::int64_t> parse_gen(const std::string& name) {
  const std::string_view prefix = kGenPrefix;
  if (name.size() <= prefix.size() || name.substr(0, prefix.size()) != prefix) {
    return std::nullopt;
  }
  std::int64_t gen = 0;
  const char* begin = name.data() + prefix.size();
  const char* end = name.data() + name.size();
  const auto [ptr, ec] = std::from_chars(begin, end, gen);
  if (ec != std::errc{} || ptr != end || gen < 0) return std::nullopt;
  return gen;
}

/// MANIFEST text: a header, one line per file, and a trailing CRC of every
/// preceding byte — so manifest damage is as detectable as file damage.
[[nodiscard]] std::string render_manifest(std::int64_t gen,
                                          const std::vector<ShardFile>& files) {
  std::ostringstream body;
  body << "DMMF 1\ngeneration " << gen << "\nfiles " << files.size() << "\n";
  for (const ShardFile& f : files) {
    const std::uint32_t crc = netflow::crc32({f.bytes.data(), f.bytes.size()});
    body << "file " << f.name << " " << f.bytes.size() << " " << crc << "\n";
  }
  std::string text = body.str();
  const std::uint32_t self =
      netflow::crc32({reinterpret_cast<const std::uint8_t*>(text.data()),
                      text.size()});
  text += "crc " + std::to_string(self) + "\n";
  return text;
}

struct ManifestEntry {
  std::string name;
  std::uint64_t size = 0;
  std::uint32_t crc = 0;
};

/// Parses + self-CRC-checks a MANIFEST; returns entries or an error string.
[[nodiscard]] std::optional<std::vector<ManifestEntry>> parse_manifest(
    const std::vector<std::uint8_t>& bytes, std::int64_t expect_gen,
    std::string& error) {
  const std::string text(bytes.begin(), bytes.end());
  const std::size_t crc_line = text.rfind("crc ");
  if (crc_line == std::string::npos || text.empty() || text.back() != '\n') {
    error = "no trailing crc line";
    return std::nullopt;
  }
  const std::uint32_t actual = netflow::crc32(
      {reinterpret_cast<const std::uint8_t*>(text.data()), crc_line});
  std::istringstream tail(text.substr(crc_line));
  std::string word;
  std::uint32_t expected = 0;
  if (!(tail >> word >> expected) || word != "crc") {
    error = "malformed crc line";
    return std::nullopt;
  }
  if (expected != actual) {
    error = "manifest crc mismatch: expected " + std::to_string(expected) +
            ", actual " + std::to_string(actual);
    return std::nullopt;
  }
  std::istringstream in(text.substr(0, crc_line));
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "DMMF" || version != 1) {
    error = "bad manifest header";
    return std::nullopt;
  }
  std::int64_t gen = -1;
  std::size_t count = 0;
  if (!(in >> word >> gen) || word != "generation" || gen != expect_gen) {
    error = "manifest generation mismatch";
    return std::nullopt;
  }
  if (!(in >> word >> count) || word != "files") {
    error = "bad files count";
    return std::nullopt;
  }
  std::vector<ManifestEntry> entries;
  entries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ManifestEntry e;
    if (!(in >> word >> e.name >> e.size >> e.crc) || word != "file") {
      error = "truncated file list";
      return std::nullopt;
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

void poll(fault::KillSwitch* kill, RotationStep step) {
  if (kill != nullptr) kill->poll(static_cast<std::uint64_t>(step));
}

}  // namespace

const char* rotation_step_name(RotationStep step) noexcept {
  switch (step) {
    case RotationStep::kShardWrite: return "shard-write";
    case RotationStep::kShardFsync: return "shard-fsync";
    case RotationStep::kShardRename: return "shard-rename";
    case RotationStep::kManifestWrite: return "manifest-write";
    case RotationStep::kManifestFsync: return "manifest-fsync";
    case RotationStep::kManifestRename: return "manifest-rename";
    case RotationStep::kCommit: return "commit";
    case RotationStep::kDirFsync: return "dir-fsync";
    case RotationStep::kGcRemove: return "gc-remove";
  }
  return "unknown";
}

const char* damage_kind_name(DamageKind kind) noexcept {
  switch (kind) {
    case DamageKind::kTornStaging: return "torn-staging";
    case DamageKind::kMissingManifest: return "missing-manifest";
    case DamageKind::kBadManifest: return "bad-manifest";
    case DamageKind::kMissingFile: return "missing-file";
    case DamageKind::kSizeMismatch: return "size-mismatch";
    case DamageKind::kCrcMismatch: return "crc-mismatch";
    case DamageKind::kUndecodable: return "undecodable";
  }
  return "unknown";
}

CheckpointRotator::CheckpointRotator(std::string root,
                                     std::size_t keep_generations)
    : root_(std::move(root)), keep_(std::max<std::size_t>(1, keep_generations)) {
  fs::create_directories(root_);
}

std::string CheckpointRotator::gen_dir(std::int64_t gen) const {
  return (fs::path(root_) / (kGenPrefix + std::to_string(gen))).string();
}

std::vector<std::int64_t> CheckpointRotator::generations() const {
  std::vector<std::int64_t> gens;
  for (const auto& entry : fs::directory_iterator(root_)) {
    if (!entry.is_directory()) continue;
    if (const auto gen = parse_gen(entry.path().filename().string())) {
      gens.push_back(*gen);
    }
  }
  std::sort(gens.begin(), gens.end());
  return gens;
}

std::int64_t CheckpointRotator::rotate(std::vector<ShardFile> files,
                                       fault::KillSwitch* kill) {
  // dmlint: total-order(file names are unique within a generation)
  std::sort(files.begin(), files.end(),
            [](const ShardFile& a, const ShardFile& b) {
              return a.name < b.name;
            });
  const std::vector<std::int64_t> gens = generations();
  const std::int64_t gen = gens.empty() ? 0 : gens.back() + 1;

  const fs::path staging = fs::path(gen_dir(gen) + kStagingSuffix);
  fs::remove_all(staging);  // a leftover from an interrupted earlier attempt
  fs::create_directories(staging);

  // dmlint: durable-commit
  for (const ShardFile& f : files) {
    const fs::path part = staging / (f.name + ".part");
    write_file(part, f.bytes);
    poll(kill, RotationStep::kShardWrite);
    fsync_path(part);
    poll(kill, RotationStep::kShardFsync);
    fs::rename(part, staging / f.name);
    poll(kill, RotationStep::kShardRename);
  }

  const std::string manifest = render_manifest(gen, files);
  const fs::path manifest_part = staging / (std::string(kManifestName) + ".part");
  write_file(manifest_part,
             std::vector<std::uint8_t>(manifest.begin(), manifest.end()));
  poll(kill, RotationStep::kManifestWrite);
  fsync_path(manifest_part);
  poll(kill, RotationStep::kManifestFsync);
  fs::rename(manifest_part, staging / kManifestName);
  poll(kill, RotationStep::kManifestRename);

  // The staging directory's own entries (shard + manifest renames above)
  // must hit disk before the directory is published: without this sync a
  // crash right after the commit rename can expose a generation whose
  // directory entries are still in flight. Deliberately not a RotationStep
  // kill-point — the crash matrix is keyed by kRotationStepCount and every
  // cell after kManifestRename already exercises the post-sync states.
  fsync_dir(staging);
  fs::rename(staging, gen_dir(gen));
  poll(kill, RotationStep::kCommit);
  fsync_dir(root_);
  poll(kill, RotationStep::kDirFsync);
  // dmlint: durable-commit-end

  // GC beyond keep_, oldest first. `gens` predates the commit, so the
  // retained set is {newest keep_-1 of gens} + the new generation.
  if (gens.size() + 1 > keep_) {
    const std::size_t remove_count = gens.size() + 1 - keep_;
    for (std::size_t i = 0; i < remove_count; ++i) {
      fs::remove_all(gen_dir(gens[i]));
      poll(kill, RotationStep::kGcRemove);
    }
  }
  return gen;
}

LoadedGeneration CheckpointRotator::recover(
    std::vector<DamageEntry>& ledger,
    const std::function<bool(const LoadedGeneration&, std::string&)>&
        decode_ok) {
  // Sweep torn staging dirs first: they are pre-commit by construction.
  std::vector<std::string> torn;
  for (const auto& entry : fs::directory_iterator(root_)) {
    const std::string name = entry.path().filename().string();
    if (entry.is_directory() && name.size() > 4 &&
        name.substr(name.size() - 4) == kStagingSuffix) {
      torn.push_back(name);
    }
  }
  std::sort(torn.begin(), torn.end());
  for (const std::string& name : torn) {
    fs::remove_all(fs::path(root_) / name);
    ledger.push_back({-1, name, DamageKind::kTornStaging,
                      "staging dir swept (crash before commit)"});
  }

  std::vector<std::int64_t> gens = generations();
  while (!gens.empty()) {
    const std::int64_t gen = gens.back();
    gens.pop_back();
    const fs::path dir = gen_dir(gen);
    const std::string dir_name = dir.filename().string();

    const auto reject = [&](const std::string& file, DamageKind kind,
                            std::string detail) {
      ledger.push_back({gen, dir_name + "/" + file, kind, std::move(detail)});
      fs::remove_all(dir);
    };

    const fs::path manifest_path = dir / kManifestName;
    if (!fs::exists(manifest_path)) {
      reject(kManifestName, DamageKind::kMissingManifest,
             "committed generation has no MANIFEST");
      continue;
    }
    std::string error;
    const auto entries =
        parse_manifest(read_file(manifest_path), gen, error);
    if (!entries) {
      reject(kManifestName, DamageKind::kBadManifest, error);
      continue;
    }

    LoadedGeneration loaded;
    loaded.generation = gen;
    bool ok = true;
    for (const ManifestEntry& e : *entries) {
      const fs::path file = dir / e.name;
      if (!fs::exists(file)) {
        reject(e.name, DamageKind::kMissingFile, "listed in MANIFEST");
        ok = false;
        break;
      }
      std::vector<std::uint8_t> bytes = read_file(file);
      if (bytes.size() != e.size) {
        reject(e.name, DamageKind::kSizeMismatch,
               "expected " + std::to_string(e.size) + " bytes, found " +
                   std::to_string(bytes.size()));
        ok = false;
        break;
      }
      const std::uint32_t crc = netflow::crc32({bytes.data(), bytes.size()});
      if (crc != e.crc) {
        reject(e.name, DamageKind::kCrcMismatch,
               "expected crc " + std::to_string(e.crc) + ", actual " +
                   std::to_string(crc));
        ok = false;
        break;
      }
      loaded.files.push_back({e.name, std::move(bytes)});
    }
    if (!ok) continue;
    if (decode_ok != nullptr) {
      std::string why;
      if (!decode_ok(loaded, why)) {
        reject("*", DamageKind::kUndecodable,
               why.empty() ? "semantic decode failed" : why);
        continue;
      }
    }
    return loaded;
  }
  return {};
}

}  // namespace dm::serve
