#include "serve/sink.h"

#include <ostream>
#include <sstream>

#include "netflow/flow_record.h"
#include "netflow/ipv4.h"
#include "netflow/varint.h"
#include "sim/attack_type.h"

namespace dm::serve {

namespace {

[[nodiscard]] std::string_view kind_name(Event::Kind k) noexcept {
  return k == Event::Kind::kAlert ? "alert" : "incident";
}

[[nodiscard]] std::string_view direction_name(std::uint8_t d) noexcept {
  return netflow::to_string(static_cast<netflow::Direction>(d & 1));
}

[[nodiscard]] std::string_view type_name(std::uint8_t t) noexcept {
  if (t >= sim::kAttackTypeCount) return "unknown";
  return sim::to_string(static_cast<sim::AttackType>(t));
}

/// Escapes the few characters a tenant name could smuggle into JSON.
[[nodiscard]] std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string render_human(const Event& e) {
  std::ostringstream out;
  out << e.tenant << " #" << e.seq << " " << kind_name(e.kind) << " "
      << type_name(e.type) << " " << direction_name(e.direction) << " vip="
      << netflow::IPv4(e.vip).to_string() << " minutes=[" << e.start << ","
      << e.end << ") packets=" << e.packets << " remotes=" << e.remotes;
  return out.str();
}

std::string render_json(const Event& e) {
  std::ostringstream out;
  out << "{\"tenant\":\"" << json_escape(e.tenant) << "\",\"seq\":" << e.seq
      << ",\"kind\":\"" << kind_name(e.kind) << "\",\"type\":\""
      << type_name(e.type) << "\",\"direction\":\"" << direction_name(e.direction)
      << "\",\"vip\":\"" << netflow::IPv4(e.vip).to_string() << "\",\"start\":"
      << e.start << ",\"end\":" << e.end << ",\"packets\":" << e.packets
      << ",\"remotes\":" << e.remotes << "}";
  return out.str();
}

void encode_event(std::vector<std::uint8_t>& out, const Event& e) {
  using netflow::put_varint;
  put_varint(out, static_cast<std::uint64_t>(e.kind));
  put_varint(out, e.tenant.size());
  for (const char c : e.tenant) {
    put_varint(out, static_cast<std::uint8_t>(c));
  }
  put_varint(out, e.seq);
  put_varint(out, e.vip);
  put_varint(out, e.direction);
  put_varint(out, e.type);
  put_varint(out, netflow::zigzag64(e.start));
  put_varint(out, netflow::zigzag64(e.end));
  put_varint(out, e.packets);
  put_varint(out, e.remotes);
}

std::vector<Event> decode_events(const std::vector<std::uint8_t>& bytes) {
  netflow::CheckedCursor cur({bytes.data(), bytes.size()}, "event");
  std::vector<Event> events;
  while (!cur.exhausted()) {
    Event e;
    const std::uint64_t kind = cur.varint();
    if (kind > 1) throw FormatError("event: unknown kind");
    e.kind = static_cast<Event::Kind>(kind);
    const std::uint64_t name_len = cur.varint();
    if (name_len > 4096) throw FormatError("event: implausible tenant name");
    e.tenant.reserve(name_len);
    for (std::uint64_t i = 0; i < name_len; ++i) {
      e.tenant.push_back(static_cast<char>(cur.varint() & 0xff));
    }
    e.seq = cur.varint();
    e.vip = static_cast<std::uint32_t>(cur.varint());
    e.direction = static_cast<std::uint8_t>(cur.varint());
    e.type = static_cast<std::uint8_t>(cur.varint());
    e.start = netflow::unzigzag64(cur.varint());
    e.end = netflow::unzigzag64(cur.varint());
    e.packets = cur.varint();
    e.remotes = static_cast<std::uint32_t>(cur.varint());
    events.push_back(std::move(e));
  }
  return events;
}

bool HumanSink::deliver(const Event& event) {
  out_ << render_human(event) << '\n';
  return static_cast<bool>(out_);
}

void HumanSink::flush() { out_.flush(); }

bool JsonLinesSink::deliver(const Event& event) {
  out_ << render_json(event) << '\n';
  return static_cast<bool>(out_);
}

void JsonLinesSink::flush() { out_.flush(); }

bool BinarySink::deliver(const Event& event) {
  std::vector<std::uint8_t> buf;
  encode_event(buf, event);
  out_.write(reinterpret_cast<const char*>(buf.data()),
             static_cast<std::streamsize>(buf.size()));
  return static_cast<bool>(out_);
}

void BinarySink::flush() { out_.flush(); }

bool FlakySink::deliver(const Event& event) {
  const std::uint64_t attempt = attempts_++;
  // Pure function of (seed, attempt index): replayable schedule.
  util::Rng draw = base_.split(attempt);
  const bool fail = streak_cap_ != 0 && streak_ >= streak_cap_
                        ? false
                        : draw.chance(fail_prob_);
  if (fail) {
    ++failures_;
    ++streak_;
    return false;
  }
  streak_ = 0;
  return inner_.deliver(event);
}

}  // namespace dm::serve
