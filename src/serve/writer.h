// Bounded buffered writer: the retry/timeout/backoff stage between the
// supervisor's event stream and an unreliable Sink.
//
// Events enter through push() and leave through exactly one Sink, in push
// order, from a single worker thread (or inline when threaded=false — both
// modes drive the identical attempt/backoff code path, so sink output bytes
// match). A failed delivery retries up to max_attempts with capped
// exponential backoff; the delay is computed, never measured: units come
// from `base_delay << attempt` plus a jitter drawn from a seeded
// counter-split stream indexed by (event seq, attempt), so the retry
// schedule is a pure function of configuration and input, replayable across
// runs. Exhausted events are dropped to the drop ledger (never silently).
//
// Overflow policy when the queue is full:
//  - kBlock (default): push() waits for space — deterministic backpressure;
//    the producer's view of every counter is a pure function of the feed.
//  - kSpill (fail-open): push() appends the event to a binary spill file and
//    returns. WHICH events spill depends on queue timing, so only the union
//    (delivered + spilled) is deterministic; the spill file round-trips
//    through decode_events for later replay.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/sink.h"

namespace dm::serve {

/// What to do when the bounded queue is full.
enum class OverflowPolicy : std::uint8_t {
  kBlock = 0,  ///< backpressure the producer (deterministic)
  kSpill = 1,  ///< fail open: divert to the spill file, never block
};

struct WriterConfig {
  std::size_t capacity = 1024;       ///< bounded queue depth
  std::uint32_t max_attempts = 5;    ///< delivery attempts per event (>= 1)
  std::uint64_t base_delay = 1;      ///< backoff units for the first retry
  std::uint64_t max_delay = 64;      ///< backoff cap in units
  std::uint64_t jitter = 1;          ///< max extra units added per retry
  std::uint64_t unit_micros = 0;     ///< wall micros one backoff unit sleeps
  std::uint64_t seed = 1;            ///< jitter stream seed
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  std::string spill_path;            ///< required when overflow == kSpill
  bool threaded = true;              ///< false: deliver inline from push()
};

/// Counters for the status report. All exact; `retries` counts failed
/// attempts that were followed by another attempt, `dropped` events that
/// exhausted max_attempts, `spilled` events diverted by kSpill overflow.
struct WriterStats {
  std::uint64_t enqueued = 0;
  std::uint64_t delivered = 0;
  std::uint64_t retries = 0;
  std::uint64_t dropped = 0;
  std::uint64_t spilled = 0;
};

class BufferedWriter {
 public:
  /// `sink` must outlive the writer. Starts the worker when threaded.
  BufferedWriter(Sink& sink, WriterConfig config);

  /// Drains and joins the worker; errors in late deliveries only show in
  /// the stats, so call close() + stats() explicitly when you care.
  ~BufferedWriter();

  BufferedWriter(const BufferedWriter&) = delete;
  BufferedWriter& operator=(const BufferedWriter&) = delete;

  /// Hands one event to the writer. Blocks while the queue is full under
  /// kBlock; spills under kSpill; delivers inline when threaded=false.
  void push(Event event);

  /// Waits until every pushed event reached a terminal state (delivered,
  /// dropped, or spilled) and flushes the sink.
  void drain();

  /// drain() + stop the worker. Idempotent; push() after close() delivers
  /// inline (close() only stops the thread, not the writer).
  void close();

  [[nodiscard]] WriterStats stats() const;

  /// The backoff schedule, exposed for tests: units to wait after failed
  /// attempt `attempt` (0-based) of event `seq`.
  [[nodiscard]] std::uint64_t backoff_units(std::uint64_t seq,
                                            std::uint32_t attempt) const;

 private:
  void worker_loop();
  /// Runs the full attempt/backoff loop for one event; updates counters.
  void deliver_with_retries(const Event& event);
  void spill(const Event& event);

  Sink& sink_;
  WriterConfig config_;
  util::Rng jitter_base_;

  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::condition_variable idle_;
  // dmlint: guarded-by(mu_)
  std::deque<Event> queue_;
  // dmlint: guarded-by(mu_)
  WriterStats stats_;
  // dmlint: guarded-by(mu_)
  std::uint64_t in_flight_ = 0;  ///< events popped but not yet terminal
  // dmlint: guarded-by(mu_)
  bool stopping_ = false;
  // dmlint: guarded-by(mu_)
  std::ofstream spill_out_;
  std::thread worker_;
};

}  // namespace dm::serve
