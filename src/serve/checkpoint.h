// Crash-safe checkpoint generation rotation for the serve fleet.
//
// A generation is one directory `gen-<G>` holding every shard's DMCK
// checkpoint plus the supervisor book and a MANIFEST naming each file with
// its size and CRC32. Rotation follows the classic temp + fsync + atomic
// rename protocol:
//
//   1. stage every file into `gen-<G>.tmp/` (write `<name>.part`, fsync,
//      rename to `<name>` — so a half-written file is never mistaken for a
//      finished one even inside the staging dir),
//   2. write + fsync + rename the MANIFEST last (its presence marks the
//      staging dir internally complete),
//   3. commit with ONE atomic rename `gen-<G>.tmp` -> `gen-<G>`,
//   4. fsync the parent directory so the rename itself is durable,
//   5. GC committed generations beyond `keep_generations`, oldest first.
//
// A crash at ANY point leaves either the old generation set untouched (steps
// 1-2: the leftover `.tmp` dir is swept on recovery) or the new generation
// fully committed (steps 3-5). The CheckpointRotator polls an optional
// fault::KillSwitch after every step above, so the crash matrix test can
// kill the protocol deterministically at each boundary and prove recovery
// lands on the newest intact generation — or falls back one generation —
// with the damage ledger naming exactly what was lost.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fault/fault.h"

namespace dm::serve {

/// Kill-point identifiers, polled in protocol order. Per-file steps fire
/// once per file (arm an occurrence > 1 to crash on a later shard).
enum class RotationStep : std::uint64_t {
  kShardWrite = 1,     ///< one shard's `.part` file fully written + closed
  kShardFsync = 2,     ///< that file fsync'd
  kShardRename = 3,    ///< `.part` -> final name inside the staging dir
  kManifestWrite = 4,  ///< MANIFEST.part written + closed
  kManifestFsync = 5,  ///< MANIFEST.part fsync'd
  kManifestRename = 6, ///< MANIFEST.part -> MANIFEST
  kCommit = 7,         ///< staging dir renamed to `gen-<G>`
  kDirFsync = 8,       ///< parent directory fsync'd
  kGcRemove = 9,       ///< one expired generation removed
};

inline constexpr std::uint64_t kRotationStepCount = 9;

[[nodiscard]] const char* rotation_step_name(RotationStep step) noexcept;

/// One file of a generation, by name and serialized content.
struct ShardFile {
  std::string name;
  std::vector<std::uint8_t> bytes;
};

/// Why recovery rejected a file or generation.
enum class DamageKind : std::uint8_t {
  kTornStaging = 0,     ///< leftover `.tmp` staging dir (pre-commit crash)
  kMissingManifest = 1, ///< committed dir with no MANIFEST
  kBadManifest = 2,     ///< MANIFEST unparseable or failed its own CRC
  kMissingFile = 3,     ///< manifest names a file that is not there
  kSizeMismatch = 4,    ///< file length differs from the manifest
  kCrcMismatch = 5,     ///< file bytes fail the manifest CRC
  kUndecodable = 6,     ///< CRC-clean bytes the caller's decoder rejected
};

[[nodiscard]] const char* damage_kind_name(DamageKind kind) noexcept;

/// One damage ledger entry: exactly what recovery discarded and why.
struct DamageEntry {
  std::int64_t generation = -1;  ///< -1 for staging dirs (no committed gen)
  std::string file;              ///< dir or file name relative to the root
  DamageKind kind = DamageKind::kTornStaging;
  std::string detail;            ///< human-readable specifics
};

/// A committed generation recovery validated and loaded. Carries the resume
/// state a caller must act on — dropping one silently restarts from scratch.
struct LoadedGeneration {
  // dmlint: must-use
  std::int64_t generation = -1;      ///< -1: nothing intact, fresh start
  std::vector<ShardFile> files;      ///< manifest order (name-sorted)
};

class CheckpointRotator {
 public:
  /// `root` is created if absent. keep_generations >= 1.
  CheckpointRotator(std::string root, std::size_t keep_generations);

  /// Runs the full rotation protocol over `files` (any order; staged in
  /// name order so bytes on disk are input-order independent). Returns the
  /// committed generation number. `kill` (optional) is polled after every
  /// protocol step. Throws dm::Error on I/O failure.
  std::int64_t rotate(std::vector<ShardFile> files,
                      fault::KillSwitch* kill = nullptr);

  /// Sweeps torn staging dirs, then walks committed generations newest to
  /// oldest: parses + CRC-checks the MANIFEST, then every file against it.
  /// The first generation whose bytes all verify AND pass `decode_ok` (when
  /// provided — return false for bytes that fail semantic decode) is
  /// returned loaded; everything newer that failed is REMOVED and recorded
  /// in `ledger`, so the next rotate() re-issues the same generation number
  /// an uninterrupted run would have produced. Returns generation -1 when
  /// nothing intact remains.
  [[nodiscard]] LoadedGeneration recover(
      std::vector<DamageEntry>& ledger,
      const std::function<bool(const LoadedGeneration&, std::string&)>&
          decode_ok = nullptr);

  /// Committed generation numbers, ascending.
  [[nodiscard]] std::vector<std::int64_t> generations() const;

  [[nodiscard]] const std::string& root() const noexcept { return root_; }

 private:
  [[nodiscard]] std::string gen_dir(std::int64_t gen) const;

  std::string root_;
  std::size_t keep_;
};

}  // namespace dm::serve
