// dm::serve::Supervisor — the supervised multi-tenant monitor service.
//
// One Supervisor owns a fleet of per-tenant, VIP-sharded StreamMonitors and
// wraps them in the three service-hardening layers the offline pipeline
// never needed:
//
//  * Admission control / graceful degradation. Each tenant carries a
//    record-rate budget (offered records per feed minute) and a memory
//    budget (approx_state_bytes per shard). While a budget is exceeded the
//    tenant's shards shed load by deterministic 1:k systematic sampling —
//    admit exactly when `offered_before % k == phase(tenant, shard, minute)`
//    with the phase drawn from counter-based Rng splits — so WHAT is shed is
//    a pure function of the feed, reproducible across runs, threads, and
//    crash/resume. Every shed record lands in an exact per-tenant ledger,
//    and minutes a shard shed in are declared collector outages to its
//    monitor (note_outage) so downsampled minutes never poison detector
//    baselines.
//
//  * Crash-safe checkpoint rotation. On feed-minute boundaries (every
//    rotation_interval minutes) the fleet's complete state — every monitor's
//    DMCK checkpoint plus the supervisor book (admission counters, ledgers,
//    event sequence numbers, and the exact feed resume index) — rotates
//    through CheckpointRotator's temp + fsync + atomic-rename protocol.
//    recover() salvages the newest intact generation (falling back one
//    generation per damaged set, with an exact damage ledger) and returns
//    the feed index to replay from; a resumed run is byte-identical to an
//    uninterrupted one.
//
//  * Event delivery. Monitor alerts/incidents become serve::Events carrying
//    checkpointed per-tenant sequence numbers and flow out through a
//    BufferedWriter (retry/backoff/spill) — at-least-once after a crash,
//    exactly ordered within a run.
//
// Time is virtual throughout: every decision is driven by feed minutes,
// never the wall clock, which is what makes the whole service replayable.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "detect/stream.h"
#include "exec/thread_pool.h"
#include "netflow/flow_record.h"
#include "serve/checkpoint.h"
#include "serve/writer.h"
#include "util/rng.h"

namespace dm::serve {

/// Static description of one tenant.
struct TenantSpec {
  std::string name;
  std::uint32_t shards = 1;                ///< VIP-sharded monitors (>= 1)
  std::uint64_t max_records_per_minute = 0;  ///< rate budget; 0 = unlimited
  std::uint64_t max_state_bytes = 0;       ///< per-shard memory budget; 0 = off
  std::uint64_t shed_factor = 8;           ///< k of the 1:k shed sampler (>= 2)
};

struct ServeConfig {
  detect::DetectionConfig detection;
  detect::TimeoutTable timeouts = detect::TimeoutTable::paper();
  detect::StreamConfig stream;
  std::uint64_t seed = 1;              ///< shed-phase stream seed
  util::Minute rotation_interval = 60; ///< feed minutes between rotations
  std::size_t keep_generations = 2;    ///< checkpoint GC depth
  std::string state_dir;               ///< empty: checkpointing disabled
  std::size_t ledger_capacity = 256;   ///< recent shed-ledger entries kept
  /// Gauge refresh cadence: approx_state_bytes is re-sampled every this
  /// many admitted records per shard (checkpointed, so resume agrees).
  std::uint64_t gauge_refresh = 1024;
};

/// Per-shard admission accounting (one per monitor).
struct ShardBook {
  // dmlint: checkpointed
  // dmlint: ledger(admission)
  std::uint64_t offered = 0;   ///< records routed to this shard
  // dmlint: ledger(admission)
  std::uint64_t admitted = 0;  ///< records its monitor ingested
  // dmlint: ledger(admission)
  std::uint64_t shed = 0;      ///< records dropped by the shed sampler
  std::uint64_t state_gauge = 0;  ///< cached approx_state_bytes sample
};

/// Accounting for one still-open feed minute of one tenant.
struct BucketBook {
  // dmlint: checkpointed
  // dmlint: ledger(admission)
  std::uint64_t offered = 0;
  // dmlint: ledger(admission)
  std::uint64_t admitted = 0;
  // dmlint: ledger(admission)
  std::uint64_t shed = 0;
  std::vector<std::uint64_t> shard_shed;  ///< per-shard shed in this minute
};

/// One closed minute in the shed ledger (only minutes that shed are kept).
struct ShedLedgerEntry {
  // dmlint: checkpointed
  util::Minute minute = 0;
  // dmlint: ledger(admission)
  std::uint64_t offered = 0;
  // dmlint: ledger(admission)
  std::uint64_t admitted = 0;
  // dmlint: ledger(admission)
  std::uint64_t shed = 0;
};

/// Sentinel for "no feed minute seen yet".
inline constexpr util::Minute kNoMinute = INT64_MIN;

/// Complete per-tenant accounting state.
struct TenantBook {
  // dmlint: checkpointed
  // dmlint: ledger(admission)
  std::uint64_t offered = 0;
  // dmlint: ledger(admission)
  std::uint64_t admitted = 0;
  // dmlint: ledger(admission)
  std::uint64_t shed = 0;
  std::uint64_t event_seq = 0;  ///< next Event sequence number
  /// Ledger-ring evictions fold into these exact totals.
  // dmlint: ledger(folded)
  std::uint64_t folded_offered = 0;
  // dmlint: ledger(folded)
  std::uint64_t folded_admitted = 0;
  // dmlint: ledger(folded)
  std::uint64_t folded_shed = 0;
  util::Minute high_water = kNoMinute;  ///< newest feed minute seen
  std::map<util::Minute, BucketBook> open_buckets;
  std::vector<ShedLedgerEntry> ledger;  ///< closed shed minutes, oldest first
  std::vector<ShardBook> shards;
};

/// What recover() found on disk. Resume position and damage ledger both
/// demand action from the caller — dropping one replays from record zero.
struct RecoveryReport {
  // dmlint: must-use
  std::int64_t generation = -1;   ///< adopted generation; -1 = fresh start
  std::uint64_t resume_index = 0; ///< replay the feed from this record index
  std::vector<DamageEntry> ledger;
};

class Supervisor {
 public:
  /// `blacklist` and `pool` (both optional) must outlive the supervisor;
  /// `writer` (optional) receives alert/incident events. The pool
  /// parallelizes rotation serialization only — ingest is sequential, so
  /// results never depend on thread count.
  Supervisor(netflow::PrefixSet cloud_space,
             const netflow::PrefixSet* blacklist,
             std::vector<TenantSpec> tenants, ServeConfig config,
             BufferedWriter* writer = nullptr,
             exec::ThreadPool* pool = nullptr);

  /// Deterministic VIP -> shard assignment (splitmix64 finalizer mod n).
  [[nodiscard]] static std::uint32_t shard_of(std::uint32_t vip,
                                              std::uint32_t shards) noexcept;

  /// The tenant dmnf's router assigns a record to (mix of its cloud-side
  /// address; unclassifiable records fall back to the destination).
  [[nodiscard]] std::size_t route(const netflow::FlowRecord& record) const;

  /// Feeds one record to `tenant`'s fleet through admission control.
  /// Rotates the checkpoint first when the record's minute crosses a
  /// rotation boundary (so the rotation point is an exact feed index).
  void ingest(std::size_t tenant, const netflow::FlowRecord& record);

  /// route() + ingest().
  void ingest_routed(const netflow::FlowRecord& record);

  /// Declares a collector outage to every shard of `tenant`.
  void note_outage(std::size_t tenant, util::Minute from, util::Minute to);

  /// Closes feed minutes < `minute` everywhere (buckets + monitors).
  void advance_to(util::Minute minute);

  /// Flushes every bucket, monitor, and (when present) the writer.
  void finish();

  /// Serializes the fleet and commits one checkpoint generation now.
  /// Returns the generation, or -1 when checkpointing is disabled.
  std::int64_t rotate_now(fault::KillSwitch* kill = nullptr);

  /// Arms every ingest-triggered rotation with `kill` (nullable to disarm;
  /// not owned) — how the crash matrix kills the protocol mid-feed.
  void set_rotation_killswitch(fault::KillSwitch* kill) noexcept {
    auto_kill_ = kill;
  }

  /// Recovers from the newest intact generation under state_dir (see class
  /// comment). Must be called before any ingest. The caller replays the
  /// feed from report.resume_index.
  [[nodiscard]] RecoveryReport recover();

  /// The fleet's complete serialized state as generation files (what
  /// rotate_now would commit) — the byte-identity oracle for tests.
  [[nodiscard]] std::vector<ShardFile> snapshot_files() const;

  /// Human-readable status: per-tenant admission/shed/alert counters plus
  /// writer and rotation state.
  [[nodiscard]] std::string status_report() const;

  // Introspection.
  [[nodiscard]] std::size_t tenant_count() const noexcept {
    return specs_.size();
  }
  [[nodiscard]] const TenantSpec& spec(std::size_t t) const {
    return specs_[t];
  }
  [[nodiscard]] const TenantBook& book(std::size_t t) const {
    return books_[t];
  }
  [[nodiscard]] const detect::StreamMonitor& monitor(std::size_t t,
                                                     std::uint32_t s) const {
    return *monitors_[t][s];
  }
  [[nodiscard]] std::uint64_t records_routed() const noexcept {
    return records_routed_;
  }
  [[nodiscard]] std::int64_t last_generation() const noexcept {
    return last_generation_;
  }

 private:
  [[nodiscard]] std::unique_ptr<detect::StreamMonitor> make_monitor(
      std::size_t tenant);
  /// Closes every open bucket of `tenant` with minute < `before`: declares
  /// shed minutes as outages to the affected shards and folds the bucket
  /// into the shed ledger.
  void close_buckets(std::size_t tenant, util::Minute before);
  void emit_alert(std::size_t tenant, const detect::MinuteDetection& d);
  void emit_incident(std::size_t tenant, const detect::AttackIncident& inc);
  [[nodiscard]] std::vector<std::uint8_t> encode_books() const;
  void decode_books(const std::vector<std::uint8_t>& bytes,
                    std::vector<TenantBook>& tenants_out,
                    std::uint64_t& routed_out,
                    std::int64_t& rotation_mark_out) const;

  netflow::PrefixSet cloud_space_;
  const netflow::PrefixSet* blacklist_;
  std::vector<TenantSpec> specs_;
  ServeConfig config_;
  BufferedWriter* writer_;
  exec::ThreadPool* pool_;
  util::Rng shed_base_;

  std::vector<TenantBook> books_;
  std::vector<std::vector<std::unique_ptr<detect::StreamMonitor>>> monitors_;
  std::uint64_t records_routed_ = 0;
  std::int64_t rotation_mark_ = INT64_MIN;  ///< last rotation bucket index
  std::int64_t last_generation_ = -1;
  fault::KillSwitch* auto_kill_ = nullptr;
  std::unique_ptr<CheckpointRotator> rotator_;  ///< null when disabled
};

}  // namespace dm::serve
