#include "serve/writer.h"

#include <algorithm>
#include <chrono>

namespace dm::serve {

namespace {
/// Jitter stream index: keeps writer draws clear of every other split
/// family hanging off a shared seed (fault uses 0..51).
constexpr std::uint64_t kJitterStream = 64;
}  // namespace

BufferedWriter::BufferedWriter(Sink& sink, WriterConfig config)
    : sink_(sink),
      config_(std::move(config)),
      jitter_base_(util::Rng(config_.seed).split(kJitterStream)) {
  config_.capacity = std::max<std::size_t>(1, config_.capacity);
  config_.max_attempts = std::max<std::uint32_t>(1, config_.max_attempts);
  if (config_.overflow == OverflowPolicy::kSpill &&
      !config_.spill_path.empty()) {
    spill_out_.open(config_.spill_path, std::ios::binary | std::ios::trunc);
  }
  if (config_.threaded) {
    worker_ = std::thread([this] { worker_loop(); });
  }
}

BufferedWriter::~BufferedWriter() { close(); }

std::uint64_t BufferedWriter::backoff_units(std::uint64_t seq,
                                            std::uint32_t attempt) const {
  // Capped exponential: base << attempt, saturating well before overflow.
  const std::uint32_t shift = std::min<std::uint32_t>(attempt, 32);
  std::uint64_t units = config_.base_delay << shift;
  units = std::min(units, config_.max_delay);
  if (config_.jitter > 0) {
    // Pure function of (seed, seq, attempt): split never advances parents.
    util::Rng draw = jitter_base_.split(seq).split(attempt);
    units += draw.below(config_.jitter + 1);
  }
  return units;
}

void BufferedWriter::deliver_with_retries(const Event& event) {
  for (std::uint32_t attempt = 0; attempt < config_.max_attempts; ++attempt) {
    if (sink_.deliver(event)) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.delivered;
      return;
    }
    if (attempt + 1 == config_.max_attempts) break;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.retries;
    }
    const std::uint64_t units = backoff_units(event.seq, attempt);
    if (units > 0 && config_.unit_micros > 0) {
      // A computed duration, not a deadline: no clock is ever read.
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait_for(
          lock, std::chrono::microseconds(units * config_.unit_micros),
          [this] { return stopping_; });
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.dropped;
}

void BufferedWriter::spill(const Event& event) {
  std::vector<std::uint8_t> buf;
  encode_event(buf, event);
  std::lock_guard<std::mutex> lock(mu_);
  if (spill_out_.is_open()) {
    spill_out_.write(reinterpret_cast<const char*>(buf.data()),
                     static_cast<std::streamsize>(buf.size()));
  }
  ++stats_.spilled;
}

void BufferedWriter::push(Event event) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.enqueued;
  }
  bool inline_delivery = !config_.threaded;
  if (!inline_delivery) {
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_) {
      inline_delivery = true;  // worker gone; fall through to inline
    } else if (queue_.size() >= config_.capacity) {
      if (config_.overflow == OverflowPolicy::kSpill) {
        lock.unlock();
        spill(event);
        return;
      }
      not_full_.wait(lock, [this] {
        return stopping_ || queue_.size() < config_.capacity;
      });
      if (stopping_) inline_delivery = true;
    }
    if (!inline_delivery) {
      queue_.push_back(std::move(event));
      not_empty_.notify_one();
      return;
    }
  }
  deliver_with_retries(event);
}

void BufferedWriter::worker_loop() {
  for (;;) {
    Event event;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      event = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
      not_full_.notify_one();
    }
    deliver_with_retries(event);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

void BufferedWriter::drain() {
  if (config_.threaded) {
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [this] {
      return (queue_.empty() && in_flight_ == 0) ||
             (stopping_ && queue_.empty() && in_flight_ == 0);
    });
  }
  sink_.flush();
  std::lock_guard<std::mutex> lock(mu_);
  if (spill_out_.is_open()) spill_out_.flush();
}

void BufferedWriter::close() {
  if (config_.threaded && worker_.joinable()) {
    drain();
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
    worker_.join();
  } else {
    sink_.flush();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (spill_out_.is_open()) spill_out_.flush();
}

WriterStats BufferedWriter::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace dm::serve
