// Delivery sinks for the supervised monitor service.
//
// The serve fleet (dm::serve::Supervisor) turns StreamMonitor callbacks into
// Events and hands them to a Sink through the BufferedWriter. A Sink is the
// unreliable outside world — a terminal, a log shipper, a downstream
// collector — so the interface is deliberately narrow: deliver one event,
// report success or transient failure, flush on demand. Three production
// renderings share the interface (human text, JSON lines, a varint-framed
// binary stream that round-trips), plus a NullSink for benches and a
// FlakySink that fails deterministically from a seeded schedule — the test
// double the retry/backoff machinery is proven against.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/time.h"

namespace dm::serve {

/// One unit of sink output: a flagged minute or a closed incident from one
/// tenant's monitor fleet, flattened so every sink can render it without
/// reaching back into detector state. `seq` is the tenant's event sequence
/// number, assigned at emission and checkpointed with the tenant book, so a
/// resumed run re-emits the same events with the same numbers (delivery is
/// at-least-once after a crash; seq lets consumers deduplicate exactly).
struct Event {
  enum class Kind : std::uint8_t { kAlert = 0, kIncident = 1 };

  Kind kind = Kind::kAlert;
  std::string tenant;
  std::uint64_t seq = 0;
  std::uint32_t vip = 0;        ///< IPv4 value of the attacked/attacking VIP
  std::uint8_t direction = 0;   ///< netflow::Direction underlying value
  std::uint8_t type = 0;        ///< sim::AttackType underlying value
  util::Minute start = 0;       ///< alert: the minute; incident: first minute
  util::Minute end = 0;         ///< alert: minute + 1; incident: last + 1
  std::uint64_t packets = 0;    ///< sampled packets (alert: the minute's)
  std::uint32_t remotes = 0;    ///< unique remotes (alert: minute, else peak)

  friend bool operator==(const Event&, const Event&) = default;
};

/// Renders `e` as one human-readable line (no trailing newline).
[[nodiscard]] std::string render_human(const Event& e);

/// Renders `e` as one JSON object (stable key order, no trailing newline).
[[nodiscard]] std::string render_json(const Event& e);

/// Appends the varint-framed binary encoding of `e` to `out`.
void encode_event(std::vector<std::uint8_t>& out, const Event& e);

/// Decodes events previously encoded by encode_event until the buffer is
/// exhausted. Throws dm::FormatError on malformed bytes.
[[nodiscard]] std::vector<Event> decode_events(
    const std::vector<std::uint8_t>& bytes);

/// Abstract delivery target. deliver() returns false on a transient failure
/// the caller may retry; it must not partially emit an event when it fails.
class Sink {
 public:
  virtual ~Sink() = default;
  [[nodiscard]] virtual bool deliver(const Event& event) = 0;
  virtual void flush() {}
};

/// Human-readable line-per-event sink.
class HumanSink final : public Sink {
 public:
  /// The stream must outlive the sink.
  explicit HumanSink(std::ostream& out) noexcept : out_(out) {}
  [[nodiscard]] bool deliver(const Event& event) override;
  void flush() override;

 private:
  std::ostream& out_;
};

/// JSON-lines sink (one object per line, stable key order).
class JsonLinesSink final : public Sink {
 public:
  explicit JsonLinesSink(std::ostream& out) noexcept : out_(out) {}
  [[nodiscard]] bool deliver(const Event& event) override;
  void flush() override;

 private:
  std::ostream& out_;
};

/// Binary sink: the encode_event framing, appended to a stream. Consumers
/// recover the exact Event structs with decode_events.
class BinarySink final : public Sink {
 public:
  explicit BinarySink(std::ostream& out) noexcept : out_(out) {}
  [[nodiscard]] bool deliver(const Event& event) override;
  void flush() override;

 private:
  std::ostream& out_;
};

/// Swallows everything (bench baseline).
class NullSink final : public Sink {
 public:
  [[nodiscard]] bool deliver(const Event&) override { return true; }
};

/// Deterministically unreliable decorator: each delivery ATTEMPT fails with
/// probability `fail_prob`, drawn from a seeded stream indexed by the
/// attempt counter — so the exact fail/succeed schedule is a pure function
/// of (seed, attempt index), reproducible across runs and thread counts.
/// Events that do get through are forwarded to the wrapped sink.
class FlakySink final : public Sink {
 public:
  /// `inner` must outlive the sink. `fail_streak_cap` bounds consecutive
  /// failures per event so bounded-retry tests can force eventual success.
  FlakySink(Sink& inner, std::uint64_t seed, double fail_prob,
            std::uint64_t fail_streak_cap = 0) noexcept
      : inner_(inner),
        base_(seed),
        fail_prob_(fail_prob),
        streak_cap_(fail_streak_cap) {}

  [[nodiscard]] bool deliver(const Event& event) override;
  void flush() override { inner_.flush(); }

  [[nodiscard]] std::uint64_t attempts() const noexcept { return attempts_; }
  [[nodiscard]] std::uint64_t failures() const noexcept { return failures_; }

 private:
  Sink& inner_;
  util::Rng base_;
  double fail_prob_;
  std::uint64_t streak_cap_;
  std::uint64_t attempts_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t streak_ = 0;
};

}  // namespace dm::serve
