#include "netflow/flow_record.h"

#include <sstream>

namespace dm::netflow {

std::string to_string(const FlowRecord& r) {
  std::ostringstream os;
  os << util::format_minute(r.minute) << ' ' << to_string(r.protocol) << ' '
     << r.src_ip.to_string() << ':' << r.src_port << " -> "
     << r.dst_ip.to_string() << ':' << r.dst_port;
  if (r.protocol == Protocol::kTcp) os << " [" << to_string(r.tcp_flags) << ']';
  os << " pkts=" << r.packets << " bytes=" << r.bytes;
  return os.str();
}

}  // namespace dm::netflow
