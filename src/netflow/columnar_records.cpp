#include "netflow/columnar_records.h"

#include <algorithm>
#include <utility>

#include "util/error.h"

namespace dm::netflow {

void ColumnarRecords::begin_run(std::uint64_t key, std::uint64_t minute) {
  std::uint8_t buf[2 * kMaxVarintBytes];
  std::uint8_t* p = put_varint_raw(buf, delta64(key, last_key_));
  p = put_varint_raw(p, delta64(minute, last_minute_));
  headers_.insert(headers_.end(), buf, p);

  const std::size_t run = run_starts_.size();
  if (checkpoints_.empty() ||
      run - static_cast<std::size_t>(checkpoints_.back().run) >=
          kCheckpointRuns) {
    checkpoints_.push_back(Checkpoint{run, headers_.size(), key, minute});
  }
  run_starts_.push_back(static_cast<std::uint32_t>(size_));
  payload_offs_.push_back(payload_.size());
  last_key_ = key;
  last_minute_ = minute;
}

void ColumnarRecords::push_back(const FlowRecord& record, Direction direction) {
  // run_starts_ (and the window index space) is 32-bit; the whole pipeline
  // shares that bound.
  if (size_ > UINT32_MAX) throw Error("ColumnarRecords: record count exceeds 2^32");

  const bool inbound = direction == Direction::kInbound;
  const std::uint32_t vip = (inbound ? record.dst_ip : record.src_ip).value();
  const std::uint32_t remote =
      (inbound ? record.src_ip : record.dst_ip).value();
  const std::uint64_t key = (static_cast<std::uint64_t>(vip) << 1) |
                            static_cast<std::uint64_t>(direction);
  const auto minute = static_cast<std::uint64_t>(record.minute);

  // Stage the record's seven varints (~16 bytes typical) in a stack buffer
  // and splice them in with one capacity check instead of one per byte.
  std::uint8_t buf[7 * kMaxVarintBytes];
  std::uint8_t* p;
  if (size_ == 0 || key != last_key_ || minute != last_minute_) {
    begin_run(key, minute);
    p = put_varint_raw(buf, remote);
  } else {
    p = put_varint_raw(buf, delta32(remote, last_remote_));
  }
  last_remote_ = remote;

  p = put_varint_raw(p, record.src_port);
  p = put_varint_raw(p, record.dst_port);
  p = put_varint_raw(p, static_cast<std::uint8_t>(record.protocol));
  p = put_varint_raw(p, static_cast<std::uint8_t>(record.tcp_flags));
  p = put_varint_raw(p, record.packets);
  p = put_varint_raw(p, record.bytes);
  payload_.insert(payload_.end(), buf, p);
  ++size_;
}

void ColumnarRecords::append(ColumnarRecords&& other) {
  if (other.size_ == 0) return;
  // Steal the whole store when this one is empty AND unreserved; a reserved
  // destination keeps its capacity and goes through the generic path (which
  // is also correct for an empty destination — the encoder state starts at
  // zero, so the re-encoded first header is byte-identical).
  if (size_ == 0 && payload_.capacity() == 0) {
    *this = std::move(other);
    other = ColumnarRecords();
    return;
  }
  if (size_ + other.size_ > static_cast<std::size_t>(UINT32_MAX) + 1) {
    throw Error("ColumnarRecords: record count exceeds 2^32");
  }

  // Every store's first run header is encoded relative to (0, 0); re-encode
  // it relative to this store's last run, then bulk-copy the rest verbatim
  // (later headers are deltas between other's own runs — unaffected).
  const std::uint8_t* h = other.headers_.data();
  const std::uint64_t first_key = undelta64(0, get_varint(h));
  const std::uint64_t first_minute = undelta64(0, get_varint(h));
  const auto old_first_len =
      static_cast<std::size_t>(h - other.headers_.data());
  const std::size_t headers_before = headers_.size();
  put_varint(headers_, delta64(first_key, last_key_));
  put_varint(headers_, delta64(first_minute, last_minute_));
  const std::size_t new_first_len = headers_.size() - headers_before;
  headers_.insert(headers_.end(),
                  other.headers_.begin() +
                      static_cast<std::ptrdiff_t>(old_first_len),
                  other.headers_.end());

  const std::uint64_t payload_base = payload_.size();
  payload_.insert(payload_.end(), other.payload_.begin(),
                  other.payload_.end());

  const auto record_base = static_cast<std::uint32_t>(size_);
  run_starts_.reserve(run_starts_.size() + other.run_starts_.size());
  for (const std::uint32_t rs : other.run_starts_) {
    run_starts_.push_back(rs + record_base);
  }
  payload_offs_.reserve(payload_offs_.size() + other.payload_offs_.size());
  for (const std::uint64_t off : other.payload_offs_) {
    payload_offs_.push_back(off + payload_base);
  }

  const std::uint64_t run_base =
      run_starts_.size() - other.run_starts_.size();
  // Header offsets shift by the bytes in front of other's stream, adjusted
  // for the first header's re-encoded length.
  const std::uint64_t header_shift =
      headers_before + new_first_len - old_first_len;
  checkpoints_.reserve(checkpoints_.size() + other.checkpoints_.size());
  for (const Checkpoint& cp : other.checkpoints_) {
    checkpoints_.push_back(Checkpoint{cp.run + run_base,
                                      cp.next_header + header_shift, cp.key,
                                      cp.minute});
  }

  size_ += other.size_;
  last_key_ = other.last_key_;
  last_minute_ = other.last_minute_;
  last_remote_ = other.last_remote_;
  other = ColumnarRecords();
}

ColumnarRecords::BufferSizes ColumnarRecords::buffer_sizes() const noexcept {
  return BufferSizes{headers_.size(), payload_.size(), run_starts_.size(),
                     checkpoints_.size()};
}

void ColumnarRecords::reserve(const BufferSizes& extra) {
  headers_.reserve(headers_.size() +
                   static_cast<std::size_t>(extra.header_bytes));
  payload_.reserve(payload_.size() +
                   static_cast<std::size_t>(extra.payload_bytes));
  run_starts_.reserve(run_starts_.size() + extra.runs);
  payload_offs_.reserve(payload_offs_.size() + extra.runs);
  checkpoints_.reserve(checkpoints_.size() + extra.checkpoints);
}

void ColumnarRecords::shrink_to_fit() {
  headers_.shrink_to_fit();
  payload_.shrink_to_fit();
  run_starts_.shrink_to_fit();
  payload_offs_.shrink_to_fit();
  checkpoints_.shrink_to_fit();
}

std::uint64_t ColumnarRecords::encoded_bytes() const noexcept {
  return static_cast<std::uint64_t>(headers_.size()) + payload_.size() +
         run_starts_.size() * sizeof(std::uint32_t) +
         payload_offs_.size() * sizeof(std::uint64_t) +
         checkpoints_.size() * sizeof(Checkpoint);
}

ColumnarRecords::Cursor ColumnarRecords::seek(
    const ColumnarView& view, std::size_t record_index) noexcept {
  Cursor c;
  c.view_ = view;
  c.limit_ = view.records;
  if (record_index >= view.records) {
    c.next_index_ = view.records;
    return c;
  }

  // The run containing record_index...
  const std::uint32_t* const rs_begin = view.run_starts;
  const std::uint32_t* const rs_end = view.run_starts + view.runs;
  const std::uint32_t* run_it = std::upper_bound(
      rs_begin, rs_end, static_cast<std::uint32_t>(record_index));
  const auto run = static_cast<std::size_t>(run_it - rs_begin) - 1;

  // ...its absolute header state, reached from the nearest checkpoint at or
  // before it (checkpoint 0 covers run 0, so the search never underflows).
  const ColumnarCheckpoint* cp_it = std::upper_bound(
      view.checkpoints, view.checkpoints + view.checkpoint_count, run,
      [](std::size_t r, const ColumnarCheckpoint& cp) { return r < cp.run; });
  const ColumnarCheckpoint& cp = *(cp_it - 1);
  c.key_ = cp.key;
  c.minute_ = cp.minute;
  c.header_pos_ = static_cast<std::size_t>(cp.next_header);
  const std::uint8_t* h = view.headers + c.header_pos_;
  for (auto r = static_cast<std::size_t>(cp.run); r < run; ++r) {
    c.key_ = undelta64(c.key_, get_varint(h));
    c.minute_ = undelta64(c.minute_, get_varint(h));
  }
  c.header_pos_ = static_cast<std::size_t>(h - view.headers);

  c.run_ = run;
  c.run_end_ = run + 1 < view.runs ? view.run_starts[run + 1] : view.records;
  c.payload_pos_ = static_cast<std::size_t>(view.payload_offs[run]);
  c.next_index_ = view.run_starts[run];
  // Skip-decode to the requested record when it sits mid-run.
  while (c.next_index_ < record_index) c.next();
  return c;
}

ColumnarRecords::Cursor ColumnarRecords::cursor_at(
    std::size_t record_index) const noexcept {
  return seek(view(), record_index);
}

ColumnarRecords::Range ColumnarRecords::range(std::size_t first,
                                              std::size_t last) const noexcept {
  Cursor c = cursor_at(first);
  c.limit_ = last;
  return Range(c, last - first);
}

ColumnarRecords::Range ColumnarRecords::all() const noexcept {
  return range(0, size_);
}

Direction ColumnarRecords::direction_of(
    std::size_t record_index) const noexcept {
  Cursor c = cursor_at(record_index);
  c.next();
  return c.direction();
}

}  // namespace dm::netflow
