// IPv4 addresses and CIDR prefixes.
#pragma once

#include <algorithm>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dm::netflow {

/// An IPv4 address as a host-order 32-bit value. A plain value type: cheap
/// to copy, totally ordered, hashable.
class IPv4 {
 public:
  constexpr IPv4() = default;
  explicit constexpr IPv4(std::uint32_t value) noexcept : value_(value) {}

  /// Builds from dotted octets a.b.c.d.
  static constexpr IPv4 from_octets(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                                    std::uint8_t d) noexcept {
    return IPv4((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                (std::uint32_t{c} << 8) | std::uint32_t{d});
  }

  /// Parses dotted-quad notation; nullopt on malformed input.
  static std::optional<IPv4> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }

  /// Dotted-quad rendering.
  [[nodiscard]] std::string to_string() const;

  /// Address scaled into [0, 1): used by the Anderson-Darling spoof test.
  [[nodiscard]] constexpr double as_unit_interval() const noexcept {
    return static_cast<double>(value_) / 4294967296.0;
  }

  friend constexpr auto operator<=>(IPv4, IPv4) = default;

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR prefix (network address + mask length).
class Prefix {
 public:
  constexpr Prefix() = default;

  /// Requires bits <= 32. The base address is masked down to the network.
  constexpr Prefix(IPv4 base, int bits) noexcept
      : bits_(bits < 0 ? 0 : (bits > 32 ? 32 : bits)),
        base_(IPv4(base.value() & mask())) {}

  /// Parses "a.b.c.d/len"; nullopt on malformed input.
  static std::optional<Prefix> parse(std::string_view text);

  [[nodiscard]] constexpr IPv4 network() const noexcept { return base_; }
  [[nodiscard]] constexpr int length() const noexcept { return bits_; }

  [[nodiscard]] constexpr std::uint32_t mask() const noexcept {
    return bits_ == 0 ? 0u : ~std::uint32_t{0} << (32 - bits_);
  }

  /// Number of addresses covered.
  [[nodiscard]] constexpr std::uint64_t size() const noexcept {
    return std::uint64_t{1} << (32 - bits_);
  }

  [[nodiscard]] constexpr bool contains(IPv4 ip) const noexcept {
    return (ip.value() & mask()) == base_.value();
  }

  /// The i-th address in the prefix (i < size()).
  [[nodiscard]] constexpr IPv4 at(std::uint64_t i) const noexcept {
    return IPv4(base_.value() + static_cast<std::uint32_t>(i));
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  int bits_ = 32;
  IPv4 base_{};
};

/// Longest-prefix-match structure over arbitrary (possibly nested) prefixes.
/// One sorted vector of network addresses per mask length serves match();
/// membership queries go through a flattened interval index instead: add()
/// keeps the union of all prefixes as sorted disjoint [lo, hi] address
/// spans, so contains() is a single binary search over typically very few
/// spans (adjacent prefixes coalesce — the cloud's contiguous per-DC /16s
/// collapse to one span). That matters because classification calls
/// contains() twice per record.
class PrefixSet {
 public:
  PrefixSet() = default;
  explicit PrefixSet(const std::vector<Prefix>& prefixes);

  void add(Prefix p);

  [[nodiscard]] bool contains(IPv4 ip) const noexcept {
    const std::uint32_t v = ip.value();
    if (hosts_only_ && !filter_.empty()) {
      // All-/32 sets (the TDS blacklist) get a one-bit-per-hash prefilter:
      // a clear bit proves absence, so the overwhelmingly common miss costs
      // one load instead of a binary search over thousands of spans.
      const std::uint64_t h = filter_hash(v);
      if ((filter_[(h >> 6) & (kFilterWords - 1)] & (1ull << (h & 63))) == 0) {
        return false;
      }
    }
    // Last span starting at or below v; spans are disjoint, so it is the
    // only candidate.
    auto it = std::upper_bound(
        spans_.begin(), spans_.end(), v,
        [](std::uint32_t value, const Span& s) { return value < s.lo; });
    return it != spans_.begin() && v <= (it - 1)->hi;
  }

  /// The longest (most specific) prefix containing ip, if any.
  [[nodiscard]] std::optional<Prefix> match(IPv4 ip) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

 private:
  struct Span {
    std::uint32_t lo;
    std::uint32_t hi;  // inclusive
  };

  // 2^19 filter bits (64 KiB): ~1% false-positive rate at the blacklist's
  // host counts, and small enough to live in L2 next to the hot loops.
  static constexpr std::size_t kFilterWords = (std::size_t{1} << 19) / 64;

  static constexpr std::uint64_t filter_hash(std::uint32_t v) noexcept {
    return (static_cast<std::uint64_t>(v) * 0x9e3779b97f4a7c15ULL) >> 45;
  }

  std::vector<std::vector<std::uint32_t>> by_length_;  // sorted networks, index = mask length
  std::vector<Span> spans_;  // sorted, disjoint union of all prefixes
  std::vector<std::uint64_t> filter_;  // see contains(); /32-only sets
  bool hosts_only_ = true;
  std::size_t count_ = 0;
};

}  // namespace dm::netflow

template <>
struct std::hash<dm::netflow::IPv4> {
  std::size_t operator()(dm::netflow::IPv4 ip) const noexcept {
    // Fibonacci hashing spreads sequential VIP addresses across buckets.
    return static_cast<std::size_t>(ip.value()) * 0x9e3779b97f4a7c15ULL >> 16;
  }
};
