#include "netflow/csv.h"

#include <charconv>
#include <istream>
#include <ostream>

#include "util/error.h"

namespace dm::netflow {
namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw FormatError("csv line " + std::to_string(line_no) + ": " + what);
}

/// Splits the next comma field from `rest`; empty fields are errors.
std::string_view take_field(std::string_view& rest, std::size_t line_no) {
  if (rest.empty()) fail(line_no, "missing field");
  const auto comma = rest.find(',');
  std::string_view field = rest.substr(0, comma);
  rest = comma == std::string_view::npos ? std::string_view{}
                                         : rest.substr(comma + 1);
  if (field.empty()) fail(line_no, "empty field");
  return field;
}

template <typename T>
T parse_number(std::string_view field, std::size_t line_no, const char* name) {
  T value{};
  const auto [end, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || end != field.data() + field.size()) {
    fail(line_no, std::string("bad ") + name + " '" + std::string(field) + "'");
  }
  return value;
}

IPv4 parse_ip(std::string_view field, std::size_t line_no, const char* name) {
  const auto ip = IPv4::parse(field);
  if (!ip) {
    fail(line_no, std::string("bad ") + name + " '" + std::string(field) + "'");
  }
  return *ip;
}

}  // namespace

FlowRecord parse_csv_row(std::string_view line, std::size_t line_no) {
  std::string_view rest = line;
  FlowRecord r;
  r.minute = parse_number<std::int64_t>(take_field(rest, line_no), line_no,
                                        "minute");
  r.src_ip = parse_ip(take_field(rest, line_no), line_no, "src_ip");
  r.src_port = parse_number<std::uint16_t>(take_field(rest, line_no), line_no,
                                           "src_port");
  r.dst_ip = parse_ip(take_field(rest, line_no), line_no, "dst_ip");
  r.dst_port = parse_number<std::uint16_t>(take_field(rest, line_no), line_no,
                                           "dst_port");
  const auto proto =
      parse_number<unsigned>(take_field(rest, line_no), line_no, "proto");
  switch (proto) {
    case 0: r.protocol = Protocol::kIpEncap; break;
    case 1: r.protocol = Protocol::kIcmp; break;
    case 6: r.protocol = Protocol::kTcp; break;
    case 17: r.protocol = Protocol::kUdp; break;
    default: fail(line_no, "unsupported protocol " + std::to_string(proto));
  }
  const auto flags =
      parse_number<unsigned>(take_field(rest, line_no), line_no, "tcp_flags");
  if (flags > 63) fail(line_no, "tcp_flags out of range");
  r.tcp_flags = static_cast<TcpFlags>(flags);
  r.packets = parse_number<std::uint32_t>(take_field(rest, line_no), line_no,
                                          "packets");
  if (r.packets == 0) fail(line_no, "packets must be >= 1");
  r.bytes = parse_number<std::uint64_t>(take_field(rest, line_no), line_no,
                                        "bytes");
  if (!rest.empty()) fail(line_no, "trailing fields");
  return r;
}

void write_csv(std::ostream& out, std::span<const FlowRecord> records) {
  out << kCsvHeader << '\n';
  for (const FlowRecord& r : records) {
    out << r.minute << ',' << r.src_ip.to_string() << ',' << r.src_port << ','
        << r.dst_ip.to_string() << ',' << r.dst_port << ','
        << static_cast<unsigned>(r.protocol) << ','
        << static_cast<unsigned>(r.tcp_flags) << ',' << r.packets << ','
        << r.bytes << '\n';
  }
}

std::vector<FlowRecord> read_csv(std::istream& in) {
  std::vector<FlowRecord> records;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line_no == 1 && line == kCsvHeader) continue;
    records.push_back(parse_csv_row(line, line_no));
  }
  return records;
}

std::vector<FlowRecord> read_csv(std::istream& in, CsvQuarantine& quarantine,
                                 std::size_t bad_line_budget) {
  std::vector<FlowRecord> records;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line_no == 1 && line == kCsvHeader) continue;
    ++quarantine.lines_seen;
    try {
      records.push_back(parse_csv_row(line, line_no));
    } catch (const FormatError& e) {
      if (quarantine.bad_lines.size() >= bad_line_budget) {
        throw FormatError(std::string(e.what()) + " (quarantine budget of " +
                          std::to_string(bad_line_budget) +
                          " bad lines exhausted)");
      }
      quarantine.bad_lines.push_back(
          {line_no, e.what(),
           line.substr(0, CsvQuarantine::kMaxQuarantinedLineBytes)});
    }
  }
  return records;
}

}  // namespace dm::netflow
