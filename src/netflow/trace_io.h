// Binary serialization of sampled NetFlow traces.
//
// Format (little-endian, varint-packed):
//   file   := header block* end-block
//   header := magic 'DMNF' (u32) | version (u16) | sampling denominator (u32)
//   block  := record-count varint (>0) | payload-size varint | payload | crc32
//   end    := record-count varint == 0
// Payload packs each record's fields as varints, with the minute
// delta-encoded against the block's first record. A CRC32 of the payload
// guards against truncation/corruption; strict readers throw
// dm::FormatError naming the byte offset, block index, and expected vs
// actual CRC. Salvage readers instead resynchronize on the next decodable
// block boundary and tally the damage in an IngestReport.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "netflow/columnar_records.h"
#include "netflow/flow_record.h"
#include "netflow/segment_store.h"

namespace dm::netflow {

inline constexpr std::uint32_t kTraceMagic = 0x464e4d44;  // "DMNF"
inline constexpr std::uint16_t kTraceVersion = 1;

/// Streams FlowRecords into an ostream in the block format above.
class TraceWriter {
 public:
  /// Writes the file header immediately. The stream must outlive the writer.
  TraceWriter(std::ostream& out, std::uint32_t sampling_denominator);

  /// Destructor finishes the file (flushes the open block and writes the end
  /// marker) if finish() was not called; errors are swallowed there, so call
  /// finish() explicitly when you care.
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void write(const FlowRecord& record);
  void write_all(std::span<const FlowRecord> records);
  /// Streams a decoded view of the columnar store — the WindowedTrace
  /// export path; never materializes the records as an array.
  void write_all(ColumnarRecords::Range records);
  /// Same, over a possibly spilled RecordStore (one segment mapped at a
  /// time, so exporting a multi-month trace stays at flat RSS).
  void write_all(RecordStore::Range records);
  /// Whole-store exports decode through the SoA block pipeline (a
  /// BlockCursor per store) instead of one record at a time; the Range
  /// overloads above remain for partial ranges.
  void write_all(const ColumnarRecords& records);
  void write_all(const RecordStore& store);

  /// Flushes pending records and writes the end marker. Idempotent.
  void finish();

  [[nodiscard]] std::uint64_t records_written() const noexcept { return count_; }

 private:
  void flush_block();

  std::ostream& out_;
  std::vector<FlowRecord> pending_;
  std::uint64_t count_ = 0;
  bool finished_ = false;
};

/// How a TraceReader treats damaged input.
enum class ReadMode {
  /// Throw dm::FormatError on the first malformed byte (default).
  kStrict,
  /// Resynchronize on the next decodable block and keep going; damage is
  /// tallied in the IngestReport instead of thrown.
  kSalvage,
};

/// What a salvage pass recovered and what it had to give up. One entry in
/// `lost_ranges` per contiguous damaged byte region skipped over; the
/// per-error counters classify the failure that opened each region.
struct IngestReport {
  // dmlint: must-use
  bool header_valid = true;     ///< magic/version/sampling parsed cleanly
  bool end_marker_seen = false; ///< the trailing zero-count block was intact
  std::uint64_t bytes_scanned = 0;
  std::uint64_t blocks_decoded = 0;
  std::uint64_t blocks_skipped = 0;  ///< damaged regions resynchronized over
  std::uint64_t records_recovered = 0;
  std::uint64_t crc_mismatches = 0;  ///< payload intact-looking but CRC wrong
  std::uint64_t truncations = 0;     ///< block claims bytes past end of file
  std::uint64_t varint_errors = 0;   ///< malformed/implausible block header
  std::uint64_t decode_errors = 0;   ///< CRC passed but payload inconsistent

  struct LostRange {
    std::uint64_t offset = 0;  ///< first unrecoverable byte
    std::uint64_t bytes = 0;   ///< length of the skipped region
  };
  std::vector<LostRange> lost_ranges;

  [[nodiscard]] std::uint64_t bytes_lost() const noexcept;
  /// True when the whole file decoded with no damage of any kind.
  [[nodiscard]] bool clean() const noexcept;
};

/// Reads a trace produced by TraceWriter. In strict mode validates magic,
/// version and per-block CRCs, throwing dm::FormatError (with byte offset,
/// block index, and expected-vs-actual CRC) on any mismatch. In salvage
/// mode the whole stream is decoded up front, skipping damaged regions;
/// report() describes the recovery.
class TraceReader {
 public:
  explicit TraceReader(std::istream& in, ReadMode mode = ReadMode::kStrict);

  [[nodiscard]] std::uint32_t sampling_denominator() const noexcept {
    return sampling_;
  }

  /// Salvage statistics. Fully populated immediately after construction in
  /// salvage mode; in strict mode only bytes/blocks seen so far.
  [[nodiscard]] const IngestReport& report() const noexcept { return report_; }

  /// Reads the next record; false at end of file.
  [[nodiscard]] bool next(FlowRecord& out);

  /// Reads all remaining records.
  [[nodiscard]] std::vector<FlowRecord> read_all();

 private:
  bool load_block();
  void salvage_all();

  std::istream& in_;
  ReadMode mode_ = ReadMode::kStrict;
  std::uint32_t sampling_ = 0;
  std::vector<FlowRecord> block_;
  std::size_t cursor_ = 0;
  bool eof_ = false;
  std::uint64_t offset_ = 0;       ///< bytes consumed (strict mode)
  std::uint64_t block_index_ = 0;  ///< blocks decoded (strict mode)
  IngestReport report_;
};

/// Convenience round-trips through files on disk.
void write_trace_file(const std::string& path, std::span<const FlowRecord> records,
                      std::uint32_t sampling_denominator);
void write_trace_file(const std::string& path, ColumnarRecords::Range records,
                      std::uint32_t sampling_denominator);
void write_trace_file(const std::string& path, RecordStore::Range records,
                      std::uint32_t sampling_denominator);
[[nodiscard]] std::vector<FlowRecord> read_trace_file(const std::string& path,
                                                      std::uint32_t* sampling = nullptr);

/// Salvage-reads a possibly damaged trace file in one call.
struct SalvageResult {
  // dmlint: must-use
  std::vector<FlowRecord> records;
  std::uint32_t sampling = 0;
  IngestReport report;
};
[[nodiscard]] SalvageResult salvage_trace_file(const std::string& path);

/// Byte extents of one block in a serialized trace — the map a fault
/// injector (or forensic tooling) needs to aim corruption at specific
/// blocks. Offsets are absolute file offsets.
struct BlockSpan {
  std::uint64_t offset = 0;          ///< first byte of the block header
  std::uint64_t size = 0;            ///< header varints + payload + CRC
  std::uint64_t payload_offset = 0;  ///< first payload byte
  std::uint64_t payload_size = 0;
  std::uint64_t record_count = 0;
  std::uint64_t first_record = 0;    ///< cumulative record index of the block
};

/// Walks a WELL-FORMED serialized trace (header through end marker) and
/// returns the byte extents of every block. Throws dm::FormatError on any
/// damage — use TraceReader in salvage mode for damaged input.
[[nodiscard]] std::vector<BlockSpan> trace_layout(
    std::span<const std::uint8_t> bytes);

/// CRC32 (IEEE 802.3 polynomial) over a byte span; exposed for tests.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept;

}  // namespace dm::netflow
