// Binary serialization of sampled NetFlow traces.
//
// Format (little-endian, varint-packed):
//   file   := header block* end-block
//   header := magic 'DMNF' (u32) | version (u16) | sampling denominator (u32)
//   block  := record-count varint (>0) | payload-size varint | payload | crc32
//   end    := record-count varint == 0
// Payload packs each record's fields as varints, with the minute
// delta-encoded against the block's first record. A CRC32 of the payload
// guards against truncation/corruption; readers throw dm::FormatError.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "netflow/columnar_records.h"
#include "netflow/flow_record.h"

namespace dm::netflow {

inline constexpr std::uint32_t kTraceMagic = 0x464e4d44;  // "DMNF"
inline constexpr std::uint16_t kTraceVersion = 1;

/// Streams FlowRecords into an ostream in the block format above.
class TraceWriter {
 public:
  /// Writes the file header immediately. The stream must outlive the writer.
  TraceWriter(std::ostream& out, std::uint32_t sampling_denominator);

  /// Destructor finishes the file (flushes the open block and writes the end
  /// marker) if finish() was not called; errors are swallowed there, so call
  /// finish() explicitly when you care.
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void write(const FlowRecord& record);
  void write_all(std::span<const FlowRecord> records);
  /// Streams a decoded view of the columnar store — the WindowedTrace
  /// export path; never materializes the records as an array.
  void write_all(ColumnarRecords::Range records);

  /// Flushes pending records and writes the end marker. Idempotent.
  void finish();

  [[nodiscard]] std::uint64_t records_written() const noexcept { return count_; }

 private:
  void flush_block();

  std::ostream& out_;
  std::vector<FlowRecord> pending_;
  std::uint64_t count_ = 0;
  bool finished_ = false;
};

/// Reads a trace produced by TraceWriter. Validates magic, version and
/// per-block CRCs; throws dm::FormatError on any mismatch.
class TraceReader {
 public:
  explicit TraceReader(std::istream& in);

  [[nodiscard]] std::uint32_t sampling_denominator() const noexcept {
    return sampling_;
  }

  /// Reads the next record; false at end of file.
  [[nodiscard]] bool next(FlowRecord& out);

  /// Reads all remaining records.
  [[nodiscard]] std::vector<FlowRecord> read_all();

 private:
  bool load_block();

  std::istream& in_;
  std::uint32_t sampling_ = 0;
  std::vector<FlowRecord> block_;
  std::size_t cursor_ = 0;
  bool eof_ = false;
};

/// Convenience round-trips through files on disk.
void write_trace_file(const std::string& path, std::span<const FlowRecord> records,
                      std::uint32_t sampling_denominator);
void write_trace_file(const std::string& path, ColumnarRecords::Range records,
                      std::uint32_t sampling_denominator);
[[nodiscard]] std::vector<FlowRecord> read_trace_file(const std::string& path,
                                                      std::uint32_t* sampling = nullptr);

/// CRC32 (IEEE 802.3 polynomial) over a byte span; exposed for tests.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept;

}  // namespace dm::netflow
