// Packet sampling: the 1:4096 thinning the paper's NetFlow deployment uses.
//
// The simulator produces *true* per-flow packet counts; PacketSampler thins
// them to what the edge-router NetFlow process would record. Flows whose
// sampled count is zero vanish from the dataset entirely — the source of the
// paper's "we may not detect an attack over its entire duration" caveat.
#pragma once

#include <cstdint>
#include <optional>

#include "util/rng.h"

namespace dm::netflow {

/// Bernoulli packet sampler at rate 1:N.
class PacketSampler {
 public:
  /// `rate_denominator` is the N of 1:N sampling (4096 in the paper);
  /// 1 means "record everything".
  explicit PacketSampler(std::uint32_t rate_denominator);

  [[nodiscard]] std::uint32_t rate_denominator() const noexcept { return n_; }

  /// Probability that any individual packet is sampled.
  [[nodiscard]] double probability() const noexcept { return 1.0 / n_; }

  /// Thins a true packet count: Binomial(true_packets, 1/N) draw.
  [[nodiscard]] std::uint64_t sample_packets(std::uint64_t true_packets,
                                             util::Rng& rng) const noexcept;

  /// Thins packets and scales bytes proportionally (NetFlow reports bytes of
  /// the sampled packets). Returns nullopt when no packet survives — the
  /// flow is absent from the records.
  struct Sampled {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
  };
  [[nodiscard]] std::optional<Sampled> sample_flow(std::uint64_t true_packets,
                                                   std::uint64_t true_bytes,
                                                   util::Rng& rng) const noexcept;

  /// Scales a sampled count back to an estimated true count (the paper's
  /// "estimated volumes calculated based on ... the sampling rate").
  [[nodiscard]] double estimate_true(double sampled) const noexcept {
    return sampled * static_cast<double>(n_);
  }

 private:
  std::uint32_t n_;
};

}  // namespace dm::netflow
