#include "netflow/window_aggregator.h"

#include <algorithm>
#include <tuple>

namespace dm::netflow {

std::optional<Direction> classify(const FlowRecord& record,
                                  const PrefixSet& cloud_space) noexcept {
  const bool src_cloud = cloud_space.contains(record.src_ip);
  const bool dst_cloud = cloud_space.contains(record.dst_ip);
  if (src_cloud == dst_cloud) return std::nullopt;
  return dst_cloud ? Direction::kInbound : Direction::kOutbound;
}

WindowedTrace::WindowedTrace(std::vector<FlowRecord> records,
                             std::vector<Direction> directions,
                             std::vector<VipMinuteStats> windows,
                             std::uint64_t unclassified_records)
    : records_(std::move(records)),
      directions_(std::move(directions)),
      windows_(std::move(windows)),
      unclassified_(unclassified_records) {}

std::span<const FlowRecord> WindowedTrace::records_of(
    const VipMinuteStats& window) const noexcept {
  return std::span<const FlowRecord>(records_).subspan(
      window.first_record, window.last_record - window.first_record);
}

std::span<const VipMinuteStats> WindowedTrace::series(IPv4 vip,
                                                      Direction dir) const noexcept {
  const auto key_less = [](const VipMinuteStats& w,
                           std::pair<IPv4, Direction> key) {
    if (w.vip != key.first) return w.vip < key.first;
    return static_cast<int>(w.direction) < static_cast<int>(key.second);
  };
  const auto key_greater = [](std::pair<IPv4, Direction> key,
                              const VipMinuteStats& w) {
    if (w.vip != key.first) return key.first < w.vip;
    return static_cast<int>(key.second) < static_cast<int>(w.direction);
  };
  const auto lo = std::lower_bound(windows_.begin(), windows_.end(),
                                   std::make_pair(vip, dir), key_less);
  const auto hi = std::upper_bound(lo, windows_.end(), std::make_pair(vip, dir),
                                   key_greater);
  return {lo, hi};
}

std::vector<IPv4> WindowedTrace::vips() const {
  std::vector<IPv4> out;
  for (const auto& w : windows_) {
    if (out.empty() || out.back() != w.vip) out.push_back(w.vip);
  }
  // windows_ is sorted by VIP, so adjacent dedup suffices.
  return out;
}

WindowedTrace aggregate_windows(std::vector<FlowRecord> records,
                                const PrefixSet& cloud_space,
                                const PrefixSet* blacklist) {
  // Orient every record; drop what the study cannot attribute to a VIP.
  std::vector<Direction> dirs;
  dirs.reserve(records.size());
  std::uint64_t unclassified = 0;
  {
    std::size_t keep = 0;
    for (std::size_t i = 0; i < records.size(); ++i) {
      const auto dir = classify(records[i], cloud_space);
      if (!dir) {
        ++unclassified;
        continue;
      }
      records[keep] = records[i];
      dirs.push_back(*dir);
      ++keep;
    }
    records.resize(keep);
  }

  // Sort records and directions together by (vip, direction, minute, remote).
  std::vector<std::uint32_t> order(records.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  const auto key_of = [&](std::uint32_t i) {
    const OrientedFlow f{&records[i], dirs[i]};
    return std::make_tuple(f.vip().value(), static_cast<int>(dirs[i]),
                           records[i].minute, f.remote_ip().value());
  };
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) { return key_of(a) < key_of(b); });

  std::vector<FlowRecord> sorted_records;
  std::vector<Direction> sorted_dirs;
  sorted_records.reserve(records.size());
  sorted_dirs.reserve(records.size());
  for (std::uint32_t i : order) {
    sorted_records.push_back(records[i]);
    sorted_dirs.push_back(dirs[i]);
  }

  // Single pass building windows; remote IPs arrive sorted within a window,
  // so distinct counts fall out of adjacent comparisons.
  std::vector<VipMinuteStats> windows;
  VipMinuteStats* current = nullptr;
  IPv4 last_remote, last_admin_remote, last_smtp_remote, last_blacklist_remote;
  bool any_remote = false, any_admin = false, any_smtp = false, any_blacklist = false;

  for (std::uint32_t i = 0; i < sorted_records.size(); ++i) {
    const FlowRecord& r = sorted_records[i];
    const OrientedFlow flow{&r, sorted_dirs[i]};
    const IPv4 vip = flow.vip();

    if (current == nullptr || current->vip != vip ||
        current->direction != flow.direction || current->minute != r.minute) {
      VipMinuteStats w;
      w.vip = vip;
      w.minute = r.minute;
      w.direction = flow.direction;
      w.first_record = i;
      w.last_record = i;
      windows.push_back(w);
      current = &windows.back();
      any_remote = any_admin = any_smtp = any_blacklist = false;
    }

    current->last_record = i + 1;
    current->packets += r.packets;
    current->bytes += r.bytes;
    current->flows += 1;

    switch (r.protocol) {
      case Protocol::kTcp:
        current->tcp_packets += r.packets;
        if (is_pure_syn(r.tcp_flags)) current->syn_packets += r.packets;
        if (is_null_scan(r.tcp_flags)) current->null_scan_packets += r.packets;
        if (is_xmas_scan(r.tcp_flags)) current->xmas_scan_packets += r.packets;
        if (is_bare_rst(r.tcp_flags)) current->bare_rst_packets += r.packets;
        break;
      case Protocol::kUdp:
        current->udp_packets += r.packets;
        // A DNS response travels *from* the resolver's port 53; for inbound
        // reflection that is the remote side, for the outbound case the VIP.
        if (r.src_port == ports::kDns) current->dns_response_packets += r.packets;
        break;
      case Protocol::kIcmp:
        current->icmp_packets += r.packets;
        break;
      case Protocol::kIpEncap:
        current->ipencap_packets += r.packets;
        break;
    }

    const IPv4 remote = flow.remote_ip();
    if (!any_remote || remote != last_remote) {
      current->unique_remote_ips += 1;
      last_remote = remote;
      any_remote = true;
    }

    const std::uint16_t service_port = flow.service_port();
    if (r.protocol == Protocol::kTcp && service_port == ports::kSmtp) {
      current->smtp_flows += 1;
      current->smtp_packets += r.packets;
      if (!any_smtp || remote != last_smtp_remote) {
        current->unique_smtp_remotes += 1;
        last_smtp_remote = remote;
        any_smtp = true;
      }
    }
    if (r.protocol == Protocol::kTcp && ports::is_remote_admin(service_port)) {
      current->remote_admin_flows += 1;
      current->admin_packets += r.packets;
      if (!any_admin || remote != last_admin_remote) {
        current->unique_admin_remotes += 1;
        last_admin_remote = remote;
        any_admin = true;
      }
    }
    if (r.protocol == Protocol::kTcp && ports::is_sql(service_port)) {
      current->sql_flows += 1;
      current->sql_packets += r.packets;
    }

    if (blacklist != nullptr && blacklist->contains(remote)) {
      current->blacklist_flows += 1;
      current->blacklist_packets += r.packets;
      if (!any_blacklist || remote != last_blacklist_remote) {
        current->unique_blacklist_remotes += 1;
        last_blacklist_remote = remote;
        any_blacklist = true;
      }
    }
  }

  return WindowedTrace(std::move(sorted_records), std::move(sorted_dirs),
                       std::move(windows), unclassified);
}

}  // namespace dm::netflow
