#include "netflow/window_aggregator.h"

#include <algorithm>
#include <span>
#include <tuple>

#include "exec/parallel.h"
#include "exec/radix_sort.h"
#include "util/malloc_tune.h"

namespace dm::netflow {

std::optional<Direction> classify(const FlowRecord& record,
                                  const PrefixSet& cloud_space) noexcept {
  const bool src_cloud = cloud_space.contains(record.src_ip);
  const bool dst_cloud = cloud_space.contains(record.dst_ip);
  if (src_cloud == dst_cloud) return std::nullopt;
  return dst_cloud ? Direction::kInbound : Direction::kOutbound;
}

WindowedTrace::WindowedTrace(RecordStore store,
                             std::vector<VipMinuteStats> windows,
                             std::uint64_t unclassified_records)
    : store_(std::move(store)),
      windows_(std::move(windows)),
      unclassified_(unclassified_records) {
  // windows_ is sorted by VIP, so adjacent dedup yields the distinct-VIP
  // list; computed once here because analysis passes ask repeatedly.
  for (const auto& w : windows_) {
    if (vips_.empty() || vips_.back() != w.vip) vips_.push_back(w.vip);
  }
}

WindowedTrace::WindowedTrace(ColumnarRecords columns,
                             std::vector<VipMinuteStats> windows,
                             std::uint64_t unclassified_records)
    : WindowedTrace(RecordStore(std::move(columns)), std::move(windows),
                    unclassified_records) {}

WindowedTrace::WindowedTrace(std::vector<FlowRecord> records,
                             std::vector<Direction> directions,
                             std::vector<VipMinuteStats> windows,
                             std::uint64_t unclassified_records)
    : WindowedTrace(
          [&] {
            ColumnarRecords columns;
            for (std::size_t i = 0; i < records.size(); ++i) {
              columns.push_back(records[i], directions[i]);
            }
            columns.shrink_to_fit();
            return columns;
          }(),
          std::move(windows), unclassified_records) {}

WindowedTrace::RecordRange WindowedTrace::records_of(
    const VipMinuteStats& window) const {
  return store_.range(window.first_record, window.last_record);
}

std::span<const VipMinuteStats> WindowedTrace::series(IPv4 vip,
                                                      Direction dir) const noexcept {
  const auto key_less = [](const VipMinuteStats& w,
                           std::pair<IPv4, Direction> key) {
    if (w.vip != key.first) return w.vip < key.first;
    return static_cast<int>(w.direction) < static_cast<int>(key.second);
  };
  const auto key_greater = [](std::pair<IPv4, Direction> key,
                              const VipMinuteStats& w) {
    if (w.vip != key.first) return key.first < w.vip;
    return static_cast<int>(key.second) < static_cast<int>(w.direction);
  };
  const auto lo = std::lower_bound(windows_.begin(), windows_.end(),
                                   std::make_pair(vip, dir), key_less);
  const auto hi = std::upper_bound(lo, windows_.end(), std::make_pair(vip, dir),
                                   key_greater);
  return {lo, hi};
}

namespace {

/// The canonical record ordering, packed for cheap comparisons:
///   k0 = (vip, direction), k1 = minute (sign-bias mapped), and
///   k2 = (remote ip, arrival index). The arrival-index tie-break makes the
/// order a strict total order, so any parallel merge of sorted runs yields
/// the one unique permutation — the root of thread-count invariance.
struct SortKey {
  std::uint64_t k0;
  std::uint64_t k1;
  std::uint64_t k2;

  [[nodiscard]] bool window_equal(const SortKey& o) const noexcept {
    return k0 == o.k0 && k1 == o.k1;
  }
  friend bool operator<(const SortKey& a, const SortKey& b) noexcept {
    return std::tie(a.k0, a.k1, a.k2) < std::tie(b.k0, b.k1, b.k2);
  }
};

SortKey key_of(const FlowRecord& r, Direction dir, std::size_t index) noexcept {
  const OrientedFlow f{&r, dir};
  return SortKey{
      (static_cast<std::uint64_t>(f.vip().value()) << 1) |
          static_cast<std::uint64_t>(dir),
      static_cast<std::uint64_t>(r.minute) ^ (std::uint64_t{1} << 63),
      (static_cast<std::uint64_t>(f.remote_ip().value()) << 32) |
          static_cast<std::uint64_t>(index)};
}

/// Single-pass window builder over one boundary-aligned range
/// [begin, end) of the canonically sorted records. Remote IPs arrive sorted
/// within a window, so distinct counts fall out of adjacent comparisons.
std::vector<VipMinuteStats> build_windows(std::span<const FlowRecord> records,
                                          std::span<const Direction> dirs,
                                          const PrefixSet* blacklist,
                                          std::size_t begin, std::size_t end) {
  std::vector<VipMinuteStats> windows;
  VipMinuteStats* current = nullptr;
  IPv4 last_remote, last_admin_remote, last_smtp_remote, last_blacklist_remote;
  bool any_remote = false, any_admin = false, any_smtp = false, any_blacklist = false;

  for (std::size_t i = begin; i < end; ++i) {
    const FlowRecord& r = records[i];
    const OrientedFlow flow{&r, dirs[i]};
    const IPv4 vip = flow.vip();

    if (current == nullptr || current->vip != vip ||
        current->direction != flow.direction || current->minute != r.minute) {
      VipMinuteStats w;
      w.vip = vip;
      w.minute = r.minute;
      w.direction = flow.direction;
      w.first_record = static_cast<std::uint32_t>(i);
      w.last_record = static_cast<std::uint32_t>(i);
      windows.push_back(w);
      current = &windows.back();
      any_remote = any_admin = any_smtp = any_blacklist = false;
    }

    current->last_record = static_cast<std::uint32_t>(i + 1);
    current->packets += r.packets;
    current->bytes += r.bytes;
    current->flows += 1;

    switch (r.protocol) {
      case Protocol::kTcp:
        current->tcp_packets += r.packets;
        if (is_pure_syn(r.tcp_flags)) current->syn_packets += r.packets;
        if (is_null_scan(r.tcp_flags)) current->null_scan_packets += r.packets;
        if (is_xmas_scan(r.tcp_flags)) current->xmas_scan_packets += r.packets;
        if (is_bare_rst(r.tcp_flags)) current->bare_rst_packets += r.packets;
        break;
      case Protocol::kUdp:
        current->udp_packets += r.packets;
        // A DNS response travels *from* the resolver's port 53; for inbound
        // reflection that is the remote side, for the outbound case the VIP.
        if (r.src_port == ports::kDns) current->dns_response_packets += r.packets;
        break;
      case Protocol::kIcmp:
        current->icmp_packets += r.packets;
        break;
      case Protocol::kIpEncap:
        current->ipencap_packets += r.packets;
        break;
    }

    const IPv4 remote = flow.remote_ip();
    if (!any_remote || remote != last_remote) {
      current->unique_remote_ips += 1;
      last_remote = remote;
      any_remote = true;
    }

    const std::uint16_t service_port = flow.service_port();
    if (r.protocol == Protocol::kTcp && service_port == ports::kSmtp) {
      current->smtp_flows += 1;
      current->smtp_packets += r.packets;
      if (!any_smtp || remote != last_smtp_remote) {
        current->unique_smtp_remotes += 1;
        last_smtp_remote = remote;
        any_smtp = true;
      }
    }
    if (r.protocol == Protocol::kTcp && ports::is_remote_admin(service_port)) {
      current->remote_admin_flows += 1;
      current->admin_packets += r.packets;
      if (!any_admin || remote != last_admin_remote) {
        current->unique_admin_remotes += 1;
        last_admin_remote = remote;
        any_admin = true;
      }
    }
    if (r.protocol == Protocol::kTcp && ports::is_sql(service_port)) {
      current->sql_flows += 1;
      current->sql_packets += r.packets;
    }

    if (blacklist != nullptr && blacklist->contains(remote)) {
      current->blacklist_flows += 1;
      current->blacklist_packets += r.packets;
      if (!any_blacklist || remote != last_blacklist_remote) {
        current->unique_blacklist_remotes += 1;
        last_blacklist_remote = remote;
        any_blacklist = true;
      }
    }
  }

  return windows;
}

}  // namespace

WindowedTrace aggregate_windows(std::vector<FlowRecord> records,
                                const PrefixSet& cloud_space,
                                const PrefixSet* blacklist,
                                exec::ThreadPool* pool,
                                const SpillConfig* spill) {
  util::tune_malloc_for_streaming();
  const std::size_t n = records.size();

  // Phase 1: orient every record (parallel — two longest-prefix lookups per
  // record), then compact serially so kept records retain arrival order.
  std::vector<std::uint8_t> cls(n);
  constexpr std::uint8_t kDrop = 2;
  exec::parallel_for_chunks(
      pool, n, [&](std::size_t lo, std::size_t hi, std::size_t) {
        for (std::size_t i = lo; i < hi; ++i) {
          const auto dir = classify(records[i], cloud_space);
          cls[i] = dir ? static_cast<std::uint8_t>(*dir) : kDrop;
        }
      });
  std::vector<Direction> dirs;
  dirs.reserve(n);
  std::uint64_t unclassified = 0;
  {
    std::size_t keep = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (cls[i] == kDrop) {
        ++unclassified;
        continue;
      }
      records[keep] = records[i];
      dirs.push_back(static_cast<Direction>(cls[i]));
      ++keep;
    }
    records.resize(keep);
  }
  const std::size_t kept = records.size();

  // Phase 2: canonical sort — parallel chunk sort + pairwise merges over
  // precomputed keys; the arrival-index tie-break makes the result unique.
  std::vector<SortKey> keys(kept);
  exec::parallel_for_chunks(
      pool, kept, [&](std::size_t lo, std::size_t hi, std::size_t) {
        for (std::size_t i = lo; i < hi; ++i) {
          keys[i] = key_of(records[i], dirs[i], i);
        }
      });
  exec::parallel_sort(pool, keys,
                      [](const SortKey& a, const SortKey& b) { return a < b; });

  // Phase 3: gather records/directions into canonical order.
  std::vector<FlowRecord> sorted_records(kept);
  std::vector<Direction> sorted_dirs(kept);
  exec::parallel_for_chunks(
      pool, kept, [&](std::size_t lo, std::size_t hi, std::size_t) {
        for (std::size_t i = lo; i < hi; ++i) {
          const auto src = static_cast<std::size_t>(keys[i].k2 & 0xffffffffULL);
          sorted_records[i] = records[src];
          sorted_dirs[i] = dirs[src];
        }
      });

  // Phase 4: build windows AND encode the columnar slice per shard, with
  // shard edges snapped forward to the next (vip, direction, minute)
  // boundary so no window (hence no run) straddles two shards;
  // concatenating shard outputs in index order reproduces the single-pass
  // result exactly.
  const auto aligned = [&](std::size_t i) {
    while (i > 0 && i < kept && keys[i - 1].window_equal(keys[i])) ++i;
    return i;
  };
  struct BuiltChunk {
    std::vector<VipMinuteStats> windows;
    ColumnarRecords columns;
  };
  const auto build_chunk = [&](std::size_t lo, std::size_t hi) {
    BuiltChunk chunk;
    const std::size_t b = aligned(lo);
    const std::size_t e = aligned(hi);
    chunk.windows = build_windows(sorted_records, sorted_dirs, blacklist, b, e);
    // Both outputs are held until the index-ordered merge; drop the
    // push_back growth overshoot so the barrier holds exact sizes.
    chunk.windows.shrink_to_fit();
    for (std::size_t i = b; i < e; ++i) {
      chunk.columns.push_back(sorted_records[i], sorted_dirs[i]);
    }
    chunk.columns.shrink_to_fit();
    return chunk;
  };

  if (spill != nullptr && spill->enabled()) {
    // Out-of-core merge: chunks stream through the SpillWriter in index
    // order (wave-bounded residency) instead of accumulating for the
    // barrier below. Window first/last_record indices are global already —
    // build_windows indexes the fully sorted arrays — so no rebase.
    SpillWriter writer(*spill);
    std::vector<VipMinuteStats> windows;
    const std::size_t workers =
        pool == nullptr ? 0 : static_cast<std::size_t>(pool->thread_count());
    const std::size_t wave = 2 * std::max<std::size_t>(workers, 1);
    exec::parallel_map_waves_n<BuiltChunk>(
        pool, kept, exec::chunk_count_for(pool, kept), wave, build_chunk,
        [&](std::size_t, BuiltChunk&& c) {
          windows.insert(windows.end(), c.windows.begin(), c.windows.end());
          writer.append(std::move(c.columns));
        });
    return WindowedTrace(std::move(writer).finish(), std::move(windows),
                         unclassified);
  }

  std::vector<BuiltChunk> chunks = exec::parallel_map_chunks<BuiltChunk>(
      pool, kept,
      [&](std::size_t lo, std::size_t hi) { return build_chunk(lo, hi); });

  std::size_t total_windows = 0;
  ColumnarRecords::BufferSizes total_bytes;
  for (const BuiltChunk& c : chunks) {
    total_windows += c.windows.size();
    const auto s = c.columns.buffer_sizes();
    total_bytes.header_bytes += s.header_bytes + 20;  // re-encoded first header
    total_bytes.payload_bytes += s.payload_bytes;
    total_bytes.runs += s.runs;
    total_bytes.checkpoints += s.checkpoints;
  }
  std::vector<VipMinuteStats> windows;
  windows.reserve(total_windows);
  ColumnarRecords columns;
  columns.reserve(total_bytes);
  for (BuiltChunk& c : chunks) {
    windows.insert(windows.end(), c.windows.begin(), c.windows.end());
    columns.append(std::move(c.columns));
    c = BuiltChunk();
  }
  return WindowedTrace(std::move(columns), std::move(windows), unclassified);
}

ShardWindows aggregate_shard(std::vector<FlowRecord> records,
                             const PrefixSet& cloud_space,
                             const PrefixSet* blacklist) {
  ShardWindows out;

  // Classify and compact in one serial pass; compaction is stable, so kept
  // records retain arrival order — the tie-break the canonical sort uses.
  bool packable = true;
  std::size_t keep = 0;
  std::vector<Direction> directions;
  directions.reserve(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto dir = classify(records[i], cloud_space);
    if (!dir) {
      ++out.unclassified;
      continue;
    }
    packable &= records[i].minute >= 0 &&
                records[i].minute < (util::Minute{1} << 31);
    records[keep] = records[i];
    directions.push_back(*dir);
    ++keep;
  }
  records.resize(keep);

  // Canonical sort. Generator minutes always fit 31 bits, so
  // (vip, dir, minute, remote) packs into 128 bits and an LSD radix sort
  // replaces the comparison sort — the arrival-index tie-break costs
  // nothing because the radix sort is stable and the permutation starts in
  // arrival order. Arbitrary ingested minutes fall back to the comparison
  // order (identical ordering — the packed key is a monotone reencoding of
  // SortKey for in-range minutes).
  std::vector<FlowRecord> sorted_records(keep);
  std::vector<Direction> sorted_dirs(keep);
  if (packable) {
    std::vector<exec::Key128> keys(keep);
    for (std::size_t i = 0; i < keep; ++i) {
      const OrientedFlow f{&records[i], directions[i]};
      keys[i] = exec::Key128{
          (static_cast<std::uint64_t>(f.vip().value()) << 32) |
              (static_cast<std::uint64_t>(directions[i]) << 31) |
              static_cast<std::uint64_t>(records[i].minute),
          static_cast<std::uint64_t>(f.remote_ip().value()) << 32};
    }
    std::vector<std::uint32_t> order(keep);
    for (std::size_t i = 0; i < keep; ++i) {
      order[i] = static_cast<std::uint32_t>(i);
    }
    exec::radix_sort(order,
                     [&](std::uint32_t i) -> const exec::Key128& { return keys[i]; });
    for (std::size_t i = 0; i < keep; ++i) {
      const std::size_t src = order[i];
      sorted_records[i] = records[src];
      sorted_dirs[i] = directions[src];
    }
  } else {
    std::vector<SortKey> keys(keep);
    for (std::size_t i = 0; i < keep; ++i) {
      keys[i] = key_of(records[i], directions[i], i);
    }
    std::sort(keys.begin(), keys.end());
    for (std::size_t i = 0; i < keep; ++i) {
      const auto src = static_cast<std::size_t>(keys[i].k2 & 0xffffffffULL);
      sorted_records[i] = records[src];
      sorted_dirs[i] = directions[src];
    }
  }
  // Free the arrival-order copies before encoding; only the canonical slice
  // is still needed.
  records = std::vector<FlowRecord>();
  directions = std::vector<Direction>();

  out.windows = build_windows(sorted_records, sorted_dirs, blacklist, 0, keep);
  // Shard outputs accumulate until the caller's merge; hold exact sizes,
  // not push_back growth overshoot.
  out.windows.shrink_to_fit();
  // Encode the canonical slice into the shard-local columnar store — the
  // raw arrays die with this scope, so only the compressed form leaves the
  // shard.
  for (std::size_t i = 0; i < keep; ++i) {
    out.columns.push_back(sorted_records[i], sorted_dirs[i]);
  }
  out.columns.shrink_to_fit();
  return out;
}

}  // namespace dm::netflow
