#include "netflow/window_aggregator.h"

#include <algorithm>
#include <span>
#include <tuple>

#include "exec/parallel.h"
#include "exec/radix_sort.h"
#include "util/malloc_tune.h"

namespace dm::netflow {

std::optional<Direction> classify(const FlowRecord& record,
                                  const PrefixSet& cloud_space) noexcept {
  const bool src_cloud = cloud_space.contains(record.src_ip);
  const bool dst_cloud = cloud_space.contains(record.dst_ip);
  if (src_cloud == dst_cloud) return std::nullopt;
  return dst_cloud ? Direction::kInbound : Direction::kOutbound;
}

WindowedTrace::WindowedTrace(RecordStore store,
                             std::vector<VipMinuteStats> windows,
                             std::uint64_t unclassified_records)
    : store_(std::move(store)),
      windows_(std::move(windows)),
      unclassified_(unclassified_records) {
  // windows_ is sorted by VIP, so adjacent dedup yields the distinct-VIP
  // list; computed once here because analysis passes ask repeatedly.
  for (const auto& w : windows_) {
    if (vips_.empty() || vips_.back() != w.vip) vips_.push_back(w.vip);
  }
}

WindowedTrace::WindowedTrace(ColumnarRecords columns,
                             std::vector<VipMinuteStats> windows,
                             std::uint64_t unclassified_records)
    : WindowedTrace(RecordStore(std::move(columns)), std::move(windows),
                    unclassified_records) {}

WindowedTrace::WindowedTrace(std::vector<FlowRecord> records,
                             std::vector<Direction> directions,
                             std::vector<VipMinuteStats> windows,
                             std::uint64_t unclassified_records)
    : WindowedTrace(
          [&] {
            ColumnarRecords columns;
            for (std::size_t i = 0; i < records.size(); ++i) {
              columns.push_back(records[i], directions[i]);
            }
            columns.shrink_to_fit();
            return columns;
          }(),
          std::move(windows), unclassified_records) {}

WindowedTrace::RecordRange WindowedTrace::records_of(
    const VipMinuteStats& window) const {
  return store_.range(window.first_record, window.last_record);
}

std::span<const VipMinuteStats> WindowedTrace::series(IPv4 vip,
                                                      Direction dir) const noexcept {
  const auto key_less = [](const VipMinuteStats& w,
                           std::pair<IPv4, Direction> key) {
    if (w.vip != key.first) return w.vip < key.first;
    return static_cast<int>(w.direction) < static_cast<int>(key.second);
  };
  const auto key_greater = [](std::pair<IPv4, Direction> key,
                              const VipMinuteStats& w) {
    if (w.vip != key.first) return key.first < w.vip;
    return static_cast<int>(key.second) < static_cast<int>(w.direction);
  };
  const auto lo = std::lower_bound(windows_.begin(), windows_.end(),
                                   std::make_pair(vip, dir), key_less);
  const auto hi = std::upper_bound(lo, windows_.end(), std::make_pair(vip, dir),
                                   key_greater);
  return {lo, hi};
}

namespace {

/// One-entry longest-prefix-membership memo. classify() pays two
/// PrefixSet::contains() walks per record, but the generator emits episode
/// bursts whose cloud-side endpoint is constant for long stretches, so the
/// per-side repeat rate is high. Verdicts are a pure function of the IP, so
/// memoization cannot change any output — it only skips redundant walks.
class MembershipMemo {
 public:
  /// `set` may be null only if contains() is never called.
  explicit MembershipMemo(const PrefixSet* set) noexcept : set_(set) {}

  [[nodiscard]] bool contains(IPv4 ip) noexcept {
    if (!valid_ || ip != ip_) {
      ip_ = ip;
      valid_ = true;
      verdict_ = set_->contains(ip);
    }
    return verdict_;
  }

 private:
  const PrefixSet* set_;
  IPv4 ip_;
  bool verdict_ = false;
  bool valid_ = false;
};

/// classify() with per-side memos — bitwise-identical verdicts.
std::optional<Direction> classify_memo(const FlowRecord& record,
                                       MembershipMemo& src_cloud,
                                       MembershipMemo& dst_cloud) noexcept {
  const bool src_in = src_cloud.contains(record.src_ip);
  const bool dst_in = dst_cloud.contains(record.dst_ip);
  if (src_in == dst_in) return std::nullopt;
  return dst_in ? Direction::kInbound : Direction::kOutbound;
}

/// The canonical record ordering, packed for cheap comparisons:
///   k0 = (vip, direction), k1 = minute (sign-bias mapped), and
///   k2 = (remote ip, arrival index). The arrival-index tie-break makes the
/// order a strict total order, so any parallel merge of sorted runs yields
/// the one unique permutation — the root of thread-count invariance.
struct SortKey {
  std::uint64_t k0;
  std::uint64_t k1;
  std::uint64_t k2;

  [[nodiscard]] bool window_equal(const SortKey& o) const noexcept {
    return k0 == o.k0 && k1 == o.k1;
  }
  friend bool operator<(const SortKey& a, const SortKey& b) noexcept {
    return std::tie(a.k0, a.k1, a.k2) < std::tie(b.k0, b.k1, b.k2);
  }
};

SortKey key_of(const FlowRecord& r, Direction dir, std::size_t index) noexcept {
  const OrientedFlow f{&r, dir};
  return SortKey{
      (static_cast<std::uint64_t>(f.vip().value()) << 1) |
          static_cast<std::uint64_t>(dir),
      static_cast<std::uint64_t>(r.minute) ^ (std::uint64_t{1} << 63),
      (static_cast<std::uint64_t>(f.remote_ip().value()) << 32) |
          static_cast<std::uint64_t>(index)};
}

/// Single-pass window builder over a just-encoded canonical slice,
/// consuming SoA decode blocks (DecodedBlock) instead of one record at a
/// time. A window boundary can only occur at a run start — runs have
/// constant (vip, direction, minute) by construction — so the boundary
/// check runs once per run, flagged by the block's run_mask, not once per
/// record. Remote IPs arrive sorted within a window, so distinct counts
/// fall out of adjacent comparisons exactly as in the record-wise builder
/// this replaces (the Cursor-based reference in the differential tests).
/// `index_base` rebases first/last_record into the caller's global index
/// space; the view's own records always start at a window boundary.
std::vector<VipMinuteStats> build_windows_blocks(const ColumnarView& view,
                                                 const PrefixSet* blacklist,
                                                 std::size_t index_base) {
  std::vector<VipMinuteStats> windows;
  // Every window starts at a run boundary, and nearly every run opens a
  // window (adjacent equal-key runs only arise from mid-run shard cuts), so
  // the run count is a tight capacity bound — reserving it avoids doubling
  // reallocs of a vector of ~184-byte structs.
  windows.reserve(view.runs);
  VipMinuteStats* current = nullptr;
  std::uint32_t last_remote = 0, last_admin_remote = 0, last_smtp_remote = 0,
                last_blacklist_remote = 0;
  bool any_remote = false, any_admin = false, any_smtp = false,
       any_blacklist = false;
  // Blacklist membership is a pure function of the remote IP, and remotes
  // repeat in adjacent records (sorted within a window) — memoize the walk.
  MembershipMemo blacklisted(blacklist);

  ColumnarRecords::BlockCursor cursor;
  cursor.reset(view, view.records);
  DecodedBlock block;
  while (cursor.next(block)) {
    std::size_t i = 0;
    while (i < block.count) {
      // The block decomposes into run segments — maximal stretches with no
      // run start strictly after their first record. (vip, direction,
      // minute) are constant per run, so the window-boundary test runs once
      // per segment and last_record advances once per segment, not once per
      // record.
      const std::uint64_t later_starts =
          i + 1 < 64 ? block.run_mask & ~((std::uint64_t{2} << i) - 1) : 0;
      const std::size_t seg_end =
          later_starts != 0
              ? static_cast<std::size_t>(std::countr_zero(later_starts))
              : block.count;
      if (((block.run_mask >> i) & 1) != 0 &&
          (current == nullptr || current->vip.value() != block.vip[i] ||
           current->direction != static_cast<Direction>(block.direction[i]) ||
           current->minute != block.minute[i])) {
        // Construct in place: a stack temp would zero-init and then copy
        // all ~184 bytes a second time on push_back.
        current = &windows.emplace_back();
        current->vip = IPv4(block.vip[i]);
        current->minute = block.minute[i];
        current->direction = static_cast<Direction>(block.direction[i]);
        current->first_record =
            static_cast<std::uint32_t>(index_base + block.base_index + i);
        current->last_record = current->first_record;
        any_remote = any_admin = any_smtp = any_blacklist = false;
      }
      current->last_record =
          static_cast<std::uint32_t>(index_base + block.base_index + seg_end);

      for (; i < seg_end; ++i) {
        const std::uint32_t packets = block.packets[i];
        current->packets += packets;
        current->bytes += block.bytes[i];
        current->flows += 1;

        const auto protocol = static_cast<Protocol>(block.protocol[i]);
        switch (protocol) {
          case Protocol::kTcp: {
            current->tcp_packets += packets;
            const auto flags = static_cast<TcpFlags>(block.tcp_flags[i]);
            if (is_pure_syn(flags)) current->syn_packets += packets;
            if (is_null_scan(flags)) current->null_scan_packets += packets;
            if (is_xmas_scan(flags)) current->xmas_scan_packets += packets;
            if (is_bare_rst(flags)) current->bare_rst_packets += packets;
            break;
          }
          case Protocol::kUdp:
            current->udp_packets += packets;
            // A DNS response travels *from* the resolver's port 53; for
            // inbound reflection that is the remote side, for the outbound
            // case the VIP.
            if (block.src_port[i] == ports::kDns) {
              current->dns_response_packets += packets;
            }
            break;
          case Protocol::kIcmp:
            current->icmp_packets += packets;
            break;
          case Protocol::kIpEncap:
            current->ipencap_packets += packets;
            break;
        }

        const std::uint32_t remote = block.remote[i];
        if (!any_remote || remote != last_remote) {
          current->unique_remote_ips += 1;
          last_remote = remote;
          any_remote = true;
        }

        // The port identifying the targeted application is the wire
        // destination port regardless of direction (OrientedFlow::service_port).
        const std::uint16_t service_port = block.dst_port[i];
        if (protocol == Protocol::kTcp && service_port == ports::kSmtp) {
          current->smtp_flows += 1;
          current->smtp_packets += packets;
          if (!any_smtp || remote != last_smtp_remote) {
            current->unique_smtp_remotes += 1;
            last_smtp_remote = remote;
            any_smtp = true;
          }
        }
        if (protocol == Protocol::kTcp && ports::is_remote_admin(service_port)) {
          current->remote_admin_flows += 1;
          current->admin_packets += packets;
          if (!any_admin || remote != last_admin_remote) {
            current->unique_admin_remotes += 1;
            last_admin_remote = remote;
            any_admin = true;
          }
        }
        if (protocol == Protocol::kTcp && ports::is_sql(service_port)) {
          current->sql_flows += 1;
          current->sql_packets += packets;
        }

        if (blacklist != nullptr && blacklisted.contains(IPv4(remote))) {
          current->blacklist_flows += 1;
          current->blacklist_packets += packets;
          if (!any_blacklist || remote != last_blacklist_remote) {
            current->unique_blacklist_remotes += 1;
            last_blacklist_remote = remote;
            any_blacklist = true;
          }
        }
      }
    }
  }

  return windows;
}

/// Gather distance for the permuted read in the encode loop: far enough to
/// cover DRAM latency at ~1 record decoded per few ns, near enough to stay
/// inside the already-sorted locality window.
constexpr std::size_t kGatherPrefetch = 8;

}  // namespace

WindowedTrace aggregate_windows(std::vector<FlowRecord> records,
                                const PrefixSet& cloud_space,
                                const PrefixSet* blacklist,
                                exec::ThreadPool* pool,
                                const SpillConfig* spill) {
  util::tune_malloc_for_streaming();
  const std::size_t n = records.size();

  // Phase 1: orient every record (parallel — at most two longest-prefix
  // lookups per record, memoized per side within a chunk), then compact
  // serially so kept records retain arrival order.
  std::vector<std::uint8_t> cls(n);
  constexpr std::uint8_t kDrop = 2;
  exec::parallel_for_chunks(
      pool, n, [&](std::size_t lo, std::size_t hi, std::size_t) {
        MembershipMemo src_cloud(&cloud_space);
        MembershipMemo dst_cloud(&cloud_space);
        for (std::size_t i = lo; i < hi; ++i) {
          const auto dir = classify_memo(records[i], src_cloud, dst_cloud);
          cls[i] = dir ? static_cast<std::uint8_t>(*dir) : kDrop;
        }
      });
  std::vector<Direction> dirs;
  dirs.reserve(n);
  std::uint64_t unclassified = 0;
  {
    std::size_t keep = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (cls[i] == kDrop) {
        ++unclassified;
        continue;
      }
      if (keep != i) records[keep] = records[i];
      dirs.push_back(static_cast<Direction>(cls[i]));
      ++keep;
    }
    records.resize(keep);
  }
  const std::size_t kept = records.size();

  // Phase 2: canonical sort — parallel chunk sort + pairwise merges over
  // precomputed keys; the arrival-index tie-break makes the result unique.
  std::vector<SortKey> keys(kept);
  exec::parallel_for_chunks(
      pool, kept, [&](std::size_t lo, std::size_t hi, std::size_t) {
        for (std::size_t i = lo; i < hi; ++i) {
          keys[i] = key_of(records[i], dirs[i], i);
        }
      });
  exec::parallel_sort(pool, keys,
                      [](const SortKey& a, const SortKey& b) { return a < b; });

  // Phase 3: encode the columnar slice AND build windows per shard — the
  // gather into a sorted array-of-structs copy is gone; each chunk encodes
  // straight through the sort permutation (keys[i].k2 carries the source
  // index) and then block-decodes its own just-encoded columns to build the
  // windows. Shard edges are snapped forward to the next
  // (vip, direction, minute) boundary so no window (hence no run) straddles
  // two shards; concatenating shard outputs in index order reproduces the
  // single-pass result exactly.
  const auto aligned = [&](std::size_t i) {
    while (i > 0 && i < kept && keys[i - 1].window_equal(keys[i])) ++i;
    return i;
  };
  struct BuiltChunk {
    std::vector<VipMinuteStats> windows;
    ColumnarRecords columns;
  };
  const auto build_chunk = [&](std::size_t lo, std::size_t hi) {
    BuiltChunk chunk;
    const std::size_t b = aligned(lo);
    const std::size_t e = aligned(hi);
    for (std::size_t i = b; i < e; ++i) {
      if (i + kGatherPrefetch < e) {
        const auto ahead = static_cast<std::size_t>(
            keys[i + kGatherPrefetch].k2 & 0xffffffffULL);
        exec::prefetch_read(&records[ahead]);
      }
      const auto src = static_cast<std::size_t>(keys[i].k2 & 0xffffffffULL);
      chunk.columns.push_back(records[src], dirs[src]);
    }
    // Both outputs are held until the index-ordered merge; drop the
    // push_back growth overshoot so the barrier holds exact sizes.
    chunk.columns.shrink_to_fit();
    chunk.windows = build_windows_blocks(chunk.columns.view(), blacklist, b);
    chunk.windows.shrink_to_fit();
    return chunk;
  };

  if (spill != nullptr && spill->enabled()) {
    // Out-of-core merge: chunks stream through the SpillWriter in index
    // order (wave-bounded residency) instead of accumulating for the
    // barrier below. Window first/last_record indices are global already —
    // build_windows indexes the fully sorted arrays — so no rebase.
    SpillWriter writer(*spill);
    std::vector<VipMinuteStats> windows;
    const std::size_t workers =
        pool == nullptr ? 0 : static_cast<std::size_t>(pool->thread_count());
    const std::size_t wave = 2 * std::max<std::size_t>(workers, 1);
    exec::parallel_map_waves_n<BuiltChunk>(
        pool, kept, exec::chunk_count_for(pool, kept), wave, build_chunk,
        [&](std::size_t, BuiltChunk&& c) {
          windows.insert(windows.end(), c.windows.begin(), c.windows.end());
          writer.append(std::move(c.columns));
        });
    return WindowedTrace(std::move(writer).finish(), std::move(windows),
                         unclassified);
  }

  std::vector<BuiltChunk> chunks = exec::parallel_map_chunks<BuiltChunk>(
      pool, kept,
      [&](std::size_t lo, std::size_t hi) { return build_chunk(lo, hi); });

  std::size_t total_windows = 0;
  ColumnarRecords::BufferSizes total_bytes;
  for (const BuiltChunk& c : chunks) {
    total_windows += c.windows.size();
    const auto s = c.columns.buffer_sizes();
    total_bytes.header_bytes += s.header_bytes + 20;  // re-encoded first header
    total_bytes.payload_bytes += s.payload_bytes;
    total_bytes.runs += s.runs;
    total_bytes.checkpoints += s.checkpoints;
  }
  std::vector<VipMinuteStats> windows;
  windows.reserve(total_windows);
  ColumnarRecords columns;
  columns.reserve(total_bytes);
  for (BuiltChunk& c : chunks) {
    windows.insert(windows.end(), c.windows.begin(), c.windows.end());
    columns.append(std::move(c.columns));
    c = BuiltChunk();
  }
  return WindowedTrace(std::move(columns), std::move(windows), unclassified);
}

ShardWindows aggregate_shard(std::vector<FlowRecord> records,
                             const PrefixSet& cloud_space,
                             const PrefixSet* blacklist) {
  ShardWindows out;

  // Classify, compact, and build the packed sort words in one serial pass;
  // compaction is stable, so kept records retain arrival order — the
  // tie-break the canonical sort uses. The per-side memos skip redundant
  // prefix walks across episode bursts. Fusing the key build here saves a
  // second full sweep over the record array; the speculative hi/remote
  // words are simply abandoned if a record turns out not packable (the
  // SortKey fallback below rebuilds from records — identical ordering).
  constexpr std::size_t kMaxRankedVips = 32;
  constexpr util::Minute kMaxPackedMinute = util::Minute{1} << 26;
  bool packable = true;
  std::size_t keep = 0;
  std::vector<Direction> directions;
  directions.reserve(records.size());
  std::vector<std::uint64_t> hi(records.size());
  std::vector<std::uint32_t> remote(records.size());
  std::uint32_t vips[kMaxRankedVips];
  std::size_t vip_count = 0;
  std::uint32_t last_vip = 0;
  util::Minute max_minute = 0;
  MembershipMemo src_cloud(&cloud_space);
  MembershipMemo dst_cloud(&cloud_space);
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto dir = classify_memo(records[i], src_cloud, dst_cloud);
    if (!dir) {
      ++out.unclassified;
      continue;
    }
    packable &= records[i].minute >= 0 &&
                records[i].minute < (util::Minute{1} << 31);
    // Unclassified records are rare, so keep usually equals i — skip the
    // 40-byte self-assignment in that case.
    if (keep != i) records[keep] = records[i];
    directions.push_back(*dir);
    const OrientedFlow f{&records[keep], *dir};
    const std::uint32_t vip = f.vip().value();
    hi[keep] = (static_cast<std::uint64_t>(vip) << 32) |
               (static_cast<std::uint64_t>(*dir) << 31) |
               static_cast<std::uint64_t>(
                   static_cast<std::uint32_t>(records[keep].minute));
    remote[keep] = f.remote_ip().value();
    max_minute = std::max(max_minute, records[keep].minute);
    // Arrival order keeps each VIP constant for long stretches, so the
    // repeat check skips nearly every ranked-set probe.
    if (vip_count <= kMaxRankedVips && !(keep > 0 && vip == last_vip)) {
      auto* const end = vips + vip_count;
      const auto* at = std::lower_bound(vips, end, vip);
      if (at == end || *at != vip) {
        if (vip_count == kMaxRankedVips) {
          ++vip_count;  // overflow marker: too many VIPs to rank
        } else {
          const auto slot = static_cast<std::size_t>(at - vips);
          for (std::size_t j = vip_count; j > slot; --j) vips[j] = vips[j - 1];
          vips[slot] = vip;
          ++vip_count;
        }
      }
    }
    last_vip = vip;
    ++keep;
  }
  records.resize(keep);

  // Canonical sort, computed as a permutation only — the sorted
  // array-of-structs copy is gone; the encode loop below reads through the
  // permutation. Generator minutes always fit 31 bits, so (vip, dir,
  // minute) packs into 64 bits, the remote into 32, and two stable LSD
  // radix passes — by remote, then by the packed high word — produce
  // exactly the order the old single 128-bit-key sort did: stable LSD at
  // word granularity is lexicographic (hi, remote, arrival), and the
  // arrival-index tie-break costs nothing because the permutation starts in
  // arrival order. Splitting the words halves the key traffic the sort
  // moves.
  //
  // A shard usually qualifies for a tighter high word: it owns a narrow
  // VIP slice (few distinct VIPs) and realistic horizons stay far under
  // 2^26 minutes (~127 years), so
  //   (vip rank : 5 | direction : 1 | minute : 26)
  // fits 32 bits and is a monotone reencoding of the full high word — rank
  // order equals VIP address order by construction. Both radix phases then
  // sort u32 keys instead of one sorting a u64, which cuts the scatter
  // traffic by a third and lets the histogram skip the minute bytes a
  // short horizon leaves constant. Shards with too many VIPs or ingested
  // out-of-range minutes keep the u64 high word (identical ordering —
  // every packed key is a monotone reencoding of SortKey in its range).
  std::vector<std::uint32_t> order(keep);
  for (std::size_t i = 0; i < keep; ++i) {
    order[i] = static_cast<std::uint32_t>(i);
  }
  if (packable) {
    if (vip_count <= kMaxRankedVips && max_minute < kMaxPackedMinute) {
      std::vector<std::uint32_t> hi32(keep);
      std::uint32_t memo_vip = vip_count > 0 ? vips[0] : 0;
      std::uint32_t memo_rank = 0;
      for (std::size_t i = 0; i < keep; ++i) {
        const auto vip = static_cast<std::uint32_t>(hi[i] >> 32);
        if (vip != memo_vip) {
          memo_vip = vip;
          memo_rank = static_cast<std::uint32_t>(
              std::lower_bound(vips, vips + vip_count, vip) - vips);
        }
        const std::uint32_t rank = memo_rank;
        hi32[i] = (rank << 27) |
                  (static_cast<std::uint32_t>(hi[i] >> 31) & 1u) << 26 |
                  static_cast<std::uint32_t>(hi[i] & (kMaxPackedMinute - 1));
      }
      exec::radix_sort(order, [&](std::uint32_t i) { return remote[i]; });
      exec::radix_sort(order, [&](std::uint32_t i) { return hi32[i]; });
    } else {
      exec::radix_sort(order, [&](std::uint32_t i) { return remote[i]; });
      exec::radix_sort(order, [&](std::uint32_t i) { return hi[i]; });
    }
  } else {
    std::vector<SortKey> keys(keep);
    for (std::size_t i = 0; i < keep; ++i) {
      keys[i] = key_of(records[i], directions[i], i);
    }
    std::sort(keys.begin(), keys.end());
    for (std::size_t i = 0; i < keep; ++i) {
      order[i] = static_cast<std::uint32_t>(keys[i].k2 & 0xffffffffULL);
    }
  }

  // Gather-encode through the permutation: the randomly ordered reads
  // stream straight into the columnar encoder, software-prefetched a few
  // records ahead to hide the permuted-access latency. Only the compressed
  // form leaves the shard.
  for (std::size_t i = 0; i < keep; ++i) {
    if (i + kGatherPrefetch < keep) {
      exec::prefetch_read(&records[order[i + kGatherPrefetch]]);
    }
    const std::size_t src = order[i];
    out.columns.push_back(records[src], directions[src]);
  }
  out.columns.shrink_to_fit();
  // Free the arrival-order copies before the window build.
  records = std::vector<FlowRecord>();
  directions = std::vector<Direction>();
  order = std::vector<std::uint32_t>();

  // Feature extraction consumes the shard's own encoded slice in SoA
  // blocks — the decode kernel, not the raw arrays, is the hot path.
  out.windows = build_windows_blocks(out.columns.view(), blacklist, 0);
  // Shard outputs accumulate until the caller's merge; hold exact sizes,
  // not push_back growth overshoot.
  out.windows.shrink_to_fit();
  return out;
}

}  // namespace dm::netflow
