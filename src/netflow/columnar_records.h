// Columnar compressed storage for the aggregated trace's oriented records.
//
// The canonical record order — (vip, direction, minute, remote, arrival
// index) — makes the kept-record stream extremely regular: (vip, direction,
// minute) is constant across each window's run of records and remote IPs
// ascend within a run. ColumnarRecords exploits that:
//
//   headers_        one entry per run: zigzag-varint delta of the packed
//                   (vip << 1 | direction) key and of the minute, each
//                   relative to the previous run (wraparound arithmetic, so
//                   any ingested minute round-trips exactly).
//   payload_        per record: the remote IP (absolute varint at the run
//                   start, zigzag delta inside the run) followed by varint
//                   src_port, dst_port, protocol, tcp_flags, packets, bytes.
//   run_starts_     record index of each run's first record (run lengths are
//                   implicit); payload_offs_ holds each run's payload byte
//                   offset. Together they give O(log runs) seek to any
//                   window's first_record.
//   checkpoints_    absolute (key, minute, header offset) every
//                   kCheckpointRuns runs, so a seek decodes at most that
//                   many run headers before streaming.
//
// At paper scale this keeps ~21M records in ~0.3 GiB where the
// array-of-structs form (40-byte FlowRecord + 1-byte Direction per record)
// needed ~0.85 GiB, and decoding is a zero-allocation forward scan over
// dense bytes. See DESIGN.md §5c for the full layout rationale.
//
// Stores are built shard-locally and concatenated in shard order via
// append(); the *decoded* sequence is byte-identical for any thread count
// (the internal buffer layout may differ — e.g. checkpoint spacing — which
// is why equivalence is defined on decoded records, windows, and exhibit
// outputs, all locked down by tests).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <vector>

#include "netflow/flow_record.h"
#include "netflow/varint.h"

namespace dm::netflow {

/// Absolute decode state captured every kCheckpointRuns runs so a seek
/// decodes a bounded number of run headers. Fixed-width POD — segment files
/// store checkpoint arrays verbatim (see segment_store.h).
struct ColumnarCheckpoint {
  std::uint64_t run = 0;          ///< run this checkpoint describes
  std::uint64_t next_header = 0;  ///< headers offset just past its header
  std::uint64_t key = 0;          ///< absolute (vip << 1) | direction
  std::uint64_t minute = 0;       ///< absolute minute (wraparound u64)
};

static_assert(sizeof(ColumnarCheckpoint) == 32,
              "segment files store checkpoints verbatim");

/// Non-owning view over one encoded store: the five arrays plus the record
/// count. A Cursor decodes through a view, so the same streaming decoder
/// serves both the resident vectors (ColumnarRecords::view()) and the
/// memory-mapped segment files of the spill tier. Pointers are borrowed —
/// valid only while the backing store is alive and unmodified.
struct ColumnarView {
  const std::uint8_t* headers = nullptr;
  const std::uint8_t* payload = nullptr;
  const std::uint32_t* run_starts = nullptr;
  const std::uint64_t* payload_offs = nullptr;
  const ColumnarCheckpoint* checkpoints = nullptr;
  std::size_t runs = 0;
  std::size_t checkpoint_count = 0;
  std::size_t records = 0;
  // Encoded byte extents. The BlockCursor's SWAR kernels read 8-byte words,
  // so they need to know where each buffer ends to budget kSwarRecordSlack
  // and fall back to the scalar decoder near the tail. Zero extents are
  // safe (every decode takes the scalar path) but defeat the fast path.
  std::size_t header_bytes = 0;
  std::size_t payload_bytes = 0;
};

/// One SoA batch of up to kCapacity decoded records — the unit the block
/// decode pipeline hands to aggregation and detection. The run-constant
/// columns (vip, direction, minute) are expanded per row so consumers index
/// them uniformly; run_mask marks which rows begin a run so window builders
/// can skip per-row boundary checks. Blocks are caller-owned scratch,
/// reused across next() calls (~2.3 KiB, L1-resident); every field of rows
/// [0, count) is overwritten by each fill, so reuse leaks nothing across
/// calls.
struct DecodedBlock {
  static constexpr std::size_t kCapacity = 64;

  std::uint32_t vip[kCapacity];
  std::uint8_t direction[kCapacity];  ///< Direction as its underlying value
  util::Minute minute[kCapacity];
  std::uint32_t remote[kCapacity];
  std::uint16_t src_port[kCapacity];
  std::uint16_t dst_port[kCapacity];
  std::uint8_t protocol[kCapacity];   ///< Protocol as its underlying value
  std::uint8_t tcp_flags[kCapacity];  ///< TcpFlags as its underlying value
  std::uint32_t packets[kCapacity];
  std::uint64_t bytes[kCapacity];

  std::size_t count = 0;       ///< rows decoded by the last next()
  std::size_t base_index = 0;  ///< view-global record index of row 0
  std::uint64_t run_mask = 0;  ///< bit i set iff row i is its run's first record
};

class ColumnarRecords {
 public:
  class Cursor;
  class BlockCursor;
  class Range;

  ColumnarRecords() = default;

  /// Appends one oriented record. Consecutive records sharing
  /// (vip, direction, minute) extend the current run; the canonical sort
  /// makes runs long and remote deltas small, but any sequence — sorted or
  /// not — round-trips exactly.
  void push_back(const FlowRecord& record, Direction direction);

  /// Appends another store's records after this one's — the shard-order
  /// concatenation step. Indices and offsets are rebased in bulk; only the
  /// first run header of `other` is re-encoded. `other` is left empty.
  void append(ColumnarRecords&& other);

  void shrink_to_fit();

  /// Current buffer sizes — summed by merge loops to pre-size the
  /// destination via reserve() so shard appends never geometrically
  /// over-allocate the multi-hundred-MiB payload buffer.
  struct BufferSizes {
    std::uint64_t header_bytes = 0;
    std::uint64_t payload_bytes = 0;
    std::size_t runs = 0;
    std::size_t checkpoints = 0;
  };
  [[nodiscard]] BufferSizes buffer_sizes() const noexcept;

  /// Reserves room for `extra` on top of the current contents. Appending a
  /// store re-encodes its first run header (≤ 20 bytes); callers folding N
  /// stores add that slack per store.
  void reserve(const BufferSizes& extra);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t run_count() const noexcept {
    return run_starts_.size();
  }

  /// Resident bytes of the encoded representation (payload + run headers +
  /// seek index) — the bench's encoded-bytes/record numerator.
  [[nodiscard]] std::uint64_t encoded_bytes() const noexcept;

  /// Cursor positioned before `record_index` (pass size() for an exhausted
  /// cursor). Seek cost: two binary searches plus at most
  /// kCheckpointRuns - 1 header decodes (a checkpoint captures the decode
  /// state just *past* its own run's header, so only the runs after it, up
  /// to the next checkpoint, are re-decoded; append() preserves the <= 64
  /// run spacing) plus a skip-decode of earlier records in the same run —
  /// O(1) when the index is a run start, as every window's first_record is.
  [[nodiscard]] Cursor cursor_at(std::size_t record_index) const noexcept;

  /// Decoded view of records [first, last).
  [[nodiscard]] Range range(std::size_t first, std::size_t last) const noexcept;
  [[nodiscard]] Range all() const noexcept;

  /// Direction of record `record_index` (< size()). Costs a seek; iterate a
  /// Range (whose iterator also exposes direction()) for bulk access.
  [[nodiscard]] Direction direction_of(std::size_t record_index) const noexcept;

  /// Borrowed view of the encoded arrays — invalidated by any mutation
  /// (push_back/append/shrink_to_fit) exactly like vector iterators.
  [[nodiscard]] ColumnarView view() const noexcept {
    return ColumnarView{headers_.data(),      payload_.data(),
                        run_starts_.data(),   payload_offs_.data(),
                        checkpoints_.data(),  run_starts_.size(),
                        checkpoints_.size(),  size_,
                        headers_.size(),      payload_.size()};
  }

  /// View-based seek: cursor positioned before `record_index` of `view`
  /// (pass view.records for an exhausted cursor). Same cost contract as
  /// cursor_at(); this is the entry point segment cursors use.
  [[nodiscard]] static Cursor seek(const ColumnarView& view,
                                   std::size_t record_index) noexcept;

  /// Streaming decoder. next() materializes one record at a time into
  /// internal storage — no allocation, the references stay valid until the
  /// following next().
  class Cursor {
   public:
    Cursor() = default;

    /// Decodes the next record; false once the range is exhausted (the
    /// cursor then stays exhausted).
    bool next() noexcept;

    [[nodiscard]] const FlowRecord& record() const noexcept { return record_; }
    [[nodiscard]] Direction direction() const noexcept { return direction_; }
    /// Index (into the whole store) of the record `record()` holds.
    [[nodiscard]] std::size_t index() const noexcept { return next_index_ - 1; }

    /// Rewinds onto `view` at its first record, decoding at most `limit`
    /// records. Every store's first run header is encoded relative to
    /// (0, 0), so this needs no checkpoint walk — it is how spill-tier
    /// cursors hop across segment views.
    void reset(const ColumnarView& view, std::size_t limit) noexcept {
      view_ = view;
      next_index_ = 0;
      limit_ = limit < view.records ? limit : view.records;
      run_ = static_cast<std::size_t>(-1);  // ++run_ in next() lands on 0
      run_end_ = 0;
      header_pos_ = 0;
      payload_pos_ = 0;
      key_ = 0;
      minute_ = 0;
      remote_ = 0;
    }

    /// True once next() has exhausted the bound range.
    [[nodiscard]] bool done() const noexcept { return next_index_ >= limit_; }

    /// Tightens the decode limit to at most `limit` (view-local index).
    void clip(std::size_t limit) noexcept {
      if (limit < limit_) limit_ = limit;
    }

   private:
    friend class ColumnarRecords;
    friend class BlockCursor;

    ColumnarView view_;
    std::size_t next_index_ = 0;  ///< record decoded by the next next()
    std::size_t limit_ = 0;       ///< one past the last record to decode
    std::size_t run_ = 0;         ///< run containing next_index_
    std::size_t run_end_ = 0;     ///< first record index past run_
    std::size_t header_pos_ = 0;  ///< headers_ offset of run_ + 1's header
    std::size_t payload_pos_ = 0;
    std::uint64_t key_ = 0;       ///< (vip << 1) | direction of run_
    std::uint64_t minute_ = 0;    ///< run_'s minute, wraparound u64
    std::uint32_t remote_ = 0;
    FlowRecord record_;
    Direction direction_ = Direction::kInbound;
  };

  /// Batch streaming decoder: fills a caller-owned DecodedBlock with up to
  /// DecodedBlock::kCapacity records per next() call. Decodes the same
  /// state machine as Cursor — run headers on run boundaries, absolute
  /// remote at run starts, zigzag deltas inside — but amortizes it per run
  /// segment and decodes payload fields with the SWAR varint kernel while
  /// at least kSwarRecordSlack encoded bytes remain (scalar tail
  /// otherwise). Cursor is the differential oracle: for any view and limit
  /// the concatenated blocks are byte-identical to the Cursor stream.
  ///
  /// Checkpoint interaction: BlockCursor has no seek of its own — it adopts
  /// a positioned Cursor (whose seek does the checkpoint walk) and streams
  /// forward from there, so checkpoints bound block-pipeline seek cost
  /// exactly as they bound Cursor's (see cursor_at()). A block may start
  /// mid-run after such a seek; the carried remote delta state makes that
  /// exact.
  class BlockCursor {
   public:
    BlockCursor() = default;

    /// Adopts a positioned Cursor's decode state — the way consumers enter
    /// a store mid-stream (e.g. via ColumnarRecords::seek / cursor_at).
    /// The cursor must not have been advanced past its limit.
    explicit BlockCursor(const Cursor& at) noexcept
        : view_(at.view_),
          next_index_(at.next_index_),
          limit_(at.limit_),
          run_(at.run_),
          run_end_(at.run_end_),
          header_pos_(at.header_pos_),
          payload_pos_(at.payload_pos_),
          key_(at.key_),
          minute_(at.minute_),
          remote_(at.remote_) {}

    /// Rewinds onto `view` at its first record, decoding at most `limit`
    /// records — same contract as Cursor::reset().
    void reset(const ColumnarView& view, std::size_t limit) noexcept {
      view_ = view;
      next_index_ = 0;
      limit_ = limit < view.records ? limit : view.records;
      run_ = static_cast<std::size_t>(-1);
      run_end_ = 0;
      header_pos_ = 0;
      payload_pos_ = 0;
      key_ = 0;
      minute_ = 0;
      remote_ = 0;
    }

    /// Fills `out` with the next block; false (with out.count == 0) once
    /// the bound range is exhausted.
    bool next(DecodedBlock& out) noexcept;

    [[nodiscard]] bool done() const noexcept { return next_index_ >= limit_; }

    /// Tightens the decode limit to at most `limit` (view-local index).
    void clip(std::size_t limit) noexcept {
      if (limit < limit_) limit_ = limit;
    }

   private:
    ColumnarView view_;
    std::size_t next_index_ = 0;
    std::size_t limit_ = 0;
    std::size_t run_ = 0;
    std::size_t run_end_ = 0;
    std::size_t header_pos_ = 0;
    std::size_t payload_pos_ = 0;
    std::uint64_t key_ = 0;
    std::uint64_t minute_ = 0;
    std::uint32_t remote_ = 0;
  };

  /// BlockCursor positioned before `record_index` — cursor_at()'s batch
  /// counterpart, same seek cost contract.
  [[nodiscard]] BlockCursor block_cursor_at(std::size_t record_index) const noexcept {
    return BlockCursor(cursor_at(record_index));
  }

  /// Iterable decoded view; `for (const FlowRecord& r : range)` drops in
  /// where a std::span<const FlowRecord> used to be. The iterator is a
  /// single-pass input iterator (each begin() starts a fresh pass).
  class Range {
   public:
    class iterator {
     public:
      using iterator_category = std::input_iterator_tag;
      using value_type = FlowRecord;
      using difference_type = std::ptrdiff_t;
      using pointer = const FlowRecord*;
      using reference = const FlowRecord&;

      iterator() = default;

      [[nodiscard]] reference operator*() const noexcept {
        return cursor_.record();
      }
      [[nodiscard]] pointer operator->() const noexcept {
        return &cursor_.record();
      }
      /// Orientation of the current record — the datum a parallel
      /// std::vector<Direction> used to carry.
      [[nodiscard]] Direction direction() const noexcept {
        return cursor_.direction();
      }
      [[nodiscard]] std::size_t index() const noexcept {
        return cursor_.index();
      }

      iterator& operator++() {
        at_end_ = !cursor_.next();
        return *this;
      }
      iterator operator++(int) {
        iterator copy = *this;
        ++*this;
        return copy;
      }

      friend bool operator==(const iterator& a, const iterator& b) noexcept {
        if (a.at_end_ || b.at_end_) return a.at_end_ == b.at_end_;
        return a.cursor_.index() == b.cursor_.index();
      }

     private:
      friend class Range;
      explicit iterator(const Cursor& cursor) : cursor_(cursor) {
        at_end_ = !cursor_.next();
      }

      Cursor cursor_;
      bool at_end_ = true;
    };

    Range() = default;

    [[nodiscard]] iterator begin() const noexcept { return iterator(first_); }
    [[nodiscard]] iterator end() const noexcept { return iterator(); }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

   private:
    friend class ColumnarRecords;
    Range(const Cursor& first, std::size_t size) : first_(first), size_(size) {}

    Cursor first_;  ///< unprimed cursor at the range start
    std::size_t size_ = 0;
  };

 private:
  /// Checkpoint spacing: bounds both the seek's header-decode walk and the
  /// index overhead (32 bytes per 64 runs ≈ half a byte per run).
  static constexpr std::size_t kCheckpointRuns = 64;

  using Checkpoint = ColumnarCheckpoint;

  void begin_run(std::uint64_t key, std::uint64_t minute);

  std::vector<std::uint8_t> headers_;
  std::vector<std::uint8_t> payload_;
  std::vector<std::uint32_t> run_starts_;
  std::vector<std::uint64_t> payload_offs_;
  std::vector<Checkpoint> checkpoints_;
  std::size_t size_ = 0;
  // Encoder state: the previous run's key/minute and previous record's
  // remote, so push_back writes deltas without re-decoding.
  std::uint64_t last_key_ = 0;
  std::uint64_t last_minute_ = 0;
  std::uint32_t last_remote_ = 0;
};

inline bool ColumnarRecords::Cursor::next() noexcept {
  if (next_index_ >= limit_) return false;
  if (next_index_ >= run_end_) {
    ++run_;
    const std::uint8_t* h = view_.headers + header_pos_;
    key_ = undelta64(key_, get_varint(h));
    minute_ = undelta64(minute_, get_varint(h));
    header_pos_ = static_cast<std::size_t>(h - view_.headers);
    run_end_ = run_ + 1 < view_.runs ? view_.run_starts[run_ + 1]
                                     : view_.records;
  }
  const std::uint8_t* p = view_.payload + payload_pos_;
  if (next_index_ == view_.run_starts[run_]) {
    remote_ = static_cast<std::uint32_t>(get_varint(p));
  } else {
    remote_ = undelta32(remote_, static_cast<std::uint32_t>(get_varint(p)));
  }
  direction_ = static_cast<Direction>(key_ & 1);
  const IPv4 vip(static_cast<std::uint32_t>(key_ >> 1));
  record_.minute = static_cast<util::Minute>(minute_);
  if (direction_ == Direction::kInbound) {
    record_.src_ip = IPv4(remote_);
    record_.dst_ip = vip;
  } else {
    record_.src_ip = vip;
    record_.dst_ip = IPv4(remote_);
  }
  record_.src_port = static_cast<std::uint16_t>(get_varint(p));
  record_.dst_port = static_cast<std::uint16_t>(get_varint(p));
  record_.protocol = static_cast<Protocol>(get_varint(p));
  record_.tcp_flags = static_cast<TcpFlags>(get_varint(p));
  record_.packets = static_cast<std::uint32_t>(get_varint(p));
  record_.bytes = get_varint(p);
  payload_pos_ = static_cast<std::size_t>(p - view_.payload);
  ++next_index_;
  return true;
}

inline bool ColumnarRecords::BlockCursor::next(DecodedBlock& out) noexcept {
  out.count = 0;
  out.base_index = next_index_;
  out.run_mask = 0;
  if (next_index_ >= limit_) return false;
  const std::size_t want =
      std::min(+DecodedBlock::kCapacity, limit_ - next_index_);
  const std::uint8_t* const payload_end = view_.payload + view_.payload_bytes;
  const std::uint8_t* const header_end = view_.headers + view_.header_bytes;
  std::size_t row = 0;
  while (row < want) {
    if (next_index_ >= run_end_) {
      ++run_;
      const std::uint8_t* h = view_.headers + header_pos_;
      // Two varints: slack is one worst-case varint plus the final word read.
      if (header_end - h >=
          static_cast<std::ptrdiff_t>(kMaxVarintBytes + 8)) {
        key_ = undelta64(key_, get_varint_swar(h));
        minute_ = undelta64(minute_, get_varint_swar(h));
      } else {
        key_ = undelta64(key_, get_varint(h));
        minute_ = undelta64(minute_, get_varint(h));
      }
      header_pos_ = static_cast<std::size_t>(h - view_.headers);
      run_end_ = run_ + 1 < view_.runs ? view_.run_starts[run_ + 1]
                                       : view_.records;
    }
    std::size_t take = std::min(run_end_, limit_) - next_index_;
    if (take > want - row) take = want - row;
    const auto vip = static_cast<std::uint32_t>(key_ >> 1);
    const auto dir = static_cast<std::uint8_t>(key_ & 1);
    const auto minute = static_cast<util::Minute>(minute_);
    for (std::size_t k = 0; k < take; ++k) {
      out.vip[row + k] = vip;
      out.direction[row + k] = dir;
      out.minute[row + k] = minute;
    }
    const bool at_run_start =
        next_index_ == view_.run_starts[run_];
    if (at_run_start) out.run_mask |= std::uint64_t{1} << row;
    const std::uint8_t* p = view_.payload + payload_pos_;
    for (std::size_t k = 0; k < take; ++k) {
      const std::size_t i = row + k;
      const bool abs_remote = at_run_start && k == 0;
      if (payload_end - p >= static_cast<std::ptrdiff_t>(kSwarRecordSlack)) {
        const auto raw = static_cast<std::uint32_t>(get_varint_swar(p));
        remote_ = abs_remote ? raw : undelta32(remote_, raw);
        out.remote[i] = remote_;
        out.src_port[i] = static_cast<std::uint16_t>(get_varint_swar(p));
        out.dst_port[i] = static_cast<std::uint16_t>(get_varint_swar(p));
        out.protocol[i] = static_cast<std::uint8_t>(get_varint_swar(p));
        out.tcp_flags[i] = static_cast<std::uint8_t>(get_varint_swar(p));
        out.packets[i] = static_cast<std::uint32_t>(get_varint_swar(p));
        out.bytes[i] = get_varint_swar(p);
      } else {
        const auto raw = static_cast<std::uint32_t>(get_varint(p));
        remote_ = abs_remote ? raw : undelta32(remote_, raw);
        out.remote[i] = remote_;
        out.src_port[i] = static_cast<std::uint16_t>(get_varint(p));
        out.dst_port[i] = static_cast<std::uint16_t>(get_varint(p));
        out.protocol[i] = static_cast<std::uint8_t>(get_varint(p));
        out.tcp_flags[i] = static_cast<std::uint8_t>(get_varint(p));
        out.packets[i] = static_cast<std::uint32_t>(get_varint(p));
        out.bytes[i] = get_varint(p);
      }
    }
    payload_pos_ = static_cast<std::size_t>(p - view_.payload);
    next_index_ += take;
    row += take;
  }
  out.count = row;
  return true;
}

}  // namespace dm::netflow
