#include "netflow/sampler.h"

#include "util/error.h"

namespace dm::netflow {

PacketSampler::PacketSampler(std::uint32_t rate_denominator)
    : n_(rate_denominator) {
  if (n_ == 0) throw dm::ConfigError("PacketSampler: rate denominator must be >= 1");
}

std::uint64_t PacketSampler::sample_packets(std::uint64_t true_packets,
                                            util::Rng& rng) const noexcept {
  if (n_ == 1) return true_packets;
  return rng.binomial(true_packets, probability());
}

std::optional<PacketSampler::Sampled> PacketSampler::sample_flow(
    std::uint64_t true_packets, std::uint64_t true_bytes,
    util::Rng& rng) const noexcept {
  const std::uint64_t kept = sample_packets(true_packets, rng);
  if (kept == 0) return std::nullopt;
  // Bytes of the surviving packets: proportional share of the flow's bytes.
  const double share = true_packets == 0
                           ? 0.0
                           : static_cast<double>(kept) /
                                 static_cast<double>(true_packets);
  return Sampled{kept, static_cast<std::uint64_t>(
                           static_cast<double>(true_bytes) * share + 0.5)};
}

}  // namespace dm::netflow
