// CSV interchange for flow records.
//
// The binary .dmnf format is compact; CSV is for interop — importing flows
// exported from other collectors (nfdump/SiLK-style pipelines) and eyeball
// debugging. Schema (one header line, then one row per record):
//
//   minute,src_ip,src_port,dst_ip,dst_port,proto,tcp_flags,packets,bytes
//
// proto is the IANA number (0/1/6/17); tcp_flags is the numeric cumulative
// mask (0-63).
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "netflow/flow_record.h"

namespace dm::netflow {

inline constexpr std::string_view kCsvHeader =
    "minute,src_ip,src_port,dst_ip,dst_port,proto,tcp_flags,packets,bytes";

/// Writes records with a header line.
void write_csv(std::ostream& out, std::span<const FlowRecord> records);

/// Parses a CSV stream. Throws dm::FormatError naming the offending line on
/// malformed input. A leading header line is skipped if present.
[[nodiscard]] std::vector<FlowRecord> read_csv(std::istream& in);

/// Malformed lines collected by the salvaging read_csv overload. Each entry
/// keeps the 1-based line number, the parser's complaint, and the offending
/// line itself (truncated for quarantine storage).
struct CsvQuarantine {
  struct BadLine {
    std::size_t line_no = 0;
    std::string error;
    std::string line;  ///< up to kMaxQuarantinedLineBytes of the raw line
  };
  static constexpr std::size_t kMaxQuarantinedLineBytes = 160;

  std::vector<BadLine> bad_lines;
  std::size_t lines_seen = 0;  ///< non-blank data lines encountered

  [[nodiscard]] bool clean() const noexcept { return bad_lines.empty(); }
};

/// Salvaging parse: malformed lines go into `quarantine` (with line number
/// and error) instead of aborting the read, until more than
/// `bad_line_budget` lines have gone bad — the budget-exceeding line throws
/// dm::FormatError, on the theory that a file that is mostly garbage is the
/// wrong file rather than a damaged one.
[[nodiscard]] std::vector<FlowRecord> read_csv(std::istream& in,
                                               CsvQuarantine& quarantine,
                                               std::size_t bad_line_budget);

/// Parses a single data row; exposed for tests.
[[nodiscard]] FlowRecord parse_csv_row(std::string_view line, std::size_t line_no);

}  // namespace dm::netflow
