// CSV interchange for flow records.
//
// The binary .dmnf format is compact; CSV is for interop — importing flows
// exported from other collectors (nfdump/SiLK-style pipelines) and eyeball
// debugging. Schema (one header line, then one row per record):
//
//   minute,src_ip,src_port,dst_ip,dst_port,proto,tcp_flags,packets,bytes
//
// proto is the IANA number (0/1/6/17); tcp_flags is the numeric cumulative
// mask (0-63).
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "netflow/flow_record.h"

namespace dm::netflow {

inline constexpr std::string_view kCsvHeader =
    "minute,src_ip,src_port,dst_ip,dst_port,proto,tcp_flags,packets,bytes";

/// Writes records with a header line.
void write_csv(std::ostream& out, std::span<const FlowRecord> records);

/// Parses a CSV stream. Throws dm::FormatError naming the offending line on
/// malformed input. A leading header line is skipped if present.
[[nodiscard]] std::vector<FlowRecord> read_csv(std::istream& in);

/// Parses a single data row; exposed for tests.
[[nodiscard]] FlowRecord parse_csv_row(std::string_view line, std::size_t line_no);

}  // namespace dm::netflow
