#include "netflow/tcp_flags.h"

namespace dm::netflow {

std::string to_string(TcpFlags flags) {
  if (flags == TcpFlags::kNone) return "none";
  std::string out;
  auto append = [&](TcpFlags bit, const char* name) {
    if (has_flag(flags, bit)) {
      if (!out.empty()) out += '|';
      out += name;
    }
  };
  append(TcpFlags::kFin, "FIN");
  append(TcpFlags::kSyn, "SYN");
  append(TcpFlags::kRst, "RST");
  append(TcpFlags::kPsh, "PSH");
  append(TcpFlags::kAck, "ACK");
  append(TcpFlags::kUrg, "URG");
  return out;
}

}  // namespace dm::netflow
