#include "netflow/ipv4.h"

#include <algorithm>
#include <charconv>
#include <cstdio>

namespace dm::netflow {

std::optional<IPv4> IPv4::parse(std::string_view text) {
  std::uint32_t value = 0;
  const char* cursor = text.data();
  const char* end = text.data() + text.size();
  for (int octet = 0; octet < 4; ++octet) {
    unsigned part = 0;
    const auto [next, ec] = std::from_chars(cursor, end, part);
    if (ec != std::errc{} || part > 255 || next == cursor) return std::nullopt;
    value = (value << 8) | part;
    cursor = next;
    if (octet < 3) {
      if (cursor == end || *cursor != '.') return std::nullopt;
      ++cursor;
    }
  }
  if (cursor != end) return std::nullopt;
  return IPv4(value);
}

std::string IPv4::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", value_ >> 24,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

std::optional<Prefix> Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto ip = IPv4::parse(text.substr(0, slash));
  if (!ip) return std::nullopt;
  int bits = 0;
  const std::string_view len = text.substr(slash + 1);
  const auto [next, ec] =
      std::from_chars(len.data(), len.data() + len.size(), bits);
  if (ec != std::errc{} || next != len.data() + len.size() || bits < 0 ||
      bits > 32) {
    return std::nullopt;
  }
  return Prefix(*ip, bits);
}

std::string Prefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(bits_);
}

PrefixSet::PrefixSet(const std::vector<Prefix>& prefixes)
    : by_length_(33) {
  for (const Prefix& p : prefixes) add(p);
}

void PrefixSet::add(Prefix p) {
  if (by_length_.empty()) by_length_.resize(33);
  auto& bucket = by_length_[static_cast<std::size_t>(p.length())];
  const std::uint32_t net = p.network().value();
  const auto it = std::lower_bound(bucket.begin(), bucket.end(), net);
  if (it != bucket.end() && *it == net) return;  // duplicate
  bucket.insert(it, net);
  ++count_;

  // Maintain the /32 membership prefilter (see contains()).
  if (p.length() == 32) {
    if (hosts_only_) {
      if (filter_.empty()) filter_.resize(kFilterWords);
      const std::uint64_t h = filter_hash(net);
      filter_[(h >> 6) & (kFilterWords - 1)] |= 1ull << (h & 63);
    }
  } else {
    hosts_only_ = false;
    filter_ = std::vector<std::uint64_t>();
  }

  // Fold the prefix's address range into the disjoint span index, merging
  // every span it overlaps or directly adjoins.
  std::uint32_t lo = net;
  std::uint32_t hi =
      p.length() >= 32 ? net : net | (~std::uint32_t{0} >> p.length());
  const std::uint32_t lo_adj = lo == 0 ? lo : lo - 1;
  const std::uint32_t hi_adj = hi == ~std::uint32_t{0} ? hi : hi + 1;
  const auto first = std::lower_bound(
      spans_.begin(), spans_.end(), lo_adj,
      [](const Span& s, std::uint32_t value) { return s.hi < value; });
  auto last = first;
  while (last != spans_.end() && last->lo <= hi_adj) {
    lo = std::min(lo, last->lo);
    hi = std::max(hi, last->hi);
    ++last;
  }
  if (first == last) {
    spans_.insert(first, Span{lo, hi});
  } else {
    first->lo = lo;
    first->hi = hi;
    spans_.erase(first + 1, last);
  }
}

std::optional<Prefix> PrefixSet::match(IPv4 ip) const noexcept {
  if (by_length_.empty()) return std::nullopt;
  for (int len = 32; len >= 0; --len) {
    const auto& bucket = by_length_[static_cast<std::size_t>(len)];
    if (bucket.empty()) continue;
    const Prefix probe(ip, len);
    const std::uint32_t net = probe.network().value();
    if (std::binary_search(bucket.begin(), bucket.end(), net)) return probe;
  }
  return std::nullopt;
}

}  // namespace dm::netflow
