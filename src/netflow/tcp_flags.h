// TCP flag bitmask plus the illegal-combination predicates used by the
// signature-based detector (paper §2.2: TCP NULL and Xmas port scans
// "violate protocol specifications ... not used by normal traffic").
#pragma once

#include <cstdint>
#include <string>

namespace dm::netflow {

/// TCP control-bit mask as carried in a NetFlow record (cumulative OR of the
/// flags seen on the flow's packets).
enum class TcpFlags : std::uint8_t {
  kNone = 0x00,
  kFin = 0x01,
  kSyn = 0x02,
  kRst = 0x04,
  kPsh = 0x08,
  kAck = 0x10,
  kUrg = 0x20,
};

[[nodiscard]] constexpr TcpFlags operator|(TcpFlags a, TcpFlags b) noexcept {
  return static_cast<TcpFlags>(static_cast<std::uint8_t>(a) |
                               static_cast<std::uint8_t>(b));
}

[[nodiscard]] constexpr TcpFlags operator&(TcpFlags a, TcpFlags b) noexcept {
  return static_cast<TcpFlags>(static_cast<std::uint8_t>(a) &
                               static_cast<std::uint8_t>(b));
}

[[nodiscard]] constexpr bool has_flag(TcpFlags flags, TcpFlags bit) noexcept {
  return (flags & bit) != TcpFlags::kNone;
}

/// The Xmas-scan signature: FIN+PSH+URG lit simultaneously.
inline constexpr TcpFlags kXmasFlags =
    TcpFlags::kFin | TcpFlags::kPsh | TcpFlags::kUrg;

/// Flags of a connection-opening SYN (no ACK) — the unit the SYN-flood
/// volume detector counts.
[[nodiscard]] constexpr bool is_pure_syn(TcpFlags flags) noexcept {
  return has_flag(flags, TcpFlags::kSyn) && !has_flag(flags, TcpFlags::kAck);
}

/// TCP NULL scan: a TCP segment with no flags at all.
[[nodiscard]] constexpr bool is_null_scan(TcpFlags flags) noexcept {
  return flags == TcpFlags::kNone;
}

/// TCP Xmas scan: FIN, PSH and URG together (and no SYN/ACK/RST).
[[nodiscard]] constexpr bool is_xmas_scan(TcpFlags flags) noexcept {
  return (flags & (kXmasFlags | TcpFlags::kSyn | TcpFlags::kAck |
                   TcpFlags::kRst)) == kXmasFlags;
}

/// Any flag combination that violates the TCP specification and therefore
/// signals a scan/fingerprint tool: NULL, Xmas, or SYN+FIN without ACK.
/// NetFlow flags are the cumulative OR over a flow's packets, so a completed
/// legitimate connection legitimately shows SYN|FIN|ACK|PSH — the ACK
/// exclusion keeps those out.
[[nodiscard]] constexpr bool is_illegal(TcpFlags flags) noexcept {
  return is_null_scan(flags) || is_xmas_scan(flags) ||
         (has_flag(flags, TcpFlags::kSyn) && has_flag(flags, TcpFlags::kFin) &&
          !has_flag(flags, TcpFlags::kAck));
}

/// Bare RST (no ACK): the backscatter signature of victims of spoofed-source
/// floods reflecting to the cloud (§3.1 "significant number of inbound TCP
/// RST packets").
[[nodiscard]] constexpr bool is_bare_rst(TcpFlags flags) noexcept {
  return has_flag(flags, TcpFlags::kRst) && !has_flag(flags, TcpFlags::kAck) &&
         !has_flag(flags, TcpFlags::kSyn);
}

/// Renders e.g. "SYN|ACK"; "none" for an empty mask.
[[nodiscard]] std::string to_string(TcpFlags flags);

}  // namespace dm::netflow
