// Grouping sampled NetFlow into per-(VIP, minute, direction) feature
// windows — the paper's SCOPE aggregation step ("We aggregate the NetFlow
// data by VIP in each one-minute window", §2.2) done in-process.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "exec/thread_pool.h"
#include "netflow/columnar_records.h"
#include "netflow/flow_record.h"
#include "netflow/ipv4.h"
#include "netflow/segment_store.h"

namespace dm::netflow {

/// Aggregated features of one VIP's traffic in one direction during one
/// one-minute window. All counts are of *sampled* traffic.
struct VipMinuteStats {
  // dmlint: checkpointed
  IPv4 vip;
  util::Minute minute = 0;
  Direction direction = Direction::kInbound;

  // Volumes per protocol / flag class (sampled packets).
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t tcp_packets = 0;
  std::uint64_t udp_packets = 0;
  std::uint64_t icmp_packets = 0;
  std::uint64_t ipencap_packets = 0;
  std::uint64_t syn_packets = 0;          ///< pure SYN (no ACK)
  std::uint64_t null_scan_packets = 0;    ///< TCP with no flags
  std::uint64_t xmas_scan_packets = 0;    ///< FIN+PSH+URG
  std::uint64_t bare_rst_packets = 0;     ///< RST without ACK/SYN
  std::uint64_t dns_response_packets = 0; ///< UDP from/to remote port 53

  // Spread features (per-window distinct counts in the sampled data).
  std::uint32_t flows = 0;
  std::uint32_t unique_remote_ips = 0;
  std::uint32_t smtp_flows = 0;             ///< dst port 25
  std::uint32_t unique_smtp_remotes = 0;    ///< distinct remotes on SMTP flows
  std::uint32_t remote_admin_flows = 0;     ///< dst port 22/3389/5900
  std::uint32_t unique_admin_remotes = 0;   ///< distinct remotes on admin flows
  std::uint32_t sql_flows = 0;              ///< dst port 1433/3306

  // Per-application packet counters (attack-throughput attribution).
  std::uint64_t smtp_packets = 0;
  std::uint64_t admin_packets = 0;
  std::uint64_t sql_packets = 0;

  // Communication-pattern feature.
  std::uint32_t blacklist_flows = 0;        ///< flows touching a TDS host
  std::uint32_t unique_blacklist_remotes = 0;
  std::uint64_t blacklist_packets = 0;

  // Index range [first_record, last_record) into WindowedTrace::records().
  std::uint32_t first_record = 0;
  std::uint32_t last_record = 0;
};

/// The aggregated dataset: oriented records sorted by
/// (VIP, direction, minute, remote IP) plus one VipMinuteStats per non-empty
/// window, in the same order. Per-VIP time series are contiguous slices.
///
/// Records live in a RecordStore — either a resident ColumnarRecords
/// (run-length/delta-varint compressed, including each record's Direction)
/// or, for out-of-core runs, a spilled SegmentStore of memory-mapped
/// segment files. Record access decodes on the fly through
/// RecordStore::Range (drop-in for range-for loops that used to see a
/// std::span<const FlowRecord>), identical in both modes.
class WindowedTrace {
 public:
  using RecordRange = RecordStore::Range;

  WindowedTrace() = default;
  WindowedTrace(RecordStore store, std::vector<VipMinuteStats> windows,
                std::uint64_t unclassified_records);
  WindowedTrace(ColumnarRecords columns, std::vector<VipMinuteStats> windows,
                std::uint64_t unclassified_records);
  /// Convenience for ingestion paths and tests that hold AoS arrays: encodes
  /// them into the columnar store.
  WindowedTrace(std::vector<FlowRecord> records, std::vector<Direction> directions,
                std::vector<VipMinuteStats> windows,
                std::uint64_t unclassified_records);

  [[nodiscard]] std::span<const VipMinuteStats> windows() const noexcept {
    return windows_;
  }
  [[nodiscard]] RecordRange records() const { return store_.all(); }
  [[nodiscard]] std::size_t record_count() const noexcept {
    return store_.size();
  }
  [[nodiscard]] const RecordStore& store() const noexcept { return store_; }

  /// Records belonging to a window (same index space as windows()).
  [[nodiscard]] RecordRange records_of(const VipMinuteStats& window) const;

  /// Direction of record `record_index` relative to the cloud. Costs a
  /// store seek (plus a segment map when spilled); bulk consumers should
  /// iterate records() and read the iterator's direction() instead.
  [[nodiscard]] Direction direction_of(std::size_t record_index) const {
    return store_.direction_of(record_index);
  }

  /// Contiguous window slice for one (vip, direction) series, sorted by
  /// minute. Empty when the VIP has no traffic in that direction.
  [[nodiscard]] std::span<const VipMinuteStats> series(IPv4 vip,
                                                       Direction dir) const noexcept;

  /// Distinct VIPs present in the trace (either direction), ascending.
  /// Computed once at construction — callers may hold the span for the
  /// trace's lifetime.
  [[nodiscard]] std::span<const IPv4> vips() const noexcept { return vips_; }

  /// Records that matched neither/both cloud prefixes and were dropped.
  [[nodiscard]] std::uint64_t unclassified_records() const noexcept {
    return unclassified_;
  }

 private:
  RecordStore store_;
  std::vector<VipMinuteStats> windows_;
  std::vector<IPv4> vips_;
  std::uint64_t unclassified_ = 0;
};

/// Orients a record against the cloud address space: inbound when only the
/// destination is a cloud address, outbound when only the source is.
/// nullopt when neither or both are (transit/intra-cloud — outside the
/// study's scope).
[[nodiscard]] std::optional<Direction> classify(const FlowRecord& record,
                                                const PrefixSet& cloud_space) noexcept;

/// Builds the windowed dataset. `blacklist` (may be null) marks TDS hosts
/// for the communication-pattern feature. `pool` (may be null = serial)
/// shards the classify, sort, and window-build phases; the record order is
/// canonical — (vip, direction, minute, remote, arrival index) — so the
/// result is byte-identical for any thread count and any input sharding.
/// A non-null enabled `spill` streams the encoded chunks through a
/// SpillWriter instead of concatenating them in RAM; the resulting trace
/// decodes byte-identically either way.
[[nodiscard]] WindowedTrace aggregate_windows(std::vector<FlowRecord> records,
                                              const PrefixSet& cloud_space,
                                              const PrefixSet* blacklist = nullptr,
                                              exec::ThreadPool* pool = nullptr,
                                              const SpillConfig* spill = nullptr);

/// One shard's fully aggregated slice: kept records (with directions) in
/// canonical order inside a shard-local columnar store, windows whose
/// first/last_record indices are SHARD-LOCAL, and the shard's
/// dropped-record count. Merging = ColumnarRecords::append in shard order
/// plus rebasing the window index ranges.
struct ShardWindows {
  ColumnarRecords columns;
  std::vector<VipMinuteStats> windows;
  std::uint64_t unclassified = 0;
};

/// The shard-level aggregation core shared by aggregate_windows and the
/// fused generate→aggregate path (sim::generate_windows): classify+compact,
/// canonical sort (LSD radix over a packed 128-bit key when every minute
/// fits 31 bits — always true for generator output — comparison sort
/// otherwise), and single-pass window build, all serial: the shard itself
/// is the unit of parallelism. When the input holds a contiguous range of
/// the VIP address space, concatenating shard slices in address order
/// reproduces aggregate_windows' global output exactly.
[[nodiscard]] ShardWindows aggregate_shard(std::vector<FlowRecord> records,
                                           const PrefixSet& cloud_space,
                                           const PrefixSet* blacklist = nullptr);

}  // namespace dm::netflow
