#include "netflow/trace_io.h"

#include <array>
#include <fstream>
#include <istream>
#include <ostream>

#include "netflow/varint.h"
#include "util/error.h"

namespace dm::netflow {
namespace {

constexpr std::size_t kBlockRecords = 4096;

const std::array<std::uint32_t, 256>& crc_table() {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

// Varint/zigzag encoding comes from netflow/varint.h; the bounds-checked
// ByteCursor below stays local — file input is untrusted.
class ByteCursor {
 public:
  explicit ByteCursor(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (pos_ >= bytes_.size() || shift > 63) {
        throw FormatError("trace: truncated varint");
      }
      const std::uint8_t b = bytes_[pos_++];
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  [[nodiscard]] bool exhausted() const noexcept { return pos_ >= bytes_.size(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

void write_u16(std::ostream& out, std::uint16_t v) {
  const char bytes[2] = {static_cast<char>(v & 0xff),
                         static_cast<char>(v >> 8)};
  out.write(bytes, 2);
}

void write_u32(std::ostream& out, std::uint32_t v) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(bytes, 4);
}

std::uint16_t read_u16(std::istream& in) {
  unsigned char bytes[2];
  in.read(reinterpret_cast<char*>(bytes), 2);
  if (!in) throw FormatError("trace: truncated header");
  return static_cast<std::uint16_t>(bytes[0] | (bytes[1] << 8));
}

std::uint32_t read_u32(std::istream& in) {
  unsigned char bytes[4];
  in.read(reinterpret_cast<char*>(bytes), 4);
  if (!in) throw FormatError("trace: truncated header");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes[i]) << (8 * i);
  return v;
}

/// Reads a varint directly from the stream (used for block headers).
/// Returns false cleanly on immediate EOF.
bool stream_varint(std::istream& in, std::uint64_t& out) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const int c = in.get();
    if (c == std::char_traits<char>::eof()) {
      if (shift == 0) return false;
      throw FormatError("trace: truncated block header");
    }
    v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) {
      out = v;
      return true;
    }
    shift += 7;
    if (shift > 63) throw FormatError("trace: varint overflow");
  }
}

void stream_put_varint(std::ostream& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.put(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.put(static_cast<char>(v));
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept {
  const auto& table = crc_table();
  std::uint32_t crc = 0xffffffffu;
  for (std::uint8_t b : bytes) crc = table[(crc ^ b) & 0xff] ^ (crc >> 8);
  return crc ^ 0xffffffffu;
}

TraceWriter::TraceWriter(std::ostream& out, std::uint32_t sampling_denominator)
    : out_(out) {
  write_u32(out_, kTraceMagic);
  write_u16(out_, kTraceVersion);
  write_u32(out_, sampling_denominator);
  pending_.reserve(kBlockRecords);
}

TraceWriter::~TraceWriter() {
  try {
    finish();
  } catch (...) {
    // Destructors must not throw; an explicit finish() surfaces errors.
  }
}

void TraceWriter::write(const FlowRecord& record) {
  pending_.push_back(record);
  ++count_;
  if (pending_.size() >= kBlockRecords) flush_block();
}

void TraceWriter::write_all(std::span<const FlowRecord> records) {
  for (const auto& r : records) write(r);
}

void TraceWriter::write_all(ColumnarRecords::Range records) {
  for (const FlowRecord& r : records) write(r);
}

void TraceWriter::flush_block() {
  if (pending_.empty()) return;
  std::vector<std::uint8_t> payload;
  payload.reserve(pending_.size() * 16);
  const util::Minute base = pending_.front().minute;
  put_varint(payload, zigzag64(base));
  for (const FlowRecord& r : pending_) {
    put_varint(payload, zigzag64(r.minute - base));
    put_varint(payload, r.src_ip.value());
    put_varint(payload, r.dst_ip.value());
    put_varint(payload, r.src_port);
    put_varint(payload, r.dst_port);
    put_varint(payload, static_cast<std::uint8_t>(r.protocol));
    put_varint(payload, static_cast<std::uint8_t>(r.tcp_flags));
    put_varint(payload, r.packets);
    put_varint(payload, r.bytes);
  }
  stream_put_varint(out_, pending_.size());
  stream_put_varint(out_, payload.size());
  out_.write(reinterpret_cast<const char*>(payload.data()),
             static_cast<std::streamsize>(payload.size()));
  write_u32(out_, crc32(payload));
  if (!out_) throw FormatError("trace: write failure");
  pending_.clear();
}

void TraceWriter::finish() {
  if (finished_) return;
  flush_block();
  stream_put_varint(out_, 0);  // end marker
  out_.flush();
  finished_ = true;
  if (!out_) throw FormatError("trace: write failure at finish");
}

TraceReader::TraceReader(std::istream& in) : in_(in) {
  if (read_u32(in_) != kTraceMagic) throw FormatError("trace: bad magic");
  const std::uint16_t version = read_u16(in_);
  if (version != kTraceVersion) {
    throw FormatError("trace: unsupported version " + std::to_string(version));
  }
  sampling_ = read_u32(in_);
  if (sampling_ == 0) throw FormatError("trace: zero sampling denominator");
}

bool TraceReader::load_block() {
  if (eof_) return false;
  std::uint64_t record_count = 0;
  if (!stream_varint(in_, record_count)) {
    throw FormatError("trace: missing end marker");
  }
  if (record_count == 0) {
    eof_ = true;
    return false;
  }
  std::uint64_t payload_size = 0;
  if (!stream_varint(in_, payload_size)) {
    throw FormatError("trace: truncated block");
  }
  std::vector<std::uint8_t> payload(payload_size);
  in_.read(reinterpret_cast<char*>(payload.data()),
           static_cast<std::streamsize>(payload_size));
  if (!in_) throw FormatError("trace: truncated block payload");
  const std::uint32_t expected_crc = read_u32(in_);
  if (crc32(payload) != expected_crc) throw FormatError("trace: CRC mismatch");

  ByteCursor cursor{payload};
  const util::Minute base = unzigzag64(cursor.varint());
  block_.clear();
  block_.reserve(record_count);
  for (std::uint64_t i = 0; i < record_count; ++i) {
    FlowRecord r;
    r.minute = base + unzigzag64(cursor.varint());
    r.src_ip = IPv4(static_cast<std::uint32_t>(cursor.varint()));
    r.dst_ip = IPv4(static_cast<std::uint32_t>(cursor.varint()));
    r.src_port = static_cast<std::uint16_t>(cursor.varint());
    r.dst_port = static_cast<std::uint16_t>(cursor.varint());
    r.protocol = static_cast<Protocol>(cursor.varint());
    r.tcp_flags = static_cast<TcpFlags>(cursor.varint());
    r.packets = static_cast<std::uint32_t>(cursor.varint());
    r.bytes = cursor.varint();
    block_.push_back(r);
  }
  cursor_ = 0;
  return true;
}

bool TraceReader::next(FlowRecord& out) {
  while (cursor_ >= block_.size()) {
    if (!load_block()) return false;
  }
  out = block_[cursor_++];
  return true;
}

std::vector<FlowRecord> TraceReader::read_all() {
  std::vector<FlowRecord> all;
  FlowRecord r;
  while (next(r)) all.push_back(r);
  return all;
}

void write_trace_file(const std::string& path, std::span<const FlowRecord> records,
                      std::uint32_t sampling_denominator) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw FormatError("trace: cannot open for writing: " + path);
  TraceWriter writer(out, sampling_denominator);
  writer.write_all(records);
  writer.finish();
}

void write_trace_file(const std::string& path, ColumnarRecords::Range records,
                      std::uint32_t sampling_denominator) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw FormatError("trace: cannot open for writing: " + path);
  TraceWriter writer(out, sampling_denominator);
  writer.write_all(records);
  writer.finish();
}

std::vector<FlowRecord> read_trace_file(const std::string& path,
                                        std::uint32_t* sampling) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw FormatError("trace: cannot open for reading: " + path);
  TraceReader reader(in);
  if (sampling != nullptr) *sampling = reader.sampling_denominator();
  return reader.read_all();
}

}  // namespace dm::netflow
