#include "netflow/trace_io.h"

#include <array>
#include <cstdio>
#include <fstream>
#include <istream>
#include <iterator>
#include <ostream>

#include "netflow/varint.h"
#include "util/error.h"

namespace dm::netflow {
namespace {

constexpr std::size_t kBlockRecords = 4096;
constexpr std::uint64_t kHeaderBytes = 10;  // magic u32 + version u16 + sampling u32
constexpr std::uint64_t kMaxVarintBytes = 10;
// A record packs 9 varint fields; the payload leads with one base-minute
// varint. These bounds make implausible block headers cheap to reject when
// resynchronizing over damage.
constexpr std::uint64_t kMinRecordPayloadBytes = 9;
constexpr std::uint64_t kMaxRecordPayloadBytes = 9 * kMaxVarintBytes;

std::string hex32(std::uint32_t v) {
  char buf[11];
  std::snprintf(buf, sizeof buf, "0x%08x", v);
  return buf;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

// Varint/zigzag encoding and the bounds-checked CheckedCursor come from
// netflow/varint.h — file input is untrusted, every read is checked.

/// Decodes one CRC-verified block payload, appending `record_count` records
/// to `out`. Throws dm::FormatError on any inconsistency between the
/// payload and its declared record count.
void decode_payload(std::span<const std::uint8_t> payload,
                    std::uint64_t record_count, std::vector<FlowRecord>& out) {
  CheckedCursor cursor{payload, "trace"};
  const util::Minute base = unzigzag64(cursor.varint());
  out.reserve(out.size() + record_count);
  for (std::uint64_t i = 0; i < record_count; ++i) {
    FlowRecord r;
    r.minute = base + unzigzag64(cursor.varint());
    r.src_ip = IPv4(static_cast<std::uint32_t>(cursor.varint()));
    r.dst_ip = IPv4(static_cast<std::uint32_t>(cursor.varint()));
    r.src_port = static_cast<std::uint16_t>(cursor.varint());
    r.dst_port = static_cast<std::uint16_t>(cursor.varint());
    r.protocol = static_cast<Protocol>(cursor.varint());
    r.tcp_flags = static_cast<TcpFlags>(cursor.varint());
    r.packets = static_cast<std::uint32_t>(cursor.varint());
    r.bytes = cursor.varint();
    out.push_back(r);
  }
  if (!cursor.exhausted()) {
    throw FormatError("trace: trailing bytes after last record in block");
  }
}

/// One attempt to decode a block at `pos` in a fully buffered trace.
/// Never throws: failures come back as an error class so the salvage
/// scanner can classify the damage and keep probing.
enum class BlockError { kNone, kVarint, kTruncated, kCrc, kDecode };

struct TryBlock {
  bool ok = false;
  bool end_marker = false;
  std::size_t next = 0;  ///< first byte after the block (valid when ok)
  BlockError error = BlockError::kNone;
};

TryBlock try_block(std::span<const std::uint8_t> buf, std::size_t pos,
                   std::vector<FlowRecord>* out) {
  TryBlock t;
  const auto read_varint = [&](std::size_t& p, std::uint64_t& v) -> bool {
    v = 0;
    int shift = 0;
    for (;;) {
      if (p >= buf.size() || shift > 63) return false;
      const std::uint8_t b = buf[p++];
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return true;
      shift += 7;
    }
  };
  std::size_t p = pos;
  std::uint64_t count = 0;
  if (!read_varint(p, count)) {
    t.error = BlockError::kVarint;
    return t;
  }
  if (count == 0) {
    t.ok = true;
    t.end_marker = true;
    t.next = p;
    return t;
  }
  std::uint64_t payload_size = 0;
  if (count > kBlockRecords || !read_varint(p, payload_size)) {
    t.error = BlockError::kVarint;
    return t;
  }
  if (payload_size < 1 + kMinRecordPayloadBytes * count ||
      payload_size > kMaxVarintBytes + kMaxRecordPayloadBytes * count) {
    t.error = BlockError::kVarint;
    return t;
  }
  if (p + payload_size + 4 > buf.size()) {
    t.error = BlockError::kTruncated;
    return t;
  }
  const auto payload = buf.subspan(p, payload_size);
  p += payload_size;
  std::uint32_t expected = 0;
  for (int i = 0; i < 4; ++i) {
    expected |= static_cast<std::uint32_t>(buf[p++]) << (8 * i);
  }
  if (crc32(payload) != expected) {
    t.error = BlockError::kCrc;
    return t;
  }
  try {
    std::vector<FlowRecord> records;
    decode_payload(payload, count, records);
    if (out != nullptr) {
      out->insert(out->end(), records.begin(), records.end());
    }
  } catch (const FormatError&) {
    t.error = BlockError::kDecode;
    return t;
  }
  t.ok = true;
  t.next = p;
  return t;
}

void write_u16(std::ostream& out, std::uint16_t v) {
  const char bytes[2] = {static_cast<char>(v & 0xff),
                         static_cast<char>(v >> 8)};
  out.write(bytes, 2);
}

void write_u32(std::ostream& out, std::uint32_t v) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(bytes, 4);
}

std::uint16_t read_u16(std::istream& in) {
  unsigned char bytes[2];
  in.read(reinterpret_cast<char*>(bytes), 2);
  if (!in) throw FormatError("trace: truncated header");
  return static_cast<std::uint16_t>(bytes[0] | (bytes[1] << 8));
}

std::uint32_t read_u32(std::istream& in) {
  unsigned char bytes[4];
  in.read(reinterpret_cast<char*>(bytes), 4);
  if (!in) throw FormatError("trace: truncated header");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes[i]) << (8 * i);
  return v;
}

/// Reads a varint directly from the stream (used for block headers),
/// advancing `offset` by the bytes consumed. Returns false cleanly on
/// immediate EOF.
bool stream_varint(std::istream& in, std::uint64_t& out, std::uint64_t& offset) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const int c = in.get();
    if (c == std::char_traits<char>::eof()) {
      if (shift == 0) return false;
      throw FormatError("trace: truncated block header at byte " +
                        std::to_string(offset));
    }
    ++offset;
    v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) {
      out = v;
      return true;
    }
    shift += 7;
    if (shift > 63) {
      throw FormatError("trace: varint overflow at byte " +
                        std::to_string(offset));
    }
  }
}

void stream_put_varint(std::ostream& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.put(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.put(static_cast<char>(v));
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept {
  const auto& table = crc_table();
  std::uint32_t crc = 0xffffffffu;
  for (std::uint8_t b : bytes) crc = table[(crc ^ b) & 0xff] ^ (crc >> 8);
  return crc ^ 0xffffffffu;
}

TraceWriter::TraceWriter(std::ostream& out, std::uint32_t sampling_denominator)
    : out_(out) {
  write_u32(out_, kTraceMagic);
  write_u16(out_, kTraceVersion);
  write_u32(out_, sampling_denominator);
  pending_.reserve(kBlockRecords);
}

TraceWriter::~TraceWriter() {
  try {
    finish();
  } catch (...) {
    // Destructors must not throw; an explicit finish() surfaces errors.
  }
}

void TraceWriter::write(const FlowRecord& record) {
  pending_.push_back(record);
  ++count_;
  if (pending_.size() >= kBlockRecords) flush_block();
}

void TraceWriter::write_all(std::span<const FlowRecord> records) {
  for (const auto& r : records) write(r);
}

void TraceWriter::write_all(ColumnarRecords::Range records) {
  for (const FlowRecord& r : records) write(r);
}

void TraceWriter::write_all(RecordStore::Range records) {
  for (const FlowRecord& r : records) write(r);
}

namespace {

/// Streams every block of `cursor` into `writer`, reassembling wire-order
/// records from the SoA columns (the inverse of the codec's orientation
/// split).
template <typename BlockCursorT>
void write_decoded_blocks(TraceWriter& writer, BlockCursorT cursor) {
  DecodedBlock block;
  FlowRecord r;
  while (cursor.next(block)) {
    for (std::size_t i = 0; i < block.count; ++i) {
      r.minute = block.minute[i];
      const IPv4 vip(block.vip[i]);
      const IPv4 remote(block.remote[i]);
      if (static_cast<Direction>(block.direction[i]) == Direction::kInbound) {
        r.src_ip = remote;
        r.dst_ip = vip;
      } else {
        r.src_ip = vip;
        r.dst_ip = remote;
      }
      r.src_port = block.src_port[i];
      r.dst_port = block.dst_port[i];
      r.protocol = static_cast<Protocol>(block.protocol[i]);
      r.tcp_flags = static_cast<TcpFlags>(block.tcp_flags[i]);
      r.packets = block.packets[i];
      r.bytes = block.bytes[i];
      writer.write(r);
    }
  }
}

}  // namespace

void TraceWriter::write_all(const ColumnarRecords& records) {
  write_decoded_blocks(*this, records.block_cursor_at(0));
}

void TraceWriter::write_all(const RecordStore& store) {
  write_decoded_blocks(*this, store.block_cursor_at(0));
}

void TraceWriter::flush_block() {
  if (pending_.empty()) return;
  std::vector<std::uint8_t> payload;
  payload.reserve(pending_.size() * 16);
  const util::Minute base = pending_.front().minute;
  put_varint(payload, zigzag64(base));
  for (const FlowRecord& r : pending_) {
    put_varint(payload, zigzag64(r.minute - base));
    put_varint(payload, r.src_ip.value());
    put_varint(payload, r.dst_ip.value());
    put_varint(payload, r.src_port);
    put_varint(payload, r.dst_port);
    put_varint(payload, static_cast<std::uint8_t>(r.protocol));
    put_varint(payload, static_cast<std::uint8_t>(r.tcp_flags));
    put_varint(payload, r.packets);
    put_varint(payload, r.bytes);
  }
  stream_put_varint(out_, pending_.size());
  stream_put_varint(out_, payload.size());
  out_.write(reinterpret_cast<const char*>(payload.data()),
             static_cast<std::streamsize>(payload.size()));
  write_u32(out_, crc32(payload));
  if (!out_) throw FormatError("trace: write failure");
  pending_.clear();
}

void TraceWriter::finish() {
  if (finished_) return;
  flush_block();
  stream_put_varint(out_, 0);  // end marker
  out_.flush();
  finished_ = true;
  if (!out_) throw FormatError("trace: write failure at finish");
}

std::uint64_t IngestReport::bytes_lost() const noexcept {
  std::uint64_t total = 0;
  for (const auto& range : lost_ranges) total += range.bytes;
  return total;
}

bool IngestReport::clean() const noexcept {
  return header_valid && end_marker_seen && blocks_skipped == 0 &&
         lost_ranges.empty() &&
         crc_mismatches + truncations + varint_errors + decode_errors == 0;
}

TraceReader::TraceReader(std::istream& in, ReadMode mode)
    : in_(in), mode_(mode) {
  if (mode_ == ReadMode::kSalvage) {
    salvage_all();
    return;
  }
  if (read_u32(in_) != kTraceMagic) throw FormatError("trace: bad magic");
  const std::uint16_t version = read_u16(in_);
  if (version != kTraceVersion) {
    throw FormatError("trace: unsupported version " + std::to_string(version));
  }
  sampling_ = read_u32(in_);
  if (sampling_ == 0) throw FormatError("trace: zero sampling denominator");
  offset_ = kHeaderBytes;
}

bool TraceReader::load_block() {
  if (eof_) return false;
  const std::uint64_t block_offset = offset_;
  const std::string where = "block " + std::to_string(block_index_) +
                            " at byte " + std::to_string(block_offset);
  std::uint64_t record_count = 0;
  if (!stream_varint(in_, record_count, offset_)) {
    throw FormatError("trace: missing end marker after " + where);
  }
  if (record_count == 0) {
    eof_ = true;
    report_.end_marker_seen = true;
    return false;
  }
  std::uint64_t payload_size = 0;
  if (!stream_varint(in_, payload_size, offset_)) {
    throw FormatError("trace: truncated header of " + where);
  }
  std::vector<std::uint8_t> payload(payload_size);
  in_.read(reinterpret_cast<char*>(payload.data()),
           static_cast<std::streamsize>(payload_size));
  if (!in_) {
    throw FormatError("trace: truncated payload in " + where + " (wanted " +
                      std::to_string(payload_size) + " bytes)");
  }
  offset_ += payload_size;
  unsigned char crc_bytes[4];
  in_.read(reinterpret_cast<char*>(crc_bytes), 4);
  if (!in_) throw FormatError("trace: truncated CRC of " + where);
  offset_ += 4;
  std::uint32_t expected_crc = 0;
  for (int i = 0; i < 4; ++i) {
    expected_crc |= static_cast<std::uint32_t>(crc_bytes[i]) << (8 * i);
  }
  const std::uint32_t actual_crc = crc32(payload);
  if (actual_crc != expected_crc) {
    throw FormatError("trace: CRC mismatch in " + where + ": expected " +
                      hex32(expected_crc) + ", actual " + hex32(actual_crc));
  }

  block_.clear();
  try {
    decode_payload(payload, record_count, block_);
  } catch (const FormatError& e) {
    throw FormatError(std::string(e.what()) + " (" + where + ")");
  }
  cursor_ = 0;
  ++block_index_;
  ++report_.blocks_decoded;
  report_.records_recovered += record_count;
  report_.bytes_scanned = offset_;
  return true;
}

void TraceReader::salvage_all() {
  std::vector<std::uint8_t> buf{std::istreambuf_iterator<char>(in_),
                                std::istreambuf_iterator<char>()};
  report_.bytes_scanned = buf.size();
  const std::span<const std::uint8_t> bytes{buf};

  std::size_t pos = 0;
  report_.header_valid = false;
  if (buf.size() >= kHeaderBytes) {
    std::uint32_t magic = 0;
    std::uint32_t sampling = 0;
    for (int i = 0; i < 4; ++i) {
      magic |= static_cast<std::uint32_t>(buf[static_cast<std::size_t>(i)])
               << (8 * i);
      sampling |= static_cast<std::uint32_t>(buf[static_cast<std::size_t>(6 + i)])
                  << (8 * i);
    }
    const std::uint16_t version =
        static_cast<std::uint16_t>(buf[4] | (buf[5] << 8));
    if (magic == kTraceMagic && version == kTraceVersion && sampling != 0) {
      report_.header_valid = true;
      sampling_ = sampling;
      pos = kHeaderBytes;
    }
  }

  // Scan: decode blocks where possible; on damage, probe byte-by-byte for
  // the next position where a whole block (header, plausible sizes, CRC,
  // payload) decodes, and account the gap as one lost range.
  bool in_damage = false;
  std::size_t damage_start = 0;
  const auto tally = [&](BlockError error) {
    switch (error) {
      case BlockError::kVarint: ++report_.varint_errors; break;
      case BlockError::kTruncated: ++report_.truncations; break;
      case BlockError::kCrc: ++report_.crc_mismatches; break;
      case BlockError::kDecode: ++report_.decode_errors; break;
      case BlockError::kNone: break;
    }
  };
  const auto close_damage = [&](std::size_t end) {
    if (!in_damage) return;
    report_.lost_ranges.push_back({damage_start, end - damage_start});
    ++report_.blocks_skipped;
    in_damage = false;
  };

  while (pos < buf.size()) {
    const TryBlock t = try_block(bytes, pos, &block_);
    if (t.ok && t.end_marker && t.next != buf.size()) {
      // A zero count mid-file is either corruption or an end marker with
      // trailing garbage; keep scanning so blocks after it are recovered.
      if (!in_damage) {
        in_damage = true;
        damage_start = pos;
        ++report_.varint_errors;
      }
      ++pos;
      continue;
    }
    if (t.ok) {
      close_damage(pos);
      if (t.end_marker) {
        report_.end_marker_seen = true;
        pos = t.next;
        break;
      }
      ++report_.blocks_decoded;
      pos = t.next;
      continue;
    }
    if (!in_damage) {
      in_damage = true;
      damage_start = pos;
      tally(t.error);
    }
    ++pos;
  }
  close_damage(buf.size());
  report_.records_recovered = block_.size();
  cursor_ = 0;
  eof_ = true;  // everything already decoded into block_
}

bool TraceReader::next(FlowRecord& out) {
  while (cursor_ >= block_.size()) {
    if (!load_block()) return false;
  }
  out = block_[cursor_++];
  return true;
}

std::vector<FlowRecord> TraceReader::read_all() {
  std::vector<FlowRecord> all;
  FlowRecord r;
  while (next(r)) all.push_back(r);
  return all;
}

void write_trace_file(const std::string& path, std::span<const FlowRecord> records,
                      std::uint32_t sampling_denominator) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw FormatError("trace: cannot open for writing: " + path);
  TraceWriter writer(out, sampling_denominator);
  writer.write_all(records);
  writer.finish();
}

void write_trace_file(const std::string& path, ColumnarRecords::Range records,
                      std::uint32_t sampling_denominator) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw FormatError("trace: cannot open for writing: " + path);
  TraceWriter writer(out, sampling_denominator);
  writer.write_all(records);
  writer.finish();
}

void write_trace_file(const std::string& path, RecordStore::Range records,
                      std::uint32_t sampling_denominator) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw FormatError("trace: cannot open for writing: " + path);
  TraceWriter writer(out, sampling_denominator);
  writer.write_all(records);
  writer.finish();
}

std::vector<FlowRecord> read_trace_file(const std::string& path,
                                        std::uint32_t* sampling) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw FormatError("trace: cannot open for reading: " + path);
  TraceReader reader(in);
  if (sampling != nullptr) *sampling = reader.sampling_denominator();
  return reader.read_all();
}

SalvageResult salvage_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw FormatError("trace: cannot open for reading: " + path);
  TraceReader reader(in, ReadMode::kSalvage);
  SalvageResult result;
  result.records = reader.read_all();
  result.sampling = reader.sampling_denominator();
  result.report = reader.report();
  return result;
}

std::vector<BlockSpan> trace_layout(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderBytes) throw FormatError("trace: truncated header");
  std::uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) {
    magic |= static_cast<std::uint32_t>(bytes[static_cast<std::size_t>(i)])
             << (8 * i);
  }
  if (magic != kTraceMagic) throw FormatError("trace: bad magic");

  std::vector<BlockSpan> layout;
  std::size_t pos = kHeaderBytes;
  std::uint64_t record_index = 0;
  for (;;) {
    const TryBlock t = try_block(bytes, pos, nullptr);
    if (!t.ok) {
      throw FormatError("trace: malformed block " +
                        std::to_string(layout.size()) + " at byte " +
                        std::to_string(pos));
    }
    if (t.end_marker) {
      if (t.next != bytes.size()) {
        throw FormatError("trace: trailing bytes after end marker");
      }
      return layout;
    }
    // Re-derive the header split (count/payload varints) for the span.
    std::size_t p = pos;
    std::uint64_t record_count = 0;
    std::uint64_t payload_size = 0;
    const auto read_varint = [&](std::uint64_t& v) {
      v = 0;
      int shift = 0;
      std::uint8_t b;
      do {
        b = bytes[p++];
        v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        shift += 7;
      } while ((b & 0x80) != 0);
    };
    read_varint(record_count);
    read_varint(payload_size);
    BlockSpan span;
    span.offset = pos;
    span.size = t.next - pos;
    span.payload_offset = p;
    span.payload_size = payload_size;
    span.record_count = record_count;
    span.first_record = record_index;
    layout.push_back(span);
    record_index += record_count;
    pos = t.next;
  }
}

}  // namespace dm::netflow
