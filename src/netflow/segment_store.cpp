#include "netflow/segment_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <span>

#include "netflow/trace_io.h"
#include "util/error.h"

namespace dm::netflow {
namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kMagic = 0x47534D44u;  // "DMSG" read little-endian
constexpr std::uint16_t kVersion = 1;
constexpr std::size_t kHeaderSize = 56;
/// Geometry sanity cap: no single section of a real segment approaches 1 TiB
/// (segments seal at tens of MiB), so any header field past this is damage,
/// and the cap keeps the expected-size arithmetic below overflow-free.
constexpr std::uint64_t kMaxSectionBytes = 1ull << 40;

void store_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}
void store_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
void store_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
std::uint16_t load_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}
std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

/// Section offsets within the body (relative to file offset kHeaderSize,
/// which is 8-aligned — so payload_offs/checkpoints stay 8-aligned in the
/// mapping).
struct Geometry {
  std::uint64_t off_payload_offs = 0;
  std::uint64_t off_checkpoints = 0;
  std::uint64_t off_headers = 0;
  std::uint64_t off_payload = 0;
  std::uint64_t body_bytes = 0;
};

Geometry geometry_of(const SegmentMeta& m) {
  Geometry g;
  g.off_payload_offs = (m.runs * sizeof(std::uint32_t) + 7) & ~std::uint64_t{7};
  g.off_checkpoints = g.off_payload_offs + m.runs * sizeof(std::uint64_t);
  g.off_headers = g.off_checkpoints + m.checkpoints * sizeof(ColumnarCheckpoint);
  g.off_payload = g.off_headers + m.header_bytes;
  g.body_bytes = g.off_payload + m.payload_bytes;
  return g;
}

/// Structural plausibility of a decoded header. Damage that survives the
/// header CRC is astronomically unlikely, but the checks are cheap and keep
/// the size arithmetic overflow-free.
bool plausible(const SegmentMeta& m) {
  if (m.records > (1ull << 32) || m.runs > m.records) return false;
  if (m.checkpoints > m.runs) return false;
  if (m.runs > 0 && m.checkpoints == 0) return false;  // seek needs cp 0
  if (m.header_bytes > kMaxSectionBytes) return false;
  if (m.payload_bytes > kMaxSectionBytes) return false;
  return true;
}

std::vector<std::string> list_segment_files(const std::string& directory) {
  if (!fs::is_directory(directory)) {
    throw FormatError("segment store: no such directory: " + directory);
  }
  std::vector<std::string> paths;
  for (const fs::directory_entry& entry : fs::directory_iterator(directory)) {
    if (entry.path().extension() == ".dmseg") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

}  // namespace

void write_segment_file(const std::string& path,
                        const ColumnarRecords& store) {
  const ColumnarView v = store.view();
  const ColumnarRecords::BufferSizes sizes = store.buffer_sizes();
  SegmentMeta meta;
  // dmlint: covers(meta, SegmentMeta)
  meta.records = v.records;
  meta.runs = sizes.runs;
  meta.checkpoints = sizes.checkpoints;
  meta.header_bytes = sizes.header_bytes;
  meta.payload_bytes = sizes.payload_bytes;
  // dmlint: covers-end(meta)

  const Geometry g = geometry_of(meta);
  std::vector<std::uint8_t> body(static_cast<std::size_t>(g.body_bytes), 0);
  const auto copy_section = [&](std::uint64_t off, const void* src,
                                std::uint64_t bytes) {
    if (bytes > 0) std::memcpy(body.data() + off, src, bytes);
  };
  copy_section(0, v.run_starts, meta.runs * sizeof(std::uint32_t));
  copy_section(g.off_payload_offs, v.payload_offs,
               meta.runs * sizeof(std::uint64_t));
  copy_section(g.off_checkpoints, v.checkpoints,
               meta.checkpoints * sizeof(ColumnarCheckpoint));
  copy_section(g.off_headers, v.headers, meta.header_bytes);
  copy_section(g.off_payload, v.payload, meta.payload_bytes);

  std::uint8_t header[kHeaderSize] = {};
  store_u32(header + 0, kMagic);
  store_u16(header + 4, kVersion);
  store_u16(header + 6, 0);  // flags
  store_u64(header + 8, meta.records);
  store_u64(header + 16, meta.runs);
  store_u64(header + 24, meta.checkpoints);
  store_u64(header + 32, meta.header_bytes);
  store_u64(header + 40, meta.payload_bytes);
  store_u32(header + 48, crc32({body.data(), body.size()}));
  store_u32(header + 52, crc32({header, 52}));

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("segment store: cannot create " + path);
  out.write(reinterpret_cast<const char*>(header), kHeaderSize);
  out.write(reinterpret_cast<const char*>(body.data()),
            static_cast<std::streamsize>(body.size()));
  out.flush();
  if (!out) throw Error("segment store: short write to " + path);
}

MappedSegment::~MappedSegment() {
  if (base_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(base_), file_bytes_);
  }
}

MappedSegment::MapAttempt MappedSegment::try_map(const std::string& path) {
  MapAttempt out;
  const auto fail = [&](SegmentFileStatus status, std::string detail) {
    out.status = status;
    out.detail = std::move(detail);
    out.segment.reset();
    return out;
  };

  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return fail(SegmentFileStatus::kBadHeader,
                "cannot open: " + std::string(std::strerror(errno)));
  }
  struct stat st = {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return fail(SegmentFileStatus::kBadHeader, "cannot stat file");
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  out.file_bytes = size;
  if (size < kHeaderSize) {
    ::close(fd);
    return fail(SegmentFileStatus::kTruncated,
                "file shorter than the 56-byte segment header");
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (base == MAP_FAILED) {
    return fail(SegmentFileStatus::kBadHeader,
                "mmap failed: " + std::string(std::strerror(errno)));
  }

  // Hand ownership to the (private-constructor) object immediately so every
  // early return below unmaps.
  std::shared_ptr<MappedSegment> seg(new MappedSegment());
  seg->base_ = static_cast<const std::uint8_t*>(base);
  seg->file_bytes_ = size;

  const std::uint8_t* h = seg->base_;
  if (load_u32(h) != kMagic) {
    return fail(SegmentFileStatus::kBadHeader, "bad magic (not a .dmseg)");
  }
  if (load_u16(h + 4) != kVersion) {
    return fail(SegmentFileStatus::kBadHeader,
                "unsupported segment version " +
                    std::to_string(load_u16(h + 4)));
  }
  const std::uint32_t stored_header_crc = load_u32(h + 52);
  const std::uint32_t actual_header_crc = crc32({h, 52});
  if (stored_header_crc != actual_header_crc) {
    return fail(SegmentFileStatus::kBadHeader, "header CRC mismatch");
  }

  SegmentMeta meta;
  // dmlint: covers(meta, SegmentMeta)
  meta.records = load_u64(h + 8);
  meta.runs = load_u64(h + 16);
  meta.checkpoints = load_u64(h + 24);
  meta.header_bytes = load_u64(h + 32);
  meta.payload_bytes = load_u64(h + 40);
  // dmlint: covers-end(meta)
  out.header_records = meta.records;
  if (!plausible(meta)) {
    return fail(SegmentFileStatus::kBadHeader, "implausible segment geometry");
  }
  const Geometry g = geometry_of(meta);
  const std::uint64_t expected = kHeaderSize + g.body_bytes;
  if (size < expected) {
    return fail(SegmentFileStatus::kTruncated,
                "file is " + std::to_string(size) + " bytes, header implies " +
                    std::to_string(expected));
  }
  if (size > expected) {
    return fail(SegmentFileStatus::kBadHeader,
                "trailing bytes past the segment body");
  }

  seg->meta_ = meta;
  seg->body_crc_ = load_u32(h + 48);
  const std::uint8_t* body = seg->base_ + kHeaderSize;
  seg->view_ = ColumnarView{
      body + g.off_headers,
      body + g.off_payload,
      reinterpret_cast<const std::uint32_t*>(body),
      reinterpret_cast<const std::uint64_t*>(body + g.off_payload_offs),
      reinterpret_cast<const ColumnarCheckpoint*>(body + g.off_checkpoints),
      static_cast<std::size_t>(meta.runs),
      static_cast<std::size_t>(meta.checkpoints),
      static_cast<std::size_t>(meta.records),
      static_cast<std::size_t>(meta.header_bytes),
      static_cast<std::size_t>(meta.payload_bytes)};
  out.segment = std::move(seg);
  return out;
}

std::shared_ptr<const MappedSegment> MappedSegment::map(
    const std::string& path) {
  MapAttempt attempt = try_map(path);
  if (attempt.status != SegmentFileStatus::kOk) {
    throw FormatError("segment " + path + ": " + attempt.detail);
  }
  return std::move(attempt.segment);
}

bool MappedSegment::body_crc_ok() const noexcept {
  return crc32({base_ + kHeaderSize, file_bytes_ - kHeaderSize}) == body_crc_;
}

SegmentStore SegmentStore::open(const std::string& directory) {
  SegmentStore store;
  for (const std::string& path : list_segment_files(directory)) {
    const std::shared_ptr<const MappedSegment> seg = MappedSegment::map(path);
    if (!seg->body_crc_ok()) {
      throw FormatError("segment " + path + ": body CRC mismatch");
    }
    store.segments_.push_back(Segment{path, store.total_records_,
                                      seg->meta().records, seg->file_bytes()});
    store.total_records_ += seg->meta().records;
  }
  return store;
}

std::pair<SegmentStore, SegmentStore::SalvageReport> SegmentStore::salvage(
    const std::string& directory) {
  SegmentStore store;
  SalvageReport report;
  for (const std::string& path : list_segment_files(directory)) {
    MappedSegment::MapAttempt attempt = MappedSegment::try_map(path);
    LedgerEntry entry;
    entry.path = path;
    entry.status = attempt.status;
    entry.file_bytes = attempt.file_bytes;
    entry.records = attempt.header_records;
    entry.detail = attempt.detail;
    if (attempt.status == SegmentFileStatus::kOk &&
        !attempt.segment->body_crc_ok()) {
      entry.status = SegmentFileStatus::kBodyCorrupt;
      entry.detail = "body CRC mismatch";
      attempt.segment.reset();
    }
    if (entry.status == SegmentFileStatus::kOk) {
      report.segments_recovered += 1;
      report.records_recovered += entry.records;
      store.segments_.push_back(Segment{path, store.total_records_,
                                        entry.records, entry.file_bytes});
      store.total_records_ += entry.records;
    } else {
      report.segments_damaged += 1;
      report.records_lost += entry.records;
    }
    report.entries.push_back(std::move(entry));
  }
  return {std::move(store), std::move(report)};
}

std::uint64_t SegmentStore::file_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const Segment& s : segments_) total += s.file_bytes;
  return total;
}

std::shared_ptr<const MappedSegment> SegmentStore::map_segment(
    std::size_t i) const {
  return MappedSegment::map(segments_[i].path);
}

std::size_t SegmentStore::segment_containing(
    std::size_t record_index) const noexcept {
  const auto it = std::upper_bound(
      segments_.begin(), segments_.end(), record_index,
      [](std::size_t r, const Segment& s) { return r < s.first_record; });
  return static_cast<std::size_t>(it - segments_.begin()) - 1;
}

RecordStore::Cursor RecordStore::cursor_at(std::size_t record_index) const {
  Cursor c;
  c.limit_ = size();
  if (!spilled_) {
    c.inner_ = resident_.cursor_at(record_index);
    return c;
  }
  c.store_ = &segments_;
  if (record_index >= c.limit_) {
    c.next_segment_ = segments_.segment_count();
    c.base_ = c.limit_;
    return c;
  }
  const std::size_t s = segments_.segment_containing(record_index);
  const SegmentStore::Segment& seg = segments_.segments()[s];
  c.next_segment_ = s + 1;
  c.base_ = static_cast<std::size_t>(seg.first_record);
  c.mapped_ = segments_.map_segment(s);
  c.inner_ = ColumnarRecords::seek(c.mapped_->view(), record_index - c.base_);
  return c;
}

bool RecordStore::Cursor::advance_segment() {
  mapped_.reset();
  if (store_ == nullptr) return false;
  const std::vector<SegmentStore::Segment>& segs = store_->segments();
  while (next_segment_ < segs.size() &&
         segs[next_segment_].first_record < limit_) {
    const SegmentStore::Segment& seg = segs[next_segment_];
    base_ = static_cast<std::size_t>(seg.first_record);
    mapped_ = store_->map_segment(next_segment_);
    ++next_segment_;
    inner_.reset(mapped_->view(), limit_ - base_);
    if (inner_.next()) return true;
    mapped_.reset();
  }
  return false;
}

RecordStore::BlockCursor RecordStore::block_cursor_at(
    std::size_t record_index) const {
  BlockCursor c;
  c.limit_ = size();
  if (!spilled_) {
    c.inner_ = resident_.block_cursor_at(record_index);
    return c;
  }
  c.store_ = &segments_;
  if (record_index >= c.limit_) {
    c.next_segment_ = segments_.segment_count();
    c.base_ = c.limit_;
    return c;
  }
  const std::size_t s = segments_.segment_containing(record_index);
  const SegmentStore::Segment& seg = segments_.segments()[s];
  c.next_segment_ = s + 1;
  c.base_ = static_cast<std::size_t>(seg.first_record);
  c.mapped_ = segments_.map_segment(s);
  c.inner_ = ColumnarRecords::BlockCursor(
      ColumnarRecords::seek(c.mapped_->view(), record_index - c.base_));
  return c;
}

bool RecordStore::BlockCursor::advance_segment(DecodedBlock& out) {
  mapped_.reset();
  if (store_ == nullptr) return false;
  const std::vector<SegmentStore::Segment>& segs = store_->segments();
  while (next_segment_ < segs.size() &&
         segs[next_segment_].first_record < limit_) {
    const SegmentStore::Segment& seg = segs[next_segment_];
    base_ = static_cast<std::size_t>(seg.first_record);
    mapped_ = store_->map_segment(next_segment_);
    ++next_segment_;
    inner_.reset(mapped_->view(), limit_ - base_);
    if (inner_.next(out)) {
      out.base_index += base_;
      return true;
    }
    mapped_.reset();
  }
  return false;
}

RecordStore::BlockCursor RecordStore::blocks(std::size_t first,
                                             std::size_t last) const {
  if (last > size()) last = size();
  if (first > last) first = last;
  BlockCursor c = block_cursor_at(first);
  c.limit_ = last;
  if (last >= c.base_) c.inner_.clip(last - c.base_);
  return c;
}

RecordStore::Range RecordStore::range(std::size_t first,
                                      std::size_t last) const {
  if (last > size()) last = size();
  if (first > last) first = last;
  Cursor c = cursor_at(first);
  c.limit_ = last;
  if (last >= c.base_) c.inner_.clip(last - c.base_);
  return Range(c, last - first);
}

RecordStore::Range RecordStore::all() const { return range(0, size()); }

Direction RecordStore::direction_of(std::size_t record_index) const {
  Cursor c = cursor_at(record_index);
  c.next();
  return c.direction();
}

SpillWriter::SpillWriter(const SpillConfig& config)
    : config_(config), policy_(config) {
  if (!config_.enabled()) {
    throw Error("SpillWriter: spill directory not configured");
  }
  fs::create_directories(config_.directory);
  // Stale segments from an earlier run in the same directory would be
  // picked up by open()/salvage(); start from a clean slate.
  for (const fs::directory_entry& entry :
       fs::directory_iterator(config_.directory)) {
    if (entry.path().extension() == ".dmseg") fs::remove(entry.path());
  }
}

void SpillWriter::append(ColumnarRecords&& shard) {
  // The window index space is 32-bit pipeline-wide; spilling moves bytes
  // out of RAM but not indices out of u32.
  if (sealed_records_ + pending_.size() + shard.size() >
      static_cast<std::size_t>(UINT32_MAX) + 1) {
    throw Error("SpillWriter: record count exceeds 2^32");
  }
  pending_.append(std::move(shard));
  if (!pending_.empty() && policy_.should_seal(pending_.encoded_bytes())) {
    seal();
  }
}

void SpillWriter::seal() {
  char name[32];
  std::snprintf(name, sizeof name, "seg-%06zu.dmseg",
                store_.segments_.size());
  const std::string path = (fs::path(config_.directory) / name).string();
  write_segment_file(path, pending_);
  store_.segments_.push_back(SegmentStore::Segment{
      path, sealed_records_, pending_.size(), fs::file_size(path)});
  store_.total_records_ += pending_.size();
  sealed_records_ += pending_.size();
  pending_ = ColumnarRecords();
}

RecordStore SpillWriter::finish() && {
  if (store_.segment_count() == 0) {
    // Zero spill waves: the whole trace fit under the seal threshold.
    pending_.shrink_to_fit();
    return RecordStore(std::move(pending_));
  }
  if (!pending_.empty()) seal();
  return RecordStore(std::move(store_));
}

}  // namespace dm::netflow
