// Spill tier for the columnar trace: immutable, CRC-framed, memory-mapped
// segment files plus the SpillWriter that seals them and the RecordStore
// facade that makes a spilled trace iterate exactly like a resident one.
//
// Segment file format (little-endian, one encoded store per file):
//
//   header (56 bytes)
//     u32  magic 'DMSG'        u16 version = 1      u16 flags = 0
//     u64  records  runs  checkpoints  header_bytes  payload_bytes
//     u32  body_crc32          u32 header_crc32 (over bytes [0, 52))
//   body (starts at offset 56, which is 8-aligned)
//     run_starts    u32[runs]          (then zero-pad to 8)
//     payload_offs  u64[runs]
//     checkpoints   ColumnarCheckpoint[checkpoints]   (4 × u64 each)
//     headers       u8[header_bytes]
//     payload       u8[payload_bytes]
//
// The body is the resident ColumnarRecords representation laid out verbatim,
// so a mapped segment is decoded by the same Cursor that walks the resident
// vectors — the spill tier reuses the varint/run-length codec and the seek
// index instead of defining a second format. Every segment is self-contained
// (its first run header is encoded relative to (0, 0)), which is what makes
// the decoded concatenation of segments byte-identical to the resident
// store the same shards would have produced, and what lets salvage drop a
// damaged segment without poisoning its successors.
//
// mmap lifetime: segments are mapped on demand, one at a time per cursor —
// a streaming pass holds exactly one mapping and munmaps it on segment
// advance, so file-backed RSS is bounded by (concurrent cursors × segment
// size) regardless of trace size. Both CRCs are verified once at
// open()/salvage(); cursors trust files after that.
//
// Salvage contract (the dmnf `verify` path, PR 4): salvage() inspects every
// *.dmseg in name order and returns the store over the valid ones plus a
// ledger entry per file — damaged segments lose only their own records, and
// the recovered store re-bases record indices over the survivors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "netflow/columnar_records.h"
#include "netflow/spill_policy.h"

namespace dm::netflow {

/// The segment header's variable fields — the decode geometry a reader must
/// restore before it can interpret the body.
struct SegmentMeta {
  // dmlint: checkpointed
  std::uint64_t records = 0;       ///< decoded record count
  std::uint64_t runs = 0;          ///< run_starts / payload_offs entries
  std::uint64_t checkpoints = 0;   ///< checkpoint entries
  std::uint64_t header_bytes = 0;  ///< run-header stream length
  std::uint64_t payload_bytes = 0; ///< payload stream length
};

/// Writes `store`'s encoded arrays to `path` in the segment format above.
/// Throws dm::Error on I/O failure. Exposed for the round-trip tests;
/// normal writes go through SpillWriter.
void write_segment_file(const std::string& path, const ColumnarRecords& store);

/// Per-file verdict of a structural segment inspection.
enum class SegmentFileStatus : std::uint8_t {
  kOk,
  kBadHeader,    ///< magic/version/header-CRC/geometry/size mismatch
  kTruncated,    ///< file shorter than the header's geometry implies
  kBodyCorrupt,  ///< structure fine, body CRC mismatch
};

/// One mapped segment file. Obtained from SegmentStore::map_segment(); the
/// mapping lives exactly as long as the shared_ptr (cursors drop it when
/// they advance past the segment, which is what keeps streaming RSS flat).
class MappedSegment {
 public:
  /// Outcome of try_map(): `segment` is null unless status == kOk.
  /// `header_records` is trustworthy whenever the header CRC passed (so a
  /// truncated file still reports how many records it lost).
  struct MapAttempt {
    std::shared_ptr<const MappedSegment> segment;
    SegmentFileStatus status = SegmentFileStatus::kOk;
    std::string detail;
    std::uint64_t file_bytes = 0;
    std::uint64_t header_records = 0;
  };

  MappedSegment(const MappedSegment&) = delete;
  MappedSegment& operator=(const MappedSegment&) = delete;
  ~MappedSegment();

  /// Maps `path` and validates the structural header (magic, version,
  /// header CRC, exact file size). Does NOT check the body CRC — that is a
  /// full-file read, paid once at SegmentStore::open()/salvage().
  /// Throws dm::FormatError on any mismatch.
  [[nodiscard]] static std::shared_ptr<const MappedSegment> map(
      const std::string& path);

  /// Non-throwing variant of map() reporting the per-file verdict — the
  /// salvage scanner's entry point.
  [[nodiscard]] static MapAttempt try_map(const std::string& path);

  [[nodiscard]] const SegmentMeta& meta() const noexcept { return meta_; }
  [[nodiscard]] const ColumnarView& view() const noexcept { return view_; }
  [[nodiscard]] std::uint64_t file_bytes() const noexcept {
    return file_bytes_;
  }
  /// True when the body bytes hash to the header's body CRC.
  [[nodiscard]] bool body_crc_ok() const noexcept;

 private:
  MappedSegment() = default;

  const std::uint8_t* base_ = nullptr;  ///< mmap base (whole file)
  std::size_t file_bytes_ = 0;
  SegmentMeta meta_;
  ColumnarView view_;
  std::uint32_t body_crc_ = 0;  ///< stored body CRC from the header
};

/// An ordered set of segment files forming one logical record store.
class SegmentStore {
 public:
  struct Segment {
    std::string path;
    std::uint64_t first_record = 0;  ///< global index of this segment's record 0
    std::uint64_t records = 0;
    std::uint64_t file_bytes = 0;
  };

  using FileStatus = SegmentFileStatus;

  /// One ledger line per *.dmseg file inspected, in file-name order.
  struct LedgerEntry {
    std::string path;
    FileStatus status = FileStatus::kOk;
    std::uint64_t file_bytes = 0;  ///< on-disk size
    std::uint64_t records = 0;     ///< header's record count (0 if unreadable)
    std::string detail;            ///< reason when status != kOk
  };

  /// Damage ledger from salvage(): exact per-file outcomes plus totals.
  struct SalvageReport {
    // dmlint: must-use
    std::vector<LedgerEntry> entries;
    std::uint64_t segments_recovered = 0;
    std::uint64_t segments_damaged = 0;
    std::uint64_t records_recovered = 0;
    std::uint64_t records_lost = 0;  ///< from damaged headers when readable
    [[nodiscard]] bool clean() const noexcept { return segments_damaged == 0; }
  };

  SegmentStore() = default;

  /// Opens every *.dmseg under `directory` (file-name order), verifying both
  /// CRCs of every file. Throws dm::FormatError on the first damaged file.
  [[nodiscard]] static SegmentStore open(const std::string& directory);

  /// Degraded-mode open: keeps every valid segment, records every damaged
  /// one in the ledger, never throws on damage. Record indices re-base over
  /// the surviving segments.
  [[nodiscard]] static std::pair<SegmentStore, SalvageReport> salvage(
      const std::string& directory);

  [[nodiscard]] std::size_t segment_count() const noexcept {
    return segments_.size();
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return static_cast<std::size_t>(total_records_);
  }
  [[nodiscard]] const std::vector<Segment>& segments() const noexcept {
    return segments_;
  }
  /// Sum of on-disk segment sizes — the spilled analogue of
  /// ColumnarRecords::encoded_bytes().
  [[nodiscard]] std::uint64_t file_bytes() const noexcept;

  /// Maps segment `i` (structural validation only — see MappedSegment::map).
  [[nodiscard]] std::shared_ptr<const MappedSegment> map_segment(
      std::size_t i) const;

  /// Index of the segment containing global `record_index` (< size()).
  [[nodiscard]] std::size_t segment_containing(
      std::size_t record_index) const noexcept;

 private:
  friend class SpillWriter;

  std::vector<Segment> segments_;
  std::uint64_t total_records_ = 0;
};

/// Unified record store: either a resident ColumnarRecords or a spilled
/// SegmentStore, behind one Cursor/Range API shaped exactly like
/// ColumnarRecords' — consumers (window aggregation, detectors, analysis
/// exhibits, trace export) iterate the same way in both modes.
class RecordStore {
 public:
  class Cursor;
  class BlockCursor;
  class Range;

  RecordStore() = default;
  explicit RecordStore(ColumnarRecords resident)
      : resident_(std::move(resident)) {}
  explicit RecordStore(SegmentStore segments)
      : segments_(std::move(segments)), spilled_(true) {}

  [[nodiscard]] bool spilled() const noexcept { return spilled_; }
  [[nodiscard]] std::size_t size() const noexcept {
    return spilled_ ? segments_.size() : resident_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// Encoded footprint: resident bytes in RAM mode, on-disk bytes in spill
  /// mode — the bench's bytes/record numerator either way.
  [[nodiscard]] std::uint64_t encoded_bytes() const noexcept {
    return spilled_ ? segments_.file_bytes() : resident_.encoded_bytes();
  }

  [[nodiscard]] const ColumnarRecords& resident() const noexcept {
    return resident_;
  }
  [[nodiscard]] const SegmentStore& segments() const noexcept {
    return segments_;
  }

  // Not noexcept: mapping a segment can fail (mmap exhaustion), unlike the
  // purely in-RAM ColumnarRecords equivalents.
  [[nodiscard]] Cursor cursor_at(std::size_t record_index) const;
  [[nodiscard]] Range range(std::size_t first, std::size_t last) const;
  [[nodiscard]] Range all() const;
  [[nodiscard]] Direction direction_of(std::size_t record_index) const;

  /// Batch counterparts: BlockCursor positioned before `record_index`, or
  /// clipped to decode exactly records [first, last). Same segment-mapping
  /// discipline as Cursor (one segment mapped at a time); blocks never span
  /// a segment boundary and base_index is rebased to the global space.
  [[nodiscard]] BlockCursor block_cursor_at(std::size_t record_index) const;
  [[nodiscard]] BlockCursor blocks(std::size_t first, std::size_t last) const;

  /// Streaming decoder across segment boundaries. Mirrors
  /// ColumnarRecords::Cursor; maps at most one segment at a time and
  /// releases it on advance (and on exhaustion).
  class Cursor {
   public:
    Cursor() = default;

    bool next() {
      if (inner_.next()) return true;
      return advance_segment();
    }

    [[nodiscard]] const FlowRecord& record() const noexcept {
      return inner_.record();
    }
    [[nodiscard]] Direction direction() const noexcept {
      return inner_.direction();
    }
    /// Global index (into the whole store) of the record `record()` holds.
    [[nodiscard]] std::size_t index() const noexcept {
      return base_ + inner_.index();
    }

   private:
    friend class RecordStore;

    bool advance_segment();

    ColumnarRecords::Cursor inner_;
    const SegmentStore* store_ = nullptr;  ///< null in resident mode
    std::shared_ptr<const MappedSegment> mapped_;
    std::size_t next_segment_ = 0;  ///< next segment index to map
    std::size_t base_ = 0;   ///< global index of the inner view's record 0
    std::size_t limit_ = 0;  ///< global one-past-last record to decode
  };

  /// Batch streaming decoder across segment boundaries — the spill-aware
  /// mirror of ColumnarRecords::BlockCursor, mapping at most one segment at
  /// a time exactly like Cursor. Filled blocks carry global base_index.
  class BlockCursor {
   public:
    BlockCursor() = default;

    /// Fills `out` with the next block (up to DecodedBlock::kCapacity rows,
    /// never spanning a segment boundary); false once exhausted.
    bool next(DecodedBlock& out) {
      if (inner_.next(out)) {
        out.base_index += base_;
        return true;
      }
      return advance_segment(out);
    }

   private:
    friend class RecordStore;

    bool advance_segment(DecodedBlock& out);

    ColumnarRecords::BlockCursor inner_;
    const SegmentStore* store_ = nullptr;  ///< null in resident mode
    std::shared_ptr<const MappedSegment> mapped_;
    std::size_t next_segment_ = 0;  ///< next segment index to map
    std::size_t base_ = 0;   ///< global index of the inner view's record 0
    std::size_t limit_ = 0;  ///< global one-past-last record to decode
  };

  /// Iterable decoded view, API-compatible with ColumnarRecords::Range
  /// (single-pass input iterator exposing direction() and index()).
  class Range {
   public:
    class iterator {
     public:
      using iterator_category = std::input_iterator_tag;
      using value_type = FlowRecord;
      using difference_type = std::ptrdiff_t;
      using pointer = const FlowRecord*;
      using reference = const FlowRecord&;

      iterator() = default;

      [[nodiscard]] reference operator*() const noexcept {
        return cursor_.record();
      }
      [[nodiscard]] pointer operator->() const noexcept {
        return &cursor_.record();
      }
      [[nodiscard]] Direction direction() const noexcept {
        return cursor_.direction();
      }
      [[nodiscard]] std::size_t index() const noexcept {
        return cursor_.index();
      }

      iterator& operator++() {
        at_end_ = !cursor_.next();
        return *this;
      }
      iterator operator++(int) {
        iterator copy = *this;
        ++*this;
        return copy;
      }

      friend bool operator==(const iterator& a, const iterator& b) noexcept {
        if (a.at_end_ || b.at_end_) return a.at_end_ == b.at_end_;
        return a.cursor_.index() == b.cursor_.index();
      }

     private:
      friend class Range;
      explicit iterator(const Cursor& cursor) : cursor_(cursor) {
        at_end_ = !cursor_.next();
      }

      Cursor cursor_;
      bool at_end_ = true;
    };

    Range() = default;

    [[nodiscard]] iterator begin() const noexcept { return iterator(first_); }
    [[nodiscard]] iterator end() const noexcept { return iterator(); }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

   private:
    friend class RecordStore;
    Range(const Cursor& first, std::size_t size) : first_(first), size_(size) {}

    Cursor first_;  ///< unprimed cursor at the range start
    std::size_t size_ = 0;
  };

 private:
  ColumnarRecords resident_;
  SegmentStore segments_;  ///< empty unless spilled_
  bool spilled_ = false;
};

/// Accumulates shard stores in index order and seals them into segment
/// files per the SpillPolicy. finish() returns a resident RecordStore when
/// nothing was sealed (zero spill waves), else the spilled one — callers
/// never branch on which regime a run landed in.
class SpillWriter {
 public:
  /// Creates the spill directory and removes any stale *.dmseg files in it.
  explicit SpillWriter(const SpillConfig& config);

  /// Appends one completed shard (same re-encoding rules as
  /// ColumnarRecords::append) and seals the pending store to disk once the
  /// policy says so.
  void append(ColumnarRecords&& shard);

  /// Records accumulated so far (sealed + pending) — the window-rebase
  /// offset for the shard about to be appended.
  [[nodiscard]] std::size_t records_so_far() const noexcept {
    return sealed_records_ + pending_.size();
  }

  /// Segments sealed so far (diagnostics / wave-count assertions in tests).
  [[nodiscard]] std::size_t segments_sealed() const noexcept {
    return store_.segment_count();
  }

  [[nodiscard]] RecordStore finish() &&;

 private:
  void seal();

  SpillConfig config_;
  SpillPolicy policy_;
  ColumnarRecords pending_;
  SegmentStore store_;
  std::size_t sealed_records_ = 0;
};

}  // namespace dm::netflow
