// LEB128 varints and zigzag mappings shared by the on-disk trace format
// (trace_io) and the in-memory columnar record store (columnar_records).
//
// Encoding is append-only into a byte vector. Two decoders exist by design:
// the unchecked pointer-advancing get_varint below for self-produced,
// trusted buffers (the columnar store decodes only bytes it encoded), and
// the bounds-checked CheckedCursor for untrusted bytes (trace files,
// StreamMonitor checkpoints).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/error.h"

namespace dm::netflow {

inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Decodes one varint from a trusted buffer, advancing `p`. No bounds
/// checking: callers guarantee `p` points at a well-formed varint (the
/// columnar store only decodes buffers it produced; the ASan/UBSan CI gate
/// covers the invariant).
[[nodiscard]] inline std::uint64_t get_varint(const std::uint8_t*& p) noexcept {
  std::uint64_t v = 0;
  int shift = 0;
  std::uint8_t b;
  do {
    b = *p++;
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    shift += 7;
  } while ((b & 0x80) != 0);
  return v;
}

/// Bounds-checked decoder over untrusted bytes. Every primitive throws
/// dm::FormatError (prefixed with `context`) instead of reading past the
/// span — the decode side of the varint/CRC framing shared by trace files
/// and StreamMonitor checkpoints.
class CheckedCursor {
 public:
  explicit CheckedCursor(std::span<const std::uint8_t> bytes,
                         const char* context = "varint") noexcept
      : bytes_(bytes), context_(context) {}

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (pos_ >= bytes_.size() || shift > 63) {
        throw FormatError(std::string(context_) + ": truncated varint");
      }
      const std::uint8_t b = bytes_[pos_++];
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  [[nodiscard]] bool exhausted() const noexcept { return pos_ >= bytes_.size(); }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

 private:
  std::span<const std::uint8_t> bytes_;
  const char* context_;
  std::size_t pos_ = 0;
};

/// ZigZag: maps small signed deltas to small unsigned varints.
[[nodiscard]] inline std::uint64_t zigzag64(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] inline std::int64_t unzigzag64(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

[[nodiscard]] inline std::uint32_t zigzag32(std::int32_t v) noexcept {
  return (static_cast<std::uint32_t>(v) << 1) ^
         static_cast<std::uint32_t>(v >> 31);
}

[[nodiscard]] inline std::int32_t unzigzag32(std::uint32_t v) noexcept {
  return static_cast<std::int32_t>(v >> 1) ^ -static_cast<std::int32_t>(v & 1);
}

/// Wraparound delta helpers: `a - b` in modular arithmetic zigzagged so
/// both tiny forward and tiny backward steps encode in one or two bytes,
/// while any (a, b) pair — including INT64_MIN/INT64_MAX minutes fed in by
/// ingestion — round-trips exactly (decode adds the delta back mod 2^64).
[[nodiscard]] inline std::uint64_t delta64(std::uint64_t a, std::uint64_t b) noexcept {
  return zigzag64(static_cast<std::int64_t>(a - b));
}

[[nodiscard]] inline std::uint64_t undelta64(std::uint64_t base, std::uint64_t zz) noexcept {
  return base + static_cast<std::uint64_t>(unzigzag64(zz));
}

[[nodiscard]] inline std::uint32_t delta32(std::uint32_t a, std::uint32_t b) noexcept {
  return zigzag32(static_cast<std::int32_t>(a - b));
}

[[nodiscard]] inline std::uint32_t undelta32(std::uint32_t base, std::uint32_t zz) noexcept {
  return base + static_cast<std::uint32_t>(unzigzag32(zz));
}

}  // namespace dm::netflow
