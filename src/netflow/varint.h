// LEB128 varints and zigzag mappings shared by the on-disk trace format
// (trace_io) and the in-memory columnar record store (columnar_records).
//
// Encoding is append-only into a byte vector. Two decoders exist by design:
// the unchecked pointer-advancing get_varint below for self-produced,
// trusted buffers (the columnar store decodes only bytes it encoded), and
// the bounds-checked CheckedCursor for untrusted bytes (trace files,
// StreamMonitor checkpoints).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "util/error.h"

namespace dm::netflow {

inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Encodes v at `p` with no capacity checks and returns the advanced
/// pointer. Callers stage a bounded group of varints in a stack buffer
/// (kMaxVarintBytes of headroom each) and splice the result into the byte
/// vector in one append — identical bytes to repeated put_varint calls.
[[nodiscard]] inline std::uint8_t* put_varint_raw(std::uint8_t* p,
                                                  std::uint64_t v) noexcept {
  while (v >= 0x80) {
    *p++ = static_cast<std::uint8_t>(v) | 0x80;
    v >>= 7;
  }
  *p++ = static_cast<std::uint8_t>(v);
  return p;
}

/// Decodes one varint from a trusted buffer, advancing `p`. No bounds
/// checking: callers guarantee `p` points at a well-formed varint (the
/// columnar store only decodes buffers it produced; the ASan/UBSan CI gate
/// covers the invariant).
[[nodiscard]] inline std::uint64_t get_varint(const std::uint8_t*& p) noexcept {
  std::uint64_t v = 0;
  int shift = 0;
  std::uint8_t b;
  do {
    b = *p++;
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    shift += 7;
  } while ((b & 0x80) != 0);
  return v;
}

/// Bounds-checked decoder over untrusted bytes. Every primitive throws
/// dm::FormatError (prefixed with `context`) instead of reading past the
/// span — the decode side of the varint/CRC framing shared by trace files
/// and StreamMonitor checkpoints.
class CheckedCursor {
 public:
  explicit CheckedCursor(std::span<const std::uint8_t> bytes,
                         const char* context = "varint") noexcept
      : bytes_(bytes), context_(context) {}

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (pos_ >= bytes_.size() || shift > 63) {
        throw FormatError(std::string(context_) + ": truncated varint");
      }
      const std::uint8_t b = bytes_[pos_++];
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  [[nodiscard]] bool exhausted() const noexcept { return pos_ >= bytes_.size(); }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

 private:
  std::span<const std::uint8_t> bytes_;
  const char* context_;
  std::size_t pos_ = 0;
};

/// Longest LEB128 encoding of a u64: ten 7-bit groups.
inline constexpr std::size_t kMaxVarintBytes = 10;

/// Slack a SWAR record decode needs past its start byte: seven fields at
/// worst-case width plus the 8-byte word read of the last field. Callers
/// switch to the scalar decoder for the final bytes of a buffer.
inline constexpr std::size_t kSwarRecordSlack = 7 * kMaxVarintBytes + 8;

/// Unaligned little-endian 64-bit load. The byte-assembly form is
/// endian-independent and folds to a single load on little-endian targets.
[[nodiscard]] inline std::uint64_t load_u64le(const std::uint8_t* p) noexcept {
  std::uint64_t w;
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(&w, p, sizeof w);
  } else {
    w = std::uint64_t{p[0]} | std::uint64_t{p[1]} << 8 |
        std::uint64_t{p[2]} << 16 | std::uint64_t{p[3]} << 24 |
        std::uint64_t{p[4]} << 32 | std::uint64_t{p[5]} << 40 |
        std::uint64_t{p[6]} << 48 | std::uint64_t{p[7]} << 56;
  }
  return w;
}

/// SWAR decode of one varint from a trusted buffer, advancing `p`. Loads an
/// 8-byte word, finds the terminator byte via the continuation-bit mask, and
/// compacts the 7-bit groups with three shift-merge steps — no per-byte
/// loop for the common 1..8-byte encodings. Encodings of 9 or 10 bytes
/// (> 56 significant bits) fall back to the scalar get_varint, which is also
/// this kernel's differential oracle in the tests.
///
/// Contract: at least 8 bytes past `p` are readable (callers budget
/// kSwarRecordSlack per record and take the scalar path near buffer ends),
/// and `p` points at a well-formed varint, same as get_varint.
[[nodiscard]] inline std::uint64_t get_varint_swar(
    const std::uint8_t*& p) noexcept {
  std::uint64_t w = load_u64le(p);
  if ((w & 0x80) == 0) {  // 1-byte fast path: ports, protocol, flags, counts
    ++p;
    return w & 0x7f;
  }
  const std::uint64_t stops = ~w & 0x8080808080808080ULL;
  if (stops == 0) return get_varint(p);  // 9- or 10-byte encoding
  const unsigned len =
      (static_cast<unsigned>(std::countr_zero(stops)) >> 3) + 1;
  w &= ~std::uint64_t{0} >> (64 - 8 * len);  // len <= 8, shift is in range
  w &= 0x7f7f7f7f7f7f7f7fULL;
  // Pairwise 7-bit group compaction: 8x7 -> 4x14 -> 2x28 -> 1x56 bits.
  w = (w & 0x00ff00ff00ff00ffULL) | ((w & 0xff00ff00ff00ff00ULL) >> 1);
  w = (w & 0x0000ffff0000ffffULL) | ((w & 0xffff0000ffff0000ULL) >> 2);
  w = (w & 0x00000000ffffffffULL) | ((w & 0xffffffff00000000ULL) >> 4);
  p += len;
  return w;
}

/// ZigZag: maps small signed deltas to small unsigned varints.
[[nodiscard]] inline std::uint64_t zigzag64(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] inline std::int64_t unzigzag64(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

[[nodiscard]] inline std::uint32_t zigzag32(std::int32_t v) noexcept {
  return (static_cast<std::uint32_t>(v) << 1) ^
         static_cast<std::uint32_t>(v >> 31);
}

[[nodiscard]] inline std::int32_t unzigzag32(std::uint32_t v) noexcept {
  return static_cast<std::int32_t>(v >> 1) ^ -static_cast<std::int32_t>(v & 1);
}

/// Wraparound delta helpers: `a - b` in modular arithmetic zigzagged so
/// both tiny forward and tiny backward steps encode in one or two bytes,
/// while any (a, b) pair — including INT64_MIN/INT64_MAX minutes fed in by
/// ingestion — round-trips exactly (decode adds the delta back mod 2^64).
[[nodiscard]] inline std::uint64_t delta64(std::uint64_t a, std::uint64_t b) noexcept {
  return zigzag64(static_cast<std::int64_t>(a - b));
}

[[nodiscard]] inline std::uint64_t undelta64(std::uint64_t base, std::uint64_t zz) noexcept {
  return base + static_cast<std::uint64_t>(unzigzag64(zz));
}

[[nodiscard]] inline std::uint32_t delta32(std::uint32_t a, std::uint32_t b) noexcept {
  return zigzag32(static_cast<std::int32_t>(a - b));
}

[[nodiscard]] inline std::uint32_t undelta32(std::uint32_t base, std::uint32_t zz) noexcept {
  return base + static_cast<std::uint32_t>(unzigzag32(zz));
}

}  // namespace dm::netflow
