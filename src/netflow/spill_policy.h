// Spill-tier configuration and sealing policy.
//
// SpillConfig is the user-facing knob (ScenarioConfig carries one, dmnf maps
// --spill-dir/--ram-budget onto it): a directory for segment files, a RAM
// budget for the encoded trace, and a segment-size cap. SpillPolicy turns the
// budget into a seal threshold: the pending resident store is sealed into an
// immutable on-disk segment once its encoded bytes reach
//
//     min(segment_bytes, max(ram_budget_bytes / 2, 1 MiB))
//
// Half the budget bounds the *write side* (the pending encoder plus the shard
// being appended); the other half is headroom for the read side — mapped
// segments during streaming decode plus transient shard buffers. Traces whose
// encoded form stays under the threshold never seal at all (zero spill waves),
// so small runs behave exactly as before; shrinking the budget forces one,
// then many, waves — the differential tests sweep all three regimes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

namespace dm::netflow {

/// Out-of-core knob for the columnar trace. An empty directory disables
/// spilling (fully resident, the default).
struct SpillConfig {
  std::string directory;  ///< segment-file directory; empty = resident
  std::uint64_t ram_budget_bytes = 512ull << 20;  ///< encoded-trace budget
  std::uint64_t segment_bytes = 64ull << 20;      ///< per-segment cap

  [[nodiscard]] bool enabled() const noexcept { return !directory.empty(); }
};

/// Sealing decision derived from a SpillConfig.
class SpillPolicy {
 public:
  /// Floor on the seal threshold: segments smaller than this waste seek
  /// index and syscall overhead for no RSS benefit.
  static constexpr std::uint64_t kMinSealBytes = 1ull << 20;

  SpillPolicy() = default;
  explicit SpillPolicy(const SpillConfig& config) noexcept
      : threshold_(std::min(
            std::max(config.segment_bytes, kMinSealBytes),
            std::max(config.ram_budget_bytes / 2, kMinSealBytes))) {}

  [[nodiscard]] std::uint64_t seal_threshold() const noexcept {
    return threshold_;
  }

  /// True once a pending store of `encoded_bytes` should be sealed to disk.
  [[nodiscard]] bool should_seal(std::uint64_t encoded_bytes) const noexcept {
    return encoded_bytes >= threshold_;
  }

 private:
  std::uint64_t threshold_ = UINT64_MAX;  ///< default: never seal
};

}  // namespace dm::netflow
