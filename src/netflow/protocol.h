// IP protocol numbers and the well-known ports the study keys on (Table 1,
// Table 3, Fig 16 of the paper).
#pragma once

#include <cstdint>
#include <string_view>

namespace dm::netflow {

/// IANA protocol numbers used in the study. kIpEncap (protocol 0 traffic in
/// Table 3 — "IP Encap (0)") models the encapsulated traffic class the paper
/// reports.
enum class Protocol : std::uint8_t {
  kIpEncap = 0,
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

[[nodiscard]] constexpr std::string_view to_string(Protocol p) noexcept {
  switch (p) {
    case Protocol::kIpEncap: return "IPENCAP";
    case Protocol::kIcmp: return "ICMP";
    case Protocol::kTcp: return "TCP";
    case Protocol::kUdp: return "UDP";
  }
  return "?";
}

namespace ports {
// Application ports the paper's filters and Table 3 rows use.
inline constexpr std::uint16_t kSsh = 22;
inline constexpr std::uint16_t kSmtp = 25;
inline constexpr std::uint16_t kDns = 53;
inline constexpr std::uint16_t kHttp = 80;
inline constexpr std::uint16_t kHttpAlt = 8080;
inline constexpr std::uint16_t kHttps = 443;
inline constexpr std::uint16_t kSqlServer = 1433;
inline constexpr std::uint16_t kMySql = 3306;
inline constexpr std::uint16_t kRdp = 3389;
inline constexpr std::uint16_t kVnc = 5900;

/// True for the SQL ports the paper filters on ("TCP traffic with
/// destination port 1433 or 3306").
[[nodiscard]] constexpr bool is_sql(std::uint16_t port) noexcept {
  return port == kSqlServer || port == kMySql;
}

/// True for the remote-administration ports used in brute-force detection
/// (SSH, RDP, VNC — §2.2).
[[nodiscard]] constexpr bool is_remote_admin(std::uint16_t port) noexcept {
  return port == kSsh || port == kRdp || port == kVnc;
}

/// True for web ports (HTTP 80/8080, HTTPS 443).
[[nodiscard]] constexpr bool is_web(std::uint16_t port) noexcept {
  return port == kHttp || port == kHttpAlt || port == kHttps;
}
}  // namespace ports

}  // namespace dm::netflow
