// The sampled NetFlow record — the study's unit of input data.
//
// Records model what the paper's collectors emit: per-flow entries sampled
// at 1:4096 at the data-center edge routers and aggregated over one-minute
// windows (§2.2). Packet/byte counts are therefore *sampled* counts; the
// analysis multiplies by the sampling rate when estimating true volumes.
#pragma once

#include <cstdint>
#include <string>

#include "netflow/ipv4.h"
#include "netflow/protocol.h"
#include "netflow/tcp_flags.h"
#include "util/time.h"

namespace dm::netflow {

/// Traffic direction relative to the cloud: inbound traffic targets a VIP,
/// outbound traffic originates from one.
enum class Direction : std::uint8_t { kInbound = 0, kOutbound = 1 };

[[nodiscard]] constexpr std::string_view to_string(Direction d) noexcept {
  return d == Direction::kInbound ? "inbound" : "outbound";
}

[[nodiscard]] constexpr Direction opposite(Direction d) noexcept {
  return d == Direction::kInbound ? Direction::kOutbound : Direction::kInbound;
}

/// One sampled flow entry for one one-minute window.
struct FlowRecord {
  util::Minute minute = 0;   ///< one-minute window index
  IPv4 src_ip;               ///< source address as seen on the wire
  IPv4 dst_ip;               ///< destination address
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Protocol protocol = Protocol::kTcp;
  TcpFlags tcp_flags = TcpFlags::kNone;  ///< cumulative OR over sampled packets
  std::uint32_t packets = 0;  ///< sampled packet count (>= 1 for a logged flow)
  std::uint64_t bytes = 0;    ///< sampled byte count

  friend bool operator==(const FlowRecord&, const FlowRecord&) = default;
};

/// A FlowRecord plus its orientation relative to the cloud address space.
/// Produced by classify(); gives VIP-centric accessors used everywhere in
/// detection and analysis.
struct OrientedFlow {
  const FlowRecord* record = nullptr;
  Direction direction = Direction::kInbound;

  [[nodiscard]] IPv4 vip() const noexcept {
    return direction == Direction::kInbound ? record->dst_ip : record->src_ip;
  }
  [[nodiscard]] IPv4 remote_ip() const noexcept {
    return direction == Direction::kInbound ? record->src_ip : record->dst_ip;
  }
  /// Port on the cloud side of the flow.
  [[nodiscard]] std::uint16_t vip_port() const noexcept {
    return direction == Direction::kInbound ? record->dst_port
                                            : record->src_port;
  }
  /// Port on the Internet side of the flow.
  [[nodiscard]] std::uint16_t remote_port() const noexcept {
    return direction == Direction::kInbound ? record->src_port
                                            : record->dst_port;
  }
  /// The port identifying the targeted application: the destination port of
  /// the flow regardless of direction.
  [[nodiscard]] std::uint16_t service_port() const noexcept {
    return record->dst_port;
  }
};

/// Human-readable one-line rendering for logs and examples.
[[nodiscard]] std::string to_string(const FlowRecord& r);

}  // namespace dm::netflow
