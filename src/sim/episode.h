// Ground-truth attack episodes.
//
// The scheduler plans episodes; the traffic generator turns them into
// sampled NetFlow; validation and calibration compare detector output
// against them. An episode is one contiguous attack by one actor against or
// from one VIP.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cloud/as_registry.h"
#include "netflow/flow_record.h"
#include "sim/attack_type.h"
#include "util/time.h"

namespace dm::sim {

/// One planned attack.
struct AttackEpisode {
  std::uint32_t id = 0;
  AttackType type = AttackType::kSynFlood;
  netflow::Direction direction = netflow::Direction::kInbound;
  netflow::IPv4 vip;  ///< the cloud endpoint (victim if inbound, source if outbound)

  util::Minute start = 0;
  util::Minute end = 0;  ///< exclusive
  /// Peak true (unsampled) packets-per-second of the episode.
  double peak_true_pps = 0.0;
  /// Minutes from start until the rate reaches 90% of peak (§5.2 ramp-up).
  double ramp_up_minutes = 1.0;

  /// Shared by episodes launched by the same actor at the same time against
  /// multiple VIPs ("attacks on multiple VIPs", §4.3). 0 = standalone.
  std::uint32_t campaign_id = 0;
  /// Shared by simultaneous different-type attacks on one VIP
  /// ("multi-vector attacks", §4.2). 0 = standalone.
  std::uint32_t multi_vector_group = 0;

  /// Destination port of the attack traffic (the targeted application).
  std::uint16_t target_port = 0;
  BruteForceProtocol brute_force_protocol = BruteForceProtocol::kSsh;
  PortScanKind scan_kind = PortScanKind::kNull;
  /// SYN floods: sources drawn uniformly from the whole address space
  /// (§6.1: 67.1% of SYN floods are spoofed).
  bool spoofed_sources = false;
  /// The juno SYN-flood tool bug (§4.4): all attack packets carry source
  /// port 1024 or 3072.
  bool fixed_source_ports = false;

  /// Remote endpoints (attack sources for inbound, victims for outbound).
  /// Empty when sources are spoofed (drawn fresh per packet).
  std::vector<netflow::IPv4> remote_hosts;
  /// Unnormalized weight of each remote host's share of the traffic
  /// (parallel to remote_hosts; empty = uniform). Lets a few hosts dominate,
  /// e.g. Fig 5's "70.3% of attack packets are from three IP addresses".
  std::vector<double> remote_weights;

  /// Spam's on-off pattern (§3.1): when > 0, the episode alternates
  /// `on_minutes` of traffic with `off_minutes` of silence.
  util::Minute on_minutes = 0;
  util::Minute off_minutes = 0;

  [[nodiscard]] util::Minute duration() const noexcept { return end - start; }
  [[nodiscard]] bool active_at(util::Minute m) const noexcept {
    if (m < start || m >= end) return false;
    if (on_minutes <= 0) return true;
    const util::Minute phase = (m - start) % (on_minutes + off_minutes);
    return phase < on_minutes;
  }

  /// Planned true pps averaged over minute m: linear ramp to peak over
  /// ramp_up_minutes, then plateau. The rate is evaluated at the middle of
  /// the minute, so a one-minute attack with a sub-minute ramp still spends
  /// the window at its peak. 0 outside the episode or in an off-phase.
  [[nodiscard]] double planned_pps(util::Minute m) const noexcept {
    if (!active_at(m)) return 0.0;
    const double mid = static_cast<double>(m - start) + 0.5;
    if (ramp_up_minutes <= 0.0 || mid >= ramp_up_minutes) return peak_true_pps;
    // Reach 90% of peak at ramp_up_minutes, interpolating from 10%.
    const double t = mid / ramp_up_minutes;
    return peak_true_pps * (0.1 + 0.8 * t);
  }
};

/// The full ground truth of a generated scenario.
struct GroundTruth {
  std::vector<AttackEpisode> episodes;

  [[nodiscard]] std::span<const AttackEpisode> all() const noexcept {
    return episodes;
  }

  /// Episodes of one type/direction (convenience for calibration checks).
  [[nodiscard]] std::vector<const AttackEpisode*> of(
      AttackType type, netflow::Direction dir) const {
    std::vector<const AttackEpisode*> out;
    for (const auto& e : episodes) {
      if (e.type == type && e.direction == dir) out.push_back(&e);
    }
    return out;
  }
};

}  // namespace dm::sim
