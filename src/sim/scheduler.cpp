#include "sim/scheduler.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace dm::sim {

using cloud::AsClass;
using cloud::AsInfo;
using cloud::GeoRegion;
using cloud::ServiceType;
using cloud::TenantClass;
using cloud::VipInfo;
using netflow::Direction;
using netflow::IPv4;
using util::Minute;

namespace {

double clamp_lognormal(util::Rng& rng, double median, double sigma, double lo,
                       double hi) {
  return std::clamp(rng.lognormal_median(median, sigma), lo, hi);
}

/// Hosts for non-TDS attacks must not collide with the TDS blacklist:
/// hitting a dedicated malicious host by accident would misclassify the
/// incident as malicious web activity.
IPv4 clean_host_in(const cloud::AsRegistry& ases, const cloud::TdsBlacklist& tds,
                   const AsInfo& as, util::Rng& rng) {
  IPv4 host = ases.host_in(as, rng);
  for (int retry = 0; tds.contains(host) && retry < 8; ++retry) {
    host = ases.host_in(as, rng);
  }
  return host;
}

IPv4 clean_host_in_class(const cloud::AsRegistry& ases,
                         const cloud::TdsBlacklist& tds, AsClass cls,
                         util::Rng& rng) {
  IPv4 host = ases.host_in_class(cls, rng);
  for (int retry = 0; tds.contains(host) && retry < 8; ++retry) {
    host = ases.host_in_class(cls, rng);
  }
  return host;
}

}  // namespace

EpisodeScheduler::EpisodeScheduler(const ScenarioConfig& config,
                                   const cloud::VipRegistry& vips,
                                   const cloud::AsRegistry& ases,
                                   const cloud::TdsBlacklist& tds)
    : config_(&config),
      vips_(&vips),
      ases_(&ases),
      tds_(&tds),
      rng_(config.seed ^ 0x5c4ed'5c4edULL) {}

GroundTruth EpisodeScheduler::schedule() {
  GroundTruth truth;
  const Minute trace_end = config_->total_minutes();

  for (int day = 0; day < config_->days; ++day) {
    const Minute day_start = static_cast<Minute>(day) * util::kMinutesPerDay;
    for (Direction dir : {Direction::kInbound, Direction::kOutbound}) {
      const double rate = dir == Direction::kInbound
                              ? config_->inbound_sessions_per_vip_day
                              : config_->outbound_sessions_per_vip_day;
      const std::uint64_t sessions =
          rng_.poisson(rate * static_cast<double>(vips_->size()));
      for (std::uint64_t s = 0; s < sessions; ++s) {
        SessionPlan plan;
        plan.direction = dir;
        plan.type = pick_type(dir);
        plan.vip_index = dir == Direction::kInbound
                             ? pick_inbound_victim(plan.type)
                             : pick_outbound_source(plan.type);
        plan.day_start = day_start;
        const AttackParams& p = default_attack_params(plan.type, dir);
        plan.mode2 = p.mode2_probability > 0.0 && rng_.chance(p.mode2_probability);
        run_session(plan, truth);
      }
    }
  }

  if (config_->include_case_study) script_case_study(truth);
  if (config_->include_spam_eruption) script_spam_eruption(truth);
  if (config_->include_subnet_scan) script_subnet_scan(truth);
  if (config_->include_dns_server_case) script_dns_server_case(truth);
  if (config_->include_romania_barrage) script_romania_barrage(truth);
  if (config_->include_serial_attacker) script_serial_attacker(truth);

  // Clip everything to the trace and drop degenerate episodes.
  std::erase_if(truth.episodes, [&](AttackEpisode& e) {
    e.end = std::min(e.end, trace_end);
    if (e.start >= trace_end || e.end <= e.start) return true;
    return e.remote_hosts.empty() && !e.spoofed_sources;
  });
  return truth;
}

namespace {

std::uint32_t draw_attack_count(const AttackParams& p, util::Rng& rng) {
  if (rng.chance(p.p_single)) return 1;
  const double extra = rng.pareto(p.repeat_alpha, 1.0, std::max(2.0, p.repeat_cap));
  return static_cast<std::uint32_t>(
      std::clamp(1.0 + extra, 2.0, std::max(2.0, p.repeat_cap)));
}

}  // namespace

double EpisodeScheduler::episodes_per_session(AttackType type,
                                              Direction dir) const {
  const AttackParams& p = default_attack_params(type, dir);
  // Deterministic scratch stream: the estimate must not perturb rng_.
  util::Rng scratch(0x9e37'79b9'7f4a'7c15ULL ^
                    (static_cast<std::uint64_t>(index_of(type)) << 8) ^
                    static_cast<std::uint64_t>(dir));
  constexpr int kTrials = 512;
  double total = 0.0;
  for (int i = 0; i < kTrials; ++i) {
    const double count = draw_attack_count(p, scratch);
    double episodes = count;
    if (scratch.chance(p.campaign_probability)) {
      const double size = std::clamp(
          scratch.lognormal_median(p.campaign_size_median, 0.8), 1.0,
          p.campaign_size_cap);
      // Campaign members run shortened trains of ~count/2 episodes.
      episodes += (size - 1.0) * std::max(1.0, count / 2.0);
    }
    total += episodes;
  }
  return total / kTrials;
}

util::Minute EpisodeScheduler::reserve_slot(IPv4 vip, AttackType type,
                                             Direction dir, Minute start,
                                             Minute duration) {
  auto& intervals = slots_[{vip.value(), static_cast<int>(type),
                            static_cast<int>(dir)}];
  const Minute pad = inactive_timeout(type) + 2;
  bool moved = true;
  while (moved) {
    moved = false;
    auto it = intervals.lower_bound(start);
    if (it != intervals.begin()) {
      const auto prev = std::prev(it);
      if (prev->second + pad > start) {
        start = prev->second + pad;
        moved = true;
        continue;
      }
    }
    if (it != intervals.end() && start + duration + pad > it->first) {
      start = it->second + pad;
      moved = true;
    }
  }
  intervals.emplace(start, start + duration);
  return start;
}

void EpisodeScheduler::place_episode(AttackEpisode& e) {
  const Minute duration = e.end - e.start;
  e.start = reserve_slot(e.vip, e.type, e.direction, e.start, duration);
  e.end = e.start + duration;
}

AttackType EpisodeScheduler::pick_type(Direction dir) {
  std::array<double, kAttackTypeCount>& cache =
      dir == Direction::kInbound ? type_weights_in_ : type_weights_out_;
  if (cache[0] == 0.0) {
    for (std::size_t i = 0; i < kAttackTypeCount; ++i) {
      const AttackType t = kAllAttackTypes[i];
      cache[i] = default_attack_params(t, dir).session_share /
                 std::max(1.0, episodes_per_session(t, dir));
      // §3.1: inbound floods surge in the holiday season.
      if (dir == Direction::kInbound && is_flood(t)) {
        cache[i] *= config_->inbound_flood_seasonality;
      }
    }
  }
  return kAllAttackTypes[rng_.weighted_index(
      std::span<const double>(cache))];
}

std::uint32_t EpisodeScheduler::pick_inbound_victim(AttackType type) {
  const auto all = vips_->all();
  std::vector<double> weights(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    const VipInfo& v = all[i];
    double w = 1.0;
    switch (type) {
      case AttackType::kSynFlood:
      case AttackType::kUdpFlood:
      case AttackType::kIcmpFlood:
      case AttackType::kDnsReflection:
        w = 0.3 + v.popularity * (v.hosts(ServiceType::kMedia)   ? 1.3
                                  : v.hosts(ServiceType::kHttp)  ? 1.8
                                  : v.hosts(ServiceType::kHttps) ? 1.6
                                                                 : 1.0);
        break;
      case AttackType::kSpam:
        w = v.hosts(ServiceType::kSmtp) ? 20.0 : 0.05;
        break;
      case AttackType::kBruteForce:
        w = 0.5;
        if (v.hosts(ServiceType::kRdp)) w += 6.0;
        if (v.hosts(ServiceType::kSsh)) w += 3.0;
        if (v.hosts(ServiceType::kVnc)) w += 1.0;
        break;
      case AttackType::kSqlInjection:
        w = v.hosts(ServiceType::kSql) ? 15.0 : 0.5;
        break;
      case AttackType::kPortScan:
        w = 1.0;  // scans search widely (§4.1)
        break;
      case AttackType::kTds:
        w = (v.hosts(ServiceType::kHttp) || v.hosts(ServiceType::kHttps))
                ? 5.0
                : (v.hosts(ServiceType::kSmtp) ? 4.0 : 0.3);
        break;
    }
    weights[i] = w;
  }
  return static_cast<std::uint32_t>(rng_.weighted_index(weights));
}

std::uint32_t EpisodeScheduler::pick_outbound_source(AttackType type) {
  const auto all = vips_->all();
  std::vector<double> weights(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    const VipInfo& v = all[i];
    double w = 0.0;
    switch (v.tenant) {
      case TenantClass::kFreeTrial:
        w = type == AttackType::kSpam ? 12.0 : 6.0;  // §3.1: spam = free trials
        break;
      case TenantClass::kPartner: w = 1.0; break;
      case TenantClass::kSmallBusiness: w = 1.0; break;
      case TenantClass::kEnterprise: w = 0.4; break;
    }
    if (v.weak_credentials) w += 4.0;  // compromised-VM pathway (§4.1)
    weights[i] = w;
  }
  return static_cast<std::uint32_t>(rng_.weighted_index(weights));
}

std::uint32_t EpisodeScheduler::attack_count(const AttackParams& p) {
  return draw_attack_count(p, rng_);
}

std::uint16_t EpisodeScheduler::pick_target_port(const SessionPlan& plan,
                                                 const VipInfo& vip,
                                                 BruteForceProtocol* bf_proto) {
  namespace ports = netflow::ports;
  const bool inbound = plan.direction == Direction::kInbound;
  switch (plan.type) {
    case AttackType::kSynFlood: {
      if (!inbound) return rng_.chance(0.75) ? ports::kHttp : ports::kHttps;
      if (vip.hosts(ServiceType::kHttp) && rng_.chance(0.6)) return ports::kHttp;
      if (vip.hosts(ServiceType::kHttps) && rng_.chance(0.5)) return ports::kHttps;
      if (vip.hosts(ServiceType::kSsh) && rng_.chance(0.3)) return ports::kSsh;
      return rng_.chance(0.7) ? ports::kHttp : ports::kHttps;
    }
    case AttackType::kUdpFlood:
      // 69% of outbound UDP floods hit port 80 (§6.2); inbound UDP floods
      // chase media services and HTTP ports (§3.1).
      if (!inbound) return rng_.chance(0.69) ? ports::kHttp : 1935;
      if (vip.hosts(ServiceType::kMedia) && rng_.chance(0.55)) return 1935;
      return rng_.chance(0.6) ? ports::kHttp
                              : static_cast<std::uint16_t>(1024 + rng_.below(6000));
    case AttackType::kIcmpFlood:
      return 0;
    case AttackType::kDnsReflection:
      return 0;  // per-flow ephemeral destination
    case AttackType::kSpam:
      return ports::kSmtp;
    case AttackType::kBruteForce: {
      BruteForceProtocol proto;
      if (inbound) {
        double w[3] = {1.0, 1.0, 0.3};  // {SSH, RDP, VNC}
        if (vip.hosts(ServiceType::kRdp)) w[1] += 5.0;
        if (vip.hosts(ServiceType::kSsh)) w[0] += 3.0;
        if (vip.hosts(ServiceType::kVnc)) w[2] += 1.5;
        proto = static_cast<BruteForceProtocol>(rng_.weighted_index(w));
      } else {
        // More SSH than RDP brute-force off the cloud (§3.1).
        const double w[3] = {3.0, 1.5, 0.5};
        proto = static_cast<BruteForceProtocol>(rng_.weighted_index(w));
      }
      if (bf_proto != nullptr) *bf_proto = proto;
      switch (proto) {
        case BruteForceProtocol::kSsh: return ports::kSsh;
        case BruteForceProtocol::kRdp: return ports::kRdp;
        case BruteForceProtocol::kVnc: return ports::kVnc;
      }
      return ports::kSsh;
    }
    case AttackType::kSqlInjection:
      return rng_.chance(0.6) ? ports::kSqlServer : ports::kMySql;
    case AttackType::kPortScan:
      return 0;  // per-packet random destination ports
    case AttackType::kTds:
      return inbound ? (rng_.chance(0.7) ? ports::kHttp : ports::kHttps) : 0;
  }
  return 0;
}

const AsInfo& EpisodeScheduler::pick_target_as(const AttackParams& p) {
  const AsClass cls = cloud::kAllAsClasses[rng_.weighted_index(
      std::span<const double>(p.origin_class_weights))];
  const AsInfo* chosen = nullptr;
  (void)ases_->host_in_class(cls, rng_, &chosen);
  return *chosen;
}

void EpisodeScheduler::draw_remotes(AttackEpisode& e, const AttackParams& p) {
  if (e.spoofed_sources) return;
  const auto n = static_cast<std::size_t>(clamp_lognormal(
      rng_, p.host_count_median, p.host_count_sigma, 1.0, p.host_count_cap));
  e.remote_hosts.reserve(n);

  if (e.type == AttackType::kTds) {
    // Hosts come from the blacklist; the big-cloud TDS concentration (§6.1)
    // rides on hub_fraction.
    const bool big_cloud_heavy = rng_.chance(p.hub_fraction);
    for (std::size_t i = 0; i < n; ++i) {
      e.remote_hosts.push_back(big_cloud_heavy && rng_.chance(0.6)
                                   ? tds_->random_big_cloud_host(rng_)
                                   : tds_->random_host(rng_));
    }
    return;
  }

  const AsInfo* hub = nullptr;
  switch (p.hub) {
    case HubKind::kSpain: hub = &ases_->spain_hub(); break;
    case HubKind::kRomania: hub = &ases_->romania_victim_cloud(); break;
    case HubKind::kFrance: hub = &ases_->france_dns_target(); break;
    case HubKind::kSingaporeSpam: hub = &ases_->singapore_spam_cloud(); break;
    case HubKind::kNone: break;
  }
  const bool hub_active = hub != nullptr && rng_.chance(p.hub_fraction);

  if (e.direction == Direction::kOutbound) {
    // Outbound victims cluster: 80% of attacks target one AS (§6.2).
    const AsInfo& main_as = hub_active ? *hub : pick_target_as(p);
    const bool single_as = rng_.chance(0.8);
    for (std::size_t i = 0; i < n; ++i) {
      const AsInfo& as =
          single_as || rng_.chance(0.75) ? main_as : pick_target_as(p);
      e.remote_hosts.push_back(clean_host_in(*ases_, *tds_, as, rng_));
    }
    return;
  }

  // Inbound sources: botnets cluster — most of an attack's hosts live in a
  // couple of ASes of one class, which is why the paper's per-class
  // involvement shares behave like a partition (Fig 11a). A minority of
  // hosts is drawn broadly; hub episodes concentrate weight on hub hosts
  // (e.g. 81% of spam packets from the Singapore cloud, §6.1).
  const bool weighted = hub_active;
  if (weighted) e.remote_weights.reserve(n);
  const AsClass primary_class = cloud::kAllAsClasses[rng_.weighted_index(
      std::span<const double>(p.origin_class_weights))];
  const AsInfo* primary_ases[3] = {};
  const std::size_t primary_count = 1 + rng_.below(3);
  for (std::size_t a = 0; a < primary_count; ++a) {
    (void)ases_->host_in_class(primary_class, rng_, &primary_ases[a]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (hub_active && rng_.chance(0.4)) {
      e.remote_hosts.push_back(clean_host_in(*ases_, *tds_, *hub, rng_));
      e.remote_weights.push_back(12.0);
      continue;
    }
    if (rng_.chance(0.85)) {
      const AsInfo& as = *primary_ases[rng_.below(primary_count)];
      e.remote_hosts.push_back(clean_host_in(*ases_, *tds_, as, rng_));
    } else {
      const AsClass cls = cloud::kAllAsClasses[rng_.weighted_index(
          std::span<const double>(p.origin_class_weights))];
      e.remote_hosts.push_back(clean_host_in_class(*ases_, *tds_, cls, rng_));
    }
    if (weighted) e.remote_weights.push_back(1.0);
  }
}

AttackEpisode EpisodeScheduler::make_episode(const SessionPlan& plan,
                                             Minute start,
                                             std::uint32_t campaign_id,
                                             std::uint32_t mv_group) {
  const AttackParams& p = default_attack_params(plan.type, plan.direction);
  const VipInfo& vip = vips_->all()[plan.vip_index];

  AttackEpisode e;
  e.id = next_episode_id_++;
  e.type = plan.type;
  e.direction = plan.direction;
  e.vip = vip.vip;
  e.campaign_id = campaign_id;
  e.multi_vector_group = mv_group;
  e.start = start;
  const double duration =
      clamp_lognormal(rng_, p.duration_median, p.duration_sigma, 1.0, p.duration_cap);
  e.end = start + static_cast<Minute>(std::lround(duration));
  if (e.end <= e.start) e.end = e.start + 1;

  const double pps_median = plan.mode2 ? p.mode2_pps_median : p.peak_pps_median;
  e.peak_true_pps =
      clamp_lognormal(rng_, pps_median, p.peak_pps_sigma, 250.0, p.peak_pps_cap);
  // Ramp-up is bounded by a third of the episode so short attacks still
  // reach their plateau (their duration is attack time, not ramp time).
  e.ramp_up_minutes =
      std::min(clamp_lognormal(rng_, p.ramp_up_median, 0.5, 0.2, 10.0),
               std::max(0.4, static_cast<double>(e.end - e.start) / 3.0));

  e.target_port = pick_target_port(plan, vip, &e.brute_force_protocol);
  if (plan.type == AttackType::kPortScan) {
    const bool inbound = plan.direction == Direction::kInbound;
    const double roll = rng_.uniform01();
    if (inbound) {
      e.scan_kind = roll < 0.45   ? PortScanKind::kNull
                    : roll < 0.70 ? PortScanKind::kXmas
                                  : PortScanKind::kRstBackscatter;
    } else {
      e.scan_kind = roll < 0.6 ? PortScanKind::kNull : PortScanKind::kXmas;
    }
  }

  e.spoofed_sources = plan.direction == Direction::kInbound &&
                      rng_.chance(p.spoofed_fraction);
  e.fixed_source_ports = plan.type == AttackType::kSynFlood &&
                         plan.direction == Direction::kInbound &&
                         rng_.chance(0.012);  // the juno tool share (§4.4)

  if (plan.type == AttackType::kSpam && p.on_minutes_median > 0.0) {
    e.on_minutes = static_cast<Minute>(
        std::lround(clamp_lognormal(rng_, p.on_minutes_median, 0.5, 10.0, 600.0)));
    e.off_minutes = static_cast<Minute>(std::lround(
        clamp_lognormal(rng_, p.off_minutes_median, 0.5, 30.0, 1200.0)));
  }

  draw_remotes(e, p);
  return e;
}

void EpisodeScheduler::add_episode_train(const SessionPlan& plan,
                                         std::uint32_t count,
                                         std::uint32_t campaign_id,
                                         std::uint32_t mv_group,
                                         GroundTruth& truth,
                                         Minute forced_start) {
  const AttackParams& p = default_attack_params(plan.type, plan.direction);
  const Minute trace_end = config_->total_minutes();
  const Minute timeout = inactive_timeout(plan.type);

  const Minute start =
      forced_start >= 0 ? forced_start
                        : plan.day_start + static_cast<Minute>(rng_.below(
                                               util::kMinutesPerDay));
  AttackEpisode first = make_episode(plan, start, campaign_id, mv_group);
  place_episode(first);
  Minute prev_start = first.start;
  Minute prev_end = first.end;
  const std::vector<IPv4> hosts = first.remote_hosts;
  const std::vector<double> weights = first.remote_weights;
  const bool spoofed = first.spoofed_sources;
  truth.episodes.push_back(std::move(first));

  double gap_median = plan.mode2 && p.mode2_interarrival_median > 0.0
                          ? p.mode2_interarrival_median
                          : p.interarrival_median;
  // Serial attackers fire rapidly: the §4.1 tail VIPs (39 inbound attacks
  // per day, >144 outbound SYN floods at 10-minute spacing) need the whole
  // train to fit within roughly a day.
  if (count >= 20) {
    gap_median = std::min(gap_median, 1300.0 / static_cast<double>(count));
  }

  for (std::uint32_t k = 1; k < count; ++k) {
    const double gap = clamp_lognormal(rng_, gap_median, p.interarrival_sigma,
                                       2.0, 3000.0);
    Minute next = prev_start + static_cast<Minute>(std::lround(gap));
    // Keep distinct incidents distinct: stay clear of the grouping timeout.
    if (next < prev_end + timeout + 2) {
      next = prev_end + timeout + 2 + static_cast<Minute>(rng_.below(5));
    }
    if (next >= trace_end) break;
    AttackEpisode e = make_episode(plan, next, campaign_id, 0);
    // The same actor re-attacks with the same resources.
    e.remote_hosts = hosts;
    e.remote_weights = weights;
    e.spoofed_sources = spoofed;
    place_episode(e);
    prev_start = e.start;
    prev_end = e.end;
    truth.episodes.push_back(std::move(e));
  }
}

void EpisodeScheduler::run_session(const SessionPlan& plan, GroundTruth& truth) {
  const AttackParams& p = default_attack_params(plan.type, plan.direction);
  const std::uint32_t count = attack_count(p);

  // Multi-VIP campaign? (§4.3)
  std::vector<std::uint32_t> vip_indices{plan.vip_index};
  std::uint32_t campaign_id = 0;
  if (rng_.chance(p.campaign_probability)) {
    campaign_id = next_campaign_id_++;
    const auto extra = static_cast<std::size_t>(
        clamp_lognormal(rng_, p.campaign_size_median, 0.8, 1.0,
                        p.campaign_size_cap) -
        1.0);
    for (std::size_t i = 0; i < extra; ++i) {
      vip_indices.push_back(plan.direction == Direction::kInbound
                                ? pick_inbound_victim(plan.type)
                                : pick_outbound_source(plan.type));
    }
  }

  // Multi-vector bundle? (§4.2)
  std::uint32_t mv_group = 0;
  std::vector<AttackType> companions;
  if (rng_.chance(p.multi_vector_probability)) {
    mv_group = next_mv_group_++;
    if (plan.direction == Direction::kOutbound &&
        plan.type == AttackType::kBruteForce) {
      // The distinctive outbound pattern: brute-force with SYN and ICMP
      // floods (22.3% of outbound multi-vector attacks, §4.2).
      companions.push_back(AttackType::kSynFlood);
      if (rng_.chance(0.6)) companions.push_back(AttackType::kIcmpFlood);
    } else {
      constexpr AttackType kVolume[] = {
          AttackType::kSynFlood, AttackType::kUdpFlood, AttackType::kIcmpFlood,
          AttackType::kDnsReflection};
      const std::size_t extra = 1 + (rng_.chance(0.3) ? 1u : 0u);
      for (std::size_t i = 0; i < extra; ++i) {
        const AttackType companion = kVolume[rng_.below(std::size(kVolume))];
        if (companion != plan.type) companions.push_back(companion);
      }
    }
  }

  Minute first_start = 0;
  for (std::size_t v = 0; v < vip_indices.size(); ++v) {
    SessionPlan sub = plan;
    sub.vip_index = vip_indices[v];
    if (v == 0) {
      const std::size_t before = truth.episodes.size();
      add_episode_train(sub, count, campaign_id, mv_group, truth);
      if (truth.episodes.size() > before) {
        first_start = truth.episodes[before].start;
      }
    } else {
      // Campaign members start within the 5-minute correlation window.
      // They do not inherit the UDP large-rate mode: a whole campaign of
      // mode-2 members would push the outbound aggregate past the inbound
      // peak, inverting §5.1's 13-238x inbound/outbound relationship.
      sub.mode2 = false;
      add_episode_train(sub, std::max<std::uint32_t>(1, count / 2), campaign_id,
                        0, truth,
                        first_start + static_cast<Minute>(rng_.below(4)));
    }
  }

  // Companion multi-vector episodes land on the primary VIP within 5 min.
  for (AttackType companion : companions) {
    SessionPlan sub = plan;
    sub.type = companion;
    sub.mode2 = false;
    const Minute start =
        first_start + static_cast<Minute>(rng_.below(4));
    AttackEpisode e = make_episode(sub, start, campaign_id, mv_group);
    place_episode(e);
    truth.episodes.push_back(std::move(e));
  }
}

// ---------------------------------------------------------------------------
// Scripted events
// ---------------------------------------------------------------------------

void EpisodeScheduler::script_case_study(GroundTruth& truth) {
  // Fig 5: a dormant partner VIP takes a week of inbound RDP brute-force
  // from 85 hosts (70.3% of packets from three addresses in one Asian
  // residential AS), then erupts with outbound UDP floods against 491 sites
  // at 23 Kpps for more than two days.
  const Minute trace_end = config_->total_minutes();
  const VipInfo* victim = nullptr;
  for (const VipInfo& v : vips_->all()) {
    if (v.tenant == TenantClass::kPartner && v.active_from >= trace_end) {
      victim = &v;
      break;
    }
  }
  if (victim == nullptr) return;

  const AsInfo* asia_customer = nullptr;
  for (const AsInfo& as : ases_->all()) {
    if (as.cls == AsClass::kCustomer && as.region == GeoRegion::kEastAsia) {
      asia_customer = &as;
      break;
    }
  }
  if (asia_customer == nullptr) asia_customer = &ases_->all()[0];

  AttackEpisode bf;
  bf.id = next_episode_id_++;
  bf.type = AttackType::kBruteForce;
  bf.direction = Direction::kInbound;
  bf.vip = victim->vip;
  bf.start = std::max<Minute>(1, trace_end * 3 / 20);
  bf.end = trace_end * 8 / 10;
  bf.peak_true_pps = 3'500.0;
  bf.ramp_up_minutes = 3.0;
  bf.target_port = netflow::ports::kRdp;
  bf.brute_force_protocol = BruteForceProtocol::kRdp;
  for (int i = 0; i < 85; ++i) {
    if (i < 3) {
      bf.remote_hosts.push_back(clean_host_in(*ases_, *tds_, *asia_customer, rng_));
      bf.remote_weights.push_back(70.3 / 3.0);
    } else {
      const AsClass cls = cloud::kAllAsClasses[rng_.weighted_index(
          std::span<const double>(
              default_attack_params(AttackType::kBruteForce, Direction::kInbound)
                  .origin_class_weights))];
      bf.remote_hosts.push_back(clean_host_in_class(*ases_, *tds_, cls, rng_));
      bf.remote_weights.push_back(29.7 / 82.0);
    }
  }
  place_episode(bf);
  truth.episodes.push_back(std::move(bf));

  AttackEpisode udp;
  udp.id = next_episode_id_++;
  udp.type = AttackType::kUdpFlood;
  udp.direction = Direction::kOutbound;
  udp.vip = victim->vip;
  udp.start = trace_end * 6 / 10;
  udp.end = std::min(trace_end, udp.start + 2 * util::kMinutesPerDay);
  udp.peak_true_pps = 23'000.0;
  udp.ramp_up_minutes = 1.0;
  udp.target_port = netflow::ports::kHttp;
  const AttackParams& up =
      default_attack_params(AttackType::kUdpFlood, Direction::kOutbound);
  for (int i = 0; i < 491; ++i) {
    udp.remote_hosts.push_back(clean_host_in(*ases_, *tds_, pick_target_as(up), rng_));
  }
  place_episode(udp);
  truth.episodes.push_back(std::move(udp));
}

void EpisodeScheduler::script_spam_eruption(GroundTruth& truth) {
  // §3.1: a one-day eruption from hundreds of (mostly fresh free-trial)
  // VIPs, each with slow on-off spam toward thousands of mail servers.
  const Minute trace_end = config_->total_minutes();
  const Minute day_start =
      std::min<Minute>(trace_end - 1, (config_->days / 3) * util::kMinutesPerDay);
  const auto trials = vips_->with_tenant(TenantClass::kFreeTrial);
  if (trials.empty()) return;
  const std::size_t wave =
      std::max<std::size_t>(10, vips_->size() / 40);
  const std::uint32_t campaign_id = next_campaign_id_++;
  const AttackParams& p =
      default_attack_params(AttackType::kSpam, Direction::kOutbound);

  for (std::size_t i = 0; i < wave; ++i) {
    const std::uint32_t vip_index =
        trials[static_cast<std::size_t>(rng_.below(trials.size()))];
    AttackEpisode e;
    e.id = next_episode_id_++;
    e.type = AttackType::kSpam;
    e.direction = Direction::kOutbound;
    e.vip = vips_->all()[vip_index].vip;
    e.campaign_id = campaign_id;
    e.start = day_start + static_cast<Minute>(rng_.below(240));
    e.end = std::min(trace_end,
                     e.start + static_cast<Minute>(clamp_lognormal(
                                   rng_, 420.0, 0.6, 120.0, 1200.0)));
    e.peak_true_pps = clamp_lognormal(rng_, 2'266.0, 0.4, 400.0, 20'000.0);
    e.ramp_up_minutes = 1.0;
    e.target_port = netflow::ports::kSmtp;
    e.on_minutes = static_cast<Minute>(clamp_lognormal(rng_, 60.0, 0.4, 15.0, 240.0));
    e.off_minutes = static_cast<Minute>(clamp_lognormal(rng_, 300.0, 0.4, 60.0, 700.0));
    const auto n = static_cast<std::size_t>(
        clamp_lognormal(rng_, p.host_count_median, p.host_count_sigma, 50.0,
                        p.host_count_cap));
    for (std::size_t h = 0; h < n; ++h) {
      e.remote_hosts.push_back(clean_host_in(*ases_, *tds_, pick_target_as(p), rng_));
    }
    place_episode(e);
    truth.episodes.push_back(std::move(e));
  }
}

void EpisodeScheduler::script_subnet_scan(GroundTruth& truth) {
  // §4.3: two hosts from small cloud providers brute-force 66 VIPs at once,
  // then sweep onward through the cloud's subnets — >500 VIPs in a day.
  const Minute trace_end = config_->total_minutes();
  const auto scan_day =
      std::min<Minute>(trace_end - 1,
                       (config_->days * 2 / 3) * util::kMinutesPerDay);
  IPv4 scanners[2] = {
      clean_host_in_class(*ases_, *tds_, AsClass::kSmallCloud, rng_),
      clean_host_in_class(*ases_, *tds_, AsClass::kSmallCloud, rng_)};

  const auto all = vips_->all();
  std::size_t cursor = rng_.below(all.size());
  // One 66-VIP wave (the paper's peak) plus smaller follow-ups as the
  // scanner moves through the subnets; kept small relative to the VIP
  // population so the sweep stays an anecdote, not the attack mix.
  const int waves = 2;
  for (int w = 0; w < waves; ++w) {
    const Minute wave_start =
        scan_day + static_cast<Minute>(w) * 240 + static_cast<Minute>(rng_.below(30));
    if (wave_start >= trace_end) break;
    const std::size_t first_wave = std::min<std::size_t>(66, all.size() / 2);
    const std::size_t wave_size =
        w == 0 ? first_wave : std::min<std::size_t>(16 + rng_.below(8), first_wave);
    const std::uint32_t campaign_id = next_campaign_id_++;
    for (std::size_t i = 0; i < wave_size; ++i) {
      // Consecutive registry entries approximate a subnet sweep.
      const VipInfo& victim = all[(cursor + i) % all.size()];
      AttackEpisode e;
      e.id = next_episode_id_++;
      e.type = AttackType::kBruteForce;
      e.direction = Direction::kInbound;
      e.vip = victim.vip;
      e.campaign_id = campaign_id;
      e.start = wave_start + static_cast<Minute>(rng_.below(4));
      e.end = e.start + static_cast<Minute>(5 + rng_.below(12));
      e.peak_true_pps = clamp_lognormal(rng_, 15'000.0, 0.8, 2'000.0, 114'500.0);
      e.ramp_up_minutes = 1.0;
      e.target_port = netflow::ports::kSsh;
      e.brute_force_protocol = BruteForceProtocol::kSsh;
      e.remote_hosts.assign(scanners, scanners + 2);
      place_episode(e);
    truth.episodes.push_back(std::move(e));
    }
    cursor = (cursor + wave_size) % all.size();
  }
}

void EpisodeScheduler::script_dns_server_case(GroundTruth& truth) {
  // §3.1: the single VIP hosting a DNS server emits outbound DNS responses
  // at 5666 pps for a couple of days, repeatedly.
  const Minute trace_end = config_->total_minutes();
  const VipInfo* dns_vip = nullptr;
  for (const VipInfo& v : vips_->all()) {
    if (v.hosts(ServiceType::kDns)) {
      dns_vip = &v;
      break;
    }
  }
  if (dns_vip == nullptr) return;

  const Minute episode_len =
      std::min<Minute>(2 * util::kMinutesPerDay, trace_end / 3);
  Minute start = trace_end / 10;
  for (int rep = 0; rep < 2 && start + 10 < trace_end; ++rep) {
    AttackEpisode e;
    e.id = next_episode_id_++;
    e.type = AttackType::kDnsReflection;
    e.direction = Direction::kOutbound;
    e.vip = dns_vip->vip;
    e.start = start;
    e.end = std::min(trace_end, start + episode_len);
    e.peak_true_pps = 8'200.0;  // paper reports 5666 pps; below the
                                  // sampled detection floor (see EXPERIMENTS.md)
    e.ramp_up_minutes = 1.0;
    e.target_port = 0;
    const AttackParams& p =
        default_attack_params(AttackType::kDnsReflection, Direction::kOutbound);
    for (int h = 0; h < 200; ++h) {
      e.remote_hosts.push_back(clean_host_in(*ases_, *tds_, pick_target_as(p), rng_));
    }
    place_episode(e);
    truth.episodes.push_back(std::move(e));
    start = e.end + trace_end / 6;
  }
}

void EpisodeScheduler::script_romania_barrage(GroundTruth& truth) {
  // §6.2: 40% of outbound attack packets flow from three VIPs toward one
  // small-cloud AS in Romania.
  const Minute trace_end = config_->total_minutes();
  const AsInfo& romania = ases_->romania_victim_cloud();
  for (int i = 0; i < 3; ++i) {
    const std::uint32_t vip_index = pick_outbound_source(AttackType::kUdpFlood);
    AttackEpisode e;
    e.id = next_episode_id_++;
    e.type = AttackType::kUdpFlood;
    e.direction = Direction::kOutbound;
    e.vip = vips_->all()[vip_index].vip;
    e.start = trace_end * (2 + i) / 10;
    e.end = std::min(trace_end, e.start + util::kMinutesPerDay);
    e.peak_true_pps = 180'000.0;
    e.ramp_up_minutes = 1.0;
    e.target_port = netflow::ports::kHttp;
    for (int h = 0; h < 40; ++h) {
      e.remote_hosts.push_back(clean_host_in(*ases_, *tds_, romania, rng_));
    }
    place_episode(e);
    truth.episodes.push_back(std::move(e));
  }
}

void EpisodeScheduler::script_serial_attacker(GroundTruth& truth) {
  // §4.1: one VIP that "generated more than 144 outbound TCP SYN flood
  // attacks in a day to many web servers ... with a median duration of 1
  // minute and a median inter-arrival time of 10 minutes", and no
  // legitimate inbound traffic — a VIP used purely for attacks.
  const Minute trace_end = config_->total_minutes();
  // The least-popular free-trial VIP approximates "no legitimate service".
  const VipInfo* attacker = nullptr;
  for (const VipInfo& v : vips_->all()) {
    if (v.tenant != TenantClass::kFreeTrial) continue;
    if (attacker == nullptr || v.popularity < attacker->popularity) {
      attacker = &v;
    }
  }
  if (attacker == nullptr) return;

  // "Many web servers" that, like most outbound victims (§6.2), live in a
  // single AS — a hosting farm.
  const AttackParams& p =
      default_attack_params(AttackType::kSynFlood, Direction::kOutbound);
  const AsInfo& farm = pick_target_as(p);
  std::vector<IPv4> targets;
  for (int h = 0; h < 30; ++h) {
    targets.push_back(clean_host_in(*ases_, *tds_, farm, rng_));
  }

  Minute start = std::min<Minute>(trace_end - 1,
                                  (config_->days / 2) * util::kMinutesPerDay +
                                      static_cast<Minute>(rng_.below(120)));
  int launched = 0;
  while (launched < 150 && start + 2 < trace_end) {
    AttackEpisode e;
    e.id = next_episode_id_++;
    e.type = AttackType::kSynFlood;
    e.direction = Direction::kOutbound;
    e.vip = attacker->vip;
    e.start = start;
    e.end = start + 1 + static_cast<Minute>(rng_.below(2));
    e.peak_true_pps = clamp_lognormal(rng_, 25'000.0, 0.5, 9'000.0, 184'000.0);
    e.ramp_up_minutes = 0.3;
    e.target_port = netflow::ports::kHttp;
    e.remote_hosts = targets;
    place_episode(e);
    truth.episodes.push_back(std::move(e));
    ++launched;
    // Median spacing ~10 minutes, but stay clear of the 1-minute timeout.
    start += 4 + static_cast<Minute>(rng_.below(13));
  }
}

}  // namespace dm::sim
