// The nine attack classes of the study (paper Table 1).
#pragma once

#include <cstdint>
#include <string_view>

#include "util/time.h"

namespace dm::sim {

/// Attack taxonomy of Table 1.
enum class AttackType : std::uint8_t {
  kSynFlood,       ///< TCP SYN flood (volume-based detection)
  kUdpFlood,       ///< UDP flood (volume-based)
  kIcmpFlood,      ///< ICMP flood (volume-based)
  kDnsReflection,  ///< DNS reflection/amplification (volume-based)
  kSpam,           ///< email spam (spread-based)
  kBruteForce,     ///< SSH/RDP/VNC password guessing (spread-based)
  kSqlInjection,   ///< SQL vulnerability probing (spread-based)
  kPortScan,       ///< NULL/Xmas scans (signature + spread-based)
  kTds,            ///< malicious web activity via TDS hosts (communication
                   ///< pattern-based)
};

inline constexpr AttackType kAllAttackTypes[] = {
    AttackType::kSynFlood, AttackType::kUdpFlood,      AttackType::kIcmpFlood,
    AttackType::kDnsReflection, AttackType::kSpam,     AttackType::kBruteForce,
    AttackType::kSqlInjection,  AttackType::kPortScan, AttackType::kTds,
};

inline constexpr std::size_t kAttackTypeCount = std::size(kAllAttackTypes);

[[nodiscard]] constexpr std::size_t index_of(AttackType t) noexcept {
  return static_cast<std::size_t>(t);
}

[[nodiscard]] constexpr std::string_view to_string(AttackType t) noexcept {
  switch (t) {
    case AttackType::kSynFlood: return "SYN";
    case AttackType::kUdpFlood: return "UDP";
    case AttackType::kIcmpFlood: return "ICMP";
    case AttackType::kDnsReflection: return "DNS";
    case AttackType::kSpam: return "SPAM";
    case AttackType::kBruteForce: return "Brute-force";
    case AttackType::kSqlInjection: return "SQL";
    case AttackType::kPortScan: return "PortScan";
    case AttackType::kTds: return "TDS";
  }
  return "?";
}

/// Volume-based attacks (Table 1 "Detection method" column).
[[nodiscard]] constexpr bool is_volume_based(AttackType t) noexcept {
  return t == AttackType::kSynFlood || t == AttackType::kUdpFlood ||
         t == AttackType::kIcmpFlood || t == AttackType::kDnsReflection;
}

/// The flood subtypes (SYN/UDP/ICMP).
[[nodiscard]] constexpr bool is_flood(AttackType t) noexcept {
  return t == AttackType::kSynFlood || t == AttackType::kUdpFlood ||
         t == AttackType::kIcmpFlood;
}

/// Spread-based attacks.
[[nodiscard]] constexpr bool is_spread_based(AttackType t) noexcept {
  return t == AttackType::kSpam || t == AttackType::kBruteForce ||
         t == AttackType::kSqlInjection;
}

/// Per-type inactive timeout from Table 1: consecutive attack minutes of the
/// same (VIP, type) separated by no more than this many quiet minutes belong
/// to the same attack incident.
[[nodiscard]] constexpr util::Minute inactive_timeout(AttackType t) noexcept {
  switch (t) {
    case AttackType::kSynFlood: return 1;
    case AttackType::kUdpFlood: return 1;
    case AttackType::kIcmpFlood: return 120;
    case AttackType::kDnsReflection: return 60;
    case AttackType::kSpam: return 60;
    case AttackType::kBruteForce: return 60;
    case AttackType::kSqlInjection: return 30;
    case AttackType::kPortScan: return 60;
    case AttackType::kTds: return 120;
  }
  return 60;
}

/// Brute-force target protocols (§2.2: SSH, RDP, VNC).
enum class BruteForceProtocol : std::uint8_t { kSsh, kRdp, kVnc };

[[nodiscard]] constexpr std::string_view to_string(BruteForceProtocol p) noexcept {
  switch (p) {
    case BruteForceProtocol::kSsh: return "SSH";
    case BruteForceProtocol::kRdp: return "RDP";
    case BruteForceProtocol::kVnc: return "VNC";
  }
  return "?";
}

/// Port-scan flavors the signature detector recognizes.
enum class PortScanKind : std::uint8_t { kNull, kXmas, kRstBackscatter };

[[nodiscard]] constexpr std::string_view to_string(PortScanKind k) noexcept {
  switch (k) {
    case PortScanKind::kNull: return "NULL";
    case PortScanKind::kXmas: return "Xmas";
    case PortScanKind::kRstBackscatter: return "RST";
  }
  return "?";
}

}  // namespace dm::sim
