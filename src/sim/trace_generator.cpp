#include "sim/trace_generator.h"

#include <algorithm>
#include <utility>

#include "exec/parallel.h"
#include "netflow/window_aggregator.h"
#include "sim/attack_traffic.h"
#include "sim/benign_model.h"
#include "sim/scheduler.h"
#include "util/error.h"
#include "util/malloc_tune.h"

namespace dm::sim {

namespace {

ScenarioConfig with_trace_minutes(ScenarioConfig config) {
  config.vips.trace_minutes = config.total_minutes();
  return config;
}

}  // namespace

Scenario::Scenario(ScenarioConfig config)
    : config_(with_trace_minutes(std::move(config))),
      ases_(config_.ases, config_.seed),
      vips_(config_.vips, config_.seed),
      tds_(config_.tds, ases_, config_.seed) {}

TraceResult generate_trace(const Scenario& scenario, exec::ThreadPool* pool) {
  const ScenarioConfig& config = scenario.config();
  const netflow::PacketSampler sampler = scenario.sampler();

  TraceResult result;
  EpisodeScheduler scheduler(config, scenario.vips(), scenario.ases(),
                             scenario.tds());
  result.truth = scheduler.schedule();

  // Root streams mirror the serial generator's layout; each VIP/episode then
  // derives its own stream from its index (split), so a shard's records are
  // a pure function of (seed, entity index) — never of thread count.
  util::Rng root(config.seed);
  util::Rng benign_root = root.fork();
  util::Rng attack_root = root.fork();

  const BenignTrafficModel benign(config, scenario.vips(), scenario.ases(),
                                  config.seed, &scenario.tds());
  const util::Minute end = config.total_minutes();
  const std::size_t vip_count = scenario.vips().size();
  using RecordVec = std::vector<netflow::FlowRecord>;
  std::vector<RecordVec> benign_shards = exec::parallel_map_chunks<RecordVec>(
      pool, vip_count, [&](std::size_t lo, std::size_t hi) {
        RecordVec out;
        BenignTrafficModel::Scratch scratch;
        for (std::size_t v = lo; v < hi; ++v) {
          util::Rng vip_rng = benign_root.split(v);
          for (util::Minute m = 0; m < end; ++m) {
            benign.emit_minute(static_cast<std::uint32_t>(v), m, sampler,
                               vip_rng, scratch, out);
          }
        }
        return out;
      });

  const AttackTrafficModel attacks(scenario.ases(), scenario.tds());
  const std::span<const AttackEpisode> episodes = result.truth.episodes;
  std::vector<RecordVec> attack_shards = exec::parallel_map_chunks<RecordVec>(
      pool, episodes.size(), [&](std::size_t lo, std::size_t hi) {
        RecordVec out;
        for (std::size_t i = lo; i < hi; ++i) {
          const AttackEpisode& e = episodes[i];
          util::Rng episode_rng = attack_root.split(i);
          for (util::Minute m = e.start; m < e.end; ++m) {
            attacks.emit_minute(e, m, sampler, episode_rng, out);
          }
        }
        return out;
      });

  // Ordered merge: benign shards by VIP index, then attack shards by episode
  // index — the same record order a single-threaded pass would produce.
  std::size_t total = 0;
  for (const RecordVec& s : benign_shards) total += s.size();
  for (const RecordVec& s : attack_shards) total += s.size();
  result.records.reserve(total);
  for (RecordVec& s : benign_shards) {
    result.records.insert(result.records.end(), s.begin(), s.end());
  }
  for (RecordVec& s : attack_shards) {
    result.records.insert(result.records.end(), s.begin(), s.end());
  }
  return result;
}

TraceResult generate_trace(const Scenario& scenario) {
  exec::ThreadPool pool(exec::workers_for(scenario.config().thread_count));
  return generate_trace(scenario, &pool);
}

FusedTrace generate_windows(const Scenario& scenario, exec::ThreadPool* pool) {
  const ScenarioConfig& config = scenario.config();
  const netflow::PacketSampler sampler = scenario.sampler();
  const netflow::PrefixSet& cloud_space = scenario.vips().cloud_space();
  const netflow::PrefixSet* blacklist = &scenario.tds().as_prefix_set();

  util::tune_malloc_for_streaming();

  FusedTrace result;
  EpisodeScheduler scheduler(config, scenario.vips(), scenario.ases(),
                             scenario.tds());
  result.truth = scheduler.schedule();

  // Same RNG layout as generate_trace: every VIP/episode stream is split
  // from its *registry/episode index*, so a shard's records do not depend
  // on how VIPs are partitioned across shards.
  util::Rng root(config.seed);
  util::Rng benign_root = root.fork();
  util::Rng attack_root = root.fork();

  const BenignTrafficModel benign(config, scenario.vips(), scenario.ases(),
                                  config.seed, &scenario.tds());
  const AttackTrafficModel attacks(scenario.ases(), scenario.tds());
  const util::Minute end = config.total_minutes();

  // VIP registry order is not address order (VIPs land in random data
  // centers), but the canonical record order leads with the VIP address —
  // so shards partition the *address-sorted* VIP permutation. Each shard
  // then owns a contiguous address range and its sorted slice concatenates
  // directly into the global canonical order.
  const std::span<const cloud::VipInfo> vip_infos = scenario.vips().all();
  const std::size_t vip_count = vip_infos.size();
  std::vector<std::uint32_t> by_address(vip_count);
  for (std::size_t i = 0; i < vip_count; ++i) {
    by_address[i] = static_cast<std::uint32_t>(i);
  }
  // dmlint: total-order(VIP addresses are unique — VipRegistry rejects duplicate allocations)
  std::sort(by_address.begin(), by_address.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return vip_infos[a].vip < vip_infos[b].vip;
            });

  // Episodes bucketed by their VIP's address-order position. Bucket lists
  // keep ascending episode index: same-key ties between two episodes on one
  // VIP must resolve by episode index, exactly as the unfused arrival order
  // does.
  const std::span<const AttackEpisode> episodes = result.truth.episodes;
  std::vector<std::vector<std::uint32_t>> episodes_at(vip_count);
  for (std::size_t i = 0; i < episodes.size(); ++i) {
    const auto pos = std::lower_bound(
        by_address.begin(), by_address.end(), episodes[i].vip,
        [&](std::uint32_t v, netflow::IPv4 ip) { return vip_infos[v].vip < ip; });
    const auto p = static_cast<std::size_t>(pos - by_address.begin());
    // The scheduler only targets registry VIPs; a miss here would silently
    // drop the episode's traffic from the fused trace.
    if (p == vip_count || vip_infos[by_address[p]].vip != episodes[i].vip) {
      throw Error(
          "generate_windows: episode targets a VIP outside the registry");
    }
    episodes_at[p].push_back(static_cast<std::uint32_t>(i));
  }

  // Per-shard fused pass: generate → aggregate → encode, never keeping the
  // unsorted records beyond the shard. The shard count is fixed at 64 per
  // worker (vs the skeletons' default 4, and still ≥ 64 when serial):
  // shards are also the unit of transient memory — a shard's raw, sorted,
  // and key arrays all live until its columnar slice is encoded, and with
  // W workers W shards are in flight at once, so the in-flight transient
  // is ~(record bytes / multiplier) for any worker count — ~100 MiB at
  // paper scale. Small shards only work because the mmap threshold is
  // pinned (above): with glibc's adaptive threshold the per-shard scratch
  // would be retained in every worker's arena instead of returned.
  struct Shard {
    netflow::ShardWindows agg;
    std::uint64_t generated = 0;
  };
  const std::size_t workers =
      pool == nullptr ? 0 : static_cast<std::size_t>(pool->thread_count());
  // In spill mode shards are also the unit of out-of-core progress (each
  // completed shard can be sealed to disk), so a finer floor keeps the
  // in-flight raw-record transient small relative to the RAM budget.
  const std::size_t shard_floor = config.spill.enabled() ? 256 : 64;
  const std::size_t shard_count = std::min(
      vip_count, std::max<std::size_t>(shard_floor, shard_floor * workers));
  const auto run_shard = [&](std::size_t lo, std::size_t hi) {
        Shard shard;
        std::vector<netflow::FlowRecord> records;
        // Shards are near-equal VIP slices, so the previous shard's record
        // count (per worker thread) is a tight reserve hint that skips the
        // doubling-growth copies. Capacity never affects output.
        thread_local std::size_t reserve_hint = 0;
        records.reserve(reserve_hint);
        // Benign first, then attacks in episode-index order — the same
        // relative arrival order per VIP as the unfused global vector
        // (all benign records precede all attack records, and sort-key
        // ties never cross VIPs).
        BenignTrafficModel::Scratch scratch;
        for (std::size_t p = lo; p < hi; ++p) {
          const std::uint32_t v = by_address[p];
          util::Rng vip_rng = benign_root.split(v);
          for (util::Minute m = 0; m < end; ++m) {
            benign.emit_minute(v, m, sampler, vip_rng, scratch, records);
          }
        }
        for (std::size_t p = lo; p < hi; ++p) {
          for (const std::uint32_t i : episodes_at[p]) {
            const AttackEpisode& e = episodes[i];
            util::Rng episode_rng = attack_root.split(i);
            for (util::Minute m = e.start; m < e.end; ++m) {
              attacks.emit_minute(e, m, sampler, episode_rng, records);
            }
          }
        }
        shard.generated = records.size();
        reserve_hint = records.size();
        shard.agg =
            netflow::aggregate_shard(std::move(records), cloud_space, blacklist);
        return shard;
      };

  if (config.spill.enabled()) {
    // Out-of-core merge: shards are consumed in index order as their wave
    // completes — rebase windows against the running record count, hand the
    // columnar slice to the SpillWriter (which seals segments per policy),
    // and never hold more than one wave of shards. The consumed sequence is
    // identical to the barrier path below, so the decoded trace is too.
    netflow::SpillWriter writer(config.spill);
    std::vector<netflow::VipMinuteStats> windows;
    // Reserve the exact ceiling (one window per VIP-minute-direction) up
    // front: the count isn't known until the last shard lands, and letting
    // the vector grow geometrically would briefly hold old + new copies —
    // a 2x transient on what is the largest resident array of a spilled
    // run. The reservation is virtual; only touched pages cost RSS.
    windows.reserve(2 * static_cast<std::size_t>(vip_count) *
                    static_cast<std::size_t>(config.total_minutes()));
    std::uint64_t unclassified = 0;
    const std::size_t wave = 2 * std::max<std::size_t>(workers, 1);
    std::size_t consumed = 0;
    exec::parallel_map_waves_n<Shard>(
        pool, vip_count, shard_count, wave, run_shard,
        [&](std::size_t, Shard&& s) {
          const auto base = static_cast<std::uint32_t>(writer.records_so_far());
          // Copy straight into place and patch the two index fields while
          // the destination line is still hot — one touch per ~184-byte
          // struct instead of a copy pass plus a patch pass.
          for (const netflow::VipMinuteStats& w : s.agg.windows) {
            windows.push_back(w);
            netflow::VipMinuteStats& back = windows.back();
            back.first_record += base;
            back.last_record += base;
          }
          writer.append(std::move(s.agg.columns));
          unclassified += s.agg.unclassified;
          result.generated_records += s.generated;
          s.agg = netflow::ShardWindows();
          if (++consumed % 64 == 0) util::release_free_heap();
        });
    util::release_free_heap();
    result.windowed = netflow::WindowedTrace(std::move(writer).finish(),
                                             std::move(windows), unclassified);
    return result;
  }

  std::vector<Shard> shards = exec::parallel_map_chunks_n<Shard>(
      pool, vip_count, shard_count, run_shard);

  // Index-ordered concatenation of the compressed shard slices; only the
  // window record-index ranges need rebasing from shard-local to global
  // offsets. The destination buffers are reserved to the exact summed size
  // so the appends never over-allocate.
  std::size_t total_windows = 0;
  netflow::ColumnarRecords::BufferSizes total_bytes;
  for (const Shard& s : shards) {
    total_windows += s.agg.windows.size();
    const auto b = s.agg.columns.buffer_sizes();
    total_bytes.header_bytes += b.header_bytes + 20;  // re-encoded first header
    total_bytes.payload_bytes += b.payload_bytes;
    total_bytes.runs += b.runs;
    total_bytes.checkpoints += b.checkpoints;
  }
  netflow::ColumnarRecords columns;
  columns.reserve(total_bytes);
  std::vector<netflow::VipMinuteStats> windows;
  windows.reserve(total_windows);
  std::uint64_t unclassified = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    Shard& s = shards[i];
    const auto base = static_cast<std::uint32_t>(columns.size());
    for (const netflow::VipMinuteStats& w : s.agg.windows) {
      windows.push_back(w);
      netflow::VipMinuteStats& back = windows.back();
      back.first_record += base;
      back.last_record += base;
    }
    columns.append(std::move(s.agg.columns));
    unclassified += s.agg.unclassified;
    result.generated_records += s.generated;
    // Release each consumed slice immediately so the merge's transient
    // footprint shrinks as it walks the shards; trim periodically so pages
    // the worker arenas retain for the freed slices actually leave the
    // process instead of stacking under the growing merged copy.
    s.agg = netflow::ShardWindows();
    if ((i + 1) % 64 == 0) util::release_free_heap();
  }
  util::release_free_heap();
  result.windowed = netflow::WindowedTrace(std::move(columns),
                                           std::move(windows), unclassified);
  return result;
}

FusedTrace generate_windows(const Scenario& scenario) {
  exec::ThreadPool pool(exec::workers_for(scenario.config().thread_count));
  return generate_windows(scenario, &pool);
}

}  // namespace dm::sim
