#include "sim/trace_generator.h"

#include <algorithm>
#include <utility>

#include "exec/parallel.h"
#include "netflow/window_aggregator.h"
#include "sim/attack_traffic.h"
#include "sim/benign_model.h"
#include "sim/scheduler.h"
#include "util/error.h"

namespace dm::sim {

namespace {

ScenarioConfig with_trace_minutes(ScenarioConfig config) {
  config.vips.trace_minutes = config.total_minutes();
  return config;
}

}  // namespace

Scenario::Scenario(ScenarioConfig config)
    : config_(with_trace_minutes(std::move(config))),
      ases_(config_.ases, config_.seed),
      vips_(config_.vips, config_.seed),
      tds_(config_.tds, ases_, config_.seed) {}

TraceResult generate_trace(const Scenario& scenario, exec::ThreadPool* pool) {
  const ScenarioConfig& config = scenario.config();
  const netflow::PacketSampler sampler = scenario.sampler();

  TraceResult result;
  EpisodeScheduler scheduler(config, scenario.vips(), scenario.ases(),
                             scenario.tds());
  result.truth = scheduler.schedule();

  // Root streams mirror the serial generator's layout; each VIP/episode then
  // derives its own stream from its index (split), so a shard's records are
  // a pure function of (seed, entity index) — never of thread count.
  util::Rng root(config.seed);
  util::Rng benign_root = root.fork();
  util::Rng attack_root = root.fork();

  const BenignTrafficModel benign(config, scenario.vips(), scenario.ases(),
                                  config.seed, &scenario.tds());
  const util::Minute end = config.total_minutes();
  const std::size_t vip_count = scenario.vips().size();
  using RecordVec = std::vector<netflow::FlowRecord>;
  std::vector<RecordVec> benign_shards = exec::parallel_map_chunks<RecordVec>(
      pool, vip_count, [&](std::size_t lo, std::size_t hi) {
        RecordVec out;
        for (std::size_t v = lo; v < hi; ++v) {
          util::Rng vip_rng = benign_root.split(v);
          for (util::Minute m = 0; m < end; ++m) {
            benign.emit_minute(static_cast<std::uint32_t>(v), m, sampler,
                               vip_rng, out);
          }
        }
        return out;
      });

  const AttackTrafficModel attacks(scenario.ases(), scenario.tds());
  const std::span<const AttackEpisode> episodes = result.truth.episodes;
  std::vector<RecordVec> attack_shards = exec::parallel_map_chunks<RecordVec>(
      pool, episodes.size(), [&](std::size_t lo, std::size_t hi) {
        RecordVec out;
        for (std::size_t i = lo; i < hi; ++i) {
          const AttackEpisode& e = episodes[i];
          util::Rng episode_rng = attack_root.split(i);
          for (util::Minute m = e.start; m < e.end; ++m) {
            attacks.emit_minute(e, m, sampler, episode_rng, out);
          }
        }
        return out;
      });

  // Ordered merge: benign shards by VIP index, then attack shards by episode
  // index — the same record order a single-threaded pass would produce.
  std::size_t total = 0;
  for (const RecordVec& s : benign_shards) total += s.size();
  for (const RecordVec& s : attack_shards) total += s.size();
  result.records.reserve(total);
  for (RecordVec& s : benign_shards) {
    result.records.insert(result.records.end(), s.begin(), s.end());
  }
  for (RecordVec& s : attack_shards) {
    result.records.insert(result.records.end(), s.begin(), s.end());
  }
  return result;
}

TraceResult generate_trace(const Scenario& scenario) {
  exec::ThreadPool pool(exec::workers_for(scenario.config().thread_count));
  return generate_trace(scenario, &pool);
}

FusedTrace generate_windows(const Scenario& scenario, exec::ThreadPool* pool) {
  const ScenarioConfig& config = scenario.config();
  const netflow::PacketSampler sampler = scenario.sampler();
  const netflow::PrefixSet& cloud_space = scenario.vips().cloud_space();
  const netflow::PrefixSet* blacklist = &scenario.tds().as_prefix_set();

  FusedTrace result;
  EpisodeScheduler scheduler(config, scenario.vips(), scenario.ases(),
                             scenario.tds());
  result.truth = scheduler.schedule();

  // Same RNG layout as generate_trace: every VIP/episode stream is split
  // from its *registry/episode index*, so a shard's records do not depend
  // on how VIPs are partitioned across shards.
  util::Rng root(config.seed);
  util::Rng benign_root = root.fork();
  util::Rng attack_root = root.fork();

  const BenignTrafficModel benign(config, scenario.vips(), scenario.ases(),
                                  config.seed, &scenario.tds());
  const AttackTrafficModel attacks(scenario.ases(), scenario.tds());
  const util::Minute end = config.total_minutes();

  // VIP registry order is not address order (VIPs land in random data
  // centers), but the canonical record order leads with the VIP address —
  // so shards partition the *address-sorted* VIP permutation. Each shard
  // then owns a contiguous address range and its sorted slice concatenates
  // directly into the global canonical order.
  const std::span<const cloud::VipInfo> vip_infos = scenario.vips().all();
  const std::size_t vip_count = vip_infos.size();
  std::vector<std::uint32_t> by_address(vip_count);
  for (std::size_t i = 0; i < vip_count; ++i) {
    by_address[i] = static_cast<std::uint32_t>(i);
  }
  std::sort(by_address.begin(), by_address.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return vip_infos[a].vip < vip_infos[b].vip;
            });

  // Episodes bucketed by their VIP's address-order position. Bucket lists
  // keep ascending episode index: same-key ties between two episodes on one
  // VIP must resolve by episode index, exactly as the unfused arrival order
  // does.
  const std::span<const AttackEpisode> episodes = result.truth.episodes;
  std::vector<std::vector<std::uint32_t>> episodes_at(vip_count);
  for (std::size_t i = 0; i < episodes.size(); ++i) {
    const auto pos = std::lower_bound(
        by_address.begin(), by_address.end(), episodes[i].vip,
        [&](std::uint32_t v, netflow::IPv4 ip) { return vip_infos[v].vip < ip; });
    const auto p = static_cast<std::size_t>(pos - by_address.begin());
    // The scheduler only targets registry VIPs; a miss here would silently
    // drop the episode's traffic from the fused trace.
    if (p == vip_count || vip_infos[by_address[p]].vip != episodes[i].vip) {
      throw Error(
          "generate_windows: episode targets a VIP outside the registry");
    }
    episodes_at[p].push_back(static_cast<std::uint32_t>(i));
  }

  // Per-shard fused pass: generate → aggregate, never keeping the unsorted
  // records beyond the shard.
  struct Shard {
    netflow::ShardWindows agg;
    std::uint64_t generated = 0;
  };
  std::vector<Shard> shards = exec::parallel_map_chunks<Shard>(
      pool, vip_count, [&](std::size_t lo, std::size_t hi) {
        Shard shard;
        std::vector<netflow::FlowRecord> records;
        // Benign first, then attacks in episode-index order — the same
        // relative arrival order per VIP as the unfused global vector
        // (all benign records precede all attack records, and sort-key
        // ties never cross VIPs).
        for (std::size_t p = lo; p < hi; ++p) {
          const std::uint32_t v = by_address[p];
          util::Rng vip_rng = benign_root.split(v);
          for (util::Minute m = 0; m < end; ++m) {
            benign.emit_minute(v, m, sampler, vip_rng, records);
          }
        }
        for (std::size_t p = lo; p < hi; ++p) {
          for (const std::uint32_t i : episodes_at[p]) {
            const AttackEpisode& e = episodes[i];
            util::Rng episode_rng = attack_root.split(i);
            for (util::Minute m = e.start; m < e.end; ++m) {
              attacks.emit_minute(e, m, sampler, episode_rng, records);
            }
          }
        }
        shard.generated = records.size();
        shard.agg =
            netflow::aggregate_shard(std::move(records), cloud_space, blacklist);
        return shard;
      });

  // Index-ordered concatenation; only the window record-index ranges need
  // rebasing from shard-local to global offsets.
  std::size_t total_records = 0;
  std::size_t total_windows = 0;
  for (const Shard& s : shards) {
    total_records += s.agg.records.size();
    total_windows += s.agg.windows.size();
  }
  std::vector<netflow::FlowRecord> records;
  std::vector<netflow::Direction> directions;
  std::vector<netflow::VipMinuteStats> windows;
  records.reserve(total_records);
  directions.reserve(total_records);
  windows.reserve(total_windows);
  std::uint64_t unclassified = 0;
  for (Shard& s : shards) {
    const auto base = static_cast<std::uint32_t>(records.size());
    records.insert(records.end(), s.agg.records.begin(), s.agg.records.end());
    directions.insert(directions.end(), s.agg.directions.begin(),
                      s.agg.directions.end());
    for (netflow::VipMinuteStats w : s.agg.windows) {
      w.first_record += base;
      w.last_record += base;
      windows.push_back(w);
    }
    unclassified += s.agg.unclassified;
    result.generated_records += s.generated;
    // Release each consumed slice immediately so the merge's transient
    // footprint shrinks as it walks the shards.
    s.agg = netflow::ShardWindows();
  }
  result.windowed =
      netflow::WindowedTrace(std::move(records), std::move(directions),
                             std::move(windows), unclassified);
  return result;
}

FusedTrace generate_windows(const Scenario& scenario) {
  exec::ThreadPool pool(exec::workers_for(scenario.config().thread_count));
  return generate_windows(scenario, &pool);
}

}  // namespace dm::sim
