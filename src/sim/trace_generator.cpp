#include "sim/trace_generator.h"

#include <utility>

#include "exec/parallel.h"
#include "sim/attack_traffic.h"
#include "sim/benign_model.h"
#include "sim/scheduler.h"

namespace dm::sim {

namespace {

ScenarioConfig with_trace_minutes(ScenarioConfig config) {
  config.vips.trace_minutes = config.total_minutes();
  return config;
}

}  // namespace

Scenario::Scenario(ScenarioConfig config)
    : config_(with_trace_minutes(std::move(config))),
      ases_(config_.ases, config_.seed),
      vips_(config_.vips, config_.seed),
      tds_(config_.tds, ases_, config_.seed) {}

TraceResult generate_trace(const Scenario& scenario, exec::ThreadPool* pool) {
  const ScenarioConfig& config = scenario.config();
  const netflow::PacketSampler sampler = scenario.sampler();

  TraceResult result;
  EpisodeScheduler scheduler(config, scenario.vips(), scenario.ases(),
                             scenario.tds());
  result.truth = scheduler.schedule();

  // Root streams mirror the serial generator's layout; each VIP/episode then
  // derives its own stream from its index (split), so a shard's records are
  // a pure function of (seed, entity index) — never of thread count.
  util::Rng root(config.seed);
  util::Rng benign_root = root.fork();
  util::Rng attack_root = root.fork();

  const BenignTrafficModel benign(config, scenario.vips(), scenario.ases(),
                                  config.seed, &scenario.tds());
  const util::Minute end = config.total_minutes();
  const std::size_t vip_count = scenario.vips().size();
  using RecordVec = std::vector<netflow::FlowRecord>;
  std::vector<RecordVec> benign_shards = exec::parallel_map_chunks<RecordVec>(
      pool, vip_count, [&](std::size_t lo, std::size_t hi) {
        RecordVec out;
        for (std::size_t v = lo; v < hi; ++v) {
          util::Rng vip_rng = benign_root.split(v);
          for (util::Minute m = 0; m < end; ++m) {
            benign.emit_minute(static_cast<std::uint32_t>(v), m, sampler,
                               vip_rng, out);
          }
        }
        return out;
      });

  const AttackTrafficModel attacks(scenario.ases(), scenario.tds());
  const std::span<const AttackEpisode> episodes = result.truth.episodes;
  std::vector<RecordVec> attack_shards = exec::parallel_map_chunks<RecordVec>(
      pool, episodes.size(), [&](std::size_t lo, std::size_t hi) {
        RecordVec out;
        for (std::size_t i = lo; i < hi; ++i) {
          const AttackEpisode& e = episodes[i];
          util::Rng episode_rng = attack_root.split(i);
          for (util::Minute m = e.start; m < e.end; ++m) {
            attacks.emit_minute(e, m, sampler, episode_rng, out);
          }
        }
        return out;
      });

  // Ordered merge: benign shards by VIP index, then attack shards by episode
  // index — the same record order a single-threaded pass would produce.
  std::size_t total = 0;
  for (const RecordVec& s : benign_shards) total += s.size();
  for (const RecordVec& s : attack_shards) total += s.size();
  result.records.reserve(total);
  for (RecordVec& s : benign_shards) {
    result.records.insert(result.records.end(), s.begin(), s.end());
  }
  for (RecordVec& s : attack_shards) {
    result.records.insert(result.records.end(), s.begin(), s.end());
  }
  return result;
}

TraceResult generate_trace(const Scenario& scenario) {
  exec::ThreadPool pool(exec::workers_for(scenario.config().thread_count));
  return generate_trace(scenario, &pool);
}

}  // namespace dm::sim
