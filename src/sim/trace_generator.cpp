#include "sim/trace_generator.h"

#include "sim/attack_traffic.h"
#include "sim/benign_model.h"
#include "sim/scheduler.h"

namespace dm::sim {

namespace {

ScenarioConfig with_trace_minutes(ScenarioConfig config) {
  config.vips.trace_minutes = config.total_minutes();
  return config;
}

}  // namespace

Scenario::Scenario(ScenarioConfig config)
    : config_(with_trace_minutes(std::move(config))),
      ases_(config_.ases, config_.seed),
      vips_(config_.vips, config_.seed),
      tds_(config_.tds, ases_, config_.seed) {}

TraceResult generate_trace(const Scenario& scenario) {
  const ScenarioConfig& config = scenario.config();
  const netflow::PacketSampler sampler = scenario.sampler();

  TraceResult result;
  EpisodeScheduler scheduler(config, scenario.vips(), scenario.ases(),
                             scenario.tds());
  result.truth = scheduler.schedule();

  // Benign traffic: one RNG stream per VIP so populations are stable under
  // config changes elsewhere.
  util::Rng root(config.seed);
  util::Rng benign_root = root.fork();
  util::Rng attack_root = root.fork();

  const BenignTrafficModel benign(config, scenario.vips(), scenario.ases(),
                                  config.seed, &scenario.tds());
  const util::Minute end = config.total_minutes();
  for (std::uint32_t v = 0; v < scenario.vips().size(); ++v) {
    util::Rng vip_rng = benign_root.fork();
    for (util::Minute m = 0; m < end; ++m) {
      benign.emit_minute(v, m, sampler, vip_rng, result.records);
    }
  }

  // Attack traffic: one RNG stream per episode.
  const AttackTrafficModel attacks(scenario.ases(), scenario.tds());
  for (const AttackEpisode& e : result.truth.episodes) {
    util::Rng episode_rng = attack_root.fork();
    for (util::Minute m = e.start; m < e.end; ++m) {
      attacks.emit_minute(e, m, sampler, episode_rng, result.records);
    }
  }

  return result;
}

}  // namespace dm::sim
