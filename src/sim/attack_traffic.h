// Turning ground-truth attack episodes into sampled NetFlow records.
//
// One emitter per attack family; the dispatcher picks by episode type. Flood
// traffic aggregates into one record per (source, minute) — how NetFlow
// represents a sustained flow — while connection-style attacks (brute-force,
// SQL, spam, TDS, scans) produce one record per sampled connection, because
// every connection has a fresh ephemeral port and therefore its own flow key
// (the paper's "70K flows per minute with a few packets sampled in each
// flow", §4.2).
#pragma once

#include <vector>

#include "cloud/as_registry.h"
#include "cloud/tds_blacklist.h"
#include "netflow/flow_record.h"
#include "netflow/sampler.h"
#include "sim/episode.h"
#include "util/rng.h"

namespace dm::sim {

class AttackTrafficModel {
 public:
  AttackTrafficModel(const cloud::AsRegistry& ases, const cloud::TdsBlacklist& tds);

  /// Emits the sampled records of `episode` for `minute` into `out`.
  /// No-op when the episode is inactive at that minute or no packet
  /// survives sampling.
  void emit_minute(const AttackEpisode& episode, util::Minute minute,
                   const netflow::PacketSampler& sampler, util::Rng& rng,
                   std::vector<netflow::FlowRecord>& out) const;

 private:
  struct Share {
    std::uint32_t host_index = 0;
    std::uint64_t packets = 0;
  };

  /// Distributes `sampled_packets` over the episode's remote hosts by
  /// weight; at most one Share per host.
  [[nodiscard]] std::vector<Share> distribute(const AttackEpisode& episode,
                                              std::uint64_t sampled_packets,
                                              util::Rng& rng) const;

  void emit_flood(const AttackEpisode& e, util::Minute minute,
                  std::uint64_t sampled, util::Rng& rng,
                  std::vector<netflow::FlowRecord>& out) const;
  void emit_dns_reflection(const AttackEpisode& e, util::Minute minute,
                           std::uint64_t sampled, util::Rng& rng,
                           std::vector<netflow::FlowRecord>& out) const;
  void emit_connections(const AttackEpisode& e, util::Minute minute,
                        std::uint64_t sampled, util::Rng& rng,
                        std::vector<netflow::FlowRecord>& out) const;
  void emit_port_scan(const AttackEpisode& e, util::Minute minute,
                      std::uint64_t sampled, util::Rng& rng,
                      std::vector<netflow::FlowRecord>& out) const;

  const cloud::AsRegistry* ases_;
  const cloud::TdsBlacklist* tds_;
};

}  // namespace dm::sim
