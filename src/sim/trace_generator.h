// End-to-end scenario materialization: registries + scheduler + benign and
// attack traffic models -> a sampled NetFlow trace with ground truth.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cloud/as_registry.h"
#include "cloud/tds_blacklist.h"
#include "cloud/vip_registry.h"
#include "exec/thread_pool.h"
#include "netflow/flow_record.h"
#include "netflow/sampler.h"
#include "netflow/window_aggregator.h"
#include "sim/episode.h"
#include "sim/scenario.h"

namespace dm::sim {

/// Owns the static world of one simulated study: the cloud (VIPs, data
/// centers), the Internet (ASes, geography), and the TDS blacklist — all
/// deterministic functions of the ScenarioConfig.
class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);

  [[nodiscard]] const ScenarioConfig& config() const noexcept { return config_; }
  [[nodiscard]] const cloud::VipRegistry& vips() const noexcept { return vips_; }
  [[nodiscard]] const cloud::AsRegistry& ases() const noexcept { return ases_; }
  [[nodiscard]] const cloud::TdsBlacklist& tds() const noexcept { return tds_; }
  [[nodiscard]] netflow::PacketSampler sampler() const {
    return netflow::PacketSampler(config_.sampling);
  }

 private:
  ScenarioConfig config_;
  cloud::AsRegistry ases_;
  cloud::VipRegistry vips_;
  cloud::TdsBlacklist tds_;
};

/// A generated trace: sampled records (unsorted) plus the ground truth that
/// produced them.
struct TraceResult {
  std::vector<netflow::FlowRecord> records;
  GroundTruth truth;
};

/// Runs the generator, sharding per-VIP benign traffic and per-episode
/// attack traffic across `pool` (nullptr = serial). Every shard derives its
/// RNG stream from the VIP/episode index via Rng::split and shards merge in
/// index order, so the result is byte-identical for any thread count.
[[nodiscard]] TraceResult generate_trace(const Scenario& scenario,
                                         exec::ThreadPool* pool);

/// Convenience overload: builds a pool from scenario.config().thread_count.
[[nodiscard]] TraceResult generate_trace(const Scenario& scenario);

/// A fused generate→aggregate result: the windowed dataset plus the ground
/// truth that produced it. The global unsorted record vector of
/// generate_trace is never materialized.
struct FusedTrace {
  netflow::WindowedTrace windowed;
  GroundTruth truth;
  /// Sampled records the generator emitted, before orientation dropped
  /// transit/intra-cloud records — equals TraceResult::records.size() of
  /// the unfused path.
  std::uint64_t generated_records = 0;
};

/// The fused streaming path: each shard owns a contiguous range of the
/// cloud's VIP *address space*, generates its VIPs' benign traffic and the
/// attack episodes targeting them, and runs the full shard-level
/// aggregation core (classify → packed-key radix sort → window build) in
/// place; the merge is an index-ordered concatenation because the canonical
/// record order leads with the VIP address and shards own disjoint address
/// ranges. RNG streams are still split per VIP/episode index, so the
/// result is byte-identical to generate_trace + aggregate_windows (with the
/// scenario's TDS blacklist) for any thread count.
[[nodiscard]] FusedTrace generate_windows(const Scenario& scenario,
                                          exec::ThreadPool* pool);

/// Convenience overload: builds a pool from scenario.config().thread_count.
[[nodiscard]] FusedTrace generate_windows(const Scenario& scenario);

}  // namespace dm::sim
