// End-to-end scenario materialization: registries + scheduler + benign and
// attack traffic models -> a sampled NetFlow trace with ground truth.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cloud/as_registry.h"
#include "cloud/tds_blacklist.h"
#include "cloud/vip_registry.h"
#include "exec/thread_pool.h"
#include "netflow/flow_record.h"
#include "netflow/sampler.h"
#include "sim/episode.h"
#include "sim/scenario.h"

namespace dm::sim {

/// Owns the static world of one simulated study: the cloud (VIPs, data
/// centers), the Internet (ASes, geography), and the TDS blacklist — all
/// deterministic functions of the ScenarioConfig.
class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);

  [[nodiscard]] const ScenarioConfig& config() const noexcept { return config_; }
  [[nodiscard]] const cloud::VipRegistry& vips() const noexcept { return vips_; }
  [[nodiscard]] const cloud::AsRegistry& ases() const noexcept { return ases_; }
  [[nodiscard]] const cloud::TdsBlacklist& tds() const noexcept { return tds_; }
  [[nodiscard]] netflow::PacketSampler sampler() const {
    return netflow::PacketSampler(config_.sampling);
  }

 private:
  ScenarioConfig config_;
  cloud::AsRegistry ases_;
  cloud::VipRegistry vips_;
  cloud::TdsBlacklist tds_;
};

/// A generated trace: sampled records (unsorted) plus the ground truth that
/// produced them.
struct TraceResult {
  std::vector<netflow::FlowRecord> records;
  GroundTruth truth;
};

/// Runs the generator, sharding per-VIP benign traffic and per-episode
/// attack traffic across `pool` (nullptr = serial). Every shard derives its
/// RNG stream from the VIP/episode index via Rng::split and shards merge in
/// index order, so the result is byte-identical for any thread count.
[[nodiscard]] TraceResult generate_trace(const Scenario& scenario,
                                         exec::ThreadPool* pool);

/// Convenience overload: builds a pool from scenario.config().thread_count.
[[nodiscard]] TraceResult generate_trace(const Scenario& scenario);

}  // namespace dm::sim
