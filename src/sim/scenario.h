// Scenario configuration and per-attack-type calibration tables.
//
// The tables encode the paper's reported statistics (§3-§6) as target
// distributions; DESIGN.md §4 lists each calibration target with its source
// in the paper. Everything here is data — the scheduler and traffic
// generator interpret it.
#pragma once

#include <array>
#include <cstdint>

#include "cloud/as_registry.h"
#include "cloud/tds_blacklist.h"
#include "cloud/vip_registry.h"
#include "netflow/flow_record.h"
#include "netflow/spill_policy.h"
#include "sim/attack_type.h"

namespace dm::sim {

/// Special-AS involvement of an attack class (the paper's concentration
/// anecdotes: the Spain AS, the Romanian hosting cloud, the French ISP, the
/// Singaporean spam source).
enum class HubKind : std::uint8_t {
  kNone,
  kSpain,          ///< §6.1/§6.2: one AS in Spain on >35% of attacks
  kRomania,        ///< §6.2: 40% of outbound attack packets to one RO cloud
  kFrance,         ///< §6.2: 23.6% of outbound DNS reflection to one FR ISP
  kSingaporeSpam,  ///< §6.1: 81% of inbound spam packets from one SG cloud
};

/// Calibrated generation parameters for one (attack type, direction).
/// Rates are *true* (unsampled) packet rates; the sampler thins them.
struct AttackParams {
  /// Share of attack sessions of this direction that are this type
  /// (normalized across types by the scheduler; derived from Fig 2).
  double session_share = 0.0;

  /// Per-(VIP, day) attack-count distribution (Fig 3a): probability the
  /// session contains exactly one attack, else 2 + floor(Pareto(alpha)) up
  /// to `repeat_cap` attacks in the day.
  double p_single = 0.5;
  double repeat_alpha = 1.3;
  double repeat_cap = 30.0;

  /// Peak intensity: log-normal by median/sigma, clipped at cap (Fig 7/8).
  double peak_pps_median = 1'000.0;
  double peak_pps_sigma = 1.0;
  double peak_pps_cap = 100'000.0;

  /// Secondary intensity mode (the UDP-flood bimodality of §5.2); used with
  /// probability `mode2_probability`.
  double mode2_probability = 0.0;
  double mode2_pps_median = 0.0;
  double mode2_interarrival_median = 0.0;

  /// Duration in minutes: log-normal median/sigma, clipped (Fig 9).
  double duration_median = 6.0;
  double duration_sigma = 1.2;
  double duration_cap = 600.0;

  /// Median gap between attack starts within a session (Fig 10).
  double interarrival_median = 120.0;
  double interarrival_sigma = 1.0;

  /// Ramp-up minutes to 90% of peak (§5.2).
  double ramp_up_median = 2.0;

  /// Remote endpoint count: log-normal median/sigma, clipped.
  double host_count_median = 10.0;
  double host_count_sigma = 1.0;
  double host_count_cap = 1'000.0;

  /// Fraction of episodes whose sources are spoofed (uniform over the
  /// address space); SYN floods: 0.671 (§6.1).
  double spoofed_fraction = 0.0;

  /// Multi-VIP campaign behaviour (§4.3).
  double campaign_probability = 0.0;
  double campaign_size_median = 3.0;
  double campaign_size_cap = 10.0;

  /// Probability the session is part of a multi-vector bundle (§4.2).
  double multi_vector_probability = 0.0;

  /// AS-class mix of remote endpoints, indexed like cloud::kAllAsClasses.
  std::array<double, 9> origin_class_weights{};

  /// Concentration hub and the fraction of episodes involving it.
  HubKind hub = HubKind::kNone;
  double hub_fraction = 0.0;

  /// Spam on-off pattern (§3.1): median on/off phase lengths in minutes.
  double on_minutes_median = 0.0;
  double off_minutes_median = 0.0;
};

/// The calibrated defaults for one type/direction (see scenario.cpp for the
/// values and the paper sections they come from).
[[nodiscard]] const AttackParams& default_attack_params(AttackType type,
                                                        netflow::Direction dir) noexcept;

/// Everything needed to build and run one simulated study.
struct ScenarioConfig {
  std::uint64_t seed = 42;
  /// Trace length in days (the paper has ~90; benches default to 7 and
  /// record the scaling in EXPERIMENTS.md).
  int days = 7;
  /// NetFlow packet sampling denominator (paper: 4096).
  std::uint32_t sampling = 4096;
  /// Threads the pipeline stages (trace generation, window aggregation,
  /// per-series detection) shard across. 0 = hardware_concurrency;
  /// 1 = serial. Output is byte-identical for every value — shards are
  /// seeded by entity index (Rng::split) and merged in shard order.
  unsigned thread_count = 0;
  /// Fuse trace generation and window aggregation into one sharded
  /// streaming pass (sim::generate_windows): each shard generates its VIP
  /// address range's traffic, radix-sorts it locally over a packed 128-bit
  /// key, and builds its windows in place, so the global unsorted record
  /// vector is never materialized. Output is byte-identical to the unfused
  /// path — purely a memory/speed knob; ingestion paths (CSV/trace_io) are
  /// unaffected.
  bool fuse_pipeline = true;
  /// Out-of-core knob: when spill.directory is set, completed shard slices
  /// are sealed into CRC-framed segment files under it once the pending
  /// resident store crosses the policy threshold, and the Study's record
  /// store streams from mmap'd segments instead of RAM. The decoded trace —
  /// and every downstream exhibit — is byte-identical with spill on or off;
  /// only peak RSS changes. See DESIGN.md §5f.
  netflow::SpillConfig spill;

  cloud::VipRegistryConfig vips;
  cloud::AsRegistryConfig ases;
  cloud::TdsBlacklistConfig tds;

  /// Attack-session arrival rates per (VIP, day). The paper reports 0.08% /
  /// 0.11% of VIPs per day under attack; the default is scaled up ~20x so a
  /// laptop-scale trace still yields distribution-grade attack counts
  /// (documented in EXPERIMENTS.md).
  double inbound_sessions_per_vip_day = 0.022;
  double outbound_sessions_per_vip_day = 0.026;

  /// Global multiplier on benign service traffic rates.
  double benign_scale = 0.12;

  /// Seasonal multiplier on the *inbound flood* session shares (SYN, UDP,
  /// ICMP). §3.1 reports "a significant increase of inbound flood attacks
  /// during Nov and Dec compared to May, possibly to disrupt the e-commerce
  /// sites ... during the busy holiday shopping season"; 1.0 models the May
  /// trace, holiday_season() raises it.
  double inbound_flood_seasonality = 1.0;

  /// Scripted events.
  bool include_case_study = true;      ///< Fig 5 compromise chain
  bool include_spam_eruption = true;   ///< §3.1: one-day spam eruption
  bool include_subnet_scan = true;     ///< §4.3: two hosts scanning 8 subnets
  bool include_dns_server_case = true; ///< §3.1: single VIP's outbound DNS
  bool include_romania_barrage = true; ///< §6.2: 3 VIPs, 40% of outbound pkts
  bool include_serial_attacker = true; ///< §4.1: one VIP, >144 SYN floods/day

  /// Tiny deterministic configuration for unit/integration tests.
  [[nodiscard]] static ScenarioConfig smoke();
  /// Default bench-scale configuration (~1.5k VIPs, 7 days).
  [[nodiscard]] static ScenarioConfig paper_scale();
  /// paper_scale with the Nov/Dec inbound-flood surge of §3.1.
  [[nodiscard]] static ScenarioConfig holiday_season();

  [[nodiscard]] util::Minute total_minutes() const noexcept {
    return static_cast<util::Minute>(days) * util::kMinutesPerDay;
  }
};

}  // namespace dm::sim
