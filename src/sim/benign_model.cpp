#include "sim/benign_model.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <iterator>

namespace dm::sim {

using cloud::AsClass;
using cloud::GeoRegion;
using cloud::ServiceProfile;
using cloud::ServiceType;
using netflow::Direction;
using netflow::FlowRecord;
using netflow::IPv4;
using netflow::Protocol;
using netflow::TcpFlags;

namespace {

/// Where benign clients come from: mostly ISPs, consumer and mobile
/// networks. Indexed like cloud::kAllAsClasses.
constexpr double kBenignClientMix[] = {6, 8, 15, 20, 20, 18, 8, 2, 3};

/// UTC offset (hours) approximating each region's local time.
int utc_offset_hours(GeoRegion region) noexcept {
  switch (region) {
    case GeoRegion::kNorthAmericaWest: return -8;
    case GeoRegion::kNorthAmericaEast: return -5;
    case GeoRegion::kWesternEurope: return 1;
    case GeoRegion::kSpain: return 1;
    case GeoRegion::kFrance: return 1;
    case GeoRegion::kEasternEurope: return 2;
    case GeoRegion::kRomania: return 2;
    case GeoRegion::kEastAsia: return 8;
    case GeoRegion::kSoutheastAsia: return 8;
    case GeoRegion::kOceania: return 10;
    case GeoRegion::kLatinAmerica: return -4;
    case GeoRegion::kAfrica: return 2;
  }
  return 0;
}

std::uint16_t ephemeral_port(util::Rng& rng) noexcept {
  return static_cast<std::uint16_t>(1024 + rng.below(64512));
}

}  // namespace

double diurnal_factor(util::Minute minute, GeoRegion region) noexcept {
  const double local_minute =
      static_cast<double>(util::minute_of_day(minute)) +
      60.0 * utc_offset_hours(region);
  // Peak at 15:00 local, trough at 03:00.
  const double phase = 2.0 * 3.14159265358979323846 *
                       (local_minute - 15.0 * 60.0) / 1440.0;
  return 1.0 + 0.45 * std::cos(phase);
}

BenignTrafficModel::BenignTrafficModel(const ScenarioConfig& config,
                                       const cloud::VipRegistry& vips,
                                       const cloud::AsRegistry& ases,
                                       std::uint64_t seed,
                                       const cloud::TdsBlacklist* tds)
    : config_(&config), vips_(&vips), trace_end_(config.total_minutes()) {
  util::Rng rng(seed ^ 0xbe9119'be9119ULL);
  pools_.resize(vips.size());
  for (std::uint32_t i = 0; i < vips.size(); ++i) {
    const auto& vip = vips.all()[i];
    double clients_per_minute = 0.0;
    for (ServiceType s : vip.services) {
      clients_per_minute += cloud::profile_of(s).base_clients_per_minute;
    }
    clients_per_minute *= vip.popularity;
    const auto pool_size = static_cast<std::size_t>(
        std::clamp(clients_per_minute * 8.0, 8.0, 20'000.0));
    auto& pool = pools_[i];
    pool.reserve(pool_size);
    for (std::size_t k = 0; k < pool_size; ++k) {
      const AsClass cls =
          cloud::kAllAsClasses[rng.weighted_index(kBenignClientMix)];
      netflow::IPv4 host = ases.host_in_class(cls, rng);
      for (int retry = 0; tds != nullptr && tds->contains(host) && retry < 8;
           ++retry) {
        host = ases.host_in_class(cls, rng);
      }
      pool.push_back(host);
    }
  }

  diurnal_.resize(std::size(cloud::kAllGeoRegions) * util::kMinutesPerDay);
  for (const GeoRegion region : cloud::kAllGeoRegions) {
    const auto base =
        static_cast<std::size_t>(region) * util::kMinutesPerDay;
    for (util::Minute m = 0; m < util::kMinutesPerDay; ++m) {
      diurnal_[base + static_cast<std::size_t>(m)] = diurnal_factor(m, region);
    }
  }
}

double BenignTrafficModel::Scratch::exp_neg(double mean) noexcept {
  std::uint64_t bits;
  std::memcpy(&bits, &mean, sizeof bits);
  // Fibonacci-hash the bit pattern down to a slot index.
  auto& slot = slots_[(bits * 0x9e3779b97f4a7c15ULL) >> 51];
  if (slot.bits != bits) {
    slot.bits = bits;
    slot.value = std::exp(-mean);
  }
  return slot.value;
}

namespace {

/// Rng::poisson with the exponential routed through the scratch memo when
/// one is held; the branch structure mirrors Rng::poisson exactly, so the
/// consumed draws are identical either way.
std::uint64_t sample_poisson(util::Rng& rng, double mean,
                             BenignTrafficModel::Scratch* scratch) noexcept {
  if (scratch == nullptr) return rng.poisson(mean);
  if (mean <= 0.0) return 0;
  if (mean < 64.0) return rng.poisson_knuth(scratch->exp_neg(mean));
  return rng.poisson(mean);
}

}  // namespace

void BenignTrafficModel::emit_minute_impl(std::uint32_t vip_index,
                                          util::Minute minute,
                                          const netflow::PacketSampler& sampler,
                                          util::Rng& rng, Scratch* scratch,
                                          std::vector<FlowRecord>& out) const {
  const cloud::VipInfo& vip = vips_->all()[vip_index];
  if (!vip.active_at(minute, trace_end_)) return;
  const GeoRegion region = vips_->data_centers()[vip.data_center].region;
  const double diurnal =
      diurnal_[static_cast<std::size_t>(region) * util::kMinutesPerDay +
               static_cast<std::size_t>(util::minute_of_day(minute))];
  const std::span<const IPv4> pool = pools_[vip_index];

  for (ServiceType s : vip.services) {
    const ServiceProfile& profile = cloud::profile_of(s);
    const double scale = vip.popularity * config_->benign_scale * diurnal;
    const double true_in_ppm = profile.base_packets_per_minute * scale;
    const double true_out_ppm = true_in_ppm * profile.response_ratio;
    const double active_clients =
        std::max(1.0, profile.base_clients_per_minute * scale);

    const std::uint64_t in_sampled =
        sample_poisson(rng, true_in_ppm * sampler.probability(), scratch);
    if (in_sampled > 0) {
      emit_flows(vip.vip, profile, minute, in_sampled, active_clients,
                 /*outbound=*/false, rng, scratch, pool, out);
    }
    const std::uint64_t out_sampled =
        sample_poisson(rng, true_out_ppm * sampler.probability(), scratch);
    if (out_sampled > 0) {
      emit_flows(vip.vip, profile, minute, out_sampled, active_clients,
                 /*outbound=*/true, rng, scratch, pool, out);
    }
  }
}

void BenignTrafficModel::emit_flows(IPv4 vip, const ServiceProfile& profile,
                                    util::Minute minute,
                                    std::uint64_t sampled_packets,
                                    double active_clients, bool outbound,
                                    util::Rng& rng, Scratch* scratch,
                                    std::span<const IPv4> pool,
                                    std::vector<FlowRecord>& out) const {
  // How many distinct client flows do the sampled packets land in?
  const std::uint64_t client_draw = std::max<std::uint64_t>(
      1, sample_poisson(rng, std::min(active_clients, 4'000.0), scratch));
  const std::uint64_t flows = std::min(sampled_packets, client_draw);

  // Split sampled packets across flows: give each flow one packet, then
  // scatter the remainder uniformly. Flow counts are small (a handful of
  // sampled packets per service-minute), so the split lives on the stack;
  // the heap fallback covers the rare flash-crowd draw.
  std::uint64_t stack_pkts[256];
  std::vector<std::uint64_t> heap_pkts;
  std::uint64_t* pkts;
  if (flows <= std::size(stack_pkts)) {
    std::fill_n(stack_pkts, flows, 1);
    pkts = stack_pkts;
  } else {
    heap_pkts.assign(flows, 1);
    pkts = heap_pkts.data();
  }
  for (std::uint64_t extra = sampled_packets - flows; extra > 0; --extra) {
    pkts[static_cast<std::size_t>(rng.below(flows))] += 1;
  }

  for (std::uint64_t f = 0; f < flows; ++f) {
    const IPv4 client = pool[static_cast<std::size_t>(rng.below(pool.size()))];
    FlowRecord r;
    r.minute = minute;
    r.protocol = profile.protocol;
    r.packets = static_cast<std::uint32_t>(pkts[static_cast<std::size_t>(f)]);
    r.bytes = static_cast<std::uint64_t>(
        static_cast<double>(r.packets) * profile.mean_packet_bytes *
        rng.lognormal_median(1.0, 0.2));

    const std::uint16_t service_port =
        profile.port_count > 1 && rng.chance(0.5) ? profile.ports[1]
                                                  : profile.ports[0];
    if (profile.protocol == Protocol::kTcp) {
      // Cumulative flag OR of a normal exchange; a small share of lone SYNs
      // (unanswered connection attempts) keeps the baseline realistic.
      const double roll = rng.uniform01();
      if (roll < 0.60) {
        r.tcp_flags = TcpFlags::kAck | TcpFlags::kPsh;
      } else if (roll < 0.97) {
        r.tcp_flags =
            TcpFlags::kSyn | TcpFlags::kAck | TcpFlags::kPsh | TcpFlags::kFin;
      } else {
        r.tcp_flags = TcpFlags::kSyn;
        r.packets = 1;
        r.bytes = 40;
      }
    }

    if (!outbound) {
      r.src_ip = client;
      r.dst_ip = vip;
      r.src_port = ephemeral_port(rng);
      r.dst_port = service_port;
    } else {
      r.src_ip = vip;
      r.dst_ip = client;
      r.src_port = service_port;
      r.dst_port = ephemeral_port(rng);
    }
    if (profile.protocol == Protocol::kIpEncap) {
      r.src_port = 0;
      r.dst_port = 0;
    }
    out.push_back(r);
  }
}

}  // namespace dm::sim
