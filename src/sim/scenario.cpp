#include "sim/scenario.h"

namespace dm::sim {

using netflow::Direction;

namespace {

// AS-class weight arrays are indexed {BigCloud, SmallCloud, Mobile,
// LargeISP, SmallISP, Customer, EDU, IXP, NIC} (cloud::kAllAsClasses order).
// Inbound weights describe attack *origins* (Fig 11a: small ISPs ~25%,
// customer networks ~16%; Fig 12: big clouds mostly UDP/SQL/TDS, mobile
// mostly UDP/DNS/brute-force). Outbound weights describe attack *targets*
// (Fig 15a: 42% big cloud, small ISP 25%, customer 13%).

constexpr std::array<double, 9> kInSynOrigins{2, 10, 5, 15, 30, 25, 8, 3, 2};
constexpr std::array<double, 9> kInUdpOrigins{15, 10, 10, 12, 25, 15, 5, 5, 3};
constexpr std::array<double, 9> kInIcmpOrigins{3, 10, 6, 15, 28, 22, 8, 5, 3};
constexpr std::array<double, 9> kInDnsOrigins{10, 10, 11, 11, 11, 11, 12, 13, 11};
constexpr std::array<double, 9> kInSpamOrigins{20, 10, 2, 15, 25, 25, 2, 1, 0.4};
constexpr std::array<double, 9> kInBfOrigins{3, 15, 12, 10, 25, 20, 8, 4, 3};
constexpr std::array<double, 9> kInSqlOrigins{25, 15, 3, 10, 20, 15, 5, 4, 3};
constexpr std::array<double, 9> kInScanOrigins{4, 12, 6, 14, 26, 20, 8, 6, 4};
constexpr std::array<double, 9> kInTdsOrigins{};  // unused: hosts come from the blacklist

constexpr std::array<double, 9> kOutSynTargets{20, 15, 2, 12, 25, 15, 5, 4, 2};
constexpr std::array<double, 9> kOutUdpTargets{18, 20, 2, 12, 22, 15, 5, 4, 2};
constexpr std::array<double, 9> kOutIcmpTargets{15, 15, 3, 15, 25, 18, 5, 2, 2};
constexpr std::array<double, 9> kOutDnsTargets{10, 10, 3, 25, 25, 17, 5, 3, 2};
constexpr std::array<double, 9> kOutSpamTargets{10, 25, 1, 30, 12, 18, 2, 1, 1};
constexpr std::array<double, 9> kOutBfTargets{8, 12, 1.4, 12, 30, 25, 6, 3, 2};
constexpr std::array<double, 9> kOutSqlTargets{50, 12, 1, 8, 12, 10, 3, 2, 2};
constexpr std::array<double, 9> kOutScanTargets{10, 12, 3, 15, 28, 22, 5, 3, 2};
constexpr std::array<double, 9> kOutTdsTargets{};  // unused: blacklist hosts

/// Builds the 18-entry table once. Shares per direction are normalized by
/// the scheduler; the raw values below are the Fig 2 bar heights (in % of
/// *all* attacks) so out/in ratios (§3.1: SYN x5, UDP x2, BF x4, SQL x5)
/// hold by construction.
std::array<std::array<AttackParams, kAttackTypeCount>, 2> build_tables() {
  std::array<std::array<AttackParams, kAttackTypeCount>, 2> t{};
  auto& in = t[0];
  auto& out = t[1];

  // ---------- TCP SYN flood ----------
  {
    AttackParams& p = in[index_of(AttackType::kSynFlood)];
    p.session_share = 6.5;
    p.p_single = 0.30;
    p.repeat_cap = 39;  // Fig 3a tail: 39 inbound attacks in a day
    p.peak_pps_median = 25'000, p.peak_pps_sigma = 1.6, p.peak_pps_cap = 1.7e6;
    p.duration_median = 6, p.duration_sigma = 1.1, p.duration_cap = 600;
    p.interarrival_median = 100, p.ramp_up_median = 2.5;
    p.host_count_median = 60, p.host_count_sigma = 1.4, p.host_count_cap = 4'000;
    p.spoofed_fraction = 0.671;  // §6.1
    p.campaign_probability = 0.02, p.campaign_size_median = 2, p.campaign_size_cap = 8;
    p.multi_vector_probability = 0.28;
    p.origin_class_weights = kInSynOrigins;
  }
  {
    AttackParams& p = out[index_of(AttackType::kSynFlood)];
    p.session_share = 4.0;  // ~5x inbound (plus the scripted serial attacker
                            // and the multi-vector SYN companions)
    p.p_single = 0.33;
    p.repeat_alpha = 1.05;
    p.repeat_cap = 150;  // §4.1: one VIP with >144 SYN floods in a day
    p.peak_pps_median = 14'000, p.peak_pps_sigma = 1.1, p.peak_pps_cap = 184'000;
    p.duration_median = 3, p.duration_sigma = 1.0, p.duration_cap = 200;
    p.interarrival_median = 25, p.ramp_up_median = 1.0;  // §5.2
    p.host_count_median = 25, p.host_count_sigma = 1.0, p.host_count_cap = 600;
    p.campaign_probability = 0.02, p.campaign_size_median = 3, p.campaign_size_cap = 12;
    p.multi_vector_probability = 0.012;
    p.origin_class_weights = kOutSynTargets;
  }

  // ---------- UDP flood ----------
  {
    AttackParams& p = in[index_of(AttackType::kUdpFlood)];
    p.session_share = 7.0;
    p.p_single = 0.30;
    p.repeat_cap = 30;
    // §5.2 bimodality: 81% small (8 Kpps, 226 min apart), 19% large
    // (457 Kpps, 95 min apart).
    p.peak_pps_median = 11'000, p.peak_pps_sigma = 1.3, p.peak_pps_cap = 9.2e6;
    p.mode2_probability = 0.19, p.mode2_pps_median = 457'000;
    p.mode2_interarrival_median = 95;
    p.duration_median = 5, p.duration_sigma = 1.2, p.duration_cap = 700;
    p.interarrival_median = 226, p.ramp_up_median = 2.0;
    p.host_count_median = 120, p.host_count_sigma = 1.5, p.host_count_cap = 6'000;
    p.campaign_probability = 0.02, p.campaign_size_median = 2, p.campaign_size_cap = 10;
    p.multi_vector_probability = 0.28;
    p.origin_class_weights = kInUdpOrigins;
    p.hub = HubKind::kSpain, p.hub_fraction = 0.25;  // §6.1
  }
  {
    AttackParams& p = out[index_of(AttackType::kUdpFlood)];
    p.session_share = 11.0;  // ~2x inbound
    p.p_single = 0.35;
    p.repeat_cap = 80;
    p.peak_pps_median = 11'000, p.peak_pps_sigma = 1.0, p.peak_pps_cap = 1.6e6;
    p.mode2_probability = 0.19, p.mode2_pps_median = 200'000;
    p.mode2_interarrival_median = 95;
    p.duration_median = 5, p.duration_sigma = 1.2, p.duration_cap = 3000;
    p.interarrival_median = 25, p.ramp_up_median = 1.0;
    p.host_count_median = 8, p.host_count_sigma = 1.2, p.host_count_cap = 500;  // §6.2
    p.campaign_probability = 0.08, p.campaign_size_median = 12, p.campaign_size_cap = 45;
    p.multi_vector_probability = 0.010;
    p.origin_class_weights = kOutUdpTargets;
    p.hub = HubKind::kRomania, p.hub_fraction = 0.10;  // §6.2 (packet-heavy)
  }

  // ---------- ICMP flood ----------
  {
    AttackParams& p = in[index_of(AttackType::kIcmpFlood)];
    p.session_share = 5.5;
    p.p_single = 0.40;
    p.repeat_cap = 25;
    p.peak_pps_median = 15'000, p.peak_pps_sigma = 1.2, p.peak_pps_cap = 600'000;
    p.duration_median = 8, p.duration_sigma = 1.3, p.duration_cap = 2000;
    p.interarrival_median = 150, p.ramp_up_median = 2.0;
    p.host_count_median = 40, p.host_count_sigma = 1.2, p.host_count_cap = 2'000;
    p.multi_vector_probability = 0.28;
    p.origin_class_weights = kInIcmpOrigins;
  }
  {
    AttackParams& p = out[index_of(AttackType::kIcmpFlood)];
    p.session_share = 3.2;
    p.p_single = 0.40;
    p.repeat_cap = 25;
    p.peak_pps_median = 10'000, p.peak_pps_sigma = 1.0, p.peak_pps_cap = 45'000;
    p.duration_median = 6, p.duration_sigma = 1.2, p.duration_cap = 1500;
    p.interarrival_median = 120, p.ramp_up_median = 1.0;
    p.host_count_median = 15, p.host_count_sigma = 1.0, p.host_count_cap = 300;
    p.multi_vector_probability = 0.012;
    p.origin_class_weights = kOutIcmpTargets;
  }

  // ---------- DNS reflection ----------
  {
    AttackParams& p = in[index_of(AttackType::kDnsReflection)];
    p.session_share = 2.6;
    p.p_single = 0.50;
    p.repeat_cap = 12;
    p.peak_pps_median = 50'000, p.peak_pps_sigma = 1.3, p.peak_pps_cap = 2.0e6;
    p.duration_median = 10, p.duration_sigma = 1.6, p.duration_cap = 4000;  // longest (§5.2)
    p.interarrival_median = 200, p.ramp_up_median = 2.5;
    p.host_count_median = 60, p.host_count_sigma = 1.4, p.host_count_cap = 6'000;
    // §3.1: up to 6K distinct resolvers at the tail; §6.1: a median attack
    // shows only ~17 resolvers in the sampled records.
    p.multi_vector_probability = 0.22;
    p.origin_class_weights = kInDnsOrigins;
  }
  {
    AttackParams& p = out[index_of(AttackType::kDnsReflection)];
    p.session_share = 0.4;
    p.p_single = 0.60;
    p.repeat_cap = 8;
    p.peak_pps_median = 8'200, p.peak_pps_sigma = 0.5, p.peak_pps_cap = 20'000;
    p.duration_median = 60, p.duration_sigma = 1.6, p.duration_cap = 4000;
    p.interarrival_median = 300, p.ramp_up_median = 1.0;
    p.host_count_median = 17, p.host_count_sigma = 0.8, p.host_count_cap = 200;  // §6.1
    p.origin_class_weights = kOutDnsTargets;
    p.hub = HubKind::kFrance, p.hub_fraction = 0.236;  // §6.2
  }

  // ---------- Spam ----------
  {
    AttackParams& p = in[index_of(AttackType::kSpam)];
    p.session_share = 1.6;
    p.p_single = 0.50;
    p.repeat_cap = 6;
    p.peak_pps_median = 3'200, p.peak_pps_sigma = 0.8, p.peak_pps_cap = 30'000;
    p.duration_median = 45, p.duration_sigma = 1.2, p.duration_cap = 2000;
    p.interarrival_median = 300, p.ramp_up_median = 2.0;
    p.host_count_median = 60, p.host_count_sigma = 1.0, p.host_count_cap = 3'000;
    p.origin_class_weights = kInSpamOrigins;
    p.hub = HubKind::kSingaporeSpam, p.hub_fraction = 0.5;  // §6.1: 81% of packets
  }
  {
    AttackParams& p = out[index_of(AttackType::kSpam)];
    p.session_share = 4.5;  // on-off phases split into ~1.5x incidents
    p.p_single = 0.45;
    p.repeat_cap = 8;
    p.peak_pps_median = 2'266, p.peak_pps_sigma = 0.7, p.peak_pps_cap = 40'000;  // §3.1
    p.duration_median = 360, p.duration_sigma = 1.0, p.duration_cap = 4000;
    p.interarrival_median = 400, p.ramp_up_median = 1.0;
    p.host_count_median = 1'500, p.host_count_sigma = 0.9, p.host_count_cap = 8'000;
    p.campaign_probability = 0.08, p.campaign_size_median = 14, p.campaign_size_cap = 30;
    p.origin_class_weights = kOutSpamTargets;
    p.on_minutes_median = 60, p.off_minutes_median = 300;  // §3.1 on-off pattern
  }

  // ---------- Brute-force ----------
  {
    AttackParams& p = in[index_of(AttackType::kBruteForce)];
    p.session_share = 3.0;
    p.p_single = 0.42;
    p.repeat_cap = 8;
    p.peak_pps_median = 5'500, p.peak_pps_sigma = 1.1, p.peak_pps_cap = 500'000;
    p.duration_median = 10, p.duration_sigma = 1.3, p.duration_cap = 3000;
    p.interarrival_median = 180, p.ramp_up_median = 2.0;
    p.host_count_median = 40, p.host_count_sigma = 1.5, p.host_count_cap = 12'000;  // §3.1
    p.campaign_probability = 0.06, p.campaign_size_median = 6, p.campaign_size_cap = 66;  // §4.3
    p.multi_vector_probability = 0.02;
    p.origin_class_weights = kInBfOrigins;
  }
  {
    AttackParams& p = out[index_of(AttackType::kBruteForce)];
    p.session_share = 17.0;  // ~4x inbound
    p.p_single = 0.38;
    p.repeat_cap = 10;
    p.peak_pps_median = 4'500, p.peak_pps_sigma = 0.9, p.peak_pps_cap = 120'000;
    p.duration_median = 9, p.duration_sigma = 1.2, p.duration_cap = 2000;
    p.interarrival_median = 200, p.ramp_up_median = 1.0;
    p.host_count_median = 60, p.host_count_sigma = 1.1, p.host_count_cap = 5'000;  // §3.1
    p.campaign_probability = 0.12, p.campaign_size_median = 14, p.campaign_size_cap = 45;
    p.multi_vector_probability = 0.10;  // §4.2: BF together with SYN/ICMP floods
    p.origin_class_weights = kOutBfTargets;
    p.hub = HubKind::kSpain, p.hub_fraction = 0.20;  // §6.2
  }

  // ---------- SQL injection ----------
  {
    AttackParams& p = in[index_of(AttackType::kSqlInjection)];
    p.session_share = 3.2;
    p.p_single = 0.45;
    p.repeat_cap = 8;
    p.peak_pps_median = 3'500, p.peak_pps_sigma = 0.9, p.peak_pps_cap = 80'000;
    p.duration_median = 8, p.duration_sigma = 1.2, p.duration_cap = 1000;
    p.interarrival_median = 250, p.ramp_up_median = 2.0;
    p.host_count_median = 4, p.host_count_sigma = 1.0, p.host_count_cap = 100;
    p.origin_class_weights = kInSqlOrigins;
    p.hub = HubKind::kSpain, p.hub_fraction = 0.25;
  }
  {
    AttackParams& p = out[index_of(AttackType::kSqlInjection)];
    p.session_share = 11.0;  // ~5x inbound
    p.p_single = 0.40;
    p.repeat_cap = 12;
    p.peak_pps_median = 3'000, p.peak_pps_sigma = 0.9, p.peak_pps_cap = 60'000;
    p.duration_median = 7, p.duration_sigma = 1.1, p.duration_cap = 800;
    p.interarrival_median = 220, p.ramp_up_median = 1.0;
    p.host_count_median = 10, p.host_count_sigma = 1.2, p.host_count_cap = 400;
    p.campaign_probability = 0.08, p.campaign_size_median = 10, p.campaign_size_cap = 30;
    p.origin_class_weights = kOutSqlTargets;
    p.hub = HubKind::kSpain, p.hub_fraction = 0.20;
  }

  // ---------- Port scan ----------
  {
    AttackParams& p = in[index_of(AttackType::kPortScan)];
    p.session_share = 16.0;
    p.p_single = 0.30;
    p.repeat_cap = 8;
    // §5.1: 1000x spread between peak and median volumes.
    p.peak_pps_median = 800, p.peak_pps_sigma = 1.8, p.peak_pps_cap = 900'000;
    p.duration_median = 1, p.duration_sigma = 1.4, p.duration_cap = 150;  // Fig 9
    p.interarrival_median = 200, p.ramp_up_median = 0.5;
    p.host_count_median = 2, p.host_count_sigma = 0.9, p.host_count_cap = 60;
    p.origin_class_weights = kInScanOrigins;
  }
  {
    AttackParams& p = out[index_of(AttackType::kPortScan)];
    p.session_share = 0.8;  // "much fewer outbound port scans" (§3.1)
    p.p_single = 0.50;
    p.repeat_cap = 6;
    p.peak_pps_median = 500, p.peak_pps_sigma = 1.2, p.peak_pps_cap = 40'000;
    p.duration_median = 1, p.duration_sigma = 1.2, p.duration_cap = 120;
    p.interarrival_median = 250, p.ramp_up_median = 0.5;
    p.host_count_median = 30, p.host_count_sigma = 1.2, p.host_count_cap = 2'000;
    p.origin_class_weights = kOutScanTargets;
  }

  // ---------- TDS (malicious web activity) ----------
  {
    AttackParams& p = in[index_of(AttackType::kTds)];
    p.session_share = 10.0;
    p.p_single = 0.30;
    p.repeat_cap = 8;
    p.peak_pps_median = 1'500, p.peak_pps_sigma = 1.2, p.peak_pps_cap = 40'000;
    p.duration_median = 20, p.duration_sigma = 1.4, p.duration_cap = 1500;
    p.interarrival_median = 300, p.ramp_up_median = 1.5;
    p.host_count_median = 8, p.host_count_sigma = 1.1, p.host_count_cap = 120;  // §3.1: 89 at tail
    p.origin_class_weights = kInTdsOrigins;
    p.hub_fraction = 0.35;  // §6.1: big clouds on 35% of TDS attacks
  }
  {
    AttackParams& p = out[index_of(AttackType::kTds)];
    p.session_share = 4.9;
    p.p_single = 0.45;
    p.repeat_cap = 8;
    p.peak_pps_median = 1'200, p.peak_pps_sigma = 1.2, p.peak_pps_cap = 31'000;
    p.duration_median = 25, p.duration_sigma = 1.4, p.duration_cap = 1500;
    p.interarrival_median = 300, p.ramp_up_median = 1.0;
    p.host_count_median = 8, p.host_count_sigma = 1.1, p.host_count_cap = 120;
    p.origin_class_weights = kOutTdsTargets;
    p.hub_fraction = 0.35;
    p.hub = HubKind::kSpain;  // Spain hub also on outbound TDS (§6.2)
  }

  return t;
}

}  // namespace

const AttackParams& default_attack_params(AttackType type, Direction dir) noexcept {
  static const auto tables = build_tables();
  return tables[dir == Direction::kInbound ? 0 : 1][index_of(type)];
}

ScenarioConfig ScenarioConfig::smoke() {
  ScenarioConfig c;
  c.seed = 7;
  c.days = 2;
  c.vips.vip_count = 150;
  c.vips.data_center_count = 4;
  c.ases.small_isp = 60;
  c.ases.customer = 80;
  c.ases.small_cloud = 15;
  c.ases.mobile = 10;
  c.ases.large_isp = 10;
  c.ases.edu = 12;
  c.ases.ixp = 5;
  c.ases.nic = 4;
  c.tds.host_count = 300;
  c.inbound_sessions_per_vip_day = 0.06;
  c.outbound_sessions_per_vip_day = 0.08;
  c.benign_scale = 0.05;
  return c;
}

ScenarioConfig ScenarioConfig::paper_scale() {
  ScenarioConfig c;
  c.seed = 42;
  c.days = 7;
  c.vips.vip_count = 1500;
  c.vips.data_center_count = 10;
  return c;
}

ScenarioConfig ScenarioConfig::holiday_season() {
  ScenarioConfig c = paper_scale();
  c.seed = 1112;  // a different month of "traffic"
  c.inbound_flood_seasonality = 2.5;
  return c;
}

}  // namespace dm::sim
