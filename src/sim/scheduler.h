// Planning the attack population of a scenario.
//
// The scheduler turns the calibration tables of scenario.h into a concrete
// list of ground-truth episodes: per-day attack sessions on chosen VIPs,
// repeat attacks within a session (Fig 3a), multi-vector bundles (§4.2),
// multi-VIP campaigns (§4.3), plus the scripted events the paper narrates
// (the Fig 5 compromise chain, the spam eruption, the two-host subnet scan,
// the cloud DNS server, and the Romanian packet barrage).
#pragma once

#include <cstdint>
#include <map>
#include <tuple>

#include "cloud/as_registry.h"
#include "cloud/tds_blacklist.h"
#include "cloud/vip_registry.h"
#include "sim/episode.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace dm::sim {

class EpisodeScheduler {
 public:
  EpisodeScheduler(const ScenarioConfig& config, const cloud::VipRegistry& vips,
                   const cloud::AsRegistry& ases, const cloud::TdsBlacklist& tds);

  /// Plans the full ground truth. Deterministic given the scenario seed.
  [[nodiscard]] GroundTruth schedule();

 private:
  struct SessionPlan {
    AttackType type;
    netflow::Direction direction;
    std::uint32_t vip_index;
    util::Minute day_start;
    bool mode2 = false;  ///< UDP bimodality: the large/frequent mode (§5.2)
  };

  // -- selection helpers ------------------------------------------------
  /// session_share describes the target share of *attacks*; a session of
  /// some types expands into many episodes (repeats, campaigns). The
  /// divisor is the Monte-Carlo-estimated expected episodes per session, so
  /// type picking corrects for the expansion.
  [[nodiscard]] double episodes_per_session(AttackType type,
                                            netflow::Direction dir) const;
  [[nodiscard]] AttackType pick_type(netflow::Direction dir);
  [[nodiscard]] std::uint32_t pick_inbound_victim(AttackType type);
  [[nodiscard]] std::uint32_t pick_outbound_source(AttackType type);
  [[nodiscard]] std::uint32_t attack_count(const AttackParams& p);
  [[nodiscard]] std::uint16_t pick_target_port(const SessionPlan& plan,
                                               const cloud::VipInfo& vip,
                                               BruteForceProtocol* bf_proto);

  /// Fills remote_hosts/remote_weights/spoofed per the type's origin model.
  void draw_remotes(AttackEpisode& e, const AttackParams& p);

  /// The paper's clustering: outbound targets usually live in one AS (§6.2).
  [[nodiscard]] const cloud::AsInfo& pick_target_as(const AttackParams& p);

  // -- session expansion --------------------------------------------------
  void run_session(const SessionPlan& plan, GroundTruth& truth);
  /// Emits a train of `count` repeat attacks. `forced_start` (when >= 0)
  /// pins the first attack's start — used by campaign members so the wave
  /// stays inside the 5-minute correlation window.
  void add_episode_train(const SessionPlan& plan, std::uint32_t count,
                         std::uint32_t campaign_id, std::uint32_t mv_group,
                         GroundTruth& truth, util::Minute forced_start = -1);
  [[nodiscard]] AttackEpisode make_episode(const SessionPlan& plan,
                                           util::Minute start,
                                           std::uint32_t campaign_id,
                                           std::uint32_t mv_group);

  // -- scripted events ------------------------------------------------
  void script_case_study(GroundTruth& truth);       ///< Fig 5
  void script_spam_eruption(GroundTruth& truth);    ///< §3.1
  void script_subnet_scan(GroundTruth& truth);      ///< §4.3
  void script_dns_server_case(GroundTruth& truth);  ///< §3.1
  void script_romania_barrage(GroundTruth& truth);  ///< §6.2
  void script_serial_attacker(GroundTruth& truth);  ///< §4.1 tail VIP

  const ScenarioConfig* config_;
  const cloud::VipRegistry* vips_;
  const cloud::AsRegistry* ases_;
  const cloud::TdsBlacklist* tds_;
  util::Rng rng_;
  std::uint32_t next_episode_id_ = 1;
  std::uint32_t next_campaign_id_ = 1;
  std::uint32_t next_mv_group_ = 1;
  // Lazily-built type-picking weights (share / expected expansion).
  std::array<double, kAttackTypeCount> type_weights_in_{};
  std::array<double, kAttackTypeCount> type_weights_out_{};

  /// Reserved time intervals per (vip, type, direction): independently
  /// planned incidents are kept farther apart than the grouping timeout, so
  /// the ground-truth episode count matches what the incident builder can
  /// recover. Returns the (possibly delayed) start; the duration is kept.
  [[nodiscard]] util::Minute reserve_slot(netflow::IPv4 vip, AttackType type,
                                          netflow::Direction dir,
                                          util::Minute start,
                                          util::Minute duration);
  /// Applies reserve_slot to an episode in place.
  void place_episode(AttackEpisode& e);
  std::map<std::tuple<std::uint32_t, int, int>, std::map<util::Minute, util::Minute>>
      slots_;
};

}  // namespace dm::sim
