#include "sim/attack_traffic.h"

#include <algorithm>
#include <cmath>

namespace dm::sim {

using netflow::Direction;
using netflow::FlowRecord;
using netflow::IPv4;
using netflow::Protocol;
using netflow::TcpFlags;

namespace {

std::uint16_t ephemeral_port(util::Rng& rng) noexcept {
  return static_cast<std::uint16_t>(1024 + rng.below(64512));
}

/// Mean bytes per packet by attack family.
double packet_bytes(AttackType t) noexcept {
  switch (t) {
    case AttackType::kSynFlood: return 40.0;
    case AttackType::kUdpFlood: return 480.0;
    case AttackType::kIcmpFlood: return 84.0;
    case AttackType::kDnsReflection: return 1500.0;  // full-size responses (§3.1)
    case AttackType::kSpam: return 620.0;
    case AttackType::kBruteForce: return 130.0;
    case AttackType::kSqlInjection: return 420.0;
    case AttackType::kPortScan: return 40.0;
    case AttackType::kTds: return 700.0;
  }
  return 100.0;
}

}  // namespace

AttackTrafficModel::AttackTrafficModel(const cloud::AsRegistry& ases,
                                       const cloud::TdsBlacklist& tds)
    : ases_(&ases), tds_(&tds) {}

void AttackTrafficModel::emit_minute(const AttackEpisode& e, util::Minute minute,
                                     const netflow::PacketSampler& sampler,
                                     util::Rng& rng,
                                     std::vector<FlowRecord>& out) const {
  const double pps = e.planned_pps(minute);
  if (pps <= 0.0) return;
  // Plateau noise: real floods wobble around their planned rate.
  const double true_ppm = pps * 60.0 * rng.lognormal_median(1.0, 0.08);
  const std::uint64_t sampled = rng.poisson(true_ppm * sampler.probability());
  if (sampled == 0) return;

  switch (e.type) {
    case AttackType::kSynFlood:
    case AttackType::kUdpFlood:
    case AttackType::kIcmpFlood:
      emit_flood(e, minute, sampled, rng, out);
      break;
    case AttackType::kDnsReflection:
      emit_dns_reflection(e, minute, sampled, rng, out);
      break;
    case AttackType::kSpam:
    case AttackType::kBruteForce:
    case AttackType::kSqlInjection:
    case AttackType::kTds:
      emit_connections(e, minute, sampled, rng, out);
      break;
    case AttackType::kPortScan:
      emit_port_scan(e, minute, sampled, rng, out);
      break;
  }
}

std::vector<AttackTrafficModel::Share> AttackTrafficModel::distribute(
    const AttackEpisode& e, std::uint64_t sampled_packets, util::Rng& rng) const {
  std::vector<Share> shares;
  const std::size_t n = e.remote_hosts.size();
  if (n == 0) return shares;

  if (sampled_packets >= n * 4) {
    // Dense regime: Poisson share per host approximates the multinomial.
    double total_weight = 0.0;
    if (!e.remote_weights.empty()) {
      for (double w : e.remote_weights) total_weight += w;
    } else {
      total_weight = static_cast<double>(n);
    }
    shares.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      const double w = e.remote_weights.empty() ? 1.0 : e.remote_weights[i];
      const std::uint64_t pkts = rng.poisson(
          static_cast<double>(sampled_packets) * w / total_weight);
      if (pkts > 0) shares.push_back({i, pkts});
    }
    return shares;
  }

  // Sparse regime: draw a host per packet, then merge.
  std::vector<std::uint32_t> picks;
  picks.reserve(sampled_packets);
  for (std::uint64_t p = 0; p < sampled_packets; ++p) {
    const std::size_t idx =
        e.remote_weights.empty()
            ? static_cast<std::size_t>(rng.below(n))
            : rng.weighted_index(e.remote_weights);
    picks.push_back(static_cast<std::uint32_t>(idx));
  }
  std::sort(picks.begin(), picks.end());
  for (std::size_t i = 0; i < picks.size();) {
    std::size_t j = i;
    while (j < picks.size() && picks[j] == picks[i]) ++j;
    shares.push_back({picks[i], j - i});
    i = j;
  }
  return shares;
}

void AttackTrafficModel::emit_flood(const AttackEpisode& e, util::Minute minute,
                                    std::uint64_t sampled, util::Rng& rng,
                                    std::vector<FlowRecord>& out) const {
  const double bytes_per_pkt = packet_bytes(e.type);
  auto base_record = [&](std::uint64_t pkts) {
    FlowRecord r;
    r.minute = minute;
    r.packets = static_cast<std::uint32_t>(std::min<std::uint64_t>(pkts, 0xffffffffu));
    r.bytes = static_cast<std::uint64_t>(static_cast<double>(pkts) * bytes_per_pkt);
    switch (e.type) {
      case AttackType::kSynFlood:
        r.protocol = Protocol::kTcp;
        r.tcp_flags = TcpFlags::kSyn;
        break;
      case AttackType::kUdpFlood:
        r.protocol = Protocol::kUdp;
        break;
      default:
        r.protocol = Protocol::kIcmp;
        break;
    }
    return r;
  };

  auto fill_endpoints = [&](FlowRecord& r, IPv4 remote) {
    std::uint16_t remote_port = ephemeral_port(rng);
    if (e.type == AttackType::kSynFlood && e.fixed_source_ports) {
      remote_port = rng.chance(0.5) ? 1024 : 3072;  // juno tool bug (§4.4)
    }
    if (e.direction == Direction::kInbound) {
      r.src_ip = remote;
      r.dst_ip = e.vip;
      r.src_port = remote_port;
      r.dst_port = e.target_port;
    } else {
      r.src_ip = e.vip;
      r.dst_ip = remote;
      r.src_port = ephemeral_port(rng);
      r.dst_port = e.target_port;
    }
    if (e.type == AttackType::kIcmpFlood) {
      r.src_port = 0;
      r.dst_port = 0;
    }
  };

  if (e.spoofed_sources && e.direction == Direction::kInbound) {
    // Every spoofed source is unique, so every sampled packet is its own
    // flow record. Cap the per-minute record count for pathological rates.
    const std::uint64_t records = std::min<std::uint64_t>(sampled, 60'000);
    const std::uint64_t per_record = std::max<std::uint64_t>(1, sampled / records);
    for (std::uint64_t i = 0; i < records; ++i) {
      FlowRecord r = base_record(per_record);
      fill_endpoints(r, cloud::AsRegistry::spoofed_address(rng));
      out.push_back(r);
    }
    return;
  }

  for (const Share& share : distribute(e, sampled, rng)) {
    FlowRecord r = base_record(share.packets);
    fill_endpoints(r, e.remote_hosts[share.host_index]);
    out.push_back(r);
  }
}

void AttackTrafficModel::emit_dns_reflection(const AttackEpisode& e,
                                             util::Minute minute,
                                             std::uint64_t sampled, util::Rng& rng,
                                             std::vector<FlowRecord>& out) const {
  // Responses travel resolver:53 -> victim:ephemeral.
  for (const Share& share : distribute(e, sampled, rng)) {
    FlowRecord r;
    r.minute = minute;
    r.protocol = Protocol::kUdp;
    r.packets = static_cast<std::uint32_t>(share.packets);
    r.bytes = share.packets * 1500;
    const IPv4 remote = e.remote_hosts[share.host_index];
    if (e.direction == Direction::kInbound) {
      r.src_ip = remote;      // open resolver in the Internet
      r.dst_ip = e.vip;       // reflection victim in the cloud
      r.src_port = netflow::ports::kDns;
      r.dst_port = ephemeral_port(rng);
    } else {
      r.src_ip = e.vip;       // the cloud-hosted DNS server case (§3.1)
      r.dst_ip = remote;
      r.src_port = netflow::ports::kDns;
      r.dst_port = ephemeral_port(rng);
    }
    out.push_back(r);
  }
}

void AttackTrafficModel::emit_connections(const AttackEpisode& e,
                                          util::Minute minute,
                                          std::uint64_t sampled, util::Rng& rng,
                                          std::vector<FlowRecord>& out) const {
  // Each sampled connection is its own flow (fresh ephemeral port). Bound
  // the record count, folding excess packets into the connections.
  const std::uint64_t connections = std::min<std::uint64_t>(sampled, 20'000);
  const double bytes_per_pkt = packet_bytes(e.type);

  for (std::uint64_t c = 0; c < connections; ++c) {
    const std::size_t host_idx =
        e.remote_weights.empty()
            ? static_cast<std::size_t>(rng.below(e.remote_hosts.size()))
            : rng.weighted_index(e.remote_weights);
    const IPv4 remote = e.remote_hosts[host_idx];

    FlowRecord r;
    r.minute = minute;
    r.protocol = Protocol::kTcp;
    r.packets = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(1, sampled / connections));
    r.bytes = static_cast<std::uint64_t>(static_cast<double>(r.packets) *
                                         bytes_per_pkt);
    // Completed handshake plus payload; brute-force attempts usually reset.
    r.tcp_flags = TcpFlags::kSyn | TcpFlags::kAck | TcpFlags::kPsh;
    if (e.type == AttackType::kBruteForce && rng.chance(0.4)) {
      r.tcp_flags = r.tcp_flags | TcpFlags::kRst;
    }

    std::uint16_t remote_port = ephemeral_port(rng);
    std::uint16_t service_port = e.target_port;
    if (e.type == AttackType::kTds) {
      // TDS hosts serve from ports uniform in [1024, 5000] (§3.1).
      service_port = cloud::TdsBlacklist::random_tds_port(rng);
    }

    if (e.direction == Direction::kInbound) {
      r.src_ip = remote;
      r.dst_ip = e.vip;
      if (e.type == AttackType::kTds) {
        r.src_port = service_port;        // TDS host's serving port
        r.dst_port = e.target_port != 0 ? e.target_port : ephemeral_port(rng);
      } else {
        r.src_port = remote_port;
        r.dst_port = e.target_port;       // attacked service on the VIP
      }
    } else {
      r.src_ip = e.vip;
      r.dst_ip = remote;
      if (e.type == AttackType::kTds) {
        r.src_port = ephemeral_port(rng);
        r.dst_port = service_port;        // contacting the TDS host
      } else {
        r.src_port = remote_port;
        r.dst_port = e.target_port;       // attacked service in the Internet
      }
    }
    out.push_back(r);
  }
}

void AttackTrafficModel::emit_port_scan(const AttackEpisode& e,
                                        util::Minute minute,
                                        std::uint64_t sampled, util::Rng& rng,
                                        std::vector<FlowRecord>& out) const {
  // Every probe has a distinct destination port, so every sampled packet is
  // a distinct flow. Cap and fold as in emit_connections.
  const std::uint64_t probes = std::min<std::uint64_t>(sampled, 20'000);

  for (std::uint64_t p = 0; p < probes; ++p) {
    const std::size_t host_idx =
        static_cast<std::size_t>(rng.below(e.remote_hosts.size()));
    const IPv4 remote = e.remote_hosts[host_idx];

    FlowRecord r;
    r.minute = minute;
    r.protocol = Protocol::kTcp;
    r.packets = static_cast<std::uint32_t>(std::max<std::uint64_t>(1, sampled / probes));
    r.bytes = r.packets * 40;
    switch (e.scan_kind) {
      case PortScanKind::kNull:
        r.tcp_flags = TcpFlags::kNone;
        break;
      case PortScanKind::kXmas:
        r.tcp_flags = netflow::kXmasFlags;
        break;
      case PortScanKind::kRstBackscatter:
        r.tcp_flags = TcpFlags::kRst;
        break;
    }

    const std::uint16_t scanned_port =
        e.target_port != 0 ? e.target_port
                           : static_cast<std::uint16_t>(1 + rng.below(65535));
    if (e.direction == Direction::kInbound) {
      r.src_ip = remote;
      r.dst_ip = e.vip;
      r.src_port = ephemeral_port(rng);
      r.dst_port = scanned_port;
    } else {
      r.src_ip = e.vip;
      r.dst_ip = remote;
      r.src_port = ephemeral_port(rng);
      r.dst_port = scanned_port;
    }
    out.push_back(r);
  }
}

}  // namespace dm::sim
