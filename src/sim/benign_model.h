// Benign traffic synthesis.
//
// For every active VIP and minute, the model derives the true packet volume
// of each hosted service (base rate x popularity x diurnal curve x noise),
// thins it through the NetFlow sampler, and materializes the surviving
// packets as flow records against the VIP's stable client pool. Most
// VIP-minutes yield nothing — exactly like 1:4096-sampled NetFlow of a
// long-tail tenant population.
#pragma once

#include <cstdint>
#include <vector>

#include "cloud/as_registry.h"
#include "cloud/tds_blacklist.h"
#include "cloud/vip_registry.h"
#include "netflow/flow_record.h"
#include "netflow/sampler.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace dm::sim {

class BenignTrafficModel {
 public:
  /// Per-shard scratch state for emit_minute: a direct-mapped memo of
  /// exp(-mean) keyed on the mean's bit pattern. Poisson means repeat with
  /// day periodicity per (VIP, service, direction), so every day after the
  /// first hits the memo instead of recomputing the exponential. The memo
  /// only caches a pure function of the mean — the drawn uniforms are
  /// identical with or without it (Rng::poisson_knuth).
  class Scratch {
   public:
    /// exp(-mean), memoized.
    [[nodiscard]] double exp_neg(double mean) noexcept;

   private:
    struct Slot {
      std::uint64_t bits = ~std::uint64_t{0};  // NaN pattern: never a mean
      double value = 0.0;
    };
    // Comfortably above the ~services x directions x 1440 distinct means
    // one VIP cycles through, so cross-day hits survive direct mapping.
    static constexpr std::size_t kSlots = 8192;
    std::vector<Slot> slots_{kSlots};
  };

  /// Builds per-VIP client pools (deterministic from `seed`). Pool hosts
  /// never coincide with TDS-blacklisted addresses when `tds` is given —
  /// legitimate clients do not live on dedicated malicious hosts.
  BenignTrafficModel(const ScenarioConfig& config, const cloud::VipRegistry& vips,
                     const cloud::AsRegistry& ases, std::uint64_t seed,
                     const cloud::TdsBlacklist* tds = nullptr);

  /// Emits the sampled benign records of one VIP for one minute (both
  /// directions) into `out`. `vip_index` indexes VipRegistry::all().
  void emit_minute(std::uint32_t vip_index, util::Minute minute,
                   const netflow::PacketSampler& sampler, util::Rng& rng,
                   std::vector<netflow::FlowRecord>& out) const {
    emit_minute_impl(vip_index, minute, sampler, rng, nullptr, out);
  }

  /// emit_minute with a caller-held Scratch — byte-identical records, but
  /// the generation loops pass one Scratch per shard so repeated means skip
  /// the exp() (the generator's hot path).
  void emit_minute(std::uint32_t vip_index, util::Minute minute,
                   const netflow::PacketSampler& sampler, util::Rng& rng,
                   Scratch& scratch, std::vector<netflow::FlowRecord>& out) const {
    emit_minute_impl(vip_index, minute, sampler, rng, &scratch, out);
  }

  /// The client pool backing a VIP (exposed for tests).
  [[nodiscard]] std::span<const netflow::IPv4> pool_of(std::uint32_t vip_index) const {
    return pools_[vip_index];
  }

 private:
  void emit_minute_impl(std::uint32_t vip_index, util::Minute minute,
                        const netflow::PacketSampler& sampler, util::Rng& rng,
                        Scratch* scratch,
                        std::vector<netflow::FlowRecord>& out) const;

  void emit_flows(netflow::IPv4 vip, const cloud::ServiceProfile& profile,
                  util::Minute minute, std::uint64_t sampled_packets,
                  double active_clients, bool outbound, util::Rng& rng,
                  Scratch* scratch, std::span<const netflow::IPv4> pool,
                  std::vector<netflow::FlowRecord>& out) const;

  const ScenarioConfig* config_;
  const cloud::VipRegistry* vips_;
  util::Minute trace_end_;
  std::vector<std::vector<netflow::IPv4>> pools_;
  /// diurnal_factor() tabulated per (region, minute-of-day): the factor is
  /// periodic by construction, and emit_minute runs once per VIP-minute, so
  /// the cos() would otherwise be recomputed millions of times for the same
  /// 1440 values. Bit-identical to calling diurnal_factor() directly.
  std::vector<double> diurnal_;
};

/// Diurnal load factor in [0.55, 1.45]: peak in the data center region's
/// local afternoon. Exposed for tests and the volume-detector property
/// suite (the EWMA baseline must absorb it without alarms).
[[nodiscard]] double diurnal_factor(util::Minute minute,
                                    cloud::GeoRegion region) noexcept;

}  // namespace dm::sim
