// Benign traffic synthesis.
//
// For every active VIP and minute, the model derives the true packet volume
// of each hosted service (base rate x popularity x diurnal curve x noise),
// thins it through the NetFlow sampler, and materializes the surviving
// packets as flow records against the VIP's stable client pool. Most
// VIP-minutes yield nothing — exactly like 1:4096-sampled NetFlow of a
// long-tail tenant population.
#pragma once

#include <cstdint>
#include <vector>

#include "cloud/as_registry.h"
#include "cloud/tds_blacklist.h"
#include "cloud/vip_registry.h"
#include "netflow/flow_record.h"
#include "netflow/sampler.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace dm::sim {

class BenignTrafficModel {
 public:
  /// Builds per-VIP client pools (deterministic from `seed`). Pool hosts
  /// never coincide with TDS-blacklisted addresses when `tds` is given —
  /// legitimate clients do not live on dedicated malicious hosts.
  BenignTrafficModel(const ScenarioConfig& config, const cloud::VipRegistry& vips,
                     const cloud::AsRegistry& ases, std::uint64_t seed,
                     const cloud::TdsBlacklist* tds = nullptr);

  /// Emits the sampled benign records of one VIP for one minute (both
  /// directions) into `out`. `vip_index` indexes VipRegistry::all().
  void emit_minute(std::uint32_t vip_index, util::Minute minute,
                   const netflow::PacketSampler& sampler, util::Rng& rng,
                   std::vector<netflow::FlowRecord>& out) const;

  /// The client pool backing a VIP (exposed for tests).
  [[nodiscard]] std::span<const netflow::IPv4> pool_of(std::uint32_t vip_index) const {
    return pools_[vip_index];
  }

 private:
  void emit_flows(netflow::IPv4 vip, const cloud::ServiceProfile& profile,
                  util::Minute minute, std::uint64_t sampled_packets,
                  double active_clients, bool outbound, util::Rng& rng,
                  std::span<const netflow::IPv4> pool,
                  std::vector<netflow::FlowRecord>& out) const;

  const ScenarioConfig* config_;
  const cloud::VipRegistry* vips_;
  util::Minute trace_end_;
  std::vector<std::vector<netflow::IPv4>> pools_;
};

/// Diurnal load factor in [0.55, 1.45]: peak in the data center region's
/// local afternoon. Exposed for tests and the volume-detector property
/// suite (the EWMA baseline must absorb it without alarms).
[[nodiscard]] double diurnal_factor(util::Minute minute,
                                    cloud::GeoRegion region) noexcept;

}  // namespace dm::sim
