// Minimal C++ lexer for dm::lint.
//
// The linter works on token streams, not ASTs: it has no libclang
// dependency, so it cannot resolve types or overloads, but every invariant
// it enforces (banned identifiers, container declarations, sort call
// shapes, annotated serialization regions) is visible at the lexical
// level. The lexer's job is to make that level trustworthy: string and
// character literals must never leak identifier tokens ("rand" inside a
// message is not a call), comments must be preserved separately (they
// carry the `dmlint:` directives), and every token must know its line.
#pragma once

#include <string_view>
#include <vector>

namespace dm::lint {

struct Token {
  enum class Kind { kIdent, kNumber, kString, kPunct };
  Kind kind = Kind::kPunct;
  std::string_view text;  ///< view into the source buffer (caller keeps alive)
  int line = 1;           ///< 1-based start line
};

struct Comment {
  std::string_view text;  ///< content without the // or /* */ delimiters
  int line = 1;           ///< 1-based start line
  /// True when no code token precedes the comment on its start line; an
  /// own-line directive applies to the next code line, a trailing one to
  /// its own line.
  bool own_line = true;
};

struct TokenStream {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Lexes `text` (one translation unit). Handles //, /* */, string and
/// character literals with escapes, basic raw strings R"delim(...)delim",
/// identifiers, pp-numbers, and maximal-munch punctuation — except that
/// '<' and '>' are always emitted as single characters so the template
/// scanners can bracket-match them.
[[nodiscard]] TokenStream tokenize(std::string_view text);

}  // namespace dm::lint
