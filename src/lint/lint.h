// dm::lint — determinism & invariant linter for the pipeline.
//
// Every exhibit in the study must be byte-identically reproducible across
// thread counts, fused/unfused execution, and checkpoint/restore. PRs 1-4
// established that by convention (canonical keyed sorts, Rng::split
// seeding, shard-order merges); this tool turns the conventions into
// machine-checked invariants over all of src/ and tools/:
//
//   nondeterministic-call   rand()/srand(), std::random_device, any
//                           *_clock::now(), time()/clock()/localtime()/
//                           gmtime(), and thread-identity values
//                           (this_thread::get_id, pthread_self, gettid,
//                           getpid) are banned in library code. Randomness
//                           must come from util::Rng with an explicit seed;
//                           time must come from the trace.
//   pointer-keyed-container associative containers keyed by a pointer type
//                           order or hash by address, which varies run to
//                           run. Key by a stable identity instead.
//   unordered-iteration     iterating a std::unordered_{map,set,multimap,
//                           multiset} (range-for or .begin()/.end() and
//                           friends) visits hash order, which is
//                           implementation- and seed-dependent. Sort first
//                           or use an ordered container. Declaration and
//                           point lookups are fine. Scope note: the rule
//                           sees variables whose unordered type is spelled
//                           out in the same file (members, locals,
//                           parameters); aliases deduced through auto are
//                           out of reach of a lexical tool.
//   sort-tie-break          a std::sort/std::stable_sort with an inline
//                           lambda comparator must visibly resolve ties:
//                           a std::tie/std::make_tuple lexicographic
//                           compare, a key-projection `f(a) < f(b)`, or a
//                           multi-return tie-break chain all count; a
//                           naked single-member compare needs a
//                           `// dmlint: total-order(<why ties are
//                           impossible or harmless>)` annotation. Named
//                           comparators and comparator-less calls are
//                           accepted as canonical.
//   checkpoint-coverage     serialization code bracketed by
//                           `// dmlint: covers(var, Struct)` ...
//                           `// dmlint: covers-end(var)` must access every
//                           declared field of Struct, so adding a field
//                           without serializing it fails the lint. Structs
//                           carrying `// dmlint: checkpointed` in their
//                           body must have at least two covers regions
//                           (serialize + restore) somewhere in the scan.
//   durability-order        inside `// dmlint: durable-commit` regions,
//                           every rename() source must carry a preceding
//                           fsync and the final rename must be followed by
//                           a directory fsync — the temp+fsync+atomic-
//                           rename commit protocol, machine-checked.
//   unchecked-failable      functions returning a `// dmlint: must-use`
//                           type are indexed cross-TU; discarding a call
//                           result is a finding, and at least one
//                           declaration must carry [[nodiscard]].
//   ledger-conservation     counters grouped by `// dmlint: ledger(name)`
//                           must be mutated together within a function, and
//                           a `// dmlint: ledger-total(name)` function must
//                           read every member it recomputes.
//   guarded-by              fields marked `// dmlint: guarded-by(mutex)`
//                           may only be touched by functions that visibly
//                           lock that mutex.
//   suppression-reason      every `// dmlint: allow(rule)` must carry a
//                           non-empty justification; a bare allow is
//                           itself a finding and suppresses nothing.
//   directive               malformed or unknown `dmlint:` comments.
//
// The first six rules are per-line/token (PR 5); the next four are the
// dmflow pass: a cross-TU function/annotation index (lint/index.h) feeding
// intra-procedural ordered-call checks (lint/flow.h). See DESIGN.md §5j.
//
// Suppressions: `// dmlint: allow(<rule>) <reason>` on the offending line,
// or alone on the line above it.
#pragma once

#include <string>
#include <vector>

namespace dm::lint {

inline constexpr const char* kRuleNondetCall = "nondeterministic-call";
inline constexpr const char* kRulePointerKey = "pointer-keyed-container";
inline constexpr const char* kRuleUnorderedIter = "unordered-iteration";
inline constexpr const char* kRuleSortTieBreak = "sort-tie-break";
inline constexpr const char* kRuleCheckpointCoverage = "checkpoint-coverage";
inline constexpr const char* kRuleDurabilityOrder = "durability-order";
inline constexpr const char* kRuleMustUse = "unchecked-failable";
inline constexpr const char* kRuleLedger = "ledger-conservation";
inline constexpr const char* kRuleGuardedBy = "guarded-by";
inline constexpr const char* kRuleSuppressionReason = "suppression-reason";
inline constexpr const char* kRuleDirective = "directive";

/// All enforceable rule names (excludes the two meta rules, which cannot be
/// suppressed).
[[nodiscard]] const std::vector<std::string>& rule_names();

struct SourceFile {
  std::string path;  ///< as reported in findings
  std::string text;
};

struct Finding {
  std::string file;
  int line = 0;  ///< 1-based
  std::string rule;
  std::string message;
};

struct LintReport {
  /// Active findings, sorted by (file, line, rule). Empty means clean.
  std::vector<Finding> findings;
  /// Findings silenced by a valid allow() directive, for --verbose output.
  std::vector<Finding> suppressed;
};

/// Lints a set of translation units as one program: struct definitions and
/// checkpointed markers are indexed across all files, everything else is
/// per-file.
[[nodiscard]] LintReport run_lint(const std::vector<SourceFile>& files);

/// Stable identity of a finding for the baseline file: hash of rule, path,
/// and message plus an ordinal among identical triples, so line drift does
/// not invalidate a grandfathered entry. `ordinal` counts prior findings in
/// the same report with the same (rule, path, message).
[[nodiscard]] std::string fingerprint(const Finding& f, int ordinal);

/// Reads every .h/.cpp under root/<subdir> for each subdir, recursively,
/// in sorted path order (deterministic across platforms). Paths in the
/// result are relative to `root`. Missing subdirs are skipped.
[[nodiscard]] std::vector<SourceFile> load_tree(
    const std::string& root, const std::vector<std::string>& subdirs);

}  // namespace dm::lint
