#include "lint/flow.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace dm::lint {

namespace {

using Tokens = std::vector<Token>;

[[nodiscard]] bool contains(std::string_view hay, std::string_view needle) {
  return hay.find(needle) != std::string_view::npos;
}

/// First identifier inside the call's argument list, or empty.
[[nodiscard]] std::string_view first_arg_ident(const Tokens& tk,
                                               std::size_t open) {
  const std::size_t close = match_pair(tk, open, "(", ")");
  for (std::size_t i = open + 1; i < close && i < tk.size(); ++i) {
    if (tk[i].kind == Token::Kind::kIdent) return tk[i].text;
  }
  return {};
}

// -- durability-order ------------------------------------------------------

void rule_durability(const TuIndex& tu, std::vector<Finding>& out) {
  const Tokens& tk = tu.ts.tokens;
  const Annotation* begin = nullptr;
  std::vector<std::pair<int, int>> regions;  // (begin line, end line)
  for (const Annotation& a : tu.annotations) {
    if (a.kind == Annotation::Kind::kDurableCommit) {
      if (begin != nullptr) {
        out.push_back(Finding{tu.src->path, a.line, kRuleDirective,
                              "nested durable-commit regions are not "
                              "supported; close the previous region first"});
        continue;
      }
      begin = &a;
    } else if (a.kind == Annotation::Kind::kDurableCommitEnd) {
      if (begin == nullptr) {
        out.push_back(Finding{tu.src->path, a.line, kRuleDirective,
                              "durable-commit-end has no matching "
                              "durable-commit"});
        continue;
      }
      regions.emplace_back(begin->line, a.line);
      begin = nullptr;
    }
  }
  if (begin != nullptr) {
    out.push_back(Finding{tu.src->path, begin->line, kRuleDirective,
                          "durable-commit has no matching "
                          "durable-commit-end"});
  }

  for (const auto& [from, to] : regions) {
    std::set<std::string, std::less<>> synced;
    std::size_t last_rename = kNoTok;
    int last_rename_line = 0;
    std::size_t last_dirsync = kNoTok;
    for (std::size_t i = 0; i + 1 < tk.size(); ++i) {
      if (tk[i].line <= from) continue;
      if (tk[i].line >= to) break;
      if (tk[i].kind != Token::Kind::kIdent || !tok_punct(tk, i + 1, "(")) {
        continue;
      }
      const std::string_view name = tk[i].text;
      if (contains(name, "fsync")) {
        const std::string_view arg = first_arg_ident(tk, i + 1);
        if (!arg.empty()) synced.insert(std::string(arg));
        if (contains(name, "dir")) last_dirsync = i;
        continue;
      }
      if (contains(name, "write")) {
        // A write dirties its target again: fsync must FOLLOW the write.
        const std::string_view arg = first_arg_ident(tk, i + 1);
        const auto it = synced.find(arg);
        if (it != synced.end()) synced.erase(it);
        continue;
      }
      if (name == "rename") {
        const std::string_view src = first_arg_ident(tk, i + 1);
        if (!src.empty() && synced.find(src) == synced.end()) {
          out.push_back(Finding{
              tu.src->path, tk[i].line, kRuleDurabilityOrder,
              "durable-commit: rename of '" + std::string(src) +
                  "' is not preceded by an fsync of '" + std::string(src) +
                  "' in this region — a crash can publish unsynced bytes"});
        }
        last_rename = i;
        last_rename_line = tk[i].line;
      }
    }
    if (last_rename != kNoTok &&
        (last_dirsync == kNoTok || last_dirsync < last_rename)) {
      out.push_back(Finding{
          tu.src->path, last_rename_line, kRuleDurabilityOrder,
          "durable-commit: the final rename is not followed by a directory "
          "fsync — the commit is not durable until the parent directory "
          "entry is synced"});
    }
  }
}

// -- unchecked-failable ----------------------------------------------------

[[nodiscard]] std::string must_use_type_of(const ProgramIndex& idx,
                                           const FunctionInfo& fn) {
  const Tokens& tk = idx.files[fn.file].ts.tokens;
  for (std::size_t r = fn.ret_begin; r < fn.ret_end; ++r) {
    if (tk[r].kind == Token::Kind::kIdent &&
        std::binary_search(idx.must_use_types.begin(),
                           idx.must_use_types.end(), std::string(tk[r].text))) {
      return std::string(tk[r].text);
    }
  }
  return {};
}

void rule_must_use(const ProgramIndex& idx, std::vector<Finding>& out) {
  // (a) [[nodiscard]] coverage: at least one declaration per name group.
  std::map<std::string, const FunctionInfo*> first_of;
  std::set<std::string> has_nodiscard;
  for (const FunctionInfo& fn : idx.functions) {
    if (!std::binary_search(idx.must_use_functions.begin(),
                            idx.must_use_functions.end(), fn.name)) {
      continue;
    }
    if (must_use_type_of(idx, fn).empty()) continue;
    if (first_of.find(fn.name) == first_of.end()) first_of[fn.name] = &fn;
    if (fn.has_nodiscard) has_nodiscard.insert(fn.name);
  }
  for (const auto& [name, fn] : first_of) {
    if (has_nodiscard.count(name) != 0) continue;
    out.push_back(Finding{
        idx.files[fn->file].src->path, fn->line, kRuleMustUse,
        "function '" + name + "' returns must-use type '" +
            must_use_type_of(idx, *fn) +
            "' but no declaration carries [[nodiscard]] — add it so the "
            "compiler enforces consumption too"});
  }

  // (b) discarded calls: `f(...);` as a bare expression statement.
  for (std::size_t file = 0; file < idx.files.size(); ++file) {
    const TuIndex& tu = idx.files[file];
    const Tokens& tk = tu.ts.tokens;
    std::set<std::size_t> decl_toks;
    for (const FunctionInfo& fn : idx.functions) {
      if (fn.file == file) decl_toks.insert(fn.name_tok);
    }
    for (std::size_t i = 0; i + 1 < tk.size(); ++i) {
      if (tk[i].kind != Token::Kind::kIdent) continue;
      if (!std::binary_search(idx.must_use_functions.begin(),
                              idx.must_use_functions.end(),
                              std::string(tk[i].text))) {
        continue;
      }
      if (!tok_punct(tk, i + 1, "(")) continue;
      if (decl_toks.count(i) != 0) continue;  // its own decl/definition
      const std::size_t close = match_pair(tk, i + 1, "(", ")");
      if (close >= tk.size() || !tok_punct(tk, close + 1, ";")) continue;
      // Backward: accept only a pure object chain (obj.f / obj->f / ns::f)
      // reaching a statement boundary. Two adjacent identifiers mean a
      // declaration; anything else (=, return, cast, comma) consumes the
      // value.
      bool discarded = false;
      bool prev_ident = true;  // the callee name itself
      for (std::size_t j = i; j-- > 0;) {
        const Token& p = tk[j];
        if (p.kind == Token::Kind::kIdent) {
          if (prev_ident) break;  // `Type name(...)` — a declaration
          prev_ident = true;
          continue;
        }
        if (p.kind == Token::Kind::kPunct &&
            (p.text == "." || p.text == "->" || p.text == "::")) {
          if (!prev_ident) break;
          prev_ident = false;
          continue;
        }
        if (p.kind == Token::Kind::kPunct &&
            (p.text == ";" || p.text == "{" || p.text == "}")) {
          discarded = true;
        }
        break;
      }
      if (!discarded) continue;
      out.push_back(Finding{
          tu.src->path, tk[i].line, kRuleMustUse,
          "result of must-use call '" + std::string(tk[i].text) +
              "()' is discarded — bind the report and act on (or "
              "explicitly log) it"});
    }
  }
}

// -- ledger-conservation ---------------------------------------------------

constexpr std::string_view kMutators[] = {"=",  "+=", "-=", "*=",  "/=",
                                          "%=", "&=", "|=", "^=",  "<<=",
                                          ">>=", "++", "--"};

[[nodiscard]] bool is_mutator(std::string_view text) {
  for (const std::string_view m : kMutators) {
    if (text == m) return true;
  }
  return false;
}

void rule_ledger(const ProgramIndex& idx, std::vector<Finding>& out) {
  if (idx.ledgers.empty()) return;
  for (const FunctionInfo& fn : idx.functions) {
    if (fn.body_begin == kNoTok) continue;
    const TuIndex& tu = idx.files[fn.file];
    const Tokens& tk = tu.ts.tokens;
    // (group index, object name) -> members mutated, first mutation line.
    std::map<std::pair<std::size_t, std::string>,
             std::pair<std::set<std::string>, int>>
        mutated;
    for (std::size_t k = fn.body_begin + 1;
         k < fn.body_end && k < tk.size(); ++k) {
      if (tk[k].kind != Token::Kind::kIdent) continue;
      for (std::size_t g = 0; g < idx.ledgers.size(); ++g) {
        const LedgerGroup& group = idx.ledgers[g];
        if (!std::binary_search(group.members.begin(), group.members.end(),
                                std::string(tk[k].text))) {
          continue;
        }
        // Object prefix and the token preceding the whole access.
        std::string obj;
        std::size_t access_begin = k;
        if (k > 0 && (tk[k - 1].text == "." || tk[k - 1].text == "->")) {
          if (k > 1 && tk[k - 2].kind == Token::Kind::kIdent &&
              tk[k - 2].text != "this") {
            obj = std::string(tk[k - 2].text);
            access_begin = k - 2;
          } else if (k > 1 && tk[k - 2].text == "this") {
            access_begin = k - 2;
          } else {
            obj = "<expr>";
            access_begin = k - 1;
          }
        }
        const bool written =
            (k + 1 < tk.size() && tk[k + 1].kind == Token::Kind::kPunct &&
             is_mutator(tk[k + 1].text)) ||
            (access_begin > 0 && (tk[access_begin - 1].text == "++" ||
                                  tk[access_begin - 1].text == "--"));
        if (!written) continue;
        auto& slot = mutated[{g, obj}];
        if (slot.first.empty()) slot.second = tk[k].line;
        slot.first.insert(std::string(tk[k].text));
      }
    }
    for (const auto& [key, val] : mutated) {
      const LedgerGroup& group = idx.ledgers[key.first];
      const auto& [members, line] = val;
      if (members.size() == group.members.size()) continue;
      std::string missing;
      for (const std::string& m : group.members) {
        if (members.count(m) == 0) {
          if (!missing.empty()) missing += ", ";
          missing += m;
        }
      }
      const std::string where =
          key.second.empty() ? std::string() : " of '" + key.second + "'";
      out.push_back(Finding{
          tu.src->path, line, kRuleLedger,
          "ledger(" + group.name + "): '" + fn.name +
              "' mutates some group members" + where + " but not: " +
              missing + " — mutate the group together or route the change "
              "through its recomputed total"});
    }
  }

  // ledger-total: the recomputing function must read every member.
  for (std::size_t file = 0; file < idx.files.size(); ++file) {
    const TuIndex& tu = idx.files[file];
    for (const Annotation& a : tu.annotations) {
      if (a.kind != Annotation::Kind::kLedgerTotal) continue;
      const LedgerGroup* group = nullptr;
      for (const LedgerGroup& g : idx.ledgers) {
        if (g.name == a.arg1) group = &g;
      }
      if (group == nullptr) {
        out.push_back(Finding{tu.src->path, a.line, kRuleDirective,
                              "ledger-total(" + a.arg1 +
                                  ") names a group with no ledger() members"});
        continue;
      }
      const FunctionInfo* target = nullptr;
      for (const FunctionInfo& fn : idx.functions) {
        if (fn.file != file) continue;
        if (fn.line < a.target_line || fn.line > a.target_line + 2) continue;
        if (target == nullptr || fn.name_tok < target->name_tok) target = &fn;
      }
      if (target == nullptr || target->body_begin == kNoTok) {
        out.push_back(Finding{
            tu.src->path, a.line, kRuleDirective,
            "ledger-total(" + a.arg1 +
                ") must immediately precede a function definition"});
        continue;
      }
      const Tokens& tk = tu.ts.tokens;
      std::string missing;
      for (const std::string& m : group->members) {
        bool read = false;
        for (std::size_t k = target->body_begin + 1;
             k < target->body_end && k < tk.size(); ++k) {
          if (tok_ident(tk, k, m)) {
            read = true;
            break;
          }
        }
        if (!read) {
          if (!missing.empty()) missing += ", ";
          missing += m;
        }
      }
      if (!missing.empty()) {
        out.push_back(Finding{
            tu.src->path, target->line, kRuleLedger,
            "ledger-total(" + group->name + "): '" + target->name +
                "' never reads member(s): " + missing +
                " — the recomputed total must cover every ledger member"});
      }
    }
  }
}

// -- guarded-by ------------------------------------------------------------

constexpr std::string_view kLockIdents[] = {"lock_guard", "unique_lock",
                                            "scoped_lock", "shared_lock"};

/// True when the body visibly locks `mutex_name`: the mutex identifier
/// appears with a lock wrapper within the preceding 10 tokens, or as an
/// explicit `mu.lock()` call.
[[nodiscard]] bool body_locks(const Tokens& tk, const FunctionInfo& fn,
                              const std::string& mutex_name) {
  for (std::size_t k = fn.body_begin + 1; k < fn.body_end && k < tk.size();
       ++k) {
    if (!tok_ident(tk, k, mutex_name)) continue;
    if (tok_punct(tk, k + 1, ".") && tok_ident(tk, k + 2, "lock")) return true;
    const std::size_t lo = k >= 10 ? k - 10 : 0;
    for (std::size_t q = lo; q < k; ++q) {
      if (tk[q].kind != Token::Kind::kIdent) continue;
      for (const std::string_view w : kLockIdents) {
        if (tk[q].text == w) return true;
      }
    }
  }
  return false;
}

void rule_guarded(const ProgramIndex& idx, std::vector<Finding>& out) {
  if (idx.guarded.empty()) return;
  std::set<std::string> struct_names;
  for (const StructInfo& s : idx.structs) struct_names.insert(s.name);
  for (const FunctionInfo& fn : idx.functions) {
    if (fn.body_begin == kNoTok) continue;
    if (!fn.name.empty() && fn.name.front() == '~') continue;  // destructor
    if (struct_names.count(fn.name) != 0) continue;            // constructor
    const TuIndex& tu = idx.files[fn.file];
    const Tokens& tk = tu.ts.tokens;
    for (const GuardedField& gf : idx.guarded) {
      int touch_line = 0;
      for (std::size_t k = fn.body_begin + 1; k < fn.body_end && k < tk.size();
           ++k) {
        if (!tok_ident(tk, k, gf.field)) continue;
        const bool member_of_other =
            k > 0 && (tk[k - 1].text == "." || tk[k - 1].text == "->") &&
            !(k > 1 && tk[k - 2].text == "this");
        if (member_of_other) continue;
        touch_line = tk[k].line;
        break;
      }
      if (touch_line == 0) continue;
      if (body_locks(tk, fn, gf.mutex_name)) continue;
      out.push_back(Finding{
          tu.src->path, touch_line, kRuleGuardedBy,
          "field '" + gf.field + "' is guarded by '" + gf.mutex_name +
              "' but '" + fn.name + "' touches it without visibly locking '" +
              gf.mutex_name + "'"});
    }
  }
}

}  // namespace

void run_flow_rules(const ProgramIndex& idx, std::vector<Finding>& out) {
  for (const TuIndex& tu : idx.files) rule_durability(tu, out);
  rule_must_use(idx, out);
  rule_ledger(idx, out);
  rule_guarded(idx, out);
}

}  // namespace dm::lint
