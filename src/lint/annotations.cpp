#include "lint/annotations.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "lint/lint.h"

namespace dm::lint {

namespace {

[[nodiscard]] std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// First line strictly after `after` that carries a code token.
[[nodiscard]] int next_code_line(const TokenStream& ts, int after) {
  for (const Token& t : ts.tokens) {
    if (t.line > after) return t.line;
  }
  return after + 1;
}

}  // namespace

ParsedAnnotations parse_annotations(const TokenStream& ts,
                                    const std::vector<std::string>& known_rules) {
  ParsedAnnotations out;
  const auto fail = [&out](int line, const char* rule, std::string msg) {
    out.errors.push_back(AnnotationError{rule, std::move(msg), line});
  };

  for (const Comment& c : ts.comments) {
    const std::string_view body = trim(c.text);
    constexpr std::string_view kPrefix = "dmlint:";
    if (body.substr(0, kPrefix.size()) != kPrefix) continue;
    std::string_view rest = trim(body.substr(kPrefix.size()));

    std::size_t kw_end = 0;
    while (kw_end < rest.size() && rest[kw_end] != '(' &&
           rest[kw_end] != ' ' && rest[kw_end] != '\t') {
      ++kw_end;
    }
    const std::string_view keyword = rest.substr(0, kw_end);
    rest = rest.substr(kw_end);

    // Parses "(a)" or "(a, b)" off the front of rest.
    const auto parse_args =
        [&rest]() -> std::optional<std::pair<std::string, std::string>> {
      std::string_view r = trim(rest);
      if (r.empty() || r.front() != '(') return std::nullopt;
      const std::size_t close = r.find(')');
      if (close == std::string_view::npos) return std::nullopt;
      const std::string_view inner = r.substr(1, close - 1);
      rest = r.substr(close + 1);
      const std::size_t comma = inner.find(',');
      if (comma == std::string_view::npos) {
        return std::make_pair(std::string(trim(inner)), std::string());
      }
      return std::make_pair(std::string(trim(inner.substr(0, comma))),
                            std::string(trim(inner.substr(comma + 1))));
    };

    Annotation a;
    a.line = c.line;
    a.target_line = c.own_line ? next_code_line(ts, c.line) : c.line;

    if (keyword == "allow") {
      const auto args = parse_args();
      if (!args || args->first.empty()) {
        fail(c.line, kRuleDirective,
             "malformed allow directive; expected 'dmlint: allow(<rule>) "
             "<reason>'");
        continue;
      }
      a.kind = Annotation::Kind::kAllow;
      a.arg1 = args->first;
      a.reason = std::string(trim(rest));
      if (std::find(known_rules.begin(), known_rules.end(), a.arg1) ==
          known_rules.end()) {
        fail(c.line, kRuleDirective,
             "allow() names unknown rule '" + a.arg1 + "'");
        continue;
      }
      if (a.reason.empty()) {
        fail(c.line, kRuleSuppressionReason,
             "allow(" + a.arg1 +
                 ") has no justification; a bare suppression is rejected "
                 "and suppresses nothing");
        continue;
      }
    } else if (keyword == "total-order") {
      a.kind = Annotation::Kind::kTotalOrder;
      std::string_view r = trim(rest);
      if (!r.empty() && r.front() == '(' && r.back() == ')') {
        r = trim(r.substr(1, r.size() - 2));
      }
      a.reason = std::string(r);
      if (a.reason.empty()) {
        fail(c.line, kRuleSuppressionReason,
             "total-order annotation has no justification; state why ties "
             "are impossible or harmless");
        continue;
      }
    } else if (keyword == "covers") {
      const auto args = parse_args();
      if (!args || args->first.empty() || args->second.empty()) {
        fail(c.line, kRuleDirective,
             "malformed covers directive; expected 'dmlint: covers(<var>, "
             "<Struct>)'");
        continue;
      }
      a.kind = Annotation::Kind::kCovers;
      a.arg1 = args->first;
      a.arg2 = args->second;
    } else if (keyword == "covers-end") {
      const auto args = parse_args();
      if (!args || args->first.empty()) {
        fail(c.line, kRuleDirective,
             "malformed covers-end directive; expected 'dmlint: "
             "covers-end(<var>)'");
        continue;
      }
      a.kind = Annotation::Kind::kCoversEnd;
      a.arg1 = args->first;
    } else if (keyword == "checkpointed") {
      a.kind = Annotation::Kind::kCheckpointed;
    } else if (keyword == "durable-commit") {
      a.kind = Annotation::Kind::kDurableCommit;
    } else if (keyword == "durable-commit-end") {
      a.kind = Annotation::Kind::kDurableCommitEnd;
    } else if (keyword == "must-use") {
      a.kind = Annotation::Kind::kMustUse;
    } else if (keyword == "ledger" || keyword == "ledger-total" ||
               keyword == "guarded-by") {
      const auto args = parse_args();
      if (!args || args->first.empty() || !args->second.empty()) {
        fail(c.line, kRuleDirective,
             "malformed " + std::string(keyword) +
                 " directive; expected 'dmlint: " + std::string(keyword) +
                 "(<" +
                 (keyword == "guarded-by" ? std::string("mutex")
                                          : std::string("group")) +
                 ">)'");
        continue;
      }
      a.kind = keyword == "ledger"         ? Annotation::Kind::kLedger
               : keyword == "ledger-total" ? Annotation::Kind::kLedgerTotal
                                           : Annotation::Kind::kGuardedBy;
      a.arg1 = args->first;
    } else {
      fail(c.line, kRuleDirective,
           "unknown dmlint directive '" + std::string(keyword) + "'");
      continue;
    }
    out.annotations.push_back(std::move(a));
  }
  return out;
}

}  // namespace dm::lint
