// dmflow — pass 2: intra-procedural ordered-call checks over the
// cross-TU ProgramIndex (lint/index.h). Four rule families:
//
//   durability-order    inside `dmlint: durable-commit` regions every
//                       rename() source must be fsync'd first, and the
//                       final rename must be followed by a directory fsync
//                       (fsync_dir-style call), so the temp+fsync+rename
//                       commit protocol cannot silently lose a sync.
//   unchecked-failable  every function whose return type is marked
//                       `dmlint: must-use` needs [[nodiscard]] on at least
//                       one declaration, and every call whose result is
//                       discarded as a bare expression statement is a
//                       finding.
//   ledger-conservation counters grouped by `dmlint: ledger(<group>)` must
//                       be mutated together within a function (per object),
//                       and a `dmlint: ledger-total(<group>)` function must
//                       read every member it claims to recompute.
//   guarded-by          fields marked `dmlint: guarded-by(<mutex>)` may
//                       only be touched by functions that visibly lock that
//                       mutex (constructors and destructors exempt).
//
// All findings carry the line of the offending access/call so the standard
// `dmlint: allow(<rule>) <reason>` suppression applies. Soundness limits
// (name keying, linear-order path model) are catalogued in DESIGN.md §5j.
#pragma once

#include <vector>

#include "lint/index.h"
#include "lint/lint.h"

namespace dm::lint {

/// Runs the four dmflow rules over a built index, appending findings.
void run_flow_rules(const ProgramIndex& idx, std::vector<Finding>& out);

}  // namespace dm::lint
