// Shared parser for `// dmlint: ...` source annotations.
//
// Every directive the linter understands — suppressions, serialization
// coverage markers, and the dmflow invariant annotations — flows through
// this one grammar, so lint.cpp, the flow rules, and the tests all agree on
// what a well-formed annotation looks like:
//
//   // dmlint: allow(<rule>) <reason>      suppress <rule> on the target line
//   // dmlint: total-order(<reason>)       sort comparator needs no tie-break
//   // dmlint: covers(<var>, <Struct>)     begin a serialization region
//   // dmlint: covers-end(<var>)           end a serialization region
//   // dmlint: checkpointed                struct must have covers regions
//   // dmlint: durable-commit              begin a durability-ordered region
//   // dmlint: durable-commit-end          end a durability-ordered region
//   // dmlint: must-use                    struct's values must be consumed
//   // dmlint: ledger(<group>)             field belongs to counter group
//   // dmlint: ledger-total(<group>)       next function recomputes the group
//   // dmlint: guarded-by(<mutex>)         field only touched under <mutex>
//
// Target-line resolution: a comment alone on its line governs the next line
// that carries a code token; a trailing comment governs its own line.
// Malformed annotations are returned as errors tagged with the meta rule
// (`directive` or `suppression-reason`) that should report them.
#pragma once

#include <string>
#include <vector>

#include "lint/token.h"

namespace dm::lint {

struct Annotation {
  enum class Kind {
    kAllow,
    kTotalOrder,
    kCovers,
    kCoversEnd,
    kCheckpointed,
    kDurableCommit,
    kDurableCommitEnd,
    kMustUse,
    kLedger,
    kLedgerTotal,
    kGuardedBy,
  };
  Kind kind = Kind::kAllow;
  std::string arg1;     ///< allow: rule; covers: var; ledger/-total: group;
                        ///< guarded-by: mutex name
  std::string arg2;     ///< covers: struct name (possibly qualified)
  std::string reason;   ///< allow/total-order justification
  int line = 0;         ///< comment start line
  int target_line = 0;  ///< code line the annotation governs
};

/// A malformed annotation, reported under the meta rule named in `rule`
/// (kRuleDirective or kRuleSuppressionReason) with the exact message the
/// linter should emit.
struct AnnotationError {
  std::string rule;
  std::string message;
  int line = 0;
};

struct ParsedAnnotations {
  std::vector<Annotation> annotations;  ///< well-formed only, in file order
  std::vector<AnnotationError> errors;
};

/// Parses every dmlint comment in one translation unit. `known_rules`
/// validates allow() targets. Malformed annotations become errors and are
/// dropped from `annotations` (a bad suppression suppresses nothing).
[[nodiscard]] ParsedAnnotations parse_annotations(
    const TokenStream& ts, const std::vector<std::string>& known_rules);

}  // namespace dm::lint
