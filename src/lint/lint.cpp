#include "lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <tuple>

#include "lint/token.h"

namespace dm::lint {

namespace {

using Tokens = std::vector<Token>;

[[nodiscard]] std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

struct Directive {
  enum class Kind { kAllow, kTotalOrder, kCovers, kCoversEnd, kCheckpointed };
  Kind kind = Kind::kAllow;
  std::string arg1;    // allow: rule name; covers/covers-end: variable name
  std::string arg2;    // covers: struct name (possibly qualified)
  std::string reason;  // allow/total-order justification
  int line = 0;        // comment start line
  int target_line = 0; // code line the directive governs (allow/total-order)
  bool paired = false; // covers matched to a covers-end
};

struct FileCtx {
  const SourceFile* src = nullptr;
  TokenStream ts;
  std::vector<Directive> directives;
};

/// One struct/class definition, indexed across all scanned files.
struct StructDef {
  std::string name;
  const FileCtx* file = nullptr;
  int line = 0;
  std::size_t body_begin = 0;  // token index of '{'
  std::size_t body_end = 0;    // token index of matching '}'
  bool checkpointed = false;
  int covers_regions = 0;
  std::vector<std::string> fields;
};

constexpr std::string_view kUnorderedContainers[] = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

constexpr std::string_view kAssociativeContainers[] = {
    "map",           "set",           "multimap",
    "multiset",      "unordered_map", "unordered_set",
    "unordered_multimap", "unordered_multiset"};

constexpr std::string_view kBeginFamily[] = {
    "begin", "end", "cbegin", "cend", "rbegin", "rend", "crbegin", "crend"};

[[nodiscard]] bool one_of(std::string_view needle,
                          std::initializer_list<std::string_view> hay) {
  for (const std::string_view h : hay) {
    if (needle == h) return true;
  }
  return false;
}

template <std::size_t N>
[[nodiscard]] bool one_of(std::string_view needle,
                          const std::string_view (&hay)[N]) {
  for (const std::string_view h : hay) {
    if (needle == h) return true;
  }
  return false;
}

[[nodiscard]] bool is_ident(const Tokens& tk, std::size_t i,
                            std::string_view text) {
  return i < tk.size() && tk[i].kind == Token::Kind::kIdent &&
         tk[i].text == text;
}

[[nodiscard]] bool is_punct(const Tokens& tk, std::size_t i,
                            std::string_view text) {
  return i < tk.size() && tk[i].kind == Token::Kind::kPunct &&
         tk[i].text == text;
}

/// Index of the matching closer for the opener at `open`, or tk.size().
[[nodiscard]] std::size_t match_pair(const Tokens& tk, std::size_t open,
                                     std::string_view opener,
                                     std::string_view closer) {
  int depth = 0;
  for (std::size_t i = open; i < tk.size(); ++i) {
    if (tk[i].kind != Token::Kind::kPunct) continue;
    if (tk[i].text == opener) ++depth;
    if (tk[i].text == closer && --depth == 0) return i;
  }
  return tk.size();
}

/// Walks template arguments starting at the '<' index; returns the index of
/// the matching '>' (or tk.size()). Angle depth is heuristic: a '<' counts
/// as an opener when it follows an identifier or '>', which covers every
/// declaration-position template in this codebase.
[[nodiscard]] std::size_t match_angles(const Tokens& tk, std::size_t open) {
  int depth = 1;
  for (std::size_t i = open + 1; i < tk.size(); ++i) {
    const Token& t = tk[i];
    if (t.kind != Token::Kind::kPunct) continue;
    if (t.text == "<" && i > 0 &&
        (tk[i - 1].kind == Token::Kind::kIdent || tk[i - 1].text == ">")) {
      ++depth;
    } else if (t.text == ">") {
      if (--depth == 0) return i;
    } else if (t.text == ";" || t.text == "{") {
      return tk.size();  // not a template after all
    }
  }
  return tk.size();
}

class Linter {
 public:
  explicit Linter(const std::vector<SourceFile>& files) {
    files_.reserve(files.size());
    for (const SourceFile& f : files) {
      FileCtx ctx;
      ctx.src = &f;
      ctx.ts = tokenize(f.text);
      files_.push_back(std::move(ctx));
    }
  }

  LintReport run() {
    for (FileCtx& f : files_) parse_directives(f);
    for (FileCtx& f : files_) index_structs(f);
    for (const FileCtx& f : files_) {
      rule_nondet(f);
      rule_pointer_key(f);
      rule_unordered_iter(f);
      rule_sort_tie_break(f);
      rule_coverage(f);
    }
    rule_checkpointed_structs();
    return finish();
  }

 private:
  void emit(const FileCtx& f, int line, const char* rule, std::string msg) {
    raw_.push_back(Finding{f.src->path, line, rule, std::move(msg)});
  }

  // -- directives ----------------------------------------------------------

  void parse_directives(FileCtx& f) {
    for (const Comment& c : f.ts.comments) {
      const std::string_view body = trim(c.text);
      constexpr std::string_view kPrefix = "dmlint:";
      if (body.substr(0, kPrefix.size()) != kPrefix) continue;
      std::string_view rest = trim(body.substr(kPrefix.size()));

      std::size_t kw_end = 0;
      while (kw_end < rest.size() && rest[kw_end] != '(' &&
             rest[kw_end] != ' ' && rest[kw_end] != '\t') {
        ++kw_end;
      }
      const std::string_view keyword = rest.substr(0, kw_end);
      rest = rest.substr(kw_end);

      // Parses "(a)" or "(a, b)" off the front of rest.
      const auto parse_args =
          [&rest]() -> std::optional<std::pair<std::string, std::string>> {
        std::string_view r = trim(rest);
        if (r.empty() || r.front() != '(') return std::nullopt;
        const std::size_t close = r.find(')');
        if (close == std::string_view::npos) return std::nullopt;
        const std::string_view inner = r.substr(1, close - 1);
        rest = r.substr(close + 1);
        const std::size_t comma = inner.find(',');
        if (comma == std::string_view::npos) {
          return std::make_pair(std::string(trim(inner)), std::string());
        }
        return std::make_pair(std::string(trim(inner.substr(0, comma))),
                              std::string(trim(inner.substr(comma + 1))));
      };

      Directive d;
      d.line = c.line;
      d.target_line = c.own_line ? next_code_line(f, c.line) : c.line;

      if (keyword == "allow") {
        const auto args = parse_args();
        if (!args || args->first.empty()) {
          emit(f, c.line, kRuleDirective,
               "malformed allow directive; expected 'dmlint: allow(<rule>) "
               "<reason>'");
          continue;
        }
        d.kind = Directive::Kind::kAllow;
        d.arg1 = args->first;
        d.reason = std::string(trim(rest));
        const auto& rules = rule_names();
        if (std::find(rules.begin(), rules.end(), d.arg1) == rules.end()) {
          emit(f, c.line, kRuleDirective,
               "allow() names unknown rule '" + d.arg1 + "'");
          continue;
        }
        if (d.reason.empty()) {
          emit(f, c.line, kRuleSuppressionReason,
               "allow(" + d.arg1 +
                   ") has no justification; a bare suppression is rejected "
                   "and suppresses nothing");
          continue;
        }
      } else if (keyword == "total-order") {
        d.kind = Directive::Kind::kTotalOrder;
        std::string_view r = trim(rest);
        if (!r.empty() && r.front() == '(' && r.back() == ')') {
          r = trim(r.substr(1, r.size() - 2));
        }
        d.reason = std::string(r);
        if (d.reason.empty()) {
          emit(f, c.line, kRuleSuppressionReason,
               "total-order annotation has no justification; state why ties "
               "are impossible or harmless");
          continue;
        }
      } else if (keyword == "covers") {
        const auto args = parse_args();
        if (!args || args->first.empty() || args->second.empty()) {
          emit(f, c.line, kRuleDirective,
               "malformed covers directive; expected 'dmlint: covers(<var>, "
               "<Struct>)'");
          continue;
        }
        d.kind = Directive::Kind::kCovers;
        d.arg1 = args->first;
        d.arg2 = args->second;
      } else if (keyword == "covers-end") {
        const auto args = parse_args();
        if (!args || args->first.empty()) {
          emit(f, c.line, kRuleDirective,
               "malformed covers-end directive; expected 'dmlint: "
               "covers-end(<var>)'");
          continue;
        }
        d.kind = Directive::Kind::kCoversEnd;
        d.arg1 = args->first;
      } else if (keyword == "checkpointed") {
        d.kind = Directive::Kind::kCheckpointed;
      } else {
        emit(f, c.line, kRuleDirective,
             "unknown dmlint directive '" + std::string(keyword) + "'");
        continue;
      }
      f.directives.push_back(std::move(d));
    }
  }

  [[nodiscard]] int next_code_line(const FileCtx& f, int after) const {
    for (const Token& t : f.ts.tokens) {
      if (t.line > after) return t.line;
    }
    return after + 1;
  }

  // -- struct index --------------------------------------------------------

  void index_structs(FileCtx& f) {
    const Tokens& tk = f.ts.tokens;
    const std::size_t first_of_file = structs_.size();
    for (std::size_t i = 0; i + 1 < tk.size(); ++i) {
      if (!(is_ident(tk, i, "struct") || is_ident(tk, i, "class"))) continue;
      if (tk[i + 1].kind != Token::Kind::kIdent) continue;
      if (i > 0 && (tk[i - 1].text == "<" || tk[i - 1].text == "," ||
                    tk[i - 1].text == "enum")) {
        continue;  // template parameter or enum class
      }
      // Scan past the optional base clause for the body brace.
      std::size_t j = i + 2;
      bool has_body = false;
      while (j < tk.size()) {
        if (is_punct(tk, j, ";") || is_punct(tk, j, "(")) break;
        if (is_punct(tk, j, "{")) {
          has_body = true;
          break;
        }
        ++j;
      }
      if (!has_body) continue;
      StructDef def;
      def.name = std::string(tk[i + 1].text);
      def.file = &f;
      def.line = tk[i].line;
      def.body_begin = j;
      def.body_end = match_pair(tk, j, "{", "}");
      def.fields = parse_fields(tk, def.body_begin, def.body_end);
      structs_.push_back(std::move(def));
    }
    // A checkpointed marker belongs to the INNERMOST struct whose body
    // contains it (nested state structs sit inside their owning class).
    for (const Directive& d : f.directives) {
      if (d.kind != Directive::Kind::kCheckpointed) continue;
      StructDef* innermost = nullptr;
      for (std::size_t s = first_of_file; s < structs_.size(); ++s) {
        StructDef& def = structs_[s];
        if (def.body_end >= tk.size()) continue;
        if (d.line < tk[def.body_begin].line || d.line > tk[def.body_end].line) {
          continue;
        }
        if (innermost == nullptr ||
            def.body_begin > innermost->body_begin) {
          innermost = &def;
        }
      }
      if (innermost != nullptr) {
        innermost->checkpointed = true;
      } else {
        emit(f, d.line, kRuleDirective,
             "checkpointed marker is not inside any struct body");
      }
    }
  }

  /// Extracts declared data-member names from a struct body. Member
  /// functions (a top-level '(' before any '='), nested types, using
  /// declarations, friends, and access specifiers are skipped.
  [[nodiscard]] static std::vector<std::string> parse_fields(
      const Tokens& tk, std::size_t body_begin, std::size_t body_end) {
    std::vector<std::string> fields;
    std::size_t i = body_begin + 1;
    while (i < body_end && i < tk.size()) {
      if (is_punct(tk, i, ";")) {
        ++i;
        continue;
      }
      if ((is_ident(tk, i, "public") || is_ident(tk, i, "private") ||
           is_ident(tk, i, "protected")) &&
          is_punct(tk, i + 1, ":")) {
        i += 2;
        continue;
      }
      if (is_punct(tk, i, "[") && is_punct(tk, i + 1, "[")) {
        // Attribute: skip the outer bracket pair.
        i = match_pair(tk, i, "[", "]") + 1;
        continue;
      }
      if (is_ident(tk, i, "struct") || is_ident(tk, i, "class") ||
          is_ident(tk, i, "enum") || is_ident(tk, i, "union")) {
        // Nested type: indexed separately; skip its body and declarators.
        std::size_t j = i;
        while (j < body_end && !is_punct(tk, j, "{") && !is_punct(tk, j, ";")) {
          ++j;
        }
        if (is_punct(tk, j, "{")) j = match_pair(tk, j, "{", "}");
        while (j < body_end && !is_punct(tk, j, ";")) ++j;
        i = j + 1;
        continue;
      }
      const bool skip_name = is_ident(tk, i, "using") ||
                             is_ident(tk, i, "typedef") ||
                             is_ident(tk, i, "friend") ||
                             is_ident(tk, i, "static_assert") ||
                             is_ident(tk, i, "template");

      // Generic statement walk.
      int pdepth = 0;
      int adepth = 0;
      std::size_t eq_pos = 0;
      std::size_t paren_pos = 0;
      std::size_t name_end = 0;  // index of '=', '{' init, or ';'
      bool is_function = false;
      std::size_t j = i;
      for (; j < body_end; ++j) {
        const Token& t = tk[j];
        if (t.kind == Token::Kind::kPunct) {
          if (t.text == "<" && j > 0 &&
              (tk[j - 1].kind == Token::Kind::kIdent ||
               tk[j - 1].text == ">")) {
            ++adepth;
            continue;
          }
          if (t.text == ">" && adepth > 0) {
            --adepth;
            continue;
          }
          if (t.text == "(") {
            if (pdepth == 0 && adepth == 0 && paren_pos == 0 && eq_pos == 0) {
              paren_pos = j;
            }
            ++pdepth;
            continue;
          }
          if (t.text == ")") {
            --pdepth;
            continue;
          }
          if (pdepth > 0) continue;
          if (t.text == "=" && adepth == 0 && eq_pos == 0) {
            eq_pos = j;
            continue;
          }
          if (t.text == "{") {
            if (paren_pos != 0 && eq_pos == 0) {
              // Function definition: body ends the statement.
              is_function = true;
              j = match_pair(tk, j, "{", "}");
              if (j + 1 < body_end && is_punct(tk, j + 1, ";")) ++j;
              break;
            }
            if (name_end == 0) name_end = j;
            j = match_pair(tk, j, "{", "}");
            continue;
          }
          if (t.text == ";") {
            if (name_end == 0) name_end = j;
            break;
          }
        }
      }
      if (!is_function && paren_pos != 0 && (eq_pos == 0 || paren_pos < eq_pos)) {
        is_function = true;  // declaration without a body
      }
      if (!skip_name && !is_function) {
        std::size_t limit = eq_pos != 0 ? eq_pos : name_end;
        if (limit == 0) limit = j;
        // Array member: the declarator ends with [extent].
        if (limit > 0 && is_punct(tk, limit - 1, "]")) {
          std::size_t b = limit - 1;
          int depth = 1;
          while (b > i && depth > 0) {
            --b;
            if (is_punct(tk, b, "]")) ++depth;
            if (is_punct(tk, b, "[")) --depth;
          }
          limit = b;
        }
        for (std::size_t k = limit; k-- > i;) {
          if (tk[k].kind == Token::Kind::kIdent) {
            fields.emplace_back(tk[k].text);
            break;
          }
        }
      }
      i = j + 1;
    }
    return fields;
  }

  // -- rule: nondeterministic-call ----------------------------------------

  void rule_nondet(const FileCtx& f) {
    const Tokens& tk = f.ts.tokens;
    for (std::size_t i = 0; i < tk.size(); ++i) {
      if (tk[i].kind != Token::Kind::kIdent) continue;
      const std::string_view t = tk[i].text;
      const bool member_access =
          i > 0 && (tk[i - 1].text == "." || tk[i - 1].text == "->");
      const bool scoped_non_std =
          i > 0 && tk[i - 1].text == "::" && !(i > 1 && tk[i - 2].text == "std");
      // `Type name(...)` is a declaration, not a call: an identifier right
      // before the name (other than expression keywords) is a type name.
      const bool declaration =
          i > 0 && tk[i - 1].kind == Token::Kind::kIdent &&
          !one_of(tk[i - 1].text,
                  {"return", "else", "do", "co_return", "co_await",
                   "co_yield"});

      if (one_of(t, {"rand", "srand", "time", "clock", "localtime", "gmtime",
                     "timespec_get"})) {
        if (member_access || scoped_non_std || declaration ||
            !is_punct(tk, i + 1, "(")) {
          continue;
        }
        emit(f, tk[i].line, kRuleNondetCall,
             "call to '" + std::string(t) +
                 "' — wall-clock/CRT randomness breaks reproducibility; "
                 "derive time from the trace and randomness from a seeded "
                 "util::Rng");
        continue;
      }
      if (t == "random_device" && !member_access) {
        emit(f, tk[i].line, kRuleNondetCall,
             "std::random_device is nondeterministic; seed util::Rng "
             "explicitly (Rng::split for parallel streams)");
        continue;
      }
      if (one_of(t, {"pthread_self", "gettid", "getpid",
                     "GetCurrentThreadId"})) {
        if (member_access || !is_punct(tk, i + 1, "(")) continue;
        emit(f, tk[i].line, kRuleNondetCall,
             "'" + std::string(t) +
                 "' yields a scheduling-dependent identity; results must not "
                 "depend on which thread or process ran");
        continue;
      }
      if (t == "get_id" && i > 1 && tk[i - 1].text == "::" &&
          tk[i - 2].text == "this_thread") {
        emit(f, tk[i].line, kRuleNondetCall,
             "std::this_thread::get_id() is scheduling-dependent; results "
             "must not depend on thread identity");
        continue;
      }
      if (t == "now" && i > 1 && tk[i - 1].text == "::" &&
          tk[i - 2].kind == Token::Kind::kIdent &&
          tk[i - 2].text.size() > 6 &&
          tk[i - 2].text.substr(tk[i - 2].text.size() - 6) == "_clock") {
        emit(f, tk[i].line, kRuleNondetCall,
             std::string(tk[i - 2].text) +
                 "::now() reads the wall clock; minutes must come from the "
                 "trace, not from when the code ran");
        continue;
      }
    }
  }

  // -- rule: pointer-keyed-container --------------------------------------

  void rule_pointer_key(const FileCtx& f) {
    const Tokens& tk = f.ts.tokens;
    for (std::size_t i = 0; i + 1 < tk.size(); ++i) {
      if (tk[i].kind != Token::Kind::kIdent) continue;
      if (!one_of(tk[i].text, kAssociativeContainers)) continue;
      if (!is_punct(tk, i + 1, "<")) continue;
      // First template argument: tokens up to the first top-level ',' or
      // the matching '>'.
      int adepth = 0;
      int pdepth = 0;
      std::size_t last = 0;  // last token of the first argument
      for (std::size_t j = i + 2; j < tk.size(); ++j) {
        const Token& t = tk[j];
        if (t.kind == Token::Kind::kPunct) {
          if (t.text == "<" &&
              (tk[j - 1].kind == Token::Kind::kIdent || tk[j - 1].text == ">")) {
            ++adepth;
            continue;
          }
          if (t.text == ">") {
            if (adepth == 0) break;
            --adepth;
            continue;
          }
          if (t.text == "(") ++pdepth;
          if (t.text == ")") --pdepth;
          if (t.text == "," && adepth == 0 && pdepth == 0) break;
          if (t.text == ";" || t.text == "{") {
            last = 0;  // not a template argument list
            break;
          }
        }
        last = j;
      }
      if (last != 0 && is_punct(tk, last, "*")) {
        emit(f, tk[i].line, kRulePointerKey,
             "associative container keyed by a pointer orders/hashes by "
             "address, which varies run to run; key by a stable identity "
             "(index, id, value)");
      }
    }
  }

  // -- rule: unordered-iteration ------------------------------------------

  void rule_unordered_iter(const FileCtx& f) {
    const Tokens& tk = f.ts.tokens;

    // Pass A: names declared with an unordered container type in this file
    // (members, locals, parameters).
    std::vector<std::string_view> vars;
    for (std::size_t i = 0; i + 1 < tk.size(); ++i) {
      if (tk[i].kind != Token::Kind::kIdent) continue;
      if (!one_of(tk[i].text, kUnorderedContainers)) continue;
      if (!is_punct(tk, i + 1, "<")) continue;
      std::size_t close = match_angles(tk, i + 1);
      if (close >= tk.size()) continue;
      std::size_t j = close + 1;
      while (j < tk.size() &&
             (is_punct(tk, j, "&") || is_punct(tk, j, "*") ||
              is_punct(tk, j, "..."))) {
        ++j;
      }
      if (j < tk.size() && tk[j].kind == Token::Kind::kIdent) {
        vars.push_back(tk[j].text);
      }
    }
    const auto is_unordered_var = [&vars](std::string_view name) {
      return std::find(vars.begin(), vars.end(), name) != vars.end();
    };

    // Pass B1: direct .begin()/.end() family calls.
    for (std::size_t i = 0; i + 3 < tk.size(); ++i) {
      if (tk[i].kind != Token::Kind::kIdent || !is_unordered_var(tk[i].text)) {
        continue;
      }
      if (!is_punct(tk, i + 1, ".")) continue;
      if (tk[i + 2].kind != Token::Kind::kIdent ||
          !one_of(tk[i + 2].text, kBeginFamily)) {
        continue;
      }
      if (!is_punct(tk, i + 3, "(")) continue;
      emit(f, tk[i].line, kRuleUnorderedIter,
           "iterating unordered container '" + std::string(tk[i].text) +
               "' visits hash order; sort the elements first or use an "
               "ordered container");
    }

    // Pass B2: range-for over an unordered variable.
    for (std::size_t i = 0; i + 1 < tk.size(); ++i) {
      if (!is_ident(tk, i, "for") || !is_punct(tk, i + 1, "(")) continue;
      const std::size_t close = match_pair(tk, i + 1, "(", ")");
      if (close >= tk.size()) continue;
      // Find the range-for ':' one paren level in, outside brackets/braces.
      int pdepth = 0;
      int bdepth = 0;
      std::size_t colon = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        const Token& t = tk[j];
        if (t.kind != Token::Kind::kPunct) continue;
        if (t.text == "(") ++pdepth;
        if (t.text == ")") --pdepth;
        if (t.text == "[" || t.text == "{") ++bdepth;
        if (t.text == "]" || t.text == "}") --bdepth;
        if (t.text == ";" && pdepth == 1 && bdepth == 0) break;  // classic for
        if (t.text == ":" && pdepth == 1 && bdepth == 0) {
          colon = j;
          break;
        }
      }
      if (colon == 0) continue;
      // Range expression: flag a plain identifier or a pure member chain
      // (a.b.c / a->b) whose final identifier is a known unordered name.
      std::string_view final_ident;
      bool pure_chain = true;
      for (std::size_t j = colon + 1; j < close; ++j) {
        const Token& t = tk[j];
        if (t.kind == Token::Kind::kIdent) {
          final_ident = t.text;
        } else if (t.text != "." && t.text != "->") {
          pure_chain = false;
          break;
        }
      }
      if (pure_chain && !final_ident.empty() && is_unordered_var(final_ident)) {
        emit(f, tk[i].line, kRuleUnorderedIter,
             "range-for over unordered container '" + std::string(final_ident) +
                 "' visits hash order; sort the elements first or use an "
                 "ordered container");
      }
    }
  }

  // -- rule: sort-tie-break -----------------------------------------------

  void rule_sort_tie_break(const FileCtx& f) {
    const Tokens& tk = f.ts.tokens;
    for (std::size_t i = 2; i + 1 < tk.size(); ++i) {
      if (tk[i].kind != Token::Kind::kIdent) continue;
      if (tk[i].text != "sort" && tk[i].text != "stable_sort") continue;
      if (!(tk[i - 1].text == "::" && tk[i - 2].text == "std")) continue;
      if (!is_punct(tk, i + 1, "(")) continue;
      const std::size_t open = i + 1;
      const std::size_t close = match_pair(tk, open, "(", ")");
      if (close >= tk.size()) continue;

      // Split top-level arguments.
      std::vector<std::pair<std::size_t, std::size_t>> args;  // [first, last]
      {
        int pdepth = 0;
        int bdepth = 0;
        int adepth = 0;
        std::size_t arg_begin = open + 1;
        for (std::size_t j = open + 1; j <= close; ++j) {
          const Token& t = tk[j];
          if (t.kind == Token::Kind::kPunct) {
            if (t.text == "<" && (tk[j - 1].kind == Token::Kind::kIdent ||
                                  tk[j - 1].text == ">")) {
              ++adepth;
            } else if (t.text == ">" && adepth > 0) {
              --adepth;
            } else if (t.text == "(") {
              ++pdepth;
            } else if (t.text == ")") {
              if (j == close) {
                if (j > arg_begin) args.emplace_back(arg_begin, j - 1);
                break;
              }
              --pdepth;
            } else if (t.text == "[" || t.text == "{") {
              ++bdepth;
            } else if (t.text == "]" || t.text == "}") {
              --bdepth;
            } else if (t.text == "," && pdepth == 0 && bdepth == 0 &&
                       adepth == 0) {
              args.emplace_back(arg_begin, j - 1);
              arg_begin = j + 1;
            }
          }
        }
      }
      if (args.size() < 3) continue;
      const auto [cb, ce] = args.back();
      if (!is_punct(tk, cb, "[")) continue;  // named comparator: canonical

      if (lambda_breaks_ties(tk, cb, ce)) continue;
      if (has_total_order_annotation(f, tk[i].line)) continue;

      emit(f, tk[i].line, kRuleSortTieBreak,
           "std::" + std::string(tk[i].text) +
               " lambda comparator does not visibly break ties; compare a "
               "std::tie/std::make_tuple key, chain explicit tie-break "
               "returns, or annotate the call with 'dmlint: "
               "total-order(<reason>)'");
    }
  }

  /// Accepts the canonical deterministic comparator shapes: a
  /// tie/make_tuple lexicographic compare, a key-projection
  /// `return f(a) < f(b);`, or a multi-return tie-break chain.
  [[nodiscard]] static bool lambda_breaks_ties(const Tokens& tk,
                                               std::size_t begin,
                                               std::size_t end) {
    int returns = 0;
    for (std::size_t j = begin; j <= end && j < tk.size(); ++j) {
      if (tk[j].kind != Token::Kind::kIdent) continue;
      if (tk[j].text == "tie" || tk[j].text == "make_tuple") return true;
      if (tk[j].text == "return") {
        ++returns;
        // Projection: return f(x) < f(y);
        if (j + 9 <= end && tk[j + 1].kind == Token::Kind::kIdent &&
            is_punct(tk, j + 2, "(") && is_punct(tk, j + 4, ")") &&
            (is_punct(tk, j + 5, "<") || is_punct(tk, j + 5, ">")) &&
            tk[j + 6].kind == Token::Kind::kIdent &&
            tk[j + 6].text == tk[j + 1].text && is_punct(tk, j + 7, "(") &&
            is_punct(tk, j + 9, ")")) {
          return true;
        }
      }
    }
    return returns >= 2;
  }

  [[nodiscard]] bool has_total_order_annotation(const FileCtx& f,
                                                int line) const {
    for (const Directive& d : f.directives) {
      if (d.kind == Directive::Kind::kTotalOrder && d.target_line == line) {
        return true;
      }
    }
    return false;
  }

  // -- rule: checkpoint-coverage ------------------------------------------

  void rule_coverage(const FileCtx& f) {
    // Pair covers/covers-end regions by variable name, in order.
    std::vector<char> end_used(f.directives.size(), 0);
    for (const Directive& d : f.directives) {
      if (d.kind != Directive::Kind::kCovers) continue;
      int end_line = -1;
      for (std::size_t e = 0; e < f.directives.size(); ++e) {
        const Directive& de = f.directives[e];
        if (end_used[e] != 0 || de.kind != Directive::Kind::kCoversEnd) {
          continue;
        }
        if (de.arg1 == d.arg1 && de.line > d.line) {
          end_used[e] = 1;
          end_line = de.line;
          break;
        }
      }
      if (end_line < 0) {
        emit(f, d.line, kRuleDirective,
             "covers(" + d.arg1 + ", " + d.arg2 +
                 ") has no matching covers-end(" + d.arg1 + ")");
        continue;
      }
      check_region(f, d, end_line);
    }
  }

  void check_region(const FileCtx& f, const Directive& d, int end_line) {
    // Resolve the struct by the final :: component of its name.
    std::string short_name = d.arg2;
    const std::size_t sep = short_name.rfind("::");
    if (sep != std::string::npos) short_name = short_name.substr(sep + 2);
    StructDef* match = nullptr;
    int candidates = 0;
    for (StructDef& s : structs_) {
      if (s.name == short_name) {
        ++candidates;
        match = &s;
      }
    }
    if (candidates == 0) {
      emit(f, d.line, kRuleCheckpointCoverage,
           "covers() names struct '" + d.arg2 +
               "', which was not found in the scanned sources");
      return;
    }
    if (candidates > 1) {
      emit(f, d.line, kRuleCheckpointCoverage,
           "covers() name '" + d.arg2 + "' is ambiguous (" +
               std::to_string(candidates) +
               " structs match); qualify it uniquely");
      return;
    }
    match->covers_regions += 1;

    // Fields accessed as `var.field` inside the region (method calls,
    // `var.field(...)`, are ignored).
    std::vector<std::string_view> accessed;
    const Tokens& tk = f.ts.tokens;
    for (std::size_t i = 0; i + 2 < tk.size(); ++i) {
      if (tk[i].line < d.line) continue;
      if (tk[i].line > end_line) break;
      if (tk[i].kind != Token::Kind::kIdent || tk[i].text != d.arg1) continue;
      if (!is_punct(tk, i + 1, ".")) continue;
      if (tk[i + 2].kind != Token::Kind::kIdent) continue;
      if (is_punct(tk, i + 3, "(")) continue;
      accessed.push_back(tk[i + 2].text);
    }

    std::string missing;
    for (const std::string& field : match->fields) {
      if (std::find(accessed.begin(), accessed.end(), field) ==
          accessed.end()) {
        if (!missing.empty()) missing += ", ";
        missing += field;
      }
    }
    if (!missing.empty()) {
      emit(f, d.line, kRuleCheckpointCoverage,
           "covers(" + d.arg1 + ", " + d.arg2 + ") region (lines " +
               std::to_string(d.line) + "-" + std::to_string(end_line) +
               ") never touches declared field(s): " + missing +
               " — serialize every field or remove it from the struct");
    }
    std::string unknown;
    for (const std::string_view a : accessed) {
      if (std::find(match->fields.begin(), match->fields.end(),
                    std::string(a)) == match->fields.end()) {
        const std::string as(a);
        if (unknown.find(as) == std::string::npos) {
          if (!unknown.empty()) unknown += ", ";
          unknown += as;
        }
      }
    }
    if (!unknown.empty()) {
      emit(f, d.line, kRuleCheckpointCoverage,
           "covers(" + d.arg1 + ", " + d.arg2 +
               ") region accesses undeclared field(s): " + unknown +
               " — the annotation is stale or the field was renamed");
    }
  }

  void rule_checkpointed_structs() {
    for (const StructDef& s : structs_) {
      if (!s.checkpointed) continue;
      if (s.covers_regions < 2) {
        emit(*s.file, s.line, kRuleCheckpointCoverage,
             "struct '" + s.name +
                 "' is marked checkpointed but has " +
                 std::to_string(s.covers_regions) +
                 " covers region(s); both the serialize and restore paths "
                 "must carry one");
      }
    }
  }

  // -- suppression + ordering ---------------------------------------------

  [[nodiscard]] LintReport finish() {
    LintReport report;
    for (Finding& fin : raw_) {
      const FileCtx* ctx = nullptr;
      for (const FileCtx& f : files_) {
        if (f.src->path == fin.file) {
          ctx = &f;
          break;
        }
      }
      bool suppressed = false;
      if (ctx != nullptr && fin.rule != kRuleSuppressionReason &&
          fin.rule != kRuleDirective) {
        for (const Directive& d : ctx->directives) {
          if (d.kind == Directive::Kind::kAllow && d.arg1 == fin.rule &&
              d.target_line == fin.line && !d.reason.empty()) {
            suppressed = true;
            break;
          }
        }
      }
      (suppressed ? report.suppressed : report.findings)
          .push_back(std::move(fin));
    }
    const auto order = [](const Finding& a, const Finding& b) {
      return std::tie(a.file, a.line, a.rule, a.message) <
             std::tie(b.file, b.line, b.rule, b.message);
    };
    std::sort(report.findings.begin(), report.findings.end(), order);
    std::sort(report.suppressed.begin(), report.suppressed.end(), order);
    return report;
  }

  std::vector<FileCtx> files_;
  std::vector<StructDef> structs_;
  std::vector<Finding> raw_;
};

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kNames = {
      kRuleNondetCall, kRulePointerKey, kRuleUnorderedIter, kRuleSortTieBreak,
      kRuleCheckpointCoverage};
  return kNames;
}

LintReport run_lint(const std::vector<SourceFile>& files) {
  return Linter(files).run();
}

std::string fingerprint(const Finding& f, int ordinal) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::string_view s) {
    for (const char c : s) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 1099511628211ull;
    }
    h ^= 0xff;
    h *= 1099511628211ull;
  };
  mix(f.rule);
  mix(f.file);
  mix(f.message);
  std::ostringstream out;
  out << std::hex << h << "-" << std::dec << ordinal;
  return out.str();
}

std::vector<SourceFile> load_tree(const std::string& root,
                                  const std::vector<std::string>& subdirs) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  for (const std::string& sub : subdirs) {
    const fs::path dir = fs::path(root) / sub;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext != ".h" && ext != ".hpp" && ext != ".cpp" && ext != ".cc") {
        continue;
      }
      paths.push_back(
          it->path().lexically_relative(fs::path(root)).generic_string());
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const std::string& rel : paths) {
    std::ifstream in(fs::path(root) / rel, std::ios::binary);
    if (!in) continue;
    std::ostringstream buf;
    buf << in.rdbuf();
    files.push_back(SourceFile{rel, buf.str()});
  }
  return files;
}

}  // namespace dm::lint
