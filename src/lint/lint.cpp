#include "lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>

#include "lint/annotations.h"
#include "lint/flow.h"
#include "lint/index.h"
#include "lint/token.h"

namespace dm::lint {

namespace {

using Tokens = std::vector<Token>;

constexpr std::string_view kUnorderedContainers[] = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

constexpr std::string_view kAssociativeContainers[] = {
    "map",           "set",           "multimap",
    "multiset",      "unordered_map", "unordered_set",
    "unordered_multimap", "unordered_multiset"};

constexpr std::string_view kBeginFamily[] = {
    "begin", "end", "cbegin", "cend", "rbegin", "rend", "crbegin", "crend"};

[[nodiscard]] bool one_of(std::string_view needle,
                          std::initializer_list<std::string_view> hay) {
  for (const std::string_view h : hay) {
    if (needle == h) return true;
  }
  return false;
}

template <std::size_t N>
[[nodiscard]] bool one_of(std::string_view needle,
                          const std::string_view (&hay)[N]) {
  for (const std::string_view h : hay) {
    if (needle == h) return true;
  }
  return false;
}

/// Per-line/token rules (PR 5) over the shared ProgramIndex, followed by
/// the dmflow pass (lint/flow.h), suppression matching, and ordering.
class Linter {
 public:
  explicit Linter(const std::vector<SourceFile>& files)
      : idx_(build_index(files, rule_names())) {}

  LintReport run() {
    raw_ = idx_.findings;
    for (const TuIndex& f : idx_.files) {
      rule_nondet(f);
      rule_pointer_key(f);
      rule_unordered_iter(f);
      rule_sort_tie_break(f);
      rule_coverage(f);
    }
    rule_checkpointed_structs();
    run_flow_rules(idx_, raw_);
    return finish();
  }

 private:
  void emit(const TuIndex& f, int line, const char* rule, std::string msg) {
    raw_.push_back(Finding{f.src->path, line, rule, std::move(msg)});
  }

  // -- rule: nondeterministic-call ----------------------------------------

  void rule_nondet(const TuIndex& f) {
    const Tokens& tk = f.ts.tokens;
    for (std::size_t i = 0; i < tk.size(); ++i) {
      if (tk[i].kind != Token::Kind::kIdent) continue;
      const std::string_view t = tk[i].text;
      const bool member_access =
          i > 0 && (tk[i - 1].text == "." || tk[i - 1].text == "->");
      const bool scoped_non_std =
          i > 0 && tk[i - 1].text == "::" && !(i > 1 && tk[i - 2].text == "std");
      // `Type name(...)` is a declaration, not a call: an identifier right
      // before the name (other than expression keywords) is a type name.
      const bool declaration =
          i > 0 && tk[i - 1].kind == Token::Kind::kIdent &&
          !one_of(tk[i - 1].text,
                  {"return", "else", "do", "co_return", "co_await",
                   "co_yield"});

      if (one_of(t, {"rand", "srand", "time", "clock", "localtime", "gmtime",
                     "timespec_get"})) {
        if (member_access || scoped_non_std || declaration ||
            !tok_punct(tk, i + 1, "(")) {
          continue;
        }
        emit(f, tk[i].line, kRuleNondetCall,
             "call to '" + std::string(t) +
                 "' — wall-clock/CRT randomness breaks reproducibility; "
                 "derive time from the trace and randomness from a seeded "
                 "util::Rng");
        continue;
      }
      if (t == "random_device" && !member_access) {
        emit(f, tk[i].line, kRuleNondetCall,
             "std::random_device is nondeterministic; seed util::Rng "
             "explicitly (Rng::split for parallel streams)");
        continue;
      }
      if (one_of(t, {"pthread_self", "gettid", "getpid",
                     "GetCurrentThreadId"})) {
        if (member_access || !tok_punct(tk, i + 1, "(")) continue;
        emit(f, tk[i].line, kRuleNondetCall,
             "'" + std::string(t) +
                 "' yields a scheduling-dependent identity; results must not "
                 "depend on which thread or process ran");
        continue;
      }
      if (t == "get_id" && i > 1 && tk[i - 1].text == "::" &&
          tk[i - 2].text == "this_thread") {
        emit(f, tk[i].line, kRuleNondetCall,
             "std::this_thread::get_id() is scheduling-dependent; results "
             "must not depend on thread identity");
        continue;
      }
      if (t == "now" && i > 1 && tk[i - 1].text == "::" &&
          tk[i - 2].kind == Token::Kind::kIdent &&
          tk[i - 2].text.size() > 6 &&
          tk[i - 2].text.substr(tk[i - 2].text.size() - 6) == "_clock") {
        emit(f, tk[i].line, kRuleNondetCall,
             std::string(tk[i - 2].text) +
                 "::now() reads the wall clock; minutes must come from the "
                 "trace, not from when the code ran");
        continue;
      }
    }
  }

  // -- rule: pointer-keyed-container --------------------------------------

  void rule_pointer_key(const TuIndex& f) {
    const Tokens& tk = f.ts.tokens;
    for (std::size_t i = 0; i + 1 < tk.size(); ++i) {
      if (tk[i].kind != Token::Kind::kIdent) continue;
      if (!one_of(tk[i].text, kAssociativeContainers)) continue;
      if (!tok_punct(tk, i + 1, "<")) continue;
      // First template argument: tokens up to the first top-level ',' or
      // the matching '>'.
      int adepth = 0;
      int pdepth = 0;
      std::size_t last = 0;  // last token of the first argument
      for (std::size_t j = i + 2; j < tk.size(); ++j) {
        const Token& t = tk[j];
        if (t.kind == Token::Kind::kPunct) {
          if (t.text == "<" &&
              (tk[j - 1].kind == Token::Kind::kIdent || tk[j - 1].text == ">")) {
            ++adepth;
            continue;
          }
          if (t.text == ">") {
            if (adepth == 0) break;
            --adepth;
            continue;
          }
          if (t.text == "(") ++pdepth;
          if (t.text == ")") --pdepth;
          if (t.text == "," && adepth == 0 && pdepth == 0) break;
          if (t.text == ";" || t.text == "{") {
            last = 0;  // not a template argument list
            break;
          }
        }
        last = j;
      }
      if (last != 0 && tok_punct(tk, last, "*")) {
        emit(f, tk[i].line, kRulePointerKey,
             "associative container keyed by a pointer orders/hashes by "
             "address, which varies run to run; key by a stable identity "
             "(index, id, value)");
      }
    }
  }

  // -- rule: unordered-iteration ------------------------------------------

  void rule_unordered_iter(const TuIndex& f) {
    const Tokens& tk = f.ts.tokens;

    // Pass A: names declared with an unordered container type in this file
    // (members, locals, parameters).
    std::vector<std::string_view> vars;
    for (std::size_t i = 0; i + 1 < tk.size(); ++i) {
      if (tk[i].kind != Token::Kind::kIdent) continue;
      if (!one_of(tk[i].text, kUnorderedContainers)) continue;
      if (!tok_punct(tk, i + 1, "<")) continue;
      std::size_t close = match_angles(tk, i + 1);
      if (close >= tk.size()) continue;
      std::size_t j = close + 1;
      while (j < tk.size() &&
             (tok_punct(tk, j, "&") || tok_punct(tk, j, "*") ||
              tok_punct(tk, j, "..."))) {
        ++j;
      }
      if (j < tk.size() && tk[j].kind == Token::Kind::kIdent) {
        vars.push_back(tk[j].text);
      }
    }
    const auto is_unordered_var = [&vars](std::string_view name) {
      return std::find(vars.begin(), vars.end(), name) != vars.end();
    };

    // Pass B1: direct .begin()/.end() family calls.
    for (std::size_t i = 0; i + 3 < tk.size(); ++i) {
      if (tk[i].kind != Token::Kind::kIdent || !is_unordered_var(tk[i].text)) {
        continue;
      }
      if (!tok_punct(tk, i + 1, ".")) continue;
      if (tk[i + 2].kind != Token::Kind::kIdent ||
          !one_of(tk[i + 2].text, kBeginFamily)) {
        continue;
      }
      if (!tok_punct(tk, i + 3, "(")) continue;
      emit(f, tk[i].line, kRuleUnorderedIter,
           "iterating unordered container '" + std::string(tk[i].text) +
               "' visits hash order; sort the elements first or use an "
               "ordered container");
    }

    // Pass B2: range-for over an unordered variable.
    for (std::size_t i = 0; i + 1 < tk.size(); ++i) {
      if (!tok_ident(tk, i, "for") || !tok_punct(tk, i + 1, "(")) continue;
      const std::size_t close = match_pair(tk, i + 1, "(", ")");
      if (close >= tk.size()) continue;
      // Find the range-for ':' one paren level in, outside brackets/braces.
      int pdepth = 0;
      int bdepth = 0;
      std::size_t colon = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        const Token& t = tk[j];
        if (t.kind != Token::Kind::kPunct) continue;
        if (t.text == "(") ++pdepth;
        if (t.text == ")") --pdepth;
        if (t.text == "[" || t.text == "{") ++bdepth;
        if (t.text == "]" || t.text == "}") --bdepth;
        if (t.text == ";" && pdepth == 1 && bdepth == 0) break;  // classic for
        if (t.text == ":" && pdepth == 1 && bdepth == 0) {
          colon = j;
          break;
        }
      }
      if (colon == 0) continue;
      // Range expression: flag a plain identifier or a pure member chain
      // (a.b.c / a->b) whose final identifier is a known unordered name.
      std::string_view final_ident;
      bool pure_chain = true;
      for (std::size_t j = colon + 1; j < close; ++j) {
        const Token& t = tk[j];
        if (t.kind == Token::Kind::kIdent) {
          final_ident = t.text;
        } else if (t.text != "." && t.text != "->") {
          pure_chain = false;
          break;
        }
      }
      if (pure_chain && !final_ident.empty() && is_unordered_var(final_ident)) {
        emit(f, tk[i].line, kRuleUnorderedIter,
             "range-for over unordered container '" + std::string(final_ident) +
                 "' visits hash order; sort the elements first or use an "
                 "ordered container");
      }
    }
  }

  // -- rule: sort-tie-break -----------------------------------------------

  void rule_sort_tie_break(const TuIndex& f) {
    const Tokens& tk = f.ts.tokens;
    for (std::size_t i = 2; i + 1 < tk.size(); ++i) {
      if (tk[i].kind != Token::Kind::kIdent) continue;
      if (tk[i].text != "sort" && tk[i].text != "stable_sort") continue;
      if (!(tk[i - 1].text == "::" && tk[i - 2].text == "std")) continue;
      if (!tok_punct(tk, i + 1, "(")) continue;
      const std::size_t open = i + 1;
      const std::size_t close = match_pair(tk, open, "(", ")");
      if (close >= tk.size()) continue;

      // Split top-level arguments.
      std::vector<std::pair<std::size_t, std::size_t>> args;  // [first, last]
      {
        int pdepth = 0;
        int bdepth = 0;
        int adepth = 0;
        std::size_t arg_begin = open + 1;
        for (std::size_t j = open + 1; j <= close; ++j) {
          const Token& t = tk[j];
          if (t.kind == Token::Kind::kPunct) {
            if (t.text == "<" && (tk[j - 1].kind == Token::Kind::kIdent ||
                                  tk[j - 1].text == ">")) {
              ++adepth;
            } else if (t.text == ">" && adepth > 0) {
              --adepth;
            } else if (t.text == "(") {
              ++pdepth;
            } else if (t.text == ")") {
              if (j == close) {
                if (j > arg_begin) args.emplace_back(arg_begin, j - 1);
                break;
              }
              --pdepth;
            } else if (t.text == "[" || t.text == "{") {
              ++bdepth;
            } else if (t.text == "]" || t.text == "}") {
              --bdepth;
            } else if (t.text == "," && pdepth == 0 && bdepth == 0 &&
                       adepth == 0) {
              args.emplace_back(arg_begin, j - 1);
              arg_begin = j + 1;
            }
          }
        }
      }
      if (args.size() < 3) continue;
      const auto [cb, ce] = args.back();
      if (!tok_punct(tk, cb, "[")) continue;  // named comparator: canonical

      if (lambda_breaks_ties(tk, cb, ce)) continue;
      if (has_total_order_annotation(f, tk[i].line)) continue;

      emit(f, tk[i].line, kRuleSortTieBreak,
           "std::" + std::string(tk[i].text) +
               " lambda comparator does not visibly break ties; compare a "
               "std::tie/std::make_tuple key, chain explicit tie-break "
               "returns, or annotate the call with 'dmlint: "
               "total-order(<reason>)'");
    }
  }

  /// Accepts the canonical deterministic comparator shapes: a
  /// tie/make_tuple lexicographic compare, a key-projection
  /// `return f(a) < f(b);`, or a multi-return tie-break chain.
  [[nodiscard]] static bool lambda_breaks_ties(const Tokens& tk,
                                               std::size_t begin,
                                               std::size_t end) {
    int returns = 0;
    for (std::size_t j = begin; j <= end && j < tk.size(); ++j) {
      if (tk[j].kind != Token::Kind::kIdent) continue;
      if (tk[j].text == "tie" || tk[j].text == "make_tuple") return true;
      if (tk[j].text == "return") {
        ++returns;
        // Projection: return f(x) < f(y);
        if (j + 9 <= end && tk[j + 1].kind == Token::Kind::kIdent &&
            tok_punct(tk, j + 2, "(") && tok_punct(tk, j + 4, ")") &&
            (tok_punct(tk, j + 5, "<") || tok_punct(tk, j + 5, ">")) &&
            tk[j + 6].kind == Token::Kind::kIdent &&
            tk[j + 6].text == tk[j + 1].text && tok_punct(tk, j + 7, "(") &&
            tok_punct(tk, j + 9, ")")) {
          return true;
        }
      }
    }
    return returns >= 2;
  }

  [[nodiscard]] bool has_total_order_annotation(const TuIndex& f,
                                                int line) const {
    for (const Annotation& a : f.annotations) {
      if (a.kind == Annotation::Kind::kTotalOrder && a.target_line == line) {
        return true;
      }
    }
    return false;
  }

  // -- rule: checkpoint-coverage ------------------------------------------

  void rule_coverage(const TuIndex& f) {
    // Pair covers/covers-end regions by variable name, in order.
    std::vector<char> end_used(f.annotations.size(), 0);
    for (const Annotation& a : f.annotations) {
      if (a.kind != Annotation::Kind::kCovers) continue;
      int end_line = -1;
      for (std::size_t e = 0; e < f.annotations.size(); ++e) {
        const Annotation& ae = f.annotations[e];
        if (end_used[e] != 0 || ae.kind != Annotation::Kind::kCoversEnd) {
          continue;
        }
        if (ae.arg1 == a.arg1 && ae.line > a.line) {
          end_used[e] = 1;
          end_line = ae.line;
          break;
        }
      }
      if (end_line < 0) {
        emit(f, a.line, kRuleDirective,
             "covers(" + a.arg1 + ", " + a.arg2 +
                 ") has no matching covers-end(" + a.arg1 + ")");
        continue;
      }
      check_region(f, a, end_line);
    }
  }

  void check_region(const TuIndex& f, const Annotation& a, int end_line) {
    // Resolve the struct by the final :: component of its name.
    std::string short_name = a.arg2;
    const std::size_t sep = short_name.rfind("::");
    if (sep != std::string::npos) short_name = short_name.substr(sep + 2);
    StructInfo* match = nullptr;
    int candidates = 0;
    for (StructInfo& s : idx_.structs) {
      if (s.name == short_name) {
        ++candidates;
        match = &s;
      }
    }
    if (candidates == 0) {
      emit(f, a.line, kRuleCheckpointCoverage,
           "covers() names struct '" + a.arg2 +
               "', which was not found in the scanned sources");
      return;
    }
    if (candidates > 1) {
      emit(f, a.line, kRuleCheckpointCoverage,
           "covers() name '" + a.arg2 + "' is ambiguous (" +
               std::to_string(candidates) +
               " structs match); qualify it uniquely");
      return;
    }
    match->covers_regions += 1;

    // Fields accessed as `var.field` inside the region (method calls,
    // `var.field(...)`, are ignored).
    std::vector<std::string_view> accessed;
    const Tokens& tk = f.ts.tokens;
    for (std::size_t i = 0; i + 2 < tk.size(); ++i) {
      if (tk[i].line < a.line) continue;
      if (tk[i].line > end_line) break;
      if (tk[i].kind != Token::Kind::kIdent || tk[i].text != a.arg1) continue;
      if (!tok_punct(tk, i + 1, ".")) continue;
      if (tk[i + 2].kind != Token::Kind::kIdent) continue;
      if (tok_punct(tk, i + 3, "(")) continue;
      accessed.push_back(tk[i + 2].text);
    }

    std::string missing;
    for (const std::string& field : match->fields) {
      if (std::find(accessed.begin(), accessed.end(), field) ==
          accessed.end()) {
        if (!missing.empty()) missing += ", ";
        missing += field;
      }
    }
    if (!missing.empty()) {
      emit(f, a.line, kRuleCheckpointCoverage,
           "covers(" + a.arg1 + ", " + a.arg2 + ") region (lines " +
               std::to_string(a.line) + "-" + std::to_string(end_line) +
               ") never touches declared field(s): " + missing +
               " — serialize every field or remove it from the struct");
    }
    std::string unknown;
    for (const std::string_view acc : accessed) {
      if (std::find(match->fields.begin(), match->fields.end(),
                    std::string(acc)) == match->fields.end()) {
        const std::string as(acc);
        if (unknown.find(as) == std::string::npos) {
          if (!unknown.empty()) unknown += ", ";
          unknown += as;
        }
      }
    }
    if (!unknown.empty()) {
      emit(f, a.line, kRuleCheckpointCoverage,
           "covers(" + a.arg1 + ", " + a.arg2 +
               ") region accesses undeclared field(s): " + unknown +
               " — the annotation is stale or the field was renamed");
    }
  }

  void rule_checkpointed_structs() {
    for (const StructInfo& s : idx_.structs) {
      if (!s.checkpointed) continue;
      if (s.covers_regions < 2) {
        emit(idx_.files[s.file], s.line, kRuleCheckpointCoverage,
             "struct '" + s.name +
                 "' is marked checkpointed but has " +
                 std::to_string(s.covers_regions) +
                 " covers region(s); both the serialize and restore paths "
                 "must carry one");
      }
    }
  }

  // -- suppression + ordering ---------------------------------------------

  [[nodiscard]] LintReport finish() {
    LintReport report;
    for (Finding& fin : raw_) {
      const TuIndex* ctx = nullptr;
      for (const TuIndex& f : idx_.files) {
        if (f.src->path == fin.file) {
          ctx = &f;
          break;
        }
      }
      bool suppressed = false;
      if (ctx != nullptr && fin.rule != kRuleSuppressionReason &&
          fin.rule != kRuleDirective) {
        for (const Annotation& a : ctx->annotations) {
          if (a.kind == Annotation::Kind::kAllow && a.arg1 == fin.rule &&
              a.target_line == fin.line && !a.reason.empty()) {
            suppressed = true;
            break;
          }
        }
      }
      (suppressed ? report.suppressed : report.findings)
          .push_back(std::move(fin));
    }
    const auto order = [](const Finding& a, const Finding& b) {
      return std::tie(a.file, a.line, a.rule, a.message) <
             std::tie(b.file, b.line, b.rule, b.message);
    };
    std::sort(report.findings.begin(), report.findings.end(), order);
    std::sort(report.suppressed.begin(), report.suppressed.end(), order);
    return report;
  }

  ProgramIndex idx_;
  std::vector<Finding> raw_;
};

}  // namespace

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> kNames = {
      kRuleNondetCall,       kRulePointerKey, kRuleUnorderedIter,
      kRuleSortTieBreak,     kRuleCheckpointCoverage,
      kRuleDurabilityOrder,  kRuleMustUse,    kRuleLedger,
      kRuleGuardedBy};
  return kNames;
}

LintReport run_lint(const std::vector<SourceFile>& files) {
  return Linter(files).run();
}

std::string fingerprint(const Finding& f, int ordinal) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::string_view s) {
    for (const char c : s) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 1099511628211ull;
    }
    h ^= 0xff;
    h *= 1099511628211ull;
  };
  mix(f.rule);
  mix(f.file);
  mix(f.message);
  std::ostringstream out;
  out << std::hex << h << "-" << std::dec << ordinal;
  return out.str();
}

std::vector<SourceFile> load_tree(const std::string& root,
                                  const std::vector<std::string>& subdirs) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  for (const std::string& sub : subdirs) {
    const fs::path dir = fs::path(root) / sub;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext != ".h" && ext != ".hpp" && ext != ".cpp" && ext != ".cc") {
        continue;
      }
      paths.push_back(
          it->path().lexically_relative(fs::path(root)).generic_string());
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const std::string& rel : paths) {
    std::ifstream in(fs::path(root) / rel, std::ios::binary);
    if (!in) continue;
    std::ostringstream buf;
    buf << in.rdbuf();
    files.push_back(SourceFile{rel, buf.str()});
  }
  return files;
}

}  // namespace dm::lint
