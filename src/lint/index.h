// Cross-translation-unit program index for dm::lint.
//
// Pass 1 of the dmflow analyzer: tokenize every TU, parse its annotations,
// and build name-keyed tables the flow rules (lint/flow.h) consume —
//
//   structs     every struct/class with a body, its declared fields, and
//               the checkpointed / must-use markers resolved to the
//               innermost enclosing body;
//   functions   every function declaration and definition found by a
//               lexical scanner (namespace scope, class scope, and
//               out-of-class qualified definitions), with its return-type
//               token region, [[nodiscard]] flag, and body token range;
//   must_use    type names marked `dmlint: must-use` plus the names of all
//               functions whose return region mentions one — the
//               unchecked-failable rule and the clang-tidy
//               bugprone-unused-return-value config both key off this set;
//   ledgers     counter groups collected from `dmlint: ledger(<group>)`
//               field annotations, name-keyed across TUs;
//   guarded     field -> mutex pairs from `dmlint: guarded-by(<mutex>)`.
//
// The scanner is lexical: it cannot resolve overloads or templates, so
// functions are keyed by unqualified name across the whole program. That is
// the useful granularity here — every rule that consumes the index treats a
// name match as "the same protocol surface", which is exactly how the
// annotated code is written (see DESIGN.md §5j for the soundness limits).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/annotations.h"
#include "lint/lint.h"
#include "lint/token.h"

namespace dm::lint {

inline constexpr std::size_t kNoTok = static_cast<std::size_t>(-1);

// -- token-scan helpers shared by the index, the flow rules, and lint.cpp --

[[nodiscard]] inline bool tok_ident(const std::vector<Token>& tk,
                                    std::size_t i, std::string_view text) {
  return i < tk.size() && tk[i].kind == Token::Kind::kIdent &&
         tk[i].text == text;
}

[[nodiscard]] inline bool tok_punct(const std::vector<Token>& tk,
                                    std::size_t i, std::string_view text) {
  return i < tk.size() && tk[i].kind == Token::Kind::kPunct &&
         tk[i].text == text;
}

/// Index of the matching closer for the opener at `open`, or tk.size().
[[nodiscard]] std::size_t match_pair(const std::vector<Token>& tk,
                                     std::size_t open, std::string_view opener,
                                     std::string_view closer);

/// Walks template arguments starting at the '<' index; returns the index of
/// the matching '>' (or tk.size()). Angle depth is heuristic: a '<' counts
/// as an opener when it follows an identifier or '>', which covers every
/// declaration-position template in this codebase.
[[nodiscard]] std::size_t match_angles(const std::vector<Token>& tk,
                                       std::size_t open);

// -- index tables ----------------------------------------------------------

struct TuIndex {
  const SourceFile* src = nullptr;
  TokenStream ts;
  std::vector<Annotation> annotations;
};

/// One struct/class definition, indexed across all scanned files.
struct StructInfo {
  std::string name;
  std::size_t file = 0;  ///< index into ProgramIndex::files
  int line = 0;
  std::size_t body_begin = 0;  ///< token index of '{'
  std::size_t body_end = 0;    ///< token index of matching '}'
  bool checkpointed = false;
  bool must_use = false;
  int covers_regions = 0;  ///< mutated by the checkpoint-coverage rule
  std::vector<std::string> fields;
};

/// One function declaration or definition. `body_begin == kNoTok` means a
/// declaration without a body.
struct FunctionInfo {
  std::string name;  ///< unqualified; dtors keep their '~'
  std::size_t file = 0;
  int line = 0;               ///< line of the name token
  std::size_t name_tok = 0;   ///< token index of the name
  std::size_t ret_begin = 0;  ///< return-type region [ret_begin, ret_end)
  std::size_t ret_end = 0;
  std::size_t body_begin = kNoTok;  ///< '{' token of the definition
  std::size_t body_end = kNoTok;    ///< matching '}'
  bool has_nodiscard = false;       ///< [[nodiscard]] in the return region
};

/// A counter group collected from `dmlint: ledger(<group>)` annotations.
struct LedgerGroup {
  std::string name;
  std::vector<std::string> members;  ///< sorted, unique
};

/// A field pinned to a mutex by `dmlint: guarded-by(<mutex>)`.
struct GuardedField {
  std::string field;
  std::string mutex_name;
};

struct ProgramIndex {
  std::vector<TuIndex> files;
  std::vector<StructInfo> structs;
  std::vector<FunctionInfo> functions;  ///< file order, then token order
  /// Type names marked must-use, sorted unique.
  std::vector<std::string> must_use_types;
  /// Names of functions whose return region mentions a must-use type,
  /// sorted unique.
  std::vector<std::string> must_use_functions;
  std::vector<LedgerGroup> ledgers;
  std::vector<GuardedField> guarded;
  /// Indexing-time findings: malformed annotations, markers outside any
  /// struct body, conflicting guarded-by annotations.
  std::vector<Finding> findings;
};

/// Builds the two-pass index over a whole program's worth of TUs.
/// `known_rules` validates allow() targets (see parse_annotations).
[[nodiscard]] ProgramIndex build_index(
    const std::vector<SourceFile>& files,
    const std::vector<std::string>& known_rules);

}  // namespace dm::lint
