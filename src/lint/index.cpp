#include "lint/index.h"

#include <algorithm>
#include <utility>

namespace dm::lint {

namespace {

using Tokens = std::vector<Token>;

template <std::size_t N>
[[nodiscard]] bool one_of(std::string_view needle,
                          const std::string_view (&hay)[N]) {
  for (const std::string_view h : hay) {
    if (needle == h) return true;
  }
  return false;
}

/// Identifiers that can precede a '(' without being a function name: control
/// keywords, operators-as-keywords, specifiers, and primitive type names.
/// (`if constexpr (...) {` would otherwise scan as a function definition.)
constexpr std::string_view kNotFunction[] = {
    "if",        "for",      "while",    "switch",   "catch",
    "return",    "sizeof",   "alignof",  "alignas",  "decltype",
    "static_assert",         "assert",   "defined",  "new",
    "delete",    "throw",    "co_await", "co_return","co_yield",
    "noexcept",  "typeid",   "void",     "bool",     "int",
    "char",      "auto",     "unsigned", "signed",   "long",
    "short",     "float",    "double",   "requires", "concept",
    "using",     "typename", "else",     "do",       "case",
    "goto",      "constexpr","const",    "volatile", "inline",
    "static",    "virtual",  "explicit", "friend",   "mutable",
    "thread_local",          "template", "namespace","struct",
    "class",     "union",    "try",      "typedef"};

/// Identifiers that terminate a backward return-type scan.
constexpr std::string_view kRetStop[] = {"return", "else",      "case",
                                         "public", "protected", "private",
                                         "goto",   "do"};

constexpr std::string_view kRetPunct[] = {"::", "<", ">", "*", "&",
                                          "&&", "[", "]", "~", ","};

/// Walks a constructor initializer list starting just after the ':'.
/// Returns the index of the body '{', or kNoTok when the shape does not
/// match an init list (e.g. a ternary ':' in an expression).
[[nodiscard]] std::size_t walk_ctor_init(const Tokens& tk, std::size_t j) {
  while (j < tk.size()) {
    if (tk[j].kind != Token::Kind::kIdent) return kNoTok;
    ++j;
    while (tok_punct(tk, j, "::")) {
      if (j + 1 >= tk.size() || tk[j + 1].kind != Token::Kind::kIdent) {
        return kNoTok;
      }
      j += 2;
    }
    if (tok_punct(tk, j, "<")) {
      const std::size_t close = match_angles(tk, j);
      if (close >= tk.size()) return kNoTok;
      j = close + 1;
    }
    if (tok_punct(tk, j, "(")) {
      j = match_pair(tk, j, "(", ")") + 1;
    } else if (tok_punct(tk, j, "{")) {
      j = match_pair(tk, j, "{", "}") + 1;
    } else {
      return kNoTok;
    }
    if (j >= tk.size()) return kNoTok;
    if (tok_punct(tk, j, ",")) {
      ++j;
      continue;
    }
    if (tok_punct(tk, j, "{")) return j;
    return kNoTok;
  }
  return kNoTok;
}

/// Backward scan for the return-type token region ending at `name_tok`.
[[nodiscard]] std::size_t ret_region_begin(const Tokens& tk,
                                           std::size_t name_tok) {
  std::size_t b = name_tok;
  while (b > 0) {
    const Token& p = tk[b - 1];
    if (p.kind == Token::Kind::kIdent) {
      if (one_of(p.text, kRetStop)) break;
      --b;
      continue;
    }
    if (p.kind == Token::Kind::kPunct && one_of(p.text, kRetPunct)) {
      --b;
      continue;
    }
    break;
  }
  return b;
}

/// Lexical function scanner over one TU. Finds `name (params)` shapes,
/// classifies the tail (body, ';', ctor-init list, '= default/delete/0'),
/// skips definition bodies, and records return-type regions. Declarations
/// whose return region holds no identifier (constructors, expression
/// statements) are dropped.
void index_functions(const TuIndex& tu, std::size_t file_idx,
                     std::vector<FunctionInfo>& out) {
  const Tokens& tk = tu.ts.tokens;
  std::size_t i = 0;
  while (i < tk.size()) {
    const Token& t = tk[i];
    if (t.kind == Token::Kind::kIdent) {
      if (t.text == "enum") {
        std::size_t j = i + 1;
        while (j < tk.size() && !tok_punct(tk, j, "{") &&
               !tok_punct(tk, j, ";")) {
          ++j;
        }
        if (tok_punct(tk, j, "{")) j = match_pair(tk, j, "{", "}");
        i = j + 1;
        continue;
      }
      if (t.text == "template" && tok_punct(tk, i + 1, "<")) {
        const std::size_t close = match_angles(tk, i + 1);
        i = close >= tk.size() ? i + 1 : close + 1;
        continue;
      }
    }

    // Candidate: identifier directly followed by '(' — or `operator` with
    // its symbol tokens in between (operator() carries an extra '()' pair).
    std::size_t open = kNoTok;
    if (t.kind == Token::Kind::kIdent) {
      if (t.text == "operator") {
        std::size_t j = i + 1;
        while (j < tk.size() && tk[j].kind == Token::Kind::kPunct &&
               tk[j].text != "(") {
          ++j;
        }
        if (tok_punct(tk, j, "(") && tok_punct(tk, j + 1, ")") &&
            tok_punct(tk, j + 2, "(")) {
          j += 2;
        }
        if (tok_punct(tk, j, "(")) open = j;
      } else if (tok_punct(tk, i + 1, "(") && !one_of(t.text, kNotFunction)) {
        const bool member_call =
            i > 0 && (tk[i - 1].text == "." || tk[i - 1].text == "->");
        if (!member_call) open = i + 1;
      }
    }
    if (open == kNoTok) {
      ++i;
      continue;
    }
    const std::size_t close = match_pair(tk, open, "(", ")");
    if (close >= tk.size()) {
      ++i;
      continue;
    }

    // Qualifier walk from the ')' to the statement's end: cv/ref/noexcept/
    // attributes/trailing-return tokens, then '{', ';', ctor ':', or '='.
    enum class End { kNone, kDef, kDecl };
    End end = End::kNone;
    std::size_t j = close + 1;
    std::size_t body = kNoTok;
    while (j < tk.size()) {
      const Token& q = tk[j];
      if (q.kind == Token::Kind::kIdent) {
        ++j;
        continue;
      }
      if (q.kind != Token::Kind::kPunct) break;
      if (q.text == "{") {
        end = End::kDef;
        body = j;
        break;
      }
      if (q.text == ";") {
        end = End::kDecl;
        break;
      }
      if (q.text == ":") {
        body = walk_ctor_init(tk, j + 1);
        if (body != kNoTok) end = End::kDef;
        break;
      }
      if (q.text == "=") {
        if (tok_ident(tk, j + 1, "default") || tok_ident(tk, j + 1, "delete") ||
            (j + 1 < tk.size() && tk[j + 1].text == "0")) {
          end = End::kDecl;
        }
        break;
      }
      if (q.text == "::" || q.text == "&" || q.text == "&&" ||
          q.text == "*" || q.text == "->") {
        ++j;
        continue;
      }
      if (q.text == "(") {
        j = match_pair(tk, j, "(", ")") + 1;
        continue;
      }
      if (q.text == "<") {
        const std::size_t c = match_angles(tk, j);
        if (c >= tk.size()) break;
        j = c + 1;
        continue;
      }
      if (q.text == "[" && tok_punct(tk, j + 1, "[")) {
        j = match_pair(tk, j, "[", "]") + 1;
        continue;
      }
      break;
    }
    if (end == End::kNone) {
      ++i;
      continue;
    }

    FunctionInfo fn;
    fn.name = std::string(t.text);
    if (i > 0 && tok_punct(tk, i - 1, "~")) fn.name = "~" + fn.name;
    fn.file = file_idx;
    fn.line = t.line;
    fn.name_tok = i;
    fn.ret_begin = ret_region_begin(tk, i);
    fn.ret_end = i;
    // Qualified member definitions (`IngestReport::clean`) carry their class
    // name right before the function name; strip trailing `Ident ::` pairs
    // so the qualifier is never mistaken for the return type.
    while (fn.ret_end >= fn.ret_begin + 2 &&
           tok_punct(tk, fn.ret_end - 1, "::") &&
           tk[fn.ret_end - 2].kind == Token::Kind::kIdent) {
      fn.ret_end -= 2;
    }
    for (std::size_t r = fn.ret_begin; r < fn.ret_end; ++r) {
      if (tok_ident(tk, r, "nodiscard")) fn.has_nodiscard = true;
    }
    if (end == End::kDef) {
      fn.body_begin = body;
      fn.body_end = match_pair(tk, body, "{", "}");
      const std::size_t resume = fn.body_end;
      out.push_back(std::move(fn));
      i = resume >= tk.size() ? tk.size() : resume + 1;
      continue;
    }
    // Declaration: keep only value-returning shapes (an identifier in the
    // return region); constructors and expression statements have none.
    bool has_ret_ident = false;
    for (std::size_t r = fn.ret_begin; r < fn.ret_end; ++r) {
      if (tk[r].kind == Token::Kind::kIdent) has_ret_ident = true;
    }
    if (has_ret_ident) out.push_back(std::move(fn));
    i = close + 1;
  }
}

/// Extracts declared data-member names from a struct body. Member
/// functions (a top-level '(' before any '='), nested types, using
/// declarations, friends, and access specifiers are skipped.
[[nodiscard]] std::vector<std::string> parse_fields(const Tokens& tk,
                                                    std::size_t body_begin,
                                                    std::size_t body_end) {
  std::vector<std::string> fields;
  std::size_t i = body_begin + 1;
  while (i < body_end && i < tk.size()) {
    if (tok_punct(tk, i, ";")) {
      ++i;
      continue;
    }
    if ((tok_ident(tk, i, "public") || tok_ident(tk, i, "private") ||
         tok_ident(tk, i, "protected")) &&
        tok_punct(tk, i + 1, ":")) {
      i += 2;
      continue;
    }
    if (tok_punct(tk, i, "[") && tok_punct(tk, i + 1, "[")) {
      // Attribute: skip the outer bracket pair.
      i = match_pair(tk, i, "[", "]") + 1;
      continue;
    }
    if (tok_ident(tk, i, "struct") || tok_ident(tk, i, "class") ||
        tok_ident(tk, i, "enum") || tok_ident(tk, i, "union")) {
      // Nested type: indexed separately; skip its body and declarators.
      std::size_t j = i;
      while (j < body_end && !tok_punct(tk, j, "{") && !tok_punct(tk, j, ";")) {
        ++j;
      }
      if (tok_punct(tk, j, "{")) j = match_pair(tk, j, "{", "}");
      while (j < body_end && !tok_punct(tk, j, ";")) ++j;
      i = j + 1;
      continue;
    }
    const bool skip_name = tok_ident(tk, i, "using") ||
                           tok_ident(tk, i, "typedef") ||
                           tok_ident(tk, i, "friend") ||
                           tok_ident(tk, i, "static_assert") ||
                           tok_ident(tk, i, "template");

    // Generic statement walk.
    int pdepth = 0;
    int adepth = 0;
    std::size_t eq_pos = 0;
    std::size_t paren_pos = 0;
    std::size_t name_end = 0;  // index of '=', '{' init, or ';'
    bool is_function = false;
    std::size_t j = i;
    for (; j < body_end; ++j) {
      const Token& t = tk[j];
      if (t.kind == Token::Kind::kPunct) {
        if (t.text == "<" && j > 0 &&
            (tk[j - 1].kind == Token::Kind::kIdent || tk[j - 1].text == ">")) {
          ++adepth;
          continue;
        }
        if (t.text == ">" && adepth > 0) {
          --adepth;
          continue;
        }
        if (t.text == "(") {
          if (pdepth == 0 && adepth == 0 && paren_pos == 0 && eq_pos == 0) {
            paren_pos = j;
          }
          ++pdepth;
          continue;
        }
        if (t.text == ")") {
          --pdepth;
          continue;
        }
        if (pdepth > 0) continue;
        if (t.text == "=" && adepth == 0 && eq_pos == 0) {
          eq_pos = j;
          continue;
        }
        if (t.text == "{") {
          if (paren_pos != 0 && eq_pos == 0) {
            // Function definition: body ends the statement.
            is_function = true;
            j = match_pair(tk, j, "{", "}");
            if (j + 1 < body_end && tok_punct(tk, j + 1, ";")) ++j;
            break;
          }
          if (name_end == 0) name_end = j;
          j = match_pair(tk, j, "{", "}");
          continue;
        }
        if (t.text == ";") {
          if (name_end == 0) name_end = j;
          break;
        }
      }
    }
    if (!is_function && paren_pos != 0 && (eq_pos == 0 || paren_pos < eq_pos)) {
      is_function = true;  // declaration without a body
    }
    if (!skip_name && !is_function) {
      std::size_t limit = eq_pos != 0 ? eq_pos : name_end;
      if (limit == 0) limit = j;
      // Array member: the declarator ends with [extent].
      if (limit > 0 && tok_punct(tk, limit - 1, "]")) {
        std::size_t b = limit - 1;
        int depth = 1;
        while (b > i && depth > 0) {
          --b;
          if (tok_punct(tk, b, "]")) ++depth;
          if (tok_punct(tk, b, "[")) --depth;
        }
        limit = b;
      }
      for (std::size_t k = limit; k-- > i;) {
        if (tk[k].kind == Token::Kind::kIdent) {
          fields.emplace_back(tk[k].text);
          break;
        }
      }
    }
    i = j + 1;
  }
  return fields;
}

void index_structs(const TuIndex& tu, std::size_t file_idx, ProgramIndex& idx) {
  const Tokens& tk = tu.ts.tokens;
  const std::size_t first_of_file = idx.structs.size();
  for (std::size_t i = 0; i + 1 < tk.size(); ++i) {
    if (!(tok_ident(tk, i, "struct") || tok_ident(tk, i, "class"))) continue;
    if (tk[i + 1].kind != Token::Kind::kIdent) continue;
    if (i > 0 && (tk[i - 1].text == "<" || tk[i - 1].text == "," ||
                  tk[i - 1].text == "enum")) {
      continue;  // template parameter or enum class
    }
    // Scan past the optional base clause for the body brace.
    std::size_t j = i + 2;
    bool has_body = false;
    while (j < tk.size()) {
      if (tok_punct(tk, j, ";") || tok_punct(tk, j, "(")) break;
      if (tok_punct(tk, j, "{")) {
        has_body = true;
        break;
      }
      ++j;
    }
    if (!has_body) continue;
    StructInfo def;
    def.name = std::string(tk[i + 1].text);
    def.file = file_idx;
    def.line = tk[i].line;
    def.body_begin = j;
    def.body_end = match_pair(tk, j, "{", "}");
    def.fields = parse_fields(tk, def.body_begin, def.body_end);
    idx.structs.push_back(std::move(def));
  }
  // A checkpointed or must-use marker belongs to the INNERMOST struct whose
  // body contains it (nested state structs sit inside their owning class).
  for (const Annotation& a : tu.annotations) {
    const bool is_ckpt = a.kind == Annotation::Kind::kCheckpointed;
    const bool is_must = a.kind == Annotation::Kind::kMustUse;
    if (!is_ckpt && !is_must) continue;
    StructInfo* innermost = nullptr;
    for (std::size_t s = first_of_file; s < idx.structs.size(); ++s) {
      StructInfo& def = idx.structs[s];
      if (def.body_end >= tk.size()) continue;
      if (a.line < tk[def.body_begin].line || a.line > tk[def.body_end].line) {
        continue;
      }
      if (innermost == nullptr || def.body_begin > innermost->body_begin) {
        innermost = &def;
      }
    }
    if (innermost != nullptr) {
      (is_ckpt ? innermost->checkpointed : innermost->must_use) = true;
    } else {
      idx.findings.push_back(
          Finding{tu.src->path, a.line, kRuleDirective,
                  std::string(is_ckpt ? "checkpointed" : "must-use") +
                      " marker is not inside any struct body"});
    }
  }
}

/// The declarator name on `line`: the last identifier before the first
/// top-level '=', ';', '{', or '[' on that line. Empty when the line
/// carries no declaration.
[[nodiscard]] std::string member_on_line(const Tokens& tk, int line) {
  std::string last;
  for (const Token& t : tk) {
    if (t.line < line) continue;
    if (t.line > line) break;
    if (t.kind == Token::Kind::kIdent) {
      last = std::string(t.text);
    } else if (t.kind == Token::Kind::kPunct &&
               (t.text == "=" || t.text == ";" || t.text == "{" ||
                t.text == "[")) {
      break;
    }
  }
  return last;
}

void collect_field_annotations(const TuIndex& tu, ProgramIndex& idx) {
  for (const Annotation& a : tu.annotations) {
    if (a.kind == Annotation::Kind::kLedger) {
      const std::string member = member_on_line(tu.ts.tokens, a.target_line);
      if (member.empty()) {
        idx.findings.push_back(
            Finding{tu.src->path, a.line, kRuleDirective,
                    "ledger(" + a.arg1 +
                        ") annotation is not attached to a field declaration"});
        continue;
      }
      LedgerGroup* group = nullptr;
      for (LedgerGroup& g : idx.ledgers) {
        if (g.name == a.arg1) group = &g;
      }
      if (group == nullptr) {
        idx.ledgers.push_back(LedgerGroup{a.arg1, {}});
        group = &idx.ledgers.back();
      }
      group->members.push_back(member);
    } else if (a.kind == Annotation::Kind::kGuardedBy) {
      const std::string member = member_on_line(tu.ts.tokens, a.target_line);
      if (member.empty()) {
        idx.findings.push_back(Finding{
            tu.src->path, a.line, kRuleDirective,
            "guarded-by(" + a.arg1 +
                ") annotation is not attached to a field declaration"});
        continue;
      }
      bool conflict = false;
      for (const GuardedField& g : idx.guarded) {
        if (g.field == member && g.mutex_name != a.arg1) {
          idx.findings.push_back(Finding{
              tu.src->path, a.line, kRuleDirective,
              "guarded-by: field '" + member + "' is pinned to both '" +
                  g.mutex_name + "' and '" + a.arg1 +
                  "' — name-keyed fields need one mutex program-wide"});
          conflict = true;
        }
      }
      if (!conflict) idx.guarded.push_back(GuardedField{member, a.arg1});
    }
  }
}

}  // namespace

std::size_t match_pair(const Tokens& tk, std::size_t open,
                       std::string_view opener, std::string_view closer) {
  int depth = 0;
  for (std::size_t i = open; i < tk.size(); ++i) {
    if (tk[i].kind != Token::Kind::kPunct) continue;
    if (tk[i].text == opener) ++depth;
    if (tk[i].text == closer && --depth == 0) return i;
  }
  return tk.size();
}

std::size_t match_angles(const Tokens& tk, std::size_t open) {
  int depth = 1;
  for (std::size_t i = open + 1; i < tk.size(); ++i) {
    const Token& t = tk[i];
    if (t.kind != Token::Kind::kPunct) continue;
    if (t.text == "<" && i > 0 &&
        (tk[i - 1].kind == Token::Kind::kIdent || tk[i - 1].text == ">")) {
      ++depth;
    } else if (t.text == ">") {
      if (--depth == 0) return i;
    } else if (t.text == ";" || t.text == "{") {
      return tk.size();  // not a template after all
    }
  }
  return tk.size();
}

ProgramIndex build_index(const std::vector<SourceFile>& files,
                         const std::vector<std::string>& known_rules) {
  ProgramIndex idx;
  idx.files.reserve(files.size());
  for (const SourceFile& f : files) {
    TuIndex tu;
    tu.src = &f;
    tu.ts = tokenize(f.text);
    ParsedAnnotations parsed = parse_annotations(tu.ts, known_rules);
    tu.annotations = std::move(parsed.annotations);
    for (AnnotationError& e : parsed.errors) {
      idx.findings.push_back(
          Finding{f.path, e.line, std::move(e.rule), std::move(e.message)});
    }
    idx.files.push_back(std::move(tu));
  }
  for (std::size_t i = 0; i < idx.files.size(); ++i) {
    index_structs(idx.files[i], i, idx);
    index_functions(idx.files[i], i, idx.functions);
    collect_field_annotations(idx.files[i], idx);
  }
  for (const StructInfo& s : idx.structs) {
    if (s.must_use) idx.must_use_types.push_back(s.name);
  }
  std::sort(idx.must_use_types.begin(), idx.must_use_types.end());
  idx.must_use_types.erase(
      std::unique(idx.must_use_types.begin(), idx.must_use_types.end()),
      idx.must_use_types.end());
  for (const FunctionInfo& fn : idx.functions) {
    for (std::size_t r = fn.ret_begin; r < fn.ret_end; ++r) {
      const Token& t = idx.files[fn.file].ts.tokens[r];
      if (t.kind == Token::Kind::kIdent &&
          std::binary_search(idx.must_use_types.begin(),
                             idx.must_use_types.end(), std::string(t.text))) {
        idx.must_use_functions.push_back(fn.name);
        break;
      }
    }
  }
  std::sort(idx.must_use_functions.begin(), idx.must_use_functions.end());
  idx.must_use_functions.erase(std::unique(idx.must_use_functions.begin(),
                                           idx.must_use_functions.end()),
                               idx.must_use_functions.end());
  for (LedgerGroup& g : idx.ledgers) {
    std::sort(g.members.begin(), g.members.end());
    g.members.erase(std::unique(g.members.begin(), g.members.end()),
                    g.members.end());
  }
  return idx;
}

}  // namespace dm::lint
