#include "lint/token.h"

#include <cctype>
#include <cstddef>
#include <string>

namespace dm::lint {

namespace {

[[nodiscard]] bool is_ident_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool is_ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool is_digit(char c) noexcept {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

/// Multi-character punctuators, longest first. '<' and '>' are deliberately
/// absent from every entry except arrows so the rule scanners can match
/// template brackets one character at a time.
constexpr std::string_view kPunctuators[] = {
    "...", "->*", "<<=", ">>=", "::", "->", "==", "!=", "<=", ">=",
    "&&",  "||",  "<<",  "+=",  "-=", "*=", "/=", "%=", "&=", "|=",
    "^=",  "++",  "--",  "##",
};

}  // namespace

TokenStream tokenize(std::string_view text) {
  TokenStream out;
  std::size_t i = 0;
  int line = 1;
  int last_code_line = 0;  // line of the most recent code token

  const auto push = [&](Token::Kind kind, std::size_t begin, std::size_t end,
                        int at_line) {
    out.tokens.push_back(Token{kind, text.substr(begin, end - begin), at_line});
    last_code_line = at_line;
  };

  while (i < text.size()) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }

    // Line comment.
    if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
      const int start_line = line;
      const std::size_t begin = i + 2;
      i += 2;
      while (i < text.size() && text[i] != '\n') ++i;
      out.comments.push_back(Comment{text.substr(begin, i - begin), start_line,
                                     last_code_line != start_line});
      continue;
    }

    // Block comment.
    if (c == '/' && i + 1 < text.size() && text[i + 1] == '*') {
      const int start_line = line;
      const std::size_t begin = i + 2;
      i += 2;
      std::size_t end = text.size();
      while (i < text.size()) {
        if (text[i] == '\n') ++line;
        if (text[i] == '*' && i + 1 < text.size() && text[i + 1] == '/') {
          end = i;
          i += 2;
          break;
        }
        ++i;
      }
      out.comments.push_back(Comment{text.substr(begin, end - begin),
                                     start_line,
                                     last_code_line != start_line});
      continue;
    }

    // Raw string literal: (optional prefix)R"delim( ... )delim".
    if ((c == 'R' || ((c == 'u' || c == 'U' || c == 'L') && i + 1 < text.size() &&
                      text[i + 1] == 'R')) &&
        text.find('"', i) != std::string_view::npos) {
      std::size_t r = i;
      if (c != 'R') ++r;
      if (r + 1 < text.size() && text[r] == 'R' && text[r + 1] == '"') {
        const int start_line = line;
        const std::size_t begin = i;
        std::size_t d = r + 2;
        while (d < text.size() && text[d] != '(') ++d;
        const std::string_view delim = text.substr(r + 2, d - (r + 2));
        std::string closer(")");
        closer.append(delim);
        closer.push_back('"');
        const std::size_t close = text.find(closer, d);
        const std::size_t end =
            close == std::string_view::npos ? text.size() : close + closer.size();
        for (std::size_t k = i; k < end; ++k) {
          if (text[k] == '\n') ++line;
        }
        push(Token::Kind::kString, begin, end, start_line);
        i = end;
        continue;
      }
    }

    // String / character literal (with optional encoding prefix handled by
    // the identifier branch: u8"x" lexes as ident "u8" + string — fine for
    // our rules).
    if (c == '"' || c == '\'') {
      const int start_line = line;
      const std::size_t begin = i;
      const char quote = c;
      ++i;
      while (i < text.size()) {
        if (text[i] == '\\' && i + 1 < text.size()) {
          i += 2;
          continue;
        }
        if (text[i] == '\n') ++line;  // unterminated; keep line count sane
        if (text[i] == quote) {
          ++i;
          break;
        }
        ++i;
      }
      push(Token::Kind::kString, begin, i, start_line);
      continue;
    }

    // Identifier / keyword.
    if (is_ident_start(c)) {
      const std::size_t begin = i;
      while (i < text.size() && is_ident_char(text[i])) ++i;
      push(Token::Kind::kIdent, begin, i, line);
      continue;
    }

    // pp-number: digits, idents, quotes-as-separators, exponents.
    if (is_digit(c) || (c == '.' && i + 1 < text.size() && is_digit(text[i + 1]))) {
      const std::size_t begin = i;
      while (i < text.size()) {
        const char n = text[i];
        if (is_ident_char(n) || n == '.' || n == '\'') {
          ++i;
          continue;
        }
        if ((n == '+' || n == '-') && i > begin) {
          const char prev = text[i - 1];
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            ++i;
            continue;
          }
        }
        break;
      }
      push(Token::Kind::kNumber, begin, i, line);
      continue;
    }

    // Punctuation, maximal munch over the table.
    bool munched = false;
    for (const std::string_view p : kPunctuators) {
      if (text.substr(i, p.size()) == p) {
        push(Token::Kind::kPunct, i, i + p.size(), line);
        i += p.size();
        munched = true;
        break;
      }
    }
    if (!munched) {
      push(Token::Kind::kPunct, i, i + 1, line);
      ++i;
    }
  }
  return out;
}

}  // namespace dm::lint
