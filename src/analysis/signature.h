// Attack-signature extraction (paper §4.1: "Understanding the VIPs under
// frequent attacks is important for operators to extract the right attack
// signatures (e.g., popular attack sources) to protect these VIPs from
// future attacks").
//
// Given a VIP's detected incidents and the trace, extract the concrete
// filtering rules its history supports: repeat source addresses, dominant
// source ports (the juno fingerprint), dominant protocols/target ports.
#pragma once

#include <cstdint>
#include <string>
#include <span>
#include <vector>

#include "analysis/attribution.h"
#include "detect/incident.h"
#include "netflow/window_aggregator.h"

namespace dm::analysis {

/// One extracted filtering rule for a VIP.
struct SignatureRule {
  enum class Kind : std::uint8_t {
    kBlockSource,      ///< a source address seen across repeat attacks
    kBlockSourcePort,  ///< a fixed attack source port (e.g. juno's 1024/3072)
    kRateLimitPort,    ///< a destination port drawing repeated floods
  };
  Kind kind = Kind::kBlockSource;
  netflow::IPv4 source;        ///< kBlockSource
  std::uint16_t port = 0;      ///< kBlockSourcePort / kRateLimitPort
  /// Incidents this rule would have touched.
  std::uint32_t incidents = 0;
  /// Share of the VIP's attack packets the rule covers.
  double packet_share = 0.0;
};

struct SignatureConfig {
  /// A source must appear in at least this many distinct incidents.
  std::uint32_t min_incidents = 2;
  /// ... or carry at least this share of the VIP's attack packets.
  double min_packet_share = 0.10;
  /// Maximum number of block-source rules to emit (ACL budget).
  std::size_t max_source_rules = 32;
  /// A source port is "fixed" when it carries this share of flood packets.
  double fixed_port_share = 0.30;
};

/// Extracts rules for one VIP from its inbound incidents. Incidents of other
/// VIPs in the span are ignored.
[[nodiscard]] std::vector<SignatureRule> extract_signatures(
    const netflow::WindowedTrace& trace,
    std::span<const detect::AttackIncident> incidents, netflow::IPv4 vip,
    const SignatureConfig& config = {},
    const netflow::PrefixSet* blacklist = nullptr);

[[nodiscard]] std::string to_string(const SignatureRule& rule);

}  // namespace dm::analysis
