#include "analysis/spoof_analysis.h"

namespace dm::analysis {

using detect::AttackIncident;
using netflow::Direction;

util::AndersonDarlingResult test_sources(
    std::span<const RemoteContribution> remotes) {
  std::vector<double> unit;
  unit.reserve(remotes.size());
  for (const RemoteContribution& r : remotes) {
    unit.push_back(r.remote.as_unit_interval());
  }
  return util::anderson_darling_uniform(unit);
}

SpoofResult analyze_spoofing(const netflow::WindowedTrace& trace,
                             std::span<const AttackIncident> incidents,
                             const netflow::PrefixSet* blacklist,
                             std::size_t min_sources) {
  SpoofResult result;
  std::array<std::uint64_t, sim::kAttackTypeCount> spoofed_count{};

  for (std::uint32_t i = 0; i < incidents.size(); ++i) {
    const AttackIncident& inc = incidents[i];
    if (inc.direction != Direction::kInbound) continue;
    const auto remotes = incident_remotes(trace, inc, blacklist);
    if (remotes.size() < min_sources) continue;

    SpoofVerdict v;
    v.incident_index = i;
    v.test = test_sources(remotes);
    // Spoofed sources are uniform over the address space, so the uniformity
    // hypothesis surviving at the 5% level marks the attack as spoofed.
    v.spoofed = v.test.uniform_at(0.05);

    const std::size_t t = sim::index_of(inc.type);
    result.tested[t] += 1;
    if (v.spoofed) spoofed_count[t] += 1;
    result.verdicts.push_back(v);
  }

  for (std::size_t t = 0; t < sim::kAttackTypeCount; ++t) {
    if (result.tested[t] > 0) {
      result.spoofed_fraction[t] = static_cast<double>(spoofed_count[t]) /
                                   static_cast<double>(result.tested[t]);
    }
  }
  return result;
}

}  // namespace dm::analysis
