// Fraction of each VIP's active time spent under attack (paper §4.1, Fig 4).
//
// "Active time" is the number of minutes in which the VIP shows any traffic
// in the sampled NetFlow; attack time is the number of minutes flagged by
// the detectors. The Fig 4 CDF is over VIPs that had at least one attack.
#pragma once

#include <span>
#include <vector>

#include "detect/incident.h"
#include "netflow/window_aggregator.h"
#include "util/cdf.h"

namespace dm::analysis {

struct VipActiveTime {
  netflow::IPv4 vip;
  std::uint64_t active_minutes = 0;
  std::uint64_t attack_minutes = 0;

  [[nodiscard]] double attack_fraction() const noexcept {
    return active_minutes == 0 ? 0.0
                               : static_cast<double>(attack_minutes) /
                                     static_cast<double>(active_minutes);
  }
};

struct ActiveTimeResult {
  std::vector<VipActiveTime> vips;   ///< only VIPs with >= 1 attack minute
  util::EmpiricalCdf fraction_cdf;   ///< the Fig 4 curve (values in [0, 1])
  /// Fraction of attacked VIPs spending > 50% of their active time under
  /// attack (§4.1: 3% inbound, 8% outbound).
  double majority_attacked_fraction = 0.0;
};

[[nodiscard]] ActiveTimeResult compute_active_time(
    const netflow::WindowedTrace& trace,
    std::span<const detect::MinuteDetection> detections,
    netflow::Direction direction);

}  // namespace dm::analysis
