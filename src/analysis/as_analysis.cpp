#include "analysis/as_analysis.h"

#include <algorithm>
#include <map>
#include <set>

namespace dm::analysis {

using cloud::AsInfo;
using detect::AttackIncident;
using netflow::Direction;

namespace {

/// Incident indices whose sources tested as spoofed.
std::set<std::uint32_t> spoofed_set(const SpoofResult* spoof) {
  std::set<std::uint32_t> out;
  if (spoof == nullptr) return out;
  for (const SpoofVerdict& v : spoof->verdicts) {
    if (v.spoofed) out.insert(v.incident_index);
  }
  return out;
}

}  // namespace

AsAnalysisResult analyze_as(const netflow::WindowedTrace& trace,
                            std::span<const AttackIncident> incidents,
                            const cloud::AsRegistry& ases, Direction direction,
                            const SpoofResult* spoof,
                            const netflow::PrefixSet* blacklist) {
  AsAnalysisResult out;
  out.direction = direction;
  const auto spoofed = spoofed_set(spoof);

  std::array<std::uint64_t, kAsClassCount> class_incidents{};
  std::array<std::uint64_t, kAsClassCount> class_sizes{};
  std::array<std::uint64_t, kAsClassCount> class_packets{};
  std::array<std::array<std::uint64_t, kAsClassCount>, sim::kAttackTypeCount>
      type_class{};
  std::array<std::uint64_t, sim::kAttackTypeCount> type_totals{};
  std::map<std::uint32_t, std::uint64_t> per_as_incidents;
  std::map<std::uint32_t, std::uint64_t> dominant_attribution;
  std::uint64_t total_packets = 0;
  std::uint64_t single_as = 0;

  for (const AsInfo& as : ases.all()) {
    class_sizes[static_cast<std::size_t>(as.cls)] += 1;
  }

  for (std::uint32_t i = 0; i < incidents.size(); ++i) {
    const AttackIncident& inc = incidents[i];
    if (inc.direction != direction) continue;
    out.incidents_total += 1;
    type_totals[sim::index_of(inc.type)] += 1;
    if (spoofed.contains(i)) continue;  // §6.1: remove spoofed IPs first

    const auto remotes = incident_remotes(trace, inc, blacklist);
    std::set<std::uint32_t> asns;
    std::set<std::size_t> classes;
    std::map<std::uint32_t, std::uint64_t> incident_as_packets;
    std::uint64_t incident_packets = 0;
    for (const RemoteContribution& r : remotes) {
      const AsInfo* as = ases.lookup(r.remote);
      if (as == nullptr) continue;  // outside the modeled Internet
      asns.insert(as->asn);
      classes.insert(static_cast<std::size_t>(as->cls));
      class_packets[static_cast<std::size_t>(as->cls)] += r.packets;
      total_packets += r.packets;
      incident_as_packets[as->asn] += r.packets;
      incident_packets += r.packets;
    }
    if (asns.empty()) continue;
    out.incidents_mapped += 1;
    std::uint64_t dominant = 0;
    std::uint32_t dominant_asn = 0;
    for (const auto& [asn, pkts] : incident_as_packets) {
      if (pkts > dominant) {
        dominant = pkts;
        dominant_asn = asn;
      }
    }
    if (incident_packets > 0 &&
        static_cast<double>(dominant) >=
            0.9 * static_cast<double>(incident_packets)) {
      ++single_as;
    }
    dominant_attribution[dominant_asn] += 1;
    for (std::uint32_t asn : asns) per_as_incidents[asn] += 1;
    for (std::size_t c : classes) {
      class_incidents[c] += 1;
      type_class[sim::index_of(inc.type)][c] += 1;
    }
  }

  const double denom = out.incidents_total > 0
                           ? static_cast<double>(out.incidents_total)
                           : 1.0;
  for (std::size_t c = 0; c < kAsClassCount; ++c) {
    out.class_share[c] = static_cast<double>(class_incidents[c]) / denom;
    if (class_sizes[c] > 0) {
      out.per_as_share[c] =
          out.class_share[c] / static_cast<double>(class_sizes[c]);
    }
    if (total_packets > 0) {
      out.packet_share[c] = static_cast<double>(class_packets[c]) /
                            static_cast<double>(total_packets);
    }
  }
  for (std::size_t t = 0; t < sim::kAttackTypeCount; ++t) {
    if (type_totals[t] == 0) continue;
    for (std::size_t c = 0; c < kAsClassCount; ++c) {
      out.type_class_share[t][c] = static_cast<double>(type_class[t][c]) /
                                   static_cast<double>(type_totals[t]);
    }
  }

  if (out.incidents_mapped > 0) {
    out.single_as_fraction =
        static_cast<double>(single_as) / static_cast<double>(out.incidents_mapped);
    // Concentration metrics over the per-AS involvement counts.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> ranked;
    ranked.reserve(per_as_incidents.size());
    for (const auto& [asn, n] : per_as_incidents) ranked.push_back({n, asn});
    std::sort(ranked.begin(), ranked.end(), std::greater<>());
    if (!ranked.empty()) {
      out.top_as_share = static_cast<double>(ranked.front().first) / denom;
      out.top_asn = ranked.front().second;
      // Top-N coverage uses the dominant-AS attribution (each incident is
      // assigned to exactly one AS), so the shares partition the incidents
      // like the paper's "top 10 ASes are targets of 8.9% of the attacks".
      std::vector<std::uint64_t> dominant_ranked;
      dominant_ranked.reserve(dominant_attribution.size());
      for (const auto& [asn, n] : dominant_attribution) {
        dominant_ranked.push_back(n);
      }
      std::sort(dominant_ranked.begin(), dominant_ranked.end(),
                std::greater<>());
      std::uint64_t top10 = 0;
      std::uint64_t top100 = 0;
      for (std::size_t i = 0; i < dominant_ranked.size(); ++i) {
        if (i < 10) top10 += dominant_ranked[i];
        if (i < 100) top100 += dominant_ranked[i];
      }
      out.top10_share = static_cast<double>(top10) / denom;
      out.top100_share = static_cast<double>(top100) / denom;
    }
  }
  return out;
}

GeoResult analyze_geo(const netflow::WindowedTrace& trace,
                      std::span<const AttackIncident> incidents,
                      const cloud::AsRegistry& ases, Direction direction,
                      const SpoofResult* spoof,
                      const netflow::PrefixSet* blacklist) {
  GeoResult out;
  out.direction = direction;
  const auto spoofed = spoofed_set(spoof);

  constexpr std::size_t kRegions = std::size(cloud::kAllGeoRegions);
  std::array<std::uint64_t, kRegions> region_incidents{};
  std::array<std::uint64_t, kRegions> region_packets{};
  std::uint64_t total = 0;
  std::uint64_t total_packets = 0;

  for (std::uint32_t i = 0; i < incidents.size(); ++i) {
    const AttackIncident& inc = incidents[i];
    if (inc.direction != direction) continue;
    total += 1;
    if (spoofed.contains(i)) continue;
    const auto remotes = incident_remotes(trace, inc, blacklist);
    std::set<std::size_t> regions;
    for (const RemoteContribution& r : remotes) {
      const AsInfo* as = ases.lookup(r.remote);
      if (as == nullptr) continue;
      regions.insert(static_cast<std::size_t>(as->region));
      region_packets[static_cast<std::size_t>(as->region)] += r.packets;
      total_packets += r.packets;
    }
    if (!regions.empty()) out.incidents_mapped += 1;
    for (std::size_t r : regions) region_incidents[r] += 1;
  }

  const double denom = total > 0 ? static_cast<double>(total) : 1.0;
  for (std::size_t r = 0; r < kRegions; ++r) {
    out.region_share[r] = static_cast<double>(region_incidents[r]) / denom;
    if (total_packets > 0) {
      out.packet_share[r] = static_cast<double>(region_packets[r]) /
                            static_cast<double>(total_packets);
    }
  }
  return out;
}

}  // namespace dm::analysis
