// Attack throughput characterization (paper §5.1, Fig 7 and Fig 8).
//
// Fig 7: per attack type, the median and peak of the *aggregate* attack
// throughput across the whole cloud, measured over the minutes in which the
// type is active. Fig 8: the distribution of per-VIP (per-incident) peak
// throughput. All rates are estimated true pps (sampled x sampling / 60).
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "detect/incident.h"

namespace dm::analysis {

struct ThroughputStat {
  double median_pps = 0.0;
  double peak_pps = 0.0;
  std::uint64_t samples = 0;
};

/// Fig 7: aggregate attack throughput by type and overall.
struct AggregateThroughput {
  netflow::Direction direction = netflow::Direction::kInbound;
  std::array<ThroughputStat, sim::kAttackTypeCount> by_type{};
  ThroughputStat overall;  ///< all types summed per minute
};

/// Fig 8: per-incident peak throughput by type.
struct PerVipThroughput {
  netflow::Direction direction = netflow::Direction::kInbound;
  std::array<ThroughputStat, sim::kAttackTypeCount> by_type{};
  /// Peak/median ratio per type (§5.1's 1000x port-scan spread, the 361x
  /// inbound brute-force VIP ratio).
  [[nodiscard]] double spread(sim::AttackType t) const noexcept {
    const auto& s = by_type[sim::index_of(t)];
    return s.median_pps > 0 ? s.peak_pps / s.median_pps : 0.0;
  }
};

/// Computes Fig 7 from per-minute detections: for each minute, sum the
/// sampled attack packets of a type over all VIPs, convert to estimated pps,
/// then take the median/max across that type's active minutes.
[[nodiscard]] AggregateThroughput compute_aggregate_throughput(
    std::span<const detect::MinuteDetection> detections,
    netflow::Direction direction, std::uint32_t sampling);

/// Computes Fig 8 from incidents' per-incident peaks.
[[nodiscard]] PerVipThroughput compute_per_vip_throughput(
    std::span<const detect::AttackIncident> incidents,
    netflow::Direction direction, std::uint32_t sampling);

}  // namespace dm::analysis
