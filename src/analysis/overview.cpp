#include "analysis/overview.h"

namespace dm::analysis {

AttackMix compute_attack_mix(std::span<const detect::AttackIncident> incidents) {
  AttackMix mix;
  for (const auto& inc : incidents) {
    if (inc.direction == netflow::Direction::kInbound) {
      mix.inbound[sim::index_of(inc.type)] += 1;
      mix.inbound_total += 1;
    } else {
      mix.outbound[sim::index_of(inc.type)] += 1;
      mix.outbound_total += 1;
    }
  }
  return mix;
}

}  // namespace dm::analysis
