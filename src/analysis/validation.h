// Validation against security-appliance alerts and incident reports
// (paper §3.2, Table 2).
//
// The paper compares its NetFlow-based detections against two independent
// sources of ground truth: alerts from the hardware DDoS appliances
// (inbound SYN/UDP/ICMP floods and TCP NULL scans — high-volume thresholds
// over large windows, nearby incidents aggregated) and operator incident
// reports driven by external complaints (outbound). Both are unavailable
// outside the provider, so we simulate each from the scenario's ground
// truth, reproducing their blind spots: appliances only alert on
// high-volume attacks and also emit false positives; complaints only
// surface a fraction of real outbound attacks, plus application-level
// attacks (phishing, malware hosting) and FTP brute-force that have no
// NetFlow signature at all.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "detect/incident.h"
#include "sim/episode.h"
#include "util/rng.h"

namespace dm::analysis {

/// Attack classes appearing in Table 2 rows beyond the nine NetFlow types.
enum class ReportKind : std::uint8_t {
  kNetFlowType,  ///< one of sim::AttackType
  kOther,        ///< malware hosting / phishing (no network signature)
  kFtpBruteForce ///< brute-force on a protocol outside SSH/RDP/VNC
};

/// One alert from the simulated inbound DDoS appliance.
struct ApplianceAlert {
  netflow::IPv4 vip;
  sim::AttackType type = sim::AttackType::kSynFlood;
  util::Minute start = 0;
  util::Minute end = 0;
  bool false_positive = false;  ///< no underlying ground-truth episode
};

/// One simulated outbound incident report.
struct IncidentReport {
  netflow::IPv4 vip;
  ReportKind kind = ReportKind::kNetFlowType;
  sim::AttackType type = sim::AttackType::kSynFlood;  ///< when kind==kNetFlowType
  util::Minute start = 0;
  util::Minute end = 0;
  bool labeled_attack = true;  ///< a few real attacks get mislabeled (§3.2)
};

struct ValidationConfig {
  /// Appliance alerting floor in true pps ("thresholds are typically set to
  /// handle only the high-volume attacks").
  double appliance_min_pps = 15'000.0;
  /// Appliances aggregate incidents close in time (§3.2).
  util::Minute appliance_merge_window = 60;
  /// Extra alerts with no underlying attack, as a fraction of real alerts.
  double appliance_false_positive_rate = 0.18;
  /// Probability an outbound episode of each type draws an external
  /// complaint and becomes a report.
  std::array<double, sim::kAttackTypeCount> report_probability{
      0.06, 0.03, 0.015, 0.30, 0.08, 0.06, 0.03, 0.005, 0.0};
  /// Reports with no network signature (Table 2's "Others" row).
  std::uint32_t other_reports = 5;
  std::uint32_t ftp_brute_force_reports = 2;
  /// Fraction of real-attack reports mislabeled "no attack" (§3.2 found 4).
  double mislabel_rate = 0.03;
  /// Matching tolerance between a detection and an alert/report.
  util::Minute match_slack = 30;
};

/// Per-type validation counts (one Table 2 row).
struct ValidationRow {
  std::uint64_t total = 0;    ///< alerts or reports
  std::uint64_t matched = 0;  ///< covered by our detected incidents
};

struct ValidationResult {
  std::array<ValidationRow, sim::kAttackTypeCount> inbound{};
  std::array<ValidationRow, sim::kAttackTypeCount> outbound{};
  ValidationRow outbound_other;  ///< "Others (malware hosting/phishing)"
  double inbound_coverage = 0.0;   ///< paper: 78.5%
  double outbound_coverage = 0.0;  ///< paper: 83.7%
};

[[nodiscard]] std::vector<ApplianceAlert> simulate_appliance_alerts(
    const sim::GroundTruth& truth, const ValidationConfig& config,
    util::Rng& rng);

[[nodiscard]] std::vector<IncidentReport> simulate_incident_reports(
    const sim::GroundTruth& truth, const ValidationConfig& config,
    util::Rng& rng);

/// Compares detections against alerts and reports (the Table 2 columns).
[[nodiscard]] ValidationResult validate(
    std::span<const detect::AttackIncident> detected,
    std::span<const ApplianceAlert> alerts,
    std::span<const IncidentReport> reports, const ValidationConfig& config);

}  // namespace dm::analysis
