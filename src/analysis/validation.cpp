#include "analysis/validation.h"

#include <algorithm>
#include <map>
#include <tuple>

namespace dm::analysis {

using detect::AttackIncident;
using netflow::Direction;
using sim::AttackEpisode;
using sim::AttackType;

namespace {

/// Attack types the hardware appliances understand (§3.2: "TCP SYN floods,
/// UDP floods, ICMP floods, and TCP NULL scan").
bool appliance_covers(const AttackEpisode& e) noexcept {
  if (e.direction != Direction::kInbound) return false;
  if (sim::is_flood(e.type)) return true;
  return e.type == AttackType::kPortScan &&
         e.scan_kind == sim::PortScanKind::kNull;
}

}  // namespace

std::vector<ApplianceAlert> simulate_appliance_alerts(
    const sim::GroundTruth& truth, const ValidationConfig& config,
    util::Rng& rng) {
  // Qualifying episodes grouped per (vip, type); nearby ones merge into one
  // alert, mirroring the appliances' aggregation.
  std::map<std::pair<std::uint32_t, int>, std::vector<const AttackEpisode*>>
      grouped;
  for (const AttackEpisode& e : truth.episodes) {
    if (!appliance_covers(e)) continue;
    if (e.peak_true_pps < config.appliance_min_pps) continue;
    grouped[{e.vip.value(), static_cast<int>(e.type)}].push_back(&e);
  }

  std::vector<ApplianceAlert> alerts;
  for (auto& [key, episodes] : grouped) {
    std::sort(episodes.begin(), episodes.end(),
              [](const AttackEpisode* a, const AttackEpisode* b) {
                return std::tie(a->start, a->end) < std::tie(b->start, b->end);
              });
    ApplianceAlert open;
    bool has_open = false;
    for (const AttackEpisode* e : episodes) {
      if (has_open && e->start <= open.end + config.appliance_merge_window) {
        open.end = std::max(open.end, e->end);
        continue;
      }
      if (has_open) alerts.push_back(open);
      open.vip = e->vip;
      open.type = e->type;
      open.start = e->start;
      open.end = e->end;
      open.false_positive = false;
      has_open = true;
    }
    if (has_open) alerts.push_back(open);
  }

  // False positives: alerts on traffic that was never an attack. They can
  // never match a detection, which is one of the paper's two stated causes
  // of imperfect coverage.
  const auto fp_count = static_cast<std::size_t>(
      static_cast<double>(alerts.size()) * config.appliance_false_positive_rate);
  const std::size_t real = alerts.size();
  for (std::size_t i = 0; i < fp_count && real > 0; ++i) {
    ApplianceAlert fp = alerts[rng.below(real)];
    fp.false_positive = true;
    // Shift far from any matching detection window.
    fp.start += 7 * util::kMinutesPerDay + static_cast<util::Minute>(rng.below(1000));
    fp.end = fp.start + 5;
    alerts.push_back(fp);
  }
  return alerts;
}

std::vector<IncidentReport> simulate_incident_reports(
    const sim::GroundTruth& truth, const ValidationConfig& config,
    util::Rng& rng) {
  std::vector<IncidentReport> reports;
  for (const AttackEpisode& e : truth.episodes) {
    if (e.direction != Direction::kOutbound) continue;
    if (!rng.chance(config.report_probability[sim::index_of(e.type)])) continue;
    IncidentReport r;
    r.vip = e.vip;
    r.kind = ReportKind::kNetFlowType;
    r.type = e.type;
    r.start = e.start;
    r.end = e.end;
    r.labeled_attack = !rng.chance(config.mislabel_rate);
    reports.push_back(r);
  }
  // Application-level incidents with no NetFlow signature.
  for (std::uint32_t i = 0; i < config.other_reports; ++i) {
    IncidentReport r;
    r.vip = netflow::IPv4(0);  // synthetic: tenant identified out of band
    r.kind = ReportKind::kOther;
    r.start = static_cast<util::Minute>(rng.below(10'000));
    r.end = r.start + 60;
    reports.push_back(r);
  }
  for (std::uint32_t i = 0; i < config.ftp_brute_force_reports; ++i) {
    IncidentReport r;
    r.vip = netflow::IPv4(1);
    r.kind = ReportKind::kFtpBruteForce;
    r.start = static_cast<util::Minute>(rng.below(10'000));
    r.end = r.start + 120;
    reports.push_back(r);
  }
  return reports;
}

ValidationResult validate(std::span<const AttackIncident> detected,
                          std::span<const ApplianceAlert> alerts,
                          std::span<const IncidentReport> reports,
                          const ValidationConfig& config) {
  ValidationResult out;

  // Index detections by (vip, type, direction) for interval matching.
  std::map<std::tuple<std::uint32_t, int, int>, std::vector<const AttackIncident*>>
      index;
  for (const AttackIncident& inc : detected) {
    index[{inc.vip.value(), static_cast<int>(inc.type),
           static_cast<int>(inc.direction)}]
        .push_back(&inc);
  }
  const auto overlaps = [&](const AttackIncident& inc, util::Minute start,
                            util::Minute end) {
    return inc.start <= end + config.match_slack &&
           start <= inc.end + config.match_slack;
  };
  const auto has_match = [&](netflow::IPv4 vip, AttackType type, Direction dir,
                             util::Minute start, util::Minute end) {
    const auto it = index.find(
        {vip.value(), static_cast<int>(type), static_cast<int>(dir)});
    if (it == index.end()) return false;
    return std::any_of(it->second.begin(), it->second.end(),
                       [&](const AttackIncident* inc) {
                         return overlaps(*inc, start, end);
                       });
  };

  for (const ApplianceAlert& a : alerts) {
    auto& row = out.inbound[sim::index_of(a.type)];
    row.total += 1;
    if (!a.false_positive &&
        has_match(a.vip, a.type, Direction::kInbound, a.start, a.end)) {
      row.matched += 1;
    }
  }
  for (const IncidentReport& r : reports) {
    if (r.kind != ReportKind::kNetFlowType) {
      out.outbound_other.total += 1;
      continue;  // no NetFlow signature, never matched (paper exception 1/2)
    }
    auto& row = out.outbound[sim::index_of(r.type)];
    row.total += 1;
    if (has_match(r.vip, r.type, Direction::kOutbound, r.start, r.end)) {
      row.matched += 1;
    }
  }

  std::uint64_t in_total = 0, in_matched = 0, out_total = 0, out_matched = 0;
  for (std::size_t t = 0; t < sim::kAttackTypeCount; ++t) {
    in_total += out.inbound[t].total;
    in_matched += out.inbound[t].matched;
    out_total += out.outbound[t].total;
    out_matched += out.outbound[t].matched;
  }
  out_total += out.outbound_other.total;
  if (in_total > 0) {
    out.inbound_coverage =
        static_cast<double>(in_matched) / static_cast<double>(in_total);
  }
  if (out_total > 0) {
    out.outbound_coverage =
        static_cast<double>(out_matched) / static_cast<double>(out_total);
  }
  return out;
}

}  // namespace dm::analysis
