#include "analysis/signature.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/table.h"

namespace dm::analysis {

using detect::AttackIncident;
using netflow::Direction;
using netflow::FlowRecord;
using netflow::IPv4;

std::vector<SignatureRule> extract_signatures(
    const netflow::WindowedTrace& trace,
    std::span<const AttackIncident> incidents, IPv4 vip,
    const SignatureConfig& config, const netflow::PrefixSet* blacklist) {
  // Per-source accumulation across the VIP's inbound incidents.
  struct SourceStats {
    std::uint64_t packets = 0;
    std::uint32_t incidents = 0;
  };
  std::map<std::uint32_t, SourceStats> sources;
  std::map<std::uint16_t, SourceStats> source_ports;  // pure-SYN packets only
  std::map<std::uint16_t, SourceStats> target_ports;  // flood destinations
  std::uint64_t total_packets = 0;
  std::uint64_t flood_packets = 0;
  std::uint32_t vip_incidents = 0;

  for (const AttackIncident& inc : incidents) {
    if (inc.vip != vip || inc.direction != Direction::kInbound) continue;
    ++vip_incidents;
    std::map<std::uint32_t, std::uint64_t> incident_sources;
    std::map<std::uint16_t, std::uint64_t> incident_src_ports;
    std::map<std::uint16_t, std::uint64_t> incident_dst_ports;

    for (const auto& w : trace.series(inc.vip, inc.direction)) {
      if (w.minute < inc.start) continue;
      if (w.minute >= inc.end) break;
      for (const FlowRecord& r : trace.records_of(w)) {
        if (!record_matches(inc.type, r, inc.direction, blacklist)) continue;
        incident_sources[r.src_ip.value()] += r.packets;
        total_packets += r.packets;
        if (sim::is_flood(inc.type)) {
          incident_src_ports[r.src_port] += r.packets;
          incident_dst_ports[r.dst_port] += r.packets;
          flood_packets += r.packets;
        }
      }
    }
    for (const auto& [src, pkts] : incident_sources) {
      auto& stats = sources[src];
      stats.packets += pkts;
      stats.incidents += 1;
    }
    for (const auto& [port, pkts] : incident_src_ports) {
      auto& stats = source_ports[port];
      stats.packets += pkts;
      stats.incidents += 1;
    }
    for (const auto& [port, pkts] : incident_dst_ports) {
      auto& stats = target_ports[port];
      stats.packets += pkts;
      stats.incidents += 1;
    }
  }

  std::vector<SignatureRule> rules;
  if (vip_incidents == 0 || total_packets == 0) return rules;

  // Block-source rules: repeat offenders or heavy hitters.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ranked;
  for (const auto& [src, stats] : sources) {
    const double share = static_cast<double>(stats.packets) /
                         static_cast<double>(total_packets);
    if (stats.incidents >= config.min_incidents ||
        share >= config.min_packet_share) {
      ranked.push_back({stats.packets, src});
    }
  }
  std::sort(ranked.begin(), ranked.end(), std::greater<>());
  for (std::size_t i = 0; i < ranked.size() && i < config.max_source_rules;
       ++i) {
    const auto& stats = sources[ranked[i].second];
    SignatureRule rule;
    rule.kind = SignatureRule::Kind::kBlockSource;
    rule.source = IPv4(ranked[i].second);
    rule.incidents = stats.incidents;
    rule.packet_share = static_cast<double>(stats.packets) /
                        static_cast<double>(total_packets);
    rules.push_back(rule);
  }

  // Fixed-source-port rules (the §4.4 juno fingerprint): only meaningful
  // for flood traffic, where source ports are normally ephemeral-random.
  if (flood_packets > 0) {
    for (const auto& [port, stats] : source_ports) {
      const double share = static_cast<double>(stats.packets) /
                           static_cast<double>(flood_packets);
      if (share >= config.fixed_port_share) {
        SignatureRule rule;
        rule.kind = SignatureRule::Kind::kBlockSourcePort;
        rule.port = port;
        rule.incidents = stats.incidents;
        rule.packet_share = share;
        rules.push_back(rule);
      }
    }
    // Rate-limit rules on the dominant flood target port.
    for (const auto& [port, stats] : target_ports) {
      if (stats.incidents < config.min_incidents) continue;
      const double share = static_cast<double>(stats.packets) /
                           static_cast<double>(flood_packets);
      if (share >= config.fixed_port_share) {
        SignatureRule rule;
        rule.kind = SignatureRule::Kind::kRateLimitPort;
        rule.port = port;
        rule.incidents = stats.incidents;
        rule.packet_share = share;
        rules.push_back(rule);
      }
    }
  }
  return rules;
}

std::string to_string(const SignatureRule& rule) {
  std::ostringstream os;
  switch (rule.kind) {
    case SignatureRule::Kind::kBlockSource:
      os << "block src " << rule.source.to_string();
      break;
    case SignatureRule::Kind::kBlockSourcePort:
      os << "block src-port " << rule.port;
      break;
    case SignatureRule::Kind::kRateLimitPort:
      os << "rate-limit dst-port " << rule.port;
      break;
  }
  os << " (" << rule.incidents << " incidents, "
     << util::format_percent(rule.packet_share) << " of attack packets)";
  return os.str();
}

}  // namespace dm::analysis
