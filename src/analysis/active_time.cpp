#include "analysis/active_time.h"

#include <map>
#include <set>

namespace dm::analysis {

using detect::MinuteDetection;
using netflow::Direction;

ActiveTimeResult compute_active_time(const netflow::WindowedTrace& trace,
                                     std::span<const MinuteDetection> detections,
                                     Direction direction) {
  // Active minutes: windows (any direction counts as activity for the VIP;
  // the paper's "active traffic" is not direction-scoped, but attacks are).
  std::map<std::uint32_t, std::set<util::Minute>> active;
  for (const auto& w : trace.windows()) {
    active[w.vip.value()].insert(w.minute);
  }

  // Distinct (vip, minute) pairs under attack in this direction — each
  // minute counts once even under a multi-vector attack.
  std::map<std::uint32_t, std::uint64_t> attack_minutes;
  std::set<std::pair<std::uint32_t, util::Minute>> flagged;
  for (const MinuteDetection& d : detections) {
    if (d.direction != direction) continue;
    flagged.emplace(d.vip.value(), d.minute);
  }
  for (const auto& [vip, minute] : flagged) attack_minutes[vip] += 1;

  ActiveTimeResult result;
  std::uint64_t majority = 0;
  for (const auto& [vip, attacked] : attack_minutes) {
    VipActiveTime v;
    v.vip = netflow::IPv4(vip);
    v.attack_minutes = attacked;
    const auto it = active.find(vip);
    // An attacked minute is by definition active; guard against windows the
    // detector saw but the activity map somehow lacks.
    v.active_minutes =
        it == active.end() ? attacked
                           : std::max<std::uint64_t>(it->second.size(), attacked);
    result.fraction_cdf.add(v.attack_fraction());
    if (v.attack_fraction() > 0.5) ++majority;
    result.vips.push_back(v);
  }
  if (!result.vips.empty()) {
    result.majority_attacked_fraction =
        static_cast<double>(majority) / static_cast<double>(result.vips.size());
  }
  return result;
}

}  // namespace dm::analysis
