// Cloud services under attack (paper §4.4 Table 3) and Internet applications
// under outbound attack (§6.2 Fig 16).
//
// Table 3 methodology: take the VIPs with inbound attacks, remove the attack
// traffic from their inbound records, infer hosted services from the
// remaining (legitimate) traffic's destination ports — a service counts when
// its port carries at least 10% of the VIP's traffic — then cross-tabulate
// hosted services against the attack types each VIP received.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "cloud/service.h"
#include "detect/incident.h"
#include "netflow/window_aggregator.h"

namespace dm::analysis {

/// Services the tables report (Table 3 rows / Fig 16 bars).
inline constexpr cloud::ServiceType kReportedServices[] = {
    cloud::ServiceType::kRdp,  cloud::ServiceType::kHttp,
    cloud::ServiceType::kHttps, cloud::ServiceType::kSsh,
    cloud::ServiceType::kIpEncap, cloud::ServiceType::kSql,
    cloud::ServiceType::kSmtp,
};
inline constexpr std::size_t kReportedServiceCount = std::size(kReportedServices);

/// Table 3: all cells in percent of total victim VIPs.
struct ServiceAttackTable {
  std::uint64_t victim_vips = 0;
  /// share[s] = % of victim VIPs hosting service s (the "Total" column).
  std::array<double, kReportedServiceCount> hosting_share{};
  /// cell[s][t] = % of victim VIPs hosting service s that received attack t.
  std::array<std::array<double, sim::kAttackTypeCount>, kReportedServiceCount>
      cell{};
};

/// The >= 10% traffic-share rule of §4.4.
inline constexpr double kServiceTrafficShare = 0.10;

[[nodiscard]] ServiceAttackTable compute_service_attack_table(
    const netflow::WindowedTrace& trace,
    std::span<const detect::MinuteDetection> detections,
    std::span<const detect::AttackIncident> incidents);

/// Fig 16: number of VIPs whose outbound attacks target each application.
struct OutboundAppTargets {
  std::array<std::uint64_t, kReportedServiceCount> vips_per_service{};
  std::uint64_t attacking_vips = 0;
  /// §6.2: share of attacking VIPs targeting web (HTTP or HTTPS) — 64.5%.
  double web_share = 0.0;
};

[[nodiscard]] OutboundAppTargets compute_outbound_app_targets(
    const netflow::WindowedTrace& trace,
    std::span<const detect::AttackIncident> incidents);

}  // namespace dm::analysis
