#include "analysis/throughput.h"

#include <map>
#include <vector>

#include "util/stats.h"

namespace dm::analysis {

using detect::AttackIncident;
using detect::MinuteDetection;
using netflow::Direction;

AggregateThroughput compute_aggregate_throughput(
    std::span<const MinuteDetection> detections, Direction direction,
    std::uint32_t sampling) {
  AggregateThroughput out;
  out.direction = direction;

  // minute -> sampled packets per type (summed over VIPs).
  std::map<util::Minute, std::array<std::uint64_t, sim::kAttackTypeCount>> per_minute;
  for (const MinuteDetection& d : detections) {
    if (d.direction != direction) continue;
    per_minute[d.minute][sim::index_of(d.type)] += d.sampled_packets;
  }

  const double scale = static_cast<double>(sampling) / 60.0;
  std::array<std::vector<double>, sim::kAttackTypeCount> series;
  std::vector<double> overall;
  overall.reserve(per_minute.size());
  for (const auto& [minute, counts] : per_minute) {
    std::uint64_t total = 0;
    for (std::size_t t = 0; t < sim::kAttackTypeCount; ++t) {
      if (counts[t] > 0) {
        series[t].push_back(static_cast<double>(counts[t]) * scale);
        total += counts[t];
      }
    }
    overall.push_back(static_cast<double>(total) * scale);
  }

  for (std::size_t t = 0; t < sim::kAttackTypeCount; ++t) {
    const auto s = util::summarize(series[t]);
    out.by_type[t] = {s.p50, s.max, s.count};
  }
  const auto s = util::summarize(overall);
  out.overall = {s.p50, s.max, s.count};
  return out;
}

PerVipThroughput compute_per_vip_throughput(
    std::span<const AttackIncident> incidents, Direction direction,
    std::uint32_t sampling) {
  PerVipThroughput out;
  out.direction = direction;
  std::array<std::vector<double>, sim::kAttackTypeCount> peaks;
  for (const AttackIncident& inc : incidents) {
    if (inc.direction != direction) continue;
    peaks[sim::index_of(inc.type)].push_back(inc.estimated_peak_pps(sampling));
  }
  for (std::size_t t = 0; t < sim::kAttackTypeCount; ++t) {
    const auto s = util::summarize(peaks[t]);
    out.by_type[t] = {s.p50, s.max, s.count};
  }
  return out;
}

}  // namespace dm::analysis
