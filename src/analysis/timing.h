// Attack timing characterization (paper §5.2, Fig 9 and Fig 10): duration,
// ramp-up, and inter-arrival distributions per attack type, plus the UDP
// flood bimodality decomposition.
#pragma once

#include <array>
#include <span>

#include "detect/incident.h"
#include "util/cdf.h"

namespace dm::analysis {

struct TimingStat {
  double median = 0.0;
  double p99 = 0.0;
  std::uint64_t samples = 0;
};

struct TimingResult {
  netflow::Direction direction = netflow::Direction::kInbound;
  /// Fig 9: duration in minutes per type.
  std::array<TimingStat, sim::kAttackTypeCount> duration{};
  /// Fig 10: inter-arrival minutes (start-to-start on the same VIP) per type.
  std::array<TimingStat, sim::kAttackTypeCount> interarrival{};
  /// §5.2: ramp-up minutes of volume-based attacks.
  std::array<TimingStat, sim::kAttackTypeCount> ramp_up{};
};

[[nodiscard]] TimingResult compute_timing(
    std::span<const detect::AttackIncident> incidents,
    netflow::Direction direction);

/// The §5.2 UDP decomposition: split a type's incidents into a small-peak
/// and a large-peak population at `split_pps` and report each population's
/// median peak and median inter-arrival.
struct BimodalDecomposition {
  double small_fraction = 0.0;
  double small_median_peak_pps = 0.0;
  double small_median_interarrival = 0.0;
  double large_fraction = 0.0;
  double large_median_peak_pps = 0.0;
  double large_median_interarrival = 0.0;
};

[[nodiscard]] BimodalDecomposition decompose_bimodal(
    std::span<const detect::AttackIncident> incidents, sim::AttackType type,
    netflow::Direction direction, std::uint32_t sampling,
    double split_pps = 50'000.0);

}  // namespace dm::analysis
