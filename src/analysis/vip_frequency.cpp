#include "analysis/vip_frequency.h"

#include <algorithm>
#include <map>

namespace dm::analysis {

using detect::AttackIncident;
using netflow::Direction;

VipFrequency compute_vip_frequency(std::span<const AttackIncident> incidents,
                                   Direction direction,
                                   std::uint32_t frequent_threshold) {
  VipFrequency out;
  out.direction = direction;

  // Count incidents per (VIP, start-day). An incident belongs to the day it
  // starts on.
  std::map<std::pair<std::uint32_t, std::int64_t>, std::uint32_t> counts;
  for (const AttackIncident& inc : incidents) {
    if (inc.direction != direction) continue;
    counts[{inc.vip.value(), util::day_of(inc.start)}] += 1;
  }

  std::uint64_t singles = 0;
  std::uint64_t frequent_pairs = 0;
  for (const auto& [key, n] : counts) {
    out.pairs.push_back({netflow::IPv4(key.first), key.second, n});
    out.attacks_per_day.add(static_cast<double>(n));
    out.max_attacks_per_day = std::max(out.max_attacks_per_day, n);
    if (n == 1) ++singles;
    if (n > frequent_threshold) ++frequent_pairs;
  }
  if (!counts.empty()) {
    out.single_attack_fraction =
        static_cast<double>(singles) / static_cast<double>(counts.size());
    out.frequent_fraction =
        static_cast<double>(frequent_pairs) / static_cast<double>(counts.size());
  }

  // Fig 3b/3c: split the attack mix by whether the incident's (VIP, day)
  // pair is occasional or frequent.
  std::array<std::uint64_t, sim::kAttackTypeCount> occ{};
  std::array<std::uint64_t, sim::kAttackTypeCount> freq{};
  std::uint64_t occ_total = 0;
  std::uint64_t freq_total = 0;
  for (const AttackIncident& inc : incidents) {
    if (inc.direction != direction) continue;
    const auto it = counts.find({inc.vip.value(), util::day_of(inc.start)});
    if (it == counts.end()) continue;
    if (it->second > frequent_threshold) {
      freq[sim::index_of(inc.type)] += 1;
      ++freq_total;
    } else {
      occ[sim::index_of(inc.type)] += 1;
      ++occ_total;
    }
  }
  // Both mixes are normalized by the direction's total attacks — matching
  // the paper's "percentage of attacks over total inbound attacks" axis.
  const double total = static_cast<double>(occ_total + freq_total);
  if (total > 0) {
    for (std::size_t t = 0; t < sim::kAttackTypeCount; ++t) {
      out.occasional_mix[t] = static_cast<double>(occ[t]) / total;
      out.frequent_mix[t] = static_cast<double>(freq[t]) / total;
    }
  }
  return out;
}

}  // namespace dm::analysis
