#include "analysis/service_mix.h"

#include <map>
#include <set>

#include "analysis/attribution.h"

namespace dm::analysis {

using cloud::ServiceType;
using detect::AttackIncident;
using detect::MinuteDetection;
using netflow::Direction;
using netflow::FlowRecord;
using sim::AttackType;

namespace {

std::size_t reported_index(ServiceType s) noexcept {
  for (std::size_t i = 0; i < kReportedServiceCount; ++i) {
    if (kReportedServices[i] == s) return i;
  }
  return kReportedServiceCount;  // not reported
}

}  // namespace

ServiceAttackTable compute_service_attack_table(
    const netflow::WindowedTrace& trace,
    std::span<const MinuteDetection> detections,
    std::span<const AttackIncident> incidents) {
  // Victim VIPs and the set of inbound attack types each received.
  std::map<std::uint32_t, std::uint32_t> victim_types;  // vip -> type mask
  for (const AttackIncident& inc : incidents) {
    if (inc.direction != Direction::kInbound) continue;
    victim_types[inc.vip.value()] |= 1u << sim::index_of(inc.type);
  }

  // Attack classes active per (vip, minute) — to filter attack traffic out.
  std::map<std::pair<std::uint32_t, util::Minute>, std::uint32_t> attack_at;
  for (const MinuteDetection& d : detections) {
    if (d.direction != Direction::kInbound) continue;
    attack_at[{d.vip.value(), d.minute}] |= 1u << sim::index_of(d.type);
  }

  // Legitimate inbound traffic per victim VIP, bucketed by service.
  struct Tally {
    std::array<std::uint64_t, kReportedServiceCount> per_service{};
    std::uint64_t total = 0;
  };
  std::map<std::uint32_t, Tally> tallies;

  for (const auto& w : trace.windows()) {
    if (w.direction != Direction::kInbound) continue;
    const auto victim = victim_types.find(w.vip.value());
    if (victim == victim_types.end()) continue;
    std::uint32_t active_mask = 0;
    const auto at = attack_at.find({w.vip.value(), w.minute});
    if (at != attack_at.end()) active_mask = at->second;

    Tally& tally = tallies[w.vip.value()];
    for (const FlowRecord& r : trace.records_of(w)) {
      // Drop records that belong to an attack class active this minute.
      bool is_attack = false;
      for (std::size_t t = 0; t < sim::kAttackTypeCount && !is_attack; ++t) {
        if ((active_mask >> t) & 1u) {
          is_attack = record_matches(sim::kAllAttackTypes[t], r,
                                     Direction::kInbound, nullptr);
        }
      }
      if (is_attack) continue;
      tally.total += r.packets;
      bool known = false;
      const ServiceType s = cloud::service_for_port(r.protocol, r.dst_port, &known);
      if (!known) continue;
      const std::size_t idx = reported_index(s);
      if (idx < kReportedServiceCount) tally.per_service[idx] += r.packets;
    }
  }

  // Apply the 10% rule and cross-tabulate.
  ServiceAttackTable table;
  table.victim_vips = victim_types.size();
  if (table.victim_vips == 0) return table;
  std::array<std::uint64_t, kReportedServiceCount> hosting{};
  std::array<std::array<std::uint64_t, sim::kAttackTypeCount>,
             kReportedServiceCount>
      cells{};

  for (const auto& [vip, mask] : victim_types) {
    const auto it = tallies.find(vip);
    if (it == tallies.end() || it->second.total == 0) continue;
    const Tally& tally = it->second;
    for (std::size_t s = 0; s < kReportedServiceCount; ++s) {
      const double share = static_cast<double>(tally.per_service[s]) /
                           static_cast<double>(tally.total);
      if (share < kServiceTrafficShare) continue;
      hosting[s] += 1;
      for (std::size_t t = 0; t < sim::kAttackTypeCount; ++t) {
        if ((mask >> t) & 1u) cells[s][t] += 1;
      }
    }
  }

  const double denom = static_cast<double>(table.victim_vips) / 100.0;
  for (std::size_t s = 0; s < kReportedServiceCount; ++s) {
    table.hosting_share[s] = static_cast<double>(hosting[s]) / denom;
    for (std::size_t t = 0; t < sim::kAttackTypeCount; ++t) {
      table.cell[s][t] = static_cast<double>(cells[s][t]) / denom;
    }
  }
  return table;
}

OutboundAppTargets compute_outbound_app_targets(
    const netflow::WindowedTrace& trace,
    std::span<const AttackIncident> incidents) {
  OutboundAppTargets out;
  // For each attacking VIP, which application ports its attack traffic hits.
  std::map<std::uint32_t, std::uint32_t> vip_services;  // vip -> service mask
  std::set<std::uint32_t> web_vips;

  for (const AttackIncident& inc : incidents) {
    if (inc.direction != Direction::kOutbound) continue;
    const auto series = trace.series(inc.vip, Direction::kOutbound);
    for (const auto& w : series) {
      if (w.minute < inc.start) continue;
      if (w.minute >= inc.end) break;
      for (const FlowRecord& r : trace.records_of(w)) {
        if (!record_matches(inc.type, r, Direction::kOutbound, nullptr) &&
            inc.type != sim::AttackType::kTds) {
          continue;
        }
        bool known = false;
        const ServiceType s =
            cloud::service_for_port(r.protocol, r.dst_port, &known);
        if (!known) continue;
        const std::size_t idx = reported_index(s);
        if (idx < kReportedServiceCount) {
          vip_services[inc.vip.value()] |= 1u << idx;
          if (s == ServiceType::kHttp || s == ServiceType::kHttps) {
            web_vips.insert(inc.vip.value());
          }
        }
      }
    }
  }

  out.attacking_vips = vip_services.size();
  for (const auto& [vip, mask] : vip_services) {
    for (std::size_t s = 0; s < kReportedServiceCount; ++s) {
      if ((mask >> s) & 1u) out.vips_per_service[s] += 1;
    }
  }
  if (out.attacking_vips > 0) {
    out.web_share = static_cast<double>(web_vips.size()) /
                    static_cast<double>(out.attacking_vips);
  }
  return out;
}

}  // namespace dm::analysis
