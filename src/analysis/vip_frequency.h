// Per-VIP attack frequency (paper §4.1, Fig 3).
//
// Counts attacks per (VIP, day) pair, builds the Fig 3a CDF, and splits the
// attack mix between VIPs with occasional (<= threshold attacks/day) and
// frequent (> threshold) attacks for Fig 3b/3c.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "detect/incident.h"
#include "util/cdf.h"

namespace dm::analysis {

/// One (VIP, day) pair's attack count.
struct VipDayCount {
  netflow::IPv4 vip;
  std::int64_t day = 0;
  std::uint32_t attacks = 0;
};

/// Fig 3 statistics for one direction.
struct VipFrequency {
  netflow::Direction direction = netflow::Direction::kInbound;
  std::vector<VipDayCount> pairs;     ///< every (VIP, day) with >= 1 attack
  util::EmpiricalCdf attacks_per_day; ///< the Fig 3a curve

  /// Fraction of pairs with exactly one attack (§4.1: 53% in / 44% out).
  double single_attack_fraction = 0.0;
  /// Fraction of pairs with more than `frequent_threshold` attacks.
  double frequent_fraction = 0.0;
  std::uint32_t max_attacks_per_day = 0;

  /// Attack-type shares among incidents on occasional vs frequent VIPs
  /// (Fig 3b/3c): each array sums to ~1 over types.
  std::array<double, sim::kAttackTypeCount> occasional_mix{};
  std::array<double, sim::kAttackTypeCount> frequent_mix{};
};

/// The paper's frequent-VIP threshold: "more than 10 attacks per day".
inline constexpr std::uint32_t kFrequentThreshold = 10;

[[nodiscard]] VipFrequency compute_vip_frequency(
    std::span<const detect::AttackIncident> incidents,
    netflow::Direction direction,
    std::uint32_t frequent_threshold = kFrequentThreshold);

}  // namespace dm::analysis
