// Attack overview statistics (paper §3.1, Fig 2): how the detected attacks
// split across the nine types and two directions.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "detect/incident.h"

namespace dm::analysis {

/// Counts and shares of attacks per (type, direction).
struct AttackMix {
  std::array<std::uint64_t, sim::kAttackTypeCount> inbound{};
  std::array<std::uint64_t, sim::kAttackTypeCount> outbound{};
  std::uint64_t inbound_total = 0;
  std::uint64_t outbound_total = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return inbound_total + outbound_total;
  }
  /// Share of *all* attacks (both directions) — the Fig 2 y-axis.
  [[nodiscard]] double share(sim::AttackType t, netflow::Direction d) const noexcept {
    const std::uint64_t n = d == netflow::Direction::kInbound
                                ? inbound[sim::index_of(t)]
                                : outbound[sim::index_of(t)];
    return total() == 0 ? 0.0
                        : static_cast<double>(n) / static_cast<double>(total());
  }
  /// Inbound share of all attacks (§3.1's 35.1% / 64.9% split).
  [[nodiscard]] double inbound_share() const noexcept {
    return total() == 0
               ? 0.0
               : static_cast<double>(inbound_total) / static_cast<double>(total());
  }
};

[[nodiscard]] AttackMix compute_attack_mix(
    std::span<const detect::AttackIncident> incidents);

}  // namespace dm::analysis
