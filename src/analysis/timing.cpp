#include "analysis/timing.h"

#include <algorithm>
#include <tuple>
#include <vector>

#include "util/stats.h"

namespace dm::analysis {

using detect::AttackIncident;
using netflow::Direction;

namespace {

TimingStat stat_of(std::vector<double>& xs) {
  if (xs.empty()) return {};
  std::sort(xs.begin(), xs.end());
  return {util::quantile_sorted(xs, 0.5), util::quantile_sorted(xs, 0.99),
          xs.size()};
}

/// Inter-arrival samples per type: gaps between consecutive incident starts
/// on the same VIP.
std::array<std::vector<double>, sim::kAttackTypeCount> interarrival_samples(
    std::span<const AttackIncident> incidents, Direction direction) {
  // One flat (type, vip, start) vector sorted once replaces the former
  // map-of-vectors accumulator; adjacent entries of the same (type, vip)
  // group yield the same gaps in the same (type asc, vip asc, start asc)
  // emission order.
  struct Start {
    int type;
    std::uint32_t vip;
    util::Minute start;
  };
  std::vector<Start> starts;
  starts.reserve(incidents.size());
  for (const AttackIncident& inc : incidents) {
    if (inc.direction != direction) continue;
    starts.push_back(
        Start{static_cast<int>(inc.type), inc.vip.value(), inc.start});
  }
  std::sort(starts.begin(), starts.end(), [](const Start& a, const Start& b) {
    return std::tie(a.type, a.vip, a.start) < std::tie(b.type, b.vip, b.start);
  });
  std::array<std::vector<double>, sim::kAttackTypeCount> out;
  for (std::size_t i = 1; i < starts.size(); ++i) {
    if (starts[i].type != starts[i - 1].type ||
        starts[i].vip != starts[i - 1].vip) {
      continue;
    }
    out[static_cast<std::size_t>(starts[i].type)].push_back(
        static_cast<double>(starts[i].start - starts[i - 1].start));
  }
  return out;
}

}  // namespace

TimingResult compute_timing(std::span<const AttackIncident> incidents,
                            Direction direction) {
  TimingResult out;
  out.direction = direction;

  std::array<std::vector<double>, sim::kAttackTypeCount> durations;
  std::array<std::vector<double>, sim::kAttackTypeCount> ramps;
  for (const AttackIncident& inc : incidents) {
    if (inc.direction != direction) continue;
    const std::size_t t = sim::index_of(inc.type);
    durations[t].push_back(static_cast<double>(inc.duration()));
    if (sim::is_volume_based(inc.type)) {
      ramps[t].push_back(static_cast<double>(inc.ramp_up_minutes));
    }
  }
  auto gaps = interarrival_samples(incidents, direction);

  for (std::size_t t = 0; t < sim::kAttackTypeCount; ++t) {
    out.duration[t] = stat_of(durations[t]);
    out.interarrival[t] = stat_of(gaps[t]);
    out.ramp_up[t] = stat_of(ramps[t]);
  }
  return out;
}

BimodalDecomposition decompose_bimodal(std::span<const AttackIncident> incidents,
                                       sim::AttackType type, Direction direction,
                                       std::uint32_t sampling, double split_pps) {
  // Assemble (peak, inter-arrival-to-next) per incident, in VIP order: a
  // sorted index vector grouped by (vip, start, original index) replaces
  // the former std::map of per-VIP pointer lists — same grouping, same
  // ascending-VIP walk, same start order within a VIP.
  std::vector<std::uint32_t> order;
  for (std::uint32_t i = 0; i < incidents.size(); ++i) {
    const AttackIncident& inc = incidents[i];
    if (inc.direction != direction || inc.type != type) continue;
    order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    const AttackIncident& x = incidents[a];
    const AttackIncident& y = incidents[b];
    return std::make_tuple(x.vip.value(), x.start, a) <
           std::make_tuple(y.vip.value(), y.start, b);
  });

  std::vector<double> small_peaks, small_gaps, large_peaks, large_gaps;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const AttackIncident& inc = incidents[order[i]];
    const double peak = inc.estimated_peak_pps(sampling);
    const bool small = peak < split_pps;
    (small ? small_peaks : large_peaks).push_back(peak);
    if (i + 1 < order.size() && incidents[order[i + 1]].vip == inc.vip) {
      const double gap =
          static_cast<double>(incidents[order[i + 1]].start - inc.start);
      (small ? small_gaps : large_gaps).push_back(gap);
    }
  }

  BimodalDecomposition d;
  const double total = static_cast<double>(small_peaks.size() + large_peaks.size());
  if (total == 0) return d;
  d.small_fraction = static_cast<double>(small_peaks.size()) / total;
  d.large_fraction = static_cast<double>(large_peaks.size()) / total;
  d.small_median_peak_pps = util::median(small_peaks);
  d.large_median_peak_pps = util::median(large_peaks);
  d.small_median_interarrival = util::median(small_gaps);
  d.large_median_interarrival = util::median(large_gaps);
  return d;
}

}  // namespace dm::analysis
