#include "analysis/timing.h"

#include <algorithm>
#include <map>
#include <vector>

#include "util/stats.h"

namespace dm::analysis {

using detect::AttackIncident;
using netflow::Direction;

namespace {

TimingStat stat_of(std::vector<double>& xs) {
  if (xs.empty()) return {};
  std::sort(xs.begin(), xs.end());
  return {util::quantile_sorted(xs, 0.5), util::quantile_sorted(xs, 0.99),
          xs.size()};
}

/// Inter-arrival samples per type: gaps between consecutive incident starts
/// on the same VIP.
std::array<std::vector<double>, sim::kAttackTypeCount> interarrival_samples(
    std::span<const AttackIncident> incidents, Direction direction) {
  std::map<std::pair<int, std::uint32_t>, std::vector<util::Minute>> starts;
  for (const AttackIncident& inc : incidents) {
    if (inc.direction != direction) continue;
    starts[{static_cast<int>(inc.type), inc.vip.value()}].push_back(inc.start);
  }
  std::array<std::vector<double>, sim::kAttackTypeCount> out;
  for (auto& [key, times] : starts) {
    std::sort(times.begin(), times.end());
    for (std::size_t i = 1; i < times.size(); ++i) {
      out[static_cast<std::size_t>(key.first)].push_back(
          static_cast<double>(times[i] - times[i - 1]));
    }
  }
  return out;
}

}  // namespace

TimingResult compute_timing(std::span<const AttackIncident> incidents,
                            Direction direction) {
  TimingResult out;
  out.direction = direction;

  std::array<std::vector<double>, sim::kAttackTypeCount> durations;
  std::array<std::vector<double>, sim::kAttackTypeCount> ramps;
  for (const AttackIncident& inc : incidents) {
    if (inc.direction != direction) continue;
    const std::size_t t = sim::index_of(inc.type);
    durations[t].push_back(static_cast<double>(inc.duration()));
    if (sim::is_volume_based(inc.type)) {
      ramps[t].push_back(static_cast<double>(inc.ramp_up_minutes));
    }
  }
  auto gaps = interarrival_samples(incidents, direction);

  for (std::size_t t = 0; t < sim::kAttackTypeCount; ++t) {
    out.duration[t] = stat_of(durations[t]);
    out.interarrival[t] = stat_of(gaps[t]);
    out.ramp_up[t] = stat_of(ramps[t]);
  }
  return out;
}

BimodalDecomposition decompose_bimodal(std::span<const AttackIncident> incidents,
                                       sim::AttackType type, Direction direction,
                                       std::uint32_t sampling, double split_pps) {
  // Assemble (peak, inter-arrival-to-next) per incident, keyed by VIP order.
  std::map<std::uint32_t, std::vector<const AttackIncident*>> by_vip;
  for (const AttackIncident& inc : incidents) {
    if (inc.direction != direction || inc.type != type) continue;
    by_vip[inc.vip.value()].push_back(&inc);
  }

  std::vector<double> small_peaks, small_gaps, large_peaks, large_gaps;
  for (auto& [vip, list] : by_vip) {
    std::sort(list.begin(), list.end(),
              [](const AttackIncident* a, const AttackIncident* b) {
                return a->start < b->start;
              });
    for (std::size_t i = 0; i < list.size(); ++i) {
      const double peak = list[i]->estimated_peak_pps(sampling);
      const bool small = peak < split_pps;
      (small ? small_peaks : large_peaks).push_back(peak);
      if (i + 1 < list.size()) {
        const double gap = static_cast<double>(list[i + 1]->start - list[i]->start);
        (small ? small_gaps : large_gaps).push_back(gap);
      }
    }
  }

  BimodalDecomposition d;
  const double total = static_cast<double>(small_peaks.size() + large_peaks.size());
  if (total == 0) return d;
  d.small_fraction = static_cast<double>(small_peaks.size()) / total;
  d.large_fraction = static_cast<double>(large_peaks.size()) / total;
  d.small_median_peak_pps = util::median(small_peaks);
  d.large_median_peak_pps = util::median(large_peaks);
  d.small_median_interarrival = util::median(small_gaps);
  d.large_median_interarrival = util::median(large_gaps);
  return d;
}

}  // namespace dm::analysis
