// Spoofed-source inference (paper §6.1).
//
// "We leverage the Anderson-Darling test to determine if the IP addresses of
// an attack are uniformly distributed (i.e., an attack has spoofed IPs)."
// 67.1% of the inbound TCP SYN floods test as spoofed.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "analysis/attribution.h"
#include "detect/incident.h"
#include "util/anderson_darling.h"

namespace dm::analysis {

struct SpoofVerdict {
  std::uint32_t incident_index = 0;
  bool spoofed = false;
  util::AndersonDarlingResult test;
};

struct SpoofResult {
  std::vector<SpoofVerdict> verdicts;  ///< one per tested incident
  /// Per-type fraction of inbound incidents judged spoofed.
  std::array<double, sim::kAttackTypeCount> spoofed_fraction{};
  std::array<std::uint64_t, sim::kAttackTypeCount> tested{};
};

/// Tests every inbound incident with at least `min_sources` distinct
/// sources. The test statistic is computed over the distinct source
/// addresses scaled into [0, 1).
[[nodiscard]] SpoofResult analyze_spoofing(
    const netflow::WindowedTrace& trace,
    std::span<const detect::AttackIncident> incidents,
    const netflow::PrefixSet* blacklist = nullptr,
    std::size_t min_sources = 8);

/// Convenience: spoof test over a set of remote contributions.
[[nodiscard]] util::AndersonDarlingResult test_sources(
    std::span<const RemoteContribution> remotes);

}  // namespace dm::analysis
