// Internet AS analysis (paper §6, Fig 11-13 and Fig 15).
//
// Methodology per the paper: discard incidents whose sources test as spoofed
// (§6.1), map the remaining remote addresses to ASes, and count an incident
// toward an AS class "if any of its IP is involved in the attack". Shares
// can therefore sum to more than 100% across classes.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "analysis/spoof_analysis.h"
#include "cloud/as_registry.h"
#include "detect/incident.h"

namespace dm::analysis {

inline constexpr std::size_t kAsClassCount = std::size(cloud::kAllAsClasses);

struct AsAnalysisResult {
  netflow::Direction direction = netflow::Direction::kInbound;
  std::uint64_t incidents_total = 0;   ///< incidents of this direction
  std::uint64_t incidents_mapped = 0;  ///< with >= 1 AS-mapped remote

  /// Fig 11a / 15a: share of incidents involving each class.
  std::array<double, kAsClassCount> class_share{};
  /// Fig 11b / 15b: average per-AS share within each class.
  std::array<double, kAsClassCount> per_as_share{};
  /// Fig 12 analogue: share of each *type*'s incidents involving each class.
  std::array<std::array<double, kAsClassCount>, sim::kAttackTypeCount>
      type_class_share{};
  /// Packet share per class (for the packet-weighted anecdotes).
  std::array<double, kAsClassCount> packet_share{};

  /// Concentration: share of incidents involving the single most-involved
  /// AS (the "one AS in Spain ... more than 35%" anecdote).
  double top_as_share = 0.0;
  std::uint32_t top_asn = 0;
  /// Outbound clustering (§6.2): share of incidents where a single AS
  /// carries at least 90% of the mapped attack packets (80% of attacks in
  /// the paper "target hosts in a single AS"). Packet dominance rather than
  /// strict set membership, so stray benign flows sharing the incident's
  /// traffic class don't break the attribution.
  double single_as_fraction = 0.0;
  /// Share of incidents touching the top-10 / top-100 most-targeted ASes.
  double top10_share = 0.0;
  double top100_share = 0.0;
};

/// Runs the full AS attribution for one direction. `spoof` lets the
/// analysis skip spoofed incidents; pass the result of analyze_spoofing
/// (or null to skip no one).
[[nodiscard]] AsAnalysisResult analyze_as(
    const netflow::WindowedTrace& trace,
    std::span<const detect::AttackIncident> incidents,
    const cloud::AsRegistry& ases, netflow::Direction direction,
    const SpoofResult* spoof = nullptr,
    const netflow::PrefixSet* blacklist = nullptr);

/// Geolocation rollup (Fig 14): share of incidents involving each region.
struct GeoResult {
  netflow::Direction direction = netflow::Direction::kInbound;
  std::array<double, std::size(cloud::kAllGeoRegions)> region_share{};
  std::array<double, std::size(cloud::kAllGeoRegions)> packet_share{};
  std::uint64_t incidents_mapped = 0;
};

[[nodiscard]] GeoResult analyze_geo(
    const netflow::WindowedTrace& trace,
    std::span<const detect::AttackIncident> incidents,
    const cloud::AsRegistry& ases, netflow::Direction direction,
    const SpoofResult* spoof = nullptr,
    const netflow::PrefixSet* blacklist = nullptr);

}  // namespace dm::analysis
