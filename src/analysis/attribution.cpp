#include "analysis/attribution.h"

#include <algorithm>
#include <tuple>

namespace dm::analysis {

using netflow::Direction;
using netflow::FlowRecord;
using netflow::OrientedFlow;
using netflow::Protocol;
using sim::AttackType;

bool record_matches(AttackType type, const FlowRecord& r, Direction direction,
                    const netflow::PrefixSet* blacklist) noexcept {
  const OrientedFlow flow{&r, direction};
  namespace ports = netflow::ports;
  switch (type) {
    case AttackType::kSynFlood:
      return r.protocol == Protocol::kTcp && netflow::is_pure_syn(r.tcp_flags);
    case AttackType::kUdpFlood:
      return r.protocol == Protocol::kUdp && r.src_port != ports::kDns;
    case AttackType::kIcmpFlood:
      return r.protocol == Protocol::kIcmp;
    case AttackType::kDnsReflection:
      return r.protocol == Protocol::kUdp && r.src_port == ports::kDns;
    case AttackType::kSpam:
      return r.protocol == Protocol::kTcp && flow.service_port() == ports::kSmtp;
    case AttackType::kBruteForce:
      return r.protocol == Protocol::kTcp &&
             ports::is_remote_admin(flow.service_port());
    case AttackType::kSqlInjection:
      return r.protocol == Protocol::kTcp && ports::is_sql(flow.service_port());
    case AttackType::kPortScan:
      return r.protocol == Protocol::kTcp &&
             (netflow::is_illegal(r.tcp_flags) ||
              netflow::is_bare_rst(r.tcp_flags));
    case AttackType::kTds:
      return blacklist != nullptr && blacklist->contains(flow.remote_ip());
  }
  return false;
}

std::vector<RemoteContribution> incident_remotes(
    const netflow::WindowedTrace& trace, const detect::AttackIncident& incident,
    const netflow::PrefixSet* blacklist) {
  // Sorted-vector accumulator (same pattern as detect/correlator.cpp): one
  // entry per matching record, sorted by remote, then merged in place.
  std::vector<RemoteContribution> entries;
  const auto series = trace.series(incident.vip, incident.direction);
  for (const auto& window : series) {
    if (window.minute < incident.start) continue;
    if (window.minute >= incident.end) break;
    for (const FlowRecord& r : trace.records_of(window)) {
      if (!record_matches(incident.type, r, incident.direction, blacklist)) {
        continue;
      }
      const OrientedFlow flow{&r, incident.direction};
      entries.push_back({flow.remote_ip(), r.packets});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const RemoteContribution& a, const RemoteContribution& b) {
              return std::tie(a.remote, a.packets) <
                     std::tie(b.remote, b.packets);
            });
  std::vector<RemoteContribution> out;
  for (const RemoteContribution& e : entries) {
    if (!out.empty() && out.back().remote == e.remote) {
      out.back().packets += e.packets;
    } else {
      out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const RemoteContribution& a, const RemoteContribution& b) {
              if (a.packets != b.packets) return a.packets > b.packets;
              return a.remote < b.remote;
            });
  return out;
}

}  // namespace dm::analysis
