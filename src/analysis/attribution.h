// Connecting detected incidents back to the raw records that triggered them:
// which remote endpoints, with how many packets. This feeds the spoofing
// test (§6.1), the AS/geo attribution (Fig 11-15), and Table 3's service
// inference.
#pragma once

#include <cstdint>
#include <vector>

#include "detect/incident.h"
#include "netflow/window_aggregator.h"

namespace dm::analysis {

/// One remote endpoint's share of an incident's sampled traffic.
struct RemoteContribution {
  netflow::IPv4 remote;
  std::uint64_t packets = 0;
};

/// True when a record belongs to the traffic class of an attack type (the
/// same per-type filters the detectors use: pure SYN for SYN floods, UDP
/// minus DNS responses for UDP floods, destination-port filters for the
/// application attacks, illegal flags for scans).
[[nodiscard]] bool record_matches(sim::AttackType type,
                                  const netflow::FlowRecord& record,
                                  netflow::Direction direction,
                                  const netflow::PrefixSet* blacklist) noexcept;

/// All remote endpoints of an incident with their sampled packet counts,
/// aggregated across the incident's minutes. `blacklist` is required for
/// TDS incidents (identifies which remotes are TDS hosts).
[[nodiscard]] std::vector<RemoteContribution> incident_remotes(
    const netflow::WindowedTrace& trace, const detect::AttackIncident& incident,
    const netflow::PrefixSet* blacklist = nullptr);

}  // namespace dm::analysis
