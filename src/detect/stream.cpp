#include "detect/stream.h"

#include <algorithm>

namespace dm::detect {

using netflow::Direction;
using netflow::FlowRecord;
using netflow::OrientedFlow;
using netflow::Protocol;
using netflow::VipMinuteStats;

StreamMonitor::StreamMonitor(netflow::PrefixSet cloud_space,
                             const netflow::PrefixSet* blacklist,
                             DetectionConfig config, TimeoutTable timeouts,
                             AlertCallback on_alert,
                             IncidentCallback on_incident)
    : cloud_space_(std::move(cloud_space)),
      blacklist_(blacklist),
      config_(config),
      timeouts_(timeouts),
      on_alert_(std::move(on_alert)),
      on_incident_(std::move(on_incident)) {}

void StreamMonitor::ingest(const FlowRecord& record) {
  ++records_ingested_;
  if (record.minute <= watermark_) {
    ++records_dropped_;  // late arrival; its window is already committed
    return;
  }
  const auto direction = netflow::classify(record, cloud_space_);
  if (!direction) {
    ++records_dropped_;
    return;
  }

  // A record for minute M commits all earlier minutes.
  advance_to(record.minute);

  const OrientedFlow flow{&record, *direction};
  const SeriesKey key{flow.vip().value(), *direction};
  OpenWindow& open = open_minutes_[record.minute][key];
  VipMinuteStats& w = open.stats;
  if (w.flows == 0) {
    w.vip = flow.vip();
    w.minute = record.minute;
    w.direction = *direction;
  }

  w.packets += record.packets;
  w.bytes += record.bytes;
  w.flows += 1;
  switch (record.protocol) {
    case Protocol::kTcp:
      w.tcp_packets += record.packets;
      if (netflow::is_pure_syn(record.tcp_flags)) w.syn_packets += record.packets;
      if (netflow::is_null_scan(record.tcp_flags)) {
        w.null_scan_packets += record.packets;
      }
      if (netflow::is_xmas_scan(record.tcp_flags)) {
        w.xmas_scan_packets += record.packets;
      }
      if (netflow::is_bare_rst(record.tcp_flags)) {
        w.bare_rst_packets += record.packets;
      }
      break;
    case Protocol::kUdp:
      w.udp_packets += record.packets;
      if (record.src_port == netflow::ports::kDns) {
        w.dns_response_packets += record.packets;
      }
      break;
    case Protocol::kIcmp:
      w.icmp_packets += record.packets;
      break;
    case Protocol::kIpEncap:
      w.ipencap_packets += record.packets;
      break;
  }

  const std::uint32_t remote = flow.remote_ip().value();
  if (open.remotes.insert(remote).second) w.unique_remote_ips += 1;

  const std::uint16_t service_port = flow.service_port();
  if (record.protocol == Protocol::kTcp &&
      service_port == netflow::ports::kSmtp) {
    w.smtp_flows += 1;
    w.smtp_packets += record.packets;
    if (open.smtp_remotes.insert(remote).second) w.unique_smtp_remotes += 1;
  }
  if (record.protocol == Protocol::kTcp &&
      netflow::ports::is_remote_admin(service_port)) {
    w.remote_admin_flows += 1;
    w.admin_packets += record.packets;
    if (open.admin_remotes.insert(remote).second) w.unique_admin_remotes += 1;
  }
  if (record.protocol == Protocol::kTcp && netflow::ports::is_sql(service_port)) {
    w.sql_flows += 1;
    w.sql_packets += record.packets;
  }
  if (blacklist_ != nullptr && blacklist_->contains(flow.remote_ip())) {
    w.blacklist_flows += 1;
    w.blacklist_packets += record.packets;
    if (open.blacklist_remotes.insert(remote).second) {
      w.unique_blacklist_remotes += 1;
    }
  }
}

void StreamMonitor::advance_to(util::Minute minute) {
  while (!open_minutes_.empty() && open_minutes_.begin()->first < minute) {
    close_minute(open_minutes_.begin()->first);
  }
  watermark_ = std::max(watermark_, minute - 1);
  expire_incidents(minute);
}

void StreamMonitor::close_minute(util::Minute minute) {
  const auto it = open_minutes_.find(minute);
  if (it == open_minutes_.end()) return;
  for (const auto& [key, open] : it->second) {
    feed_window(key, open);
    ++windows_closed_;
  }
  open_minutes_.erase(it);
}

void StreamMonitor::feed_window(const SeriesKey& key, const OpenWindow& open) {
  auto [det_it, inserted] = detectors_.try_emplace(key, config_);
  const auto verdicts = det_it->second.observe(open.stats);
  for (std::size_t t = 0; t < sim::kAttackTypeCount; ++t) {
    if (!verdicts[t].attack) continue;
    MinuteDetection detection{open.stats.vip, key.direction,
                              sim::kAllAttackTypes[t], open.stats.minute,
                              verdicts[t].sampled_packets,
                              verdicts[t].unique_remotes};
    ++alerts_;
    if (on_alert_) on_alert_(detection);
    feed_detection(detection);
  }
}

void StreamMonitor::feed_detection(const MinuteDetection& d) {
  const std::tuple<std::uint32_t, int, int> key{
      d.vip.value(), static_cast<int>(d.type), static_cast<int>(d.direction)};
  OpenIncident& open = open_incidents_[key];
  AttackIncident& inc = open.incident;
  const util::Minute timeout = timeouts_.of(d.type);

  if (open.active && d.minute - (inc.end - 1) - 1 > timeout) {
    // Gap exceeded: the previous incident is complete.
    ++incidents_;
    if (on_incident_) on_incident_(inc);
    open.active = false;
  }
  if (!open.active) {
    inc = AttackIncident{};
    inc.vip = d.vip;
    inc.direction = d.direction;
    inc.type = d.type;
    inc.start = d.minute;
    open.active = true;
  }
  inc.end = d.minute + 1;
  inc.active_minutes += 1;
  inc.total_sampled_packets += d.sampled_packets;
  if (d.sampled_packets > inc.peak_sampled_ppm) {
    inc.peak_sampled_ppm = d.sampled_packets;
    // Streaming ramp-up: the first minute that set the running peak is the
    // best online estimate; refined whenever the peak grows.
    inc.ramp_up_minutes = d.minute - inc.start;
  }
  inc.peak_unique_remotes = std::max(inc.peak_unique_remotes, d.unique_remotes);
}

void StreamMonitor::expire_incidents(util::Minute now) {
  for (auto& [key, open] : open_incidents_) {
    if (!open.active) continue;
    const util::Minute timeout = timeouts_.of(open.incident.type);
    if (now - (open.incident.end - 1) - 1 > timeout) {
      ++incidents_;
      if (on_incident_) on_incident_(open.incident);
      open.active = false;
    }
  }
}

void StreamMonitor::finish() {
  while (!open_minutes_.empty()) close_minute(open_minutes_.begin()->first);
  for (auto& [key, open] : open_incidents_) {
    if (!open.active) continue;
    ++incidents_;
    if (on_incident_) on_incident_(open.incident);
    open.active = false;
  }
}

}  // namespace dm::detect
