#include "detect/stream.h"

#include <algorithm>
#include <bit>
#include <istream>
#include <ostream>

#include "netflow/trace_io.h"
#include "netflow/varint.h"

namespace dm::detect {

using netflow::Direction;
using netflow::FlowRecord;
using netflow::OrientedFlow;
using netflow::Protocol;
using netflow::VipMinuteStats;

namespace {

// Checkpoint framing: magic + version, then one varint-sized CRC-protected
// payload — the same shape as a trace block, so a damaged checkpoint fails
// loudly instead of resuming from garbage.
constexpr std::uint32_t kCheckpointMagic = 0x4b434d44;  // "DMCK" little-endian
constexpr std::uint16_t kCheckpointVersion = 1;

/// Upper bound on a plausible checkpoint payload. A malformed size varint
/// must not become a multi-gigabyte allocation before the CRC ever gets a
/// chance to reject the frame; 1 GiB is orders of magnitude above any real
/// monitor state.
constexpr std::uint64_t kMaxCheckpointPayload = 1ull << 30;

/// Content hash for duplicate suppression: FNV-1a over every record field.
/// 64 bits keeps accidental collisions (a distinct record silently dropped)
/// below ~2^-32 per open minute at realistic window populations.
[[nodiscard]] std::uint64_t record_hash(const FlowRecord& r) noexcept {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(r.minute));
  mix(r.src_ip.value());
  mix(r.dst_ip.value());
  mix((static_cast<std::uint64_t>(r.src_port) << 16) | r.dst_port);
  mix((static_cast<std::uint64_t>(r.protocol) << 8) |
      static_cast<std::uint64_t>(r.tcp_flags));
  mix(r.packets);
  mix(r.bytes);
  return h;
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  netflow::put_varint(out, v);
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  netflow::put_varint(out, netflow::zigzag64(v));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  netflow::put_varint(out, std::bit_cast<std::uint64_t>(v));
}

/// Serializes an unordered remote-IP set as (count, sorted elements):
/// sorting makes checkpoint bytes a pure function of monitor state.
void put_ip_set(std::vector<std::uint8_t>& out,
                const std::unordered_set<std::uint32_t>& set) {
  // dmlint: allow(unordered-iteration) drained into a sorted vector before any byte is written
  std::vector<std::uint32_t> sorted(set.begin(), set.end());
  std::sort(sorted.begin(), sorted.end());
  put_u64(out, sorted.size());
  for (const std::uint32_t ip : sorted) put_u64(out, ip);
}

/// Serializes a dedup hash set as (count, sorted elements), mirroring
/// put_ip_set: checkpoint bytes stay a pure function of monitor state.
void put_hash_set(std::vector<std::uint8_t>& out,
                  const std::unordered_set<std::uint64_t>& hashes) {
  // dmlint: allow(unordered-iteration) drained into a sorted vector before any byte is written
  std::vector<std::uint64_t> sorted(hashes.begin(), hashes.end());
  std::sort(sorted.begin(), sorted.end());
  put_u64(out, sorted.size());
  for (const std::uint64_t h : sorted) put_u64(out, h);
}

void get_ip_set(netflow::CheckedCursor& in,
                std::unordered_set<std::uint32_t>& set) {
  const std::uint64_t count = in.varint();
  set.clear();
  set.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    set.insert(static_cast<std::uint32_t>(in.varint()));
  }
}

}  // namespace

StreamMonitor::StreamMonitor(netflow::PrefixSet cloud_space,
                             const netflow::PrefixSet* blacklist,
                             DetectionConfig config, TimeoutTable timeouts,
                             AlertCallback on_alert,
                             IncidentCallback on_incident, StreamConfig stream)
    : cloud_space_(std::move(cloud_space)),
      blacklist_(blacklist),
      config_(config),
      timeouts_(timeouts),
      on_alert_(std::move(on_alert)),
      on_incident_(std::move(on_incident)),
      stream_(stream) {}

void StreamMonitor::ingest(const FlowRecord& record) {
  ++records_ingested_;
  // A NetFlow record with zero sampled packets is structurally impossible
  // (a flow exists because at least one packet was sampled) — quarantine
  // rather than poison per-packet counters with flow-count-only windows.
  if (record.packets == 0) {
    ++records_quarantined_;
    return;
  }
  if (record.minute <= watermark_) {
    ++records_late_;  // its window is already committed
    return;
  }
  if (stream_.suppress_duplicates &&
      !seen_[record.minute].insert(record_hash(record)).second) {
    ++records_duplicate_;
    return;
  }
  const auto direction = netflow::classify(record, cloud_space_);
  if (!direction) {
    ++records_unclassifiable_;
    return;
  }

  // A record for minute M moves the watermark to M - reorder_lag and
  // commits everything at or before it. The record's own minute always
  // stays open (it is > watermark_ and M - reorder_lag - 1 <= max_seen_).
  max_seen_ = std::max(max_seen_, record.minute);
  commit_to(max_seen_ - stream_.reorder_lag);

  const OrientedFlow flow{&record, *direction};
  const SeriesKey key{flow.vip().value(), *direction};
  OpenWindow& open = open_minutes_[record.minute][key];
  VipMinuteStats& w = open.stats;
  if (w.flows == 0) {
    w.vip = flow.vip();
    w.minute = record.minute;
    w.direction = *direction;
  }

  w.packets += record.packets;
  w.bytes += record.bytes;
  w.flows += 1;
  switch (record.protocol) {
    case Protocol::kTcp:
      w.tcp_packets += record.packets;
      if (netflow::is_pure_syn(record.tcp_flags)) w.syn_packets += record.packets;
      if (netflow::is_null_scan(record.tcp_flags)) {
        w.null_scan_packets += record.packets;
      }
      if (netflow::is_xmas_scan(record.tcp_flags)) {
        w.xmas_scan_packets += record.packets;
      }
      if (netflow::is_bare_rst(record.tcp_flags)) {
        w.bare_rst_packets += record.packets;
      }
      break;
    case Protocol::kUdp:
      w.udp_packets += record.packets;
      if (record.src_port == netflow::ports::kDns) {
        w.dns_response_packets += record.packets;
      }
      break;
    case Protocol::kIcmp:
      w.icmp_packets += record.packets;
      break;
    case Protocol::kIpEncap:
      w.ipencap_packets += record.packets;
      break;
  }

  const std::uint32_t remote = flow.remote_ip().value();
  if (open.remotes.insert(remote).second) w.unique_remote_ips += 1;

  const std::uint16_t service_port = flow.service_port();
  if (record.protocol == Protocol::kTcp &&
      service_port == netflow::ports::kSmtp) {
    w.smtp_flows += 1;
    w.smtp_packets += record.packets;
    if (open.smtp_remotes.insert(remote).second) w.unique_smtp_remotes += 1;
  }
  if (record.protocol == Protocol::kTcp &&
      netflow::ports::is_remote_admin(service_port)) {
    w.remote_admin_flows += 1;
    w.admin_packets += record.packets;
    if (open.admin_remotes.insert(remote).second) w.unique_admin_remotes += 1;
  }
  if (record.protocol == Protocol::kTcp && netflow::ports::is_sql(service_port)) {
    w.sql_flows += 1;
    w.sql_packets += record.packets;
  }
  if (blacklist_ != nullptr && blacklist_->contains(flow.remote_ip())) {
    w.blacklist_flows += 1;
    w.blacklist_packets += record.packets;
    if (open.blacklist_remotes.insert(remote).second) {
      w.unique_blacklist_remotes += 1;
    }
  }
}

void StreamMonitor::advance_to(util::Minute minute) {
  max_seen_ = std::max(max_seen_, minute);
  commit_to(minute);
}

void StreamMonitor::commit_to(util::Minute minute) {
  while (!open_minutes_.empty() && open_minutes_.begin()->first < minute) {
    close_minute(open_minutes_.begin()->first);
  }
  watermark_ = std::max(watermark_, minute - 1);
  // Dedup sets of committed minutes can no longer be consulted (those
  // minutes reject everything as late) — drop them so memory stays
  // proportional to the open horizon.
  while (!seen_.empty() && seen_.begin()->first <= watermark_) {
    seen_.erase(seen_.begin());
  }
  expire_incidents(minute);
}

void StreamMonitor::close_minute(util::Minute minute) {
  const auto it = open_minutes_.find(minute);
  if (it == open_minutes_.end()) return;
  for (const auto& [key, open] : it->second) {
    feed_window(key, open);
    ++windows_closed_;
  }
  open_minutes_.erase(it);
}

void StreamMonitor::note_outage(util::Minute from, util::Minute to) {
  if (to <= from) return;
  outages_.emplace_back(from, to);
  std::sort(outages_.begin(), outages_.end());
  std::vector<std::pair<util::Minute, util::Minute>> merged;
  merged.reserve(outages_.size());
  for (const auto& o : outages_) {
    if (!merged.empty() && o.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, o.second);
    } else {
      merged.push_back(o);
    }
  }
  outages_ = std::move(merged);
}

std::size_t StreamMonitor::outage_overlap(util::Minute from,
                                          util::Minute to) const noexcept {
  std::size_t total = 0;
  for (const auto& [start, end] : outages_) {
    const util::Minute lo = std::max(from, start);
    const util::Minute hi = std::min(to, end);
    if (hi > lo) total += static_cast<std::size_t>(hi - lo);
  }
  return total;
}

void StreamMonitor::feed_window(const SeriesKey& key, const OpenWindow& open) {
  auto [det_it, inserted] = detectors_.try_emplace(key, config_);
  SeriesState& series = det_it->second;
  // Minutes of the series' silent gap that fall inside a declared outage
  // carry no information: the change-point baselines must not absorb them
  // as zeros (which would both collapse the EWMA and accrue warm-up
  // history during a gap that saw no collector at all).
  const util::Minute reference =
      series.last_minute < 0 ? 0 : series.last_minute + 1;
  const std::size_t excluded =
      open.stats.minute > reference
          ? outage_overlap(reference, open.stats.minute)
          : 0;
  series.last_minute = open.stats.minute;
  const auto verdicts = series.detector.observe(open.stats, excluded);
  for (std::size_t t = 0; t < sim::kAttackTypeCount; ++t) {
    if (!verdicts[t].attack) continue;
    MinuteDetection detection{open.stats.vip, key.direction,
                              sim::kAllAttackTypes[t], open.stats.minute,
                              verdicts[t].sampled_packets,
                              verdicts[t].unique_remotes};
    ++alerts_;
    if (on_alert_) on_alert_(detection);
    feed_detection(detection);
  }
}

void StreamMonitor::feed_detection(const MinuteDetection& d) {
  const std::tuple<std::uint32_t, int, int> key{
      d.vip.value(), static_cast<int>(d.type), static_cast<int>(d.direction)};
  OpenIncident& open = open_incidents_[key];
  AttackIncident& inc = open.incident;
  const util::Minute timeout = timeouts_.of(d.type);

  if (open.active && d.minute - (inc.end - 1) - 1 > timeout) {
    // Gap exceeded: the previous incident is complete.
    ++incidents_;
    if (on_incident_) on_incident_(inc);
    open.active = false;
  }
  if (!open.active) {
    inc = AttackIncident{};
    inc.vip = d.vip;
    inc.direction = d.direction;
    inc.type = d.type;
    inc.start = d.minute;
    open.active = true;
  }
  inc.end = d.minute + 1;
  inc.active_minutes += 1;
  inc.total_sampled_packets += d.sampled_packets;
  if (d.sampled_packets > inc.peak_sampled_ppm) {
    inc.peak_sampled_ppm = d.sampled_packets;
    // Streaming ramp-up: the first minute that set the running peak is the
    // best online estimate; refined whenever the peak grows.
    inc.ramp_up_minutes = d.minute - inc.start;
  }
  inc.peak_unique_remotes = std::max(inc.peak_unique_remotes, d.unique_remotes);
}

void StreamMonitor::expire_incidents(util::Minute now) {
  for (auto& [key, open] : open_incidents_) {
    if (!open.active) continue;
    const util::Minute timeout = timeouts_.of(open.incident.type);
    if (now - (open.incident.end - 1) - 1 > timeout) {
      ++incidents_;
      if (on_incident_) on_incident_(open.incident);
      open.active = false;
    }
  }
}

void StreamMonitor::finish() {
  while (!open_minutes_.empty()) {
    const util::Minute minute = open_minutes_.begin()->first;
    close_minute(minute);
    watermark_ = std::max(watermark_, minute);
  }
  seen_.clear();
  for (auto& [key, open] : open_incidents_) {
    if (!open.active) continue;
    ++incidents_;
    if (on_incident_) on_incident_(open.incident);
    open.active = false;
  }
}

std::size_t StreamMonitor::open_window_count() const noexcept {
  std::size_t total = 0;
  for (const auto& [minute, series_map] : open_minutes_) {
    total += series_map.size();
  }
  return total;
}

std::uint64_t StreamMonitor::approx_state_bytes() const noexcept {
  // Entry sizes plus set payloads: a stable gauge of the state the
  // checkpoint would serialize, cheap enough to walk once per accounting
  // minute. Deliberately ignores allocator overhead and hash-table load
  // factors so the number is identical across runs and platforms.
  std::uint64_t bytes = 0;
  for (const auto& [minute, series_map] : open_minutes_) {
    bytes += sizeof(minute) + 48;  // map node overhead estimate
    for (const auto& [key, open] : series_map) {
      bytes += sizeof(key) + sizeof(OpenWindow);
      bytes += 4 * (open.remotes.size() + open.admin_remotes.size() +
                    open.smtp_remotes.size() + open.blacklist_remotes.size());
    }
  }
  bytes += detectors_.size() * (sizeof(SeriesKey) + sizeof(SeriesState) + 48);
  bytes += open_incidents_.size() * (sizeof(OpenIncident) + 72);
  bytes += outages_.size() * sizeof(outages_[0]);
  for (const auto& [minute, hashes] : seen_) {
    bytes += sizeof(minute) + 48 + 8 * hashes.size();
  }
  return bytes;
}

void StreamMonitor::checkpoint(std::ostream& out) const {
  std::vector<std::uint8_t> payload;

  // Watermarks and counters.
  put_i64(payload, watermark_);
  put_i64(payload, max_seen_);
  put_u64(payload, records_ingested_);
  put_u64(payload, records_late_);
  put_u64(payload, records_unclassifiable_);
  put_u64(payload, records_duplicate_);
  put_u64(payload, records_quarantined_);
  put_u64(payload, windows_closed_);
  put_u64(payload, alerts_);
  put_u64(payload, incidents_);

  // Declared outages.
  put_u64(payload, outages_.size());
  for (const auto& [from, to] : outages_) {
    put_i64(payload, from);
    put_i64(payload, to);
  }

  // Open windows. std::map iteration gives deterministic order.
  put_u64(payload, open_minutes_.size());
  for (const auto& [minute, series_map] : open_minutes_) {
    put_i64(payload, minute);
    put_u64(payload, series_map.size());
    for (const auto& [key, open] : series_map) {
      put_u64(payload, key.vip);
      put_u64(payload, static_cast<std::uint64_t>(key.direction));
      // dmlint: covers(open, OpenWindow)
      // dmlint: covers(w, VipMinuteStats)
      const VipMinuteStats& w = open.stats;
      put_u64(payload, w.vip.value());
      put_i64(payload, w.minute);
      put_u64(payload, static_cast<std::uint64_t>(w.direction));
      put_u64(payload, w.packets);
      put_u64(payload, w.bytes);
      put_u64(payload, w.tcp_packets);
      put_u64(payload, w.udp_packets);
      put_u64(payload, w.icmp_packets);
      put_u64(payload, w.ipencap_packets);
      put_u64(payload, w.syn_packets);
      put_u64(payload, w.null_scan_packets);
      put_u64(payload, w.xmas_scan_packets);
      put_u64(payload, w.bare_rst_packets);
      put_u64(payload, w.dns_response_packets);
      put_u64(payload, w.flows);
      put_u64(payload, w.unique_remote_ips);
      put_u64(payload, w.smtp_flows);
      put_u64(payload, w.unique_smtp_remotes);
      put_u64(payload, w.remote_admin_flows);
      put_u64(payload, w.unique_admin_remotes);
      put_u64(payload, w.sql_flows);
      put_u64(payload, w.smtp_packets);
      put_u64(payload, w.admin_packets);
      put_u64(payload, w.sql_packets);
      put_u64(payload, w.blacklist_flows);
      put_u64(payload, w.unique_blacklist_remotes);
      put_u64(payload, w.blacklist_packets);
      put_u64(payload, w.first_record);
      put_u64(payload, w.last_record);
      // dmlint: covers-end(w)
      put_ip_set(payload, open.remotes);
      put_ip_set(payload, open.admin_remotes);
      put_ip_set(payload, open.smtp_remotes);
      put_ip_set(payload, open.blacklist_remotes);
      // dmlint: covers-end(open)
    }
  }

  // Detector baselines.
  put_u64(payload, detectors_.size());
  for (const auto& [key, series] : detectors_) {
    put_u64(payload, key.vip);
    put_u64(payload, static_cast<std::uint64_t>(key.direction));
    // dmlint: covers(series, SeriesState)
    put_i64(payload, series.last_minute);
    const SeriesDetector::StateArray states = series.detector.state();
    // dmlint: covers-end(series)
    // dmlint: covers(s, State)
    for (const ChangePointDetector::State& s : states) {
      put_f64(payload, s.ewma_value);
      put_u64(payload, s.observations);
      put_i64(payload, s.last_minute);
    }
    // dmlint: covers-end(s)
  }

  // Incidents (including inactive slots — their counters already fired).
  put_u64(payload, open_incidents_.size());
  for (const auto& [key, open] : open_incidents_) {
    put_u64(payload, std::get<0>(key));
    put_i64(payload, std::get<1>(key));
    put_i64(payload, std::get<2>(key));
    // dmlint: covers(open, OpenIncident)
    // dmlint: covers(inc, AttackIncident)
    put_u64(payload, open.active ? 1 : 0);
    const AttackIncident& inc = open.incident;
    put_u64(payload, inc.vip.value());
    put_u64(payload, static_cast<std::uint64_t>(inc.direction));
    put_i64(payload, static_cast<std::int64_t>(inc.type));
    put_i64(payload, inc.start);
    put_i64(payload, inc.end);
    put_u64(payload, inc.active_minutes);
    put_u64(payload, inc.total_sampled_packets);
    put_u64(payload, inc.peak_sampled_ppm);
    put_u64(payload, inc.peak_unique_remotes);
    put_i64(payload, inc.ramp_up_minutes);
    // dmlint: covers-end(inc)
    // dmlint: covers-end(open)
  }

  // Dedup hashes of still-open minutes, sorted for determinism.
  put_u64(payload, seen_.size());
  for (const auto& [minute, hashes] : seen_) {
    put_i64(payload, minute);
    put_hash_set(payload, hashes);
  }

  // Frame: magic | version | payload-size varint | payload | crc32.
  std::vector<std::uint8_t> frame;
  frame.reserve(payload.size() + 24);
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<std::uint8_t>(kCheckpointMagic >> (8 * i)));
  }
  frame.push_back(static_cast<std::uint8_t>(kCheckpointVersion & 0xff));
  frame.push_back(static_cast<std::uint8_t>(kCheckpointVersion >> 8));
  put_u64(frame, payload.size());
  frame.insert(frame.end(), payload.begin(), payload.end());
  const std::uint32_t crc = netflow::crc32(payload);
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  out.write(reinterpret_cast<const char*>(frame.data()),
            static_cast<std::streamsize>(frame.size()));
}

void StreamMonitor::restore(std::istream& in) {
  // Frame validation happens in full — header, size, payload bytes, CRC —
  // before a single payload varint is decoded, and decoding lands in local
  // state swapped in only at the very end. Every exit path before the final
  // swap therefore leaves this monitor byte-identical to its pre-call
  // state, including on empty and truncated streams.
  const auto read_bytes = [&in](std::uint8_t* dst, std::size_t n,
                                const char* what) {
    in.read(reinterpret_cast<char*>(dst), static_cast<std::streamsize>(n));
    if (static_cast<std::size_t>(in.gcount()) != n) {
      throw CheckpointError(CheckpointError::Kind::kTruncated,
                            std::string("checkpoint: truncated ") + what);
    }
  };

  std::uint8_t head[6];
  read_bytes(head, sizeof head, "header");
  const std::uint32_t magic = static_cast<std::uint32_t>(head[0]) |
                              (static_cast<std::uint32_t>(head[1]) << 8) |
                              (static_cast<std::uint32_t>(head[2]) << 16) |
                              (static_cast<std::uint32_t>(head[3]) << 24);
  if (magic != kCheckpointMagic) {
    throw CheckpointError(CheckpointError::Kind::kBadMagic,
                          "checkpoint: bad magic (not a DMCK checkpoint)");
  }
  const std::uint16_t version = static_cast<std::uint16_t>(
      head[4] | (static_cast<std::uint16_t>(head[5]) << 8));
  if (version != kCheckpointVersion) {
    throw CheckpointError(
        CheckpointError::Kind::kBadVersion,
        "checkpoint: unsupported version " + std::to_string(version));
  }

  std::uint64_t payload_size = 0;
  int shift = 0;
  for (;;) {
    std::uint8_t b;
    read_bytes(&b, 1, "payload size");
    if (shift > 63) {
      throw CheckpointError(CheckpointError::Kind::kOversized,
                            "checkpoint: oversized payload varint");
    }
    payload_size |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  // A corrupt size varint must fail the size check, not become a huge
  // allocation: the cap rejects it before the vector is ever sized.
  if (payload_size > kMaxCheckpointPayload) {
    throw CheckpointError(
        CheckpointError::Kind::kOversized,
        "checkpoint: implausible payload size " + std::to_string(payload_size));
  }

  std::vector<std::uint8_t> payload(payload_size);
  if (payload_size > 0) read_bytes(payload.data(), payload.size(), "payload");
  std::uint8_t crc_bytes[4];
  read_bytes(crc_bytes, sizeof crc_bytes, "CRC");
  const std::uint32_t expected = static_cast<std::uint32_t>(crc_bytes[0]) |
                                 (static_cast<std::uint32_t>(crc_bytes[1]) << 8) |
                                 (static_cast<std::uint32_t>(crc_bytes[2]) << 16) |
                                 (static_cast<std::uint32_t>(crc_bytes[3]) << 24);
  const std::uint32_t actual = netflow::crc32(payload);
  if (expected != actual) {
    throw CheckpointError(CheckpointError::Kind::kCrcMismatch,
                          "checkpoint: CRC mismatch");
  }

  netflow::CheckedCursor cur(payload, "checkpoint");
  const auto get_u64 = [&cur] { return cur.varint(); };
  const auto get_i64 = [&cur] { return netflow::unzigzag64(cur.varint()); };
  const auto get_f64 = [&cur] { return std::bit_cast<double>(cur.varint()); };

  // Decode into fresh state so a failure mid-payload (impossible after the
  // CRC check short of a version-1 encoder bug, but cheap to guard) leaves
  // the monitor untouched.
  decltype(open_minutes_) open_minutes;
  decltype(detectors_) detectors;
  decltype(open_incidents_) open_incidents;
  decltype(outages_) outages;
  decltype(seen_) seen;

  util::Minute watermark = 0;
  util::Minute max_seen = 0;
  std::uint64_t ingested = 0;
  std::uint64_t late = 0;
  std::uint64_t unclassifiable = 0;
  std::uint64_t duplicate = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t closed = 0;
  std::uint64_t alerts = 0;
  std::uint64_t incidents = 0;

  // A CRC-valid payload that still fails to decode (a version-1 encoder bug,
  // or a 2^-32 CRC collision over damaged bytes) surfaces as a structured
  // kMalformedPayload, and the monitor stays untouched.
  try {
  watermark = get_i64();
  max_seen = get_i64();
  ingested = get_u64();
  late = get_u64();
  unclassifiable = get_u64();
  duplicate = get_u64();
  quarantined = get_u64();
  closed = get_u64();
  alerts = get_u64();
  incidents = get_u64();

  const std::uint64_t outage_count = get_u64();
  outages.reserve(outage_count);
  for (std::uint64_t i = 0; i < outage_count; ++i) {
    const util::Minute from = get_i64();
    const util::Minute to = get_i64();
    outages.emplace_back(from, to);
  }

  const std::uint64_t minute_count = get_u64();
  for (std::uint64_t m = 0; m < minute_count; ++m) {
    const util::Minute minute = get_i64();
    auto& series_map = open_minutes[minute];
    const std::uint64_t series_count = get_u64();
    for (std::uint64_t s = 0; s < series_count; ++s) {
      SeriesKey key;
      key.vip = static_cast<std::uint32_t>(get_u64());
      key.direction = static_cast<Direction>(get_u64());
      // dmlint: covers(open, OpenWindow)
      // dmlint: covers(w, VipMinuteStats)
      OpenWindow& open = series_map[key];
      VipMinuteStats& w = open.stats;
      w.vip = netflow::IPv4(static_cast<std::uint32_t>(get_u64()));
      w.minute = get_i64();
      w.direction = static_cast<Direction>(get_u64());
      w.packets = get_u64();
      w.bytes = get_u64();
      w.tcp_packets = get_u64();
      w.udp_packets = get_u64();
      w.icmp_packets = get_u64();
      w.ipencap_packets = get_u64();
      w.syn_packets = get_u64();
      w.null_scan_packets = get_u64();
      w.xmas_scan_packets = get_u64();
      w.bare_rst_packets = get_u64();
      w.dns_response_packets = get_u64();
      w.flows = static_cast<std::uint32_t>(get_u64());
      w.unique_remote_ips = static_cast<std::uint32_t>(get_u64());
      w.smtp_flows = static_cast<std::uint32_t>(get_u64());
      w.unique_smtp_remotes = static_cast<std::uint32_t>(get_u64());
      w.remote_admin_flows = static_cast<std::uint32_t>(get_u64());
      w.unique_admin_remotes = static_cast<std::uint32_t>(get_u64());
      w.sql_flows = static_cast<std::uint32_t>(get_u64());
      w.smtp_packets = get_u64();
      w.admin_packets = get_u64();
      w.sql_packets = get_u64();
      w.blacklist_flows = static_cast<std::uint32_t>(get_u64());
      w.unique_blacklist_remotes = static_cast<std::uint32_t>(get_u64());
      w.blacklist_packets = get_u64();
      w.first_record = static_cast<std::uint32_t>(get_u64());
      w.last_record = static_cast<std::uint32_t>(get_u64());
      // dmlint: covers-end(w)
      get_ip_set(cur, open.remotes);
      get_ip_set(cur, open.admin_remotes);
      get_ip_set(cur, open.smtp_remotes);
      get_ip_set(cur, open.blacklist_remotes);
      // dmlint: covers-end(open)
    }
  }

  const std::uint64_t detector_count = get_u64();
  for (std::uint64_t i = 0; i < detector_count; ++i) {
    SeriesKey key;
    key.vip = static_cast<std::uint32_t>(get_u64());
    key.direction = static_cast<Direction>(get_u64());
    auto [it, inserted] = detectors.try_emplace(key, config_);
    // dmlint: covers(series, SeriesState)
    SeriesState& series = it->second;
    series.last_minute = get_i64();
    SeriesDetector::StateArray states;
    // dmlint: covers(s, State)
    for (ChangePointDetector::State& s : states) {
      s.ewma_value = get_f64();
      s.observations = get_u64();
      s.last_minute = get_i64();
    }
    // dmlint: covers-end(s)
    series.detector.restore(states);
    // dmlint: covers-end(series)
  }

  const std::uint64_t incident_count = get_u64();
  for (std::uint64_t i = 0; i < incident_count; ++i) {
    const std::uint32_t vip = static_cast<std::uint32_t>(get_u64());
    const int type = static_cast<int>(get_i64());
    const int dir = static_cast<int>(get_i64());
    // dmlint: covers(open, OpenIncident)
    // dmlint: covers(inc, AttackIncident)
    OpenIncident& open = open_incidents[{vip, type, dir}];
    open.active = get_u64() != 0;
    AttackIncident& inc = open.incident;
    inc.vip = netflow::IPv4(static_cast<std::uint32_t>(get_u64()));
    inc.direction = static_cast<Direction>(get_u64());
    inc.type = static_cast<sim::AttackType>(get_i64());
    inc.start = get_i64();
    inc.end = get_i64();
    inc.active_minutes = static_cast<std::uint32_t>(get_u64());
    inc.total_sampled_packets = get_u64();
    inc.peak_sampled_ppm = get_u64();
    inc.peak_unique_remotes = static_cast<std::uint32_t>(get_u64());
    inc.ramp_up_minutes = get_i64();
    // dmlint: covers-end(inc)
    // dmlint: covers-end(open)
  }

  const std::uint64_t seen_count = get_u64();
  for (std::uint64_t i = 0; i < seen_count; ++i) {
    const util::Minute minute = get_i64();
    auto& hashes = seen[minute];
    const std::uint64_t hash_count = get_u64();
    hashes.reserve(hash_count);
    for (std::uint64_t h = 0; h < hash_count; ++h) hashes.insert(get_u64());
  }

  } catch (const CheckpointError&) {
    throw;
  } catch (const FormatError& e) {
    throw CheckpointError(CheckpointError::Kind::kMalformedPayload, e.what());
  }

  if (!cur.exhausted()) {
    throw CheckpointError(CheckpointError::Kind::kTrailingBytes,
                          "checkpoint: trailing bytes after payload");
  }

  open_minutes_ = std::move(open_minutes);
  detectors_ = std::move(detectors);
  open_incidents_ = std::move(open_incidents);
  outages_ = std::move(outages);
  seen_ = std::move(seen);
  watermark_ = watermark;
  max_seen_ = max_seen;
  records_ingested_ = ingested;
  records_late_ = late;
  records_unclassifiable_ = unclassifiable;
  records_duplicate_ = duplicate;
  records_quarantined_ = quarantined;
  windows_closed_ = closed;
  alerts_ = alerts;
  incidents_ = incidents;
}

}  // namespace dm::detect
