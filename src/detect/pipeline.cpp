#include "detect/pipeline.h"

namespace dm::detect {

using netflow::VipMinuteStats;
using netflow::WindowedTrace;

std::vector<MinuteDetection> DetectionPipeline::detect_minutes(
    const WindowedTrace& trace) const {
  std::vector<MinuteDetection> out;
  const auto windows = trace.windows();

  std::size_t i = 0;
  while (i < windows.size()) {
    // One contiguous (vip, direction) series.
    const netflow::IPv4 vip = windows[i].vip;
    const netflow::Direction dir = windows[i].direction;
    SeriesDetector detector(config_);
    for (; i < windows.size() && windows[i].vip == vip &&
           windows[i].direction == dir;
         ++i) {
      const VipMinuteStats& w = windows[i];
      const auto verdicts = detector.observe(w);
      for (std::size_t t = 0; t < sim::kAttackTypeCount; ++t) {
        if (!verdicts[t].attack) continue;
        out.push_back(MinuteDetection{
            vip, dir, sim::kAllAttackTypes[t], w.minute,
            verdicts[t].sampled_packets, verdicts[t].unique_remotes});
      }
    }
  }
  return out;
}

DetectionResult DetectionPipeline::run(const WindowedTrace& trace) const {
  DetectionResult result;
  result.minutes = detect_minutes(trace);
  result.incidents = build_incidents(result.minutes, timeouts_);
  return result;
}

}  // namespace dm::detect
