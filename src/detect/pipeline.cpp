#include "detect/pipeline.h"

#include "exec/parallel.h"

namespace dm::detect {

using netflow::VipMinuteStats;
using netflow::WindowedTrace;

std::vector<MinuteDetection> DetectionPipeline::detect_minutes(
    const WindowedTrace& trace, exec::ThreadPool* pool) const {
  const auto windows = trace.windows();

  // Series boundaries: one contiguous (vip, direction) slice per series.
  // Detector state never crosses a boundary, so series shard freely; shard
  // results concatenate in series order, matching the serial scan.
  std::vector<std::size_t> starts;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    if (i == 0 || windows[i].vip != windows[i - 1].vip ||
        windows[i].direction != windows[i - 1].direction) {
      starts.push_back(i);
    }
  }
  starts.push_back(windows.size());
  const std::size_t series_count = starts.empty() ? 0 : starts.size() - 1;

  using DetectionVec = std::vector<MinuteDetection>;
  std::vector<DetectionVec> shards = exec::parallel_map_chunks<DetectionVec>(
      pool, series_count, [&](std::size_t lo, std::size_t hi) {
        DetectionVec out;
        for (std::size_t s = lo; s < hi; ++s) {
          // One batch call per series: the whole window slice streams
          // through the detector bank without a per-window TU crossing.
          SeriesDetector detector(config_);
          detector.observe_series(
              windows.subspan(starts[s], starts[s + 1] - starts[s]), out);
        }
        return out;
      });
  return exec::concat(std::move(shards));
}

DetectionResult DetectionPipeline::run(const WindowedTrace& trace,
                                       exec::ThreadPool* pool) const {
  DetectionResult result;
  result.minutes = detect_minutes(trace, pool);
  result.incidents = build_incidents(result.minutes, timeouts_);
  return result;
}

}  // namespace dm::detect
