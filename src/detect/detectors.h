// The four per-window detection methods of the paper (§2.2, Table 1):
// volume-based (sequential change-point vs an EWMA baseline), spread-based
// (fan-in/out and connection-count spikes), signature-based (illegal TCP
// flags), and communication-pattern-based (TDS blacklist contact).
//
// Detectors are streaming: feed the one-minute windows of a single
// (VIP, direction) series in time order. Silent minutes between windows are
// absorbed as zeros, so a long-dormant VIP whose first traffic is a flood
// alarms immediately (the Fig 5 case study path).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "netflow/window_aggregator.h"
#include "sim/attack_type.h"
#include "util/ewma.h"
#include "util/time.h"

namespace dm::detect {

struct MinuteDetection;  // incident.h

/// Tunable thresholds; defaults are the paper's (§2.2), expressed over
/// *sampled* counts at 1:4096.
struct DetectionConfig {
  /// EWMA baseline span: "the past 10 time windows".
  std::size_t ewma_window = 10;
  /// Volume change threshold: "100 packets per minute in NetFlow ...
  /// corresponding to an estimated value of about 7K pps".
  double volume_change_threshold = 100.0;
  /// Spread thresholds: "10 and 20 Internet IPs ... for brute-force and
  /// spam ... and 30 connections for SQL".
  double brute_force_unique_ips = 10.0;
  double spam_unique_ips = 20.0;
  double sql_connections = 30.0;
  /// Brute-force's second feature (Table 1 lists "fan-in/out ratio,
  /// #conn/min"): a connection-count spike alone also alarms, which is what
  /// catches few-host password sweeps like the §4.3 two-host subnet scan.
  double brute_force_connections = 30.0;
  /// Minutes of history (observations plus counted silence) a change-point
  /// baseline needs before it may alarm. Prevents the first windows of the
  /// trace from alarming on a cold baseline; VIPs that go quiet mid-trace
  /// accumulate history through their silent minutes, so the dormant-VIP
  /// cold start (Fig 5) still alarms.
  std::size_t min_history = 3;
  /// Bare-RST packets per window that count as scan backscatter.
  std::uint64_t rst_scan_packets = 3;
  /// TDS flows per window that mark malicious web activity.
  std::uint32_t blacklist_flows = 1;
};

/// What one detector family reports for one window.
struct WindowVerdict {
  bool attack = false;
  /// Sampled attack packets attributed to this type in the window.
  std::uint64_t sampled_packets = 0;
  /// Distinct remote endpoints involved (where the family measures it).
  std::uint32_t unique_remotes = 0;
};

/// Sequential change-point detector over one traffic-class counter.
/// Alarm when (value - EWMA(past windows)) exceeds the threshold; alarmed
/// windows are NOT absorbed into the baseline, so sustained attacks stay
/// visible for their whole duration.
class ChangePointDetector {
 public:
  ChangePointDetector(std::size_t ewma_window, double change_threshold,
                      std::size_t min_history = 3) noexcept;

  /// Advances to `minute` (absorbing the silent gap as zeros) and tests the
  /// window's value. Call with non-decreasing minutes.
  /// `excluded_silence` subtracts that many of the gap's silent minutes
  /// from the zero-absorption — the missing-minute contract: a declared
  /// collector outage is "no data", not "no traffic", so it must neither
  /// decay the baseline nor accrue warm-up history.
  [[nodiscard]] bool observe(util::Minute minute, double value,
                             std::size_t excluded_silence = 0) noexcept;

  [[nodiscard]] double baseline() const noexcept { return ewma_.value(); }

  /// Complete serializable state (paired with the constructor's config).
  struct State {
    // dmlint: checkpointed
    double ewma_value = 0.0;
    std::uint64_t observations = 0;
    util::Minute last_minute = -1;
  };
  [[nodiscard]] State state() const noexcept {
    return {ewma_.value(), ewma_.count(), last_minute_};
  }
  void restore(const State& s) noexcept {
    ewma_.set_state(s.ewma_value, static_cast<std::size_t>(s.observations));
    last_minute_ = s.last_minute;
  }

 private:
  util::Ewma ewma_;
  double threshold_;
  std::size_t min_history_;
  util::Minute last_minute_ = -1;
};

/// All per-type detectors for one (VIP, direction) series.
class SeriesDetector {
 public:
  explicit SeriesDetector(const DetectionConfig& config) noexcept;

  /// Verdicts for one window, indexed by sim::AttackType.
  /// `excluded_silence` is forwarded to every change-point baseline (see
  /// ChangePointDetector::observe) for declared collector outages.
  using Verdicts = std::array<WindowVerdict, sim::kAttackTypeCount>;
  [[nodiscard]] Verdicts observe(const netflow::VipMinuteStats& window,
                                 std::size_t excluded_silence = 0) noexcept;

  /// Batch counterpart of observe(): feeds one whole (VIP, direction)
  /// series of windows in time order, appending a MinuteDetection per
  /// alarming (window, type) pair. Exactly the arithmetic (and hence
  /// output) of the per-window observe() loop it replaces in the detection
  /// pipeline — but the loop lives next to the change-point updates, so
  /// the feature extraction over each window batch stays in-cache and
  /// inlined instead of crossing a TU boundary per window.
  void observe_series(std::span<const netflow::VipMinuteStats> series,
                      std::vector<MinuteDetection>& out);

  /// Serializable state: one entry per change-point baseline, in a fixed
  /// order. Restore into a SeriesDetector built with the same config.
  static constexpr std::size_t kChangePointCount = 8;
  using StateArray = std::array<ChangePointDetector::State, kChangePointCount>;
  [[nodiscard]] StateArray state() const noexcept;
  void restore(const StateArray& states) noexcept;

 private:
  DetectionConfig config_;
  ChangePointDetector syn_;
  ChangePointDetector udp_;
  ChangePointDetector icmp_;
  ChangePointDetector dns_;
  ChangePointDetector spam_spread_;
  ChangePointDetector admin_spread_;
  ChangePointDetector admin_conn_;
  ChangePointDetector sql_conn_;
};

}  // namespace dm::detect
