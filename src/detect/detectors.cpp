#include "detect/detectors.h"

#include "detect/incident.h"

namespace dm::detect {

using netflow::VipMinuteStats;
using sim::AttackType;

ChangePointDetector::ChangePointDetector(std::size_t ewma_window,
                                         double change_threshold,
                                         std::size_t min_history) noexcept
    : ewma_(util::Ewma::for_window(ewma_window)),
      threshold_(change_threshold),
      min_history_(min_history) {}

bool ChangePointDetector::observe(util::Minute minute, double value,
                                  std::size_t excluded_silence) noexcept {
  // Treat silence since the previous window (or since the trace start) as
  // zero-valued observations — minus any minutes a declared collector
  // outage excludes, which carry no information either way.
  const util::Minute reference = last_minute_ < 0 ? 0 : last_minute_ + 1;
  if (minute > reference) {
    std::size_t steps = static_cast<std::size_t>(minute - reference);
    steps = steps > excluded_silence ? steps - excluded_silence : 0;
    ewma_.decay(steps);
  }
  last_minute_ = minute;

  // The very first windows of the trace cannot alarm: a cold baseline would
  // flag every series that simply starts busy, and would then stay frozen
  // forever. Counted silent minutes contribute history, so a mid-trace
  // dormant VIP still alarms on its first real window.
  const bool warm = ewma_.count() >= min_history_;
  const bool alarm = warm && value - ewma_.value() > threshold_;
  if (!alarm) {
    ewma_.update(value);
  }
  return alarm;
}

SeriesDetector::SeriesDetector(const DetectionConfig& config) noexcept
    : config_(config),
      syn_(config.ewma_window, config.volume_change_threshold, config.min_history),
      udp_(config.ewma_window, config.volume_change_threshold, config.min_history),
      icmp_(config.ewma_window, config.volume_change_threshold, config.min_history),
      dns_(config.ewma_window, config.volume_change_threshold, config.min_history),
      spam_spread_(config.ewma_window, config.spam_unique_ips, config.min_history),
      admin_spread_(config.ewma_window, config.brute_force_unique_ips,
                    config.min_history),
      admin_conn_(config.ewma_window, config.brute_force_connections,
                  config.min_history),
      sql_conn_(config.ewma_window, config.sql_connections, config.min_history) {}

SeriesDetector::StateArray SeriesDetector::state() const noexcept {
  return {syn_.state(),         udp_.state(),        icmp_.state(),
          dns_.state(),         spam_spread_.state(), admin_spread_.state(),
          admin_conn_.state(),  sql_conn_.state()};
}

void SeriesDetector::restore(const StateArray& states) noexcept {
  syn_.restore(states[0]);
  udp_.restore(states[1]);
  icmp_.restore(states[2]);
  dns_.restore(states[3]);
  spam_spread_.restore(states[4]);
  admin_spread_.restore(states[5]);
  admin_conn_.restore(states[6]);
  sql_conn_.restore(states[7]);
}

SeriesDetector::Verdicts SeriesDetector::observe(
    const VipMinuteStats& w, std::size_t excluded_silence) noexcept {
  Verdicts v{};
  const std::size_t excl = excluded_silence;

  // --- Volume-based (§2.2): per-protocol packet spikes. DNS responses are
  // carved out of the UDP class so reflection is not double-counted.
  const std::uint64_t udp_flood_packets =
      w.udp_packets >= w.dns_response_packets
          ? w.udp_packets - w.dns_response_packets
          : 0;

  if (syn_.observe(w.minute, static_cast<double>(w.syn_packets), excl)) {
    v[sim::index_of(AttackType::kSynFlood)] = {true, w.syn_packets,
                                               w.unique_remote_ips};
  }
  if (udp_.observe(w.minute, static_cast<double>(udp_flood_packets), excl)) {
    v[sim::index_of(AttackType::kUdpFlood)] = {true, udp_flood_packets,
                                               w.unique_remote_ips};
  }
  if (icmp_.observe(w.minute, static_cast<double>(w.icmp_packets), excl)) {
    v[sim::index_of(AttackType::kIcmpFlood)] = {true, w.icmp_packets,
                                                w.unique_remote_ips};
  }
  if (dns_.observe(w.minute, static_cast<double>(w.dns_response_packets), excl)) {
    v[sim::index_of(AttackType::kDnsReflection)] = {
        true, w.dns_response_packets, w.unique_remote_ips};
  }

  // --- Spread-based (§2.2): fan-in/out and connection-count spikes.
  const bool spam_alarm = spam_spread_.observe(
      w.minute, static_cast<double>(w.unique_smtp_remotes), excl);
  if (spam_alarm) {
    v[sim::index_of(AttackType::kSpam)] = {true, w.smtp_packets,
                                           w.unique_smtp_remotes};
  }
  // Both brute-force features are evaluated every window to keep their
  // baselines advancing; either spiking alarms.
  const bool bf_fan = admin_spread_.observe(
      w.minute, static_cast<double>(w.unique_admin_remotes), excl);
  const bool bf_conn = admin_conn_.observe(
      w.minute, static_cast<double>(w.remote_admin_flows), excl);
  if (bf_fan || bf_conn) {
    v[sim::index_of(AttackType::kBruteForce)] = {true, w.admin_packets,
                                                 w.unique_admin_remotes};
  }
  const bool sql_alarm =
      sql_conn_.observe(w.minute, static_cast<double>(w.sql_flows), excl);
  if (sql_alarm) {
    v[sim::index_of(AttackType::kSqlInjection)] = {true, w.sql_packets,
                                                   w.unique_remote_ips};
  }

  // --- Signature-based (§2.2): any illegal-flag packet marks the window;
  // sustained bare-RST backscatter counts as scan activity too (§3.1).
  const std::uint64_t scan_packets =
      w.null_scan_packets + w.xmas_scan_packets +
      (w.bare_rst_packets >= config_.rst_scan_packets ? w.bare_rst_packets : 0);
  if (w.null_scan_packets > 0 || w.xmas_scan_packets > 0 ||
      w.bare_rst_packets >= config_.rst_scan_packets) {
    v[sim::index_of(AttackType::kPortScan)] = {true, scan_packets,
                                               w.unique_remote_ips};
  }

  // --- Communication-pattern-based (§2.2): contact with TDS hosts.
  if (w.blacklist_flows >= config_.blacklist_flows) {
    v[sim::index_of(AttackType::kTds)] = {true, w.blacklist_packets,
                                          w.unique_blacklist_remotes};
  }

  return v;
}

void SeriesDetector::observe_series(
    std::span<const VipMinuteStats> series,
    std::vector<MinuteDetection>& out) {
  for (const VipMinuteStats& w : series) {
    const Verdicts verdicts = observe(w);
    for (std::size_t t = 0; t < sim::kAttackTypeCount; ++t) {
      if (!verdicts[t].attack) continue;
      out.push_back(MinuteDetection{w.vip, w.direction, sim::kAllAttackTypes[t],
                                    w.minute, verdicts[t].sampled_packets,
                                    verdicts[t].unique_remotes});
    }
  }
}

}  // namespace dm::detect
