#include "detect/detectors.h"

namespace dm::detect {

using netflow::VipMinuteStats;
using sim::AttackType;

ChangePointDetector::ChangePointDetector(std::size_t ewma_window,
                                         double change_threshold,
                                         std::size_t min_history) noexcept
    : ewma_(util::Ewma::for_window(ewma_window)),
      threshold_(change_threshold),
      min_history_(min_history) {}

bool ChangePointDetector::observe(util::Minute minute, double value) noexcept {
  // Treat silence since the previous window (or since the trace start) as
  // zero-valued observations.
  const util::Minute reference = last_minute_ < 0 ? 0 : last_minute_ + 1;
  if (minute > reference) {
    ewma_.decay(static_cast<std::size_t>(minute - reference));
  }
  last_minute_ = minute;

  // The very first windows of the trace cannot alarm: a cold baseline would
  // flag every series that simply starts busy, and would then stay frozen
  // forever. Counted silent minutes contribute history, so a mid-trace
  // dormant VIP still alarms on its first real window.
  const bool warm = ewma_.count() >= min_history_;
  const bool alarm = warm && value - ewma_.value() > threshold_;
  if (!alarm) {
    ewma_.update(value);
  }
  return alarm;
}

SeriesDetector::SeriesDetector(const DetectionConfig& config) noexcept
    : config_(config),
      syn_(config.ewma_window, config.volume_change_threshold, config.min_history),
      udp_(config.ewma_window, config.volume_change_threshold, config.min_history),
      icmp_(config.ewma_window, config.volume_change_threshold, config.min_history),
      dns_(config.ewma_window, config.volume_change_threshold, config.min_history),
      spam_spread_(config.ewma_window, config.spam_unique_ips, config.min_history),
      admin_spread_(config.ewma_window, config.brute_force_unique_ips,
                    config.min_history),
      admin_conn_(config.ewma_window, config.brute_force_connections,
                  config.min_history),
      sql_conn_(config.ewma_window, config.sql_connections, config.min_history) {}

SeriesDetector::Verdicts SeriesDetector::observe(
    const VipMinuteStats& w) noexcept {
  Verdicts v{};

  // --- Volume-based (§2.2): per-protocol packet spikes. DNS responses are
  // carved out of the UDP class so reflection is not double-counted.
  const std::uint64_t udp_flood_packets =
      w.udp_packets >= w.dns_response_packets
          ? w.udp_packets - w.dns_response_packets
          : 0;

  if (syn_.observe(w.minute, static_cast<double>(w.syn_packets))) {
    v[sim::index_of(AttackType::kSynFlood)] = {true, w.syn_packets,
                                               w.unique_remote_ips};
  }
  if (udp_.observe(w.minute, static_cast<double>(udp_flood_packets))) {
    v[sim::index_of(AttackType::kUdpFlood)] = {true, udp_flood_packets,
                                               w.unique_remote_ips};
  }
  if (icmp_.observe(w.minute, static_cast<double>(w.icmp_packets))) {
    v[sim::index_of(AttackType::kIcmpFlood)] = {true, w.icmp_packets,
                                                w.unique_remote_ips};
  }
  if (dns_.observe(w.minute, static_cast<double>(w.dns_response_packets))) {
    v[sim::index_of(AttackType::kDnsReflection)] = {
        true, w.dns_response_packets, w.unique_remote_ips};
  }

  // --- Spread-based (§2.2): fan-in/out and connection-count spikes.
  const bool spam_alarm = spam_spread_.observe(
      w.minute, static_cast<double>(w.unique_smtp_remotes));
  if (spam_alarm) {
    v[sim::index_of(AttackType::kSpam)] = {true, w.smtp_packets,
                                           w.unique_smtp_remotes};
  }
  // Both brute-force features are evaluated every window to keep their
  // baselines advancing; either spiking alarms.
  const bool bf_fan = admin_spread_.observe(
      w.minute, static_cast<double>(w.unique_admin_remotes));
  const bool bf_conn = admin_conn_.observe(
      w.minute, static_cast<double>(w.remote_admin_flows));
  if (bf_fan || bf_conn) {
    v[sim::index_of(AttackType::kBruteForce)] = {true, w.admin_packets,
                                                 w.unique_admin_remotes};
  }
  const bool sql_alarm =
      sql_conn_.observe(w.minute, static_cast<double>(w.sql_flows));
  if (sql_alarm) {
    v[sim::index_of(AttackType::kSqlInjection)] = {true, w.sql_packets,
                                                   w.unique_remote_ips};
  }

  // --- Signature-based (§2.2): any illegal-flag packet marks the window;
  // sustained bare-RST backscatter counts as scan activity too (§3.1).
  const std::uint64_t scan_packets =
      w.null_scan_packets + w.xmas_scan_packets +
      (w.bare_rst_packets >= config_.rst_scan_packets ? w.bare_rst_packets : 0);
  if (w.null_scan_packets > 0 || w.xmas_scan_packets > 0 ||
      w.bare_rst_packets >= config_.rst_scan_packets) {
    v[sim::index_of(AttackType::kPortScan)] = {true, scan_packets,
                                               w.unique_remote_ips};
  }

  // --- Communication-pattern-based (§2.2): contact with TDS hosts.
  if (w.blacklist_flows >= config_.blacklist_flows) {
    v[sim::index_of(AttackType::kTds)] = {true, w.blacklist_packets,
                                          w.unique_blacklist_remotes};
  }

  return v;
}

}  // namespace dm::detect
